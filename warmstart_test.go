// Warm-start property tests: the Options.Seed contract of OS-DPOS
// (internal/core) verified catalog-wide, against the real model zoo rather
// than synthetic graphs, because the guarantee callers build on is global:
//
//  1. a seeded search is never worse than the seed's re-evaluated makespan;
//  2. whenever the seed does not win, the seeded artifact is byte-identical
//     to the cold one — seeding only tightens the pruning bound, it cannot
//     steer the walk — so its makespan then also equals cold's. When the
//     seed wins, the result is the seed itself: usually at or below cold's
//     (the fast exit), but a cold walk may end a hair below the seed by
//     passing through intermediate states the seed bound prunes (GNMT and
//     VGG-19 shrink land in this corner, within 0.3%) — the placement-time
//     trade the warm start exists to make, see DESIGN.md §9;
//  3. the result is identical across worker counts and speculation modes,
//     exactly like the cold search;
//  4. a seed for a different base graph is rejected with
//     strategy.ErrFingerprint.
package fastt

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/strategy"
)

// warmstartGraph builds the 4-replica data-parallel training graph the
// property tests search over: big enough to have real split candidates and
// gradient-sync groups, small enough to search dozens of times per model.
func warmstartGraph(t *testing.T, spec models.Spec) *graph.Graph {
	t.Helper()
	perReplica := spec.GlobalBatch / 4
	if perReplica < 1 {
		perReplica = 1
	}
	m, err := spec.Build(perReplica)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name, err)
	}
	g, err := graph.BuildDataParallel(m, 4)
	if err != nil {
		t.Fatalf("replicate %s: %v", spec.Name, err)
	}
	return g
}

func artifactBytes(t *testing.T, st *core.Strategy) string {
	t.Helper()
	b, err := json.Marshal(&st.Artifact)
	if err != nil {
		t.Fatalf("marshal artifact: %v", err)
	}
	return string(b)
}

// TestWarmstartProperties checks properties 1-3 for every catalog model
// across the three cluster cases a session recomputes for (same cluster,
// one device lost, one device joined), across Workers {1,4,8} and
// speculation on/off. `-short` keeps the walk shallower and trims the
// worker sweep so the -race tier stays fast; the full run is catalog-wide
// at full depth.
func TestWarmstartProperties(t *testing.T) {
	workerSweep := []int{1, 4, 8}
	specModes := []bool{false, true}
	maxSplitOps := 4
	if testing.Short() {
		// Keep the catalog but shallow the walk and drop the
		// speculation-off variants — speculation on is the racy path the
		// -race tier is there to exercise.
		workerSweep = []int{1, 8}
		specModes = []bool{false}
		maxSplitOps = 2
	}

	base, err := device.SingleServer(4)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, _, err := base.Without(3)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := device.SingleServer(5)
	if err != nil {
		t.Fatal(err)
	}

	for _, spec := range models.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			g := warmstartGraph(t, spec)
			opts := core.Options{MaxSplitOps: maxSplitOps, MaxSyncGroups: 4, Workers: 1}
			seedSt, err := core.ComputeStrategy(g, base, kernels.NewDefaultOracle(base), opts)
			if err != nil {
				t.Fatalf("seed search: %v", err)
			}
			seed := &seedSt.Artifact

			for _, target := range []struct {
				name    string
				cluster *device.Cluster
			}{
				{"same-cluster", base},
				{"shrink-by-1", shrunk},
				{"grow-by-1", grown},
			} {
				est := kernels.NewDefaultOracle(target.cluster)
				cold, err := core.ComputeStrategy(g, target.cluster, est, opts)
				if err != nil {
					t.Fatalf("%s: cold: %v", target.name, err)
				}
				coldBytes := artifactBytes(t, cold)

				firstBytes := ""
				for _, w := range workerSweep {
					for _, spec := range specModes {
						o := opts
						o.Workers = w
						o.DisableSpeculation = spec
						o.Seed = seed
						seeded, err := core.ComputeStrategy(g, target.cluster, est, o)
						if err != nil {
							t.Fatalf("%s workers=%d spec=%v: seeded: %v", target.name, w, !spec, err)
						}
						label := fmt.Sprintf("%s workers=%d spec=%v", target.name, w, !spec)
						if !seeded.Seeded {
							t.Fatalf("%s: seed was not applied", label)
						}
						if seeded.SeedBound <= 0 {
							t.Errorf("%s: SeedBound = %v, want > 0", label, seeded.SeedBound)
						}
						// Property 1: never worse than the seed's exact
						// re-evaluated makespan.
						if seeded.Predicted > seeded.SeedBound {
							t.Errorf("%s: predicted %v worse than seed bound %v",
								label, seeded.Predicted, seeded.SeedBound)
						}
						sb := artifactBytes(t, seeded)
						// Property 2: seeding only prunes — when any
						// candidate beat the seed, the artifact is the cold
						// one, byte for byte (and so no worse than cold);
						// when the seed won, the result is exactly the
						// re-evaluated seed.
						if !seeded.SeedWon {
							if sb != coldBytes {
								t.Errorf("%s: seed lost but artifact differs from cold", label)
							}
							if seeded.Predicted > cold.Predicted {
								t.Errorf("%s: seed lost but predicted %v worse than cold %v",
									label, seeded.Predicted, cold.Predicted)
							}
						} else if seeded.Predicted != seeded.SeedBound {
							t.Errorf("%s: seed won but predicted %v != seed bound %v",
								label, seeded.Predicted, seeded.SeedBound)
						}
						// Property 3: deterministic across workers and
						// speculation, like the cold search.
						if firstBytes == "" {
							firstBytes = sb
						} else if sb != firstBytes {
							t.Errorf("%s: artifact differs across worker/speculation modes", label)
						}
					}
				}
			}
		})
	}
}

// TestWarmstartFingerprintMismatch checks property 4: a seed computed for a
// different base graph must be rejected, not silently searched with.
func TestWarmstartFingerprintMismatch(t *testing.T) {
	lenet, err := models.ByName("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	alexnet, err := models.ByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := device.SingleServer(4)
	if err != nil {
		t.Fatal(err)
	}
	g := warmstartGraph(t, lenet)
	other := warmstartGraph(t, alexnet)
	opts := core.Options{MaxSplitOps: 1, MaxSyncGroups: 4, Workers: 1}
	est := kernels.NewDefaultOracle(cluster)
	seedSt, err := core.ComputeStrategy(other, cluster, est, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = &seedSt.Artifact
	if _, err := core.ComputeStrategy(g, cluster, est, opts); !errors.Is(err, strategy.ErrFingerprint) {
		t.Fatalf("seed for a different graph: err = %v, want strategy.ErrFingerprint", err)
	}
}
