// Package graph models DNN training computations as directed acyclic graphs
// whose nodes are operations (Conv2D, MatMul, ...) and whose edges carry
// tensors, mirroring the dataflow representation used by TensorFlow and by
// the FastT paper (Middleware '20). It also provides the two structural
// transformations FastT relies on: data-parallel replication of a model
// graph, and SplitOperation (Alg. 2 of the paper), which partitions a single
// operation into sub-operations joined by split/concat nodes.
package graph

import "fmt"

// OpKind enumerates the operation types understood by the kernel latency
// model and by the splitting heuristics. The set covers the nine benchmark
// models of the paper (five CNNs and four NMT models).
type OpKind int

// Operation kinds. Forward kinds are paired with their backward
// ("backprop") counterparts because the paper treats them as distinct
// operations with distinct costs (e.g. Conv1_2 vs Conv1_2bp in Table 5).
const (
	KindInput OpKind = iota + 1
	KindVariable
	KindConv2D
	KindConv2DBackprop
	KindMatMul
	KindMatMulBackprop
	KindRelu
	KindReluGrad
	KindMaxPool
	KindMaxPoolGrad
	KindBatchNorm
	KindBatchNormGrad
	KindLayerNorm
	KindLayerNormGrad
	KindSoftmax
	KindSoftmaxGrad
	KindLSTMCell
	KindLSTMCellGrad
	KindEmbedding
	KindEmbeddingGrad
	KindConcat
	KindSplit
	KindAddN
	KindApplyGradient
	KindLoss
	KindLossGrad
	KindIdentity
	KindDropout
)

var _kindNames = map[OpKind]string{
	KindInput:          "Input",
	KindVariable:       "Variable",
	KindConv2D:         "Conv2D",
	KindConv2DBackprop: "Conv2DBackprop",
	KindMatMul:         "MatMul",
	KindMatMulBackprop: "MatMulBackprop",
	KindRelu:           "Relu",
	KindReluGrad:       "ReluGrad",
	KindMaxPool:        "MaxPool",
	KindMaxPoolGrad:    "MaxPoolGrad",
	KindBatchNorm:      "BatchNorm",
	KindBatchNormGrad:  "BatchNormGrad",
	KindLayerNorm:      "LayerNorm",
	KindLayerNormGrad:  "LayerNormGrad",
	KindSoftmax:        "Softmax",
	KindSoftmaxGrad:    "SoftmaxGrad",
	KindLSTMCell:       "LSTMCell",
	KindLSTMCellGrad:   "LSTMCellGrad",
	KindEmbedding:      "Embedding",
	KindEmbeddingGrad:  "EmbeddingGrad",
	KindConcat:         "Concat",
	KindSplit:          "Split",
	KindAddN:           "AddN",
	KindApplyGradient:  "ApplyGradient",
	KindLoss:           "Loss",
	KindLossGrad:       "LossGrad",
	KindIdentity:       "Identity",
	KindDropout:        "Dropout",
}

// String returns the TensorFlow-style name of the kind.
func (k OpKind) String() string {
	if s, ok := _kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// SplitDim identifies a parallelizable dimension of an operation, following
// the paper's fine-grained parallelism taxonomy: splitting the batch
// dimension yields fine-grained data parallelism within the operation, while
// splitting the channel dimension yields fine-grained model parallelism.
type SplitDim int

// Parallelizable dimensions.
const (
	DimBatch SplitDim = iota + 1
	DimChannel
)

// String returns the dimension name used in split lists.
func (d SplitDim) String() string {
	switch d {
	case DimBatch:
		return "batch"
	case DimChannel:
		return "channel"
	default:
		return fmt.Sprintf("SplitDim(%d)", int(d))
	}
}

// splittableDims reports which dimensions an operation kind can be
// partitioned on. Matching the paper, Conv2D splits on batch or channel,
// MatMul splits on batch or channel (its reduction-free output dimension),
// BatchNorm cannot be split on batch (its statistics couple the whole
// batch), and plumbing ops (Split/Concat/AddN/ApplyGradient/Variable) are
// never split.
func splittableDims(k OpKind) []SplitDim {
	switch k {
	case KindConv2D, KindConv2DBackprop, KindMatMul, KindMatMulBackprop:
		return []SplitDim{DimBatch, DimChannel}
	case KindRelu, KindReluGrad, KindMaxPool, KindMaxPoolGrad,
		KindSoftmax, KindSoftmaxGrad, KindDropout:
		return []SplitDim{DimBatch}
	case KindLSTMCell, KindLSTMCellGrad:
		// The recurrent state couples samples across time steps only, not
		// within a step, so the batch dimension remains splittable.
		return []SplitDim{DimBatch}
	default:
		return nil
	}
}

// Op is a node of the computation DAG. The cost-relevant fields (FLOPs,
// ParamBytes, OutputBytes) are what the kernel model and cost models
// consume; the structural fields (Replica, SplitOf, SplitN) record how the
// op was derived from the original model graph.
type Op struct {
	// ID is the op's index in its graph. Assigned by Graph.AddOp.
	ID int
	// Name uniquely identifies the op within its graph; cost models key on
	// it (paper: "using the operation's name and device as the key").
	Name string
	// Kind is the operation type.
	Kind OpKind
	// FLOPs is the floating-point work of one execution of the op.
	FLOPs int64
	// ParamBytes is the size of the trainable parameters owned by the op
	// (raw weight bytes, excluding gradient/optimizer state).
	ParamBytes int64
	// OutputBytes is the size of the op's output tensor.
	OutputBytes int64
	// WorkspaceBytes is scratch memory required while the op runs.
	WorkspaceBytes int64
	// Batch is the batch-dimension extent of the op's output (0 when the op
	// has no batch dimension, e.g. Variable).
	Batch int
	// Channels is the channel/feature extent relevant for channel splits
	// (0 when not applicable).
	Channels int
	// Replica is the data-parallel replica index the op belongs to, or -1
	// for ops shared across replicas (gradient aggregation, updates).
	Replica int
	// SplitOf is the Name of the original operation this op was split from
	// (empty when the op is not a sub-operation). SplitN is the number of
	// partitions of that split (0 when not a sub-operation).
	SplitOf string
	SplitN  int
	// GradFor names the forward operation whose parameter gradient this
	// backward op produces (empty otherwise). BuildDataParallel uses it to
	// wire gradient aggregation across replicas.
	GradFor string
	// ColocateWith names an operation this op must share a device with
	// (TensorFlow-style colocation constraint, e.g. an ApplyGradient with
	// its variable's forward op). Empty means unconstrained.
	ColocateWith string
}

// SplittableDims returns the dimensions this op may be partitioned on.
// A dimension is only usable if the corresponding extent divides further
// (batch or channel extent of at least 2).
func (o *Op) SplittableDims() []SplitDim {
	dims := splittableDims(o.Kind)
	if len(dims) == 0 {
		return nil
	}
	out := make([]SplitDim, 0, len(dims))
	for _, d := range dims {
		switch d {
		case DimBatch:
			if o.Batch >= 2 {
				out = append(out, d)
			}
		case DimChannel:
			if o.Channels >= 2 {
				out = append(out, d)
			}
		}
	}
	return out
}

// clone returns a deep copy of the op.
func (o *Op) clone() *Op {
	c := *o
	return &c
}

// IsBackwardKind reports whether a kind is a gradient/backward operation.
// Backward outputs are transient: they are consumed as backprop proceeds,
// unlike forward activations which stay resident until their backward
// consumer runs.
func IsBackwardKind(k OpKind) bool {
	switch k {
	case KindConv2DBackprop, KindMatMulBackprop, KindReluGrad,
		KindMaxPoolGrad, KindBatchNormGrad, KindLayerNormGrad,
		KindSoftmaxGrad, KindLSTMCellGrad, KindEmbeddingGrad,
		KindLossGrad, KindAddN, KindApplyGradient:
		return true
	default:
		return false
	}
}

// MemoryModel converts an operation's static footprint into the bytes it
// keeps resident on its assigned device. The paper's testbed trains with
// momentum/Adam-style optimizers, so each parameter byte implies additional
// state bytes (gradient + optimizer slots).
type MemoryModel struct {
	// ParamStateFactor multiplies ParamBytes: 1 for the weight itself plus
	// gradient and optimizer slots. The default of 4 models fp32 weights
	// with gradient and two Adam moments.
	ParamStateFactor float64
	// ActivationFactor multiplies OutputBytes for forward activations,
	// which stay resident until the backward pass consumes them.
	ActivationFactor float64
	// TransientFactor multiplies OutputBytes for backward operations,
	// whose outputs are freed as backprop proceeds; charging them fully
	// would double-count the activation budget.
	TransientFactor float64
}

// DefaultMemoryModel returns the memory model used throughout the repo:
// fp32 parameters with gradient and two Adam moments, fully resident
// forward activations, and no static charge for backward outputs — they
// are freed as backprop proceeds, and the simulator's runtime accounting
// (with the session's OOM rollback) covers their true transient peaks.
func DefaultMemoryModel() MemoryModel {
	return MemoryModel{ParamStateFactor: 4, ActivationFactor: 1, TransientFactor: 0}
}

// OpBytes returns the resident bytes the op contributes to its device.
func (m MemoryModel) OpBytes(o *Op) int64 {
	actFactor := m.ActivationFactor
	if IsBackwardKind(o.Kind) {
		actFactor = m.TransientFactor
	}
	return int64(m.ParamStateFactor*float64(o.ParamBytes)) +
		int64(actFactor*float64(o.OutputBytes)) +
		o.WorkspaceBytes
}
