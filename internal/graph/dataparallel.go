package graph

import (
	"errors"
	"fmt"
)

// ErrNoGradient is returned when a parameterized forward op has no backward
// op declaring GradFor it; the data-parallel builder cannot wire gradient
// aggregation for it.
var ErrNoGradient = errors.New("parameterized op has no gradient producer")

// ReplicaPrefix returns the name prefix used for ops of replica r in
// data-parallel graphs.
func ReplicaPrefix(r int) string { return fmt.Sprintf("rep%d/", r) }

// VariableName returns the shared-variable op name for a parameterized
// model op.
func VariableName(opName string) string { return "var/" + opName }

// aggTreeFanout is the flat-aggregation limit: beyond this many replicas,
// gradients aggregate through a two-level AddN tree.
const aggTreeFanout = 4

// BuildDataParallel constructs the data-parallel training graph the paper
// uses as FastT's start strategy (Sec. 5.2), following TensorFlow 1.x
// in-graph replication semantics:
//
//   - the model's compute ops are replicated `replicas` times, each replica
//     processing its own shard of the batch;
//   - every parameterized operation's weights live in a single shared
//     Variable op; each replica's forward and backward ops read the weight
//     tensor from it every iteration (the weight-fetch traffic that makes
//     TF's default data parallelism expensive when the variable lives on a
//     different GPU);
//   - per-replica gradients flow into one AddN aggregation and a single
//     ApplyGradient colocated with the Variable.
//
// The model graph must be built at the desired *per-replica* batch size:
// strong scaling passes batch B/R, weak scaling passes the fixed per-GPU
// batch. With replicas == 1 the result is the plain training graph, so all
// code paths are uniform across GPU counts.
//
// Every backward op producing a parameter gradient must set GradFor to the
// forward op's name; builders in internal/models do this.
func BuildDataParallel(model *Graph, replicas int) (*Graph, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("replicas must be >= 1, got %d", replicas)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("model graph: %w", err)
	}

	out := New()
	// ids[r][oldID] = new ID of replica r's copy.
	ids := make([][]int, replicas)
	for r := 0; r < replicas; r++ {
		ids[r] = make([]int, model.NumOps())
		prefix := ReplicaPrefix(r)
		for _, op := range model.Ops() {
			c := op.clone()
			c.Name = prefix + op.Name
			c.Replica = r
			// Weights move to the shared Variable; the replica keeps only
			// compute and activations.
			c.ParamBytes = 0
			if c.GradFor != "" {
				c.GradFor = prefix + c.GradFor
			}
			if c.ColocateWith != "" {
				c.ColocateWith = prefix + c.ColocateWith
			}
			id, err := out.AddOp(c)
			if err != nil {
				return nil, fmt.Errorf("replicate op: %w", err)
			}
			ids[r][op.ID] = id
		}
		for _, e := range model.Edges() {
			if err := out.Connect(ids[r][e.From], ids[r][e.To], e.Bytes); err != nil {
				return nil, fmt.Errorf("replicate edge: %w", err)
			}
		}
	}

	// Map forward op -> gradient producer, per the model graph.
	gradOf := make(map[int]int) // forward old ID -> backward old ID
	for _, op := range model.Ops() {
		if op.GradFor == "" {
			continue
		}
		fwd, ok := model.OpByName(op.GradFor)
		if !ok {
			return nil, fmt.Errorf("gradient op %q references unknown forward op %q",
				op.Name, op.GradFor)
		}
		gradOf[fwd.ID] = op.ID
	}

	// Shared variable + gradient synchronization per parameterized op.
	for _, op := range model.Ops() {
		if op.ParamBytes == 0 {
			continue
		}
		gradID, ok := gradOf[op.ID]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoGradient, op.Name)
		}
		v := &Op{
			Name:       VariableName(op.Name),
			Kind:       KindVariable,
			ParamBytes: op.ParamBytes,
			Replica:    -1,
		}
		varID, err := out.AddOp(v)
		if err != nil {
			return nil, fmt.Errorf("add variable: %w", err)
		}
		// Every replica fetches the weight tensor for forward and backward.
		for r := 0; r < replicas; r++ {
			if err := out.Connect(varID, ids[r][op.ID], op.ParamBytes); err != nil {
				return nil, fmt.Errorf("connect variable to forward: %w", err)
			}
			if err := out.Connect(varID, ids[r][gradID], op.ParamBytes); err != nil {
				return nil, fmt.Errorf("connect variable to backward: %w", err)
			}
		}

		// Gradient aggregation. Beyond aggTreeFanout replicas a two-level
		// tree is used: a leaf AddN per group of replicas (colocated with
		// the group's first replica) feeding the root AddN at the
		// variable. A flat 16-way AddN would require all remote gradient
		// tensors to be resident on the variable's device at once, which
		// is exactly how real in-graph aggregation runs out of memory.
		grads := make([]int, replicas)
		gradBytes := make([]int64, replicas)
		for r := 0; r < replicas; r++ {
			grads[r] = ids[r][gradID]
			gradBytes[r] = op.ParamBytes
		}
		if replicas > aggTreeFanout {
			var leaves []int
			for lo := 0; lo < replicas; lo += aggTreeFanout {
				hi := lo + aggTreeFanout
				if hi > replicas {
					hi = replicas
				}
				leaf := &Op{
					Name:         fmt.Sprintf("sync/%s/addn_g%d", op.Name, lo/aggTreeFanout),
					Kind:         KindAddN,
					FLOPs:        int64(hi-lo) * op.ParamBytes / 4,
					OutputBytes:  op.ParamBytes,
					Replica:      -1,
					ColocateWith: ReplicaPrefix(lo) + op.Name,
				}
				leafID, err := out.AddOp(leaf)
				if err != nil {
					return nil, fmt.Errorf("add leaf aggregation: %w", err)
				}
				for r := lo; r < hi; r++ {
					if err := out.Connect(grads[r], leafID, op.ParamBytes); err != nil {
						return nil, fmt.Errorf("connect gradient to leaf: %w", err)
					}
				}
				leaves = append(leaves, leafID)
			}
			grads = leaves
			gradBytes = gradBytes[:len(leaves)]
			for i := range gradBytes {
				gradBytes[i] = op.ParamBytes
			}
		}
		agg := &Op{
			Name:         "sync/" + op.Name + "/addn",
			Kind:         KindAddN,
			FLOPs:        int64(len(grads)) * op.ParamBytes / 4,
			OutputBytes:  op.ParamBytes,
			Replica:      -1,
			ColocateWith: v.Name,
		}
		aggID, err := out.AddOp(agg)
		if err != nil {
			return nil, fmt.Errorf("add aggregation op: %w", err)
		}
		for i, gid := range grads {
			if err := out.Connect(gid, aggID, gradBytes[i]); err != nil {
				return nil, fmt.Errorf("connect gradient to aggregation: %w", err)
			}
		}
		apply := &Op{
			Name:         "sync/" + op.Name + "/apply",
			Kind:         KindApplyGradient,
			FLOPs:        op.ParamBytes,
			Replica:      -1,
			ColocateWith: v.Name,
		}
		applyID, err := out.AddOp(apply)
		if err != nil {
			return nil, fmt.Errorf("add apply op: %w", err)
		}
		if err := out.Connect(aggID, applyID, op.ParamBytes); err != nil {
			return nil, fmt.Errorf("connect aggregation to apply: %w", err)
		}
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("data-parallel graph: %w", err)
	}
	return out, nil
}

// ReplicaOf parses the replica index of an op in a data-parallel graph from
// its Replica field; shared ops return -1.
func ReplicaOf(op *Op) int { return op.Replica }
