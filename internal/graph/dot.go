package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the graph in Graphviz DOT format, optionally coloring ops
// by the given placement (op ID -> device ID; pass nil for no coloring).
// Useful for inspecting split/replication rewrites and placements.
func (g *Graph) WriteDOT(w io.Writer, placement []int) error {
	var b strings.Builder
	b.WriteString("digraph G {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
	colors := []string{
		"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
		"#cab2d6", "#ffff99", "#1f78b4", "#33a02c",
	}
	for _, op := range g.ops {
		label := fmt.Sprintf("%s\\n%s", op.Name, op.Kind)
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if placement != nil && op.ID < len(placement) && placement[op.ID] >= 0 {
			c := colors[placement[op.ID]%len(colors)]
			attrs += fmt.Sprintf(", style=filled, fillcolor=\"%s\"", c)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", op.ID, attrs)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%dB\", fontsize=8];\n", e.From, e.To, e.Bytes)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
