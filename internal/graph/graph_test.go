package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chainGraph builds a linear chain a -> b -> c ... of n ops with the given
// kind, each with unit costs, for structural tests.
func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	prev := -1
	for i := 0; i < n; i++ {
		id := g.MustAddOp(&Op{
			Name:        "op" + string(rune('a'+i)),
			Kind:        KindMatMul,
			FLOPs:       100,
			OutputBytes: 10,
			Batch:       8,
			Channels:    8,
		})
		if prev >= 0 {
			g.MustConnect(prev, id, 10)
		}
		prev = id
	}
	return g
}

func TestAddOpAssignsSequentialIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		id, err := g.AddOp(&Op{Name: string(rune('a' + i)), Kind: KindRelu})
		if err != nil {
			t.Fatalf("AddOp: %v", err)
		}
		if id != i {
			t.Errorf("AddOp returned ID %d, want %d", id, i)
		}
	}
	if g.NumOps() != 5 {
		t.Errorf("NumOps = %d, want 5", g.NumOps())
	}
}

func TestAddOpRejectsEmptyAndDuplicateNames(t *testing.T) {
	g := New()
	if _, err := g.AddOp(&Op{Name: ""}); err == nil {
		t.Error("AddOp accepted empty name")
	}
	if _, err := g.AddOp(&Op{Name: "x", Kind: KindRelu}); err != nil {
		t.Fatalf("AddOp: %v", err)
	}
	_, err := g.AddOp(&Op{Name: "x", Kind: KindRelu})
	if !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate name error = %v, want ErrDuplicateName", err)
	}
}

func TestConnectValidation(t *testing.T) {
	g := chainGraph(t, 2)
	tests := []struct {
		name     string
		from, to int
		wantErr  error
	}{
		{"unknown from", 99, 0, ErrUnknownOp},
		{"unknown to", 0, 99, ErrUnknownOp},
		{"self edge", 0, 0, ErrSelfEdge},
		{"duplicate", 0, 1, ErrDuplicateEdge},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.Connect(tt.from, tt.to, 1)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Connect(%d,%d) = %v, want %v", tt.from, tt.to, err, tt.wantErr)
			}
		})
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	g := New()
	// Diamond: a -> b, a -> c, b -> d, c -> d.
	a := g.MustAddOp(&Op{Name: "a", Kind: KindInput})
	b := g.MustAddOp(&Op{Name: "b", Kind: KindRelu})
	c := g.MustAddOp(&Op{Name: "c", Kind: KindRelu})
	d := g.MustAddOp(&Op{Name: "d", Kind: KindAddN})
	g.MustConnect(a, b, 1)
	g.MustConnect(a, c, 1)
	g.MustConnect(b, d, 1)
	g.MustConnect(c, d, 1)

	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[int]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order", e.From, e.To)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := chainGraph(t, 3)
	// Force a back edge 2 -> 0 directly into internals via Connect.
	if err := g.Connect(2, 0, 1); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Errorf("TopoOrder on cyclic graph = %v, want ErrCycle", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate on cyclic graph = %v, want ErrCycle", err)
	}
}

func TestEntryAndExitOps(t *testing.T) {
	g := chainGraph(t, 4)
	if got := g.EntryOps(); len(got) != 1 || got[0] != 0 {
		t.Errorf("EntryOps = %v, want [0]", got)
	}
	if got := g.ExitOps(); len(got) != 1 || got[0] != 3 {
		t.Errorf("ExitOps = %v, want [3]", got)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := chainGraph(t, 3)
	if got := g.Successors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Successors(0) = %v", got)
	}
	if got := g.Predecessors(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Predecessors(2) = %v", got)
	}
	if g.InDegree(0) != 0 || g.OutDegree(0) != 1 {
		t.Errorf("degree of entry wrong: in=%d out=%d", g.InDegree(0), g.OutDegree(0))
	}
}

func TestVersionCountsStructuralMutations(t *testing.T) {
	g := New()
	if g.Version() != 0 {
		t.Fatalf("empty graph version = %d, want 0", g.Version())
	}
	a := g.MustAddOp(&Op{Name: "a"})
	b := g.MustAddOp(&Op{Name: "b"})
	after := g.Version()
	if after != 2 {
		t.Fatalf("version after 2 AddOps = %d, want 2", after)
	}
	g.MustConnect(a, b, 10)
	if g.Version() <= after {
		t.Fatal("Connect did not bump the version")
	}
	// Failed mutations must not bump it.
	v := g.Version()
	if _, err := g.AddOp(&Op{Name: "a"}); err == nil {
		t.Fatal("duplicate AddOp succeeded")
	}
	if err := g.Connect(a, b, 10); err == nil {
		t.Fatal("duplicate Connect succeeded")
	}
	if g.Version() != v {
		t.Fatalf("failed mutations changed version %d -> %d", v, g.Version())
	}
	// Clone carries the counter so caches keyed on (pointer, version)
	// behave identically on the copy.
	if c := g.Clone(); c.Version() != g.Version() {
		t.Fatalf("clone version %d, want %d", c.Version(), g.Version())
	}
	// SplitOperation builds through the bulk path; the result must still
	// count its mutations.
	sg := chainGraph(t, 3)
	out, err := SplitOperation(sg, 1, DimBatch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version() == 0 {
		t.Fatal("split candidate has zero version")
	}
}

func TestNewWithCapacityBehavesLikeNew(t *testing.T) {
	g := NewWithCapacity(4, 4)
	a := g.MustAddOp(&Op{Name: "a"})
	b := g.MustAddOp(&Op{Name: "b"})
	g.MustConnect(a, b, 10)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumOps() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d ops, %d edges", g.NumOps(), g.NumEdges())
	}
	if op, ok := g.OpByName("b"); !ok || op.ID != b {
		t.Fatal("name index broken under preallocation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := chainGraph(t, 3)
	c := g.Clone()
	c.Op(0).Name = "mutated"
	c.MustAddOp(&Op{Name: "extra", Kind: KindRelu})
	if g.Op(0).Name == "mutated" {
		t.Error("Clone shares op pointers with original")
	}
	if g.NumOps() != 3 {
		t.Errorf("original NumOps changed to %d", g.NumOps())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	a := g.MustAddOp(&Op{Name: "a", Kind: KindConv2D, FLOPs: 100, ParamBytes: 40, OutputBytes: 8})
	b := g.MustAddOp(&Op{Name: "b", Kind: KindRelu, FLOPs: 50})
	g.MustConnect(a, b, 8)
	s := g.ComputeStats()
	if s.Ops != 2 || s.Edges != 1 || s.TotalFLOPs != 150 || s.ParamBytes != 40 || s.TensorBytes != 8 {
		t.Errorf("ComputeStats = %+v", s)
	}
}

func TestSplittableDimsRespectExtents(t *testing.T) {
	tests := []struct {
		name string
		op   Op
		want int
	}{
		{"conv with batch and channels", Op{Kind: KindConv2D, Batch: 8, Channels: 64}, 2},
		{"conv batch only", Op{Kind: KindConv2D, Batch: 8, Channels: 1}, 1},
		{"batchnorm never", Op{Kind: KindBatchNorm, Batch: 8, Channels: 64}, 0},
		{"variable never", Op{Kind: KindVariable, Batch: 8}, 0},
		{"relu batch", Op{Kind: KindRelu, Batch: 2}, 1},
		{"relu batch 1", Op{Kind: KindRelu, Batch: 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.op.SplittableDims(); len(got) != tt.want {
				t.Errorf("SplittableDims = %v, want %d dims", got, tt.want)
			}
		})
	}
}

func TestMemoryModelOpBytes(t *testing.T) {
	m := DefaultMemoryModel()
	op := &Op{ParamBytes: 100, OutputBytes: 10, WorkspaceBytes: 5}
	if got := m.OpBytes(op); got != 4*100+10+5 {
		t.Errorf("OpBytes = %d, want 415", got)
	}
}

func TestWriteDOTContainsOpsAndEdges(t *testing.T) {
	g := chainGraph(t, 2)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, []int{0, 1}); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "n0 ->", "fillcolor"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// randomDAG builds a random DAG with n ops where each edge goes from a lower
// ID to a higher ID, guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddOp(&Op{
			Name:        "op" + strings.Repeat("x", i+1),
			Kind:        KindMatMul,
			FLOPs:       rng.Int63n(1000) + 1,
			OutputBytes: rng.Int63n(100) + 1,
			Batch:       8,
			Channels:    8,
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				g.MustConnect(i, j, rng.Int63n(50)+1)
			}
		}
	}
	return g
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g := randomDAG(rng, n)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[int]int, len(order))
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == g.NumOps()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
