package graph

import (
	"errors"
	"testing"
)

// overlayTestGraph is a small DAG whose middle op has two predecessors and
// two successors, exercising split and concat node creation on both sides.
func overlayTestGraph(t *testing.T) (*Graph, int) {
	t.Helper()
	g := New()
	a := g.MustAddOp(&Op{Name: "a", Kind: KindInput, OutputBytes: 128, Batch: 8})
	b := g.MustAddOp(&Op{Name: "b", Kind: KindRelu, FLOPs: 10, OutputBytes: 128, Batch: 8})
	mid := g.MustAddOp(&Op{
		Name: "mid", Kind: KindConv2D, FLOPs: 1000, OutputBytes: 256,
		ParamBytes: 512, WorkspaceBytes: 64, Batch: 8, Channels: 8,
	})
	c := g.MustAddOp(&Op{Name: "c", Kind: KindRelu, FLOPs: 10, OutputBytes: 64, Batch: 8})
	d := g.MustAddOp(&Op{Name: "d", Kind: KindLoss, FLOPs: 5, Batch: 8})
	g.MustConnect(a, mid, 128)
	g.MustConnect(b, mid, 128)
	g.MustConnect(mid, c, 256)
	g.MustConnect(mid, d, 256)
	g.MustConnect(a, b, 64) // an edge untouched by the split
	return g, mid
}

// TestSplitOverlayMatchesClone asserts the overlay records exactly the
// rewrite SplitOperation performs: op-for-op (fields included) and
// edge-for-edge under the CloneID mapping, for batch and channel splits.
func TestSplitOverlayMatchesClone(t *testing.T) {
	g, mid := overlayTestGraph(t)
	for _, dim := range []SplitDim{DimBatch, DimChannel} {
		for n := 2; n <= 4; n++ {
			ov, err := NewSplitOverlay(g, mid, dim, n)
			if err != nil {
				t.Fatalf("NewSplitOverlay(%s,%d): %v", dim, n, err)
			}
			clone, err := SplitOperation(g, mid, dim, n)
			if err != nil {
				t.Fatalf("SplitOperation(%s,%d): %v", dim, n, err)
			}
			if got, want := ov.NumOps(), clone.NumOps()+1; got != want {
				t.Fatalf("%s/%d: NumOps %d, want %d (clone + tombstone)", dim, n, got, want)
			}
			// Every live overlay op must equal its clone counterpart.
			for id := 0; id < ov.NumOps(); id++ {
				cid := ov.CloneID(id)
				if id == mid {
					if cid != -1 {
						t.Fatalf("CloneID(target)=%d, want -1", cid)
					}
					continue
				}
				oop, cop := ov.Op(id), clone.Op(cid)
				if oop.Name != cop.Name || oop.Kind != cop.Kind ||
					oop.FLOPs != cop.FLOPs || oop.OutputBytes != cop.OutputBytes ||
					oop.ParamBytes != cop.ParamBytes || oop.WorkspaceBytes != cop.WorkspaceBytes ||
					oop.Batch != cop.Batch || oop.Channels != cop.Channels ||
					oop.SplitOf != cop.SplitOf || oop.SplitN != cop.SplitN {
					t.Fatalf("%s/%d: op %d (%s) differs from clone op %d (%s)",
						dim, n, id, oop.Name, cid, cop.Name)
				}
				if byName, ok := ov.OpByName(oop.Name); !ok || byName.ID != id {
					t.Fatalf("%s/%d: OpByName(%q) broken", dim, n, oop.Name)
				}
			}
			if _, ok := ov.OpByName(g.Op(mid).Name); ok {
				t.Fatal("target name still resolvable through overlay")
			}
			// The live edge multiset must match under CloneID. Collect live
			// overlay edges: base edges not touching the target, plus the
			// delta edges.
			type edgeKey struct {
				from, to int
				bytes    int64
			}
			count := make(map[edgeKey]int)
			for _, e := range g.Edges() {
				if e.From == mid || e.To == mid {
					continue
				}
				count[edgeKey{ov.CloneID(e.From), ov.CloneID(e.To), e.Bytes}]++
			}
			for _, e := range ov.NewEdges() {
				count[edgeKey{ov.CloneID(e.From), ov.CloneID(e.To), e.Bytes}]++
			}
			for _, e := range clone.Edges() {
				k := edgeKey{e.From, e.To, e.Bytes}
				count[k]--
				if count[k] == 0 {
					delete(count, k)
				}
			}
			if len(count) != 0 {
				t.Fatalf("%s/%d: overlay/clone edge sets differ: %v", dim, n, count)
			}
			if got, want := ov.NumEdges(), g.NumEdges()+len(ov.NewEdges()); got != want {
				t.Fatalf("NumEdges %d, want %d", got, want)
			}
		}
	}
}

// TestSplitOverlayErrors pins the constructor to SplitOperation's error
// behaviour: both reject the same inputs.
func TestSplitOverlayErrors(t *testing.T) {
	g, mid := overlayTestGraph(t)
	cases := []struct {
		name string
		op   int
		dim  SplitDim
		n    int
		want error
	}{
		{"unknown op", 99, DimBatch, 2, ErrUnknownOp},
		{"negative op", -1, DimBatch, 2, ErrUnknownOp},
		{"n too small", mid, DimBatch, 1, ErrBadSplitCount},
		{"n exceeds extent", mid, DimChannel, 9, ErrBadSplitCount},
		{"unsplittable op", 4, DimBatch, 2, ErrNotSplittable}, // loss op
	}
	for _, tc := range cases {
		if _, err := NewSplitOverlay(g, tc.op, tc.dim, tc.n); !errors.Is(err, tc.want) {
			t.Errorf("%s: overlay err %v, want %v", tc.name, err, tc.want)
		}
		if _, err := SplitOperation(g, tc.op, tc.dim, tc.n); !errors.Is(err, tc.want) {
			t.Errorf("%s: clone err %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestSplitOverlayStaleness ties overlay validity to the base version.
func TestSplitOverlayStaleness(t *testing.T) {
	g, mid := overlayTestGraph(t)
	ov, err := NewSplitOverlay(g, mid, DimBatch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Stale() {
		t.Fatal("fresh overlay reports stale")
	}
	g.MustAddOp(&Op{Name: "late", Batch: 1})
	if !ov.Stale() {
		t.Fatal("overlay not stale after base mutation")
	}
}

// TestSplitOverlayMaterialize checks Materialize builds the identical graph
// SplitOperation builds, and that the base graph is never touched.
func TestSplitOverlayMaterialize(t *testing.T) {
	g, mid := overlayTestGraph(t)
	opsBefore, edgesBefore, verBefore := g.NumOps(), g.NumEdges(), g.Version()
	ov, err := NewSplitOverlay(g, mid, DimChannel, 2)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := ov.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := SplitOperation(g, mid, DimChannel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mat.NumOps() != clone.NumOps() || mat.NumEdges() != clone.NumEdges() {
		t.Fatalf("materialized %d ops/%d edges, clone %d/%d",
			mat.NumOps(), mat.NumEdges(), clone.NumOps(), clone.NumEdges())
	}
	for id := 0; id < mat.NumOps(); id++ {
		if mat.Op(id).Name != clone.Op(id).Name {
			t.Fatalf("op %d: %q vs %q", id, mat.Op(id).Name, clone.Op(id).Name)
		}
	}
	if err := mat.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
	if g.NumOps() != opsBefore || g.NumEdges() != edgesBefore || g.Version() != verBefore {
		t.Fatal("overlay construction or materialization mutated the base graph")
	}
}

// TestSplitOverlayCloneIDMonotone verifies the ID mapping preserves the
// relative order of live ops — the property every ID-based tie-break in the
// scheduler depends on.
func TestSplitOverlayCloneIDMonotone(t *testing.T) {
	g, mid := overlayTestGraph(t)
	ov, err := NewSplitOverlay(g, mid, DimBatch, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for id := 0; id < ov.NumOps(); id++ {
		if id == mid {
			continue
		}
		cid := ov.CloneID(id)
		if cid <= prev {
			t.Fatalf("CloneID not strictly increasing over live ops: id %d -> %d (prev %d)",
				id, cid, prev)
		}
		prev = cid
	}
	if prev != ov.NumOps()-2 {
		t.Fatalf("CloneID range ends at %d, want %d", prev, ov.NumOps()-2)
	}
}
