package graph

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := New()
	a := g.MustAddOp(&Op{
		Name: "conv", Kind: KindConv2D, FLOPs: 123, ParamBytes: 456,
		OutputBytes: 789, WorkspaceBytes: 10, Batch: 8, Channels: 64,
		Replica: -1, GradFor: "x", ColocateWith: "y",
	})
	b := g.MustAddOp(&Op{Name: "relu", Kind: KindRelu, Batch: 8})
	g.MustConnect(a, b, 789)

	var sb strings.Builder
	if err := g.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumOps() != 2 || got.NumEdges() != 1 {
		t.Fatalf("shape = %d ops %d edges", got.NumOps(), got.NumEdges())
	}
	conv, ok := got.OpByName("conv")
	if !ok {
		t.Fatal("conv missing")
	}
	want := g.Op(a)
	if conv.Kind != want.Kind || conv.FLOPs != want.FLOPs ||
		conv.ParamBytes != want.ParamBytes || conv.OutputBytes != want.OutputBytes ||
		conv.WorkspaceBytes != want.WorkspaceBytes || conv.Batch != want.Batch ||
		conv.Channels != want.Channels || conv.Replica != want.Replica ||
		conv.GradFor != want.GradFor || conv.ColocateWith != want.ColocateWith {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", conv, want)
	}
	e := got.Edges()[0]
	if got.Op(e.From).Name != "conv" || got.Op(e.To).Name != "relu" || e.Bytes != 789 {
		t.Errorf("edge mismatch: %+v", e)
	}
}

func TestReadJSONRejectsUnknownKind(t *testing.T) {
	doc := `{"ops":[{"name":"x","kind":"Quantum"}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestReadJSONRejectsDanglingEdge(t *testing.T) {
	doc := `{"ops":[{"name":"x","kind":"Relu"}],"edges":[{"from":"x","to":"y","bytes":1}]}`
	if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
		t.Error("dangling edge accepted")
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	doc := `{"ops":[{"name":"x","kind":"Relu","bogus":1}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestJSONRoundTripModelScale(t *testing.T) {
	g := chainGraph(t, 10)
	var sb strings.Builder
	if err := g.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.ComputeStats() != g.ComputeStats() {
		t.Errorf("stats changed: %+v vs %+v", got.ComputeStats(), g.ComputeStats())
	}
}
