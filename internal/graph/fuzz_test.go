package graph

import (
	"bytes"
	"testing"
)

// FuzzReadJSON asserts the graph decoder's contract on arbitrary bytes: it
// never panics, everything it accepts is a valid DAG, and accepted graphs
// serialize canonically — the written form re-reads and re-writes
// byte-identically.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"ops":[{"name":"x","kind":"Input","outputBytes":4},` +
		`{"name":"w","kind":"Variable","paramBytes":8},` +
		`{"name":"mm","kind":"MatMul","flops":64,"batch":2}],` +
		`"edges":[{"from":"x","to":"mm","bytes":4},{"from":"w","to":"mm","bytes":8}]}`))
	f.Add([]byte(`{"ops":[],"edges":[]}`))
	f.Add([]byte(`{"ops":[{"name":"a","kind":"Relu"},{"name":"b","kind":"Relu"}],` +
		`"edges":[{"from":"a","to":"b","bytes":0},{"from":"b","to":"a","bytes":0}]}`))
	f.Add([]byte(`{"ops":[{"name":"a","kind":"NoSuchKind"}]}`))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var first bytes.Buffer
		if err := g.WriteJSON(&first); err != nil {
			t.Fatalf("accepted graph does not serialize: %v", err)
		}
		h, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := h.WriteJSON(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip is not canonical:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
