package graph

import (
	"errors"
	"fmt"
	"sort"
)

// The paper's concluding discussion notes that FastT "does not handle
// graphs with cycles" (TensorFlow while-loops, e.g. dynamic RNNs) and
// proposes breaking the cycles and reorganizing the graph into a DAG as
// future work. This file implements that: strongly connected components
// identify loop bodies, and Unroll replicates each body a fixed number of
// times (the trip count), turning recurrent edges into iteration-to-
// iteration dependencies — exactly what static unrolling of a dynamic RNN
// does.

// ErrNoTrips is returned for non-positive trip counts.
var ErrNoTrips = errors.New("trip count must be positive")

// SCCs returns the strongly connected components of the graph with at
// least two ops (trivial single-op components are omitted; self-edges are
// rejected at construction). Components are returned in reverse
// topological order of the condensation, each as a sorted list of op IDs.
func (g *Graph) SCCs() [][]int {
	n := len(g.ops)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []int
		counter int
		out     [][]int
	)
	// Iterative Tarjan to survive deep unrolled graphs.
	type frame struct {
		v    int
		succ []int
		next int
	}
	var dfs func(root int)
	dfs = func(root int) {
		frames := []frame{{v: root, succ: g.Successors(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succ: g.Successors(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					sort.Ints(comp)
					out = append(out, comp)
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			dfs(v)
		}
	}
	return out
}

// HasCycles reports whether the graph contains any cycle.
func (g *Graph) HasCycles() bool {
	_, err := g.TopoOrder()
	return err != nil
}

// Unroll converts a cyclic graph into a DAG by statically unrolling every
// loop body `trips` times:
//
//   - ops outside any cycle are copied once, keeping their names;
//   - each loop body (a strongly connected component) is replicated per
//     trip as "<name>/iter<t>";
//   - forward edges inside a body connect within the same trip; back edges
//     (edges that would close the cycle) connect trip t to trip t+1 and are
//     dropped for the final trip;
//   - edges entering a body feed trip 0; edges leaving a body exit from the
//     final trip.
//
// An edge inside a body counts as a back edge when it points from a
// higher-index op to a lower-or-equal one under a DFS numbering of the
// body; for the canonical while-loop shape (cell -> state -> cell) this
// matches TensorFlow's NextIteration edges. Acyclic graphs are returned as
// a plain clone.
func Unroll(g *Graph, trips int) (*Graph, error) {
	if trips < 1 {
		return nil, fmt.Errorf("%w: %d", ErrNoTrips, trips)
	}
	comps := g.SCCs()
	if len(comps) == 0 {
		return g.Clone(), nil
	}
	compOf := make([]int, g.NumOps())
	for i := range compOf {
		compOf[i] = -1
	}
	for ci, comp := range comps {
		for _, id := range comp {
			compOf[id] = ci
		}
	}
	// Order each body with a deterministic DFS from its entry ops (body
	// ops receiving external edges), so back edges are recognizable.
	bodyPos := make([]int, g.NumOps())
	for ci, comp := range comps {
		pos := orderBody(g, comp, compOf, ci)
		for id, p := range pos {
			bodyPos[id] = p
		}
	}

	out := New()
	// newID maps (old ID, trip) -> new ID; non-body ops use trip 0.
	newID := make(map[[2]int]int, g.NumOps())
	addCopy := func(op *Op, trip int, suffix bool) error {
		c := op.clone()
		if suffix {
			c.Name = fmt.Sprintf("%s/iter%d", op.Name, trip)
			if c.GradFor != "" {
				c.GradFor = fmt.Sprintf("%s/iter%d", c.GradFor, trip)
			}
			if c.ColocateWith != "" && compOf[op.ID] >= 0 {
				c.ColocateWith = fmt.Sprintf("%s/iter%d", c.ColocateWith, trip)
			}
		}
		id, err := out.AddOp(c)
		if err != nil {
			return err
		}
		newID[[2]int{op.ID, trip}] = id
		return nil
	}
	for _, op := range g.Ops() {
		if compOf[op.ID] < 0 {
			if err := addCopy(op, 0, false); err != nil {
				return nil, fmt.Errorf("copy op: %w", err)
			}
			continue
		}
		for t := 0; t < trips; t++ {
			if err := addCopy(op, t, true); err != nil {
				return nil, fmt.Errorf("unroll op: %w", err)
			}
		}
	}

	lastTrip := trips - 1
	for _, e := range g.Edges() {
		fc, tc := compOf[e.From], compOf[e.To]
		switch {
		case fc < 0 && tc < 0:
			// Outside any loop.
			if err := out.Connect(newID[[2]int{e.From, 0}], newID[[2]int{e.To, 0}], e.Bytes); err != nil {
				return nil, fmt.Errorf("copy edge: %w", err)
			}
		case fc < 0 && tc >= 0:
			// Entering a loop: feed trip 0.
			if err := out.Connect(newID[[2]int{e.From, 0}], newID[[2]int{e.To, 0}], e.Bytes); err != nil {
				return nil, fmt.Errorf("loop input edge: %w", err)
			}
		case fc >= 0 && tc < 0:
			// Leaving a loop: exit from the final trip.
			if err := out.Connect(newID[[2]int{e.From, lastTrip}], newID[[2]int{e.To, 0}], e.Bytes); err != nil {
				return nil, fmt.Errorf("loop output edge: %w", err)
			}
		case fc != tc:
			// Between two distinct loops: final trip of one feeds trip 0
			// of the other (the condensation is acyclic).
			if err := out.Connect(newID[[2]int{e.From, lastTrip}], newID[[2]int{e.To, 0}], e.Bytes); err != nil {
				return nil, fmt.Errorf("inter-loop edge: %w", err)
			}
		default:
			// Inside one body: forward edges stay within a trip; back
			// edges advance to the next trip (and vanish after the last).
			back := bodyPos[e.From] >= bodyPos[e.To]
			for t := 0; t < trips; t++ {
				dst := t
				if back {
					dst = t + 1
					if dst >= trips {
						continue
					}
				}
				if err := out.Connect(newID[[2]int{e.From, t}], newID[[2]int{e.To, dst}], e.Bytes); err != nil {
					return nil, fmt.Errorf("body edge: %w", err)
				}
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("unrolled graph: %w", err)
	}
	return out, nil
}

// orderBody assigns DFS positions to a body's ops, starting from the ops
// that receive edges from outside the component (the loop entries).
func orderBody(g *Graph, comp []int, compOf []int, ci int) map[int]int {
	inBody := make(map[int]bool, len(comp))
	for _, id := range comp {
		inBody[id] = true
	}
	var entries []int
	for _, id := range comp {
		for _, p := range g.Predecessors(id) {
			if compOf[p] != ci {
				entries = append(entries, id)
				break
			}
		}
	}
	if len(entries) == 0 {
		entries = comp[:1] // detached loop: start anywhere, deterministically
	}
	pos := make(map[int]int, len(comp))
	next := 0
	var stack []int
	for _, e := range entries {
		stack = append(stack, e)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := pos[id]; seen {
			continue
		}
		pos[id] = next
		next++
		succs := g.Successors(id)
		// Push in reverse for stable left-to-right ordering.
		for i := len(succs) - 1; i >= 0; i-- {
			if inBody[succs[i]] {
				if _, seen := pos[succs[i]]; !seen {
					stack = append(stack, succs[i])
				}
			}
		}
	}
	// Any unreached stragglers (possible in exotic shapes).
	for _, id := range comp {
		if _, seen := pos[id]; !seen {
			pos[id] = next
			next++
		}
	}
	return pos
}
