package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors callers may match with errors.Is.
var (
	// ErrCycle is returned when a supposedly acyclic graph contains a cycle.
	ErrCycle = errors.New("graph contains a cycle")
	// ErrUnknownOp is returned when an op ID is out of range.
	ErrUnknownOp = errors.New("unknown operation")
	// ErrDuplicateName is returned when two ops share a name.
	ErrDuplicateName = errors.New("duplicate operation name")
	// ErrDuplicateEdge is returned when an edge is added twice.
	ErrDuplicateEdge = errors.New("duplicate edge")
	// ErrSelfEdge is returned when an edge would loop an op to itself.
	ErrSelfEdge = errors.New("self edge")
)

// Edge is a tensor flowing from one operation to another. Bytes is the
// tensor size; the communication cost model predicts its transfer time when
// From and To land on different devices.
type Edge struct {
	From, To int
	Bytes    int64
}

// Graph is a DNN computation DAG. Ops are identified by dense integer IDs
// (their index), which placement strategies and the simulator use to index
// flat slices.
type Graph struct {
	ops    []*Op
	edges  []Edge
	out    [][]int // op ID -> indices into edges (outgoing)
	in     [][]int // op ID -> indices into edges (incoming)
	byName map[string]int
	// version counts structural mutations (AddOp, Connect). Consumers that
	// cache graph-derived structures (topological order, edge indexes) key
	// their caches on (pointer, Version) and treat a version mismatch as
	// staleness.
	version uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]int)}
}

// NewWithCapacity returns an empty graph with storage preallocated for the
// given numbers of operations and edges, for bulk graph construction
// (data-parallel replication, SplitOperation candidates).
func NewWithCapacity(ops, edges int) *Graph {
	return &Graph{
		ops:    make([]*Op, 0, ops),
		edges:  make([]Edge, 0, edges),
		out:    make([][]int, 0, ops),
		in:     make([][]int, 0, ops),
		byName: make(map[string]int, ops),
	}
}

// Version returns the graph's structural mutation counter. Any AddOp or
// Connect increments it; two reads returning the same value bracket a span
// with no structural rewrites.
func (g *Graph) Version() uint64 { return g.version }

// NumOps returns the number of operations.
func (g *Graph) NumOps() int { return len(g.ops) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddOp inserts op, assigns and returns its ID. The op's Name must be
// non-empty and unique within the graph.
func (g *Graph) AddOp(op *Op) (int, error) {
	if op.Name == "" {
		return 0, errors.New("operation name is empty")
	}
	if _, ok := g.byName[op.Name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrDuplicateName, op.Name)
	}
	op.ID = len(g.ops)
	g.ops = append(g.ops, op)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byName[op.Name] = op.ID
	g.version++
	return op.ID, nil
}

// MustAddOp is AddOp for graph builders with statically known unique names;
// it panics on builder bugs (duplicate or empty names) rather than
// propagating errors through every model constructor.
func (g *Graph) MustAddOp(op *Op) int {
	id, err := g.AddOp(op)
	if err != nil {
		panic(err)
	}
	return id
}

// Connect adds a tensor edge carrying the given bytes from op `from` to op
// `to`.
func (g *Graph) Connect(from, to int, bytes int64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("%w: edge %d->%d", ErrUnknownOp, from, to)
	}
	if from == to {
		return fmt.Errorf("%w: op %d", ErrSelfEdge, from)
	}
	for _, ei := range g.out[from] {
		if g.edges[ei].To == to {
			return fmt.Errorf("%w: %d->%d", ErrDuplicateEdge, from, to)
		}
	}
	g.connectUnchecked(from, to, bytes)
	return nil
}

// connectUnchecked appends an edge without range, self-edge, or duplicate
// detection. Reserved for bulk construction paths (SplitOperation) whose
// inputs are already-validated graphs, where the per-edge duplicate scan of
// Connect dominates the rewrite cost.
func (g *Graph) connectUnchecked(from, to int, bytes int64) {
	ei := len(g.edges)
	g.edges = append(g.edges, Edge{From: from, To: to, Bytes: bytes})
	g.out[from] = append(g.out[from], ei)
	g.in[to] = append(g.in[to], ei)
	g.version++
}

// MustConnect is Connect for builders; see MustAddOp.
func (g *Graph) MustConnect(from, to int, bytes int64) {
	if err := g.Connect(from, to, bytes); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id int) bool { return id >= 0 && id < len(g.ops) }

// Op returns the operation with the given ID.
func (g *Graph) Op(id int) *Op { return g.ops[id] }

// OpByName returns the operation with the given name, if present.
func (g *Graph) OpByName(name string) (*Op, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.ops[id], true
}

// Ops returns the operations in ID order. The returned slice is shared;
// callers must not mutate it.
func (g *Graph) Ops() []*Op { return g.ops }

// Edges returns all edges. The returned slice is shared; callers must not
// mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// OutEdges returns the outgoing edges of op id.
func (g *Graph) OutEdges(id int) []Edge {
	return g.edgeList(g.out[id])
}

// InEdges returns the incoming edges of op id.
func (g *Graph) InEdges(id int) []Edge {
	return g.edgeList(g.in[id])
}

func (g *Graph) edgeList(idx []int) []Edge {
	if len(idx) == 0 {
		return nil
	}
	es := make([]Edge, len(idx))
	for i, ei := range idx {
		es[i] = g.edges[ei]
	}
	return es
}

// Successors returns the IDs of ops consuming id's output.
func (g *Graph) Successors(id int) []int {
	ids := make([]int, 0, len(g.out[id]))
	for _, ei := range g.out[id] {
		ids = append(ids, g.edges[ei].To)
	}
	return ids
}

// Predecessors returns the IDs of ops feeding id.
func (g *Graph) Predecessors(id int) []int {
	ids := make([]int, 0, len(g.in[id]))
	for _, ei := range g.in[id] {
		ids = append(ids, g.edges[ei].From)
	}
	return ids
}

// InDegree returns the number of incoming edges of op id.
func (g *Graph) InDegree(id int) int { return len(g.in[id]) }

// OutDegree returns the number of outgoing edges of op id.
func (g *Graph) OutDegree(id int) int { return len(g.out[id]) }

// EntryOps returns ops with no predecessors, in ID order.
func (g *Graph) EntryOps() []int {
	var ids []int
	for i := range g.ops {
		if len(g.in[i]) == 0 {
			ids = append(ids, i)
		}
	}
	return ids
}

// ExitOps returns ops with no successors, in ID order.
func (g *Graph) ExitOps() []int {
	var ids []int
	for i := range g.ops {
		if len(g.out[i]) == 0 {
			ids = append(ids, i)
		}
	}
	return ids
}

// TopoOrder returns a topological order of op IDs (Kahn's algorithm with a
// deterministic smallest-ID-first tie break) or ErrCycle if the graph is
// not acyclic.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for i := range g.ops {
		indeg[i] = len(g.in[i])
	}
	// Min-heap on op ID for determinism.
	ready := &intHeap{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready.push(i)
		}
	}
	order := make([]int, 0, n)
	for ready.len() > 0 {
		id := ready.pop()
		order = append(order, id)
		for _, ei := range g.out[id] {
			to := g.edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				ready.push(to)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity and consistent
// adjacency. It returns the first violation found.
func (g *Graph) Validate() error {
	for i, op := range g.ops {
		if op.ID != i {
			return fmt.Errorf("op %q has ID %d at index %d", op.Name, op.ID, i)
		}
		if got, ok := g.byName[op.Name]; !ok || got != i {
			return fmt.Errorf("name index inconsistent for %q", op.Name)
		}
	}
	for ei, e := range g.edges {
		if !g.valid(e.From) || !g.valid(e.To) {
			return fmt.Errorf("edge %d references unknown op", ei)
		}
		if e.Bytes < 0 {
			return fmt.Errorf("edge %d has negative bytes", ei)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ops:     make([]*Op, len(g.ops)),
		edges:   make([]Edge, len(g.edges)),
		out:     make([][]int, len(g.out)),
		in:      make([][]int, len(g.in)),
		byName:  make(map[string]int, len(g.byName)),
		version: g.version,
	}
	for i, op := range g.ops {
		c.ops[i] = op.clone()
	}
	copy(c.edges, g.edges)
	for i, idx := range g.out {
		c.out[i] = append([]int(nil), idx...)
	}
	for i, idx := range g.in {
		c.in[i] = append([]int(nil), idx...)
	}
	for k, v := range g.byName {
		c.byName[k] = v
	}
	return c
}

// Stats summarizes a graph for reports and documentation.
type Stats struct {
	Ops         int
	Edges       int
	TotalFLOPs  int64
	ParamBytes  int64
	TensorBytes int64
}

// ComputeStats returns aggregate statistics of the graph.
func (g *Graph) ComputeStats() Stats {
	var s Stats
	s.Ops = len(g.ops)
	s.Edges = len(g.edges)
	for _, op := range g.ops {
		s.TotalFLOPs += op.FLOPs
		s.ParamBytes += op.ParamBytes
	}
	for _, e := range g.edges {
		s.TensorBytes += e.Bytes
	}
	return s
}

// OpsByKind returns the number of ops per kind, for analysis output.
func (g *Graph) OpsByKind() map[OpKind]int {
	m := make(map[OpKind]int)
	for _, op := range g.ops {
		m[op.Kind]++
	}
	return m
}

// SortedNames returns all op names sorted, mainly for deterministic test
// output.
func (g *Graph) SortedNames() []string {
	names := make([]string, len(g.ops))
	for i, op := range g.ops {
		names[i] = op.Name
	}
	sort.Strings(names)
	return names
}

// intHeap is a minimal binary min-heap over ints, avoiding the
// container/heap interface boilerplate for this hot path.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}
