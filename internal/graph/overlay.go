package graph

import "fmt"

// SplitOverlay is a copy-on-write view of one SplitOperation rewrite: the
// target op is tombstoned in place and the n sub-operations plus the
// split/concat glue nodes are recorded as a delta over the base graph,
// instead of cloning every op and edge the way SplitOperation does. OS-DPOS
// evaluates one candidate graph per (dimension, split count) pair, and all
// but one candidate per critical-path op is discarded — the overlay makes
// the discarded candidates cost O(Δ) to construct instead of O(V+E).
//
// ID space: base op IDs are unchanged (the target keeps its ID but is dead:
// no live edge references it), and new ops are appended at base.NumOps()..
// in SplitOperation's creation order — sub-ops, then one split node per
// predecessor edge, then one concat node per successor edge. Base edge
// indexes are likewise unchanged (the edges touching the target remain in
// the array but must not be referenced), and new edges occupy
// base.NumEdges().. in creation order. Because the map from overlay IDs to
// SplitOperation-clone IDs (CloneID) is strictly monotone over live ops,
// every ID-based tie-break downstream orders live ops identically in both
// views, which is what makes overlay evaluation byte-identical to clone
// evaluation.
//
// The overlay never mutates the base graph and holds no mutable state after
// construction, so any number of concurrent readers may share it. Validity
// is tied to the base version at construction time (Stale).
type SplitOverlay struct {
	base        *Graph
	baseVersion uint64
	target      *Op
	dim         SplitDim
	n           int
	// newOps hold overlay IDs starting at base.NumOps(): first the n
	// sub-ops, then the split nodes (predecessor-edge order), then the
	// concat nodes (successor-edge order).
	newOps []*Op
	// newEdges occupy global edge indexes base.NumEdges()..; per
	// predecessor [pred→split, split→sub_0..n-1], then per successor
	// [sub_0..n-1→concat, concat→succ].
	newEdges []Edge
	subIDs   []int
}

// NewSplitOverlay validates and records the rewrite SplitOperation(g, opID,
// dim, n) would perform, without building the rewritten graph. It fails
// exactly when SplitOperation would fail.
func NewSplitOverlay(g *Graph, opID int, dim SplitDim, n int) (*SplitOverlay, error) {
	if opID < 0 || opID >= g.NumOps() {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownOp, opID)
	}
	target := g.Op(opID)
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSplitCount, n)
	}
	if err := checkSplittable(target, dim, n); err != nil {
		return nil, err
	}

	ins, outs := g.InDegree(opID), g.OutDegree(opID)
	ov := &SplitOverlay{
		base:        g,
		baseVersion: g.version,
		target:      target,
		dim:         dim,
		n:           n,
		newOps:      make([]*Op, 0, n+ins+outs),
		newEdges:    make([]Edge, 0, (ins+outs)*(n+1)),
	}
	// addOp mirrors Graph.AddOp's duplicate-name detection against the ops
	// the clone would contain (every base op except the target; names among
	// the new ops are distinct by construction).
	addOp := func(op *Op, what string) (int, error) {
		if id, ok := g.byName[op.Name]; ok && id != opID {
			return 0, fmt.Errorf("%s: %w: %q", what, ErrDuplicateName, op.Name)
		}
		op.ID = g.NumOps() + len(ov.newOps)
		ov.newOps = append(ov.newOps, op)
		return op.ID, nil
	}

	subIDs := make([]int, n)
	for i := 0; i < n; i++ {
		id, err := addOp(makeSubOp(target, dim, i, n), "add sub-op")
		if err != nil {
			return nil, err
		}
		subIDs[i] = id
	}
	for pi, e := range g.InEdges(opID) {
		spID, err := addOp(makeSplitNode(target, pi, e.Bytes, n), "add split node")
		if err != nil {
			return nil, err
		}
		ov.newEdges = append(ov.newEdges, Edge{From: e.From, To: spID, Bytes: e.Bytes})
		part := divideRound(e.Bytes, n)
		for i := 0; i < n; i++ {
			ov.newEdges = append(ov.newEdges, Edge{From: spID, To: subIDs[i], Bytes: part})
		}
	}
	for si, e := range g.OutEdges(opID) {
		conID, err := addOp(makeConcatNode(target, si, e.Bytes, n), "add concat node")
		if err != nil {
			return nil, err
		}
		part := divideRound(e.Bytes, n)
		for i := 0; i < n; i++ {
			ov.newEdges = append(ov.newEdges, Edge{From: subIDs[i], To: conID, Bytes: part})
		}
		ov.newEdges = append(ov.newEdges, Edge{From: conID, To: e.To, Bytes: e.Bytes})
	}
	ov.subIDs = subIDs
	return ov, nil
}

// Base returns the graph the overlay was built over.
func (ov *SplitOverlay) Base() *Graph { return ov.base }

// Target returns the tombstoned op. Its ID remains valid in the overlay's
// ID space but no live edge references it.
func (ov *SplitOverlay) Target() *Op { return ov.target }

// Dim returns the partition dimension of the recorded split.
func (ov *SplitOverlay) Dim() SplitDim { return ov.dim }

// N returns the number of sub-operations.
func (ov *SplitOverlay) N() int { return ov.n }

// NumOps returns the size of the overlay's op ID space, including the dead
// target ID.
func (ov *SplitOverlay) NumOps() int { return ov.base.NumOps() + len(ov.newOps) }

// NumEdges returns the size of the overlay's edge index space, including
// the dead base edges that touched the target.
func (ov *SplitOverlay) NumEdges() int { return ov.base.NumEdges() + len(ov.newEdges) }

// NewOps returns the delta ops (sub-ops, split nodes, concat nodes, in that
// order). The slice is shared; callers must not mutate it.
func (ov *SplitOverlay) NewOps() []*Op { return ov.newOps }

// NewEdges returns the delta edges; edge j has global index
// base.NumEdges()+j. The slice is shared; callers must not mutate it.
func (ov *SplitOverlay) NewEdges() []Edge { return ov.newEdges }

// SubOpIDs returns the overlay IDs of the n sub-operations.
func (ov *SplitOverlay) SubOpIDs() []int { return ov.subIDs }

// Op returns the operation with the given overlay ID. Passing the target's
// ID returns the dead op; callers iterating the ID space must skip it.
func (ov *SplitOverlay) Op(id int) *Op {
	if base := ov.base.NumOps(); id >= base {
		return ov.newOps[id-base]
	}
	return ov.base.Op(id)
}

// OpByName resolves a name in the overlay's view: the target's name is
// gone, the delta ops are visible, and everything else falls through to the
// base graph.
func (ov *SplitOverlay) OpByName(name string) (*Op, bool) {
	if name == ov.target.Name {
		return nil, false
	}
	for _, op := range ov.newOps {
		if op.Name == name {
			return op, true
		}
	}
	return ov.base.OpByName(name)
}

// Stale reports whether the base graph was structurally mutated after the
// overlay was built.
func (ov *SplitOverlay) Stale() bool { return ov.baseVersion != ov.base.Version() }

// Materialize builds the real rewritten graph via SplitOperation. Only the
// single accepted winner of a candidate round pays this cost.
func (ov *SplitOverlay) Materialize() (*Graph, error) {
	return SplitOperation(ov.base, ov.target.ID, ov.dim, ov.n)
}

// CloneID maps an overlay op ID to the ID the same op has in the graph
// SplitOperation builds (which omits the target and compacts the ID space),
// or -1 for the dead target. The map is strictly monotone over live ops.
func (ov *SplitOverlay) CloneID(id int) int {
	switch {
	case id < ov.target.ID:
		return id
	case id == ov.target.ID:
		return -1
	default:
		return id - 1
	}
}
