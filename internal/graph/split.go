package graph

import (
	"errors"
	"fmt"
)

// Errors returned by SplitOperation.
var (
	// ErrNotSplittable is returned when an op cannot be split on the
	// requested dimension.
	ErrNotSplittable = errors.New("operation not splittable on dimension")
	// ErrBadSplitCount is returned for split counts below 2 or exceeding
	// the dimension extent.
	ErrBadSplitCount = errors.New("invalid split count")
)

// SplitDecision records one entry of the operation split list SP[] produced
// by OS-DPOS (Alg. 2): the operation's name, the partition dimension, and
// the number of partitions.
type SplitDecision struct {
	OpName string   `json:"op"`
	Dim    SplitDim `json:"dim"`
	N      int      `json:"n"`
}

// String formats the decision as it appears in split lists.
func (s SplitDecision) String() string {
	return fmt.Sprintf("(%s, %s, %d)", s.OpName, s.Dim, s.N)
}

// SplitOperation implements the SplitOperation function of Alg. 2: it
// returns a new graph in which op `opID` of g is replaced by n
// sub-operations s_1..s_n partitioned on dimension dim. For every
// predecessor edge a Split node is inserted that scatters the tensor to the
// sub-operations; for every successor edge a Concat node gathers the
// sub-operation outputs. The input graph is not modified.
//
// Work (FLOPs) and output bytes divide evenly across sub-operations.
// Parameters divide only for channel splits; a batch split replicates the
// parameters to every sub-operation (the broadcast overhead the paper cites
// as the reason fc layers with large weights are not split, Table 5).
func SplitOperation(g *Graph, opID int, dim SplitDim, n int) (*Graph, error) {
	if opID < 0 || opID >= g.NumOps() {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownOp, opID)
	}
	target := g.Op(opID)
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadSplitCount, n)
	}
	if err := checkSplittable(target, dim, n); err != nil {
		return nil, err
	}

	// Candidate graphs are built in bulk from an already-validated source:
	// preallocate exactly and skip Connect's duplicate-edge scan. OS-DPOS
	// evaluates one candidate graph per (dimension, split count) pair, so
	// this construction is on the strategy calculator's hot path.
	ins, outs := g.InDegree(opID), g.OutDegree(opID)
	out := NewWithCapacity(g.NumOps()-1+n+ins+outs,
		g.NumEdges()+(ins+outs)*n)
	// idMap maps old op IDs to new IDs for all ops except the target.
	idMap := make([]int, g.NumOps())
	for _, op := range g.Ops() {
		if op.ID == opID {
			idMap[op.ID] = -1
			continue
		}
		c := op.clone()
		id, err := out.AddOp(c)
		if err != nil {
			return nil, fmt.Errorf("copy op: %w", err)
		}
		idMap[op.ID] = id
	}

	// Create the n sub-operations.
	subIDs := make([]int, n)
	for i := 0; i < n; i++ {
		sub := makeSubOp(target, dim, i, n)
		id, err := out.AddOp(sub)
		if err != nil {
			return nil, fmt.Errorf("add sub-op: %w", err)
		}
		subIDs[i] = id
	}

	// Copy all edges not touching the target. The source graph admits no
	// duplicate or self edges, so the copies need no re-validation.
	for _, e := range g.Edges() {
		if e.From == opID || e.To == opID {
			continue
		}
		out.connectUnchecked(idMap[e.From], idMap[e.To], e.Bytes)
	}

	// Per predecessor edge: insert a Split node scattering the tensor into
	// n partitions, one per sub-operation (Alg. 2 lines 20-23).
	for pi, e := range g.InEdges(opID) {
		sp := makeSplitNode(target, pi, e.Bytes, n)
		spID, err := out.AddOp(sp)
		if err != nil {
			return nil, fmt.Errorf("add split node: %w", err)
		}
		out.connectUnchecked(idMap[e.From], spID, e.Bytes)
		part := divideRound(e.Bytes, n)
		for i := 0; i < n; i++ {
			out.connectUnchecked(spID, subIDs[i], part)
		}
	}

	// Per successor edge: insert a Concat node gathering the sub-operation
	// outputs (Alg. 2 lines 24-27).
	for si, e := range g.OutEdges(opID) {
		con := makeConcatNode(target, si, e.Bytes, n)
		conID, err := out.AddOp(con)
		if err != nil {
			return nil, fmt.Errorf("add concat node: %w", err)
		}
		part := divideRound(e.Bytes, n)
		for i := 0; i < n; i++ {
			out.connectUnchecked(subIDs[i], conID, part)
		}
		out.connectUnchecked(conID, idMap[e.To], e.Bytes)
	}

	return out, nil
}

// makeSubOp builds the i-th of n sub-operations of a split. SplitOperation
// and SplitOverlay share it so the clone path and the copy-on-write overlay
// produce field-identical rewrites.
func makeSubOp(target *Op, dim SplitDim, i, n int) *Op {
	sub := target.clone()
	sub.Name = fmt.Sprintf("%s/part%d_of%d", target.Name, i, n)
	sub.FLOPs = divideRound(target.FLOPs, n)
	sub.OutputBytes = divideRound(target.OutputBytes, n)
	sub.WorkspaceBytes = divideRound(target.WorkspaceBytes, n)
	sub.SplitOf = target.Name
	sub.SplitN = n
	switch dim {
	case DimBatch:
		sub.Batch = target.Batch / n
		// Parameters replicate across batch partitions.
	case DimChannel:
		sub.Channels = target.Channels / n
		sub.ParamBytes = divideRound(target.ParamBytes, n)
	}
	return sub
}

// makeSplitNode builds the scatter node for the pi-th predecessor edge.
func makeSplitNode(target *Op, pi int, bytes int64, n int) *Op {
	return &Op{
		Name:        fmt.Sprintf("%s/split%d", target.Name, pi),
		Kind:        KindSplit,
		OutputBytes: bytes,
		Batch:       target.Batch,
		Replica:     target.Replica,
		SplitOf:     target.Name,
		SplitN:      n,
	}
}

// makeConcatNode builds the gather node for the si-th successor edge.
func makeConcatNode(target *Op, si int, bytes int64, n int) *Op {
	return &Op{
		Name:        fmt.Sprintf("%s/concat%d", target.Name, si),
		Kind:        KindConcat,
		OutputBytes: bytes,
		Batch:       target.Batch,
		Replica:     target.Replica,
		SplitOf:     target.Name,
		SplitN:      n,
	}
}

func checkSplittable(op *Op, dim SplitDim, n int) error {
	dims := op.SplittableDims()
	ok := false
	for _, d := range dims {
		if d == dim {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("%w: %s on %s", ErrNotSplittable, op.Name, dim)
	}
	extent := 0
	switch dim {
	case DimBatch:
		extent = op.Batch
	case DimChannel:
		extent = op.Channels
	}
	if n > extent {
		return fmt.Errorf("%w: n=%d exceeds %s extent %d of %s",
			ErrBadSplitCount, n, dim, extent, op.Name)
	}
	return nil
}

// divideRound divides v into n parts, rounding up so that per-part costs are
// not underestimated.
func divideRound(v int64, n int) int64 {
	return (v + int64(n) - 1) / int64(n)
}
