package graph

import (
	"errors"
	"strings"
	"testing"
)

// tinyModel builds input -> dense(fwd) -> loss -> dense_bp, where dense_bp
// produces the parameter gradient for dense.
func tinyModel(t *testing.T) *Graph {
	t.Helper()
	g := New()
	in := g.MustAddOp(&Op{Name: "input", Kind: KindInput, OutputBytes: 256, Batch: 8})
	fc := g.MustAddOp(&Op{
		Name: "dense", Kind: KindMatMul, FLOPs: 4096,
		ParamBytes: 1024, OutputBytes: 128, Batch: 8, Channels: 16,
	})
	loss := g.MustAddOp(&Op{Name: "loss", Kind: KindLoss, FLOPs: 64, OutputBytes: 4, Batch: 8})
	bp := g.MustAddOp(&Op{
		Name: "dense_bp", Kind: KindMatMulBackprop, FLOPs: 8192,
		OutputBytes: 1024, Batch: 8, Channels: 16, GradFor: "dense",
	})
	g.MustConnect(in, fc, 256)
	g.MustConnect(fc, loss, 128)
	g.MustConnect(loss, bp, 4)
	return g
}

func TestBuildDataParallelSingleReplica(t *testing.T) {
	m := tinyModel(t)
	g, err := BuildDataParallel(m, 1)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	// 4 model ops + variable + AddN + apply.
	if g.NumOps() != 7 {
		t.Errorf("NumOps = %d, want 7", g.NumOps())
	}
	if _, ok := g.OpByName("rep0/dense"); !ok {
		t.Error("replica 0 op missing")
	}
	if _, ok := g.OpByName("var/dense"); !ok {
		t.Error("shared variable missing")
	}
	if _, ok := g.OpByName("sync/dense/addn"); !ok {
		t.Error("aggregation op missing")
	}
	if _, ok := g.OpByName("sync/dense/apply"); !ok {
		t.Error("apply op missing")
	}
}

func TestBuildDataParallelReplication(t *testing.T) {
	m := tinyModel(t)
	const r = 4
	g, err := BuildDataParallel(m, r)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid DP graph: %v", err)
	}
	// 4 ops per replica + variable + AddN + apply.
	want := 4*r + 3
	if g.NumOps() != want {
		t.Errorf("NumOps = %d, want %d", g.NumOps(), want)
	}

	v, ok := g.OpByName("var/dense")
	if !ok {
		t.Fatal("variable missing")
	}
	// The variable feeds forward and backward ops of every replica.
	if got := g.OutDegree(v.ID); got != 2*r {
		t.Errorf("variable out-degree = %d, want %d", got, 2*r)
	}
	if v.ParamBytes != 1024 {
		t.Errorf("variable ParamBytes = %d, want 1024", v.ParamBytes)
	}
	// Replica ops carry no parameters anymore.
	fwd, _ := g.OpByName("rep2/dense")
	if fwd.ParamBytes != 0 {
		t.Errorf("replica op ParamBytes = %d, want 0", fwd.ParamBytes)
	}
	// Weight-fetch edges carry the parameter bytes.
	for _, e := range g.OutEdges(v.ID) {
		if e.Bytes != 1024 {
			t.Errorf("weight edge bytes = %d, want 1024", e.Bytes)
		}
	}

	agg, ok := g.OpByName("sync/dense/addn")
	if !ok {
		t.Fatal("aggregation op missing")
	}
	if got := g.InDegree(agg.ID); got != r {
		t.Errorf("aggregation in-degree = %d, want %d", got, r)
	}
	if agg.ColocateWith != "var/dense" {
		t.Errorf("aggregation ColocateWith = %q, want var/dense", agg.ColocateWith)
	}
	apply, ok := g.OpByName("sync/dense/apply")
	if !ok {
		t.Fatal("apply op missing")
	}
	if apply.ColocateWith != "var/dense" {
		t.Errorf("apply ColocateWith = %q, want var/dense", apply.ColocateWith)
	}
}

func TestBuildDataParallelReplicaTagging(t *testing.T) {
	m := tinyModel(t)
	g, err := BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	for _, op := range g.Ops() {
		switch {
		case strings.HasPrefix(op.Name, "rep0/"):
			if op.Replica != 0 {
				t.Errorf("%s Replica = %d, want 0", op.Name, op.Replica)
			}
		case strings.HasPrefix(op.Name, "rep1/"):
			if op.Replica != 1 {
				t.Errorf("%s Replica = %d, want 1", op.Name, op.Replica)
			}
		case strings.HasPrefix(op.Name, "sync/"), strings.HasPrefix(op.Name, "var/"):
			if op.Replica != -1 {
				t.Errorf("%s Replica = %d, want -1", op.Name, op.Replica)
			}
		}
	}
}

func TestBuildDataParallelMissingGradient(t *testing.T) {
	g := New()
	g.MustAddOp(&Op{Name: "w", Kind: KindMatMul, ParamBytes: 64, Batch: 4, OutputBytes: 4})
	_, err := BuildDataParallel(g, 2)
	if !errors.Is(err, ErrNoGradient) {
		t.Errorf("BuildDataParallel = %v, want ErrNoGradient", err)
	}
}

func TestBuildDataParallelRejectsBadReplicaCount(t *testing.T) {
	m := tinyModel(t)
	if _, err := BuildDataParallel(m, 0); err == nil {
		t.Error("BuildDataParallel accepted replicas=0")
	}
}

func TestBuildDataParallelGradForRewrittenPerReplica(t *testing.T) {
	m := tinyModel(t)
	g, err := BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	bp, ok := g.OpByName("rep1/dense_bp")
	if !ok {
		t.Fatal("replica backward op missing")
	}
	if bp.GradFor != "rep1/dense" {
		t.Errorf("GradFor = %q, want rep1/dense", bp.GradFor)
	}
}

func TestBuildDataParallelParamsCountedOnce(t *testing.T) {
	m := tinyModel(t)
	modelParams := m.ComputeStats().ParamBytes
	g, err := BuildDataParallel(m, 4)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	if got := g.ComputeStats().ParamBytes; got != modelParams {
		t.Errorf("DP graph ParamBytes = %d, want %d (shared variables)", got, modelParams)
	}
}
