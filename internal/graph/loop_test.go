package graph

import (
	"errors"
	"testing"
)

// cyclicRNN builds input -> cell <-> state -> output, the canonical
// while-loop shape of a dynamic RNN: cell feeds state, state feeds the
// cell of the next iteration (the back edge).
func cyclicRNN(t *testing.T) *Graph {
	t.Helper()
	g := New()
	in := g.MustAddOp(&Op{Name: "input", Kind: KindInput, OutputBytes: 1 << 10, Batch: 8})
	cell := g.MustAddOp(&Op{
		Name: "cell", Kind: KindLSTMCell, FLOPs: 1e6,
		ParamBytes: 1 << 12, OutputBytes: 1 << 10, Batch: 8, Channels: 64,
	})
	state := g.MustAddOp(&Op{Name: "state", Kind: KindIdentity, OutputBytes: 1 << 10, Batch: 8})
	out := g.MustAddOp(&Op{Name: "output", Kind: KindLoss, FLOPs: 1e4, OutputBytes: 4, Batch: 8})
	g.MustConnect(in, cell, 1<<10)
	g.MustConnect(cell, state, 1<<10)
	g.MustConnect(state, cell, 1<<10) // back edge: recurrence
	g.MustConnect(state, out, 1<<10)
	return g
}

func TestSCCsFindLoopBody(t *testing.T) {
	g := cyclicRNN(t)
	comps := g.SCCs()
	if len(comps) != 1 {
		t.Fatalf("SCCs = %d, want 1", len(comps))
	}
	if len(comps[0]) != 2 {
		t.Fatalf("body size = %d, want 2 (cell, state)", len(comps[0]))
	}
	names := map[string]bool{}
	for _, id := range comps[0] {
		names[g.Op(id).Name] = true
	}
	if !names["cell"] || !names["state"] {
		t.Errorf("body = %v, want cell+state", names)
	}
}

func TestSCCsAcyclicEmpty(t *testing.T) {
	g := chainGraph(t, 4)
	if comps := g.SCCs(); len(comps) != 0 {
		t.Errorf("SCCs of a DAG = %v, want none", comps)
	}
	if g.HasCycles() {
		t.Error("DAG reported cyclic")
	}
}

func TestHasCycles(t *testing.T) {
	if !cyclicRNN(t).HasCycles() {
		t.Error("cyclic graph reported acyclic")
	}
}

func TestUnrollProducesDAG(t *testing.T) {
	g := cyclicRNN(t)
	const trips = 5
	u, err := Unroll(g, trips)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("unrolled graph invalid: %v", err)
	}
	if u.HasCycles() {
		t.Fatal("unrolled graph still cyclic")
	}
	// 2 non-body ops + 2 body ops x 5 trips.
	if u.NumOps() != 2+2*trips {
		t.Errorf("NumOps = %d, want %d", u.NumOps(), 2+2*trips)
	}
	for _, name := range []string{"cell/iter0", "state/iter4", "input", "output"} {
		if _, ok := u.OpByName(name); !ok {
			t.Errorf("op %q missing after unroll", name)
		}
	}
}

func TestUnrollWiresIterations(t *testing.T) {
	g := cyclicRNN(t)
	u, err := Unroll(g, 3)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	// The back edge state->cell must become state/iterT -> cell/iterT+1.
	s0, _ := u.OpByName("state/iter0")
	c1, _ := u.OpByName("cell/iter1")
	found := false
	for _, succ := range u.Successors(s0.ID) {
		if succ == c1.ID {
			found = true
		}
	}
	if !found {
		t.Error("recurrence edge iter0 -> iter1 missing")
	}
	// The loop output must read the final iteration's state.
	out, _ := u.OpByName("output")
	s2, _ := u.OpByName("state/iter2")
	found = false
	for _, p := range u.Predecessors(out.ID) {
		if p == s2.ID {
			found = true
		}
	}
	if !found {
		t.Error("output not fed from final iteration")
	}
	// The external input feeds iteration 0 only.
	in, _ := u.OpByName("input")
	if got := u.OutDegree(in.ID); got != 1 {
		t.Errorf("input out-degree = %d, want 1", got)
	}
}

func TestUnrollAcyclicIsClone(t *testing.T) {
	g := chainGraph(t, 4)
	u, err := Unroll(g, 7)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	if u.NumOps() != g.NumOps() || u.NumEdges() != g.NumEdges() {
		t.Errorf("acyclic unroll changed shape: %d/%d vs %d/%d",
			u.NumOps(), u.NumEdges(), g.NumOps(), g.NumEdges())
	}
}

func TestUnrollBadTrips(t *testing.T) {
	g := cyclicRNN(t)
	if _, err := Unroll(g, 0); !errors.Is(err, ErrNoTrips) {
		t.Errorf("err = %v, want ErrNoTrips", err)
	}
}

func TestUnrollTripsOne(t *testing.T) {
	g := cyclicRNN(t)
	u, err := Unroll(g, 1)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	// One trip: the back edge disappears entirely.
	if u.HasCycles() {
		t.Error("single-trip unroll still cyclic")
	}
	if u.NumOps() != 4 {
		t.Errorf("NumOps = %d, want 4", u.NumOps())
	}
}

func TestUnrollTwoIndependentLoops(t *testing.T) {
	g := New()
	in := g.MustAddOp(&Op{Name: "in", Kind: KindInput, OutputBytes: 8, Batch: 2})
	a1 := g.MustAddOp(&Op{Name: "a1", Kind: KindLSTMCell, FLOPs: 10, OutputBytes: 8, Batch: 2})
	a2 := g.MustAddOp(&Op{Name: "a2", Kind: KindIdentity, OutputBytes: 8, Batch: 2})
	b1 := g.MustAddOp(&Op{Name: "b1", Kind: KindLSTMCell, FLOPs: 10, OutputBytes: 8, Batch: 2})
	b2 := g.MustAddOp(&Op{Name: "b2", Kind: KindIdentity, OutputBytes: 8, Batch: 2})
	sink := g.MustAddOp(&Op{Name: "sink", Kind: KindLoss, OutputBytes: 4, Batch: 2})
	g.MustConnect(in, a1, 8)
	g.MustConnect(a1, a2, 8)
	g.MustConnect(a2, a1, 8) // loop A
	g.MustConnect(a2, b1, 8)
	g.MustConnect(b1, b2, 8)
	g.MustConnect(b2, b1, 8) // loop B
	g.MustConnect(b2, sink, 8)

	u, err := Unroll(g, 2)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	if u.HasCycles() {
		t.Fatal("still cyclic")
	}
	// in + sink + 2x2 per loop body.
	if u.NumOps() != 2+4+4 {
		t.Errorf("NumOps = %d, want 10", u.NumOps())
	}
	// Loop A's final trip feeds loop B's first trip.
	a2last, _ := u.OpByName("a2/iter1")
	b1first, _ := u.OpByName("b1/iter0")
	found := false
	for _, s := range u.Successors(a2last.ID) {
		if s == b1first.ID {
			found = true
		}
	}
	if !found {
		t.Error("inter-loop edge not rewired from final to first trip")
	}
}
