package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

// splitFixture builds pre -> conv -> suc with a parameterized conv.
func splitFixture(t *testing.T) (*Graph, int) {
	t.Helper()
	g := New()
	pre := g.MustAddOp(&Op{Name: "pre", Kind: KindInput, OutputBytes: 1000, Batch: 8})
	conv := g.MustAddOp(&Op{
		Name:        "conv",
		Kind:        KindConv2D,
		FLOPs:       8000,
		ParamBytes:  400,
		OutputBytes: 2000,
		Batch:       8,
		Channels:    64,
	})
	suc := g.MustAddOp(&Op{Name: "suc", Kind: KindRelu, OutputBytes: 2000, Batch: 8})
	g.MustConnect(pre, conv, 1000)
	g.MustConnect(conv, suc, 2000)
	return g, conv
}

func TestSplitOperationBatchDim(t *testing.T) {
	g, conv := splitFixture(t)
	out, err := SplitOperation(g, conv, DimBatch, 4)
	if err != nil {
		t.Fatalf("SplitOperation: %v", err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("split graph invalid: %v", err)
	}
	// 2 untouched ops + 4 sub-ops + 1 split node + 1 concat node.
	if out.NumOps() != 8 {
		t.Errorf("NumOps = %d, want 8", out.NumOps())
	}
	if _, ok := out.OpByName("conv"); ok {
		t.Error("original op still present after split")
	}
	for i := 0; i < 4; i++ {
		sub, ok := out.OpByName("conv/part" + string(rune('0'+i)) + "_of4")
		if !ok {
			t.Fatalf("sub-op %d missing", i)
		}
		if sub.FLOPs != 2000 {
			t.Errorf("sub-op FLOPs = %d, want 2000", sub.FLOPs)
		}
		if sub.Batch != 2 {
			t.Errorf("sub-op Batch = %d, want 2", sub.Batch)
		}
		// Batch split replicates parameters.
		if sub.ParamBytes != 400 {
			t.Errorf("sub-op ParamBytes = %d, want 400 (replicated)", sub.ParamBytes)
		}
		if sub.SplitOf != "conv" || sub.SplitN != 4 {
			t.Errorf("sub-op lineage = (%q,%d), want (conv,4)", sub.SplitOf, sub.SplitN)
		}
	}
}

func TestSplitOperationChannelDimDividesParams(t *testing.T) {
	g, conv := splitFixture(t)
	out, err := SplitOperation(g, conv, DimChannel, 2)
	if err != nil {
		t.Fatalf("SplitOperation: %v", err)
	}
	sub, ok := out.OpByName("conv/part0_of2")
	if !ok {
		t.Fatal("sub-op missing")
	}
	if sub.ParamBytes != 200 {
		t.Errorf("channel-split ParamBytes = %d, want 200", sub.ParamBytes)
	}
	if sub.Channels != 32 {
		t.Errorf("channel-split Channels = %d, want 32", sub.Channels)
	}
}

func TestSplitOperationWiring(t *testing.T) {
	g, conv := splitFixture(t)
	out, err := SplitOperation(g, conv, DimBatch, 2)
	if err != nil {
		t.Fatalf("SplitOperation: %v", err)
	}
	sp, ok := out.OpByName("conv/split0")
	if !ok {
		t.Fatal("split node missing")
	}
	con, ok := out.OpByName("conv/concat0")
	if !ok {
		t.Fatal("concat node missing")
	}
	if got := out.OutDegree(sp.ID); got != 2 {
		t.Errorf("split node out-degree = %d, want 2", got)
	}
	if got := out.InDegree(con.ID); got != 2 {
		t.Errorf("concat node in-degree = %d, want 2", got)
	}
	// split node receives the full predecessor tensor.
	in := out.InEdges(sp.ID)
	if len(in) != 1 || in[0].Bytes != 1000 {
		t.Errorf("split in edges = %v, want one 1000B edge", in)
	}
	// sub-op edges carry partitioned bytes.
	for _, e := range out.OutEdges(sp.ID) {
		if e.Bytes != 500 {
			t.Errorf("split->sub edge bytes = %d, want 500", e.Bytes)
		}
	}
	// concat forwards the full tensor to the successor.
	oe := out.OutEdges(con.ID)
	if len(oe) != 1 || oe[0].Bytes != 2000 {
		t.Errorf("concat out edges = %v, want one 2000B edge", oe)
	}
}

func TestSplitOperationErrors(t *testing.T) {
	g, conv := splitFixture(t)
	tests := []struct {
		name    string
		op      int
		dim     SplitDim
		n       int
		wantErr error
	}{
		{"unknown op", 99, DimBatch, 2, ErrUnknownOp},
		{"n too small", conv, DimBatch, 1, ErrBadSplitCount},
		{"n exceeds extent", conv, DimBatch, 16, ErrBadSplitCount},
		{"unsplittable op", 0, DimBatch, 2, ErrNotSplittable}, // Input op
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := SplitOperation(g, tt.op, tt.dim, tt.n)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("SplitOperation = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSplitOperationDoesNotMutateInput(t *testing.T) {
	g, conv := splitFixture(t)
	before := g.NumOps()
	if _, err := SplitOperation(g, conv, DimBatch, 2); err != nil {
		t.Fatalf("SplitOperation: %v", err)
	}
	if g.NumOps() != before {
		t.Errorf("input graph mutated: NumOps %d -> %d", before, g.NumOps())
	}
	if _, ok := g.OpByName("conv"); !ok {
		t.Error("input graph lost the original op")
	}
}

// TestSplitPreservesTotalWork checks the invariant that splitting never
// loses FLOPs: the sub-operations together carry at least the original work
// (rounding may add a little).
func TestSplitPreservesTotalWork(t *testing.T) {
	f := func(flops int64, n8 uint8) bool {
		n := int(n8%7) + 2 // 2..8
		if flops < 0 {
			flops = -flops
		}
		g := New()
		a := g.MustAddOp(&Op{Name: "a", Kind: KindInput, OutputBytes: 64, Batch: 64})
		m := g.MustAddOp(&Op{
			Name: "m", Kind: KindMatMul, FLOPs: flops,
			OutputBytes: 640, Batch: 64, Channels: 64,
		})
		z := g.MustAddOp(&Op{Name: "z", Kind: KindLoss, Batch: 64})
		g.MustConnect(a, m, 64)
		g.MustConnect(m, z, 640)

		out, err := SplitOperation(g, m, DimBatch, n)
		if err != nil {
			return false
		}
		var total int64
		for _, op := range out.Ops() {
			if op.SplitOf == "m" && op.Kind == KindMatMul {
				total += op.FLOPs
			}
		}
		return total >= flops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDivideRound(t *testing.T) {
	tests := []struct {
		v    int64
		n    int
		want int64
	}{
		{10, 2, 5},
		{10, 3, 4},
		{0, 4, 0},
		{1, 8, 1},
	}
	for _, tt := range tests {
		if got := divideRound(tt.v, tt.n); got != tt.want {
			t.Errorf("divideRound(%d,%d) = %d, want %d", tt.v, tt.n, got, tt.want)
		}
	}
}
