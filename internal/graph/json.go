package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonOp is the serialized form of an Op.
type jsonOp struct {
	Name           string `json:"name"`
	Kind           string `json:"kind"`
	FLOPs          int64  `json:"flops,omitempty"`
	ParamBytes     int64  `json:"paramBytes,omitempty"`
	OutputBytes    int64  `json:"outputBytes,omitempty"`
	WorkspaceBytes int64  `json:"workspaceBytes,omitempty"`
	Batch          int    `json:"batch,omitempty"`
	Channels       int    `json:"channels,omitempty"`
	Replica        int    `json:"replica,omitempty"`
	SplitOf        string `json:"splitOf,omitempty"`
	SplitN         int    `json:"splitN,omitempty"`
	GradFor        string `json:"gradFor,omitempty"`
	ColocateWith   string `json:"colocateWith,omitempty"`
}

// jsonEdge is the serialized form of an Edge, referencing ops by name so
// the format is stable under ID renumbering.
type jsonEdge struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Bytes int64  `json:"bytes"`
}

// jsonGraph is the on-wire document.
type jsonGraph struct {
	Ops   []jsonOp   `json:"ops"`
	Edges []jsonEdge `json:"edges"`
}

// kindByName inverts the OpKind string mapping.
var _kindByName = func() map[string]OpKind {
	m := make(map[string]OpKind, len(_kindNames))
	for k, name := range _kindNames {
		m[name] = k
	}
	return m
}()

// WriteJSON serializes the graph as a stable, name-referenced JSON document
// suitable for storing model definitions or exchanging graphs with other
// tools.
func (g *Graph) WriteJSON(w io.Writer) error {
	doc := jsonGraph{
		Ops:   make([]jsonOp, 0, len(g.ops)),
		Edges: make([]jsonEdge, 0, len(g.edges)),
	}
	for _, op := range g.ops {
		doc.Ops = append(doc.Ops, jsonOp{
			Name:           op.Name,
			Kind:           op.Kind.String(),
			FLOPs:          op.FLOPs,
			ParamBytes:     op.ParamBytes,
			OutputBytes:    op.OutputBytes,
			WorkspaceBytes: op.WorkspaceBytes,
			Batch:          op.Batch,
			Channels:       op.Channels,
			Replica:        op.Replica,
			SplitOf:        op.SplitOf,
			SplitN:         op.SplitN,
			GradFor:        op.GradFor,
			ColocateWith:   op.ColocateWith,
		})
	}
	for _, e := range g.edges {
		doc.Edges = append(doc.Edges, jsonEdge{
			From:  g.ops[e.From].Name,
			To:    g.ops[e.To].Name,
			Bytes: e.Bytes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a graph previously produced by WriteJSON (or authored by
// hand) and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var doc jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode graph: %w", err)
	}
	g := New()
	for _, jo := range doc.Ops {
		kind, ok := _kindByName[jo.Kind]
		if !ok {
			return nil, fmt.Errorf("op %q: unknown kind %q", jo.Name, jo.Kind)
		}
		op := &Op{
			Name:           jo.Name,
			Kind:           kind,
			FLOPs:          jo.FLOPs,
			ParamBytes:     jo.ParamBytes,
			OutputBytes:    jo.OutputBytes,
			WorkspaceBytes: jo.WorkspaceBytes,
			Batch:          jo.Batch,
			Channels:       jo.Channels,
			Replica:        jo.Replica,
			SplitOf:        jo.SplitOf,
			SplitN:         jo.SplitN,
			GradFor:        jo.GradFor,
			ColocateWith:   jo.ColocateWith,
		}
		if _, err := g.AddOp(op); err != nil {
			return nil, err
		}
	}
	for _, je := range doc.Edges {
		from, ok := g.OpByName(je.From)
		if !ok {
			return nil, fmt.Errorf("edge references unknown op %q", je.From)
		}
		to, ok := g.OpByName(je.To)
		if !ok {
			return nil, fmt.Errorf("edge references unknown op %q", je.To)
		}
		if err := g.Connect(from.ID, to.ID, je.Bytes); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("decoded graph: %w", err)
	}
	return g, nil
}
