// Package models builds the computation DAGs of the nine benchmark models
// the paper evaluates (five CNNs: LeNet, AlexNet, VGG-19, ResNet200,
// Inception-v3; four NMT models: RNNLM, GNMT-4, Transformer, BERT-large),
// with per-operation FLOPs, parameter sizes, tensor sizes and splittable
// dimensions derived from the published architectures. Builders produce the
// full training graph structure: the forward DAG is mirrored into backward
// operations (each consuming its forward op's activation, which is what
// makes activation memory accumulate until the backward pass, as on real
// GPUs), and parameterized ops are paired with gradient producers so
// graph.BuildDataParallel can wire gradient aggregation.
package models

import (
	"fmt"

	"fastt/internal/graph"
)

// fwdEdge records a forward connection for backward mirroring.
type fwdEdge struct {
	from, to int
	bytes    int64
}

// builder incrementally assembles a forward DAG and then derives the
// backward pass by transposing it.
type builder struct {
	g      *graph.Graph
	batch  int
	edges  []fwdEdge
	isFwd  map[int]bool // ops that get a backward mirror
	outByt map[int]int64
	// retain scales the resident footprint of activations relative to the
	// wire tensor size, calibrating for framework-retained intermediates
	// (TensorFlow keeps more than the op outputs; see DESIGN.md).
	retain float64
	err    error
}

func newBuilder(batch int, retain float64) *builder {
	if retain <= 0 {
		retain = 1
	}
	return &builder{
		g:      graph.New(),
		batch:  batch,
		isFwd:  make(map[int]bool),
		outByt: make(map[int]int64),
		retain: retain,
	}
}

// opSpec describes one forward operation to add.
type opSpec struct {
	name     string
	kind     graph.OpKind
	flops    int64 // total for the whole batch
	params   int64 // parameter bytes
	outBytes int64 // output tensor wire size for the whole batch
	channels int
	// noGrad marks ops without a backward mirror (inputs, labels).
	noGrad bool
}

// add inserts a forward op and returns its ID; the op is connected to the
// given predecessor IDs, consuming their full outputs.
func (b *builder) add(spec opSpec, preds ...int) int {
	if b.err != nil {
		return -1
	}
	op := &graph.Op{
		Name:        spec.name,
		Kind:        spec.kind,
		FLOPs:       spec.flops,
		ParamBytes:  spec.params,
		OutputBytes: int64(b.retain * float64(spec.outBytes)),
		Batch:       b.batch,
		Channels:    spec.channels,
		Replica:     0,
	}
	id, err := b.g.AddOp(op)
	if err != nil {
		b.err = fmt.Errorf("add %q: %w", spec.name, err)
		return -1
	}
	b.outByt[id] = spec.outBytes
	if !spec.noGrad {
		b.isFwd[id] = true
	}
	for _, p := range preds {
		if p < 0 {
			continue
		}
		if err := b.g.Connect(p, id, b.outByt[p]); err != nil {
			b.err = fmt.Errorf("connect %d->%q: %w", p, spec.name, err)
			return id
		}
		b.edges = append(b.edges, fwdEdge{from: p, to: id, bytes: b.outByt[p]})
	}
	return id
}

// connectAux adds a forward edge carrying an explicit tensor size (e.g. a
// slice or context vector smaller than the producer's full output) and
// records it for backward mirroring.
func (b *builder) connectAux(from, to int, bytes int64) {
	if b.err != nil || from < 0 || to < 0 {
		return
	}
	if err := b.g.Connect(from, to, bytes); err != nil {
		b.err = fmt.Errorf("connect aux %d->%d: %w", from, to, err)
		return
	}
	b.edges = append(b.edges, fwdEdge{from: from, to: to, bytes: bytes})
}

// gradKind maps a forward kind to its backward counterpart.
func gradKind(k graph.OpKind) graph.OpKind {
	switch k {
	case graph.KindConv2D:
		return graph.KindConv2DBackprop
	case graph.KindMatMul:
		return graph.KindMatMulBackprop
	case graph.KindRelu:
		return graph.KindReluGrad
	case graph.KindMaxPool:
		return graph.KindMaxPoolGrad
	case graph.KindBatchNorm:
		return graph.KindBatchNormGrad
	case graph.KindLayerNorm:
		return graph.KindLayerNormGrad
	case graph.KindSoftmax:
		return graph.KindSoftmaxGrad
	case graph.KindLSTMCell:
		return graph.KindLSTMCellGrad
	case graph.KindEmbedding:
		return graph.KindEmbeddingGrad
	case graph.KindConcat:
		return graph.KindSplit
	case graph.KindSplit:
		return graph.KindConcat
	case graph.KindAddN:
		return graph.KindIdentity
	case graph.KindLoss:
		return graph.KindLossGrad
	default:
		return graph.KindIdentity
	}
}

// finish appends the loss and the transposed backward pass, returning the
// completed graph. lossInput is the forward op feeding the loss.
func (b *builder) finish(lossInput int) (*graph.Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	loss := b.add(opSpec{
		name: "loss", kind: graph.KindLoss,
		flops: int64(b.batch) * 1000, outBytes: 4,
		noGrad: true,
	}, lossInput)
	lossGrad := b.add(opSpec{
		name: "loss_grad", kind: graph.KindLossGrad,
		flops: int64(b.batch) * 1000, outBytes: b.outByt[lossInput],
		noGrad: true,
	}, loss)
	if b.err != nil {
		return nil, b.err
	}

	// Create backward mirrors in reverse creation order (a valid reverse
	// topological order, since ops connect only to earlier ops).
	bwd := make(map[int]int, len(b.isFwd))
	for id := b.g.NumOps() - 1; id >= 0; id-- {
		if !b.isFwd[id] {
			continue
		}
		f := b.g.Op(id)
		spec := opSpec{
			name:     f.Name + "_bp",
			kind:     gradKind(f.Kind),
			flops:    2 * f.FLOPs, // backward is ~2x forward (dX and dW)
			outBytes: b.inputBytes(id),
			channels: f.Channels,
			noGrad:   true,
		}
		gid := b.add(spec)
		if b.err != nil {
			return nil, b.err
		}
		if f.ParamBytes > 0 {
			b.g.Op(gid).GradFor = f.Name
		}
		// Retain the forward activation until the backward op consumes it.
		if err := b.g.Connect(id, gid, b.outByt[id]); err != nil {
			return nil, fmt.Errorf("activation edge for %q: %w", f.Name, err)
		}
		bwd[id] = gid
	}

	// Transpose the forward edges: grad flows v_bp -> u_bp.
	for _, e := range b.edges {
		gu, okU := bwd[e.from]
		gv, okV := bwd[e.to]
		if !okU || !okV {
			continue // boundary (input-like) ops take no gradient
		}
		if err := b.g.Connect(gv, gu, e.bytes); err != nil {
			return nil, fmt.Errorf("transpose edge: %w", err)
		}
	}
	// Wire the loss gradient into the last forward op's mirror.
	if gid, ok := bwd[lossInput]; ok {
		if err := b.g.Connect(lossGrad, gid, b.outByt[lossInput]); err != nil {
			return nil, fmt.Errorf("loss grad edge: %w", err)
		}
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("built graph: %w", err)
	}
	return b.g, nil
}

// inputBytes sums the wire sizes of an op's forward inputs — the size of
// the gradients its backward mirror emits.
func (b *builder) inputBytes(id int) int64 {
	var total int64
	for _, e := range b.g.InEdges(id) {
		total += e.Bytes
	}
	if total == 0 {
		total = b.outByt[id]
	}
	return total
}

// Tensor size helpers (fp32).

// fm returns the bytes of a feature map batch x h x w x c.
func fm(batch, h, w, c int) int64 {
	return int64(batch) * int64(h) * int64(w) * int64(c) * 4
}

// vec returns the bytes of a batch x n activation matrix.
func vec(batch, n int) int64 {
	return int64(batch) * int64(n) * 4
}

// convFLOPs returns the multiply-add FLOPs of a kxk convolution producing
// an h x w x cout map from cin channels, over the batch.
func convFLOPs(batch, h, w, cin, cout, k int) int64 {
	return 2 * int64(batch) * int64(h) * int64(w) * int64(cin) * int64(cout) * int64(k) * int64(k)
}

// convParams returns the parameter bytes of a kxk convolution (+bias).
func convParams(cin, cout, k int) int64 {
	return (int64(k)*int64(k)*int64(cin)*int64(cout) + int64(cout)) * 4
}

// denseFLOPs returns the FLOPs of a dense layer in->out over the batch.
func denseFLOPs(batch, in, out int) int64 {
	return 2 * int64(batch) * int64(in) * int64(out)
}

// denseParams returns the parameter bytes of a dense layer (+bias).
func denseParams(in, out int) int64 {
	return (int64(in)*int64(out) + int64(out)) * 4
}
