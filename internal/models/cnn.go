package models

import (
	"fmt"

	"fastt/internal/graph"
)

// convLayer appends conv + relu and returns the relu's ID.
func convLayer(b *builder, name string, pred int, h, w, cin, cout, k int) int {
	conv := b.add(opSpec{
		name:     name,
		kind:     graph.KindConv2D,
		flops:    convFLOPs(b.batch, h, w, cin, cout, k),
		params:   convParams(cin, cout, k),
		outBytes: fm(b.batch, h, w, cout),
		channels: cout,
	}, pred)
	return b.add(opSpec{
		name:     "relu_" + name,
		kind:     graph.KindRelu,
		flops:    int64(b.batch) * int64(h) * int64(w) * int64(cout),
		outBytes: fm(b.batch, h, w, cout),
		channels: cout,
	}, conv)
}

// poolLayer appends a max-pool halving the spatial dims.
func poolLayer(b *builder, name string, pred int, h, w, c int) int {
	return b.add(opSpec{
		name:     name,
		kind:     graph.KindMaxPool,
		flops:    int64(b.batch) * int64(h) * int64(w) * int64(c),
		outBytes: fm(b.batch, h/2, w/2, c),
		channels: c,
	}, pred)
}

// denseLayer appends a fully connected layer (+relu unless last).
func denseLayer(b *builder, name string, pred int, in, out int, relu bool) int {
	fc := b.add(opSpec{
		name:     name,
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(b.batch, in, out),
		params:   denseParams(in, out),
		outBytes: vec(b.batch, out),
		channels: out,
	}, pred)
	if !relu {
		return fc
	}
	return b.add(opSpec{
		name:     "relu_" + name,
		kind:     graph.KindRelu,
		flops:    int64(b.batch) * int64(out),
		outBytes: vec(b.batch, out),
		channels: out,
	}, fc)
}

// LeNet builds LeNet-5 (28x28x1 input): conv(6)-pool-conv(16)-pool-
// fc120-fc84-fc10. ~61K parameters.
func LeNet(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("lenet: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: fm(batch, 28, 28, 1), noGrad: true,
	})
	c1 := convLayer(b, "conv1", in, 28, 28, 1, 6, 5)
	p1 := poolLayer(b, "pool1", c1, 28, 28, 6)
	c2 := convLayer(b, "conv2", p1, 14, 14, 6, 16, 5)
	p2 := poolLayer(b, "pool2", c2, 14, 14, 16)
	f1 := denseLayer(b, "fc1", p2, 7*7*16, 120, true)
	f2 := denseLayer(b, "fc2", f1, 120, 84, true)
	f3 := denseLayer(b, "fc3", f2, 84, 10, false)
	return b.finish(f3)
}

// AlexNet builds AlexNet (224x224x3 input): 5 convolutions and 3 dense
// layers; fc6 holds 37.7M of the ~61M parameters.
func AlexNet(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("alexnet: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: fm(batch, 224, 224, 3), noGrad: true,
	})
	c1 := convLayer(b, "conv1", in, 55, 55, 3, 96, 11)
	p1 := poolLayer(b, "pool1", c1, 55, 55, 96) // -> 27
	c2 := convLayer(b, "conv2", p1, 27, 27, 96, 256, 5)
	p2 := poolLayer(b, "pool2", c2, 27, 27, 256) // -> 13
	c3 := convLayer(b, "conv3", p2, 13, 13, 256, 384, 3)
	c4 := convLayer(b, "conv4", c3, 13, 13, 384, 384, 3)
	c5 := convLayer(b, "conv5", c4, 13, 13, 384, 256, 3)
	p5 := poolLayer(b, "pool5", c5, 13, 13, 256) // -> 6
	f6 := denseLayer(b, "fc6", p5, 6*6*256, 4096, true)
	f7 := denseLayer(b, "fc7", f6, 4096, 4096, true)
	f8 := denseLayer(b, "fc8", f7, 4096, 1000, false)
	return b.finish(f8)
}

// VGG19 builds VGG-19 (224x224x3 input): 16 convolutions in 5 blocks and
// 3 dense layers; fc6 alone holds 102.76M of the ~143M parameters, the op
// the paper's Table 5 shows is *not* split because broadcasting its weights
// would dominate.
func VGG19(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("vgg19: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: fm(batch, 224, 224, 3), noGrad: true,
	})
	type blk struct {
		convs, cin, cout, hw int
	}
	blocks := []blk{
		{convs: 2, cin: 3, cout: 64, hw: 224},
		{convs: 2, cin: 64, cout: 128, hw: 112},
		{convs: 4, cin: 128, cout: 256, hw: 56},
		{convs: 4, cin: 256, cout: 512, hw: 28},
		{convs: 4, cin: 512, cout: 512, hw: 14},
	}
	prev := in
	for bi, blkSpec := range blocks {
		cin := blkSpec.cin
		for ci := 0; ci < blkSpec.convs; ci++ {
			name := fmt.Sprintf("conv%d_%d", bi+1, ci+1)
			prev = convLayer(b, name, prev, blkSpec.hw, blkSpec.hw, cin, blkSpec.cout, 3)
			cin = blkSpec.cout
		}
		prev = poolLayer(b, fmt.Sprintf("pool%d", bi+1), prev, blkSpec.hw, blkSpec.hw, blkSpec.cout)
	}
	f6 := denseLayer(b, "fc6", prev, 7*7*512, 4096, true)
	f7 := denseLayer(b, "fc7", f6, 4096, 4096, true)
	f8 := denseLayer(b, "fc8", f7, 4096, 1000, false)
	return b.finish(f8)
}
