package models

import (
	"errors"
	"strings"
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// paramMB returns total raw parameter megabytes of a graph.
func paramMB(g *graph.Graph) float64 {
	return float64(g.ComputeStats().ParamBytes) / float64(device.MiB)
}

func TestCatalogBuildsAndValidates(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.Build(spec.GlobalBatch)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if g.NumOps() < 10 {
				t.Errorf("suspiciously small graph: %d ops", g.NumOps())
			}
			// Every parameterized op must have a gradient producer so the
			// data-parallel builder can wire aggregation.
			grads := make(map[string]bool)
			for _, op := range g.Ops() {
				if op.GradFor != "" {
					grads[op.GradFor] = true
				}
			}
			for _, op := range g.Ops() {
				if op.ParamBytes > 0 && !grads[op.Name] {
					t.Errorf("parameterized op %q has no gradient producer", op.Name)
				}
			}
			// Backward mirrors exist.
			bp := 0
			for _, op := range g.Ops() {
				if strings.HasSuffix(op.Name, "_bp") {
					bp++
				}
			}
			if bp == 0 {
				t.Error("no backward ops in training graph")
			}
		})
	}
}

func TestCatalogDataParallelizable(t *testing.T) {
	// Every model must replicate cleanly (the paper's start strategy).
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.Build(smallBatch(spec))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			dp, err := graph.BuildDataParallel(g, 2)
			if err != nil {
				t.Fatalf("BuildDataParallel: %v", err)
			}
			if err := dp.Validate(); err != nil {
				t.Fatalf("Validate DP graph: %v", err)
			}
		})
	}
}

// smallBatch shrinks batches so the replication test stays fast.
func smallBatch(spec Spec) int {
	if spec.Name == "Transformer" {
		return 512
	}
	if spec.GlobalBatch > 32 {
		return 32
	}
	return spec.GlobalBatch
}

func TestParameterSizesMatchPublishedArchitectures(t *testing.T) {
	tests := []struct {
		name  string
		batch int
		minMB float64
		maxMB float64
	}{
		{"LeNet", 32, 0.1, 2},          // ~61K params = 0.24 MB
		{"AlexNet", 32, 200, 280},      // ~61M params = 233 MB
		{"VGG-19", 32, 500, 600},       // ~143M params = 548 MB
		{"ResNet200", 32, 200, 300},    // ~65M params = 248 MB
		{"Inception_v3", 32, 60, 130},  // ~24-30M params
		{"RNNLM", 32, 230, 330},        // ~66M params = 264 MB
		{"GNMT", 32, 350, 750},         // ~170M params (32K vocab, 4+4 layers)
		{"Transformer", 512, 200, 400}, // ~65M params = 250 MB
		{"Bert-large", 4, 1200, 1600},  // ~340M params = 1.36 GB
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := ByName(tt.name)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			g, err := spec.Build(tt.batch)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			mb := paramMB(g)
			if mb < tt.minMB || mb > tt.maxMB {
				t.Errorf("params = %.1f MB, want in [%.0f, %.0f]", mb, tt.minMB, tt.maxMB)
			}
		})
	}
}

func TestVGGFc6DominatesParameters(t *testing.T) {
	g, err := VGG19(32)
	if err != nil {
		t.Fatalf("VGG19: %v", err)
	}
	fc6, ok := g.OpByName("fc6")
	if !ok {
		t.Fatal("fc6 missing")
	}
	// Table 5: fc6 holds 102.76M parameters (~392 MB fp32).
	wantParams := int64(25088*4096+4096) * 4
	if fc6.ParamBytes != wantParams {
		t.Errorf("fc6 ParamBytes = %d, want %d", fc6.ParamBytes, wantParams)
	}
	stats := g.ComputeStats()
	if fc6.ParamBytes*2 < stats.ParamBytes {
		t.Errorf("fc6 (%d) should hold most parameters of %d", fc6.ParamBytes, stats.ParamBytes)
	}
}

func TestStrongScalingDividesWork(t *testing.T) {
	// Building at half the batch should roughly halve conv FLOPs.
	full, err := VGG19(64)
	if err != nil {
		t.Fatalf("VGG19(64): %v", err)
	}
	half, err := VGG19(32)
	if err != nil {
		t.Fatalf("VGG19(32): %v", err)
	}
	f := full.ComputeStats().TotalFLOPs
	h := half.ComputeStats().TotalFLOPs
	if h*2 != f {
		t.Errorf("FLOPs not linear in batch: full=%d half=%d", f, h)
	}
}

func TestConvOpsSplittable(t *testing.T) {
	g, err := VGG19(64)
	if err != nil {
		t.Fatalf("VGG19: %v", err)
	}
	conv, ok := g.OpByName("conv1_2")
	if !ok {
		t.Fatal("conv1_2 missing")
	}
	dims := conv.SplittableDims()
	if len(dims) != 2 {
		t.Errorf("conv1_2 splittable dims = %v, want batch+channel", dims)
	}
	bp, ok := g.OpByName("conv1_2_bp")
	if !ok {
		t.Fatal("conv1_2_bp missing")
	}
	if len(bp.SplittableDims()) == 0 {
		t.Error("conv backward not splittable")
	}
}

func TestBertLargeMemoryFootprint(t *testing.T) {
	g, err := BertLarge(16)
	if err != nil {
		t.Fatalf("BertLarge: %v", err)
	}
	mm := graph.DefaultMemoryModel()
	var static, act int64
	for _, op := range g.Ops() {
		static += int64(mm.ParamStateFactor * float64(op.ParamBytes))
		// Forward activations are all live when backprop begins (each is
		// retained for its _bp consumer); backward outputs are transient.
		if !strings.HasSuffix(op.Name, "_bp") {
			act += op.OutputBytes
		}
	}
	// Static (params+grad+Adam) must exceed 5 GB; total footprint at batch
	// 16 must be below 16 GB (Table 3: batch 16 trains on one V100).
	if static < 5*device.GiB {
		t.Errorf("static footprint = %.1f GiB, want > 5", float64(static)/float64(device.GiB))
	}
	if static+act > 16*device.GiB {
		t.Errorf("batch-16 footprint = %.1f GiB, must fit 16 GiB",
			float64(static+act)/float64(device.GiB))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("err = %v, want ErrUnknownModel", err)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("Names() = %d entries, want 9", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("Names() not sorted")
		}
	}
}

func TestGNMTHasAttentionAndDeepUnrolledStructure(t *testing.T) {
	g, err := GNMT(32)
	if err != nil {
		t.Fatalf("GNMT: %v", err)
	}
	if _, ok := g.OpByName("attention_t0"); !ok {
		t.Error("attention op missing")
	}
	if _, ok := g.OpByName("enc_l3_t31"); !ok {
		t.Error("deep unrolled encoder cell missing")
	}
	kinds := g.OpsByKind()
	if kinds[graph.KindLSTMCell] != 2*4*32 {
		t.Errorf("LSTM cells = %d, want 256", kinds[graph.KindLSTMCell])
	}
}

func TestBuildRejectsBadBatch(t *testing.T) {
	for _, spec := range Catalog() {
		if spec.Name == "Transformer" {
			continue // token batches round up to one sentence
		}
		if _, err := spec.Build(0); err == nil {
			t.Errorf("%s accepted batch 0", spec.Name)
		}
	}
}

// TestForwardGFLOPsMatchPublishedArchitectures pins each model's forward
// FLOPs per sample to the published ballpark, guarding the kernel-model
// calibration against accidental builder changes.
func TestForwardGFLOPsMatchPublishedArchitectures(t *testing.T) {
	tests := []struct {
		name     string
		batch    int
		min, max float64 // forward GFLOPs per sample
	}{
		{"LeNet", 64, 0.0001, 0.01},
		{"AlexNet", 64, 0.5, 3},
		{"VGG-19", 64, 15, 45},      // published ~19.6 fwd multiply-adds x2
		{"ResNet200", 32, 10, 40},   // ~15 GFLOPs fwd
		{"Inception_v3", 32, 3, 15}, // ~5.7 GFLOPs fwd
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec, err := ByName(tt.name)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			g, err := spec.Build(tt.batch)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			var fwd int64
			for _, op := range g.Ops() {
				if !graph.IsBackwardKind(op.Kind) {
					fwd += op.FLOPs
				}
			}
			perSample := float64(fwd) / float64(tt.batch) / 1e9
			if perSample < tt.min || perSample > tt.max {
				t.Errorf("forward GFLOPs/sample = %.2f, want in [%.2f, %.2f]",
					perSample, tt.min, tt.max)
			}
		})
	}
}

// TestBackwardRoughlyTwiceForward checks the training-graph convention that
// backward work is about twice the forward work.
func TestBackwardRoughlyTwiceForward(t *testing.T) {
	g, err := VGG19(32)
	if err != nil {
		t.Fatalf("VGG19: %v", err)
	}
	var fwd, bwd int64
	for _, op := range g.Ops() {
		if graph.IsBackwardKind(op.Kind) {
			bwd += op.FLOPs
		} else {
			fwd += op.FLOPs
		}
	}
	ratio := float64(bwd) / float64(fwd)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("backward/forward FLOPs ratio = %.2f, want ~2", ratio)
	}
}

func TestExtrasBuildAndSize(t *testing.T) {
	for _, spec := range Extras() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.Build(8)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if _, err := graph.BuildDataParallel(g, 2); err != nil {
				t.Fatalf("BuildDataParallel: %v", err)
			}
		})
	}
	// Published parameter counts: ResNet-50 ~25.6M (98 MB), GPT-2 small
	// ~124M (473 MB).
	r50, err := ResNet50(8)
	if err != nil {
		t.Fatalf("ResNet50: %v", err)
	}
	if mb := paramMB(r50); mb < 80 || mb > 130 {
		t.Errorf("ResNet50 params = %.1f MB, want ~98", mb)
	}
	gpt, err := GPT2Small(8)
	if err != nil {
		t.Fatalf("GPT2Small: %v", err)
	}
	// ~124M published with tied embeddings; our builder keeps the input
	// embedding and output projection separate (~155M untied).
	if mb := paramMB(gpt); mb < 380 || mb > 680 {
		t.Errorf("GPT2-small params = %.1f MB, want ~470-620", mb)
	}
}

// TestCatalogModelsJSONRoundTrip exercises the graph interchange format at
// full model scale: every catalog model must survive WriteJSON/ReadJSON
// with identical structure.
func TestCatalogModelsJSONRoundTrip(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g, err := spec.Build(smallBatch(spec))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			var sb strings.Builder
			if err := g.WriteJSON(&sb); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			back, err := graph.ReadJSON(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("ReadJSON: %v", err)
			}
			if back.NumOps() != g.NumOps() || back.NumEdges() != g.NumEdges() {
				t.Errorf("shape changed: %d/%d -> %d/%d",
					g.NumOps(), g.NumEdges(), back.NumOps(), back.NumEdges())
			}
			if back.ComputeStats() != g.ComputeStats() {
				t.Errorf("stats changed: %+v -> %+v", g.ComputeStats(), back.ComputeStats())
			}
		})
	}
}
