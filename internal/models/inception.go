package models

import (
	"fmt"

	"fastt/internal/graph"
)

// inceptionBranchConv appends one conv+relu of an inception branch.
func inceptionBranchConv(b *builder, name string, pred int, hw, cin, cout, k int) int {
	return convLayer(b, name, pred, hw, hw, cin, cout, k)
}

// inceptionModule appends a four-branch inception module at spatial size
// hw with cin input channels, returning the concat op. Branch widths are
// chosen so module output channels equal cout.
func inceptionModule(b *builder, name string, pred int, hw, cin, cout int) int {
	q := cout / 4
	m := q / 2 // bottleneck width of the 3x3 chains
	// Branch 1: 1x1.
	b1 := inceptionBranchConv(b, name+"/b1_1x1", pred, hw, cin, q, 1)
	// Branch 2: 1x1 -> 3x3.
	b2a := inceptionBranchConv(b, name+"/b2_1x1", pred, hw, cin, m, 1)
	b2 := inceptionBranchConv(b, name+"/b2_3x3", b2a, hw, m, q, 3)
	// Branch 3: 1x1 -> 3x3 -> 3x3 (factorized 5x5).
	b3a := inceptionBranchConv(b, name+"/b3_1x1", pred, hw, cin, m, 1)
	b3b := inceptionBranchConv(b, name+"/b3_3x3a", b3a, hw, m, m, 3)
	b3 := inceptionBranchConv(b, name+"/b3_3x3b", b3b, hw, m, q, 3)
	// Branch 4: pool -> 1x1.
	b4a := b.add(opSpec{
		name:     name + "/b4_pool",
		kind:     graph.KindMaxPool,
		flops:    int64(b.batch) * int64(hw*hw) * int64(cin),
		outBytes: fm(b.batch, hw, hw, cin),
		channels: cin,
	}, pred)
	b4 := inceptionBranchConv(b, name+"/b4_1x1", b4a, hw, cin, q, 1)

	return b.add(opSpec{
		name:     name + "/concat",
		kind:     graph.KindConcat,
		flops:    0,
		outBytes: fm(b.batch, hw, hw, cout),
		channels: cout,
	}, b1, b2, b3, b4)
}

// InceptionV3 builds Inception-v3 (299x299x3 input): a convolutional stem
// followed by eleven inception modules at 35/17/8 spatial resolution,
// ~23.8M parameters.
func InceptionV3(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("inception_v3: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: fm(batch, 299, 299, 3), noGrad: true,
	})
	// Stem: conv stride-2 chain down to 35x35x192.
	s1 := convLayer(b, "stem/conv1", in, 149, 149, 3, 32, 3)
	s2 := convLayer(b, "stem/conv2", s1, 147, 147, 32, 32, 3)
	s3 := convLayer(b, "stem/conv3", s2, 147, 147, 32, 64, 3)
	p1 := poolLayer(b, "stem/pool1", s3, 146, 146, 64) // -> 73
	s4 := convLayer(b, "stem/conv4", p1, 73, 73, 64, 80, 1)
	s5 := convLayer(b, "stem/conv5", s4, 71, 71, 80, 192, 3)
	prev := poolLayer(b, "stem/pool2", s5, 70, 70, 192) // -> 35

	cin := 192
	// 3 modules at 35x35 (mixed 0-2).
	for i := 0; i < 3; i++ {
		prev = inceptionModule(b, fmt.Sprintf("mixed%d", i), prev, 35, cin, 288)
		cin = 288
	}
	prev = poolLayer(b, "reduce1", prev, 35, 35, 288) // -> 17
	// 5 modules at 17x17 (mixed 3-7).
	for i := 3; i < 8; i++ {
		prev = inceptionModule(b, fmt.Sprintf("mixed%d", i), prev, 17, cin, 768)
		cin = 768
	}
	prev = poolLayer(b, "reduce2", prev, 17, 17, 768) // -> 8
	// 3 modules at 8x8 (mixed 8-10).
	for i := 8; i < 11; i++ {
		prev = inceptionModule(b, fmt.Sprintf("mixed%d", i), prev, 8, cin, 2048)
		cin = 2048
	}
	gap := b.add(opSpec{
		name:     "avgpool",
		kind:     graph.KindMaxPool,
		flops:    int64(batch) * 8 * 8 * 2048,
		outBytes: vec(batch, 2048),
		channels: 2048,
	}, prev)
	fc := denseLayer(b, "fc", gap, 2048, 1000, false)
	return b.finish(fc)
}
