package models

import (
	"fmt"

	"fastt/internal/graph"
)

// attnConfig parameterizes a transformer encoder/decoder stack.
type attnConfig struct {
	name      string
	layers    int // encoder layers
	decLayers int // decoder layers (0 for encoder-only models like BERT)
	dModel    int
	dFF       int
	heads     int
	seq       int
	vocab     int
	sentences int // batch in sentences; tokens = sentences * seq
	retain    float64
}

// selfAttention appends one multi-head self-attention sublayer and returns
// the output op. kv is the source of keys/values (pred itself for
// self-attention, the encoder output for cross-attention).
func selfAttention(b *builder, name string, pred, kv int, cfg attnConfig) int {
	tokens := cfg.sentences * cfg.seq
	d := cfg.dModel
	tokBytes := int64(tokens) * int64(d) * 4
	scoreBytes := int64(cfg.sentences) * int64(cfg.heads) * int64(cfg.seq) * int64(cfg.seq) * 4

	qkv := b.add(opSpec{
		name:     name + "/qkv",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(tokens, d, 3*d),
		params:   denseParams(d, 3*d),
		outBytes: 3 * tokBytes,
		channels: d,
	}, pred)
	if kv != pred && kv >= 0 {
		// Cross-attention reads the encoder memory.
		b.connectAux(kv, qkv, tokBytes)
	}
	scores := b.add(opSpec{
		name:     name + "/scores",
		kind:     graph.KindMatMul,
		flops:    2 * int64(tokens) * int64(cfg.seq) * int64(d),
		outBytes: scoreBytes,
		channels: cfg.heads,
	}, qkv)
	probs := b.add(opSpec{
		name:     name + "/softmax",
		kind:     graph.KindSoftmax,
		flops:    3 * int64(cfg.sentences) * int64(cfg.heads) * int64(cfg.seq) * int64(cfg.seq),
		outBytes: scoreBytes,
		channels: cfg.heads,
	}, scores)
	ctx := b.add(opSpec{
		name:     name + "/context",
		kind:     graph.KindMatMul,
		flops:    2 * int64(tokens) * int64(cfg.seq) * int64(d),
		outBytes: tokBytes,
		channels: d,
	}, probs, qkv)
	out := b.add(opSpec{
		name:     name + "/out_proj",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(tokens, d, d),
		params:   denseParams(d, d),
		outBytes: tokBytes,
		channels: d,
	}, ctx)
	return b.add(opSpec{
		name:     name + "/ln",
		kind:     graph.KindLayerNorm,
		flops:    8 * int64(tokens) * int64(d),
		params:   int64(2*d) * 4,
		outBytes: tokBytes,
		channels: d,
	}, out, pred) // residual
}

// feedForward appends the position-wise FFN sublayer with residual + LN.
func feedForward(b *builder, name string, pred int, cfg attnConfig) int {
	tokens := cfg.sentences * cfg.seq
	d, ff := cfg.dModel, cfg.dFF
	tokBytes := int64(tokens) * int64(d) * 4
	ffBytes := int64(tokens) * int64(ff) * 4

	f1 := b.add(opSpec{
		name:     name + "/ff1",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(tokens, d, ff),
		params:   denseParams(d, ff),
		outBytes: ffBytes,
		channels: ff,
	}, pred)
	act := b.add(opSpec{
		name:     name + "/gelu",
		kind:     graph.KindRelu,
		flops:    8 * int64(tokens) * int64(ff),
		outBytes: ffBytes,
		channels: ff,
	}, f1)
	f2 := b.add(opSpec{
		name:     name + "/ff2",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(tokens, ff, d),
		params:   denseParams(ff, d),
		outBytes: tokBytes,
		channels: d,
	}, act)
	return b.add(opSpec{
		name:     name + "/ln",
		kind:     graph.KindLayerNorm,
		flops:    8 * int64(tokens) * int64(d),
		params:   int64(2*d) * 4,
		outBytes: tokBytes,
		channels: d,
	}, f2, pred) // residual
}

// buildAttentionModel assembles an embedding + encoder stack (+ optional
// decoder stack with cross-attention) + output projection.
func buildAttentionModel(cfg attnConfig) (*graph.Graph, error) {
	if cfg.sentences < 1 {
		return nil, fmt.Errorf("%s: batch %d sentences", cfg.name, cfg.sentences)
	}
	b := newBuilder(cfg.sentences, cfg.retain)
	tokens := cfg.sentences * cfg.seq
	d := cfg.dModel
	tokBytes := int64(tokens) * int64(d) * 4

	in := b.add(opSpec{
		name: "tokens", kind: graph.KindInput,
		outBytes: vec(cfg.sentences, cfg.seq), noGrad: true,
	})
	emb := b.add(opSpec{
		name:     "embedding",
		kind:     graph.KindEmbedding,
		flops:    int64(tokens) * int64(d),
		params:   int64(cfg.vocab) * int64(d) * 4,
		outBytes: tokBytes,
		channels: d,
	}, in)

	prev := emb
	for l := 0; l < cfg.layers; l++ {
		name := fmt.Sprintf("enc%d", l)
		prev = selfAttention(b, name+"/attn", prev, prev, cfg)
		prev = feedForward(b, name+"/ffn", prev, cfg)
	}
	encOut := prev

	if cfg.decLayers > 0 {
		tgt := b.add(opSpec{
			name: "tgt_tokens", kind: graph.KindInput,
			outBytes: vec(cfg.sentences, cfg.seq), noGrad: true,
		})
		tgtEmb := b.add(opSpec{
			name:     "tgt_embedding",
			kind:     graph.KindEmbedding,
			flops:    int64(tokens) * int64(d),
			params:   int64(cfg.vocab) * int64(d) * 4,
			outBytes: tokBytes,
			channels: d,
		}, tgt)
		prev = tgtEmb
		for l := 0; l < cfg.decLayers; l++ {
			name := fmt.Sprintf("dec%d", l)
			prev = selfAttention(b, name+"/self", prev, prev, cfg)
			prev = selfAttention(b, name+"/cross", prev, encOut, cfg)
			prev = feedForward(b, name+"/ffn", prev, cfg)
		}
	}

	proj := b.add(opSpec{
		name:     "proj",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(tokens, d, cfg.vocab),
		params:   denseParams(d, cfg.vocab),
		outBytes: int64(tokens) * int64(cfg.vocab) * 4,
		channels: cfg.vocab,
	}, prev)
	return b.finish(proj)
}

// transformerSeqLen is the sentence length assumed when converting the
// paper's token batch (4096) into sentences.
const transformerSeqLen = 32

// Transformer builds the base Transformer (6+6 layers, d=512, ff=2048,
// 8 heads, 32K vocabulary). batchTokens is the global batch in tokens, as
// the paper reports it (4096).
func Transformer(batchTokens int) (*graph.Graph, error) {
	sentences := batchTokens / transformerSeqLen
	if sentences < 1 {
		sentences = 1
	}
	return buildAttentionModel(attnConfig{
		name:      "transformer",
		layers:    6,
		decLayers: 6,
		dModel:    512,
		dFF:       2048,
		heads:     8,
		seq:       transformerSeqLen,
		vocab:     32000,
		sentences: sentences,
		retain:    1,
	})
}

// bertRetain calibrates BERT-large's resident activation footprint to the
// memory behaviour the paper reports in Table 3 (TF 1.14 keeps
// substantially more than the op outputs: per-head temporaries, dropout
// masks, cast copies): batch 16 fits one 16 GB V100, batch 32 does not;
// batch 32 fits two GPUs under data parallelism, batch 40 does not; FastT
// fits batch 48 on two GPUs via model parallelism.
const bertRetain = 4.45

// BertLarge builds BERT-large (24 layers, d=1024, ff=4096, 16 heads) at
// sequence length 64 (the paper's setting), ~340M parameters. batch is in
// samples (sequences).
func BertLarge(batch int) (*graph.Graph, error) {
	return buildAttentionModel(attnConfig{
		name:      "bert-large",
		layers:    24,
		decLayers: 0,
		dModel:    1024,
		dFF:       4096,
		heads:     16,
		seq:       64,
		vocab:     30522,
		sentences: batch,
		retain:    bertRetain,
	})
}
