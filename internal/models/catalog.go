package models

import (
	"errors"
	"fmt"
	"sort"

	"fastt/internal/graph"
)

// ErrUnknownModel is returned when a model name is not in the catalog.
var ErrUnknownModel = errors.New("unknown model")

// Spec describes one benchmark model: its builder and the batch sizes the
// paper evaluates it at (Table 1 uses GlobalBatch under strong scaling;
// Table 2 uses PerGPUBatch under weak scaling).
type Spec struct {
	// Name as used in the paper's tables.
	Name string
	// Build returns the model graph at the given batch size. For
	// Transformer the batch is in tokens, matching the paper; for all
	// other models it is in samples.
	Build func(batch int) (*graph.Graph, error)
	// GlobalBatch is the strong-scaling global batch (Table 1).
	GlobalBatch int
	// PerGPUBatch is the weak-scaling per-GPU batch (Table 2).
	PerGPUBatch int
	// Kind groups models for analysis output ("cnn" or "nmt").
	Kind string
}

// Catalog returns all nine benchmark models in the paper's table order.
func Catalog() []Spec {
	return []Spec{
		{Name: "Inception_v3", Build: InceptionV3, GlobalBatch: 64, PerGPUBatch: 64, Kind: "cnn"},
		{Name: "VGG-19", Build: VGG19, GlobalBatch: 64, PerGPUBatch: 64, Kind: "cnn"},
		{Name: "ResNet200", Build: ResNet200, GlobalBatch: 32, PerGPUBatch: 32, Kind: "cnn"},
		{Name: "LeNet", Build: LeNet, GlobalBatch: 256, PerGPUBatch: 256, Kind: "cnn"},
		{Name: "AlexNet", Build: AlexNet, GlobalBatch: 256, PerGPUBatch: 256, Kind: "cnn"},
		{Name: "GNMT", Build: GNMT, GlobalBatch: 128, PerGPUBatch: 128, Kind: "nmt"},
		{Name: "RNNLM", Build: RNNLM, GlobalBatch: 64, PerGPUBatch: 64, Kind: "nmt"},
		{Name: "Transformer", Build: Transformer, GlobalBatch: 4096, PerGPUBatch: 4096, Kind: "nmt"},
		{Name: "Bert-large", Build: BertLarge, GlobalBatch: 16, PerGPUBatch: 16, Kind: "nmt"},
	}
}

// ByName looks a model up by its table name, searching the paper catalog
// and the extra models.
func ByName(name string) (Spec, error) {
	for _, s := range append(Catalog(), Extras()...) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// Names returns the catalog's model names sorted alphabetically.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
