package models

import (
	"fmt"

	"fastt/internal/graph"
)

// bottleneck appends one ResNet bottleneck block (1x1 reduce, 3x3, 1x1
// expand, skip add) and returns the output op ID.
func bottleneck(b *builder, name string, pred int, hw, cin, cmid, cout int, downsample bool) int {
	stride := 1
	outHW := hw
	if downsample {
		stride = 2
		outHW = hw / 2
	}
	r1 := b.add(opSpec{
		name:     name + "/conv1x1a",
		kind:     graph.KindConv2D,
		flops:    convFLOPs(b.batch, outHW, outHW, cin, cmid, 1),
		params:   convParams(cin, cmid, 1),
		outBytes: fm(b.batch, outHW, outHW, cmid),
		channels: cmid,
	}, pred)
	bn1 := b.add(opSpec{
		name:     name + "/bn1",
		kind:     graph.KindBatchNorm,
		flops:    int64(b.batch) * int64(outHW*outHW) * int64(cmid) * 4,
		params:   int64(cmid) * 4 * 4,
		outBytes: fm(b.batch, outHW, outHW, cmid),
		channels: cmid,
	}, r1)
	r2 := b.add(opSpec{
		name:     name + "/conv3x3",
		kind:     graph.KindConv2D,
		flops:    convFLOPs(b.batch, outHW, outHW, cmid, cmid, 3),
		params:   convParams(cmid, cmid, 3),
		outBytes: fm(b.batch, outHW, outHW, cmid),
		channels: cmid,
	}, bn1)
	bn2 := b.add(opSpec{
		name:     name + "/bn2",
		kind:     graph.KindBatchNorm,
		flops:    int64(b.batch) * int64(outHW*outHW) * int64(cmid) * 4,
		params:   int64(cmid) * 4 * 4,
		outBytes: fm(b.batch, outHW, outHW, cmid),
		channels: cmid,
	}, r2)
	r3 := b.add(opSpec{
		name:     name + "/conv1x1b",
		kind:     graph.KindConv2D,
		flops:    convFLOPs(b.batch, outHW, outHW, cmid, cout, 1),
		params:   convParams(cmid, cout, 1),
		outBytes: fm(b.batch, outHW, outHW, cout),
		channels: cout,
	}, bn2)

	skip := pred
	if cin != cout || downsample {
		skip = b.add(opSpec{
			name:     name + "/proj",
			kind:     graph.KindConv2D,
			flops:    convFLOPs(b.batch, outHW, outHW, cin, cout, 1),
			params:   convParams(cin, cout, 1),
			outBytes: fm(b.batch, outHW, outHW, cout),
			channels: cout,
		}, pred)
	}
	_ = stride
	return b.add(opSpec{
		name:     name + "/add",
		kind:     graph.KindAddN,
		flops:    int64(b.batch) * int64(outHW*outHW) * int64(cout),
		outBytes: fm(b.batch, outHW, outHW, cout),
		channels: cout,
	}, r3, skip)
}

// ResNet200 builds ResNet-200 (224x224x3 input): stages of bottleneck
// blocks [3, 24, 36, 3] over channels 256/512/1024/2048, ~64.7M parameters.
func ResNet200(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("resnet200: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: fm(batch, 224, 224, 3), noGrad: true,
	})
	stem := convLayer(b, "conv1", in, 112, 112, 3, 64, 7)
	prev := poolLayer(b, "pool1", stem, 112, 112, 64) // -> 56

	type stage struct {
		blocks, cmid, cout, hw int
	}
	stages := []stage{
		{blocks: 3, cmid: 64, cout: 256, hw: 56},
		{blocks: 24, cmid: 128, cout: 512, hw: 56},
		{blocks: 36, cmid: 256, cout: 1024, hw: 28},
		{blocks: 3, cmid: 512, cout: 2048, hw: 14},
	}
	cin := 64
	for si, st := range stages {
		hw := st.hw
		for bi := 0; bi < st.blocks; bi++ {
			name := fmt.Sprintf("stage%d/block%d", si+1, bi+1)
			down := si > 0 && bi == 0
			prev = bottleneck(b, name, prev, hw, cin, st.cmid, st.cout, down)
			if down {
				hw /= 2
			}
			cin = st.cout
		}
	}
	// Global average pool + classifier.
	gap := b.add(opSpec{
		name:     "avgpool",
		kind:     graph.KindMaxPool,
		flops:    int64(batch) * 7 * 7 * 2048,
		outBytes: vec(batch, 2048),
		channels: 2048,
	}, prev)
	fc := denseLayer(b, "fc", gap, 2048, 1000, false)
	return b.finish(fc)
}
