package models

import (
	"fmt"

	"fastt/internal/graph"
)

// lstmCellFLOPs returns the FLOPs of one LSTM cell step over the batch:
// four gates, each a dense layer over [x, h].
func lstmCellFLOPs(batch, input, hidden int) int64 {
	return 2 * 4 * int64(batch) * int64(hidden) * int64(input+hidden)
}

// lstmCellParams returns the parameter bytes of an LSTM layer.
func lstmCellParams(input, hidden int) int64 {
	return (4*int64(hidden)*int64(input+hidden) + 4*int64(hidden)) * 4
}

// lstmCell appends one unrolled LSTM cell. Parameters are amortized over
// the unrolled steps (seq) so the layer's total parameter bytes are
// represented once; see DESIGN.md for this modelling choice. below is the
// input from the lower layer (or embedding), left the previous step's cell
// of the same layer (recurrent h/c), either may be -1.
func lstmCell(b *builder, name string, below, left int, input, hidden, seq int) int {
	preds := make([]int, 0, 2)
	if below >= 0 {
		preds = append(preds, below)
	}
	if left >= 0 {
		preds = append(preds, left)
	}
	return b.add(opSpec{
		name:     name,
		kind:     graph.KindLSTMCell,
		flops:    lstmCellFLOPs(b.batch, input, hidden),
		params:   lstmCellParams(input, hidden) / int64(seq),
		outBytes: 2 * vec(b.batch, hidden), // h and c
		channels: hidden,
	}, preds...)
}

// RNNLM builds the Zaremba et al. word language model: 2 LSTM layers of
// 1500 hidden units unrolled over 35 steps, 10K vocabulary, ~66M
// parameters.
func RNNLM(batch int) (*graph.Graph, error) {
	return buildRNNLM(batch, 10000, 1500, 2, 35)
}

func buildRNNLM(batch, vocab, hidden, layers, seq int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("rnnlm: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "tokens", kind: graph.KindInput,
		outBytes: vec(batch, seq) /* int ids */, noGrad: true,
	})
	emb := b.add(opSpec{
		name:     "embedding",
		kind:     graph.KindEmbedding,
		flops:    int64(batch) * int64(seq) * int64(hidden),
		params:   int64(vocab) * int64(hidden) * 4,
		outBytes: int64(batch) * int64(seq) * int64(hidden) * 4,
		channels: hidden,
	}, in)

	// Unrolled grid of cells: prev[l] is step t-1's cell of layer l.
	prev := make([]int, layers)
	for l := range prev {
		prev[l] = -1
	}
	var lastTop int
	tops := make([]int, 0, seq)
	for t := 0; t < seq; t++ {
		below := emb
		inputDim := hidden
		for l := 0; l < layers; l++ {
			name := fmt.Sprintf("lstm_l%d_t%d", l, t)
			cell := lstmCell(b, name, below, prev[l], inputDim, hidden, seq)
			prev[l] = cell
			below = cell
			inputDim = hidden
		}
		lastTop = below
		tops = append(tops, below)
	}
	// Output projection over all steps' top states.
	proj := b.add(opSpec{
		name:     "proj",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(batch*seq, hidden, vocab),
		params:   denseParams(hidden, vocab),
		outBytes: int64(batch) * int64(seq) * int64(vocab) * 4,
		channels: vocab,
	}, tops...)
	_ = lastTop
	return b.finish(proj)
}

// GNMT builds the 4-layer GNMT translation model: a 4-layer LSTM encoder,
// a 4-layer LSTM decoder with per-step attention over the encoder memory,
// 1024 hidden units, 32K vocabulary.
func GNMT(batch int) (*graph.Graph, error) {
	return buildGNMT(batch, 32000, 1024, 4, 32)
}

func buildGNMT(batch, vocab, hidden, layers, seq int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("gnmt: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	srcIn := b.add(opSpec{
		name: "src_tokens", kind: graph.KindInput,
		outBytes: vec(batch, seq), noGrad: true,
	})
	srcEmb := b.add(opSpec{
		name:     "src_embedding",
		kind:     graph.KindEmbedding,
		flops:    int64(batch) * int64(seq) * int64(hidden),
		params:   int64(vocab) * int64(hidden) * 4,
		outBytes: int64(batch) * int64(seq) * int64(hidden) * 4,
		channels: hidden,
	}, srcIn)

	// Encoder grid.
	prev := make([]int, layers)
	for l := range prev {
		prev[l] = -1
	}
	encTops := make([]int, 0, seq)
	for t := 0; t < seq; t++ {
		below := srcEmb
		for l := 0; l < layers; l++ {
			name := fmt.Sprintf("enc_l%d_t%d", l, t)
			cell := lstmCell(b, name, below, prev[l], hidden, hidden, seq)
			prev[l] = cell
			below = cell
		}
		encTops = append(encTops, below)
	}
	// Encoder memory: the attention keys/values for every decoder step.
	memory := b.add(opSpec{
		name:     "enc_memory",
		kind:     graph.KindConcat,
		flops:    0,
		outBytes: int64(batch) * int64(seq) * int64(hidden) * 4,
		channels: hidden,
	}, encTops...)

	tgtIn := b.add(opSpec{
		name: "tgt_tokens", kind: graph.KindInput,
		outBytes: vec(batch, seq), noGrad: true,
	})
	tgtEmb := b.add(opSpec{
		name:     "tgt_embedding",
		kind:     graph.KindEmbedding,
		flops:    int64(batch) * int64(seq) * int64(hidden),
		params:   int64(vocab) * int64(hidden) * 4,
		outBytes: int64(batch) * int64(seq) * int64(hidden) * 4,
		channels: hidden,
	}, tgtIn)

	// Decoder grid with attention after the first layer, GNMT-style.
	for l := range prev {
		prev[l] = -1
	}
	decTops := make([]int, 0, seq)
	for t := 0; t < seq; t++ {
		below := tgtEmb
		var attn int = -1
		for l := 0; l < layers; l++ {
			name := fmt.Sprintf("dec_l%d_t%d", l, t)
			inputDim := hidden
			preds := below
			if l > 0 && attn >= 0 {
				inputDim = 2 * hidden // cell input concatenates attention context
			}
			cell := lstmCell(b, name, preds, prev[l], inputDim, hidden, seq)
			if l > 0 && attn >= 0 {
				// Attention context feeds the upper cells.
				b.connectAux(attn, cell, vec(batch, hidden))
			}
			if l == 0 {
				attn = b.add(opSpec{
					name:     fmt.Sprintf("attention_t%d", t),
					kind:     graph.KindSoftmax,
					flops:    2 * int64(batch) * int64(seq) * int64(hidden) * 2,
					outBytes: vec(batch, hidden),
					channels: hidden,
				}, cell, memory)
			}
			prev[l] = cell
			below = cell
		}
		decTops = append(decTops, below)
	}
	proj := b.add(opSpec{
		name:     "proj",
		kind:     graph.KindMatMul,
		flops:    denseFLOPs(batch*seq, hidden, vocab),
		params:   denseParams(hidden, vocab),
		outBytes: int64(batch) * int64(seq) * int64(vocab) * 4,
		channels: vocab,
	}, decTops...)
	return b.finish(proj)
}
