package models

import (
	"fmt"

	"fastt/internal/graph"
)

// Extras returns additional models beyond the paper's nine benchmarks —
// useful for library users, excluded from the paper-reproduction tables so
// those stay faithful to the original evaluation.
func Extras() []Spec {
	return []Spec{
		{Name: "MLP", Build: MLP, GlobalBatch: 256, PerGPUBatch: 256, Kind: "cnn"},
		{Name: "ResNet50", Build: ResNet50, GlobalBatch: 64, PerGPUBatch: 64, Kind: "cnn"},
		{Name: "GPT2-small", Build: GPT2Small, GlobalBatch: 16, PerGPUBatch: 16, Kind: "nmt"},
	}
}

// MLP builds a three-layer perceptron on flattened 28x28 input
// (784-1024-512-10) — the smallest catalog entry, sized for CLI smoke tests
// and strategy-artifact round trips.
func MLP(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("mlp: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: vec(batch, 784), noGrad: true,
	})
	f1 := denseLayer(b, "fc1", in, 784, 1024, true)
	f2 := denseLayer(b, "fc2", f1, 1024, 512, true)
	f3 := denseLayer(b, "fc3", f2, 512, 10, false)
	return b.finish(f3)
}

// ResNet50 builds ResNet-50 (224x224x3 input): bottleneck stages
// [3, 4, 6, 3], ~25.6M parameters.
func ResNet50(batch int) (*graph.Graph, error) {
	if batch < 1 {
		return nil, fmt.Errorf("resnet50: batch %d", batch)
	}
	b := newBuilder(batch, 1)
	in := b.add(opSpec{
		name: "input", kind: graph.KindInput,
		outBytes: fm(batch, 224, 224, 3), noGrad: true,
	})
	stem := convLayer(b, "conv1", in, 112, 112, 3, 64, 7)
	prev := poolLayer(b, "pool1", stem, 112, 112, 64) // -> 56

	type stage struct {
		blocks, cmid, cout, hw int
	}
	stages := []stage{
		{blocks: 3, cmid: 64, cout: 256, hw: 56},
		{blocks: 4, cmid: 128, cout: 512, hw: 56},
		{blocks: 6, cmid: 256, cout: 1024, hw: 28},
		{blocks: 3, cmid: 512, cout: 2048, hw: 14},
	}
	cin := 64
	for si, st := range stages {
		hw := st.hw
		for bi := 0; bi < st.blocks; bi++ {
			name := fmt.Sprintf("stage%d/block%d", si+1, bi+1)
			down := si > 0 && bi == 0
			prev = bottleneck(b, name, prev, hw, cin, st.cmid, st.cout, down)
			if down {
				hw /= 2
			}
			cin = st.cout
		}
	}
	gap := b.add(opSpec{
		name:     "avgpool",
		kind:     graph.KindMaxPool,
		flops:    int64(batch) * 7 * 7 * 2048,
		outBytes: vec(batch, 2048),
		channels: 2048,
	}, prev)
	fc := denseLayer(b, "fc", gap, 2048, 1000, false)
	return b.finish(fc)
}

// GPT2Small builds the GPT-2 small decoder-only transformer (12 layers,
// d=768, ff=3072, 12 heads, 50257-token vocabulary) at sequence length 64.
// Causal masking is cost-equivalent to full attention at this granularity.
func GPT2Small(batch int) (*graph.Graph, error) {
	return buildAttentionModel(attnConfig{
		name:      "gpt2-small",
		layers:    12,
		decLayers: 0,
		dModel:    768,
		dFF:       3072,
		heads:     12,
		seq:       64,
		vocab:     50257,
		sentences: batch,
		retain:    1,
	})
}
