package runtime_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/runtime"
	"fastt/internal/sim"
	"fastt/internal/strategy"
)

// setup builds a LeNet data-parallel deployment on 2 GPUs.
func setup(t *testing.T) (*device.Cluster, *graph.Graph, *strategy.Artifact) {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	m, err := models.LeNet(64)
	if err != nil {
		t.Fatalf("LeNet: %v", err)
	}
	g, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	place, err := placement.DataParallel(g, c)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	art := strategy.New(g, place, nil, nil, 0,
		strategy.Provenance{Origin: "data-parallel", Cluster: strategy.ClusterShapeOf(c)})
	return c, g, art
}

// TestRecordReplay drives the simulator through a Recorder, serializes the
// recording, and replays it without any backend: every replayed result must
// equal the recorded one, in order.
func TestRecordReplay(t *testing.T) {
	c, g, art := setup(t)
	rec := runtime.NewRecorder(sim.DefaultExecutor(c))

	cfgs := []runtime.Config{
		{Jitter: 0.02, Seed: 1, EnforceOrder: true},
		{Jitter: 0.02, Seed: 2, EnforceOrder: true},
		{Jitter: 0.05, Seed: 3},
	}
	var want []*runtime.Result
	for _, cfg := range cfgs {
		res, err := rec.Run(g, art, cfg)
		if err != nil {
			t.Fatalf("recorded run: %v", err)
		}
		want = append(want, res)
	}

	var buf bytes.Buffer
	if err := rec.Recording().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	recording, err := runtime.ReadRecording(&buf)
	if err != nil {
		t.Fatalf("ReadRecording: %v", err)
	}

	replay := recording.Replayer()
	for i, cfg := range cfgs {
		res, err := replay.Run(g, art, cfg)
		if err != nil {
			t.Fatalf("replayed run %d: %v", i, err)
		}
		if !reflect.DeepEqual(res, want[i]) {
			t.Errorf("replayed result %d differs from recording", i)
		}
	}

	// Past the end of the recording.
	if _, err := replay.Run(g, art, cfgs[0]); !errors.Is(err, runtime.ErrReplayExhausted) {
		t.Errorf("err = %v, want ErrReplayExhausted", err)
	}
}

// TestReplayMismatch: a replay driving a different workload than the
// recording must fail loudly instead of serving stale results.
func TestReplayMismatch(t *testing.T) {
	c, g, art := setup(t)
	rec := runtime.NewRecorder(sim.DefaultExecutor(c))
	cfg := runtime.Config{Jitter: 0.02, Seed: 1, EnforceOrder: true}
	if _, err := rec.Run(g, art, cfg); err != nil {
		t.Fatalf("recorded run: %v", err)
	}

	replay := rec.Recording().Replayer()
	other := cfg
	other.Seed = 42
	if _, err := replay.Run(g, art, other); !errors.Is(err, runtime.ErrReplayMismatch) {
		t.Errorf("err = %v, want ErrReplayMismatch", err)
	}
}

// TestRecorderSkipsFailedRuns: OOMs and other failures propagate to the
// caller but do not pollute the recording.
func TestRecorderSkipsFailedRuns(t *testing.T) {
	c, g, art := setup(t)
	rec := runtime.NewRecorder(sim.DefaultExecutor(c))

	bad := *art
	bad.Placement = nil // malformed: wrong length for the graph
	if _, err := rec.Run(g, &bad, runtime.Config{}); err == nil {
		t.Fatal("malformed placement executed")
	}
	if n := len(rec.Recording().Calls); n != 0 {
		t.Errorf("failed run recorded: %d calls", n)
	}
}

// TestSessionRunsOnReplay proves the executor seam end to end: a session
// driven by a replayed recording (no simulator in the loop).
func TestSessionRunsOnReplay(t *testing.T) {
	c, g, art := setup(t)
	exec := sim.DefaultExecutor(c)

	// Record three direct runs with the seed sequence a fresh consumer of
	// the recording will use.
	rec := runtime.NewRecorder(exec)
	var want []*runtime.Result
	for seed := int64(1); seed <= 3; seed++ {
		res, err := rec.Run(g, art, runtime.Config{Jitter: 0.02, Seed: seed, EnforceOrder: true})
		if err != nil {
			t.Fatalf("record: %v", err)
		}
		want = append(want, res)
	}

	replay := rec.Recording().Replayer()
	for seed := int64(1); seed <= 3; seed++ {
		res, err := replay.Run(g, art, runtime.Config{Jitter: 0.02, Seed: seed, EnforceOrder: true})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if res.Makespan != want[seed-1].Makespan {
			t.Errorf("seed %d: makespan %v, recorded %v", seed, res.Makespan, want[seed-1].Makespan)
		}
	}
}
