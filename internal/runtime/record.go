package runtime

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// Errors returned by the replay executor.
var (
	// ErrReplayExhausted is returned when a replay runs past the end of its
	// recording.
	ErrReplayExhausted = errors.New("replay recording exhausted")
	// ErrReplayMismatch is returned when a replayed call does not match the
	// recorded one (different graph, placement, or config).
	ErrReplayMismatch = errors.New("replay call does not match recording")
)

// RecordedCall is one executed iteration in a recording: the request key
// (graph fingerprint, artifact shape, seed) and the result it produced.
type RecordedCall struct {
	Key    string  `json:"key"`
	Result *Result `json:"result"`
}

// Recording is a serializable trace of executor calls, replayable without
// the backend that produced it.
type Recording struct {
	Calls []RecordedCall `json:"calls"`
}

// WriteJSON serializes the recording.
func (rec *Recording) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(rec)
}

// ReadRecording parses a recording written by WriteJSON.
func ReadRecording(r io.Reader) (*Recording, error) {
	var rec Recording
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("decode recording: %w", err)
	}
	return &rec, nil
}

// Replayer returns an executor that replays the recording call by call.
func (rec *Recording) Replayer() *Replayer {
	return &Replayer{rec: rec}
}

// callKey identifies one executor request well enough to catch a replay
// driving a different workload than the recording: the executed graph, the
// artifact's decisions, and the reproducibility-relevant config.
func callKey(g *graph.Graph, art *strategy.Artifact, cfg Config) string {
	order := len(art.Order)
	if !cfg.EnforceOrder {
		order = 0
	}
	return fmt.Sprintf("%s|p%d|o%d|s%d|seed%d|j%g",
		strategy.Fingerprint(g), len(art.Placement), order, len(art.Splits),
		cfg.Seed, cfg.Jitter)
}

// Recorder is an Executor that delegates to an inner backend and records
// every successful run, proving the executor seam supports more than the
// simulator: the resulting Recording replays deterministically with no
// backend at all (trace-driven what-if analysis, tests without a
// simulator, fault reproduction).
type Recorder struct {
	inner Executor

	mu    sync.Mutex
	calls []RecordedCall
}

var _ Executor = (*Recorder)(nil)

// NewRecorder wraps an executor.
func NewRecorder(inner Executor) *Recorder {
	return &Recorder{inner: inner}
}

// Run delegates to the inner executor and records the call. Failed runs are
// returned as-is and not recorded.
func (r *Recorder) Run(g *graph.Graph, art *strategy.Artifact, cfg Config) (*Result, error) {
	res, err := r.inner.Run(g, art, cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.calls = append(r.calls, RecordedCall{Key: callKey(g, art, cfg), Result: res})
	r.mu.Unlock()
	return res, nil
}

// Recording returns a copy of everything recorded so far.
func (r *Recorder) Recording() *Recording {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Recording{Calls: append([]RecordedCall(nil), r.calls...)}
}

// Replayer is an Executor that serves results from a recording in call
// order, verifying each request matches what was recorded.
type Replayer struct {
	rec *Recording

	mu   sync.Mutex
	next int
}

var _ Executor = (*Replayer)(nil)

// Run returns the next recorded result, or an error when the recording is
// exhausted or the request diverges from it.
func (p *Replayer) Run(g *graph.Graph, art *strategy.Artifact, cfg Config) (*Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.next >= len(p.rec.Calls) {
		return nil, fmt.Errorf("%w: call %d of %d", ErrReplayExhausted, p.next+1, len(p.rec.Calls))
	}
	call := p.rec.Calls[p.next]
	if key := callKey(g, art, cfg); key != call.Key {
		return nil, fmt.Errorf("%w: call %d: got %s, recorded %s",
			ErrReplayMismatch, p.next+1, key, call.Key)
	}
	p.next++
	return call.Result, nil
}
