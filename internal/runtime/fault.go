package runtime

import (
	"fmt"
	"time"
)

// FaultKind enumerates the fault classes a backend can inject or observe.
// The taxonomy mirrors what kills real multi-GPU training jobs: a device
// dropping out entirely, a device losing throughput (thermal throttling,
// noisy neighbours), and a link losing bandwidth (congestion, a flapping
// NIC).
type FaultKind int

const (
	// FaultDeviceFailure is the permanent loss of a device: the iteration
	// in flight dies and the device cannot be scheduled onto again.
	FaultDeviceFailure FaultKind = iota + 1
	// FaultStraggler is a persistent slowdown of one device's compute
	// throughput by a multiplicative factor.
	FaultStraggler
	// FaultLinkDegrade is a persistent slowdown of one ordered device
	// pair's transfers by a multiplicative factor.
	FaultLinkDegrade
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultDeviceFailure:
		return "device-failure"
	case FaultStraggler:
		return "straggler"
	case FaultLinkDegrade:
		return "link-degrade"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent records one injected fault taking effect, in the device IDs of
// the cluster that was current when it fired. At is absolute time on the
// training timeline (cumulative across iterations), not an offset within
// one iteration.
type FaultEvent struct {
	Kind   FaultKind     `json:"kind"`
	At     time.Duration `json:"atNs"`
	Device int           `json:"device,omitempty"`
	From   int           `json:"from,omitempty"`
	To     int           `json:"to,omitempty"`
	Factor float64       `json:"factor,omitempty"`
}

// String implements fmt.Stringer for human-readable fault reports.
func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultDeviceFailure:
		return fmt.Sprintf("device %d failed at %v", e.Device, e.At)
	case FaultStraggler:
		return fmt.Sprintf("device %d straggling x%.1f from %v", e.Device, e.Factor, e.At)
	case FaultLinkDegrade:
		return fmt.Sprintf("link %d->%d degraded x%.1f from %v", e.From, e.To, e.Factor, e.At)
	default:
		return fmt.Sprintf("%s at %v", e.Kind, e.At)
	}
}

// DeviceLostError aborts an execution when a device fails mid-iteration.
// The session reacts by restoring the latest checkpoint, shrinking the
// cluster around the lost device, and recomputing the strategy on the
// survivors.
type DeviceLostError struct {
	// Device is the failed device's ID in the cluster the run used.
	Device int
	// At is the failure time on the training timeline.
	At time.Duration
}

// Error implements error.
func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("device %d lost at %v", e.Device, e.At)
}
