// Package runtime defines the executor seam between FastT's training
// workflow and the backends that actually run a placed graph. The session
// drives everything through the Executor interface, so the discrete-event
// simulator (internal/sim), the recording/replay executor in this package,
// and future real backends are interchangeable: a backend receives the
// materialized graph plus the strategy artifact to run it under, and
// returns the per-iteration profile the cost models learn from.
package runtime

import (
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// Config tunes one execution. It is backend-agnostic: backends ignore what
// does not apply to them.
type Config struct {
	// Memory converts parameter bytes into resident bytes for OOM
	// accounting. Zero value falls back to graph.DefaultMemoryModel.
	Memory graph.MemoryModel
	// Jitter adds multiplicative uniform noise of ±Jitter to execution
	// times, emulating real measurement variance. Zero disables noise.
	Jitter float64
	// Seed seeds the noise generator; runs with equal seeds reproduce.
	Seed int64
	// EnforceOrder executes the artifact's recorded order (as executor
	// priorities) instead of the backend's default FIFO discipline —
	// FastT's order enforcement. Ignored when the artifact has no order.
	EnforceOrder bool
}

// Executor runs one training iteration of the materialized graph under the
// artifact's placement (and, when enforced, its execution order). The graph
// must be the artifact's materialized graph — see strategy.Materialize.
type Executor interface {
	Run(g *graph.Graph, art *strategy.Artifact, cfg Config) (*Result, error)
}

// DegradableExecutor is implemented by executors that can continue after a
// device loss — the capability the session's fault recovery needs. A
// backend that cannot shrink simply does not implement it, and DeviceLost
// errors propagate to the caller instead of triggering recovery.
type DegradableExecutor interface {
	Executor
	// Shrink returns an executor and its cluster for the devices surviving
	// the loss of failedDevice, carrying over backend state (clocks,
	// pending fault schedules) so the training timeline stays continuous.
	// Survivors keep their relative order and are renumbered contiguously:
	// old ID d maps to d when d < failedDevice and d-1 when d >
	// failedDevice. Shrinking the last device fails.
	Shrink(failedDevice int) (Executor, *device.Cluster, error)
	// Advance moves the backend's training-timeline clock forward by a
	// simulated duration — checkpoint restores and retry backoff the
	// session charges between iterations — so time-anchored fault
	// schedules stay aligned with the session's accounting. Backends
	// without a clock treat it as a no-op.
	Advance(d time.Duration)
}

// GrowableExecutor is implemented by executors that can absorb a device
// joining mid-run — the inverse of Shrink, and the capability the session's
// elastic scale-out needs. The contract mirrors Shrink's renumbering rule in
// the trivial direction: existing devices keep their IDs (so the running
// strategy stays valid while a replacement is computed), and the joined
// device takes the next free ID, cluster.NumDevices() before the join.
type GrowableExecutor interface {
	Executor
	// Grow returns an executor and cluster with the joining device
	// appended, carrying over backend state (clocks, pending fault
	// schedules) so the training timeline stays continuous. The *Device is
	// the joined device in the returned cluster.
	Grow(join device.JoinSpec) (Executor, *device.Cluster, *device.Device, error)
}
