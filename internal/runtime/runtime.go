// Package runtime defines the executor seam between FastT's training
// workflow and the backends that actually run a placed graph. The session
// drives everything through the Executor interface, so the discrete-event
// simulator (internal/sim), the recording/replay executor in this package,
// and future real backends are interchangeable: a backend receives the
// materialized graph plus the strategy artifact to run it under, and
// returns the per-iteration profile the cost models learn from.
package runtime

import (
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// Config tunes one execution. It is backend-agnostic: backends ignore what
// does not apply to them.
type Config struct {
	// Memory converts parameter bytes into resident bytes for OOM
	// accounting. Zero value falls back to graph.DefaultMemoryModel.
	Memory graph.MemoryModel
	// Jitter adds multiplicative uniform noise of ±Jitter to execution
	// times, emulating real measurement variance. Zero disables noise.
	Jitter float64
	// Seed seeds the noise generator; runs with equal seeds reproduce.
	Seed int64
	// EnforceOrder executes the artifact's recorded order (as executor
	// priorities) instead of the backend's default FIFO discipline —
	// FastT's order enforcement. Ignored when the artifact has no order.
	EnforceOrder bool
}

// Executor runs one training iteration of the materialized graph under the
// artifact's placement (and, when enforced, its execution order). The graph
// must be the artifact's materialized graph — see strategy.Materialize.
type Executor interface {
	Run(g *graph.Graph, art *strategy.Artifact, cfg Config) (*Result, error)
}
