package runtime

import (
	"fmt"
	"time"
)

// OOMError reports a device exceeding its memory capacity.
type OOMError struct {
	Device   int
	Needed   int64
	Capacity int64
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("OOM on device %d: need %d bytes, capacity %d",
		e.Device, e.Needed, e.Capacity)
}

// Span records one op execution — the computation half of RunMetadata.
type Span struct {
	Op     int
	Device int
	Start  time.Duration
	End    time.Duration
}

// Transfer records one tensor movement — the memcpy half of RunMetadata.
// Start is when the channel began moving the tensor (queueing excluded) so
// the communication cost model learns the link law, not queue contention.
type Transfer struct {
	From, To int // device IDs
	Producer int // op that produced the tensor
	Consumer int // op awaiting it
	Bytes    int64
	Enqueued time.Duration
	Start    time.Duration
	End      time.Duration
}

// Result is the outcome of one executed iteration.
type Result struct {
	// Makespan is the per-iteration time.
	Makespan time.Duration
	// Spans are per-op executions ordered by start time.
	Spans []Span
	// Transfers are all cross-device tensor movements.
	Transfers []Transfer
	// ComputeBusy is per-device total kernel time.
	ComputeBusy []time.Duration
	// MemcpyBusy is per-device total transfer time (counted on the
	// receiving device, where TensorFlow's memcpy shows up).
	MemcpyBusy []time.Duration
	// PeakMemory is the per-device peak resident bytes.
	PeakMemory []int64
	// Faults are the injected faults that first took effect during this
	// iteration (stragglers, link degradations), in schedule order. A
	// device failure never appears here: it aborts the run with a
	// DeviceLostError instead.
	Faults []FaultEvent
}

// AvgComputeBusy returns the mean per-device compute time over devices that
// executed at least one op, matching Fig. 5's "computation time".
func (r *Result) AvgComputeBusy() time.Duration {
	var sum time.Duration
	n := 0
	for _, d := range r.ComputeBusy {
		if d > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TotalMemcpy returns the total transfer time across devices, matching
// Fig. 5's "memcpy time".
func (r *Result) TotalMemcpy() time.Duration {
	var sum time.Duration
	for _, d := range r.MemcpyBusy {
		sum += d
	}
	return sum
}
