package kernels

import (
	"testing"
	"testing/quick"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

func testCluster(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestExecMonotonicInFLOPs(t *testing.T) {
	c := testCluster(t)
	o := NewDefaultOracle(c)
	dev := c.Device(0)
	small := &graph.Op{Kind: graph.KindConv2D, FLOPs: 1e6, OutputBytes: 1024}
	large := &graph.Op{Kind: graph.KindConv2D, FLOPs: 1e9, OutputBytes: 1024}
	if o.Exec(small, dev) >= o.Exec(large, dev) {
		t.Errorf("exec time not monotonic: small=%v large=%v",
			o.Exec(small, dev), o.Exec(large, dev))
	}
}

func TestExecUtilizationCollapse(t *testing.T) {
	// Halving FLOPs must reduce the run time by strictly less than half
	// (excluding launch overhead): efficiency drops at small sizes.
	c := testCluster(t)
	o := NewDefaultOracle(c)
	dev := c.Device(0)
	full := &graph.Op{Kind: graph.KindConv2D, FLOPs: 8e9, OutputBytes: 1024}
	half := &graph.Op{Kind: graph.KindConv2D, FLOPs: 4e9, OutputBytes: 1024}
	launch := DefaultConfig().LaunchOverhead
	tf := o.Exec(full, dev) - launch
	th := o.Exec(half, dev) - launch
	if 2*th <= tf {
		t.Errorf("no utilization collapse: full=%v half=%v", tf, th)
	}
}

func TestExecBandwidthBound(t *testing.T) {
	// A huge elementwise op must be bound by memory bandwidth, not FLOPs.
	c := testCluster(t)
	o := NewDefaultOracle(c)
	dev := c.Device(0)
	op := &graph.Op{Kind: graph.KindRelu, FLOPs: 1e6, OutputBytes: 900e6 / 3}
	got := o.Exec(op, dev)
	// 3*OutputBytes / 900 GB/s = 1 ms.
	want := time.Millisecond
	if got < want || got > want+2*DefaultConfig().LaunchOverhead {
		t.Errorf("bandwidth-bound exec = %v, want ~%v", got, want)
	}
}

func TestExecZeroWorkIsLaunchOverhead(t *testing.T) {
	c := testCluster(t)
	o := NewDefaultOracle(c)
	op := &graph.Op{Kind: graph.KindIdentity}
	if got := o.Exec(op, c.Device(0)); got != DefaultConfig().LaunchOverhead {
		t.Errorf("zero-work exec = %v, want launch overhead", got)
	}
}

func TestCommSameDeviceFree(t *testing.T) {
	c := testCluster(t)
	o := NewDefaultOracle(c)
	if got := o.Comm(1<<20, c.Device(1), c.Device(1)); got != 0 {
		t.Errorf("same-device comm = %v, want 0", got)
	}
}

func TestCommInterServerSlower(t *testing.T) {
	c := testCluster(t)
	o := NewDefaultOracle(c)
	intra := o.Comm(1<<20, c.Device(0), c.Device(1))
	inter := o.Comm(1<<20, c.Device(0), c.Device(2))
	if intra >= inter {
		t.Errorf("intra comm %v should be faster than inter comm %v", intra, inter)
	}
}

func TestTransferTimeZeroLink(t *testing.T) {
	if got := TransferTime(1<<20, device.Link{}); got != 0 {
		t.Errorf("zero link transfer = %v, want 0", got)
	}
}

func TestTransferTimeLinear(t *testing.T) {
	l := device.Link{Bandwidth: 1e9, Latency: 1e-6}
	t1 := TransferTime(1e6, l)
	t2 := TransferTime(2e6, l)
	// t2 - t1 should be 1 MB / 1 GB/s = 1 ms (up to Duration rounding).
	diff := t2 - t1 - time.Millisecond
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("transfer time not linear: t2-t1 = %v, want ~1ms", t2-t1)
	}
}

// TestSplitNeverFasterThanIdeal asserts the launch-overhead property the
// split heuristics rely on: n sub-ops of 1/n work each always cost at least
// the original time divided by n (run in parallel), and strictly more in
// total (run serially).
func TestSplitNeverFasterThanIdeal(t *testing.T) {
	c := testCluster(t)
	o := NewDefaultOracle(c)
	dev := c.Device(0)
	f := func(flopsRaw int64, n8 uint8) bool {
		n := int64(n8%7) + 2
		flops := flopsRaw % 1e12
		if flops < 0 {
			flops = -flops
		}
		whole := &graph.Op{Kind: graph.KindMatMul, FLOPs: flops, OutputBytes: 4096}
		part := &graph.Op{Kind: graph.KindMatMul, FLOPs: flops / n, OutputBytes: 4096 / n}
		tWhole := o.Exec(whole, dev)
		tPart := o.Exec(part, dev)
		// Parallel ideal: one partition is at least 1/n of the whole.
		return int64(tPart)*n >= int64(tWhole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHigherPeakDeviceIsFaster(t *testing.T) {
	fast, err := device.SingleServer(1, device.WithPeakFLOPS(20e12))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	slow, err := device.SingleServer(1, device.WithPeakFLOPS(5e12))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	o := NewDefaultOracle(fast)
	op := &graph.Op{Kind: graph.KindMatMul, FLOPs: 1e10, OutputBytes: 4096}
	if o.Exec(op, fast.Device(0)) >= o.Exec(op, slow.Device(0)) {
		t.Error("faster device did not yield faster exec time")
	}
}
