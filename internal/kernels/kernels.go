// Package kernels provides the analytic ground-truth latency model that
// stands in for real GPU hardware in this reproduction. The paper measures
// operation execution times on V100 GPUs through the TensorFlow profiler;
// here, the discrete-event simulator (internal/sim) "executes" operations
// with the latencies this package computes, and FastT's cost models learn
// them through profiling exactly as they would learn real hardware.
//
// The model captures the three effects the paper's results hinge on:
//
//  1. Roofline behaviour: an op is either compute-bound (FLOPs over an
//     efficiency-scaled peak) or bandwidth-bound (bytes moved over memory
//     bandwidth).
//  2. Utilization collapse at small sizes: efficiency follows a saturating
//     curve in the op's FLOPs, so halving the per-GPU batch less than
//     halves the run time. This is what degrades strong scaling in
//     Tables 1/3 and what makes splitting tiny operations (LeNet, AlexNet)
//     useless in Table 6.
//  3. Fixed launch overhead per kernel, which penalizes over-splitting.
package kernels

import (
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// Config tunes the analytic model. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// LaunchOverhead is the fixed per-kernel cost (driver + scheduling).
	LaunchOverhead time.Duration
	// SaturationFLOPs is the knee of the utilization curve: an op with this
	// many FLOPs reaches half of its kind's peak efficiency. It is the
	// fallback for devices that do not carry a per-class knee of their own
	// (Device.SaturationFLOPs).
	SaturationFLOPs float64
}

// DefaultConfig returns V100-calibrated constants.
func DefaultConfig() Config {
	return Config{
		LaunchOverhead:  8 * time.Microsecond,
		SaturationFLOPs: 4e9,
	}
}

// Oracle computes ground-truth execution and transfer times against a
// specific cluster's link table. It implements the same estimator shape as
// the learned cost models so that tests can run the scheduling algorithms
// against perfect information.
type Oracle struct {
	cfg     Config
	cluster *device.Cluster
}

// NewOracle returns an oracle for the given cluster.
func NewOracle(cfg Config, cluster *device.Cluster) *Oracle {
	return &Oracle{cfg: cfg, cluster: cluster}
}

// NewDefaultOracle returns an oracle with DefaultConfig.
func NewDefaultOracle(cluster *device.Cluster) *Oracle {
	return NewOracle(DefaultConfig(), cluster)
}

// WithCluster returns an oracle with the same kernel configuration rebound
// to a different cluster — the degraded-cluster path after a device loss,
// where survivor timings must stay identical to their pre-failure values.
func (o *Oracle) WithCluster(cluster *device.Cluster) *Oracle {
	return NewOracle(o.cfg, cluster)
}

// peakEfficiency is the fraction of device peak FLOPS an operation kind can
// reach at large sizes. Dense GEMMs run near peak; convolutions slightly
// lower; recurrent cells lower still (many small fused GEMMs); elementwise
// and data-movement ops are bandwidth-bound and effectively never
// compute-bound.
func peakEfficiency(k graph.OpKind) float64 {
	switch k {
	case graph.KindMatMul:
		return 0.72
	case graph.KindMatMulBackprop:
		return 0.66
	case graph.KindConv2D:
		return 0.60
	case graph.KindConv2DBackprop:
		return 0.54
	case graph.KindLSTMCell, graph.KindLSTMCellGrad:
		return 0.42
	case graph.KindEmbedding, graph.KindEmbeddingGrad:
		return 0.20
	case graph.KindBatchNorm, graph.KindBatchNormGrad,
		graph.KindLayerNorm, graph.KindLayerNormGrad,
		graph.KindSoftmax, graph.KindSoftmaxGrad:
		return 0.15
	default:
		return 0.10
	}
}

// saturationFLOPs is the utilization knee for one device: the device class's
// own constant when it carries one, the configured default otherwise. The
// homogeneous constructors leave the per-device value zero, so a custom
// Config keeps its pre-class meaning on uniform clusters; heterogeneous
// clusters materialize a knee per class (a T4 saturates on far smaller
// kernels than an A100).
func (o *Oracle) saturationFLOPs(dev *device.Device) float64 {
	if dev.SaturationFLOPs > 0 {
		return dev.SaturationFLOPs
	}
	return o.cfg.SaturationFLOPs
}

// Exec returns the ground-truth run time of op on dev.
func (o *Oracle) Exec(op *graph.Op, dev *device.Device) time.Duration {
	if op.FLOPs == 0 && op.OutputBytes == 0 {
		return o.cfg.LaunchOverhead
	}
	f := float64(op.FLOPs)
	// The saturation knee scales with the kind's peak efficiency so that
	// inherently bandwidth-bound kinds (tiny peak efficiency) are not
	// charged pathological compute time at small sizes; their cost comes
	// from the memory term below.
	knee := o.saturationFLOPs(dev) * peakEfficiency(op.Kind)
	eff := peakEfficiency(op.Kind) * f / (f + knee)
	var computeSec float64
	if eff > 0 && f > 0 {
		computeSec = f / (eff * dev.PeakFLOPS)
	}
	// Bytes moved through device memory: read inputs (approximated by the
	// output size, as most ops are shape-preserving within 2x), read
	// parameters, write the output.
	moved := float64(3*op.OutputBytes + op.ParamBytes)
	memSec := moved / dev.MemBandwidth
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	return o.cfg.LaunchOverhead + time.Duration(sec*float64(time.Second))
}

// FrozenEstimator marks the oracle as an immutable estimator (cost.Frozen):
// its config and link table are fixed at construction, so dense cost tables
// resolved from it stay valid for the oracle's lifetime.
func (o *Oracle) FrozenEstimator() {}

// Comm returns the ground-truth transfer time of a tensor between two
// devices. Same-device transfers are free.
func (o *Oracle) Comm(bytes int64, from, to *device.Device) time.Duration {
	if from.ID == to.ID {
		return 0
	}
	return TransferTime(bytes, o.cluster.Link(from.ID, to.ID))
}

// TransferTime returns the time to move a tensor over a link: the link
// latency plus bytes over bandwidth. A zero link (no interconnect) costs
// nothing, matching same-device transfers.
func TransferTime(bytes int64, l device.Link) time.Duration {
	if l.Bandwidth == 0 {
		return 0
	}
	sec := l.Latency + float64(bytes)/l.Bandwidth
	return time.Duration(sec * float64(time.Second))
}
