package strategy_test

import (
	"bytes"
	"testing"

	"fastt/internal/strategy"
)

// FuzzReadJSON asserts the artifact decoder's contract on arbitrary bytes:
// it never panics, and anything it accepts serializes to a canonical form —
// re-reading the written bytes succeeds and writes back identically.
func FuzzReadJSON(f *testing.F) {
	f.Add([]byte(`{"schemaVersion":1,"graphFingerprint":"abc","placement":[0,1],` +
		`"provenance":{"cluster":{"servers":1,"gpusPerServer":2}}}`))
	f.Add([]byte(`{"schemaVersion":1,"graphFingerprint":"","placement":[],` +
		`"order":[1,0],"splits":[{"opName":"conv1","dim":"batch","n":2}],` +
		`"predictedNs":1500,"provenance":{"model":"LeNet","origin":"fastt",` +
		`"cluster":{"servers":2,"devices":3}}}`))
	f.Add([]byte(`{"schemaVersion":2,"placement":[0]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := strategy.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := a.WriteJSON(&first); err != nil {
			t.Fatalf("accepted artifact does not serialize: %v", err)
		}
		b, err := strategy.ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := b.WriteJSON(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip is not canonical:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
