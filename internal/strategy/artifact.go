// Package strategy defines the serializable deployment unit FastT's
// calculator produces: the placement, execution order and operation split
// list for one computation graph, plus the provenance needed to validate it
// against a target cluster (Sec. 3-4 of the paper). The artifact is the
// "compute in minutes, then train under it" object — cheap to compute on
// the training node, written to disk once, and activated later via
// checkpoint/restart, possibly by a different process or executor backend.
package strategy

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// SchemaVersion is the current artifact schema. ReadJSON rejects artifacts
// written under a different schema instead of guessing at field semantics.
const SchemaVersion = 1

// Errors returned when loading or validating artifacts.
var (
	// ErrSchemaVersion is returned for artifacts written under a different
	// schema version.
	ErrSchemaVersion = errors.New("artifact schema version mismatch")
	// ErrFingerprint is returned when an artifact is applied to a graph
	// other than the one it was computed for.
	ErrFingerprint = errors.New("artifact graph fingerprint mismatch")
	// ErrClusterShape is returned when an artifact is applied to a cluster
	// with a different topology than it was computed for.
	ErrClusterShape = errors.New("artifact cluster shape mismatch")
	// ErrMaterialize is returned when the split list cannot be re-applied
	// to the base graph.
	ErrMaterialize = errors.New("artifact split list does not apply to graph")
)

// ClusterShape records the topology an artifact was computed for. Regular
// clusters (every server hosting the same GPU count) use Servers ×
// GPUsPerServer, the original schema-1 encoding. Irregular clusters — the
// degraded shapes left behind after a device failure, or mixed fleets — set
// Devices to the total device count and leave GPUsPerServer zero, so a
// strategy recomputed on survivors still validates against the cluster it
// was computed for without bumping the schema.
//
// Classes carries the exact per-device "server:class" layout whenever the
// cluster is not a regular all-V100 testbed. It distinguishes shapes the
// count-only encoding conflates: a 2×4 cluster that lost server 0's gpu1
// from one that lost server 1's gpu3 (both {2 servers, 7 devices}), or a
// 4×V100+4×T4 mix from the 8×V100 fleet it would otherwise impersonate.
// Regular all-V100 clusters leave it empty, so their artifacts serialize
// byte-identically to the pre-class schema.
type ClusterShape struct {
	Servers       int `json:"servers"`
	GPUsPerServer int `json:"gpusPerServer"`
	// Devices is the total device count of an irregular cluster; zero for
	// regular Servers × GPUsPerServer shapes.
	Devices int `json:"devices,omitempty"`
	// Classes is the canonical per-device layout, "server:class" in device
	// ID order, comma-separated (e.g. "0:V100,0:V100,1:T4"). Empty for
	// regular all-V100 clusters.
	Classes string `json:"classes,omitempty"`
}

// NumDevices returns the shape's total device count under either encoding.
func (s ClusterShape) NumDevices() int {
	if s.Devices > 0 {
		return s.Devices
	}
	return s.Servers * s.GPUsPerServer
}

// ClusterShapeOf returns the shape of a cluster.
func ClusterShapeOf(c *device.Cluster) ClusterShape {
	perServer := make(map[int]int)
	allV100 := true
	var classes strings.Builder
	for i, d := range c.Devices() {
		perServer[d.Server]++
		if d.ClassName() != device.ClassV100 {
			allV100 = false
		}
		if i > 0 {
			classes.WriteByte(',')
		}
		fmt.Fprintf(&classes, "%d:%s", d.Server, d.ClassName())
	}
	servers := len(perServer)
	regular := true
	var gps int
	for _, n := range perServer {
		if gps == 0 {
			gps = n
		} else if n != gps {
			regular = false
			break
		}
	}
	if regular && allV100 {
		return ClusterShape{Servers: servers, GPUsPerServer: gps}
	}
	if regular {
		return ClusterShape{Servers: servers, GPUsPerServer: gps, Classes: classes.String()}
	}
	return ClusterShape{Servers: servers, Devices: c.NumDevices(), Classes: classes.String()}
}

// Provenance records where an artifact came from, so a deployment can audit
// what it is about to activate.
type Provenance struct {
	// Model is the catalog name of the model, when known ("custom" graphs
	// leave it empty).
	Model string `json:"model,omitempty"`
	// Origin names the strategy source: "data-parallel", "model-parallel"
	// (bootstrap placements) or "fastt" (the calculator).
	Origin string `json:"origin,omitempty"`
	// Cluster is the topology the strategy was computed for.
	Cluster ClusterShape `json:"cluster"`
	// CostHash fingerprints the learned cost-model snapshot the calculator
	// consumed, tying the artifact to the profile that justified it.
	CostHash string `json:"costHash,omitempty"`
}

// Artifact is the canonical, serializable form of a computed strategy. Its
// Placement and Order index into the graph obtained by applying Splits (in
// list order) to the base graph identified by Fingerprint — see Materialize.
type Artifact struct {
	// SchemaVersion is the schema the artifact was written under.
	SchemaVersion int `json:"schemaVersion"`
	// Fingerprint identifies the base computation graph the strategy was
	// computed for (before splits).
	Fingerprint string `json:"graphFingerprint"`
	// Placement maps op ID -> device ID in the materialized graph.
	Placement []int `json:"placement"`
	// Order lists op IDs of the materialized graph in execution order;
	// empty means the default (FIFO) executor order.
	Order []int `json:"order,omitempty"`
	// Splits is the accepted operation split list, in application order.
	Splits []graph.SplitDecision `json:"splits,omitempty"`
	// Predicted is the scheduler's estimated iteration time.
	Predicted time.Duration `json:"predictedNs,omitempty"`
	// Provenance records what produced the artifact.
	Provenance Provenance `json:"provenance"`
}

// New builds an artifact for a strategy on the base graph: the fingerprint
// is computed here so callers cannot mis-pair strategy and graph.
func New(base *graph.Graph, placement, order []int, splits []graph.SplitDecision,
	predicted time.Duration, prov Provenance) *Artifact {
	return &Artifact{
		SchemaVersion: SchemaVersion,
		Fingerprint:   Fingerprint(base),
		Placement:     placement,
		Order:         order,
		Splits:        splits,
		Predicted:     predicted,
		Provenance:    prov,
	}
}

// Fingerprint returns a stable hex digest of the graph's structure: ops
// (with all scheduling-relevant attributes) and edges. Two graphs with the
// same fingerprint are interchangeable as strategy targets.
func Fingerprint(g *graph.Graph) string {
	h := sha256.New()
	// WriteJSON is deterministic (ID-ordered ops, insertion-ordered edges)
	// and never fails on a hash.Hash writer.
	_ = g.WriteJSON(h)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// HashJSON digests the output of a serializer — used to fingerprint the
// cost-model snapshot an artifact was computed under.
func HashJSON(write func(io.Writer) error) (string, error) {
	h := sha256.New()
	if err := write(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// PriorityIndex returns the inverse of Order (op ID -> order position), the
// form priority executors consume, or nil when no order is recorded.
func (a *Artifact) PriorityIndex() []int {
	if len(a.Order) == 0 {
		return nil
	}
	pri := make([]int, len(a.Order))
	for i, id := range a.Order {
		if id < 0 || id >= len(pri) {
			return nil // malformed order; Validate reports the details
		}
		pri[id] = i
	}
	return pri
}

// Materialize re-applies the split list to the base graph, reproducing the
// rewritten graph the artifact's Placement and Order index into. With an
// empty split list the base graph itself is returned. SplitOperation is
// deterministic, so materializing is byte-identical to the graph the
// calculator produced.
func (a *Artifact) Materialize(base *graph.Graph) (*graph.Graph, error) {
	g := base
	for _, sp := range a.Splits {
		op, ok := g.OpByName(sp.OpName)
		if !ok {
			return nil, fmt.Errorf("%w: split target %q not found", ErrMaterialize, sp.OpName)
		}
		next, err := graph.SplitOperation(g, op.ID, sp.Dim, sp.N)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrMaterialize, sp, err)
		}
		g = next
	}
	if len(a.Placement) != g.NumOps() {
		return nil, fmt.Errorf("%w: placement has %d entries for %d materialized ops",
			ErrMaterialize, len(a.Placement), g.NumOps())
	}
	return g, nil
}

// Validate checks the artifact against a deployment target: schema version,
// base-graph fingerprint, and cluster shape. Structural soundness of the
// placement and order is checked by validate.ArtifactStrategy, which also
// materializes the graph.
func (a *Artifact) Validate(base *graph.Graph, cluster *device.Cluster) error {
	if a.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: artifact has %d, this build reads %d",
			ErrSchemaVersion, a.SchemaVersion, SchemaVersion)
	}
	if fp := Fingerprint(base); a.Fingerprint != fp {
		return fmt.Errorf("%w: artifact %s, graph %s", ErrFingerprint, a.Fingerprint, fp)
	}
	if shape := ClusterShapeOf(cluster); a.Provenance.Cluster != shape {
		return fmt.Errorf("%w: artifact %+v, cluster %+v",
			ErrClusterShape, a.Provenance.Cluster, shape)
	}
	return nil
}

// WriteJSON serializes the artifact.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadJSON parses an artifact, rejecting unknown fields and foreign schema
// versions.
func ReadJSON(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("decode artifact: %w", err)
	}
	if a.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%w: artifact has %d, this build reads %d",
			ErrSchemaVersion, a.SchemaVersion, SchemaVersion)
	}
	return &a, nil
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads an artifact from path.
func ReadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
