package strategy_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/runtime"
	"fastt/internal/sim"
	"fastt/internal/strategy"
)

func cluster2(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

// lenetDP builds a LeNet data-parallel training graph on 2 replicas.
func lenetDP(t *testing.T, batchPerReplica int) *graph.Graph {
	t.Helper()
	m, err := models.LeNet(batchPerReplica)
	if err != nil {
		t.Fatalf("LeNet: %v", err)
	}
	g, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	return g
}

// TestArtifactRoundTripCatalog writes and reloads an artifact for every
// model in the catalog (paper benchmarks plus extras), asserting the decoded
// artifact is identical field for field and still validates against its
// deployment target.
func TestArtifactRoundTripCatalog(t *testing.T) {
	c := cluster2(t)
	for _, spec := range append(models.Catalog(), models.Extras()...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			per := spec.GlobalBatch / 4
			if per < 1 {
				per = 1
			}
			m, err := spec.Build(per)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			g, err := graph.BuildDataParallel(m, 2)
			if err != nil {
				t.Fatalf("BuildDataParallel: %v", err)
			}
			place, err := placement.DataParallel(g, c)
			if err != nil {
				t.Fatalf("DataParallel: %v", err)
			}
			order, err := g.TopoOrder()
			if err != nil {
				t.Fatalf("TopoOrder: %v", err)
			}
			art := strategy.New(g, place, order, nil, 123*time.Microsecond, strategy.Provenance{
				Model:    spec.Name,
				Origin:   "data-parallel",
				Cluster:  strategy.ClusterShapeOf(c),
				CostHash: "0123456789abcdef0123456789abcdef",
			})

			var buf bytes.Buffer
			if err := art.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			got, err := strategy.ReadJSON(&buf)
			if err != nil {
				t.Fatalf("ReadJSON: %v", err)
			}
			if !reflect.DeepEqual(got, art) {
				t.Errorf("round trip differs:\n got %+v\nwant %+v", got, art)
			}
			if err := got.Validate(g, c); err != nil {
				t.Errorf("reloaded artifact invalid: %v", err)
			}
		})
	}
}

// TestReplayDeterminism is the deployment contract end to end: a computed
// strategy written to JSON and reloaded reproduces a byte-identical
// materialized graph, the same placement and order, and the same simulated
// makespan as the original in-memory strategy.
func TestReplayDeterminism(t *testing.T) {
	c := cluster2(t)
	base := lenetDP(t, 64)
	cand, err := core.ComputeStrategy(base, c, kernels.NewDefaultOracle(c),
		core.Options{MaxSplitOps: 4, MaxSyncGroups: 8})
	if err != nil {
		t.Fatalf("ComputeStrategy: %v", err)
	}
	art := cand.Artifact
	art.Provenance = strategy.Provenance{
		Model: "LeNet", Origin: "fastt", Cluster: strategy.ClusterShapeOf(c),
	}

	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	reloaded, err := strategy.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(reloaded.Placement, art.Placement) {
		t.Fatal("placement changed across serialization")
	}
	if !reflect.DeepEqual(reloaded.Order, art.Order) {
		t.Fatal("order changed across serialization")
	}
	if !reflect.DeepEqual(reloaded.Splits, art.Splits) {
		t.Fatal("split list changed across serialization")
	}

	// Materializing the reloaded artifact reproduces the calculator's graph
	// byte for byte.
	g, err := reloaded.Materialize(base)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	var want, got bytes.Buffer
	if err := cand.Graph.WriteJSON(&want); err != nil {
		t.Fatalf("WriteJSON(calculator graph): %v", err)
	}
	if err := g.WriteJSON(&got); err != nil {
		t.Fatalf("WriteJSON(materialized graph): %v", err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("materialized graph differs from the calculator's graph")
	}

	// Same executor, same config: identical simulated makespan.
	exec := sim.DefaultExecutor(c)
	cfg := runtime.Config{Jitter: 0.02, Seed: 99, EnforceOrder: true}
	direct, err := exec.Run(cand.Graph, &art, cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	replayed, err := exec.Run(g, reloaded, cfg)
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	if direct.Makespan != replayed.Makespan {
		t.Errorf("makespan diverged: direct %v, replayed %v", direct.Makespan, replayed.Makespan)
	}
}

func TestReadJSONRejectsSchemaVersion(t *testing.T) {
	in := `{"schemaVersion": 99, "graphFingerprint": "abc", "placement": [0],
		"provenance": {"cluster": {"servers": 1, "gpusPerServer": 2}}}`
	if _, err := strategy.ReadJSON(strings.NewReader(in)); !errors.Is(err, strategy.ErrSchemaVersion) {
		t.Errorf("err = %v, want ErrSchemaVersion", err)
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	in := `{"schemaVersion": 1, "graphFingerprint": "abc", "placement": [0],
		"provenance": {"cluster": {"servers": 1, "gpusPerServer": 2}}, "surprise": true}`
	if _, err := strategy.ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	c := cluster2(t)
	g := lenetDP(t, 64)
	place, err := placement.DataParallel(g, c)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	art := strategy.New(g, place, nil, nil, 0,
		strategy.Provenance{Origin: "data-parallel", Cluster: strategy.ClusterShapeOf(c)})
	if err := art.Validate(g, c); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}

	// Different base graph: fingerprint mismatch.
	other := lenetDP(t, 32)
	if err := art.Validate(other, c); !errors.Is(err, strategy.ErrFingerprint) {
		t.Errorf("err = %v, want ErrFingerprint", err)
	}

	// Different cluster topology: shape mismatch.
	c4, err := device.SingleServer(4)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if err := art.Validate(g, c4); !errors.Is(err, strategy.ErrClusterShape) {
		t.Errorf("err = %v, want ErrClusterShape", err)
	}

	// Foreign schema version.
	stale := *art
	stale.SchemaVersion = 0
	if err := stale.Validate(g, c); !errors.Is(err, strategy.ErrSchemaVersion) {
		t.Errorf("err = %v, want ErrSchemaVersion", err)
	}
}

func TestMaterializeRejectsForeignSplits(t *testing.T) {
	c := cluster2(t)
	g := lenetDP(t, 64)
	place, err := placement.DataParallel(g, c)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	art := strategy.New(g, place, nil,
		[]graph.SplitDecision{{OpName: "no-such-op", Dim: graph.DimBatch, N: 2}}, 0,
		strategy.Provenance{Cluster: strategy.ClusterShapeOf(c)})
	if _, err := art.Materialize(g); !errors.Is(err, strategy.ErrMaterialize) {
		t.Errorf("err = %v, want ErrMaterialize", err)
	}
}

func TestPriorityIndex(t *testing.T) {
	a := &strategy.Artifact{Order: []int{2, 0, 1}}
	if got, want := a.PriorityIndex(), []int{1, 2, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("PriorityIndex = %v, want %v", got, want)
	}
	if (&strategy.Artifact{}).PriorityIndex() != nil {
		t.Error("empty order should yield nil priorities")
	}
	if (&strategy.Artifact{Order: []int{0, 7}}).PriorityIndex() != nil {
		t.Error("malformed order should yield nil priorities")
	}
}

// TestFingerprintStability: independently built instances of the same model
// fingerprint identically, and any structural change (here: batch size)
// changes the fingerprint.
func TestFingerprintStability(t *testing.T) {
	a := lenetDP(t, 64)
	b := lenetDP(t, 64)
	if strategy.Fingerprint(a) != strategy.Fingerprint(b) {
		t.Error("identical graphs fingerprint differently")
	}
	if strategy.Fingerprint(a) == strategy.Fingerprint(lenetDP(t, 32)) {
		t.Error("different graphs share a fingerprint")
	}
	if len(strategy.Fingerprint(a)) != 32 {
		t.Errorf("fingerprint length = %d, want 32 hex chars", len(strategy.Fingerprint(a)))
	}
}

// bottleneckGraph is a hand-built DAG whose huge matmul dominates the
// critical path so badly that OS-DPOS reliably splits it — the catalog's
// small models (LeNet et al.) never split, so this is the graph that gets a
// non-empty split list through the serialization path.
func bottleneckGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	in := g.MustAddOp(&graph.Op{
		Name: "input", Kind: graph.KindInput,
		OutputBytes: 8 << 20, Batch: 64,
	})
	cheap := g.MustAddOp(&graph.Op{
		Name: "branch_cheap", Kind: graph.KindConv2D,
		FLOPs: 2e9, OutputBytes: 8 << 20, Batch: 64, Channels: 128,
	})
	costly := g.MustAddOp(&graph.Op{
		Name: "branch_costly", Kind: graph.KindConv2D,
		FLOPs: 40e9, OutputBytes: 8 << 20, Batch: 64, Channels: 128,
	})
	join := g.MustAddOp(&graph.Op{
		Name: "join", Kind: graph.KindConcat,
		OutputBytes: 16 << 20, Batch: 64, Channels: 256,
	})
	bottleneck := g.MustAddOp(&graph.Op{
		Name: "bottleneck", Kind: graph.KindMatMul,
		FLOPs: 120e9, ParamBytes: 16 << 20, OutputBytes: 4 << 20,
		Batch: 64, Channels: 4096,
	})
	loss := g.MustAddOp(&graph.Op{
		Name: "loss", Kind: graph.KindLoss, FLOPs: 1e6, OutputBytes: 4, Batch: 64,
	})
	g.MustConnect(in, cheap, 8<<20)
	g.MustConnect(in, costly, 8<<20)
	g.MustConnect(cheap, join, 8<<20)
	g.MustConnect(costly, join, 8<<20)
	g.MustConnect(join, bottleneck, 16<<20)
	g.MustConnect(bottleneck, loss, 4<<20)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

// TestSplitListRoundTrip forces a strategy with a non-empty split list and
// asserts the splits survive serialization and re-materialize into the
// calculator's exact split graph on an independently rebuilt base.
func TestSplitListRoundTrip(t *testing.T) {
	c, err := device.SingleServer(4)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	base := bottleneckGraph(t)
	cand, err := core.ComputeStrategy(base, c, kernels.NewDefaultOracle(c), core.Options{})
	if err != nil {
		t.Fatalf("ComputeStrategy: %v", err)
	}
	if len(cand.Splits) == 0 {
		t.Fatal("bottleneck graph produced no splits; test graph no longer exercises the split path")
	}
	art := cand.Artifact
	art.Provenance = strategy.Provenance{
		Model: "bottleneck", Origin: "fastt", Cluster: strategy.ClusterShapeOf(c),
	}

	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	reloaded, err := strategy.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(reloaded.Splits, art.Splits) {
		t.Fatalf("split list changed across serialization:\n got %+v\nwant %+v",
			reloaded.Splits, art.Splits)
	}

	// Materialize on a fresh base graph, as a deployment process would.
	fresh := bottleneckGraph(t)
	if err := reloaded.Validate(fresh, c); err != nil {
		t.Fatalf("Validate on fresh base: %v", err)
	}
	g, err := reloaded.Materialize(fresh)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	var want, got bytes.Buffer
	if err := cand.Graph.WriteJSON(&want); err != nil {
		t.Fatalf("WriteJSON(calculator graph): %v", err)
	}
	if err := g.WriteJSON(&got); err != nil {
		t.Fatalf("WriteJSON(materialized graph): %v", err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("materialized split graph differs from the calculator's graph")
	}

	exec := sim.DefaultExecutor(c)
	cfg := runtime.Config{Jitter: 0.02, Seed: 41, EnforceOrder: true}
	direct, err := exec.Run(cand.Graph, &art, cfg)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	replayed, err := exec.Run(g, reloaded, cfg)
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	if direct.Makespan != replayed.Makespan {
		t.Errorf("makespan diverged: direct %v, replayed %v", direct.Makespan, replayed.Makespan)
	}
}

func TestFileRoundTrip(t *testing.T) {
	c := cluster2(t)
	g := lenetDP(t, 64)
	place, err := placement.DataParallel(g, c)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	art := strategy.New(g, place, nil, nil, time.Millisecond,
		strategy.Provenance{Model: "LeNet", Origin: "data-parallel", Cluster: strategy.ClusterShapeOf(c)})
	path := t.TempDir() + "/s.json"
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := strategy.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, art) {
		t.Errorf("file round trip differs:\n got %+v\nwant %+v", got, art)
	}
}
