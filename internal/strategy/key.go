package strategy

import "fmt"

// CacheKey is the provenance triple identifying one strategy computation:
// the base-graph fingerprint, the cluster shape, and the cost-model hash.
// Two requests with equal keys are the same search — same input graph, same
// topology, same learned costs — so a cached artifact for one answers the
// other. ClusterShape and the hashes are plain comparable values, making the
// struct usable directly as a map key.
type CacheKey struct {
	Fingerprint string
	Cluster     ClusterShape
	CostHash    string
}

// CacheKey extracts the artifact's own provenance triple.
func (a *Artifact) CacheKey() CacheKey {
	return CacheKey{
		Fingerprint: a.Fingerprint,
		Cluster:     a.Provenance.Cluster,
		CostHash:    a.Provenance.CostHash,
	}
}

// String renders the key for logs and diagnostics.
func (k CacheKey) String() string {
	cost := k.CostHash
	if cost == "" {
		cost = "-"
	}
	classes := ""
	if k.Cluster.Classes != "" {
		// The exact layout can be long on big clusters; logs only need
		// enough to tell mixes apart.
		classes = "[" + abbreviate(k.Cluster.Classes, 40) + "]"
	}
	if k.Cluster.Devices > 0 {
		return fmt.Sprintf("%s@%dsrv/%ddev%s/%s", k.Fingerprint, k.Cluster.Servers, k.Cluster.Devices, classes, cost)
	}
	return fmt.Sprintf("%s@%dx%d%s/%s", k.Fingerprint, k.Cluster.Servers, k.Cluster.GPUsPerServer, classes, cost)
}

func abbreviate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max-3] + "..."
}

// Hash64 digests the key with FNV-1a, the shard selector of the serve
// cache. Every field participates, so keys differing in any coordinate of
// the triple spread independently across shards.
func (k CacheKey) Hash64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator: ("ab","c") and ("a","bc") must differ
		h *= prime64
	}
	mixInt := func(v int) {
		for i := 0; i < 8; i++ {
			h ^= uint64(v) >> (8 * i) & 0xff
			h *= prime64
		}
	}
	mix(k.Fingerprint)
	mixInt(k.Cluster.Servers)
	mixInt(k.Cluster.GPUsPerServer)
	mixInt(k.Cluster.Devices)
	mix(k.Cluster.Classes)
	mix(k.CostHash)
	return h
}

// SizeBytes approximates the artifact's in-memory footprint for the cache's
// byte budget: string headers and payloads, 8 bytes per placement/order
// slot, the split list, and a fixed struct overhead. It intentionally
// over-counts slightly rather than under-counting — eviction triggered a
// little early is safe, a budget overrun is not.
func (a *Artifact) SizeBytes() int64 {
	const (
		structOverhead = 256 // Artifact + Provenance structs, slice headers
		perSplit       = 64  // SplitDecision struct + name header
	)
	n := int64(structOverhead)
	n += int64(len(a.Fingerprint))
	n += int64(len(a.Provenance.Model) + len(a.Provenance.Origin) + len(a.Provenance.CostHash))
	n += int64(len(a.Provenance.Cluster.Classes))
	n += int64(8 * (len(a.Placement) + len(a.Order)))
	for _, sp := range a.Splits {
		n += perSplit + int64(len(sp.OpName))
	}
	return n
}
