package strategy

import (
	"strings"
	"testing"
)

func TestCacheKeyDistinctCoordinates(t *testing.T) {
	base := CacheKey{
		Fingerprint: "aaaa",
		Cluster:     ClusterShape{Servers: 2, GPUsPerServer: 4},
		CostHash:    "cccc",
	}
	variants := []CacheKey{
		{Fingerprint: "bbbb", Cluster: base.Cluster, CostHash: base.CostHash},
		{Fingerprint: base.Fingerprint, Cluster: ClusterShape{Servers: 4, GPUsPerServer: 2}, CostHash: base.CostHash},
		{Fingerprint: base.Fingerprint, Cluster: ClusterShape{Servers: 2, Devices: 8}, CostHash: base.CostHash},
		{Fingerprint: base.Fingerprint, Cluster: base.Cluster, CostHash: "dddd"},
		{Fingerprint: base.Fingerprint, Cluster: base.Cluster, CostHash: ""},
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d compares equal to base", i)
		}
		if v.String() == base.String() {
			t.Errorf("variant %d String() collides with base: %s", i, v.String())
		}
	}
	// Field boundaries must matter: content shifted across the separator
	// still hashes differently.
	a := CacheKey{Fingerprint: "ab", CostHash: "c"}
	b := CacheKey{Fingerprint: "a", CostHash: "bc"}
	if a.Hash64() == b.Hash64() {
		t.Error("field-boundary shift produced a hash collision")
	}
	if base.Hash64() == 0 {
		t.Error("Hash64 returned zero")
	}
}

func TestArtifactCacheKeyRoundTrip(t *testing.T) {
	a := &Artifact{
		SchemaVersion: SchemaVersion,
		Fingerprint:   "feedface",
		Provenance: Provenance{
			Model:    "mlp",
			Origin:   "fastt-serve",
			Cluster:  ClusterShape{Servers: 1, GPUsPerServer: 4},
			CostHash: "deadbeef",
		},
	}
	k := a.CacheKey()
	if k.Fingerprint != a.Fingerprint || k.Cluster != a.Provenance.Cluster || k.CostHash != a.Provenance.CostHash {
		t.Errorf("CacheKey() = %+v, want the artifact's provenance triple", k)
	}
	if !strings.Contains(k.String(), "feedface") || !strings.Contains(k.String(), "1x4") {
		t.Errorf("String() = %q, want fingerprint and shape rendered", k.String())
	}
}

func TestArtifactSizeBytes(t *testing.T) {
	small := &Artifact{SchemaVersion: SchemaVersion, Fingerprint: "aa"}
	if small.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", small.SizeBytes())
	}
	big := &Artifact{
		SchemaVersion: SchemaVersion,
		Fingerprint:   "aa",
		Placement:     make([]int, 1000),
		Order:         make([]int, 1000),
	}
	// 2000 extra 8-byte slots must be visible in the accounting.
	if got, want := big.SizeBytes()-small.SizeBytes(), int64(16000); got != want {
		t.Errorf("placement+order delta = %d, want %d", got, want)
	}
}
