package strategy

import (
	"strings"
	"testing"

	"fastt/internal/device"
)

func TestCacheKeyDistinctCoordinates(t *testing.T) {
	base := CacheKey{
		Fingerprint: "aaaa",
		Cluster:     ClusterShape{Servers: 2, GPUsPerServer: 4},
		CostHash:    "cccc",
	}
	variants := []CacheKey{
		{Fingerprint: "bbbb", Cluster: base.Cluster, CostHash: base.CostHash},
		{Fingerprint: base.Fingerprint, Cluster: ClusterShape{Servers: 4, GPUsPerServer: 2}, CostHash: base.CostHash},
		{Fingerprint: base.Fingerprint, Cluster: ClusterShape{Servers: 2, Devices: 8}, CostHash: base.CostHash},
		{Fingerprint: base.Fingerprint, Cluster: base.Cluster, CostHash: "dddd"},
		{Fingerprint: base.Fingerprint, Cluster: base.Cluster, CostHash: ""},
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d compares equal to base", i)
		}
		if v.String() == base.String() {
			t.Errorf("variant %d String() collides with base: %s", i, v.String())
		}
	}
	// Field boundaries must matter: content shifted across the separator
	// still hashes differently.
	a := CacheKey{Fingerprint: "ab", CostHash: "c"}
	b := CacheKey{Fingerprint: "a", CostHash: "bc"}
	if a.Hash64() == b.Hash64() {
		t.Error("field-boundary shift produced a hash collision")
	}
	if base.Hash64() == 0 {
		t.Error("Hash64 returned zero")
	}
}

func TestArtifactCacheKeyRoundTrip(t *testing.T) {
	a := &Artifact{
		SchemaVersion: SchemaVersion,
		Fingerprint:   "feedface",
		Provenance: Provenance{
			Model:    "mlp",
			Origin:   "fastt-serve",
			Cluster:  ClusterShape{Servers: 1, GPUsPerServer: 4},
			CostHash: "deadbeef",
		},
	}
	k := a.CacheKey()
	if k.Fingerprint != a.Fingerprint || k.Cluster != a.Provenance.Cluster || k.CostHash != a.Provenance.CostHash {
		t.Errorf("CacheKey() = %+v, want the artifact's provenance triple", k)
	}
	if !strings.Contains(k.String(), "feedface") || !strings.Contains(k.String(), "1x4") {
		t.Errorf("String() = %q, want fingerprint and shape rendered", k.String())
	}
}

// TestClusterShapeRegularEncodingUnchanged pins the pre-class encoding:
// regular all-V100 clusters must keep the bare {servers, gpusPerServer}
// shape — no Devices, no Classes — so their artifacts and cache keys stay
// byte-identical to every artifact minted before device classes existed.
func TestClusterShapeRegularEncodingUnchanged(t *testing.T) {
	c, err := device.NewCluster(2, 4)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	got := ClusterShapeOf(c)
	want := ClusterShape{Servers: 2, GPUsPerServer: 4}
	if got != want {
		t.Errorf("ClusterShapeOf(2x4 V100) = %+v, want %+v", got, want)
	}
}

// TestDegradedShapesDoNotCollide: two 2x4 clusters that each lost one
// device are both {2 servers, 7 devices} under the count-only encoding; the
// classed layout must keep their cache keys apart, or the serve cache would
// answer one degraded cluster with the other's strategy.
func TestDegradedShapesDoNotCollide(t *testing.T) {
	base, err := device.NewCluster(2, 4)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	lostFirst, _, err := base.Without(1) // server 0 loses a GPU
	if err != nil {
		t.Fatalf("Without(1): %v", err)
	}
	lostLast, _, err := base.Without(7) // server 1 loses a GPU
	if err != nil {
		t.Fatalf("Without(7): %v", err)
	}
	a, b := ClusterShapeOf(lostFirst), ClusterShapeOf(lostLast)
	if a.NumDevices() != 7 || b.NumDevices() != 7 || a.Servers != b.Servers {
		t.Fatalf("unexpected shapes %+v / %+v", a, b)
	}
	if a == b {
		t.Fatalf("degraded shapes collide: %+v", a)
	}
	ka := CacheKey{Fingerprint: "g", Cluster: a}
	kb := CacheKey{Fingerprint: "g", Cluster: b}
	if ka == kb || ka.Hash64() == kb.Hash64() {
		t.Errorf("cache keys collide for distinct degraded clusters: %s vs %s", ka, kb)
	}
}

// TestMixedShapeDoesNotImpersonateUniform: a 4xV100+4xT4 fleet has the same
// {2 servers, 4 GPUs each} counts as the uniform testbed; the classed layout
// must separate them.
func TestMixedShapeDoesNotImpersonateUniform(t *testing.T) {
	uniform, err := device.NewCluster(2, 4)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	mixed, err := device.NewHeterogeneous(&device.Spec{Servers: []device.SpecServer{
		{Rack: 0, GPUs: []string{"V100", "V100", "V100", "V100"}},
		{Rack: 0, GPUs: []string{"T4", "T4", "T4", "T4"}},
	}})
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	u, m := ClusterShapeOf(uniform), ClusterShapeOf(mixed)
	if u.Servers != m.Servers || u.GPUsPerServer != m.GPUsPerServer {
		t.Fatalf("counts should agree: %+v vs %+v", u, m)
	}
	if m.Classes == "" {
		t.Fatal("mixed cluster produced an empty class layout")
	}
	ku := CacheKey{Fingerprint: "g", Cluster: u}
	km := CacheKey{Fingerprint: "g", Cluster: m}
	if ku == km || ku.Hash64() == km.Hash64() {
		t.Errorf("mixed fleet's cache key collides with the uniform testbed: %s", km)
	}
	if !strings.Contains(km.String(), "T4") {
		t.Errorf("key String() = %q, want the mix visible in logs", km.String())
	}
}

func TestArtifactSizeBytes(t *testing.T) {
	small := &Artifact{SchemaVersion: SchemaVersion, Fingerprint: "aa"}
	if small.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", small.SizeBytes())
	}
	big := &Artifact{
		SchemaVersion: SchemaVersion,
		Fingerprint:   "aa",
		Placement:     make([]int, 1000),
		Order:         make([]int, 1000),
	}
	// 2000 extra 8-byte slots must be visible in the accounting.
	if got, want := big.SizeBytes()-small.SizeBytes(), int64(16000); got != want {
		t.Errorf("placement+order delta = %d, want %d", got, want)
	}
}
