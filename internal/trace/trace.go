// Package trace renders simulation results for humans and tools: Chrome
// trace-event JSON (load in chrome://tracing or Perfetto), a plain-text
// Gantt timeline, and per-device utilization / compute-vs-memcpy breakdowns
// (the quantities behind Fig. 5 of the paper).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"fastt/internal/graph"
	"fastt/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event format.
type chromeEvent struct {
	Name     string  `json:"name"`
	Category string  `json:"cat"`
	Phase    string  `json:"ph"`
	TsMicros float64 `json:"ts"`
	DurMicro float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
}

// WriteChromeTrace writes the result as Chrome trace-event JSON. Compute
// spans appear one track per device (pid 0); transfers one track per
// destination device (pid 1).
func WriteChromeTrace(w io.Writer, g *graph.Graph, res *sim.Result) error {
	events := make([]chromeEvent, 0, len(res.Spans)+len(res.Transfers))
	for _, s := range res.Spans {
		events = append(events, chromeEvent{
			Name:     g.Op(s.Op).Name,
			Category: "compute",
			Phase:    "X",
			TsMicros: float64(s.Start) / float64(time.Microsecond),
			DurMicro: float64(s.End-s.Start) / float64(time.Microsecond),
			PID:      0,
			TID:      s.Device,
		})
	}
	for _, t := range res.Transfers {
		events = append(events, chromeEvent{
			Name:     fmt.Sprintf("%s->%d", g.Op(t.Producer).Name, t.To),
			Category: "memcpy",
			Phase:    "X",
			TsMicros: float64(t.Start) / float64(time.Microsecond),
			DurMicro: float64(t.End-t.Start) / float64(time.Microsecond),
			PID:      1,
			TID:      t.To,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// Utilization summarizes one device's activity over an iteration.
type Utilization struct {
	Device       int
	ComputeBusy  time.Duration
	MemcpyBusy   time.Duration
	ComputeFrac  float64
	PeakMemBytes int64
	Ops          int
}

// Utilizations computes per-device utilization for the result.
func Utilizations(res *sim.Result) []Utilization {
	n := len(res.ComputeBusy)
	out := make([]Utilization, n)
	opCounts := make([]int, n)
	for _, s := range res.Spans {
		opCounts[s.Device]++
	}
	for d := 0; d < n; d++ {
		u := Utilization{
			Device:      d,
			ComputeBusy: res.ComputeBusy[d],
			MemcpyBusy:  res.MemcpyBusy[d],
			Ops:         opCounts[d],
		}
		if res.Makespan > 0 {
			u.ComputeFrac = float64(res.ComputeBusy[d]) / float64(res.Makespan)
		}
		if d < len(res.PeakMemory) {
			u.PeakMemBytes = res.PeakMemory[d]
		}
		out[d] = u
	}
	return out
}

// WriteUtilization prints a per-device utilization table.
func WriteUtilization(w io.Writer, res *sim.Result) error {
	if _, err := fmt.Fprintf(w, "%-8s %12s %12s %8s %10s %6s\n",
		"device", "compute", "memcpy", "util", "peak mem", "ops"); err != nil {
		return err
	}
	for _, u := range Utilizations(res) {
		if _, err := fmt.Fprintf(w, "gpu%-5d %12v %12v %7.1f%% %9.1fMB %6d\n",
			u.Device, u.ComputeBusy.Round(time.Microsecond),
			u.MemcpyBusy.Round(time.Microsecond),
			100*u.ComputeFrac, float64(u.PeakMemBytes)/1e6, u.Ops); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimeline renders an ASCII Gantt chart: one row per device, `width`
// character columns spanning the makespan, '#' for compute and '-' for
// idle.
func WriteTimeline(w io.Writer, res *sim.Result, width int) error {
	if width < 10 {
		width = 10
	}
	if res.Makespan == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline)")
		return err
	}
	rows := make(map[int][]byte)
	for d := range res.ComputeBusy {
		rows[d] = []byte(strings.Repeat("-", width))
	}
	scale := float64(width) / float64(res.Makespan)
	for _, s := range res.Spans {
		row := rows[s.Device]
		lo := int(float64(s.Start) * scale)
		hi := int(float64(s.End) * scale)
		if hi >= width {
			hi = width - 1
		}
		for i := lo; i <= hi; i++ {
			row[i] = '#'
		}
	}
	devs := make([]int, 0, len(rows))
	for d := range rows {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		if _, err := fmt.Fprintf(w, "gpu%d |%s|\n", d, rows[d]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "     0%s%v\n", strings.Repeat(" ", width-6), res.Makespan.Round(time.Microsecond))
	return err
}

// WriteSpansCSV exports the compute spans as CSV (op, kind, device,
// start_us, end_us, dur_us) for analysis in external tooling.
func WriteSpansCSV(w io.Writer, g *graph.Graph, res *sim.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"op", "kind", "device", "start_us", "end_us", "dur_us"}); err != nil {
		return err
	}
	for _, s := range res.Spans {
		op := g.Op(s.Op)
		rec := []string{
			op.Name,
			op.Kind.String(),
			strconv.Itoa(s.Device),
			formatMicros(s.Start),
			formatMicros(s.End),
			formatMicros(s.End - s.Start),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTransfersCSV exports the transfers as CSV (producer, consumer, from,
// to, bytes, enqueued_us, start_us, end_us).
func WriteTransfersCSV(w io.Writer, g *graph.Graph, res *sim.Result) error {
	cw := csv.NewWriter(w)
	header := []string{"producer", "consumer", "from", "to", "bytes", "enqueued_us", "start_us", "end_us"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range res.Transfers {
		rec := []string{
			g.Op(t.Producer).Name,
			g.Op(t.Consumer).Name,
			strconv.Itoa(t.From),
			strconv.Itoa(t.To),
			strconv.FormatInt(t.Bytes, 10),
			formatMicros(t.Enqueued),
			formatMicros(t.Start),
			formatMicros(t.End),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatMicros(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'f', 3, 64)
}

// Breakdown is the Fig. 5 triple for one configuration.
type Breakdown struct {
	Computation  time.Duration // average per-device kernel time
	Memcpy       time.Duration // total transfer time
	PerIteration time.Duration // makespan
}

// BreakdownOf extracts the compute/memcpy/iteration breakdown.
func BreakdownOf(res *sim.Result) Breakdown {
	return Breakdown{
		Computation:  res.AvgComputeBusy(),
		Memcpy:       res.TotalMemcpy(),
		PerIteration: res.Makespan,
	}
}
