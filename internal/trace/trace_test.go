package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/sim"
)

// sampleResult runs a small cross-device graph through the simulator.
func sampleResult(t *testing.T) (*graph.Graph, *sim.Result) {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := sim.NewEngine(c, kernels.NewDefaultOracle(c))
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "producer", Kind: graph.KindConv2D, FLOPs: 1e9, OutputBytes: 1 << 20})
	b := g.MustAddOp(&graph.Op{Name: "consumer", Kind: graph.KindRelu, FLOPs: 1e6, OutputBytes: 1 << 10})
	g.MustConnect(a, b, 1<<20)
	res, err := e.Run(g, []int{0, 1}, sim.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return g, res
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	g, res := sampleResult(t)
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, g, res); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // 2 spans + 1 transfer
		t.Errorf("traceEvents = %d, want 3", len(doc.TraceEvents))
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		cats[e["cat"].(string)]++
	}
	if cats["compute"] != 2 || cats["memcpy"] != 1 {
		t.Errorf("categories = %v", cats)
	}
}

func TestUtilizations(t *testing.T) {
	_, res := sampleResult(t)
	us := Utilizations(res)
	if len(us) != 2 {
		t.Fatalf("Utilizations = %d entries, want 2", len(us))
	}
	if us[0].Ops != 1 || us[1].Ops != 1 {
		t.Errorf("op counts = %d,%d, want 1,1", us[0].Ops, us[1].Ops)
	}
	if us[0].ComputeFrac <= 0 || us[0].ComputeFrac > 1 {
		t.Errorf("ComputeFrac = %v", us[0].ComputeFrac)
	}
	if us[1].MemcpyBusy == 0 {
		t.Error("receiving device has no memcpy time")
	}
}

func TestWriteUtilizationTable(t *testing.T) {
	_, res := sampleResult(t)
	var sb strings.Builder
	if err := WriteUtilization(&sb, res); err != nil {
		t.Fatalf("WriteUtilization: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"device", "gpu0", "gpu1"} {
		if !strings.Contains(out, want) {
			t.Errorf("utilization table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTimeline(t *testing.T) {
	_, res := sampleResult(t)
	var sb strings.Builder
	if err := WriteTimeline(&sb, res, 40); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "gpu0 |") || !strings.Contains(out, "gpu1 |") {
		t.Errorf("timeline missing device rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("timeline has no busy cells:\n%s", out)
	}
}

func TestWriteTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTimeline(&sb, &sim.Result{}, 40); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty timeline output = %q", sb.String())
	}
}

func TestBreakdownOf(t *testing.T) {
	_, res := sampleResult(t)
	b := BreakdownOf(res)
	if b.PerIteration != res.Makespan {
		t.Errorf("PerIteration = %v, want %v", b.PerIteration, res.Makespan)
	}
	if b.Computation <= 0 || b.Memcpy <= 0 {
		t.Errorf("Breakdown = %+v", b)
	}
	if b.PerIteration < b.Computation {
		t.Error("iteration time below average compute time")
	}
	_ = time.Second
}

func TestWriteSpansCSV(t *testing.T) {
	g, res := sampleResult(t)
	var sb strings.Builder
	if err := WriteSpansCSV(&sb, g, res); err != nil {
		t.Fatalf("WriteSpansCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 { // header + 2 spans
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "op,kind,device") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(sb.String(), "producer,Conv2D,0") {
		t.Errorf("span row missing:\n%s", sb.String())
	}
}

func TestWriteTransfersCSV(t *testing.T) {
	g, res := sampleResult(t)
	var sb strings.Builder
	if err := WriteTransfersCSV(&sb, g, res); err != nil {
		t.Fatalf("WriteTransfersCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 { // header + 1 transfer
		t.Fatalf("CSV lines = %d, want 2:\n%s", len(lines), sb.String())
	}
	if !strings.Contains(lines[1], "producer,consumer,0,1,1048576") {
		t.Errorf("transfer row unexpected: %s", lines[1])
	}
}
