package cost

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

func TestRemapDevicesDropsDeadAndRenumbers(t *testing.T) {
	c, err := device.SingleServer(3)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	m := NewModel(c)
	m.Comp.Observe("conv", 0, 10*time.Millisecond)
	m.Comp.Observe("conv", 1, 20*time.Millisecond)
	m.Comp.Observe("conv", 2, 40*time.Millisecond)
	m.Link.Observe(0, 1, 1<<20, time.Millisecond)
	m.Link.Observe(0, 2, 1<<20, 2*time.Millisecond)
	m.Link.Observe(1, 2, 1<<20, 3*time.Millisecond)

	shrunk, mapping, err := c.Without(1)
	if err != nil {
		t.Fatalf("Without: %v", err)
	}
	next := m.RemapDevices(shrunk, mapping)

	// Device 0 keeps its entry; old device 2 is now device 1; old device 1
	// is gone.
	if got, ok := next.Comp.Lookup("conv", 0); !ok || got != 10*time.Millisecond {
		t.Fatalf("device 0 entry = %v, %v", got, ok)
	}
	if got, ok := next.Comp.Lookup("conv", 1); !ok || got != 40*time.Millisecond {
		t.Fatalf("renumbered device entry = %v, %v", got, ok)
	}
	if _, ok := next.Comp.Lookup("conv", 2); ok {
		t.Fatal("dead device's entry survived the remap")
	}
	// The any-device aggregate excludes the dead device's observation:
	// mean of 10ms and 40ms.
	op := &graph.Op{Name: "conv"}
	if got := next.Comp.Exec(op, &device.Device{ID: 7}); got != 25*time.Millisecond {
		t.Fatalf("byName fallback = %v, want 25ms", got)
	}

	// Only the surviving pair remains, renumbered 0->1 (was 0->2).
	if next.Link.NumPairs() != 1 {
		t.Fatalf("%d pairs survive, want 1", next.Link.NumPairs())
	}
	if _, ok := next.Link.Pair(0, 1); !ok {
		t.Fatal("surviving pair 0->2 not renumbered to 0->1")
	}
	if pred := next.Link.Comm(1<<20, shrunk.Device(0), shrunk.Device(1)); pred != 2*time.Millisecond {
		t.Fatalf("remapped pair predicts %v, want 2ms", pred)
	}
}

func TestRemapDevicesEmptyModel(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	m := NewModel(c)
	shrunk, mapping, err := c.Without(0)
	if err != nil {
		t.Fatalf("Without: %v", err)
	}
	next := m.RemapDevices(shrunk, mapping)
	if next.Comp.NumEntries() != 0 || next.Link.NumPairs() != 0 {
		t.Fatal("empty model grew entries in remap")
	}
}
