package cost

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fastt/internal/device"
)

func twoServerCluster(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// observeLine feeds the model synthetic transfers following
// time = latency + bytes/bandwidth.
func observeLine(m *CommModel, from, to int, latency time.Duration, bandwidth float64, sizes []int64) {
	for _, s := range sizes {
		d := latency + time.Duration(float64(s)/bandwidth*float64(time.Second))
		m.Observe(from, to, s, d)
	}
}

func TestCommModelRecoversLinearLaw(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	observeLine(m, 0, 1, 10*time.Microsecond, 20e9,
		[]int64{1 << 10, 1 << 16, 1 << 20, 1 << 24})

	lm, ok := m.Pair(0, 1)
	if !ok {
		t.Fatal("Pair fit missing")
	}
	// Slope should approximate 1/20e9 s/B.
	wantSlope := 1.0 / 20e9
	if lm.Slope < wantSlope*0.95 || lm.Slope > wantSlope*1.05 {
		t.Errorf("fitted slope = %g, want ~%g", lm.Slope, wantSlope)
	}
	// Prediction at a new size should be close to the true law.
	got := m.Comm(8<<20, c.Device(0), c.Device(1))
	bytes := float64(int64(8 << 20))
	want := 10*time.Microsecond + time.Duration(bytes/20e9*float64(time.Second))
	if got < want*95/100 || got > want*105/100 {
		t.Errorf("Comm(8MiB) = %v, want ~%v", got, want)
	}
}

func TestCommModelSameDeviceZero(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	if got := m.Comm(1<<20, c.Device(0), c.Device(0)); got != 0 {
		t.Errorf("same-device Comm = %v, want 0", got)
	}
}

func TestCommModelUnknownPairExploresAsZero(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	if got := m.Comm(1<<20, c.Device(0), c.Device(1)); got != 0 {
		t.Errorf("unprofiled Comm = %v, want 0 (explore)", got)
	}
}

func TestCommModelClassFallback(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	// Train the intra-server class on pair (0,1) only.
	observeLine(m, 0, 1, 10*time.Microsecond, 20e9, []int64{1 << 16, 1 << 20})
	// Pair (1,0) is unobserved but same class; should borrow the fit.
	got := m.Comm(1<<20, c.Device(1), c.Device(0))
	if got == 0 {
		t.Error("class fallback did not apply")
	}
	// Cross-server pair (0,2) is a different class with no data: zero.
	if got := m.Comm(1<<20, c.Device(0), c.Device(2)); got != 0 {
		t.Errorf("cross-class Comm = %v, want 0", got)
	}
}

func TestCommModelMaxCommPicksSlowestPair(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	observeLine(m, 0, 1, 10*time.Microsecond, 20e9, []int64{1 << 16, 1 << 20}) // fast
	observeLine(m, 0, 2, 50*time.Microsecond, 3e9, []int64{1 << 16, 1 << 20})  // slow
	maxT := m.MaxComm(1 << 20)
	slow := m.Comm(1<<20, c.Device(0), c.Device(2))
	if maxT != slow {
		t.Errorf("MaxComm = %v, want slow pair %v", maxT, slow)
	}
}

func TestCommModelSingleSizeProportional(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	m.Observe(0, 1, 1<<20, 1*time.Millisecond)
	// With one distinct size the model scales proportionally through zero.
	got := m.Comm(2<<20, c.Device(0), c.Device(1))
	if got < 1900*time.Microsecond || got > 2100*time.Microsecond {
		t.Errorf("proportional Comm = %v, want ~2ms", got)
	}
}

func TestLinearModelPredictClampsNegative(t *testing.T) {
	lm := LinearModel{Intercept: -1, Slope: 0}
	if got := lm.Predict(100); got != 0 {
		t.Errorf("Predict = %v, want 0", got)
	}
}

// TestOLSPropertyRecoversRandomLines fits random positive lines with exact
// observations and checks recovery of both parameters.
func TestOLSPropertyRecoversRandomLines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		intercept := rng.Float64() * 1e-3      // up to 1ms latency
		slope := (rng.Float64() + 0.01) * 1e-9 // ~1 GB/s to 100 GB/s
		var acc olsAccumulator
		for i := 0; i < 10; i++ {
			x := float64(rng.Int63n(1 << 24))
			acc.add(x, intercept+slope*x)
		}
		lm := acc.fit()
		okSlope := lm.Slope > slope*0.99 && lm.Slope < slope*1.01
		okIcept := lm.Intercept > intercept-1e-6 && lm.Intercept < intercept+1e-6
		return okSlope && okIcept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCommModelIgnoresSameDeviceObservations(t *testing.T) {
	c := twoServerCluster(t)
	m := NewCommModel(c)
	m.Observe(0, 0, 1<<20, time.Second)
	if m.NumPairs() != 0 {
		t.Error("same-device observation was recorded")
	}
}
