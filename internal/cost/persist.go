package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Persistence: FastT's cost models are expensive to bootstrap (several
// profiled iterations plus strategy restarts), so a production deployment
// saves them once the pre-training stage declares them stable and reloads
// them when the same model trains again — skipping straight to the normal
// training stage. The format captures the sufficient statistics of both
// models, so merged observations continue seamlessly.

// jsonCompEntry is one computation-model key with its running statistics.
type jsonCompEntry struct {
	Name string  `json:"name"`
	Dev  int     `json:"dev"`
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// jsonCommEntry is one communication-model pair with its OLS accumulator.
type jsonCommEntry struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	N     int64   `json:"n"`
	SumX  float64 `json:"sumX"`
	SumY  float64 `json:"sumY"`
	SumXX float64 `json:"sumXX"`
	SumXY float64 `json:"sumXY"`
	MinX  float64 `json:"minX"`
	MaxX  float64 `json:"maxX"`
}

type jsonModel struct {
	Comp []jsonCompEntry `json:"comp"`
	Comm []jsonCommEntry `json:"comm"`
}

// WriteJSON serializes both cost models. The output is deterministic
// (entries sorted by key), so the same learned state always produces the
// same bytes — strategy artifacts hash this output as their cost-model
// provenance.
func (m *Model) WriteJSON(w io.Writer) error {
	doc := jsonModel{}

	m.Comp.mu.RLock()
	for k, s := range m.Comp.stats {
		doc.Comp = append(doc.Comp, jsonCompEntry{
			Name: k.name, Dev: k.dev, N: s.n, Mean: s.mean, M2: s.m2,
		})
	}
	m.Comp.mu.RUnlock()
	sort.Slice(doc.Comp, func(i, j int) bool {
		if doc.Comp[i].Name != doc.Comp[j].Name {
			return doc.Comp[i].Name < doc.Comp[j].Name
		}
		return doc.Comp[i].Dev < doc.Comp[j].Dev
	})

	m.Link.mu.RLock()
	for k, acc := range m.Link.pairs {
		doc.Comm = append(doc.Comm, jsonCommEntry{
			From: k.from, To: k.to, N: acc.n,
			SumX: acc.sumX, SumY: acc.sumY,
			SumXX: acc.sumXX, SumXY: acc.sumXY,
			MinX: acc.minX, MaxX: acc.maxX,
		})
	}
	m.Link.mu.RUnlock()
	sort.Slice(doc.Comm, func(i, j int) bool {
		if doc.Comm[i].From != doc.Comm[j].From {
			return doc.Comm[i].From < doc.Comm[j].From
		}
		return doc.Comm[i].To < doc.Comm[j].To
	})

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadJSON merges previously saved statistics into the model. Existing
// entries are combined with the loaded ones using the parallel-variance
// (Chan et al.) merge, so loading is safe on a non-empty model.
func (m *Model) ReadJSON(r io.Reader) error {
	var doc jsonModel
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("decode cost models: %w", err)
	}
	m.Comp.mu.Lock()
	for _, e := range doc.Comp {
		if e.N < 0 {
			m.Comp.mu.Unlock()
			return fmt.Errorf("cost entry %q: negative count", e.Name)
		}
		k := compKey{name: e.Name, dev: e.Dev}
		cur, ok := m.Comp.stats[k]
		if !ok {
			cur = &runningStat{}
			m.Comp.stats[k] = cur
		}
		mergeStat(cur, e.N, e.Mean, e.M2)
		if class := m.Comp.classOf(e.Dev); class != "" {
			ck := classKey{name: e.Name, class: class}
			cs, ok := m.Comp.byClass[ck]
			if !ok {
				cs = &runningStat{}
				m.Comp.byClass[ck] = cs
			}
			mergeStat(cs, e.N, e.Mean, e.M2)
		}
		agg, ok := m.Comp.byName[e.Name]
		if !ok {
			agg = &runningStat{}
			m.Comp.byName[e.Name] = agg
		}
		mergeStat(agg, e.N, e.Mean, e.M2)
	}
	m.Comp.mu.Unlock()

	m.Link.mu.Lock()
	for _, e := range doc.Comm {
		if e.From < 0 || e.To < 0 || e.From >= m.Link.cluster.NumDevices() ||
			e.To >= m.Link.cluster.NumDevices() {
			m.Link.mu.Unlock()
			return fmt.Errorf("comm entry %d->%d: outside cluster", e.From, e.To)
		}
		k := pairKey{from: e.From, to: e.To}
		acc, ok := m.Link.pairs[k]
		if !ok {
			acc = &olsAccumulator{}
			m.Link.pairs[k] = acc
		}
		mergeOLS(acc, e)
		mergeOLS(m.Link.classes[m.Link.classOf(e.From, e.To)], e)
	}
	m.Link.mu.Unlock()
	return nil
}

// mergeStat combines (n, mean, m2) into s (parallel Welford merge).
func mergeStat(s *runningStat, n int64, mean, m2 float64) {
	if n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2 = n, mean, m2
		return
	}
	total := s.n + n
	delta := mean - s.mean
	s.m2 += m2 + delta*delta*float64(s.n)*float64(n)/float64(total)
	s.mean += delta * float64(n) / float64(total)
	s.n = total
}

// mergeOLS combines a serialized accumulator into acc.
func mergeOLS(acc *olsAccumulator, e jsonCommEntry) {
	if e.N == 0 {
		return
	}
	if acc.n == 0 {
		acc.minX, acc.maxX = e.MinX, e.MaxX
	} else {
		if e.MinX < acc.minX {
			acc.minX = e.MinX
		}
		if e.MaxX > acc.maxX {
			acc.maxX = e.MaxX
		}
	}
	acc.n += e.N
	acc.sumX += e.SumX
	acc.sumY += e.SumY
	acc.sumXX += e.SumXX
	acc.sumXY += e.SumXY
}
