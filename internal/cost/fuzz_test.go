package cost

import (
	"bytes"
	"testing"

	"fastt/internal/device"
)

// FuzzModelReadJSON asserts the cost-model loader's contract on arbitrary
// bytes: it never panics, and any document it accepts merges into a state
// that serializes canonically — writing, re-reading into a fresh model, and
// writing again produces identical bytes.
func FuzzModelReadJSON(f *testing.F) {
	f.Add([]byte(`{"comp":[{"name":"conv1","dev":0,"n":3,"mean":1500000,"m2":12.5}],` +
		`"comm":[{"from":0,"to":1,"n":2,"sumX":1024,"sumY":9,"sumXX":524800,` +
		`"sumXY":4608,"minX":256,"maxX":768}]}`))
	f.Add([]byte(`{"comp":[],"comm":[]}`))
	f.Add([]byte(`{"comp":[{"name":"x","dev":0,"n":-1}]}`))
	f.Add([]byte(`{"comm":[{"from":9,"to":0}]}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cluster, err := device.SingleServer(4)
		if err != nil {
			t.Fatalf("SingleServer: %v", err)
		}
		m := NewModel(cluster)
		if err := m.ReadJSON(bytes.NewReader(data)); err != nil {
			return
		}
		var first bytes.Buffer
		if err := m.WriteJSON(&first); err != nil {
			t.Fatalf("accepted model does not serialize: %v", err)
		}
		fresh := NewModel(cluster)
		if err := fresh.ReadJSON(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := fresh.WriteJSON(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip is not canonical:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
