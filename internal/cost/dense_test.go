package cost

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
)

// trainedModel returns a Model with enough observations that Exec and Comm
// both return non-trivial, device-dependent values.
func trainedModel(t *testing.T, c *device.Cluster) *Model {
	t.Helper()
	m := NewModel(c)
	m.Comp.Observe("mm", 0, 10*time.Millisecond)
	m.Comp.Observe("mm", 1, 14*time.Millisecond)
	m.Comp.Observe("relu", 0, 2*time.Millisecond)
	for from := 0; from < c.NumDevices(); from++ {
		for to := 0; to < c.NumDevices(); to++ {
			if from == to {
				continue
			}
			lat := time.Duration(10*(from+1)) * time.Microsecond
			observeLine(m.Link, from, to, lat, 12e9, []int64{1 << 12, 1 << 18, 1 << 22})
		}
	}
	return m
}

func TestFillExecRowMatchesEstimator(t *testing.T) {
	c := twoServerCluster(t)
	est := trainedModel(t, c)
	devs := c.Devices()
	for _, op := range []*graph.Op{
		{Name: "mm", Kind: graph.KindMatMul},
		{Name: "relu", Kind: graph.KindRelu},
		{Name: "never_seen", Kind: graph.KindConv2D},
	} {
		row := make([]time.Duration, len(devs))
		FillExecRow(row, est, op, devs)
		for d, dev := range devs {
			if want := est.Exec(op, dev); row[d] != want {
				t.Errorf("op %q device %d: row %v, want Exec %v", op.Name, d, row[d], want)
			}
		}
	}
}

func TestFillCommGridMatchesEstimator(t *testing.T) {
	c := twoServerCluster(t)
	est := trainedModel(t, c)
	devs := c.Devices()
	n := len(devs)
	for _, bytes := range []int64{0, 1 << 10, 1 << 20, 3 << 22} {
		grid := make([]time.Duration, n*n)
		FillCommGrid(grid, est, bytes, devs)
		for f, from := range devs {
			for to := 0; to < n; to++ {
				got := grid[f*n+to]
				if f == to {
					if got != 0 {
						t.Errorf("bytes=%d: diagonal (%d,%d) = %v, want 0", bytes, f, to, got)
					}
					continue
				}
				if want := est.Comm(bytes, from, devs[to]); got != want {
					t.Errorf("bytes=%d: (%d,%d) = %v, want Comm %v", bytes, f, to, got, want)
				}
			}
		}
	}
}

// sameDevLiar claims nonzero same-device transfer cost; FillCommGrid must
// write the diagonal as zero without consulting it (Estimator contract).
type sameDevLiar struct{}

func (sameDevLiar) Exec(*graph.Op, *device.Device) time.Duration             { return time.Millisecond }
func (sameDevLiar) Comm(int64, *device.Device, *device.Device) time.Duration { return time.Second }

func TestFillCommGridZeroDiagonalWithoutEstimator(t *testing.T) {
	c := twoServerCluster(t)
	devs := c.Devices()
	n := len(devs)
	grid := make([]time.Duration, n*n)
	FillCommGrid(grid, sameDevLiar{}, 1<<20, devs)
	for d := 0; d < n; d++ {
		if grid[d*n+d] != 0 {
			t.Errorf("diagonal (%d,%d) = %v, want 0 regardless of estimator", d, d, grid[d*n+d])
		}
	}
	if grid[0*n+1] != time.Second {
		t.Errorf("off-diagonal = %v, want the estimator's value", grid[0*n+1])
	}
}

func TestIsFrozen(t *testing.T) {
	c := twoServerCluster(t)
	m := trainedModel(t, c)
	if IsFrozen(m) {
		t.Error("mutable Model reported frozen; cached tables would mask later observations")
	}
	if !IsFrozen(m.EstimatorSnapshot()) {
		t.Error("EstimatorSnapshot not frozen")
	}
	if !IsFrozen(kernels.NewDefaultOracle(c)) {
		t.Error("kernels.Oracle not frozen")
	}
}

// TestSnapshotTableSurvivesLaterObservations pins the reason IsFrozen gates
// lattice caching: a table filled from a snapshot must keep predicting the
// frozen values even after the live model keeps learning.
func TestSnapshotTableSurvivesLaterObservations(t *testing.T) {
	c := twoServerCluster(t)
	m := trainedModel(t, c)
	snap := m.EstimatorSnapshot()
	op := &graph.Op{Name: "mm", Kind: graph.KindMatMul}
	devs := c.Devices()

	frozen := make([]time.Duration, len(devs))
	FillExecRow(frozen, snap, op, devs)

	m.Comp.Observe("mm", 0, 500*time.Millisecond) // live model moves on

	again := make([]time.Duration, len(devs))
	FillExecRow(again, snap, op, devs)
	for d := range devs {
		if frozen[d] != again[d] {
			t.Fatalf("device %d: snapshot drifted from %v to %v", d, frozen[d], again[d])
		}
	}
	if live := m.Exec(op, c.Device(0)); live == frozen[0] {
		t.Fatal("live model did not move; test exercises nothing")
	}
}
