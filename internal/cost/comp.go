package cost

import (
	"math"
	"sort"
	"sync"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// compKey identifies a computation cost entry: the paper keys the model on
// "the operation's name and device".
type compKey struct {
	name string
	dev  int
}

// classKey identifies a per-device-class aggregate: observations pooled
// across all devices of one class, so a profile learned on one V100
// transfers to every other V100 — including one that joins the cluster
// later.
type classKey struct {
	name  string
	class string
}

// CompModel is the computation cost model. It records observed execution
// times per (operation name, device) and answers lookups for the scheduler.
// Missing entries read as zero, which — per the paper — biases the
// scheduler toward exploring unprofiled placements so the profiler can fill
// them in on subsequent steps.
//
// Four estimation fallbacks keep the white-box heuristics effective before
// full coverage:
//
//   - same-class: a time observed on any device of the same class
//     approximates the time on all of them (a profile transfers across
//     V100s but not from a V100 to a T4);
//   - cross-class scaled: absent same-class data, a time observed on another
//     class scaled by the peak-throughput ratio — a T4 runs a V100-profiled
//     op roughly peakV100/peakT4 slower. This is what lets the scheduler
//     exploit a freshly joined faster device before it has been profiled.
//     On single-class clusters the tier never fires;
//   - cross-device: a time observed on any device at all, unscaled — the
//     only cross-device fallback the model had when clusters were uniformly
//     V100;
//   - split scaling: a sub-operation produced by SplitOperation is
//     estimated from its parent's observed time scaled sublinearly (small
//     kernels run at lower utilization, so 1/n of the work takes more than
//     1/n of the time).
//
// CompModel is safe for concurrent use.
type CompModel struct {
	mu     sync.RWMutex
	stats  map[compKey]*runningStat
	byName map[string]*runningStat // any-device aggregate per op name
	// byClass pools observations across same-class devices. devClass maps
	// device ID -> class name for the cluster the model was built for; nil
	// (the class-less constructor) disables the class tier entirely.
	byClass  map[classKey]*runningStat
	devClass []string
	// classFLOPS maps class name -> peak FLOPS and classNames lists the
	// cluster's classes sorted, fixing the probe order of the cross-class
	// scaled fallback.
	classFLOPS map[string]float64
	classNames []string
	// SplitExponent controls the sublinear split-scaling fallback: a 1/n
	// partition is estimated at parent * n^-SplitExponent.
	splitExponent float64
}

// NewCompModel returns an empty computation cost model with no device-class
// information (every device is its own anonymous class and only the
// any-device fallback applies). Prefer NewCompModelFor.
func NewCompModel() *CompModel {
	return &CompModel{
		stats:         make(map[compKey]*runningStat),
		byName:        make(map[string]*runningStat),
		byClass:       make(map[classKey]*runningStat),
		splitExponent: 0.85,
	}
}

// NewCompModelFor returns an empty computation cost model keyed to the
// cluster's device classes.
func NewCompModelFor(cluster *device.Cluster) *CompModel {
	m := NewCompModel()
	m.devClass = deviceClasses(cluster)
	m.classFLOPS = make(map[string]float64)
	for _, d := range cluster.Devices() {
		if _, ok := m.classFLOPS[d.ClassName()]; !ok {
			m.classFLOPS[d.ClassName()] = d.PeakFLOPS
			m.classNames = append(m.classNames, d.ClassName())
		}
	}
	sort.Strings(m.classNames)
	return m
}

// deviceClasses snapshots the cluster's device ID -> class-name mapping.
func deviceClasses(cluster *device.Cluster) []string {
	classes := make([]string, cluster.NumDevices())
	for _, d := range cluster.Devices() {
		classes[d.ID] = d.ClassName()
	}
	return classes
}

// classOf returns the class label of a device ID, or "" when unknown.
func (m *CompModel) classOf(dev int) string {
	if dev < 0 || dev >= len(m.devClass) {
		return ""
	}
	return m.devClass[dev]
}

// Observe records an execution of the named op on device dev.
func (m *CompModel) Observe(name string, dev int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := compKey{name: name, dev: dev}
	s, ok := m.stats[k]
	if !ok {
		s = &runningStat{}
		m.stats[k] = s
	}
	s.add(float64(d))
	if class := m.classOf(dev); class != "" {
		ck := classKey{name: name, class: class}
		cs, ok := m.byClass[ck]
		if !ok {
			cs = &runningStat{}
			m.byClass[ck] = cs
		}
		cs.add(float64(d))
	}
	agg, ok := m.byName[name]
	if !ok {
		agg = &runningStat{}
		m.byName[name] = agg
	}
	agg.add(float64(d))
}

// Lookup returns the mean observed time for (name, dev) and whether any
// observation exists for that exact key.
func (m *CompModel) Lookup(name string, dev int) (time.Duration, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.stats[compKey{name: name, dev: dev}]
	if !ok {
		return 0, false
	}
	return time.Duration(s.mean), true
}

// Exec implements the estimator contract: exact key, then same-class
// fallback, then cross-device fallback, then split-scaling fallback, then
// zero (explore).
func (m *CompModel) Exec(op *graph.Op, dev *device.Device) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.execLocked(op, dev.ID)
}

func (m *CompModel) execLocked(op *graph.Op, dev int) time.Duration {
	if s, ok := m.stats[compKey{name: op.Name, dev: dev}]; ok {
		return time.Duration(s.mean)
	}
	class := m.classOf(dev)
	if class != "" {
		if s, ok := m.byClass[classKey{name: op.Name, class: class}]; ok {
			return time.Duration(s.mean)
		}
		if t, ok := m.crossClassLocked(op.Name, class, 1); ok {
			return t
		}
	}
	if s, ok := m.byName[op.Name]; ok {
		return time.Duration(s.mean)
	}
	if op.SplitOf != "" && op.SplitN > 1 {
		scale := math.Pow(float64(op.SplitN), -m.splitExponent)
		if class != "" {
			if s, ok := m.byClass[classKey{name: op.SplitOf, class: class}]; ok {
				return time.Duration(s.mean * scale)
			}
			if t, ok := m.crossClassLocked(op.SplitOf, class, scale); ok {
				return t
			}
		}
		if s, ok := m.byName[op.SplitOf]; ok {
			return time.Duration(s.mean * scale)
		}
	}
	return 0
}

// crossClassLocked estimates op name on a device of class from another
// class's pooled observations, scaled by the peak-throughput ratio. Classes
// are probed in sorted-name order so the estimate is deterministic when
// several have data. Single-class clusters never reach here with a hit.
func (m *CompModel) crossClassLocked(name, class string, scale float64) (time.Duration, bool) {
	own := m.classFLOPS[class]
	if own <= 0 {
		return 0, false
	}
	for _, other := range m.classNames {
		if other == class {
			continue
		}
		s, ok := m.byClass[classKey{name: name, class: other}]
		if !ok {
			continue
		}
		if ref := m.classFLOPS[other]; ref > 0 {
			return time.Duration(s.mean * scale * ref / own), true
		}
	}
	return 0, false
}

// CompSnapshot is an immutable view of a CompModel: the per-(name, device),
// per-(name, class) and per-name means frozen at snapshot time. Worker
// goroutines of the parallel strategy calculator read it lock-free while
// concurrent Observe calls keep mutating the live model.
type CompSnapshot struct {
	exact         map[compKey]time.Duration
	byClass       map[classKey]time.Duration
	byName        map[string]time.Duration
	devClass      []string
	classFLOPS    map[string]float64
	classNames    []string
	splitExponent float64
}

// Snapshot freezes the model's current means.
func (m *CompModel) Snapshot() *CompSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := &CompSnapshot{
		exact:         make(map[compKey]time.Duration, len(m.stats)),
		byClass:       make(map[classKey]time.Duration, len(m.byClass)),
		byName:        make(map[string]time.Duration, len(m.byName)),
		devClass:      m.devClass,
		classFLOPS:    m.classFLOPS,
		classNames:    m.classNames,
		splitExponent: m.splitExponent,
	}
	for k, st := range m.stats {
		s.exact[k] = time.Duration(st.mean)
	}
	for k, st := range m.byClass {
		s.byClass[k] = time.Duration(st.mean)
	}
	for name, st := range m.byName {
		s.byName[name] = time.Duration(st.mean)
	}
	return s
}

// Exec predicts like CompModel.Exec against the frozen means: exact key,
// then same-class, then cross-class scaled, then cross-device fallback, then
// split-scaling fallback, then zero.
func (s *CompSnapshot) Exec(op *graph.Op, dev *device.Device) time.Duration {
	if t, ok := s.exact[compKey{name: op.Name, dev: dev.ID}]; ok {
		return t
	}
	var class string
	if dev.ID >= 0 && dev.ID < len(s.devClass) {
		class = s.devClass[dev.ID]
	}
	if class != "" {
		if t, ok := s.byClass[classKey{name: op.Name, class: class}]; ok {
			return t
		}
		if t, ok := s.crossClass(op.Name, class, 1); ok {
			return t
		}
	}
	if t, ok := s.byName[op.Name]; ok {
		return t
	}
	if op.SplitOf != "" && op.SplitN > 1 {
		scale := math.Pow(float64(op.SplitN), -s.splitExponent)
		if class != "" {
			if t, ok := s.byClass[classKey{name: op.SplitOf, class: class}]; ok {
				return time.Duration(float64(t) * scale)
			}
			if t, ok := s.crossClass(op.SplitOf, class, scale); ok {
				return t
			}
		}
		if t, ok := s.byName[op.SplitOf]; ok {
			return time.Duration(float64(t) * scale)
		}
	}
	return 0
}

// crossClass mirrors CompModel.crossClassLocked against the frozen means.
func (s *CompSnapshot) crossClass(name, class string, scale float64) (time.Duration, bool) {
	own := s.classFLOPS[class]
	if own <= 0 {
		return 0, false
	}
	for _, other := range s.classNames {
		if other == class {
			continue
		}
		t, ok := s.byClass[classKey{name: name, class: other}]
		if !ok {
			continue
		}
		if ref := s.classFLOPS[other]; ref > 0 {
			return time.Duration(float64(t) * scale * ref / own), true
		}
	}
	return 0, false
}

// MaxExec returns the maximal estimated execution time of op over the
// devices of the cluster — the w_i of the paper's rank computation.
func (m *CompModel) MaxExec(op *graph.Op, c *device.Cluster) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var maxT time.Duration
	for _, d := range c.Devices() {
		if t := m.execLocked(op, d.ID); t > maxT {
			maxT = t
		}
	}
	return maxT
}

// Coverage returns the fraction of the graph's ops that have at least one
// observation on any device.
func (m *CompModel) Coverage(g *graph.Graph) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if g.NumOps() == 0 {
		return 1
	}
	covered := 0
	for _, op := range g.Ops() {
		if _, ok := m.byName[op.Name]; ok {
			covered++
		}
	}
	return float64(covered) / float64(g.NumOps())
}

// Stable reports whether the model has converged: every key with at least
// minSamples observations has a coefficient of variation below maxCV. This
// is the paper's pre-training termination condition ("the average time of
// the same (sub-)operation(s) on the same device(s) does not vary much").
func (m *CompModel) Stable(minSamples int64, maxCV float64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.stats) == 0 {
		return false
	}
	for _, s := range m.stats {
		if s.n < minSamples {
			return false
		}
		if s.cv() > maxCV {
			return false
		}
	}
	return true
}

// NumEntries returns the number of (op, device) keys with observations.
func (m *CompModel) NumEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.stats)
}
