package cost

import (
	"math"
	"sync"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// compKey identifies a computation cost entry: the paper keys the model on
// "the operation's name and device".
type compKey struct {
	name string
	dev  int
}

// CompModel is the computation cost model. It records observed execution
// times per (operation name, device) and answers lookups for the scheduler.
// Missing entries read as zero, which — per the paper — biases the
// scheduler toward exploring unprofiled placements so the profiler can fill
// them in on subsequent steps.
//
// Two estimation fallbacks keep the white-box heuristics effective before
// full coverage:
//
//   - cross-device: with homogeneous GPUs, a time observed on any device
//     approximates the time on all of them;
//   - split scaling: a sub-operation produced by SplitOperation is
//     estimated from its parent's observed time scaled sublinearly (small
//     kernels run at lower utilization, so 1/n of the work takes more than
//     1/n of the time).
//
// CompModel is safe for concurrent use.
type CompModel struct {
	mu     sync.RWMutex
	stats  map[compKey]*runningStat
	byName map[string]*runningStat // any-device aggregate per op name
	// SplitExponent controls the sublinear split-scaling fallback: a 1/n
	// partition is estimated at parent * n^-SplitExponent.
	splitExponent float64
}

// NewCompModel returns an empty computation cost model.
func NewCompModel() *CompModel {
	return &CompModel{
		stats:         make(map[compKey]*runningStat),
		byName:        make(map[string]*runningStat),
		splitExponent: 0.85,
	}
}

// Observe records an execution of the named op on device dev.
func (m *CompModel) Observe(name string, dev int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := compKey{name: name, dev: dev}
	s, ok := m.stats[k]
	if !ok {
		s = &runningStat{}
		m.stats[k] = s
	}
	s.add(float64(d))
	agg, ok := m.byName[name]
	if !ok {
		agg = &runningStat{}
		m.byName[name] = agg
	}
	agg.add(float64(d))
}

// Lookup returns the mean observed time for (name, dev) and whether any
// observation exists for that exact key.
func (m *CompModel) Lookup(name string, dev int) (time.Duration, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.stats[compKey{name: name, dev: dev}]
	if !ok {
		return 0, false
	}
	return time.Duration(s.mean), true
}

// Exec implements the estimator contract: exact key, then cross-device
// fallback, then split-scaling fallback, then zero (explore).
func (m *CompModel) Exec(op *graph.Op, dev *device.Device) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.execLocked(op, dev.ID)
}

func (m *CompModel) execLocked(op *graph.Op, dev int) time.Duration {
	if s, ok := m.stats[compKey{name: op.Name, dev: dev}]; ok {
		return time.Duration(s.mean)
	}
	if s, ok := m.byName[op.Name]; ok {
		return time.Duration(s.mean)
	}
	if op.SplitOf != "" && op.SplitN > 1 {
		if s, ok := m.byName[op.SplitOf]; ok {
			scale := math.Pow(float64(op.SplitN), -m.splitExponent)
			return time.Duration(s.mean * scale)
		}
	}
	return 0
}

// CompSnapshot is an immutable view of a CompModel: the per-(name, device)
// and per-name means frozen at snapshot time. Worker goroutines of the
// parallel strategy calculator read it lock-free while concurrent Observe
// calls keep mutating the live model.
type CompSnapshot struct {
	exact         map[compKey]time.Duration
	byName        map[string]time.Duration
	splitExponent float64
}

// Snapshot freezes the model's current means.
func (m *CompModel) Snapshot() *CompSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := &CompSnapshot{
		exact:         make(map[compKey]time.Duration, len(m.stats)),
		byName:        make(map[string]time.Duration, len(m.byName)),
		splitExponent: m.splitExponent,
	}
	for k, st := range m.stats {
		s.exact[k] = time.Duration(st.mean)
	}
	for name, st := range m.byName {
		s.byName[name] = time.Duration(st.mean)
	}
	return s
}

// Exec predicts like CompModel.Exec against the frozen means: exact key,
// then cross-device fallback, then split-scaling fallback, then zero.
func (s *CompSnapshot) Exec(op *graph.Op, dev *device.Device) time.Duration {
	if t, ok := s.exact[compKey{name: op.Name, dev: dev.ID}]; ok {
		return t
	}
	if t, ok := s.byName[op.Name]; ok {
		return t
	}
	if op.SplitOf != "" && op.SplitN > 1 {
		if t, ok := s.byName[op.SplitOf]; ok {
			scale := math.Pow(float64(op.SplitN), -s.splitExponent)
			return time.Duration(float64(t) * scale)
		}
	}
	return 0
}

// MaxExec returns the maximal estimated execution time of op over the
// devices of the cluster — the w_i of the paper's rank computation.
func (m *CompModel) MaxExec(op *graph.Op, c *device.Cluster) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var maxT time.Duration
	for _, d := range c.Devices() {
		if t := m.execLocked(op, d.ID); t > maxT {
			maxT = t
		}
	}
	return maxT
}

// Coverage returns the fraction of the graph's ops that have at least one
// observation on any device.
func (m *CompModel) Coverage(g *graph.Graph) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if g.NumOps() == 0 {
		return 1
	}
	covered := 0
	for _, op := range g.Ops() {
		if _, ok := m.byName[op.Name]; ok {
			covered++
		}
	}
	return float64(covered) / float64(g.NumOps())
}

// Stable reports whether the model has converged: every key with at least
// minSamples observations has a coefficient of variation below maxCV. This
// is the paper's pre-training termination condition ("the average time of
// the same (sub-)operation(s) on the same device(s) does not vary much").
func (m *CompModel) Stable(minSamples int64, maxCV float64) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.stats) == 0 {
		return false
	}
	for _, s := range m.stats {
		if s.n < minSamples {
			return false
		}
		if s.cv() > maxCV {
			return false
		}
	}
	return true
}

// NumEntries returns the number of (op, device) keys with observations.
func (m *CompModel) NumEntries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.stats)
}
