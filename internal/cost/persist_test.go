package cost

import (
	"strings"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

func TestPersistRoundTrip(t *testing.T) {
	c := twoServerCluster(t)
	m := NewModel(c)
	m.Comp.Observe("conv1", 0, 10*time.Millisecond)
	m.Comp.Observe("conv1", 0, 14*time.Millisecond)
	m.Comp.Observe("fc6", 1, 3*time.Millisecond)
	observeLine(m.Link, 0, 1, 10*time.Microsecond, 20e9, []int64{1 << 16, 1 << 20})

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	restored := NewModel(c)
	if err := restored.ReadJSON(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	got, ok := restored.Comp.Lookup("conv1", 0)
	if !ok || got != 12*time.Millisecond {
		t.Errorf("restored conv1 = %v (ok=%v), want 12ms", got, ok)
	}
	op := &graph.Op{Name: "fc6", Kind: graph.KindMatMul}
	if got := restored.Exec(op, c.Device(1)); got != 3*time.Millisecond {
		t.Errorf("restored fc6 = %v, want 3ms", got)
	}
	// The fitted comm line survives.
	orig := m.Comm(1<<20, c.Device(0), c.Device(1))
	back := restored.Comm(1<<20, c.Device(0), c.Device(1))
	if orig != back {
		t.Errorf("restored comm = %v, want %v", back, orig)
	}
	// Class fallback is rebuilt too.
	if restored.Comm(1<<20, c.Device(1), c.Device(0)) == 0 {
		t.Error("intra-server class fallback not rebuilt after load")
	}
}

func TestPersistMergeCombinesObservations(t *testing.T) {
	c := twoServerCluster(t)
	a := NewModel(c)
	a.Comp.Observe("op", 0, 10*time.Millisecond)
	var sb strings.Builder
	if err := a.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	b := NewModel(c)
	b.Comp.Observe("op", 0, 30*time.Millisecond)
	if err := b.ReadJSON(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	got, ok := b.Comp.Lookup("op", 0)
	if !ok || got != 20*time.Millisecond {
		t.Errorf("merged mean = %v (ok=%v), want 20ms", got, ok)
	}
}

func TestPersistRejectsForeignDevices(t *testing.T) {
	big := twoServerCluster(t) // 4 devices
	m := NewModel(big)
	observeLine(m.Link, 0, 3, 10*time.Microsecond, 3e9, []int64{1 << 16, 1 << 20})
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	small, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	restored := NewModel(small)
	if err := restored.ReadJSON(strings.NewReader(sb.String())); err == nil {
		t.Error("accepted comm entries for devices outside the cluster")
	}
}

func TestPersistRejectsGarbage(t *testing.T) {
	c := twoServerCluster(t)
	m := NewModel(c)
	if err := m.ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("accepted malformed JSON")
	}
}

func TestMergeStatVarianceExact(t *testing.T) {
	// Merging two halves must equal observing the full series.
	series := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var full, left, right runningStat
	for i, x := range series {
		full.add(x)
		if i < 4 {
			left.add(x)
		} else {
			right.add(x)
		}
	}
	mergeStat(&left, right.n, right.mean, right.m2)
	if left.n != full.n || !close(left.mean, full.mean) || !close(left.m2, full.m2) {
		t.Errorf("merged = {%d %v %v}, want {%d %v %v}",
			left.n, left.mean, left.m2, full.n, full.mean, full.m2)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestPersistWriteDeterministic(t *testing.T) {
	// WriteJSON output is hashed as strategy-artifact provenance, so the
	// same learned state must serialize to the same bytes on every call
	// regardless of map iteration order.
	c := twoServerCluster(t)
	m := NewModel(c)
	for i, name := range []string{"zeta", "alpha", "mid", "conv", "pool"} {
		m.Comp.Observe(name, i%c.NumDevices(), time.Duration(i+1)*time.Millisecond)
		m.Comp.Observe(name, (i+1)%c.NumDevices(), time.Duration(i+2)*time.Millisecond)
	}
	for from := 0; from < c.NumDevices(); from++ {
		for to := 0; to < c.NumDevices(); to++ {
			if from != to {
				observeLine(m.Link, from, to, 10*time.Microsecond, 20e9, []int64{1 << 16, 1 << 20})
			}
		}
	}
	var first strings.Builder
	if err := m.WriteJSON(&first); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for i := 0; i < 20; i++ {
		var again strings.Builder
		if err := m.WriteJSON(&again); err != nil {
			t.Fatalf("WriteJSON #%d: %v", i, err)
		}
		if again.String() != first.String() {
			t.Fatalf("WriteJSON not deterministic on call %d:\n%s\nvs\n%s",
				i, again.String(), first.String())
		}
	}
}
