package cost

import (
	"sync"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

func snapCluster(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

// TestCompSnapshotMatchesModel walks the full fallback chain — exact key,
// cross-device, split scaling, unknown — and requires the frozen snapshot
// to predict exactly what the live model does.
func TestCompSnapshotMatchesModel(t *testing.T) {
	c := snapCluster(t)
	m := NewCompModel()
	m.Observe("conv1", 0, 10*time.Millisecond)
	m.Observe("conv1", 0, 12*time.Millisecond)
	m.Observe("fc6", 1, 4*time.Millisecond)

	ops := []*graph.Op{
		{Name: "conv1"}, // exact on dev 0, byName on dev 1
		{Name: "fc6"},   // byName on dev 0
		{Name: "conv1/part0_of2", SplitOf: "conv1", SplitN: 2}, // split scaling
		{Name: "never-seen"}, // zero (explore)
	}
	s := m.Snapshot()
	for _, op := range ops {
		for _, d := range c.Devices() {
			want := m.Exec(op, d)
			if got := s.Exec(op, d); got != want {
				t.Errorf("Exec(%s, dev %d): snapshot %v, model %v", op.Name, d.ID, got, want)
			}
		}
	}
	if got := s.Exec(ops[3], c.Device(0)); got != 0 {
		t.Errorf("unknown op reads %v, want 0", got)
	}

	// Later observations must not leak into the frozen snapshot.
	before := s.Exec(ops[0], c.Device(0))
	m.Observe("conv1", 0, time.Second)
	if got := s.Exec(ops[0], c.Device(0)); got != before {
		t.Errorf("snapshot changed after Observe: %v -> %v", before, got)
	}
}

// TestCommSnapshotMatchesModel covers per-pair fits, the class fallback,
// the unknown-class zero, and same-device transfers.
func TestCommSnapshotMatchesModel(t *testing.T) {
	c := snapCluster(t)
	m := NewCommModel(c)
	m.Observe(0, 1, 1<<20, 2*time.Millisecond)
	m.Observe(0, 1, 2<<20, 4*time.Millisecond)
	// Pair 1->0 has no traffic: falls back to the same-server class.

	s := m.Snapshot()
	for _, bytes := range []int64{0, 1 << 10, 1 << 20, 8 << 20} {
		for _, from := range c.Devices() {
			for _, to := range c.Devices() {
				want := m.Comm(bytes, from, to)
				if got := s.Comm(bytes, from, to); got != want {
					t.Errorf("Comm(%d, %d->%d): snapshot %v, model %v",
						bytes, from.ID, to.ID, got, want)
				}
			}
		}
	}
	if got := s.Comm(1<<20, c.Device(0), c.Device(0)); got != 0 {
		t.Errorf("same-device transfer reads %v, want 0", got)
	}
}

func TestCommSnapshotEmptyModelReadsZero(t *testing.T) {
	c := snapCluster(t)
	s := NewCommModel(c).Snapshot()
	if got := s.Comm(1<<20, c.Device(0), c.Device(1)); got != 0 {
		t.Errorf("empty model snapshot reads %v, want 0", got)
	}
}

// TestReadSnapshot pins the Snapshotter plumbing: a learned Model freezes,
// anything else (here a frozen snapshot itself) passes through unchanged.
func TestReadSnapshot(t *testing.T) {
	c := snapCluster(t)
	m := NewModel(c)
	snap := ReadSnapshot(m)
	if _, ok := snap.(*EstimatorSnapshot); !ok {
		t.Fatalf("ReadSnapshot(Model) = %T, want *EstimatorSnapshot", snap)
	}
	if again := ReadSnapshot(snap); again != snap {
		t.Fatal("snapshot of a snapshot must be the identity")
	}
}

// TestSnapshotConcurrentWithObserve drives concurrent writers against
// snapshot-taking readers; the race detector is the assertion.
func TestSnapshotConcurrentWithObserve(t *testing.T) {
	c := snapCluster(t)
	m := NewModel(c)
	op := &graph.Op{Name: "conv1"}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Comp.Observe("conv1", seed%2, time.Duration(i)*time.Microsecond)
				m.Link.Observe(0, 1, int64(i+1)<<10, time.Duration(i+1)*time.Microsecond)
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := ReadSnapshot(m)
				_ = s.Exec(op, c.Device(0))
				_ = s.Comm(1<<20, c.Device(0), c.Device(1))
			}
		}()
	}
	wg.Wait()
}
