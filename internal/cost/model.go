package cost

import (
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// Model bundles the computation and communication cost models into the
// Estimator the scheduling algorithms consume — the "cost models" component
// of the FastT architecture (Fig. 1).
type Model struct {
	Comp *CompModel
	Link *CommModel
}

var _ Estimator = (*Model)(nil)

// NewModel returns empty cost models for the cluster.
func NewModel(cluster *device.Cluster) *Model {
	return &Model{
		Comp: NewCompModel(),
		Link: NewCommModel(cluster),
	}
}

// Exec predicts the run time of op on dev.
func (m *Model) Exec(op *graph.Op, dev *device.Device) time.Duration {
	return m.Comp.Exec(op, dev)
}

// Comm predicts the transfer time between devices.
func (m *Model) Comm(bytes int64, from, to *device.Device) time.Duration {
	return m.Link.Comm(bytes, from, to)
}
