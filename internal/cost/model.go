package cost

import (
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// Model bundles the computation and communication cost models into the
// Estimator the scheduling algorithms consume — the "cost models" component
// of the FastT architecture (Fig. 1).
type Model struct {
	Comp *CompModel
	Link *CommModel
}

var _ Estimator = (*Model)(nil)

// NewModel returns empty cost models for the cluster.
func NewModel(cluster *device.Cluster) *Model {
	return &Model{
		Comp: NewCompModelFor(cluster),
		Link: NewCommModel(cluster),
	}
}

// Exec predicts the run time of op on dev.
func (m *Model) Exec(op *graph.Op, dev *device.Device) time.Duration {
	return m.Comp.Exec(op, dev)
}

// Comm predicts the transfer time between devices.
func (m *Model) Comm(bytes int64, from, to *device.Device) time.Duration {
	return m.Link.Comm(bytes, from, to)
}

// EstimatorSnapshot is an immutable Estimator frozen from a Model: both
// sub-model snapshots taken together so a whole strategy calculation reads
// one consistent, lock-free view of the cost models.
type EstimatorSnapshot struct {
	Comp *CompSnapshot
	Link *CommSnapshot
}

var _ Estimator = (*EstimatorSnapshot)(nil)

// Exec predicts the run time of op on dev from the frozen computation model.
func (s *EstimatorSnapshot) Exec(op *graph.Op, dev *device.Device) time.Duration {
	return s.Comp.Exec(op, dev)
}

// Comm predicts the transfer time from the frozen communication model.
func (s *EstimatorSnapshot) Comm(bytes int64, from, to *device.Device) time.Duration {
	return s.Link.Comm(bytes, from, to)
}

// EstimatorSnapshot freezes both cost models into one immutable Estimator.
func (m *Model) EstimatorSnapshot() *EstimatorSnapshot {
	return &EstimatorSnapshot{
		Comp: m.Comp.Snapshot(),
		Link: m.Link.Snapshot(),
	}
}

// Snapshotter is implemented by estimators that can freeze an immutable
// read view of themselves (the learned Model; not the stateless Oracle,
// which is already safe for concurrent readers).
type Snapshotter interface {
	ReadSnapshot() Estimator
}

// ReadSnapshot returns an Estimator safe for lock-free concurrent reads: the
// frozen snapshot if est supports one, otherwise est itself. Strategy
// calculators call this once per calculation before fanning work out to
// worker goroutines.
func ReadSnapshot(est Estimator) Estimator {
	if s, ok := est.(Snapshotter); ok {
		return s.ReadSnapshot()
	}
	return est
}

// ReadSnapshot implements Snapshotter.
func (m *Model) ReadSnapshot() Estimator { return m.EstimatorSnapshot() }
