package cost

import "fastt/internal/device"

// RemapDevices returns a new model for a shrunk cluster, carrying over every
// observation that survives a device loss. oldToNew maps old device IDs to
// new ones, with -1 marking removed devices — the mapping Cluster.Without
// returns. Computation entries on a removed device and communication pairs
// touching it are dropped; everything else is renumbered. The per-name and
// link-class aggregates are rebuilt from the surviving entries only, so the
// dead device's timings stop influencing fallback estimates after recovery.
func (m *Model) RemapDevices(cluster *device.Cluster, oldToNew []int) *Model {
	next := NewModel(cluster)
	m.Comp.remapInto(next.Comp, oldToNew)
	m.Link.remapInto(next.Link, oldToNew)
	return next
}

func (m *CompModel) remapInto(dst *CompModel, oldToNew []int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	dst.splitExponent = m.splitExponent
	for k, s := range m.stats {
		if k.dev < 0 || k.dev >= len(oldToNew) || oldToNew[k.dev] < 0 {
			continue
		}
		nk := compKey{name: k.name, dev: oldToNew[k.dev]}
		cp := *s
		dst.stats[nk] = &cp
		if class := dst.classOf(nk.dev); class != "" {
			ck := classKey{name: k.name, class: class}
			cs, ok := dst.byClass[ck]
			if !ok {
				cs = &runningStat{}
				dst.byClass[ck] = cs
			}
			mergeStat(cs, s.n, s.mean, s.m2)
		}
		agg, ok := dst.byName[k.name]
		if !ok {
			agg = &runningStat{}
			dst.byName[k.name] = agg
		}
		mergeStat(agg, s.n, s.mean, s.m2)
	}
}

func (m *CommModel) remapInto(dst *CommModel, oldToNew []int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for k, acc := range m.pairs {
		if k.from < 0 || k.from >= len(oldToNew) || oldToNew[k.from] < 0 {
			continue
		}
		if k.to < 0 || k.to >= len(oldToNew) || oldToNew[k.to] < 0 {
			continue
		}
		nk := pairKey{from: oldToNew[k.from], to: oldToNew[k.to]}
		cp := *acc
		dst.pairs[nk] = &cp
		mergeOLSAcc(dst.classes[dst.classOf(nk.from, nk.to)], &cp)
	}
}

// mergeOLSAcc folds src's accumulated sums into dst — exact for the sums the
// fit uses; the first-observation bookkeeping keeps dst's values, which only
// matters for degenerate single-size fits.
func mergeOLSAcc(dst, src *olsAccumulator) {
	if src.n == 0 {
		return
	}
	if dst.n == 0 {
		*dst = *src
		return
	}
	if src.minX < dst.minX {
		dst.minX = src.minX
	}
	if src.maxX > dst.maxX {
		dst.maxX = src.maxX
	}
	dst.n += src.n
	dst.sumX += src.sumX
	dst.sumY += src.sumY
	dst.sumXX += src.sumXX
	dst.sumXY += src.sumXY
}
