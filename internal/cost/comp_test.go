package cost

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

func twoGPUs(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

func TestCompModelObserveLookup(t *testing.T) {
	m := NewCompModel()
	m.Observe("conv1", 0, 10*time.Millisecond)
	m.Observe("conv1", 0, 20*time.Millisecond)
	got, ok := m.Lookup("conv1", 0)
	if !ok {
		t.Fatal("Lookup missed after Observe")
	}
	if got != 15*time.Millisecond {
		t.Errorf("Lookup mean = %v, want 15ms", got)
	}
	if _, ok := m.Lookup("conv1", 1); ok {
		t.Error("Lookup hit for unobserved device")
	}
	if _, ok := m.Lookup("conv2", 0); ok {
		t.Error("Lookup hit for unobserved op")
	}
}

func TestCompModelMissingReadsZero(t *testing.T) {
	c := twoGPUs(t)
	m := NewCompModel()
	op := &graph.Op{Name: "never_seen", Kind: graph.KindConv2D}
	if got := m.Exec(op, c.Device(0)); got != 0 {
		t.Errorf("Exec of unobserved op = %v, want 0 (explore)", got)
	}
}

func TestCompModelCrossDeviceFallback(t *testing.T) {
	c := twoGPUs(t)
	m := NewCompModel()
	m.Observe("conv1", 0, 10*time.Millisecond)
	op := &graph.Op{Name: "conv1", Kind: graph.KindConv2D}
	if got := m.Exec(op, c.Device(1)); got != 10*time.Millisecond {
		t.Errorf("cross-device Exec = %v, want 10ms", got)
	}
}

func TestCompModelSplitScalingFallback(t *testing.T) {
	c := twoGPUs(t)
	m := NewCompModel()
	m.Observe("conv1", 0, 100*time.Millisecond)
	sub := &graph.Op{
		Name: "conv1/part0_of4", Kind: graph.KindConv2D,
		SplitOf: "conv1", SplitN: 4,
	}
	got := m.Exec(sub, c.Device(1))
	// Sublinear scaling: strictly more than 1/4 of the parent, strictly
	// less than the whole parent.
	if got <= 25*time.Millisecond || got >= 100*time.Millisecond {
		t.Errorf("split-scaled Exec = %v, want in (25ms, 100ms)", got)
	}
}

func TestCompModelExactKeyBeatsFallbacks(t *testing.T) {
	c := twoGPUs(t)
	m := NewCompModel()
	m.Observe("conv1", 0, 10*time.Millisecond)
	m.Observe("conv1", 1, 30*time.Millisecond)
	op := &graph.Op{Name: "conv1", Kind: graph.KindConv2D}
	if got := m.Exec(op, c.Device(1)); got != 30*time.Millisecond {
		t.Errorf("Exec = %v, want exact key 30ms", got)
	}
}

func TestCompModelMaxExec(t *testing.T) {
	c := twoGPUs(t)
	m := NewCompModel()
	m.Observe("conv1", 0, 10*time.Millisecond)
	m.Observe("conv1", 1, 30*time.Millisecond)
	op := &graph.Op{Name: "conv1", Kind: graph.KindConv2D}
	if got := m.MaxExec(op, c); got != 30*time.Millisecond {
		t.Errorf("MaxExec = %v, want 30ms", got)
	}
}

func TestCompModelStable(t *testing.T) {
	m := NewCompModel()
	if m.Stable(2, 0.1) {
		t.Error("empty model reported stable")
	}
	m.Observe("a", 0, 10*time.Millisecond)
	if m.Stable(2, 0.1) {
		t.Error("single-sample model reported stable")
	}
	m.Observe("a", 0, 10*time.Millisecond)
	if !m.Stable(2, 0.1) {
		t.Error("identical samples not reported stable")
	}
	// A wildly varying key breaks stability.
	m.Observe("b", 0, 1*time.Millisecond)
	m.Observe("b", 0, 100*time.Millisecond)
	if m.Stable(2, 0.1) {
		t.Error("high-variance model reported stable")
	}
}

func TestCompModelCoverage(t *testing.T) {
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindRelu})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindRelu})
	g.MustConnect(a, b, 1)
	m := NewCompModel()
	if got := m.Coverage(g); got != 0 {
		t.Errorf("empty coverage = %v, want 0", got)
	}
	m.Observe("a", 0, time.Millisecond)
	if got := m.Coverage(g); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	m.Observe("b", 1, time.Millisecond)
	if got := m.Coverage(g); got != 1 {
		t.Errorf("coverage = %v, want 1", got)
	}
}

func TestRunningStatWelford(t *testing.T) {
	var s runningStat
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.add(x)
	}
	if s.mean != 5 {
		t.Errorf("mean = %v, want 5", s.mean)
	}
	// Sample variance of this classic dataset is 32/7.
	if got, want := s.variance(), 32.0/7.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("variance = %v, want %v", got, want)
	}
}
