// Package cost implements FastT's adaptive cost models (Sec. 4 of the
// paper): a computation cost model keyed by (operation name, device) and a
// communication cost model that fits a linear regression of transfer time
// against tensor size per source→destination device pair. Both are filled
// online from profiler observations and expose the estimator interface the
// scheduling algorithms consume.
package cost

import (
	"math"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// Estimator predicts operation execution and tensor transfer times. It is
// implemented by the learned Model of this package and by the ground-truth
// kernels.Oracle, so scheduling algorithms can run against either.
type Estimator interface {
	// Exec predicts the run time of op on dev.
	Exec(op *graph.Op, dev *device.Device) time.Duration
	// Comm predicts the transfer time of a tensor of the given size from
	// one device to another. Same-device transfers cost zero.
	Comm(bytes int64, from, to *device.Device) time.Duration
}

// runningStat accumulates mean and variance incrementally (Welford).
type runningStat struct {
	n    int64
	mean float64
	m2   float64
}

func (s *runningStat) add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

func (s *runningStat) variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// cv returns the coefficient of variation (stddev/mean), or 0 for fewer
// than two samples or a zero mean.
func (s *runningStat) cv() float64 {
	if s.n < 2 || s.mean == 0 {
		return 0
	}
	v := s.variance()
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v) / s.mean
}
