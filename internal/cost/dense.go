package cost

import (
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// Frozen is implemented by estimators whose predictions can never change
// for the lifetime of the value: the snapshot types of this package and the
// stateless kernels.Oracle. Schedulers use it to decide whether a dense
// cost table resolved from the estimator may be cached and reused across
// calls — a mutable learned Model must never be frozen into a cached table,
// or observations made after the table was built would be ignored.
type Frozen interface {
	Estimator
	// FrozenEstimator is a marker; it must only be provided by types whose
	// Exec/Comm results are immutable.
	FrozenEstimator()
}

// IsFrozen reports whether est guarantees immutable predictions.
func IsFrozen(est Estimator) bool {
	_, ok := est.(Frozen)
	return ok
}

// FrozenEstimator marks the snapshot as immutable: both sub-model
// snapshots are frozen at construction.
func (s *EstimatorSnapshot) FrozenEstimator() {}

// FillExecRow resolves op's execution time on every device into dst, which
// must have len(devs) entries: dst[d] = est.Exec(op, devs[d]). This is the
// dense-table export used by the schedulers' cost lattice, so the estimator
// interface is crossed once per (op, device) per lattice build instead of
// once per inner-loop probe.
func FillExecRow(dst []time.Duration, est Estimator, op *graph.Op, devs []*device.Device) {
	for d, dev := range devs {
		dst[d] = est.Exec(op, dev)
	}
}

// FillCommGrid resolves the transfer time of a tensor of the given size
// over every ordered device pair into dst, which must have len(devs)^2
// entries laid out row-major: dst[from*len(devs)+to] = est.Comm(bytes,
// devs[from], devs[to]). Same-device entries are written as zero without
// consulting the estimator, matching the Estimator contract.
func FillCommGrid(dst []time.Duration, est Estimator, bytes int64, devs []*device.Device) {
	n := len(devs)
	for f, from := range devs {
		row := dst[f*n : (f+1)*n]
		for t, to := range devs {
			if f == t {
				row[t] = 0
				continue
			}
			row[t] = est.Comm(bytes, from, to)
		}
	}
}
