package cost

import (
	"sync"
	"time"

	"fastt/internal/device"
)

// LinearModel is a fitted tensor-size → transfer-time line: predicted
// seconds = Intercept + Slope * bytes. The intercept captures link latency
// and the slope the inverse bandwidth, including "available bandwidth and
// potential congestion along each device-device path" (Sec. 4).
type LinearModel struct {
	Intercept float64 // seconds
	Slope     float64 // seconds per byte
	N         int64   // observations behind the fit
}

// Predict returns the predicted transfer time for a tensor of the given
// size, clamped at zero.
func (l LinearModel) Predict(bytes int64) time.Duration {
	sec := l.Intercept + l.Slope*float64(bytes)
	if sec < 0 {
		sec = 0
	}
	return time.Duration(sec * float64(time.Second))
}

// olsAccumulator incrementally accumulates the sums needed for ordinary
// least squares on (bytes, seconds) pairs.
type olsAccumulator struct {
	n                  int64
	sumX, sumY         float64
	sumXX, sumXY       float64
	minX, maxX         float64
	firstX, firstYperX float64
}

func (a *olsAccumulator) add(x, y float64) {
	if a.n == 0 {
		a.minX, a.maxX = x, x
		a.firstX = x
		if x > 0 {
			a.firstYperX = y / x
		}
	}
	a.n++
	a.sumX += x
	a.sumY += y
	a.sumXX += x * x
	a.sumXY += x * y
	if x < a.minX {
		a.minX = x
	}
	if x > a.maxX {
		a.maxX = x
	}
}

// fit solves the normal equations. With fewer than two distinct sizes the
// line degenerates to proportional scaling through the observed mean.
func (a *olsAccumulator) fit() LinearModel {
	if a.n == 0 {
		return LinearModel{}
	}
	nf := float64(a.n)
	if a.maxX == a.minX {
		// One distinct size: assume a zero intercept and scale by bytes.
		slope := 0.0
		if a.sumX > 0 {
			slope = a.sumY / a.sumX
		}
		return LinearModel{Slope: slope, N: a.n}
	}
	den := nf*a.sumXX - a.sumX*a.sumX
	slope := (nf*a.sumXY - a.sumX*a.sumY) / den
	intercept := (a.sumY - slope*a.sumX) / nf
	if slope < 0 {
		// Bandwidth cannot be negative; fall back to proportional.
		slope = a.sumY / a.sumX
		intercept = 0
	}
	return LinearModel{Intercept: intercept, Slope: slope, N: a.n}
}

// pairKey identifies an ordered source→destination device pair — the
// paper gathers "tensors across the same source-destination device pairs
// into one group" and fits one linear model per group.
type pairKey struct{ from, to int }

// Link classes for the fallback tier, mirroring the cluster's link tiers.
const (
	linkClassIntraServer = 0 // same server (NVLink or PCIe)
	linkClassSameRack    = 1 // cross server, same rack
	linkClassCrossRack   = 2 // cross rack
	numLinkClasses       = 3
)

// CommModel is the communication cost model: one online least-squares line
// per ordered device pair, with a link-class (intra-server / same-rack /
// cross-rack) fallback for pairs that have not carried traffic yet. Unknown
// classes read as zero so the scheduler explores them, per the paper.
// CommModel is safe for concurrent use.
type CommModel struct {
	mu      sync.RWMutex
	cluster *device.Cluster
	pairs   map[pairKey]*olsAccumulator
	classes [numLinkClasses]*olsAccumulator
}

// NewCommModel returns an empty communication model for the cluster.
func NewCommModel(cluster *device.Cluster) *CommModel {
	return &CommModel{
		cluster: cluster,
		pairs:   make(map[pairKey]*olsAccumulator),
		classes: [numLinkClasses]*olsAccumulator{{}, {}, {}},
	}
}

func (m *CommModel) classOf(from, to int) int {
	return linkClassOf(m.cluster, from, to)
}

func linkClassOf(cluster *device.Cluster, from, to int) int {
	a, b := cluster.Device(from), cluster.Device(to)
	switch {
	case a.Server == b.Server:
		return linkClassIntraServer
	case a.Rack == b.Rack:
		return linkClassSameRack
	default:
		return linkClassCrossRack
	}
}

// Observe records a transfer of `bytes` from one device to another taking
// d. Same-device observations are ignored.
func (m *CommModel) Observe(from, to int, bytes int64, d time.Duration) {
	if from == to {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := pairKey{from: from, to: to}
	acc, ok := m.pairs[k]
	if !ok {
		acc = &olsAccumulator{}
		m.pairs[k] = acc
	}
	x, y := float64(bytes), float64(d)/float64(time.Second)
	acc.add(x, y)
	m.classes[m.classOf(from, to)].add(x, y)
}

// Comm implements the estimator contract: per-pair fit, then link-class
// fallback, then zero (explore).
func (m *CommModel) Comm(bytes int64, from, to *device.Device) time.Duration {
	if from.ID == to.ID {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if acc, ok := m.pairs[pairKey{from: from.ID, to: to.ID}]; ok && acc.n > 0 {
		return acc.fit().Predict(bytes)
	}
	if cls := m.classes[m.classOf(from.ID, to.ID)]; cls.n > 0 {
		return cls.fit().Predict(bytes)
	}
	return 0
}

// MaxComm returns the maximal predicted transfer time of a tensor over all
// ordered device pairs — the c_{i,j} of the paper's rank computation.
func (m *CommModel) MaxComm(bytes int64) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var maxT time.Duration
	for i := range m.cluster.Devices() {
		for j := range m.cluster.Devices() {
			if i == j {
				continue
			}
			t := m.commLocked(bytes, i, j)
			if t > maxT {
				maxT = t
			}
		}
	}
	return maxT
}

func (m *CommModel) commLocked(bytes int64, from, to int) time.Duration {
	if acc, ok := m.pairs[pairKey{from: from, to: to}]; ok && acc.n > 0 {
		return acc.fit().Predict(bytes)
	}
	if cls := m.classes[m.classOf(from, to)]; cls.n > 0 {
		return cls.fit().Predict(bytes)
	}
	return 0
}

// CommSnapshot is an immutable view of a CommModel: every per-pair and
// class-fallback line fitted once at snapshot time. Worker goroutines of the
// parallel strategy calculator read it lock-free while concurrent Observe
// calls keep mutating the live model, and it answers Comm without re-solving
// the normal equations per query.
type CommSnapshot struct {
	cluster *device.Cluster
	pairs   map[pairKey]LinearModel
	classes [numLinkClasses]LinearModel
	classN  [numLinkClasses]int64
}

// Snapshot fits and freezes the model's current state.
func (m *CommModel) Snapshot() *CommSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := &CommSnapshot{
		cluster: m.cluster,
		pairs:   make(map[pairKey]LinearModel, len(m.pairs)),
	}
	for k, acc := range m.pairs {
		if acc.n > 0 {
			s.pairs[k] = acc.fit()
		}
	}
	for i, acc := range m.classes {
		s.classN[i] = acc.n
		if acc.n > 0 {
			s.classes[i] = acc.fit()
		}
	}
	return s
}

// Comm predicts like CommModel.Comm against the frozen fits: per-pair line,
// then link-class fallback, then zero (explore).
func (s *CommSnapshot) Comm(bytes int64, from, to *device.Device) time.Duration {
	if from.ID == to.ID {
		return 0
	}
	if l, ok := s.pairs[pairKey{from: from.ID, to: to.ID}]; ok {
		return l.Predict(bytes)
	}
	cls := linkClassOf(s.cluster, from.ID, to.ID)
	if s.classN[cls] > 0 {
		return s.classes[cls].Predict(bytes)
	}
	return 0
}

// Pair returns the fitted line for a specific device pair, if any traffic
// has been observed on it.
func (m *CommModel) Pair(from, to int) (LinearModel, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	acc, ok := m.pairs[pairKey{from: from, to: to}]
	if !ok || acc.n == 0 {
		return LinearModel{}, false
	}
	return acc.fit(), true
}

// NumPairs returns the number of device pairs with observed traffic.
func (m *CommModel) NumPairs() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pairs)
}
