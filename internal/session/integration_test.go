package session

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/sim"
	"fastt/internal/validate"
)

// TestFullZooSessions drives the complete FastT workflow for every
// benchmark model on 2 GPUs, asserting the rollback guarantee (FastT never
// ends meaningfully slower than the DP start) and that the final active
// strategy validates structurally.
func TestFullZooSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("full model zoo is slow")
	}
	for _, spec := range models.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cluster, err := device.SingleServer(2)
			if err != nil {
				t.Fatalf("SingleServer: %v", err)
			}
			per := spec.GlobalBatch / 2
			if per < 1 {
				per = 1
			}
			m, err := spec.Build(per)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			g, err := graph.BuildDataParallel(m, 2)
			if err != nil {
				t.Fatalf("BuildDataParallel: %v", err)
			}

			// DP reference.
			engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
			place, err := placement.DataParallel(g, cluster)
			if err != nil {
				t.Fatalf("DataParallel: %v", err)
			}
			dp, err := engine.Run(g, place, sim.Config{Seed: 3})
			if err != nil {
				t.Fatalf("DP run: %v", err)
			}

			s, err := New(cluster, sim.WrapEngine(engine), g, Config{Seed: 3, MaxRounds: 2})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			rep, err := s.Bootstrap()
			if err != nil {
				t.Fatalf("Bootstrap: %v", err)
			}
			stats, err := s.Run(3)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if stats.AvgIter <= 0 {
				t.Fatal("non-positive iteration time")
			}
			// Rollback guarantee modulo measurement noise.
			slack := time.Duration(float64(dp.Makespan) * 0.08)
			if stats.AvgIter > dp.Makespan+slack {
				t.Errorf("FastT %v slower than DP %v beyond noise", stats.AvgIter, dp.Makespan)
			}
			if rep.StartMeasured <= 0 || len(rep.Rounds) == 0 {
				t.Error("incomplete bootstrap report")
			}
			// The active strategy must be structurally sound.
			if err := validate.Placement(s.ActiveGraph(), s.ActivePlacement(),
				cluster, validate.Options{SkipMemory: true}); err != nil {
				t.Errorf("active placement invalid: %v", err)
			}
			if err := validate.Splits(s.ActiveGraph(), s.ActiveSplits()); err != nil {
				t.Errorf("active split list invalid: %v", err)
			}
		})
	}
}
