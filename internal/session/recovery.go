package session

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastt/internal/checkpoint"
	"fastt/internal/core"
	"fastt/internal/placement"
	"fastt/internal/runtime"
	"fastt/internal/strategy"
	"fastt/internal/validate"
)

// ErrNoSurvivors is returned when a device failure leaves no cluster to
// recover onto.
var ErrNoSurvivors = errors.New("device failure left no usable cluster")

// Degradation ladder labels recorded in RunStats.Degraded and artifact
// provenance.
const (
	degradedModelParallel = "model-parallel"
	degradedSingleDevice  = "single-device"
)

// recoverFromDeviceLoss drives the full recovery loop after a device failure:
// shrink the executor and cluster, restore the latest checkpoint, recompute a
// strategy on the survivors and resume. A further failure during recovery
// re-enters the loop on the freshly lost device; the loop is bounded because
// every pass removes one device and shrinking the last one fails.
func (s *Session) recoverFromDeviceLoss(ctx context.Context, lost *runtime.DeviceLostError, stats *RunStats) error {
	if _, ok := s.exec.(runtime.DegradableExecutor); !ok {
		return lost // backend cannot shrink: surface the failure
	}
	for {
		err := s.recoverOnce(ctx, lost, stats)
		if err == nil {
			return nil
		}
		var again *runtime.DeviceLostError
		if errors.As(err, &again) {
			lost = again
			continue
		}
		return err
	}
}

// recoverOnce handles exactly one device loss. It returns a bare
// *runtime.DeviceLostError when another device dies while re-profiling the
// recovered strategy, so the caller can recover again.
func (s *Session) recoverOnce(ctx context.Context, lost *runtime.DeviceLostError, stats *RunStats) error {
	deg, ok := s.exec.(runtime.DegradableExecutor)
	if !ok {
		return lost
	}
	stats.DeviceLosses++
	attempt := stats.DeviceLosses

	// Shrink the backend to the survivors. The renumbering contract is part
	// of DegradableExecutor: old ID d maps to d below the failed device and
	// d-1 above it.
	nextExec, nextCluster, err := deg.Shrink(lost.Device)
	if err != nil {
		return fmt.Errorf("%w: lost device %d: %v", ErrNoSurvivors, lost.Device, err)
	}
	mapping := make([]int, s.cluster.NumDevices())
	for d := range mapping {
		switch {
		case d == lost.Device:
			mapping[d] = -1
		case d < lost.Device:
			mapping[d] = d
		default:
			mapping[d] = d - 1
		}
	}
	s.costs = s.costs.RemapDevices(nextCluster, mapping)
	s.cluster = nextCluster
	s.exec = nextExec

	// Restore the latest checkpoint: training progress rolls back to the
	// snapshot step and the restart is charged to the timeline, like a real
	// checkpoint/restart cycle. Without a snapshot (possible when Bootstrap
	// never activated a candidate) only the in-flight iteration is lost.
	paramBytes := s.cur.graph.ComputeStats().ParamBytes
	snap, err := s.store.Restore()
	switch {
	case err == nil:
		if s.step > snap.Step {
			stats.LostIterations += s.step - snap.Step
			s.step = snap.Step
		}
		paramBytes = snap.ParamBytes
	case !errors.Is(err, checkpoint.ErrNoSnapshot):
		return fmt.Errorf("restore checkpoint: %w", err)
	}

	// Charge restart plus doubling retry backoff, and advance the backend's
	// timeline so time-anchored fault schedules stay aligned.
	charge := s.ckCost.RestartCost(paramBytes) + s.cfg.FaultBackoff<<(attempt-1)
	stats.RecoveryTime += charge
	s.advanceTimeline(charge)

	// Within the retry budget, recompute a full OS-DPOS strategy on the
	// survivors; past it (a fault storm), or when the calculator finds no
	// memory-feasible placement, degrade to the bootstrap fallbacks. The
	// recompute is warm-started from the pre-failure strategy: still a
	// feasible plan for the same graph (the seed is re-placed on the
	// survivors, not remapped), and its evaluated makespan prunes most of
	// the candidate work — recovery no longer pays a cold search.
	if attempt <= s.cfg.MaxFaultRetries {
		t0 := time.Now()
		cand, err := s.computeSeeded(ctx, s.seedArtifact())
		stats.RecomputeWall += time.Since(t0)
		switch {
		case errors.Is(err, core.ErrNoFeasiblePlacement):
			// fall through to the degradation ladder
		case err != nil:
			return fmt.Errorf("recompute on survivors: %w", err)
		default:
			// Memory is re-checked here: the failed run's rollback safety
			// net is gone, so a strategy that cannot fit must not activate.
			if verr := validate.Strategy(cand, s.cluster, validate.Options{}); verr == nil {
				next := s.candidateActive(cand)
				m, oom, perr := s.profile(next)
				if perr != nil {
					return perr // includes a nested DeviceLostError
				}
				if oom == nil {
					s.cur = next
					s.curMeasured = m
					stats.Recomputed++
					stats.RecoveryTime += m * time.Duration(s.cfg.ProfileIters)
					return s.activate()
				}
			}
			// structurally or memory-infeasible at runtime: degrade
		}
	}
	return s.degradedFallback(stats)
}

// degradedFallback installs the sturdiest strategy that still fits: memory-
// balanced model parallelism over the survivors, then everything on one
// device. It is the "keep training, slower" floor under a fault storm.
func (s *Session) degradedFallback(stats *RunStats) error {
	if place, err := placement.ModelParallel(s.base, s.cluster, s.cfg.Memory); err == nil {
		art := strategy.New(s.base, place, nil, nil, 0, s.provenance(degradedModelParallel))
		if err := s.installFallback(art, degradedModelParallel, stats); err == nil {
			return nil
		} else if lostErr := asDeviceLost(err); lostErr != nil {
			return lostErr
		}
	}
	place := placement.SingleDevice(s.base)
	art := strategy.New(s.base, place, nil, nil, 0, s.provenance(degradedSingleDevice))
	if err := s.installFallback(art, degradedSingleDevice, stats); err != nil {
		if lostErr := asDeviceLost(err); lostErr != nil {
			return lostErr
		}
		return fmt.Errorf("%w: single-device fallback: %v", ErrNoSurvivors, err)
	}
	return nil
}

// installFallback profiles a fallback strategy and activates it when it runs
// without OOM.
func (s *Session) installFallback(art *strategy.Artifact, label string, stats *RunStats) error {
	next := active{graph: s.base, art: art}
	m, oom, err := s.profile(next)
	if err != nil {
		return err
	}
	if oom != nil {
		return oom
	}
	s.cur = next
	s.curMeasured = m
	stats.Degraded = label
	stats.RecoveryTime += m * time.Duration(s.cfg.ProfileIters)
	return s.activate()
}

// asDeviceLost unwraps a DeviceLostError so recovery loops can re-enter on
// failures that hit during fallback profiling.
func asDeviceLost(err error) *runtime.DeviceLostError {
	var lost *runtime.DeviceLostError
	if errors.As(err, &lost) {
		return lost
	}
	return nil
}
