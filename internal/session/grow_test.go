package session

import (
	"bytes"
	"strings"
	"testing"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/sim"
)

// loseDevice arms a single device failure shortly after the current epoch and
// runs until the session has recovered onto the survivors.
func loseDevice(t *testing.T, s *Session, exec *sim.FaultyExecutor, dev int) {
	t.Helper()
	iter := s.curMeasured
	plan := &sim.FaultPlan{Faults: []sim.FaultSpec{
		{Kind: "device-failure", AtNs: int64(exec.Epoch() + 3*iter + iter/2), Device: dev},
	}}
	if err := exec.SetPlan(plan); err != nil {
		t.Fatalf("SetPlan: %v", err)
	}
	stats, err := s.Run(8)
	if err != nil {
		t.Fatalf("Run under device loss: %v", err)
	}
	if stats.DeviceLosses != 1 {
		t.Fatalf("DeviceLosses = %d, want 1", stats.DeviceLosses)
	}
}

// TestGrowRecomputesAndResumes exercises the full elastic loop: a device
// dies, the session degrades to the survivors, a replacement of a different
// class joins, and the session recomputes onto the restored mixed-class
// cluster and resumes under the recomputed strategy.
func TestGrowRecomputesAndResumes(t *testing.T) {
	c := cluster4(t)
	g := dpTrainGraph(t, 4, 64)
	s, exec := bootFaultSession(t, c, g, Config{Seed: 3, MaxRounds: 2})

	loseDevice(t, s, exec, 2)
	if s.Cluster().NumDevices() != 3 {
		t.Fatalf("cluster has %d devices after loss, want 3", s.Cluster().NumDevices())
	}
	degraded := s.curMeasured

	// A replacement A100 joins the server over NVLink: strictly more capable
	// than the dead V100, so the recompute should beat the degraded strategy
	// and activate.
	rep, err := s.Grow(device.JoinSpec{Class: device.ClassA100, Server: 0})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if rep.Devices != 4 {
		t.Fatalf("Devices = %d after join, want 4", rep.Devices)
	}
	if rep.Device != 3 {
		t.Fatalf("joined device ID = %d, want 3 (next free)", rep.Device)
	}
	if rep.Class != device.ClassA100 {
		t.Fatalf("joined class = %q, want %q", rep.Class, device.ClassA100)
	}
	if s.Cluster().NumDevices() != 4 {
		t.Fatalf("cluster has %d devices after join, want 4", s.Cluster().NumDevices())
	}
	if !rep.Recomputed {
		t.Fatal("join did not activate a recomputed strategy")
	}
	if rep.Measured >= degraded {
		t.Fatalf("recomputed strategy measures %v, no better than degraded %v", rep.Measured, degraded)
	}
	if rep.RecoveryTime <= 0 {
		t.Error("no recovery time charged for the join's checkpoint/restart cycle")
	}
	for op, dev := range s.ActivePlacement() {
		if dev < 0 || dev >= 4 {
			t.Fatalf("op %d placed on device %d after join", op, dev)
		}
	}
	// The recomputed artifact must validate against the grown, classed
	// cluster and record the mixed shape in its provenance.
	art := s.ActiveArtifact()
	if err := art.Validate(s.base, s.Cluster()); err != nil {
		t.Fatalf("post-join artifact does not validate: %v", err)
	}
	if !strings.Contains(art.Provenance.Cluster.Classes, device.ClassA100) {
		t.Errorf("provenance classes %q does not mention the joined %s",
			art.Provenance.Cluster.Classes, device.ClassA100)
	}
	// Training resumes on the restored cluster without incident.
	stats, err := s.Run(6)
	if err != nil {
		t.Fatalf("post-join Run: %v", err)
	}
	if stats.DeviceLosses != 0 {
		t.Fatalf("post-join run lost %d devices", stats.DeviceLosses)
	}
}

// TestGrowNeverSlowsTraining is the regression test for the join's floor
// guarantee: a weak joiner behind a slow cross-server link must not drag the
// session below the strategy it already has — the recompute either beats the
// running strategy or is discarded.
func TestGrowNeverSlowsTraining(t *testing.T) {
	c := cluster4(t)
	g := dpTrainGraph(t, 4, 64)
	s, _ := bootFaultSession(t, c, g, Config{Seed: 3, MaxRounds: 2})
	before := s.curMeasured

	rep, err := s.Grow(device.JoinSpec{Class: device.ClassT4, Server: device.NewServer})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	stats, err := s.Run(6)
	if err != nil {
		t.Fatalf("post-join Run: %v", err)
	}
	// Allow jitter headroom; without the floor guard the T4 join regresses
	// iteration time by integer factors, not percent.
	if limit := before + before/4; stats.AvgIter > limit {
		t.Fatalf("post-join AvgIter %v exceeds pre-join %v (recomputed=%v); join slowed training",
			stats.AvgIter, before, rep.Recomputed)
	}
	// Only an activated recompute carries the grown shape in provenance; a
	// kept pre-join strategy is still runnable but records the old shape.
	if rep.Recomputed {
		if err := s.ActiveArtifact().Validate(s.base, s.Cluster()); err != nil {
			t.Fatalf("recomputed artifact does not validate on grown cluster: %v", err)
		}
	}
}

func TestGrowRequiresGrowableExecutor(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 2, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if _, err := s.Grow(device.JoinSpec{}); err == nil {
		t.Fatal("Grow on a non-growable executor did not error")
	}
}

// TestGrowDeterminismAcrossWorkers is the elastic half of the reproducibility
// guarantee: the same loss-then-join sequence produces byte-identical
// recomputed artifacts no matter how many strategy-calculator workers run.
// Runs in -short mode so the race-enabled tier exercises it.
func TestGrowDeterminismAcrossWorkers(t *testing.T) {
	runWith := func(workers int) []byte {
		c := cluster4(t)
		g := dpTrainGraph(t, 4, 32)
		s, exec := bootFaultSession(t, c, g, Config{
			Seed: 9, MaxRounds: 2,
			Sched: core.Options{Workers: workers},
		})
		loseDevice(t, s, exec, 1)
		rep, err := s.Grow(device.JoinSpec{Class: device.ClassA100, Server: 0})
		if err != nil {
			t.Fatalf("workers=%d: Grow: %v", workers, err)
		}
		if !rep.Recomputed {
			t.Fatalf("workers=%d: join did not recompute", workers)
		}
		var art bytes.Buffer
		if err := s.ActiveArtifact().WriteJSON(&art); err != nil {
			t.Fatalf("marshal artifact: %v", err)
		}
		return art.Bytes()
	}

	ref := runWith(1)
	for _, workers := range []int{4, 8} {
		if got := runWith(workers); !bytes.Equal(got, ref) {
			t.Errorf("workers=%d post-join artifact differs from workers=1", workers)
		}
	}
}
