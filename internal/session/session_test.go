package session

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/runtime"
	"fastt/internal/sim"
	"fastt/internal/strategy"
)

// simExec is the executor the tests inject: the simulator with default
// kernel models, as production callers use.
func simExec(c *device.Cluster) runtime.Executor { return sim.DefaultExecutor(c) }

// dpTrainGraph builds a small LeNet data-parallel training graph.
func dpTrainGraph(t *testing.T, replicas, batchPerReplica int) *graph.Graph {
	t.Helper()
	m, err := models.LeNet(batchPerReplica)
	if err != nil {
		t.Fatalf("LeNet: %v", err)
	}
	g, err := graph.BuildDataParallel(m, replicas)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	return g
}

func cluster2(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

func TestBootstrapProducesStrategy(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 1, MaxRounds: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if rep.Start != "data-parallel" {
		t.Errorf("Start = %q, want data-parallel", rep.Start)
	}
	if rep.StartMeasured <= 0 {
		t.Error("non-positive start measurement")
	}
	if len(rep.Rounds) == 0 {
		t.Fatal("no rounds recorded")
	}
	if rep.FinalMeasured <= 0 {
		t.Error("non-positive final measurement")
	}
	if rep.CalcWallTotal <= 0 {
		t.Error("no strategy calculation time recorded")
	}
	if s.ActiveGraph() == nil || len(s.ActivePlacement()) != s.ActiveGraph().NumOps() {
		t.Error("active strategy malformed")
	}
}

func TestBootstrapNeverEndsSlowertThanStart(t *testing.T) {
	// Rollback guarantees the final strategy is never worse than the start
	// strategy beyond measurement noise.
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 3, MaxRounds: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	slack := rep.StartMeasured / 10 // 10% noise allowance
	if rep.FinalMeasured > rep.StartMeasured+slack {
		t.Errorf("final %v slower than start %v", rep.FinalMeasured, rep.StartMeasured)
	}
}

func TestRunAfterBootstrap(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 5, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	stats, err := s.Run(5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Iterations != 5 || stats.AvgIter <= 0 {
		t.Errorf("RunStats = %+v", stats)
	}
	if stats.Last == nil || len(stats.Last.Spans) == 0 {
		t.Error("no final iteration result captured")
	}
}

func TestRunRequiresBootstrap(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Run(1); err == nil {
		t.Error("Run before Bootstrap succeeded")
	}
}

func TestModelParallelStartForLargeModel(t *testing.T) {
	// A model whose replicated parameters exceed one GPU must start
	// model-parallel.
	m := graph.New()
	prev := -1
	for i := 0; i < 4; i++ {
		name := "fc" + string(rune('a'+i))
		id := m.MustAddOp(&graph.Op{
			Name: name, Kind: graph.KindMatMul, FLOPs: 1e9,
			ParamBytes: 1 * device.GiB, OutputBytes: 1 << 20,
			Batch: 8, Channels: 1024,
		})
		bp := m.MustAddOp(&graph.Op{
			Name: name + "_bp", Kind: graph.KindMatMulBackprop, FLOPs: 2e9,
			OutputBytes: 1 << 20, Batch: 8, GradFor: name,
		})
		if prev >= 0 {
			m.MustConnect(prev, id, 1<<20)
		}
		m.MustConnect(id, bp, 1<<20)
		prev = id
	}
	g, err := graph.BuildDataParallel(m, 1)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	// 4 GiB params -> 16 GiB static with optimizer state: needs 2 GPUs at
	// 12 GiB each.
	c, err := device.SingleServer(2, device.WithMemory(12*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	s, err := New(c, simExec(c), g, Config{Seed: 7, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if rep.Start != "model-parallel" {
		t.Errorf("Start = %q, want model-parallel", rep.Start)
	}
}

func TestNoFeasibleStart(t *testing.T) {
	m := graph.New()
	h := m.MustAddOp(&graph.Op{
		Name: "huge", Kind: graph.KindMatMul, FLOPs: 1e9,
		ParamBytes: 64 * device.GiB, OutputBytes: 1 << 20, Batch: 8,
	})
	bp := m.MustAddOp(&graph.Op{
		Name: "huge_bp", Kind: graph.KindMatMulBackprop, FLOPs: 2e9,
		OutputBytes: 1 << 20, Batch: 8, GradFor: "huge",
	})
	m.MustConnect(h, bp, 1<<20)
	g, err := graph.BuildDataParallel(m, 1)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	s, err := New(c, simExec(c), g, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); !errors.Is(err, ErrNoFeasibleStart) {
		t.Errorf("err = %v, want ErrNoFeasibleStart", err)
	}
}

func TestDisableSplittingYieldsNoSplits(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 9, MaxRounds: 2, DisableSplitting: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if len(s.ActiveSplits()) != 0 {
		t.Errorf("splits present with splitting disabled: %v", s.ActiveSplits())
	}
}

func TestCostModelsPopulatedByBootstrap(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 11, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if s.Costs().Comp.NumEntries() == 0 {
		t.Error("computation cost model empty after bootstrap")
	}
	if cov := s.Costs().Comp.Coverage(g); cov < 0.9 {
		t.Errorf("cost model coverage = %v, want >= 0.9", cov)
	}
	if s.Costs().Link.NumPairs() == 0 {
		t.Error("communication cost model saw no traffic")
	}
}

func TestBootstrapReproducible(t *testing.T) {
	c := cluster2(t)
	run := func() *Report {
		g := dpTrainGraph(t, 2, 64)
		s, err := New(c, simExec(c), g, Config{Seed: 21, MaxRounds: 2})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := s.Bootstrap()
		if err != nil {
			t.Fatalf("Bootstrap: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.StartMeasured != b.StartMeasured || a.FinalMeasured != b.FinalMeasured {
		t.Errorf("bootstrap not reproducible: %v/%v vs %v/%v",
			a.StartMeasured, a.FinalMeasured, b.StartMeasured, b.FinalMeasured)
	}
}

func TestCostPersistenceAcrossSessions(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	first, err := New(c, simExec(c), g, Config{Seed: 31, MaxRounds: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := first.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	var blob strings.Builder
	if err := first.SaveCosts(&blob); err != nil {
		t.Fatalf("SaveCosts: %v", err)
	}

	second, err := New(c, simExec(c), dpTrainGraph(t, 2, 64), Config{Seed: 33, MaxRounds: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := second.LoadCosts(strings.NewReader(blob.String())); err != nil {
		t.Fatalf("LoadCosts: %v", err)
	}
	// With the costs preloaded, coverage is complete before any profiling.
	if cov := second.Costs().Comp.Coverage(second.base); cov < 0.99 {
		t.Errorf("preloaded coverage = %v, want ~1", cov)
	}
	if _, err := second.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap after LoadCosts: %v", err)
	}
}

func TestRollbackRestoresFullArtifact(t *testing.T) {
	// Activation checkpoints the complete strategy artifact; a rollback must
	// reproduce it exactly — execution order and priorities included — by
	// decoding the snapshot and re-materializing its graph, not by trusting
	// whatever happens to be in memory.
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 41})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cand, err := core.ComputeStrategy(g, c, kernels.NewDefaultOracle(c),
		core.Options{MaxSplitOps: 4, MaxSyncGroups: 8})
	if err != nil {
		t.Fatalf("ComputeStrategy: %v", err)
	}
	s.cur = s.candidateActive(cand)
	saved := *s.cur.art
	savedGraph := s.cur.graph
	if len(saved.Order) == 0 {
		t.Fatal("computed strategy has no execution order; test would not cover order restore")
	}
	if err := s.activate(); err != nil {
		t.Fatalf("activate: %v", err)
	}

	// Clobber the live state, as activating a bad candidate would.
	junk := strategy.New(s.base, make([]int, s.base.NumOps()), nil, nil, 0,
		strategy.Provenance{Origin: "junk"})
	s.cur = active{graph: s.base, art: junk}

	if err := s.rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if !reflect.DeepEqual(*s.cur.art, saved) {
		t.Errorf("restored artifact differs:\n got %+v\nwant %+v", *s.cur.art, saved)
	}
	if !reflect.DeepEqual(s.cur.art.PriorityIndex(), saved.PriorityIndex()) {
		t.Errorf("restored priorities = %v, want %v",
			s.cur.art.PriorityIndex(), saved.PriorityIndex())
	}
	if got, want := strategy.Fingerprint(s.cur.graph), strategy.Fingerprint(savedGraph); got != want {
		t.Errorf("re-materialized graph fingerprint = %s, want %s", got, want)
	}
}

func TestBootstrapCtxCancelled(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 1, MaxRounds: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.BootstrapCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BootstrapCtx err = %v, want context.Canceled", err)
	}
}

// TestSessionStrategistSeam injects a counting strategist and checks every
// bootstrap recomputation goes through it instead of the in-process core.
func TestSessionStrategistSeam(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	calls := 0
	cfg := Config{Seed: 1, MaxRounds: 2}
	cfg.Strategist = func(ctx context.Context, bg *graph.Graph, cluster *device.Cluster,
		est cost.Estimator, opts core.Options) (*core.Strategy, error) {
		calls++
		return core.ComputeStrategyCtx(ctx, bg, cluster, est, opts)
	}
	s, err := New(c, simExec(c), g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if calls != len(rep.Rounds) {
		t.Errorf("strategist called %d times for %d rounds", calls, len(rep.Rounds))
	}
}
