package session

import (
	"testing"

	"fastt/internal/core"
)

// TestBootstrapReportsLowerBound verifies the bound plumbing end to end
// through a session: with Sched.ComputeBound set, the bootstrap report and
// its rounds carry the reference lower bound and a consistent gap.
func TestBootstrapReportsLowerBound(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 1, MaxRounds: 2,
		Sched: core.Options{ComputeBound: true}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if rep.LowerBound <= 0 {
		t.Fatalf("Report.LowerBound = %v, want > 0", rep.LowerBound)
	}
	if rep.BoundMethod == "" {
		t.Error("Report.BoundMethod is empty")
	}
	if rep.GapPct < 0 {
		t.Errorf("Report.GapPct = %.2f, want >= 0", rep.GapPct)
	}
	bounded := 0
	for _, r := range rep.Rounds {
		if r.LowerBound > 0 {
			bounded++
			if r.Predicted > 0 && r.Predicted < r.LowerBound {
				t.Errorf("round %d: predicted %v below its own lower bound %v",
					r.Index, r.Predicted, r.LowerBound)
			}
		}
	}
	if bounded == 0 {
		t.Error("no round carries a lower bound")
	}
}

// TestBootstrapBoundOffByDefault pins the opt-in: without ComputeBound the
// report's bound fields stay zero, so no caller pays the solver silently.
func TestBootstrapBoundOffByDefault(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 1, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if rep.LowerBound != 0 || rep.BoundMethod != "" || rep.GapPct != 0 {
		t.Errorf("bound fields set without ComputeBound: %v %q %.2f",
			rep.LowerBound, rep.BoundMethod, rep.GapPct)
	}
}
