package session

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fastt/internal/checkpoint"
	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/runtime"
	"fastt/internal/validate"
)

// GrowReport summarizes one elastic scale-out: what joined, what the join
// cost on the training timeline, and whether the session is now running a
// strategy recomputed for the enlarged cluster.
type GrowReport struct {
	// Device / Name / Class identify the joined device in the new cluster.
	Device int
	Name   string
	Class  string
	// Devices is the cluster size after the join.
	Devices int
	// LostIterations counts training iterations rolled back by the
	// checkpoint restore.
	LostIterations int
	// RecoveryTime is the simulated timeline charge of the join: the
	// checkpoint restart plus profiling of the recomputed strategy.
	RecoveryTime time.Duration
	// RecomputeWall is the wall-clock time of the OS-DPOS recompute.
	RecomputeWall time.Duration
	// Measured is the recomputed strategy's profiled iteration time (zero
	// when not recomputed).
	Measured time.Duration
	// Recomputed reports whether the recomputed strategy was activated. When
	// false the session keeps training under the pre-join strategy — still
	// valid, since existing device IDs are unchanged — and the joiner idles
	// until a later recompute picks it up.
	Recomputed bool
}

// Grow absorbs a device joining mid-run — the elastic inverse of the
// device-loss recovery path. See GrowCtx.
func (s *Session) Grow(join device.JoinSpec) (*GrowReport, error) {
	return s.GrowCtx(context.Background(), join)
}

// GrowCtx grows the executor and cluster by one device, restores the latest
// checkpoint (a real scale-out is a checkpoint/restart cycle: progress rolls
// back to the snapshot and the restart is charged to the timeline),
// recomputes a full OS-DPOS strategy on the enlarged cluster, and resumes
// under it after validation and profiling. The learned cost models carry
// over unchanged for existing devices; the joiner starts from its class's
// pooled statistics when same-class devices were already profiled, and from
// the explore-biased zero estimate otherwise.
//
// The backend must implement runtime.GrowableExecutor. If the recompute
// finds no feasible placement, or the candidate fails validation, OOMs, or
// profiles no faster than the running strategy, the session keeps the
// pre-join strategy (existing device IDs are unchanged, so it remains
// runnable) and reports Recomputed=false instead of failing.
func (s *Session) GrowCtx(ctx context.Context, join device.JoinSpec) (*GrowReport, error) {
	grower, ok := s.exec.(runtime.GrowableExecutor)
	if !ok {
		return nil, fmt.Errorf("executor backend %T cannot grow", s.exec)
	}
	nextExec, nextCluster, joined, err := grower.Grow(join)
	if err != nil {
		return nil, err
	}

	// Existing devices keep their IDs, so the cost-model remap is the
	// identity; rebuilding against the new cluster re-keys the class and
	// link-tier aggregates to include the joiner.
	mapping := make([]int, s.cluster.NumDevices())
	for d := range mapping {
		mapping[d] = d
	}
	s.costs = s.costs.RemapDevices(nextCluster, mapping)
	s.cluster = nextCluster
	s.exec = nextExec
	rep := &GrowReport{
		Device:  joined.ID,
		Name:    joined.Name,
		Class:   joined.ClassName(),
		Devices: nextCluster.NumDevices(),
	}

	// Restore the latest checkpoint and charge the restart, exactly like the
	// loss path: joining is a checkpoint/restart cycle on the training
	// timeline. Without a snapshot (Bootstrap never activated) nothing rolls
	// back.
	paramBytes := s.cur.graph.ComputeStats().ParamBytes
	snap, err := s.store.Restore()
	switch {
	case err == nil:
		if s.step > snap.Step {
			rep.LostIterations = s.step - snap.Step
			s.step = snap.Step
		}
		paramBytes = snap.ParamBytes
	case !errors.Is(err, checkpoint.ErrNoSnapshot):
		return rep, fmt.Errorf("restore checkpoint: %w", err)
	}
	charge := s.ckCost.RestartCost(paramBytes)
	rep.RecoveryTime += charge
	s.advanceTimeline(charge)

	// Recompute on the enlarged cluster, warm-started from the pre-join
	// strategy: it stays feasible (existing device IDs are unchanged) and
	// its evaluated makespan is exactly the never-slower floor below, so
	// candidates that cannot beat it prune early. Unlike the loss path
	// there is no degradation ladder: the pre-join strategy is the safe
	// floor.
	t0 := time.Now()
	cand, err := s.computeSeeded(ctx, s.seedArtifact())
	rep.RecomputeWall = time.Since(t0)
	switch {
	case errors.Is(err, core.ErrNoFeasiblePlacement):
		return rep, nil
	case err != nil:
		return rep, fmt.Errorf("recompute on grown cluster: %w", err)
	}
	if verr := validate.Strategy(cand, s.cluster, validate.Options{}); verr != nil {
		return rep, nil
	}
	next := s.candidateActive(cand)
	m, oom, perr := s.profile(next)
	if perr != nil {
		return rep, perr
	}
	if oom != nil {
		return rep, nil
	}
	if s.curMeasured > 0 && m >= s.curMeasured {
		// A slow joiner can make the enlarged cluster's best candidate worse
		// than the running strategy (pulling work onto it crosses a slower
		// link than it saves in compute). Mirror Bootstrap's guarantee: never
		// end slower than the strategy already in hand.
		return rep, nil
	}
	s.cur = next
	s.curMeasured = m
	rep.Measured = m
	rep.Recomputed = true
	rep.RecoveryTime += m * time.Duration(s.cfg.ProfileIters)
	return rep, s.activate()
}
