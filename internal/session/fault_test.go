package session

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/runtime"
	"fastt/internal/sim"
	"fastt/internal/strategy"
)

func cluster4(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(4)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

// bootFaultSession bootstraps a session over a fault-capable executor with
// no plan armed yet: fault times are absolute on the training timeline, so
// plans are installed after bootstrap against the known post-bootstrap epoch.
func bootFaultSession(t *testing.T, c *device.Cluster, g *graph.Graph, cfg Config) (*Session, *sim.FaultyExecutor) {
	t.Helper()
	exec, err := sim.DefaultFaultyExecutor(c, nil)
	if err != nil {
		t.Fatalf("DefaultFaultyExecutor: %v", err)
	}
	s, err := New(c, exec, g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	return s, exec
}

func TestDeviceLossRecovery(t *testing.T) {
	c := cluster4(t)
	g := dpTrainGraph(t, 4, 64)
	s, exec := bootFaultSession(t, c, g, Config{Seed: 3, MaxRounds: 2})

	iter := s.curMeasured
	if iter <= 0 {
		t.Fatal("no measured iteration time after bootstrap")
	}
	// Kill device 2 a few iterations into the run.
	failAt := exec.Epoch() + 3*iter + iter/2
	plan := &sim.FaultPlan{Faults: []sim.FaultSpec{
		{Kind: "device-failure", AtNs: int64(failAt), Device: 2},
	}}
	if err := exec.SetPlan(plan); err != nil {
		t.Fatalf("SetPlan: %v", err)
	}

	stats, err := s.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.DeviceLosses != 1 {
		t.Fatalf("DeviceLosses = %d, want 1", stats.DeviceLosses)
	}
	if s.Cluster().NumDevices() != 3 {
		t.Fatalf("cluster has %d devices after recovery, want 3", s.Cluster().NumDevices())
	}
	for op, dev := range s.ActivePlacement() {
		if dev < 0 || dev >= 3 {
			t.Fatalf("op %d placed on device %d after recovery", op, dev)
		}
	}
	if stats.RecoveryTime <= 0 {
		t.Error("no recovery time charged")
	}
	if stats.Degraded == "" && stats.Recomputed == 0 {
		t.Error("recovery neither recomputed nor degraded")
	}
	// The recomputed artifact must validate against the shrunk cluster.
	if err := s.ActiveArtifact().Validate(s.base, s.Cluster()); err != nil {
		t.Fatalf("post-recovery artifact does not validate: %v", err)
	}
	// A later run proceeds on the shrunk cluster without incident.
	again, err := s.Run(4)
	if err != nil {
		t.Fatalf("post-recovery Run: %v", err)
	}
	if again.DeviceLosses != 0 {
		t.Fatalf("dead device failed again: %d losses", again.DeviceLosses)
	}
}

func TestFaultStormDegradesInsteadOfErroring(t *testing.T) {
	c := cluster4(t)
	g := dpTrainGraph(t, 4, 64)
	s, exec := bootFaultSession(t, c, g, Config{
		Seed: 5, MaxRounds: 2, MaxFaultRetries: 1,
	})
	iter := s.curMeasured
	base := exec.Epoch()
	// Three device failures in quick succession: the first is inside the
	// retry budget, the rest exhaust it and must degrade, not error.
	plan := &sim.FaultPlan{Faults: []sim.FaultSpec{
		{Kind: "device-failure", AtNs: int64(base + 2*iter), Device: 3},
		{Kind: "device-failure", AtNs: int64(base + 40*iter), Device: 0},
		{Kind: "device-failure", AtNs: int64(base + 80*iter), Device: 1},
	}}
	if err := exec.SetPlan(plan); err != nil {
		t.Fatalf("SetPlan: %v", err)
	}
	stats, err := s.Run(60)
	if err != nil {
		t.Fatalf("Run under fault storm: %v", err)
	}
	if stats.DeviceLosses < 2 {
		t.Fatalf("DeviceLosses = %d, want >= 2", stats.DeviceLosses)
	}
	if stats.DeviceLosses > 1 && stats.Degraded == "" {
		t.Error("retry budget exhausted but no degradation recorded")
	}
	if n := s.Cluster().NumDevices(); n != 4-stats.DeviceLosses {
		t.Errorf("cluster has %d devices after %d losses", n, stats.DeviceLosses)
	}
	for op, dev := range s.ActivePlacement() {
		if dev < 0 || dev >= s.Cluster().NumDevices() {
			t.Fatalf("op %d placed on device %d of %d", op, dev, s.Cluster().NumDevices())
		}
	}
}

// TestFaultDeterminismAcrossWorkers is the reproducibility guarantee for
// fault runs: the same fault-plan seed yields byte-identical fault event
// sequences and identical post-recovery strategy artifacts no matter how
// many strategy-calculator workers run. It intentionally runs in -short mode
// so the race-enabled tier exercises it.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	type outcome struct {
		events   []byte
		artifact []byte
		epoch    time.Duration
		losses   int
	}
	runWith := func(workers int) outcome {
		c := cluster4(t)
		g := dpTrainGraph(t, 4, 32)
		s, exec := bootFaultSession(t, c, g, Config{
			Seed: 9, MaxRounds: 2,
			Sched: core.Options{Workers: workers},
		})
		iter := s.curMeasured
		base := exec.Epoch()
		plan := &sim.FaultPlan{Seed: 1234, Faults: []sim.FaultSpec{
			{Kind: "straggler", AtNs: int64(base + iter), Device: 1, Factor: 2.5},
			{Kind: "link-degrade", AtNs: int64(base + 2*iter), From: 0, To: 3, Factor: 3},
			{Kind: "device-failure", AtNs: int64(base + 4*iter), Device: 2},
		}}
		if err := exec.SetPlan(plan); err != nil {
			t.Fatalf("workers=%d: SetPlan: %v", workers, err)
		}
		stats, err := s.Run(12)
		if err != nil {
			t.Fatalf("workers=%d: Run: %v", workers, err)
		}
		events, err := json.Marshal(stats.FaultEvents)
		if err != nil {
			t.Fatalf("marshal events: %v", err)
		}
		var art bytes.Buffer
		if err := s.ActiveArtifact().WriteJSON(&art); err != nil {
			t.Fatalf("marshal artifact: %v", err)
		}
		return outcome{
			events:   events,
			artifact: art.Bytes(),
			epoch:    exec.Epoch(),
			losses:   stats.DeviceLosses,
		}
	}

	ref := runWith(1)
	if ref.losses != 1 {
		t.Fatalf("reference run lost %d devices, want 1", ref.losses)
	}
	for _, workers := range []int{4, 8} {
		got := runWith(workers)
		if !bytes.Equal(got.events, ref.events) {
			t.Errorf("workers=%d fault events differ:\n%s\nvs\n%s", workers, got.events, ref.events)
		}
		if !bytes.Equal(got.artifact, ref.artifact) {
			t.Errorf("workers=%d post-recovery artifact differs", workers)
		}
		if got.epoch != ref.epoch {
			t.Errorf("workers=%d timeline epoch %v, ref %v", workers, got.epoch, ref.epoch)
		}
		if got.losses != ref.losses {
			t.Errorf("workers=%d lost %d devices, ref %d", workers, got.losses, ref.losses)
		}
	}
}

// TestRecoveryTimeChargedOnDriftRecompute is the regression test for the
// drift path's timeline accounting: a drift-triggered recompute implies a
// checkpoint/restart cycle plus off-path candidate profiling, which must be
// charged to RunStats.RecoveryTime rather than silently dropped.
func TestRecoveryTimeChargedOnDriftRecompute(t *testing.T) {
	cluster := cluster2(t)
	model, err := models.InceptionV3(32)
	if err != nil {
		t.Fatalf("InceptionV3: %v", err)
	}
	train, err := graph.BuildDataParallel(model, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	s, err := New(cluster, simExec(cluster), train, Config{
		Seed:           11,
		ReprofileEvery: 4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if _, err := s.Run(8); err != nil {
		t.Fatalf("healthy Run: %v", err)
	}

	// One GPU loses two thirds of its throughput: the periodic profiler
	// must notice, recompute, and charge the activation to RecoveryTime.
	cluster.Device(1).PeakFLOPS /= 3
	cluster.Device(1).MemBandwidth /= 3
	stats, err := s.Run(16)
	if err != nil {
		t.Fatalf("throttled Run: %v", err)
	}
	if stats.Recomputed == 0 {
		t.Skip("drift did not trigger an activation on this seed; accounting not exercised")
	}
	if stats.RecoveryTime <= 0 {
		t.Fatalf("Recomputed = %d but RecoveryTime = %v; drift recompute charged no time",
			stats.Recomputed, stats.RecoveryTime)
	}
	if stats.RecoveryTime < s.restartCost() {
		t.Errorf("RecoveryTime %v below one restart cost %v", stats.RecoveryTime, s.restartCost())
	}
}

// TestNonDegradableExecutorSurfacesDeviceLoss pins the behaviour for
// backends that cannot shrink: the DeviceLostError propagates instead of
// entering recovery.
func TestNonDegradableExecutorSurfacesDeviceLoss(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, failingExec{inner: simExec(c)}, g, Config{Seed: 2, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	failingAfter = 2
	defer func() { failingAfter = -1 }()
	_, err = s.Run(8)
	if asDeviceLost(err) == nil {
		t.Fatalf("got %v, want DeviceLostError", err)
	}
}

// failingExec wraps an executor and fails a device after a countdown; it
// deliberately does not implement runtime.DegradableExecutor.
type failingExec struct{ inner runtime.Executor }

var failingAfter = -1

func (f failingExec) Run(g *graph.Graph, art *strategy.Artifact, cfg runtime.Config) (*runtime.Result, error) {
	if failingAfter == 0 {
		return nil, &runtime.DeviceLostError{Device: 0, At: time.Second}
	}
	if failingAfter > 0 {
		failingAfter--
	}
	return f.inner.Run(g, art, cfg)
}
