// Package session drives FastT's training workflow (Sec. 4 of the paper):
// start from data parallelism (or model parallelism when the model exceeds
// one GPU), profile a few iterations to bootstrap the cost models, compute
// a new strategy with OS-DPOS, activate it via checkpoint/restart, roll
// back if the measured per-iteration time regressed, and finish the
// pre-training stage once the cost models are stable. Afterwards Run
// executes normal training under the final strategy.
package session

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"fastt/internal/checkpoint"
	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/placement"
	"fastt/internal/runtime"
	"fastt/internal/strategy"
	"fastt/internal/validate"
)

// ErrNoFeasibleStart is returned when neither data parallelism nor model
// parallelism fits the cluster.
var ErrNoFeasibleStart = errors.New("no feasible start strategy")

// Config tunes a session.
type Config struct {
	// ProfileIters is the number of iterations per profiling round.
	ProfileIters int
	// MaxRounds bounds the pre-training strategy-search rounds.
	MaxRounds int
	// StableCV is the coefficient-of-variation threshold below which the
	// computation cost model counts as stable.
	StableCV float64
	// MinSamples is the per-key sample count required for stability.
	MinSamples int64
	// Jitter is the simulator's measurement noise.
	Jitter float64
	// Seed makes the session reproducible.
	Seed int64
	// Memory is the memory model for placement and OOM accounting.
	Memory graph.MemoryModel
	// Sched passes through scheduling options (e.g. MaxSplitOps).
	Sched core.Options
	// Strategist, when set, replaces the in-process strategy calculator:
	// every recomputation (bootstrap rounds, drift refresh, device-loss
	// recovery) goes through it instead of core.ComputeStrategyCtx. The
	// strategy service's Strategist() makes the session one more client of
	// the cached, request-coalescing service path. Ignored under
	// DisableSplitting, which is an explicit request for the placement-only
	// in-process path.
	Strategist core.Strategist
	// DisableSplitting restricts the strategy calculator to DPOS
	// (placement + order, no operation splitting) — the "No split" arm of
	// Table 6.
	DisableSplitting bool
	// DisableOrderEnforcement executes computed strategies with the
	// default FIFO executor instead of priority order — the "Default" arm
	// of Fig. 2.
	DisableOrderEnforcement bool
	// ReprofileEvery enables the paper's periodic profiling during normal
	// training: every N iterations Run profiles one iteration, and when
	// execution times have drifted significantly from the cost models it
	// updates them and recomputes the strategy. 0 disables.
	ReprofileEvery int
	// DriftThreshold is the relative deviation of an op's measured time
	// from its cost-model mean that counts as drift (default 0.3).
	DriftThreshold float64
	// DriftFraction is the fraction of ops that must drift before the
	// strategy is recomputed (default 0.05).
	DriftFraction float64
	// MaxFaultRetries bounds the device losses within one Run that trigger a
	// full OS-DPOS recomputation on the survivors; losses past the budget (a
	// fault storm) degrade straight to the bootstrap fallbacks — model
	// parallelism, then single device — instead of erroring. Default 3.
	MaxFaultRetries int
	// FaultBackoff is the simulated base backoff charged to the training
	// timeline per recovery, doubling with each consecutive device loss.
	// Default 2s.
	FaultBackoff time.Duration
	// CheckpointEvery saves a training checkpoint every N successful Run
	// iterations, bounding the iterations lost to a device failure. 0 keeps
	// only the Run-start and post-recovery checkpoints.
	CheckpointEvery int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ProfileIters == 0 {
		c.ProfileIters = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 4
	}
	if c.StableCV == 0 {
		c.StableCV = 0.08
	}
	if c.MinSamples == 0 {
		c.MinSamples = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.02
	}
	if c.Memory == (graph.MemoryModel{}) {
		c.Memory = graph.DefaultMemoryModel()
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.3
	}
	if c.DriftFraction == 0 {
		c.DriftFraction = 0.05
	}
	if c.MaxFaultRetries == 0 {
		c.MaxFaultRetries = 3
	}
	if c.FaultBackoff == 0 {
		c.FaultBackoff = 2 * time.Second
	}
	if c.Sched.Memory == (graph.MemoryModel{}) {
		c.Sched.Memory = c.Memory
	}
	return c
}

// active is the currently activated strategy: the deployment artifact plus
// the materialized graph its placement and order index into.
type active struct {
	graph *graph.Graph
	art   *strategy.Artifact
}

// Round records one pre-training strategy-search round.
type Round struct {
	// Index numbers the round from 1.
	Index int
	// CalcWall is the wall-clock time the strategy calculator spent —
	// the quantity Table 4 reports.
	CalcWall time.Duration
	// Predicted is the calculator's estimated iteration time.
	Predicted time.Duration
	// Measured is the profiled iteration time after this round.
	Measured time.Duration
	// Activated reports whether the candidate replaced the current
	// strategy; RolledBack whether it was activated and then reverted.
	Activated  bool
	RolledBack bool
	// Splits is the number of accepted operation splits in the candidate.
	Splits int
	// Evaluated and Pruned count the OS-DPOS candidate evaluations of this
	// round that ran to completion and that the bound-based pruning
	// aborted, respectively.
	Evaluated int
	Pruned    int
	// Speculated and Mispredicted count the candidate evaluations the
	// pipelined search enqueued ahead of a commit point and the subset it
	// discarded on a wrong predicted winner (0 at Workers <= 1).
	Speculated   int
	Mispredicted int
	// Seeded, SeedBound and SeedWon report the round's warm start (see
	// core.Options.Seed): whether a prior strategy tightened the search's
	// initial incumbent, its evaluated makespan, and whether the search
	// returned the re-materialized seed because nothing beat it.
	Seeded    bool
	SeedBound time.Duration
	SeedWon   bool
	// LowerBound and GapPct report the reference lower bound on the
	// candidate's ideal-system optimum and the candidate's distance from it
	// (see core.Strategy.LowerBound); zero unless Config.Sched.ComputeBound
	// is set.
	LowerBound time.Duration
	GapPct     float64
}

// Report summarizes the pre-training stage.
type Report struct {
	// Start names the bootstrap strategy ("data-parallel" or
	// "model-parallel").
	Start string
	// StartMeasured is the start strategy's profiled iteration time.
	StartMeasured time.Duration
	// Rounds are the strategy-search rounds.
	Rounds []Round
	// FinalMeasured is the active strategy's iteration time when the
	// stage ended.
	FinalMeasured time.Duration
	// CalcWallTotal is the total strategy-calculation wall time.
	CalcWallTotal time.Duration
	// EvaluatedTotal and PrunedTotal accumulate the per-round candidate
	// evaluation and pruning counts (Table 4's "Eval/Pruned" column).
	EvaluatedTotal int
	PrunedTotal    int
	// SpeculatedTotal and MispredictedTotal accumulate the per-round
	// speculation counters (Table 4's "Spec/Mispred" column).
	SpeculatedTotal   int
	MispredictedTotal int
	// SeededRounds and SeedWonRounds count the rounds whose search was
	// warm-started and the subset where the seed itself won; SeedBound is
	// the last nonzero warm-start bound (the `fastt compute -seed-strategy`
	// smoke asserts it).
	SeededRounds  int
	SeedWonRounds int
	SeedBound     time.Duration
	// LowerBound, GapPct, BoundExact and BoundMethod carry the last
	// computed round's reference lower bound on the ideal-system optimum
	// and the final strategy's distance from it (zero/empty unless
	// Config.Sched.ComputeBound is set).
	LowerBound  time.Duration
	GapPct      float64
	BoundExact  bool
	BoundMethod string
	// SimulatedOverhead is the training-timeline cost of pre-training:
	// profiled iterations plus checkpoint/restart cycles.
	SimulatedOverhead time.Duration
	// Stable reports whether the cost models converged before MaxRounds.
	Stable bool
}

// RunStats summarizes a normal-training run.
type RunStats struct {
	Iterations int
	AvgIter    time.Duration
	// Last is the last iteration's full execution result (spans,
	// transfers, memory peaks) for trace export and breakdown analysis.
	Last *runtime.Result
	// Reprofiles counts the periodic profiling checks performed;
	// Recomputed counts strategy recomputations triggered by cost-model
	// drift or device-loss recovery (each implies a checkpoint/restart on
	// the training timeline).
	Reprofiles int
	Recomputed int
	// FaultEvents are the non-fatal injected faults (stragglers, link
	// degradations) the executor surfaced, each exactly once, in the order
	// they took effect.
	FaultEvents []runtime.FaultEvent
	// DeviceLosses counts device failures recovered from during the run.
	DeviceLosses int
	// LostIterations counts training iterations rolled back by checkpoint
	// restores after device losses.
	LostIterations int
	// RecoveryTime is the simulated training-timeline time spent off the
	// training path: checkpoint restarts and retry backoff after device
	// losses, re-profiling of recovered or drift-recomputed strategies, and
	// the restart cycles of drift-triggered activations.
	RecoveryTime time.Duration
	// RecomputeWall is the wall-clock time the strategy calculator spent on
	// device-loss recomputations.
	RecomputeWall time.Duration
	// Degraded names the fallback the session was driven to when recovery
	// exhausted its retry budget ("model-parallel" or "single-device");
	// empty while OS-DPOS strategies are active.
	Degraded string
}

// Session owns the training loop state. All execution goes through the
// injected runtime.Executor, so the same workflow drives the simulator, a
// replayed trace, or any future real backend.
type Session struct {
	cfg     Config
	cluster *device.Cluster
	exec    runtime.Executor
	base    *graph.Graph
	costs   *cost.Model
	store   *checkpoint.Store
	ckCost  checkpoint.CostModel

	cur         active
	curMeasured time.Duration
	seed        int64
	step        int
	boot        *Report
}

// New creates a session for training the given graph (a data-parallel
// training graph, or a plain model graph for models exceeding one GPU) on
// the cluster, executing through exec (typically sim.DefaultExecutor).
func New(cluster *device.Cluster, exec runtime.Executor, trainGraph *graph.Graph, cfg Config) (*Session, error) {
	if err := trainGraph.Validate(); err != nil {
		return nil, fmt.Errorf("train graph: %w", err)
	}
	if exec == nil {
		return nil, errors.New("nil executor")
	}
	cfg = cfg.withDefaults()
	return &Session{
		cfg:     cfg,
		cluster: cluster,
		exec:    exec,
		base:    trainGraph,
		costs:   cost.NewModel(cluster),
		store:   checkpoint.NewStore(),
		ckCost:  checkpoint.DefaultCostModel(),
		seed:    cfg.Seed,
	}, nil
}

// Costs exposes the learned cost models (read-mostly; used by analysis).
func (s *Session) Costs() *cost.Model { return s.costs }

// Cluster returns the cluster the session is currently scheduling onto. It
// starts as the cluster passed to New and shrinks when device-loss recovery
// drops failed devices, so callers reporting per-device state must read it
// after Run rather than holding the original.
func (s *Session) Cluster() *device.Cluster { return s.cluster }

// SaveCosts writes the learned cost models, so a later session training the
// same model can skip most of the pre-training exploration.
func (s *Session) SaveCosts(w io.Writer) error { return s.costs.WriteJSON(w) }

// LoadCosts merges previously saved cost models into this session's. Call
// before Bootstrap.
func (s *Session) LoadCosts(r io.Reader) error { return s.costs.ReadJSON(r) }

// BootstrapReport returns the pre-training report, or nil before Bootstrap.
func (s *Session) BootstrapReport() *Report { return s.boot }

// ActiveGraph returns the graph of the currently activated strategy.
func (s *Session) ActiveGraph() *graph.Graph { return s.cur.graph }

// ActiveArtifact returns the currently activated strategy as a deployment
// artifact (nil before Bootstrap). The artifact is live session state;
// callers wanting to mutate it (e.g. to stamp provenance before writing it
// to disk) should copy it first.
func (s *Session) ActiveArtifact() *strategy.Artifact { return s.cur.art }

// ActivePlacement returns the active placement (op ID -> device).
func (s *Session) ActivePlacement() []int {
	if s.cur.art == nil {
		return nil
	}
	return s.cur.art.Placement
}

// ActiveSplits returns the active strategy's split list.
func (s *Session) ActiveSplits() []graph.SplitDecision {
	if s.cur.art == nil {
		return nil
	}
	return s.cur.art.Splits
}

// ActivePriorities returns the active execution-order priorities, or nil
// when the active strategy runs under the default FIFO order.
func (s *Session) ActivePriorities() []int {
	if s.cur.art == nil {
		return nil
	}
	return s.cur.art.PriorityIndex()
}

// Bootstrap runs the pre-training stage and returns its report. It must be
// called before Run.
func (s *Session) Bootstrap() (*Report, error) {
	return s.BootstrapCtx(context.Background())
}

// BootstrapCtx is Bootstrap under a context: cancelling ctx aborts the
// running strategy search (within milliseconds) and stops the stage between
// rounds, returning ctx.Err(). `fastt compute` passes its signal context
// here so Ctrl-C exits cleanly mid-search.
func (s *Session) BootstrapCtx(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start, err := s.startStrategy()
	if err != nil {
		return nil, err
	}
	s.cur = active{graph: s.base, art: start}
	rep := &Report{Start: start.Provenance.Origin}

	measured, _, err := s.profile(s.cur)
	if err != nil {
		return nil, fmt.Errorf("profile start strategy: %w", err)
	}
	s.curMeasured = measured
	rep.StartMeasured = measured
	rep.SimulatedOverhead += measured * time.Duration(s.cfg.ProfileIters)

	for round := 1; round <= s.cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := Round{Index: round}
		t0 := time.Now()
		cand, err := s.compute(ctx)
		r.CalcWall = time.Since(t0)
		rep.CalcWallTotal += r.CalcWall
		if errors.Is(err, core.ErrNoFeasiblePlacement) {
			// The calculator found no placement within memory (its static
			// model can be more conservative than runtime behaviour); keep
			// the current strategy and continue refining the cost models.
			m, _, perr := s.profile(s.cur)
			if perr != nil {
				return nil, fmt.Errorf("round %d: re-profile: %w", round, perr)
			}
			s.curMeasured = m
			r.Measured = m
			rep.SimulatedOverhead += m * time.Duration(s.cfg.ProfileIters)
			rep.Rounds = append(rep.Rounds, r)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("round %d: compute strategy: %w", round, err)
		}
		r.Predicted = cand.Predicted
		r.Splits = len(cand.Splits)
		r.Evaluated = cand.Evaluated
		r.Pruned = cand.Pruned
		r.Speculated = cand.Speculated
		r.Mispredicted = cand.Mispredicted
		r.Seeded = cand.Seeded
		r.SeedBound = cand.SeedBound
		r.SeedWon = cand.SeedWon
		if cand.LowerBound > 0 {
			r.LowerBound = cand.LowerBound
			r.GapPct = cand.GapPct
			rep.LowerBound = cand.LowerBound
			rep.GapPct = cand.GapPct
			rep.BoundExact = cand.BoundExact
			rep.BoundMethod = cand.BoundMethod
		}
		rep.EvaluatedTotal += cand.Evaluated
		rep.PrunedTotal += cand.Pruned
		rep.SpeculatedTotal += cand.Speculated
		rep.MispredictedTotal += cand.Mispredicted
		if cand.Seeded {
			rep.SeededRounds++
			rep.SeedBound = cand.SeedBound
		}
		if cand.SeedWon {
			rep.SeedWonRounds++
		}

		// Guard against calculator bugs before touching the executor; the
		// runtime memory check (with rollback) covers capacity, so only
		// structural soundness is asserted here.
		if err := validate.Strategy(cand, s.cluster, validate.Options{SkipMemory: true}); err != nil {
			return nil, fmt.Errorf("round %d: invalid strategy: %w", round, err)
		}

		if cand.Predicted < s.curMeasured {
			next := s.candidateActive(cand)
			if err := s.activate(); err != nil {
				return nil, fmt.Errorf("round %d: activate: %w", round, err)
			}
			rep.SimulatedOverhead += s.restartCost()
			s.advanceTimeline(s.restartCost())
			m, oom, err := s.profile(next)
			switch {
			case oom != nil:
				// The candidate OOMs at runtime (activation lifetimes the
				// static check missed): roll back.
				if err := s.rollback(); err != nil {
					return nil, fmt.Errorf("round %d: rollback: %w", round, err)
				}
				rep.SimulatedOverhead += s.restartCost()
				s.advanceTimeline(s.restartCost())
				r.RolledBack = true
				r.Measured = s.curMeasured
			case err != nil:
				return nil, fmt.Errorf("round %d: profile candidate: %w", round, err)
			case m > s.curMeasured:
				// Paper: if the new strategy is slower, roll back.
				if err := s.rollback(); err != nil {
					return nil, fmt.Errorf("round %d: rollback: %w", round, err)
				}
				rep.SimulatedOverhead += s.restartCost() + m*time.Duration(s.cfg.ProfileIters)
				s.advanceTimeline(s.restartCost())
				r.RolledBack = true
				r.Measured = m
			default:
				s.cur = next
				s.curMeasured = m
				r.Activated = true
				r.Measured = m
				rep.SimulatedOverhead += m * time.Duration(s.cfg.ProfileIters)
			}
		} else {
			// Not promising: keep profiling the current strategy to refine
			// the cost models.
			m, _, err := s.profile(s.cur)
			if err != nil {
				return nil, fmt.Errorf("round %d: re-profile: %w", round, err)
			}
			s.curMeasured = m
			r.Measured = m
			rep.SimulatedOverhead += m * time.Duration(s.cfg.ProfileIters)
		}
		rep.Rounds = append(rep.Rounds, r)

		if s.costs.Comp.Stable(s.cfg.MinSamples, s.cfg.StableCV) {
			rep.Stable = true
			break
		}
	}
	rep.FinalMeasured = s.curMeasured
	s.boot = rep
	return rep, nil
}

// Run executes `iters` normal-training iterations under the active
// strategy. Bootstrap must have been called.
func (s *Session) Run(iters int) (*RunStats, error) {
	return s.RunCtx(context.Background(), iters)
}

// RunCtx is Run under a context: cancellation is honored between iterations
// and inside any strategy recomputation (drift refresh, device-loss
// recovery).
func (s *Session) RunCtx(ctx context.Context, iters int) (*RunStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cur.graph == nil {
		return nil, errors.New("session not bootstrapped")
	}
	if iters < 1 {
		return nil, fmt.Errorf("iters must be >= 1, got %d", iters)
	}
	// Checkpoint the entry state so a device failure early in the run has a
	// snapshot to restore.
	if err := s.activate(); err != nil {
		return nil, fmt.Errorf("checkpoint at run start: %w", err)
	}
	var total time.Duration
	var last *runtime.Result
	stats := &RunStats{Iterations: iters}
	for i := 0; i < iters; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := s.runOnce(s.cur)
		if err != nil {
			if lost := asDeviceLost(err); lost != nil {
				if rerr := s.recoverFromDeviceLoss(ctx, lost, stats); rerr != nil {
					return nil, fmt.Errorf("iteration %d: %w", i, rerr)
				}
				i-- // redo the aborted iteration under the recovered strategy
				continue
			}
			return nil, fmt.Errorf("iteration %d: %w", i, err)
		}
		total += res.Makespan
		last = res
		s.step++
		stats.FaultEvents = append(stats.FaultEvents, res.Faults...)

		if s.cfg.CheckpointEvery > 0 && (i+1)%s.cfg.CheckpointEvery == 0 {
			if err := s.activate(); err != nil {
				return nil, fmt.Errorf("iteration %d: checkpoint: %w", i, err)
			}
		}
		if s.cfg.ReprofileEvery > 0 && (i+1)%s.cfg.ReprofileEvery == 0 {
			stats.Reprofiles++
			if s.drifted(res) {
				// Execution times changed significantly: refresh the cost
				// models and recompute the strategy (Sec. 4).
				s.observe(s.cur.graph, res)
				recomputed, charged, err := s.refreshStrategy(ctx, res.Makespan)
				if err != nil {
					if lost := asDeviceLost(err); lost != nil {
						stats.RecoveryTime += charged
						if rerr := s.recoverFromDeviceLoss(ctx, lost, stats); rerr != nil {
							return nil, fmt.Errorf("iteration %d: %w", i, rerr)
						}
						continue
					}
					return nil, fmt.Errorf("iteration %d: reprofile: %w", i, err)
				}
				stats.RecoveryTime += charged
				if recomputed {
					stats.Recomputed++
				}
			}
		}
	}
	stats.AvgIter = total / time.Duration(iters)
	stats.Last = last
	return stats, nil
}

// drifted reports whether the iteration's measured op times deviate from
// the cost models beyond the configured thresholds.
func (s *Session) drifted(res *runtime.Result) bool {
	drifted, checked := 0, 0
	for _, span := range res.Spans {
		mean, ok := s.costs.Comp.Lookup(s.cur.graph.Op(span.Op).Name, span.Device)
		if !ok || mean == 0 {
			continue
		}
		checked++
		obs := span.End - span.Start
		dev := float64(obs-mean) / float64(mean)
		if dev < 0 {
			dev = -dev
		}
		if dev > s.cfg.DriftThreshold {
			drifted++
		}
	}
	if checked == 0 {
		return false
	}
	return float64(drifted)/float64(checked) > s.cfg.DriftFraction
}

// refreshStrategy recomputes the strategy against the refreshed cost models
// and activates it when its estimate beats the latest measurement. Returns
// whether a new strategy was activated, plus the simulated recovery time the
// attempt charged to the training timeline: every activation or rollback is
// a checkpoint/restart cycle, and candidate profiling runs off the training
// path. The charge is reported even alongside an error, so callers can
// account partial work.
func (s *Session) refreshStrategy(ctx context.Context, latest time.Duration) (bool, time.Duration, error) {
	// Warm-start from the running strategy re-evaluated under the drifted
	// cost models: the recompute only matters if it beats what is already
	// running, so that is the right incumbent to prune against.
	cand, err := s.computeSeeded(ctx, s.seedArtifact())
	if errors.Is(err, core.ErrNoFeasiblePlacement) {
		return false, 0, nil // keep the running strategy
	}
	if err != nil {
		return false, 0, err
	}
	if err := validate.Strategy(cand, s.cluster, validate.Options{SkipMemory: true}); err != nil {
		return false, 0, err
	}
	if cand.Predicted >= latest {
		s.curMeasured = latest
		return false, 0, nil
	}
	next := s.candidateActive(cand)
	if err := s.activate(); err != nil {
		return false, 0, err
	}
	charged := s.restartCost()
	s.advanceTimeline(charged)
	m, oom, err := s.profile(next)
	if err != nil {
		return false, charged, err
	}
	charged += m * time.Duration(s.cfg.ProfileIters)
	if oom != nil || m > latest {
		if err := s.rollback(); err != nil {
			return false, charged, err
		}
		charged += s.restartCost()
		s.advanceTimeline(s.restartCost())
		return false, charged, nil
	}
	s.cur = next
	s.curMeasured = m
	return true, charged, nil
}

// advanceTimeline charges off-iteration simulated time (restart cycles,
// backoff) to the executor's training-timeline clock, when the backend keeps
// one.
func (s *Session) advanceTimeline(d time.Duration) {
	if deg, ok := s.exec.(runtime.DegradableExecutor); ok {
		deg.Advance(d)
	}
}

// candidateActive packages a computed strategy as the would-be active
// state: the calculator's artifact stamped with this session's provenance
// (cluster shape and the hash of the cost-model snapshot that justified
// it), plus the materialized graph.
func (s *Session) candidateActive(cand *core.Strategy) active {
	art := cand.Artifact
	art.Provenance = s.provenance("fastt")
	return active{graph: cand.Graph, art: &art}
}

// provenance describes this session's deployment context.
func (s *Session) provenance(origin string) strategy.Provenance {
	prov := strategy.Provenance{
		Origin:  origin,
		Cluster: strategy.ClusterShapeOf(s.cluster),
	}
	if hash, err := strategy.HashJSON(s.costs.WriteJSON); err == nil {
		prov.CostHash = hash
	}
	return prov
}

// compute invokes the strategy calculator — the configured Strategist (the
// service client path) or the in-process core — on the base graph with the
// learned cost models.
func (s *Session) compute(ctx context.Context) (*core.Strategy, error) {
	return s.computeSeeded(ctx, s.cfg.Sched.Seed)
}

// computeSeeded is compute with an explicit warm-start seed overriding any
// session-configured one. The recovery and elastic-grow recomputes pass the
// running artifact here: it is a feasible, near-optimal strategy for the
// same graph, and its evaluated makespan prunes most of the recompute's
// candidate work (core.Options.Seed).
func (s *Session) computeSeeded(ctx context.Context, seed *strategy.Artifact) (*core.Strategy, error) {
	opts := s.cfg.Sched
	opts.Seed = seed
	if s.cfg.DisableSplitting {
		return core.ComputePlacementOnlyCtx(ctx, s.base, s.cluster, s.costs, opts)
	}
	if s.cfg.Strategist != nil {
		return s.cfg.Strategist(ctx, s.base, s.cluster, s.costs, opts)
	}
	return core.ComputeStrategyCtx(ctx, s.base, s.cluster, s.costs, opts)
}

// seedArtifact returns the running strategy as a warm-start seed for a
// recompute, or nil when there is none or it belongs to a different base
// graph (it never should; the check keeps a violated invariant from turning
// into a failed recovery).
func (s *Session) seedArtifact() *strategy.Artifact {
	if s.cur.art == nil || s.cur.art.Fingerprint != strategy.Fingerprint(s.base) {
		return nil
	}
	return s.cur.art
}

// startStrategy picks data parallelism when it executes without OOM, and
// memory-balanced model parallelism otherwise.
func (s *Session) startStrategy() (*strategy.Artifact, error) {
	if place, err := placement.DataParallel(s.base, s.cluster); err == nil {
		art := strategy.New(s.base, place, nil, nil, 0, s.provenance("data-parallel"))
		if _, err := s.exec.Run(s.base, art, s.runConfig()); err == nil {
			return art, nil
		} else {
			var oom *runtime.OOMError
			if !errors.As(err, &oom) {
				return nil, fmt.Errorf("start strategy: %w", err)
			}
		}
	}
	place, err := placement.ModelParallel(s.base, s.cluster, s.cfg.Memory)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoFeasibleStart, err)
	}
	art := strategy.New(s.base, place, nil, nil, 0, s.provenance("model-parallel"))
	if _, err := s.exec.Run(s.base, art, s.runConfig()); err != nil {
		return nil, fmt.Errorf("%w: model parallel: %v", ErrNoFeasibleStart, err)
	}
	return art, nil
}

func (s *Session) runConfig() runtime.Config {
	return runtime.Config{
		Memory:       s.cfg.Memory,
		Jitter:       s.cfg.Jitter,
		Seed:         s.nextSeed(),
		EnforceOrder: !s.cfg.DisableOrderEnforcement,
	}
}

func (s *Session) nextSeed() int64 {
	s.seed++
	return s.seed
}

func (s *Session) runOnce(a active) (*runtime.Result, error) {
	return s.exec.Run(a.graph, a.art, s.runConfig())
}

// profile runs ProfileIters iterations of the strategy, feeding the cost
// models from the spans and transfers (the RunMetadata path), and returns
// the mean iteration time. An OOM is reported separately so the caller can
// roll back instead of failing.
func (s *Session) profile(a active) (time.Duration, *runtime.OOMError, error) {
	var total time.Duration
	for i := 0; i < s.cfg.ProfileIters; i++ {
		res, err := s.runOnce(a)
		if err != nil {
			var oom *runtime.OOMError
			if errors.As(err, &oom) {
				return 0, oom, nil
			}
			return 0, nil, err
		}
		s.observe(a.graph, res)
		total += res.Makespan
	}
	return total / time.Duration(s.cfg.ProfileIters), nil, nil
}

// observe feeds one iteration's profile into the cost models.
func (s *Session) observe(g *graph.Graph, res *runtime.Result) {
	for _, span := range res.Spans {
		s.costs.Comp.Observe(g.Op(span.Op).Name, span.Device, span.End-span.Start)
	}
	for _, tr := range res.Transfers {
		s.costs.Link.Observe(tr.From, tr.To, tr.Bytes, tr.End-tr.Start)
	}
}

// activate checkpoints the current state — the full strategy artifact,
// execution order included — so a rollback can restore it; the caller swaps
// in the new strategy only after a successful profile.
func (s *Session) activate() error {
	snap := checkpoint.Snapshot{
		Step:       s.step,
		ParamBytes: s.cur.graph.ComputeStats().ParamBytes,
		Artifact:   *s.cur.art,
	}
	return s.store.Save(snap)
}

// rollback restores the checkpointed strategy from the store: the snapshot
// artifact is decoded, its graph re-materialized, and the pair installed as
// the active strategy — the restore path a real checkpoint/restart takes,
// rather than trusting the in-memory state to still match the checkpoint.
func (s *Session) rollback() error {
	snap, err := s.store.Restore()
	if err != nil {
		return fmt.Errorf("restore checkpoint: %w", err)
	}
	g, err := snap.Artifact.Materialize(s.base)
	if err != nil {
		return fmt.Errorf("materialize checkpointed strategy: %w", err)
	}
	s.cur = active{graph: g, art: &snap.Artifact}
	return nil
}

func (s *Session) restartCost() time.Duration {
	return s.ckCost.RestartCost(s.cur.graph.ComputeStats().ParamBytes)
}
