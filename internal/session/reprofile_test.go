package session

import (
	"testing"
)

func TestRunPeriodicReprofilingCounts(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 13, MaxRounds: 1, ReprofileEvery: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	stats, err := s.Run(9)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Reprofiles != 3 {
		t.Errorf("Reprofiles = %d, want 3", stats.Reprofiles)
	}
	// The hardware did not change: no drift, no recomputation.
	if stats.Recomputed != 0 {
		t.Errorf("Recomputed = %d on stable hardware, want 0", stats.Recomputed)
	}
}

func TestRunDetectsHardwareDrift(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 17, MaxRounds: 1, ReprofileEvery: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	before, err := s.Run(2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if before.Recomputed != 0 {
		t.Fatalf("drift before hardware change: %d", before.Recomputed)
	}

	// The "hardware" degrades mid-training: device 1 loses two thirds of
	// its throughput (thermal throttling, a noisy neighbour...). The
	// periodic profiler must notice the drift; with the cluster now
	// asymmetric, the recomputed strategy may or may not beat the running
	// one, but the check itself must fire.
	c.Device(1).PeakFLOPS /= 3
	c.Device(1).MemBandwidth /= 3
	after, err := s.Run(6)
	if err != nil {
		t.Fatalf("Run after drift: %v", err)
	}
	if after.Reprofiles == 0 {
		t.Fatal("no reprofiling checks performed")
	}
	if after.AvgIter <= before.AvgIter {
		t.Errorf("degraded hardware did not slow training: %v vs %v",
			after.AvgIter, before.AvgIter)
	}
}

func TestDriftedThresholds(t *testing.T) {
	c := cluster2(t)
	g := dpTrainGraph(t, 2, 64)
	s, err := New(c, simExec(c), g, Config{Seed: 19, MaxRounds: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := s.Bootstrap(); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	res, err := s.runOnce(s.cur)
	if err != nil {
		t.Fatalf("runOnce: %v", err)
	}
	if s.drifted(res) {
		t.Error("stable hardware reported as drifted")
	}
}
