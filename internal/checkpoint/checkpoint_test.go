package checkpoint

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"fastt/internal/graph"
	"fastt/internal/strategy"
)

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	snap := Snapshot{
		Step:       42,
		ParamBytes: 1 << 30,
		Artifact: strategy.Artifact{
			SchemaVersion: strategy.SchemaVersion,
			Fingerprint:   "deadbeefdeadbeefdeadbeefdeadbeef",
			Placement:     []int{0, 1, 0},
			Order:         []int{2, 0, 1},
			Splits: []graph.SplitDecision{
				{OpName: "conv1_2", Dim: graph.DimBatch, N: 4},
			},
			Predicted: 17 * time.Millisecond,
			Provenance: strategy.Provenance{
				Model:    "LeNet",
				Origin:   "fastt",
				Cluster:  strategy.ClusterShape{Servers: 1, GPUsPerServer: 2},
				CostHash: "cafef00dcafef00dcafef00dcafef00d",
			},
		},
	}
	if err := s.Save(snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := s.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got.Step != 42 || got.ParamBytes != 1<<30 {
		t.Errorf("Restore = %+v", got)
	}
	// The restored snapshot must reproduce the saved strategy exactly —
	// execution order and priorities included, not just the placement.
	if !reflect.DeepEqual(got.Artifact, snap.Artifact) {
		t.Errorf("Artifact round trip:\n got %+v\nwant %+v", got.Artifact, snap.Artifact)
	}
	if !reflect.DeepEqual(got.Artifact.PriorityIndex(), snap.Artifact.PriorityIndex()) {
		t.Errorf("PriorityIndex round trip: got %v, want %v",
			got.Artifact.PriorityIndex(), snap.Artifact.PriorityIndex())
	}
}

func TestStoreEmptyRestore(t *testing.T) {
	s := NewStore()
	if _, err := s.Restore(); !errors.Is(err, ErrNoSnapshot) {
		t.Errorf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestStoreOverwrite(t *testing.T) {
	s := NewStore()
	if err := s.Save(Snapshot{Step: 1}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Save(Snapshot{Step: 2}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := s.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got.Step != 2 {
		t.Errorf("Step = %d, want latest 2", got.Step)
	}
}

func TestRestartCostScalesWithParams(t *testing.T) {
	cm := DefaultCostModel()
	small := cm.RestartCost(1 << 20)
	big := cm.RestartCost(1 << 30)
	if big <= small {
		t.Errorf("restart cost not increasing: small=%v big=%v", small, big)
	}
	if small < cm.SessionStartup {
		t.Errorf("restart cost %v below session startup %v", small, cm.SessionStartup)
	}
	// 1 GiB at 2 GB/s, twice (write + read) ~= 1.07s on top of startup.
	io := big - cm.SessionStartup
	if io < 900*time.Millisecond || io > 1300*time.Millisecond {
		t.Errorf("1 GiB IO cost = %v, want ~1.1s", io)
	}
}
