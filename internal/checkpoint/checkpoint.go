// Package checkpoint implements the checkpoint/restart substrate FastT uses
// to activate a new strategy: TensorFlow 1.x cannot rewrite a graph inside
// a running session, so FastT checkpoints the model parameters, rebuilds
// the graph with the new placement/splits, and restores (Sec. 4). This
// package provides the snapshot encoding and a cost model for the restart
// overhead the training timeline is charged with.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"fastt/internal/strategy"
)

// ErrNoSnapshot is returned when restoring from an empty store.
var ErrNoSnapshot = errors.New("no snapshot saved")

// Snapshot captures everything needed to resume training under a new
// strategy: the full strategy artifact (placement, execution order, split
// list, provenance) and the parameter state. Parameter contents are
// represented by their size (the simulator has no real weights), which is
// what the restart cost depends on. Embedding the artifact — rather than
// loose placement/order/split fields — means a restore reproduces exactly
// what was activated, execution order included.
type Snapshot struct {
	Step       int               `json:"step"`
	ParamBytes int64             `json:"paramBytes"`
	Artifact   strategy.Artifact `json:"artifact"`
}

// Store holds snapshots in memory with JSON round-tripping, verifying the
// snapshot encodes cleanly (the on-disk format of a real deployment).
// Store is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	blob []byte
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Save encodes and retains the snapshot.
func (s *Store) Save(snap Snapshot) error {
	blob, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blob = blob
	return nil
}

// Restore decodes the most recent snapshot.
func (s *Store) Restore() (Snapshot, error) {
	s.mu.Lock()
	blob := s.blob
	s.mu.Unlock()
	if blob == nil {
		return Snapshot{}, ErrNoSnapshot
	}
	var snap Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("decode snapshot: %w", err)
	}
	return snap, nil
}

// CostModel prices a checkpoint/restart cycle.
type CostModel struct {
	// SessionStartup is the fixed cost of tearing down and rebuilding the
	// training session (graph construction, device initialization).
	SessionStartup time.Duration
	// DiskBandwidth is the sustained checkpoint read/write rate in
	// bytes/second.
	DiskBandwidth float64
}

// DefaultCostModel reflects a TF 1.14 session restart on the paper's
// testbed: ~10 s of session startup and a ~2 GB/s NVMe checkpoint path.
func DefaultCostModel() CostModel {
	return CostModel{
		SessionStartup: 10 * time.Second,
		DiskBandwidth:  2e9,
	}
}

// RestartCost returns the simulated time to checkpoint paramBytes, restart
// the session, and restore: write + startup + read.
func (c CostModel) RestartCost(paramBytes int64) time.Duration {
	io := 2 * float64(paramBytes) / c.DiskBandwidth
	return c.SessionStartup + time.Duration(io*float64(time.Second))
}
