package device_test

import (
	"bytes"
	"testing"

	"fastt/internal/device"
)

// FuzzReadSpec asserts the cluster-spec decoder's contract on arbitrary
// bytes: it never panics; anything it accepts serializes to a canonical form
// that re-reads and re-writes identically; and the accepted spec
// deterministically materializes the same cluster twice (NewHeterogeneous
// has no hidden iteration-order dependence).
func FuzzReadSpec(f *testing.F) {
	f.Add([]byte(`{"servers":[{"rack":0,"interconnect":"nvlink","gpus":["V100","V100"]}]}`))
	f.Add([]byte(`{"servers":[` +
		`{"rack":0,"interconnect":"nvlink","gpus":["V100","V100","V100","V100"]},` +
		`{"rack":1,"interconnect":"pcie","gpus":["T4","T4"]}]}`))
	f.Add([]byte(`{"servers":[{"gpus":["A100"]}],` +
		`"classes":{"H9":{"memoryBytes":1024,"peakFLOPS":1e12,"memBandwidthBps":1e9}},` +
		`"links":{"nvlink":{"bandwidthBps":9e9,"latencyS":1e-6}},` +
		`"overrides":[{"from":0,"to":0,"link":{"bandwidthBps":1,"latencyS":0}}]}`))
	f.Add([]byte(`{"servers":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := device.ReadSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := s.WriteJSON(&first); err != nil {
			t.Fatalf("accepted spec does not serialize: %v", err)
		}
		s2, err := device.ReadSpec(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := s2.WriteJSON(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip is not canonical:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
		a, err := device.NewHeterogeneous(s)
		if err != nil {
			t.Fatalf("accepted spec does not materialize: %v", err)
		}
		b, err := device.NewHeterogeneous(s2)
		if err != nil {
			t.Fatalf("round-tripped spec does not materialize: %v", err)
		}
		if a.NumDevices() != b.NumDevices() || a.Servers() != b.Servers() {
			t.Fatalf("materialization differs: %d/%d devices, %d/%d servers",
				a.NumDevices(), b.NumDevices(), a.Servers(), b.Servers())
		}
		for _, d := range a.Devices() {
			e := b.Device(d.ID)
			if d.Name != e.Name || d.ClassName() != e.ClassName() ||
				d.Server != e.Server || d.Rack != e.Rack {
				t.Fatalf("device %d differs across materializations: %+v vs %+v", d.ID, d, e)
			}
		}
		for i := 0; i < a.NumDevices(); i++ {
			for j := 0; j < a.NumDevices(); j++ {
				if i != j && a.Link(i, j) != b.Link(i, j) {
					t.Fatalf("link %d->%d differs: %+v vs %+v", i, j, a.Link(i, j), b.Link(i, j))
				}
			}
		}
	})
}
