package device

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Cluster specs: the JSON description of a (possibly mixed) fleet that
// `fastt -cluster mix.json` loads. A spec lists servers — each with a rack,
// an intra-server interconnect kind, and the class of every GPU it hosts —
// plus optional custom class definitions, link-tier overrides, and explicit
// per-pair link overrides for asymmetric topologies the tiers cannot
// express.
//
// Example:
//
//	{
//	  "servers": [
//	    {"rack": 0, "interconnect": "nvlink", "gpus": ["V100","V100","V100","V100"]},
//	    {"rack": 1, "interconnect": "pcie",   "gpus": ["T4","T4","T4","T4"]}
//	  ]
//	}
//
// ReadSpec validates and canonicalizes; WriteJSON emits the canonical form
// (a fixed field order with defaults made explicit), so read → write →
// read is the identity — the fuzz target's round-trip property.

// SpecLink is a link in spec form.
type SpecLink struct {
	// BandwidthBps is the sustained transfer rate in bytes/s.
	BandwidthBps float64 `json:"bandwidthBps"`
	// LatencyS is the fixed per-transfer setup time in seconds.
	LatencyS float64 `json:"latencyS"`
}

func (l SpecLink) link() Link { return Link{Bandwidth: l.BandwidthBps, Latency: l.LatencyS} }

func specLinkOf(l Link) *SpecLink {
	return &SpecLink{BandwidthBps: l.Bandwidth, LatencyS: l.Latency}
}

func (l SpecLink) validate(what string) error {
	if !(l.BandwidthBps > 0) { // also rejects NaN
		return fmt.Errorf("%s: bandwidth %g must be positive", what, l.BandwidthBps)
	}
	if !(l.LatencyS >= 0) {
		return fmt.Errorf("%s: latency %g must be non-negative", what, l.LatencyS)
	}
	return nil
}

// SpecServer is one machine of the fleet.
type SpecServer struct {
	// Rack indexes the rack hosting the server.
	Rack int `json:"rack"`
	// Interconnect is the intra-server link kind ("nvlink" or "pcie");
	// empty canonicalizes to "nvlink".
	Interconnect string `json:"interconnect"`
	// GPUs lists the class name of every GPU on the server, in device
	// order.
	GPUs []string `json:"gpus"`
}

// SpecClass defines a custom device class (or overrides a built-in one).
type SpecClass struct {
	MemoryBytes     int64   `json:"memoryBytes"`
	PeakFLOPS       float64 `json:"peakFLOPS"`
	MemBandwidthBps float64 `json:"memBandwidthBps"`
	// SaturationFLOPs defaults to the V100 knee when zero.
	SaturationFLOPs float64 `json:"saturationFLOPs,omitempty"`
}

// SpecLinks overrides individual tiers of the default link policy.
type SpecLinks struct {
	NVLink    *SpecLink `json:"nvlink,omitempty"`
	PCIe      *SpecLink `json:"pcie,omitempty"`
	SameRack  *SpecLink `json:"sameRack,omitempty"`
	CrossRack *SpecLink `json:"crossRack,omitempty"`
}

// SpecOverride pins the link of one ordered device pair, overriding the
// tier-derived value — the escape hatch for asymmetric topologies
// (directional congestion, a mis-cabled host bridge).
type SpecOverride struct {
	From int      `json:"from"`
	To   int      `json:"to"`
	Link SpecLink `json:"link"`
}

// Spec is the JSON cluster description.
type Spec struct {
	Servers   []SpecServer         `json:"servers"`
	Classes   map[string]SpecClass `json:"classes,omitempty"`
	Links     *SpecLinks           `json:"links,omitempty"`
	Overrides []SpecOverride       `json:"overrides,omitempty"`
}

// NumDevices returns the total GPU count of the spec.
func (s *Spec) NumDevices() int {
	n := 0
	for _, srv := range s.Servers {
		n += len(srv.GPUs)
	}
	return n
}

// classFor resolves a class name against the spec's custom classes first,
// then the built-in presets.
func (s *Spec) classFor(name string) (Class, error) {
	if sc, ok := s.Classes[name]; ok {
		c := Class{
			Name:            name,
			MemoryBytes:     sc.MemoryBytes,
			PeakFLOPS:       sc.PeakFLOPS,
			MemBandwidth:    sc.MemBandwidthBps,
			SaturationFLOPs: sc.SaturationFLOPs,
		}
		if c.SaturationFLOPs == 0 {
			c.SaturationFLOPs = defaultSaturationFLOPs
		}
		return c, c.validate()
	}
	if c, ok := ClassByName(name); ok {
		return c, nil
	}
	return Class{}, fmt.Errorf("unknown device class %q", name)
}

// validate checks the spec and fills canonical defaults in place.
func (s *Spec) validate() error {
	if len(s.Servers) == 0 {
		return fmt.Errorf("spec: %w", ErrNoDevices)
	}
	for i := range s.Servers {
		srv := &s.Servers[i]
		if srv.Rack < 0 {
			return fmt.Errorf("spec: server %d: negative rack %d", i, srv.Rack)
		}
		switch srv.Interconnect {
		case "":
			srv.Interconnect = InterconnectNVLink
		case InterconnectNVLink, InterconnectPCIe:
		default:
			return fmt.Errorf("spec: server %d: unknown interconnect %q", i, srv.Interconnect)
		}
		if len(srv.GPUs) == 0 {
			return fmt.Errorf("spec: server %d hosts no GPUs", i)
		}
		for _, class := range srv.GPUs {
			if _, err := s.classFor(class); err != nil {
				return fmt.Errorf("spec: server %d: %w", i, err)
			}
		}
	}
	for name, sc := range s.Classes {
		c := Class{Name: name, MemoryBytes: sc.MemoryBytes, PeakFLOPS: sc.PeakFLOPS,
			MemBandwidth: sc.MemBandwidthBps, SaturationFLOPs: sc.SaturationFLOPs}
		if c.SaturationFLOPs == 0 {
			c.SaturationFLOPs = defaultSaturationFLOPs
		}
		if err := c.validate(); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if s.Links != nil {
		for _, tier := range []struct {
			name string
			l    *SpecLink
		}{
			{"nvlink", s.Links.NVLink},
			{"pcie", s.Links.PCIe},
			{"sameRack", s.Links.SameRack},
			{"crossRack", s.Links.CrossRack},
		} {
			if tier.l == nil {
				continue
			}
			if err := tier.l.validate("spec: links." + tier.name); err != nil {
				return err
			}
		}
	}
	n := s.NumDevices()
	for i, o := range s.Overrides {
		if o.From < 0 || o.From >= n || o.To < 0 || o.To >= n || o.From == o.To {
			return fmt.Errorf("spec: override %d: pair %d->%d outside %d devices", i, o.From, o.To, n)
		}
		if err := o.Link.validate(fmt.Sprintf("spec: override %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// policy resolves the spec's link tiers over the defaults.
func (s *Spec) policy() LinkPolicy {
	p := DefaultLinkPolicy()
	if s.Links == nil {
		return p
	}
	if s.Links.NVLink != nil {
		p.NVLink = s.Links.NVLink.link()
	}
	if s.Links.PCIe != nil {
		p.PCIe = s.Links.PCIe.link()
	}
	if s.Links.SameRack != nil {
		p.SameRack = s.Links.SameRack.link()
	}
	if s.Links.CrossRack != nil {
		p.CrossRack = s.Links.CrossRack.link()
	}
	return p
}

// ReadSpec decodes, validates and canonicalizes a cluster spec. Unknown
// fields are rejected so typos fail loudly instead of silently describing a
// different fleet.
func ReadSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decode cluster spec: %w", err)
	}
	// A second document means trailing garbage (and a canonical form that
	// would not round-trip); reject it.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("decode cluster spec: trailing data after spec")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ReadSpecFile loads a cluster spec from a file.
func ReadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteJSON emits the spec in canonical form: validated, defaults explicit,
// custom classes in sorted name order. ReadSpec(WriteJSON(s)) reproduces s.
func (s *Spec) WriteJSON(w io.Writer) error {
	if err := s.validate(); err != nil {
		return err
	}
	// Marshal through an ordered shadow document so map iteration order
	// cannot leak into the bytes.
	type namedClass struct {
		Name  string
		Class SpecClass
	}
	var classes []namedClass
	for name, c := range s.Classes {
		if c.SaturationFLOPs == 0 {
			c.SaturationFLOPs = defaultSaturationFLOPs
		}
		classes = append(classes, namedClass{Name: name, Class: c})
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })

	var buf bytes.Buffer
	buf.WriteString("{\n  \"servers\": [")
	for i, srv := range s.Servers {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString("\n    ")
		b, err := json.Marshal(srv)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	buf.WriteString("\n  ]")
	if len(classes) > 0 {
		buf.WriteString(",\n  \"classes\": {")
		for i, nc := range classes {
			if i > 0 {
				buf.WriteByte(',')
			}
			name, err := json.Marshal(nc.Name)
			if err != nil {
				return err
			}
			b, err := json.Marshal(nc.Class)
			if err != nil {
				return err
			}
			fmt.Fprintf(&buf, "\n    %s: %s", name, b)
		}
		buf.WriteString("\n  }")
	}
	if s.Links != nil {
		b, err := json.Marshal(s.Links)
		if err != nil {
			return err
		}
		// An all-nil Links canonicalizes away entirely.
		if string(b) != "{}" {
			fmt.Fprintf(&buf, ",\n  \"links\": %s", b)
		}
	}
	if len(s.Overrides) > 0 {
		buf.WriteString(",\n  \"overrides\": [")
		for i, o := range s.Overrides {
			if i > 0 {
				buf.WriteByte(',')
			}
			b, err := json.Marshal(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(&buf, "\n    %s", b)
		}
		buf.WriteString("\n  ]")
	}
	buf.WriteString("\n}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// NewHeterogeneous materializes the cluster a spec describes: devices in
// spec order (server by server), classed constants, and a link table built
// from the tiered policy plus any per-pair overrides.
func NewHeterogeneous(s *Spec) (*Cluster, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := s.NumDevices()
	c := &Cluster{
		devices: make([]*Device, 0, n),
		links:   make([][]Link, n),
		servers: make(map[int]serverInfo, len(s.Servers)),
		policy:  s.policy(),
	}
	for si, srv := range s.Servers {
		c.servers[si] = serverInfo{rack: srv.Rack, interconnect: srv.Interconnect}
		for g, className := range srv.GPUs {
			class, err := s.classFor(className)
			if err != nil {
				return nil, err // unreachable after validate
			}
			id := len(c.devices)
			name := fmt.Sprintf("server%d/gpu%d", si, g)
			c.devices = append(c.devices, class.newDevice(id, name, si, srv.Rack))
		}
	}
	for i := 0; i < n; i++ {
		c.links[i] = make([]Link, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			c.links[i][j] = c.policy.linkFor(c.devices[i], c.devices[j], c.servers)
		}
	}
	for _, o := range s.Overrides {
		c.links[o.From][o.To] = o.Link.link()
	}
	return c, nil
}
