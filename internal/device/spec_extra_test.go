package device_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fastt/internal/device"
)

// TestReadSpecFileRoundTrip: the file loader behind `fastt -cluster` — a
// spec with custom classes, tier overrides and a per-pair override loads,
// materializes, and reports its path on error.
func TestReadSpecFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mix.json")
	spec := &device.Spec{
		Servers: []device.SpecServer{
			{Rack: 0, Interconnect: device.InterconnectNVLink, GPUs: []string{"V100", "H9"}},
			{Rack: 1, Interconnect: device.InterconnectPCIe, GPUs: []string{"T4"}},
		},
		Classes: map[string]device.SpecClass{
			"H9": {MemoryBytes: 8 * device.GiB, PeakFLOPS: 5e12, MemBandwidthBps: 4e11},
		},
		Links: &device.SpecLinks{
			CrossRack: &device.SpecLink{BandwidthBps: 2e9, LatencyS: 100e-6},
		},
		Overrides: []device.SpecOverride{
			{From: 2, To: 0, Link: device.SpecLink{BandwidthBps: 0.5e9, LatencyS: 200e-6}},
		},
	}
	var buf bytes.Buffer
	if err := spec.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := device.ReadSpecFile(path)
	if err != nil {
		t.Fatalf("ReadSpecFile: %v", err)
	}
	c, err := device.NewHeterogeneous(loaded)
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	if c.NumDevices() != 3 || c.Servers() != 2 {
		t.Fatalf("materialized %d devices / %d servers, want 3 / 2", c.NumDevices(), c.Servers())
	}
	if got := c.Device(1).ClassName(); got != "H9" {
		t.Errorf("device 1 class = %q, want the custom H9", got)
	}
	// The tier override shapes cross-rack pairs; the per-pair override wins
	// on its one ordered pair only.
	crossRack := device.Link{Bandwidth: 2e9, Latency: 100e-6}
	if got := c.Link(0, 2); got != crossRack {
		t.Errorf("cross-rack link = %+v, want overridden tier %+v", got, crossRack)
	}
	pair := device.Link{Bandwidth: 0.5e9, Latency: 200e-6}
	if got := c.Link(2, 0); got != pair {
		t.Errorf("overridden pair 2->0 = %+v, want %+v", got, pair)
	}

	if _, err := device.ReadSpecFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("ReadSpecFile on a missing path did not fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"servers":[{"gpus":["NoSuchGPU"]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := device.ReadSpecFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("invalid spec error %v does not name the file", err)
	}
}

// TestSpecValidationErrors: each malformed spec is rejected with its own
// diagnostic rather than materializing a fleet that was not described.
func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty servers", `{"servers":[]}`},
		{"negative rack", `{"servers":[{"rack":-1,"gpus":["V100"]}]}`},
		{"unknown interconnect", `{"servers":[{"interconnect":"token-ring","gpus":["V100"]}]}`},
		{"server without gpus", `{"servers":[{"rack":0,"gpus":[]}]}`},
		{"unknown class", `{"servers":[{"gpus":["Z9000"]}]}`},
		{"bad custom class", `{"servers":[{"gpus":["X"]}],"classes":{"X":{"memoryBytes":0,"peakFLOPS":1,"memBandwidthBps":1}}}`},
		{"bad tier", `{"servers":[{"gpus":["V100"]}],"links":{"nvlink":{"bandwidthBps":-1,"latencyS":0}}}`},
		{"override out of range", `{"servers":[{"gpus":["V100"]}],"overrides":[{"from":0,"to":5,"link":{"bandwidthBps":1,"latencyS":0}}]}`},
		{"self override", `{"servers":[{"gpus":["V100"]}],"overrides":[{"from":0,"to":0,"link":{"bandwidthBps":1,"latencyS":0}}]}`},
		{"unknown field", `{"servers":[{"gpus":["V100"]}],"gpusPerServer":4}`},
		{"trailing data", `{"servers":[{"gpus":["V100"]}]} {}`},
	}
	for _, tc := range cases {
		if _, err := device.ReadSpec(strings.NewReader(tc.json)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.json)
		}
	}
}

// TestClassNamesSorted: the built-in presets list is stable and sorted (CLI
// help and error messages rely on it).
func TestClassNamesSorted(t *testing.T) {
	names := device.ClassNames()
	want := []string{device.ClassA100, device.ClassT4, device.ClassV100}
	if len(names) != len(want) {
		t.Fatalf("ClassNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ClassNames() = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		if _, ok := device.ClassByName(name); !ok {
			t.Errorf("listed class %q not resolvable", name)
		}
	}
}
