package device

import (
	"errors"
	"testing"
)

func TestNewClusterShape(t *testing.T) {
	c, err := NewCluster(2, 4)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if c.NumDevices() != 8 {
		t.Errorf("NumDevices = %d, want 8", c.NumDevices())
	}
	if c.Servers() != 2 {
		t.Errorf("Servers = %d, want 2", c.Servers())
	}
	if got := c.Device(5).Server; got != 1 {
		t.Errorf("device 5 server = %d, want 1", got)
	}
	if got := c.Device(3).Server; got != 0 {
		t.Errorf("device 3 server = %d, want 0", got)
	}
}

func TestNewClusterRejectsEmpty(t *testing.T) {
	for _, tc := range [][2]int{{0, 4}, {1, 0}, {0, 0}} {
		if _, err := NewCluster(tc[0], tc[1]); !errors.Is(err, ErrNoDevices) {
			t.Errorf("NewCluster(%d,%d) err = %v, want ErrNoDevices", tc[0], tc[1], err)
		}
	}
}

func TestLinkSelection(t *testing.T) {
	c, err := NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	intra := c.Link(0, 1)
	inter := c.Link(0, 2)
	if intra.Bandwidth <= inter.Bandwidth {
		t.Errorf("intra bandwidth %g should exceed inter bandwidth %g",
			intra.Bandwidth, inter.Bandwidth)
	}
	if intra.Latency >= inter.Latency {
		t.Errorf("intra latency %g should be below inter latency %g",
			intra.Latency, inter.Latency)
	}
}

func TestSlowestLinkMultiServer(t *testing.T) {
	c, err := NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	slowest := c.SlowestLink()
	if slowest.Bandwidth != c.Link(0, 2).Bandwidth {
		t.Errorf("slowest link bandwidth = %g, want the inter-server link %g",
			slowest.Bandwidth, c.Link(0, 2).Bandwidth)
	}
}

func TestSlowestLinkSingleDevice(t *testing.T) {
	c, err := SingleServer(1)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if l := c.SlowestLink(); l.Bandwidth != 0 {
		t.Errorf("single-device slowest link = %+v, want zero", l)
	}
}

func TestOptions(t *testing.T) {
	c, err := SingleServer(2,
		WithMemory(8*GiB),
		WithPeakFLOPS(1e12),
		WithIntraLink(Link{Bandwidth: 5e9, Latency: 1e-6}),
	)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if c.Device(0).MemoryBytes != 8*GiB {
		t.Errorf("memory = %d, want %d", c.Device(0).MemoryBytes, 8*GiB)
	}
	if c.Device(1).PeakFLOPS != 1e12 {
		t.Errorf("peak = %g, want 1e12", c.Device(1).PeakFLOPS)
	}
	if got := c.Link(0, 1).Bandwidth; got != 5e9 {
		t.Errorf("intra bandwidth = %g, want 5e9", got)
	}
}

func TestTotalMemory(t *testing.T) {
	c, err := NewCluster(1, 4, WithMemory(2*GiB))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if got := c.TotalMemory(); got != 8*GiB {
		t.Errorf("TotalMemory = %d, want %d", got, 8*GiB)
	}
}

func TestDeviceNames(t *testing.T) {
	c, err := NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	want := []string{"server0/gpu0", "server0/gpu1", "server1/gpu0", "server1/gpu1"}
	for i, w := range want {
		if got := c.Device(i).Name; got != w {
			t.Errorf("device %d name = %q, want %q", i, got, w)
		}
	}
}
