package device

import (
	"testing"
)

// Regression tests for the uniform-cluster assumptions that Without and Grow
// expose on irregular clusters: server counting, name preservation and
// reuse, the renumber contract, and SlowestLink under per-pair asymmetry.

// mixedTestSpec is a small irregular fleet: an NVLink V100 pair in rack 0
// and a PCIe T4 triple in rack 1.
func mixedTestSpec() *Spec {
	return &Spec{Servers: []SpecServer{
		{Rack: 0, Interconnect: InterconnectNVLink, GPUs: []string{"V100", "V100"}},
		{Rack: 1, Interconnect: InterconnectPCIe, GPUs: []string{"T4", "T4", "T4"}},
	}}
}

// TestServersAfterWithoutEmptiesServer: removing every device of a server
// must shrink Servers() — it counts populated servers, not the construction
// topology.
func TestServersAfterWithoutEmptiesServer(t *testing.T) {
	c, err := NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Remove both server-1 devices (IDs 2 and 3); descending order so the
	// first removal does not shift the second target.
	c, _, err = c.Without(3)
	if err != nil {
		t.Fatalf("Without(3): %v", err)
	}
	c, _, err = c.Without(2)
	if err != nil {
		t.Fatalf("Without(2): %v", err)
	}
	if got := c.Servers(); got != 1 {
		t.Errorf("Servers() = %d after emptying server 1, want 1", got)
	}
	want := []string{"server0/gpu0", "server0/gpu1"}
	for i, w := range want {
		if got := c.Device(i).Name; got != w {
			t.Errorf("survivor %d name = %q, want %q", i, got, w)
		}
	}
}

// TestWithoutRenumberContractIrregular: on a mixed-class cluster, Without
// must renumber survivors densely in original order, report -1 for the
// removed device, and carry names, classes and pairwise links through
// unchanged.
func TestWithoutRenumberContractIrregular(t *testing.T) {
	c, err := NewHeterogeneous(mixedTestSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	const failed = 2 // first T4
	next, mapping, err := c.Without(failed)
	if err != nil {
		t.Fatalf("Without: %v", err)
	}
	if mapping[failed] != -1 {
		t.Errorf("mapping[%d] = %d, want -1", failed, mapping[failed])
	}
	for old, nu := range mapping {
		if old == failed {
			continue
		}
		if nu < 0 || nu >= next.NumDevices() {
			t.Fatalf("mapping[%d] = %d outside survivors", old, nu)
		}
		od, nd := c.Device(old), next.Device(nu)
		if nd.ID != nu {
			t.Errorf("survivor %d has ID %d", nu, nd.ID)
		}
		if nd.Name != od.Name || nd.ClassName() != od.ClassName() || nd.Server != od.Server {
			t.Errorf("survivor %d = %s/%s/server%d, want %s/%s/server%d",
				nu, nd.Name, nd.ClassName(), nd.Server, od.Name, od.ClassName(), od.Server)
		}
	}
	for oldI, nuI := range mapping {
		for oldJ, nuJ := range mapping {
			if nuI < 0 || nuJ < 0 || oldI == oldJ {
				continue
			}
			if got, want := next.Link(nuI, nuJ), c.Link(oldI, oldJ); got != want {
				t.Errorf("link %d->%d = %+v, want original %d->%d %+v",
					nuI, nuJ, got, oldI, oldJ, want)
			}
		}
	}
}

// TestGrowAfterWithoutDoesNotReuseNames: Without keeps survivor names, so a
// later join must probe past them instead of handing out a name already in
// use — losing the middle GPU of a server and then growing that server must
// not mint a second "server0/gpu2".
func TestGrowAfterWithoutDoesNotReuseNames(t *testing.T) {
	c, err := SingleServer(3)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	c, _, err = c.Without(1)
	if err != nil {
		t.Fatalf("Without: %v", err)
	}
	next, joined, err := c.Grow(JoinSpec{Server: 0})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	names := make(map[string]int)
	for _, d := range next.Devices() {
		names[d.Name]++
		if names[d.Name] > 1 {
			t.Fatalf("name %q assigned to more than one device", d.Name)
		}
	}
	if joined.Name != "server0/gpu3" {
		t.Errorf("joined name = %q, want server0/gpu3 (gpu2 survived the loss)", joined.Name)
	}
	if joined.ID != next.NumDevices()-1 {
		t.Errorf("joined ID = %d, want %d", joined.ID, next.NumDevices()-1)
	}
}

// TestGrowNewServerTopology: a joiner on a brand-new server gets the next
// unused server index, the requested rack and interconnect, and link tiers
// consistent with both — cross-rack to the existing fleet, and the server's
// own interconnect to a second joiner on the same machine.
func TestGrowNewServerTopology(t *testing.T) {
	c, err := NewHeterogeneous(mixedTestSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	c, first, err := c.Grow(JoinSpec{Class: ClassT4, Server: NewServer, Rack: 2, Interconnect: InterconnectPCIe})
	if err != nil {
		t.Fatalf("Grow onto new server: %v", err)
	}
	if first.Server != 2 {
		t.Errorf("new server index = %d, want 2", first.Server)
	}
	policy := DefaultLinkPolicy()
	if got := c.Link(0, first.ID); got != policy.CrossRack {
		t.Errorf("link to rack-2 joiner = %+v, want cross-rack tier %+v", got, policy.CrossRack)
	}
	c, second, err := c.Grow(JoinSpec{Class: ClassT4, Server: first.Server})
	if err != nil {
		t.Fatalf("Grow onto joined server: %v", err)
	}
	if got := c.Link(first.ID, second.ID); got != policy.PCIe {
		t.Errorf("intra-server link on PCIe joiner machine = %+v, want %+v", got, policy.PCIe)
	}
	if c.Servers() != 3 {
		t.Errorf("Servers() = %d, want 3", c.Servers())
	}
}

// TestGrowPreservesExistingTopology: the elastic contract — existing device
// IDs, names and pairwise links are untouched by a join, so strategies
// computed for the old cluster stay deployable while the new one is
// recomputed.
func TestGrowPreservesExistingTopology(t *testing.T) {
	c, err := NewHeterogeneous(mixedTestSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	next, joined, err := c.Grow(JoinSpec{Class: ClassA100, Server: 0})
	if err != nil {
		t.Fatalf("Grow: %v", err)
	}
	if joined.ID != c.NumDevices() {
		t.Errorf("joined ID = %d, want %d", joined.ID, c.NumDevices())
	}
	for _, d := range c.Devices() {
		nd := next.Device(d.ID)
		if nd.Name != d.Name || nd.ClassName() != d.ClassName() || nd.Server != d.Server {
			t.Errorf("device %d changed: %s/%s -> %s/%s", d.ID, d.Name, d.ClassName(), nd.Name, nd.ClassName())
		}
	}
	for i := 0; i < c.NumDevices(); i++ {
		for j := 0; j < c.NumDevices(); j++ {
			if i == j {
				continue
			}
			if got, want := next.Link(i, j), c.Link(i, j); got != want {
				t.Errorf("existing link %d->%d changed: %+v -> %+v", i, j, want, got)
			}
		}
	}
}

// TestSlowestLinkAsymmetric: SlowestLink scans ordered pairs, so a
// direction-specific override (one congested uplink) must be found even when
// the reverse direction is fast.
func TestSlowestLinkAsymmetric(t *testing.T) {
	spec := mixedTestSpec()
	slow := SpecLink{BandwidthBps: 0.1e9, LatencyS: 500e-6}
	spec.Overrides = []SpecOverride{{From: 3, To: 0, Link: slow}}
	c, err := NewHeterogeneous(spec)
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	if got := c.Link(3, 0); got != slow.link() {
		t.Fatalf("override not applied: %+v", got)
	}
	if got := c.Link(0, 3); got == slow.link() {
		t.Fatal("override leaked into the reverse direction")
	}
	if got := c.SlowestLink(); got != slow.link() {
		t.Errorf("SlowestLink = %+v, want the asymmetric override %+v", got, slow.link())
	}
}
