package device

import (
	"fmt"
	"sort"
)

// Class describes a device class: the per-accelerator constants that used to
// be package-level V100 defaults. A cluster may mix classes (heterogeneous
// testbeds, or a degraded fleet backfilled with whatever hardware is free),
// and every layer above — the kernel oracle's roofline, the learned cost
// models' fallback pooling, the scheduler's per-device exec rows — reads
// these constants per device instead of assuming one global GPU type.
type Class struct {
	// Name identifies the class ("V100", "A100", "T4", or a custom name
	// defined in a cluster spec).
	Name string
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// PeakFLOPS is the peak single-precision throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is the device memory bandwidth in bytes/s.
	MemBandwidth float64
	// SaturationFLOPs is the knee of the utilization curve for this class:
	// an op with this many FLOPs reaches half of its kind's peak efficiency.
	// Bigger accelerators need bigger kernels to saturate.
	SaturationFLOPs float64
}

// Built-in class names.
const (
	ClassV100 = "V100"
	ClassA100 = "A100"
	ClassT4   = "T4"
)

// builtinClasses are the preset accelerator classes. V100 reproduces the
// package's original defaults exactly (the paper's testbed); A100 and T4
// bracket it from above and below.
var builtinClasses = map[string]Class{
	ClassV100: {
		Name:            ClassV100,
		MemoryBytes:     defaultGPUMemory,
		PeakFLOPS:       defaultPeakFLOPS,
		MemBandwidth:    defaultMemBW,
		SaturationFLOPs: defaultSaturationFLOPs,
	},
	ClassA100: {
		Name:            ClassA100,
		MemoryBytes:     40 * GiB,
		PeakFLOPS:       19.5e12, // A100 fp32
		MemBandwidth:    1555e9,  // HBM2e
		SaturationFLOPs: 6e9,
	},
	ClassT4: {
		Name:            ClassT4,
		MemoryBytes:     16 * GiB,
		PeakFLOPS:       8.1e12, // T4 fp32
		MemBandwidth:    300e9,  // GDDR6
		SaturationFLOPs: 2e9,
	},
}

// ClassByName returns a built-in class preset.
func ClassByName(name string) (Class, bool) {
	c, ok := builtinClasses[name]
	return c, ok
}

// ClassNames lists the built-in class names in sorted order.
func ClassNames() []string {
	names := make([]string, 0, len(builtinClasses))
	for name := range builtinClasses {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// validate rejects classes whose constants cannot drive the roofline model.
func (c Class) validate() error {
	if c.Name == "" {
		return fmt.Errorf("class with empty name")
	}
	if c.MemoryBytes <= 0 {
		return fmt.Errorf("class %q: memory %d must be positive", c.Name, c.MemoryBytes)
	}
	if c.PeakFLOPS <= 0 {
		return fmt.Errorf("class %q: peak FLOPS %g must be positive", c.Name, c.PeakFLOPS)
	}
	if c.MemBandwidth <= 0 {
		return fmt.Errorf("class %q: memory bandwidth %g must be positive", c.Name, c.MemBandwidth)
	}
	if c.SaturationFLOPs < 0 {
		return fmt.Errorf("class %q: saturation knee %g must be non-negative", c.Name, c.SaturationFLOPs)
	}
	return nil
}

// newDevice materializes a device of this class. The class constants are
// copied onto the device so existing per-device mutation (drift tests, the
// straggler fault) keeps working; Class keeps the label for stat pooling.
func (c Class) newDevice(id int, name string, server, rack int) *Device {
	return &Device{
		ID:              id,
		Name:            name,
		Class:           c.Name,
		MemoryBytes:     c.MemoryBytes,
		PeakFLOPS:       c.PeakFLOPS,
		MemBandwidth:    c.MemBandwidth,
		SaturationFLOPs: c.SaturationFLOPs,
		Server:          server,
		Rack:            rack,
	}
}
