// Package device describes the GPU clusters FastT schedules onto: device
// descriptors (memory capacity, compute throughput, host server) and the
// interconnect topology. The paper's testbed — servers with 8 NVIDIA V100
// GPUs each — is the homogeneous special case (NewCluster); mixed fleets are
// built from per-device classes (Class, NewHeterogeneous) with tiered links:
// NVLink or a PCIe host bridge within a server, same-rack Ethernet between
// servers, and a slower cross-rack tier between racks. Clusters also shrink
// (Without, the fault path) and grow (Grow, the elastic path) one device at
// a time.
package device

import (
	"errors"
	"fmt"
)

// Byte-size and rate constants used throughout the repo.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// ErrNoDevices is returned when a cluster would contain no devices.
var ErrNoDevices = errors.New("cluster has no devices")

// Device describes one accelerator.
type Device struct {
	// ID is the device's index within its cluster.
	ID int
	// Name is a human-readable identifier such as "server0/gpu1".
	Name string
	// Class names the device class the constants below were materialized
	// from ("V100", "T4", ...). Empty means the pre-class era default and
	// reads as V100 through ClassName. The label pools learned cost
	// statistics across same-class devices; the constants themselves live on
	// the device and may drift independently (stragglers, thermal drift).
	Class string
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// PeakFLOPS is the peak single-precision throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is the device memory bandwidth in bytes/s, which bounds
	// bandwidth-bound (elementwise) kernels.
	MemBandwidth float64
	// SaturationFLOPs is the per-class knee of the kernel utilization curve.
	// Zero means "use the oracle's configured default" — the homogeneous
	// constructors leave it zero so oracle configs keep their old meaning.
	SaturationFLOPs float64
	// Server is the index of the physical machine hosting the device.
	Server int
	// Rack is the index of the rack hosting the server. Servers in the same
	// rack share the fast Ethernet tier; cross-rack traffic pays more.
	Rack int
}

// ClassName returns the device's class label, defaulting to V100 for
// devices built before classes existed.
func (d *Device) ClassName() string {
	if d.Class == "" {
		return ClassV100
	}
	return d.Class
}

// Link describes the interconnect between an ordered device pair.
type Link struct {
	// Bandwidth is the sustained transfer rate in bytes/s.
	Bandwidth float64
	// Latency is the fixed per-transfer setup time in seconds.
	Latency float64
}

// Interconnect kinds a server can offer between its own GPUs.
const (
	// InterconnectNVLink is the fast intra-server tier (NVLink mesh).
	InterconnectNVLink = "nvlink"
	// InterconnectPCIe is the slower intra-server tier: GPU pairs that only
	// share a PCIe host bridge.
	InterconnectPCIe = "pcie"
)

// serverInfo is the per-server topology metadata the cluster keeps so links
// for joining devices (Grow) can be synthesized consistently with the ones
// built at construction time.
type serverInfo struct {
	rack         int
	interconnect string
}

// LinkPolicy is the tiered link model a cluster synthesizes its pairwise
// link table from: one intra-server tier per server interconnect kind and
// two Ethernet tiers between servers.
type LinkPolicy struct {
	// NVLink connects GPU pairs within an NVLink-equipped server.
	NVLink Link
	// PCIe connects GPU pairs within a server that only shares a PCIe host
	// bridge.
	PCIe Link
	// SameRack connects GPUs on different servers in the same rack.
	SameRack Link
	// CrossRack connects GPUs on servers in different racks.
	CrossRack Link
}

// DefaultLinkPolicy returns the testbed link tiers: NVLink and 25 GbE
// matching the paper's setup, plus PCIe and cross-rack tiers for
// heterogeneous topologies.
func DefaultLinkPolicy() LinkPolicy {
	return LinkPolicy{
		NVLink:    Link{Bandwidth: nvlinkBandwidth, Latency: nvlinkLatency},
		PCIe:      Link{Bandwidth: pcieBandwidth, Latency: pcieLatency},
		SameRack:  Link{Bandwidth: ethernetBandwidth, Latency: ethernetLatency},
		CrossRack: Link{Bandwidth: crossRackBandwidth, Latency: crossRackLatency},
	}
}

// linkFor synthesizes the tiered link between two devices hosted by the
// given servers.
func (p LinkPolicy) linkFor(a, b *Device, servers map[int]serverInfo) Link {
	if a.Server == b.Server {
		if servers[a.Server].interconnect == InterconnectPCIe {
			return p.PCIe
		}
		return p.NVLink
	}
	if a.Rack != b.Rack {
		return p.CrossRack
	}
	return p.SameRack
}

// Cluster is a set of devices plus the link table between every ordered
// pair. links[i][j] describes transfers from device i to device j; the
// diagonal is meaningless (same-device "transfers" are free). The table may
// be asymmetric and non-uniform; alongside it the cluster keeps the link
// policy and per-server metadata it was synthesized from, so a device
// joining later (Grow) gets links consistent with the original topology.
type Cluster struct {
	devices []*Device
	links   [][]Link
	servers map[int]serverInfo
	policy  LinkPolicy
}

// V100-class defaults mirroring the paper's testbed, plus the slower tiers
// heterogeneous topologies add.
const (
	defaultGPUMemory       = 16 * GiB
	defaultPeakFLOPS       = 15.7e12 // V100 fp32
	defaultMemBW           = 900e9   // V100 HBM2
	defaultSaturationFLOPs = 4e9     // kernels.DefaultConfig knee
	nvlinkBandwidth        = 22e9    // effective unidirectional NVLink
	nvlinkLatency          = 10e-6
	ethernetBandwidth      = 3e9 // 25 GbE effective
	ethernetLatency        = 50e-6
	pcieBandwidth          = 12e9 // PCIe 3.0 x16 effective
	pcieLatency            = 15e-6
	crossRackBandwidth     = 1.1e9 // 10 GbE through the spine
	crossRackLatency       = 150e-6
)

// Option customizes cluster construction.
type Option func(*config)

type config struct {
	memory    int64
	peakFLOPS float64
	memBW     float64
	intra     Link
	inter     Link
}

func defaultConfig() config {
	return config{
		memory:    defaultGPUMemory,
		peakFLOPS: defaultPeakFLOPS,
		memBW:     defaultMemBW,
		intra:     Link{Bandwidth: nvlinkBandwidth, Latency: nvlinkLatency},
		inter:     Link{Bandwidth: ethernetBandwidth, Latency: ethernetLatency},
	}
}

// WithMemory sets per-device memory capacity.
func WithMemory(bytes int64) Option {
	return func(c *config) { c.memory = bytes }
}

// WithPeakFLOPS sets per-device peak throughput.
func WithPeakFLOPS(flops float64) Option {
	return func(c *config) { c.peakFLOPS = flops }
}

// WithIntraLink overrides the same-server interconnect.
func WithIntraLink(l Link) Option {
	return func(c *config) { c.intra = l }
}

// WithInterLink overrides the cross-server interconnect.
func WithInterLink(l Link) Option {
	return func(c *config) { c.inter = l }
}

// NewCluster builds a cluster of `servers` machines with `gpusPerServer`
// GPUs each — the paper's homogeneous V100 testbed. GPUs on the same server
// are connected by the intra link (NVLink by default); GPUs on different
// servers by the inter link. Devices carry the V100 class label but keep
// SaturationFLOPs zero, so kernel-oracle configs retain their pre-class
// meaning on homogeneous clusters.
func NewCluster(servers, gpusPerServer int, opts ...Option) (*Cluster, error) {
	if servers < 1 || gpusPerServer < 1 {
		return nil, fmt.Errorf("%w: servers=%d gpusPerServer=%d",
			ErrNoDevices, servers, gpusPerServer)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	n := servers * gpusPerServer
	policy := DefaultLinkPolicy()
	policy.NVLink = cfg.intra
	// The homogeneous constructor has a single cross-server tier; keep Grow
	// consistent with it whatever rack a joining server claims.
	policy.SameRack = cfg.inter
	policy.CrossRack = cfg.inter
	c := &Cluster{
		devices: make([]*Device, n),
		links:   make([][]Link, n),
		servers: make(map[int]serverInfo, servers),
		policy:  policy,
	}
	for s := 0; s < servers; s++ {
		c.servers[s] = serverInfo{rack: 0, interconnect: InterconnectNVLink}
		for g := 0; g < gpusPerServer; g++ {
			id := s*gpusPerServer + g
			c.devices[id] = &Device{
				ID:           id,
				Name:         fmt.Sprintf("server%d/gpu%d", s, g),
				Class:        ClassV100,
				MemoryBytes:  cfg.memory,
				PeakFLOPS:    cfg.peakFLOPS,
				MemBandwidth: cfg.memBW,
				Server:       s,
			}
		}
	}
	for i := 0; i < n; i++ {
		c.links[i] = make([]Link, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if c.devices[i].Server == c.devices[j].Server {
				c.links[i][j] = cfg.intra
			} else {
				c.links[i][j] = cfg.inter
			}
		}
	}
	return c, nil
}

// SingleServer builds an n-GPU single-machine cluster (the common testbed
// configuration).
func SingleServer(gpus int, opts ...Option) (*Cluster, error) {
	return NewCluster(1, gpus, opts...)
}

// Without returns a new cluster omitting the given device — the degraded
// cluster the session reschedules onto after a device failure. Survivors
// keep their names, servers and pairwise links but are renumbered to
// contiguous IDs in their original order; the second return maps old ID ->
// new ID, with -1 for the removed device. Removing the last device (or an
// out-of-range one) fails.
func (c *Cluster) Without(failed int) (*Cluster, []int, error) {
	if failed < 0 || failed >= len(c.devices) {
		return nil, nil, fmt.Errorf("device %d outside cluster of %d", failed, len(c.devices))
	}
	if len(c.devices) == 1 {
		return nil, nil, fmt.Errorf("%w: removing device %d empties the cluster", ErrNoDevices, failed)
	}
	n := len(c.devices) - 1
	mapping := make([]int, len(c.devices))
	next := &Cluster{
		devices: make([]*Device, 0, n),
		links:   make([][]Link, n),
		servers: copyServerInfo(c.servers),
		policy:  c.policy,
	}
	for id, d := range c.devices {
		if id == failed {
			mapping[id] = -1
			continue
		}
		mapping[id] = len(next.devices)
		cp := *d
		cp.ID = len(next.devices)
		next.devices = append(next.devices, &cp)
	}
	for i, oldI := range survivorIDs(len(c.devices), failed) {
		next.links[i] = make([]Link, n)
		for j, oldJ := range survivorIDs(len(c.devices), failed) {
			if i == j {
				continue
			}
			next.links[i][j] = c.links[oldI][oldJ]
		}
	}
	return next, mapping, nil
}

// JoinSpec describes a device joining an existing cluster (the inverse of a
// failure): what class it is and where it lands in the topology.
type JoinSpec struct {
	// Class names the joining device's class; empty means V100.
	Class string
	// Server is the index of an existing server the device is installed in,
	// or -1 (NewServer) for a machine newly added to the fleet.
	Server int
	// Rack places a new server; ignored when joining an existing server.
	Rack int
	// Interconnect is a new server's intra-server link kind
	// (InterconnectNVLink or InterconnectPCIe); empty means NVLink. Ignored
	// when joining an existing server.
	Interconnect string
}

// NewServer is the JoinSpec.Server value for a device arriving on a machine
// not yet part of the cluster.
const NewServer = -1

// Grow returns a new cluster with one device appended — the elastic
// scale-out path. Existing devices keep their IDs, names, servers and
// pairwise links (so placements computed for the old cluster remain valid);
// the joining device gets ID NumDevices() and links synthesized from the
// cluster's tiered link policy. The second return is the joined device.
func (c *Cluster) Grow(j JoinSpec) (*Cluster, *Device, error) {
	class, ok := ClassByName(j.Class)
	switch {
	case j.Class == "":
		class = builtinClasses[ClassV100]
	case !ok:
		return nil, nil, fmt.Errorf("grow: unknown device class %q", j.Class)
	}

	server := j.Server
	servers := copyServerInfo(c.servers)
	if server == NewServer {
		// New machines get the next unused server index.
		server = 0
		for s := range servers {
			if s >= server {
				server = s + 1
			}
		}
		interconnect := j.Interconnect
		switch interconnect {
		case "":
			interconnect = InterconnectNVLink
		case InterconnectNVLink, InterconnectPCIe:
		default:
			return nil, nil, fmt.Errorf("grow: unknown interconnect %q", j.Interconnect)
		}
		if j.Rack < 0 {
			return nil, nil, fmt.Errorf("grow: negative rack %d", j.Rack)
		}
		servers[server] = serverInfo{rack: j.Rack, interconnect: interconnect}
	} else if _, ok := servers[server]; !ok {
		return nil, nil, fmt.Errorf("grow: server %d not in cluster", server)
	}

	id := len(c.devices)
	joined := class.newDevice(id, c.freeDeviceName(server), server, servers[server].rack)
	n := id + 1
	next := &Cluster{
		devices: make([]*Device, 0, n),
		links:   make([][]Link, n),
		servers: servers,
		policy:  c.policy,
	}
	for _, d := range c.devices {
		cp := *d
		next.devices = append(next.devices, &cp)
	}
	next.devices = append(next.devices, joined)
	for i := 0; i < n; i++ {
		next.links[i] = make([]Link, n)
		for j := 0; j < n; j++ {
			switch {
			case i == j:
			case i < id && j < id:
				next.links[i][j] = c.links[i][j]
			default:
				next.links[i][j] = next.policy.linkFor(next.devices[i], next.devices[j], servers)
			}
		}
	}
	return next, joined, nil
}

// freeDeviceName picks the first unused "serverS/gpuG" name on the server —
// counting from the server's current device count, but probing upward so a
// cluster that lost a middle device (Without keeps survivor names) never
// hands a joiner a name already in use.
func (c *Cluster) freeDeviceName(server int) string {
	used := make(map[string]bool, len(c.devices))
	g := 0
	for _, d := range c.devices {
		if d.Server == server {
			g++
		}
		used[d.Name] = true
	}
	for {
		name := fmt.Sprintf("server%d/gpu%d", server, g)
		if !used[name] {
			return name
		}
		g++
	}
}

func copyServerInfo(m map[int]serverInfo) map[int]serverInfo {
	out := make(map[int]serverInfo, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// survivorIDs lists the original device IDs surviving the removal of
// `failed`, in order.
func survivorIDs(n, failed int) []int {
	ids := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != failed {
			ids = append(ids, i)
		}
	}
	return ids
}

// NumDevices returns the number of devices in the cluster.
func (c *Cluster) NumDevices() int { return len(c.devices) }

// Device returns the device with the given ID.
func (c *Cluster) Device(id int) *Device { return c.devices[id] }

// Devices returns all devices in ID order. The slice is shared; callers
// must not mutate it.
func (c *Cluster) Devices() []*Device { return c.devices }

// Link returns the link from device `from` to device `to`.
func (c *Cluster) Link(from, to int) Link { return c.links[from][to] }

// SlowestLink returns the link with the lowest bandwidth among all ordered
// pairs; with one device it returns a zero Link. The paper's rank
// computation needs the maximal communication time over device pairs, which
// this link realizes for any given tensor size.
func (c *Cluster) SlowestLink() Link {
	var slowest Link
	found := false
	for i := range c.devices {
		for j := range c.devices {
			if i == j {
				continue
			}
			l := c.links[i][j]
			if !found || transferCmp(l, slowest) > 0 {
				slowest = l
				found = true
			}
		}
	}
	return slowest
}

// transferCmp compares links by the time to move a representative 1 MiB
// tensor; positive means a is slower than b.
func transferCmp(a, b Link) int {
	const probe = float64(MiB)
	ta := a.Latency + probe/a.Bandwidth
	tb := b.Latency + probe/b.Bandwidth
	switch {
	case ta > tb:
		return 1
	case ta < tb:
		return -1
	default:
		return 0
	}
}

// TotalMemory returns the aggregate device memory of the cluster.
func (c *Cluster) TotalMemory() int64 {
	var total int64
	for _, d := range c.devices {
		total += d.MemoryBytes
	}
	return total
}

// Servers returns the number of distinct servers in the cluster.
func (c *Cluster) Servers() int {
	seen := make(map[int]bool)
	for _, d := range c.devices {
		seen[d.Server] = true
	}
	return len(seen)
}
