// Package device describes the GPU clusters FastT schedules onto: device
// descriptors (memory capacity, compute throughput, host server) and the
// interconnect topology (NVLink within a server, Ethernet between servers),
// matching the paper's testbed of servers with 8 NVIDIA V100 GPUs each.
package device

import (
	"errors"
	"fmt"
)

// Byte-size and rate constants used throughout the repo.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// ErrNoDevices is returned when a cluster would contain no devices.
var ErrNoDevices = errors.New("cluster has no devices")

// Device describes one accelerator.
type Device struct {
	// ID is the device's index within its cluster.
	ID int
	// Name is a human-readable identifier such as "server0/gpu1".
	Name string
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// PeakFLOPS is the peak single-precision throughput in FLOP/s.
	PeakFLOPS float64
	// MemBandwidth is the device memory bandwidth in bytes/s, which bounds
	// bandwidth-bound (elementwise) kernels.
	MemBandwidth float64
	// Server is the index of the physical machine hosting the device.
	Server int
}

// Link describes the interconnect between an ordered device pair.
type Link struct {
	// Bandwidth is the sustained transfer rate in bytes/s.
	Bandwidth float64
	// Latency is the fixed per-transfer setup time in seconds.
	Latency float64
}

// Cluster is a set of devices plus the link table between every ordered
// pair. links[i][j] describes transfers from device i to device j; the
// diagonal is meaningless (same-device "transfers" are free).
type Cluster struct {
	devices []*Device
	links   [][]Link
}

// V100-class defaults mirroring the paper's testbed.
const (
	defaultGPUMemory  = 16 * GiB
	defaultPeakFLOPS  = 15.7e12 // V100 fp32
	defaultMemBW      = 900e9   // V100 HBM2
	nvlinkBandwidth   = 22e9    // effective unidirectional NVLink
	nvlinkLatency     = 10e-6
	ethernetBandwidth = 3e9 // 25 GbE effective
	ethernetLatency   = 50e-6
)

// Option customizes cluster construction.
type Option func(*config)

type config struct {
	memory    int64
	peakFLOPS float64
	memBW     float64
	intra     Link
	inter     Link
}

func defaultConfig() config {
	return config{
		memory:    defaultGPUMemory,
		peakFLOPS: defaultPeakFLOPS,
		memBW:     defaultMemBW,
		intra:     Link{Bandwidth: nvlinkBandwidth, Latency: nvlinkLatency},
		inter:     Link{Bandwidth: ethernetBandwidth, Latency: ethernetLatency},
	}
}

// WithMemory sets per-device memory capacity.
func WithMemory(bytes int64) Option {
	return func(c *config) { c.memory = bytes }
}

// WithPeakFLOPS sets per-device peak throughput.
func WithPeakFLOPS(flops float64) Option {
	return func(c *config) { c.peakFLOPS = flops }
}

// WithIntraLink overrides the same-server interconnect.
func WithIntraLink(l Link) Option {
	return func(c *config) { c.intra = l }
}

// WithInterLink overrides the cross-server interconnect.
func WithInterLink(l Link) Option {
	return func(c *config) { c.inter = l }
}

// NewCluster builds a cluster of `servers` machines with `gpusPerServer`
// GPUs each. GPUs on the same server are connected by the intra link
// (NVLink by default); GPUs on different servers by the inter link.
func NewCluster(servers, gpusPerServer int, opts ...Option) (*Cluster, error) {
	if servers < 1 || gpusPerServer < 1 {
		return nil, fmt.Errorf("%w: servers=%d gpusPerServer=%d",
			ErrNoDevices, servers, gpusPerServer)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	n := servers * gpusPerServer
	c := &Cluster{
		devices: make([]*Device, n),
		links:   make([][]Link, n),
	}
	for s := 0; s < servers; s++ {
		for g := 0; g < gpusPerServer; g++ {
			id := s*gpusPerServer + g
			c.devices[id] = &Device{
				ID:           id,
				Name:         fmt.Sprintf("server%d/gpu%d", s, g),
				MemoryBytes:  cfg.memory,
				PeakFLOPS:    cfg.peakFLOPS,
				MemBandwidth: cfg.memBW,
				Server:       s,
			}
		}
	}
	for i := 0; i < n; i++ {
		c.links[i] = make([]Link, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if c.devices[i].Server == c.devices[j].Server {
				c.links[i][j] = cfg.intra
			} else {
				c.links[i][j] = cfg.inter
			}
		}
	}
	return c, nil
}

// SingleServer builds an n-GPU single-machine cluster (the common testbed
// configuration).
func SingleServer(gpus int, opts ...Option) (*Cluster, error) {
	return NewCluster(1, gpus, opts...)
}

// Without returns a new cluster omitting the given device — the degraded
// cluster the session reschedules onto after a device failure. Survivors
// keep their names, servers and pairwise links but are renumbered to
// contiguous IDs in their original order; the second return maps old ID ->
// new ID, with -1 for the removed device. Removing the last device (or an
// out-of-range one) fails.
func (c *Cluster) Without(failed int) (*Cluster, []int, error) {
	if failed < 0 || failed >= len(c.devices) {
		return nil, nil, fmt.Errorf("device %d outside cluster of %d", failed, len(c.devices))
	}
	if len(c.devices) == 1 {
		return nil, nil, fmt.Errorf("%w: removing device %d empties the cluster", ErrNoDevices, failed)
	}
	n := len(c.devices) - 1
	mapping := make([]int, len(c.devices))
	next := &Cluster{
		devices: make([]*Device, 0, n),
		links:   make([][]Link, n),
	}
	for id, d := range c.devices {
		if id == failed {
			mapping[id] = -1
			continue
		}
		mapping[id] = len(next.devices)
		cp := *d
		cp.ID = len(next.devices)
		next.devices = append(next.devices, &cp)
	}
	for i, oldI := range survivorIDs(len(c.devices), failed) {
		next.links[i] = make([]Link, n)
		for j, oldJ := range survivorIDs(len(c.devices), failed) {
			if i == j {
				continue
			}
			next.links[i][j] = c.links[oldI][oldJ]
		}
	}
	return next, mapping, nil
}

// survivorIDs lists the original device IDs surviving the removal of
// `failed`, in order.
func survivorIDs(n, failed int) []int {
	ids := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != failed {
			ids = append(ids, i)
		}
	}
	return ids
}

// NumDevices returns the number of devices in the cluster.
func (c *Cluster) NumDevices() int { return len(c.devices) }

// Device returns the device with the given ID.
func (c *Cluster) Device(id int) *Device { return c.devices[id] }

// Devices returns all devices in ID order. The slice is shared; callers
// must not mutate it.
func (c *Cluster) Devices() []*Device { return c.devices }

// Link returns the link from device `from` to device `to`.
func (c *Cluster) Link(from, to int) Link { return c.links[from][to] }

// SlowestLink returns the link with the lowest bandwidth among all ordered
// pairs; with one device it returns a zero Link. The paper's rank
// computation needs the maximal communication time over device pairs, which
// this link realizes for any given tensor size.
func (c *Cluster) SlowestLink() Link {
	var slowest Link
	found := false
	for i := range c.devices {
		for j := range c.devices {
			if i == j {
				continue
			}
			l := c.links[i][j]
			if !found || transferCmp(l, slowest) > 0 {
				slowest = l
				found = true
			}
		}
	}
	return slowest
}

// transferCmp compares links by the time to move a representative 1 MiB
// tensor; positive means a is slower than b.
func transferCmp(a, b Link) int {
	const probe = float64(MiB)
	ta := a.Latency + probe/a.Bandwidth
	tb := b.Latency + probe/b.Bandwidth
	switch {
	case ta > tb:
		return 1
	case ta < tb:
		return -1
	default:
		return 0
	}
}

// TotalMemory returns the aggregate device memory of the cluster.
func (c *Cluster) TotalMemory() int64 {
	var total int64
	for _, d := range c.devices {
		total += d.MemoryBytes
	}
	return total
}

// Servers returns the number of distinct servers in the cluster.
func (c *Cluster) Servers() int {
	seen := make(map[int]bool)
	for _, d := range c.devices {
		seen[d.Server] = true
	}
	return len(seen)
}
