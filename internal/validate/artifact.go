package validate

import (
	"fmt"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// ArtifactStrategy validates a serialized strategy artifact against a
// deployment target — the base graph it claims to schedule and the cluster
// it will run on — then materializes the rewritten graph and runs the full
// structural checks (placement shape, colocation, order precedence,
// splits). It returns the materialized graph the artifact's placement and
// order index into, ready to hand to an executor.
func ArtifactStrategy(art *strategy.Artifact, base *graph.Graph, cluster *device.Cluster, opts Options) (*graph.Graph, error) {
	if art == nil {
		return nil, fmt.Errorf("%w: nil artifact", ErrPlacementShape)
	}
	if err := art.Validate(base, cluster); err != nil {
		return nil, err
	}
	g, err := art.Materialize(base)
	if err != nil {
		return nil, err
	}
	st := &core.Strategy{Artifact: *art, Graph: g, Priorities: art.PriorityIndex()}
	if err := Strategy(st, cluster, opts); err != nil {
		return nil, err
	}
	return g, nil
}
