package validate

import (
	"errors"
	"testing"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// realStrategy computes a genuine FastT strategy for a small model.
func realStrategy(t *testing.T) (*core.Strategy, *device.Cluster) {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	m, err := models.LeNet(64)
	if err != nil {
		t.Fatalf("LeNet: %v", err)
	}
	g, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	st, err := core.ComputeStrategy(g, c, kernels.NewDefaultOracle(c), core.Options{})
	if err != nil {
		t.Fatalf("ComputeStrategy: %v", err)
	}
	return st, c
}

func TestStrategyAcceptsRealOutput(t *testing.T) {
	st, c := realStrategy(t)
	if err := Strategy(st, c, Options{}); err != nil {
		t.Errorf("real strategy rejected: %v", err)
	}
}

func TestPlacementViolations(t *testing.T) {
	st, c := realStrategy(t)
	g := st.Graph

	short := st.Placement[:len(st.Placement)-1]
	if err := Placement(g, short, c, Options{}); !errors.Is(err, ErrPlacementShape) {
		t.Errorf("short placement: %v", err)
	}

	bad := append([]int(nil), st.Placement...)
	bad[0] = 99
	if err := Placement(g, bad, c, Options{}); !errors.Is(err, ErrDeviceRange) {
		t.Errorf("out-of-range device: %v", err)
	}

	// Break a colocation constraint.
	broken := append([]int(nil), st.Placement...)
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		target, ok := g.OpByName(op.ColocateWith)
		if !ok {
			continue
		}
		broken[op.ID] = 1 - broken[target.ID]
		break
	}
	if err := Placement(g, broken, c, Options{}); !errors.Is(err, ErrColocation) {
		t.Errorf("broken colocation: %v", err)
	}
}

func TestPlacementMemoryViolation(t *testing.T) {
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "w", Kind: graph.KindMatMul, ParamBytes: 8 * device.GiB})
	c, err := device.SingleServer(1, device.WithMemory(4*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if err := Placement(g, []int{0}, c, Options{}); !errors.Is(err, ErrMemory) {
		t.Errorf("memory violation: %v", err)
	}
	if err := Placement(g, []int{0}, c, Options{SkipMemory: true}); err != nil {
		t.Errorf("SkipMemory still checks: %v", err)
	}
}

func TestOrderViolations(t *testing.T) {
	st, _ := realStrategy(t)
	g := st.Graph

	dup := append([]int(nil), st.Order...)
	dup[1] = dup[0]
	if err := Order(g, dup); !errors.Is(err, ErrOrderShape) {
		t.Errorf("duplicate order entry: %v", err)
	}

	// Swap a producer behind one of its consumers.
	rev := append([]int(nil), st.Order...)
	pos := make([]int, g.NumOps())
	for i, id := range rev {
		pos[id] = i
	}
	e := g.Edges()[0]
	rev[pos[e.From]], rev[pos[e.To]] = rev[pos[e.To]], rev[pos[e.From]]
	if err := Order(g, rev); !errors.Is(err, ErrOrderPrecedence) {
		t.Errorf("precedence violation: %v", err)
	}
}

func TestSplitsViolations(t *testing.T) {
	st, _ := realStrategy(t)
	g := st.Graph

	// A split claiming an op that still exists.
	var existing string
	for _, op := range g.Ops() {
		if op.SplitOf == "" {
			existing = op.Name
			break
		}
	}
	err := Splits(g, []graph.SplitDecision{{OpName: existing, Dim: graph.DimBatch, N: 2}})
	if !errors.Is(err, ErrSplitList) {
		t.Errorf("phantom split: %v", err)
	}

	// A split with the wrong partition count.
	if len(st.Splits) > 0 {
		wrong := st.Splits[0]
		wrong.N++
		if err := Splits(g, []graph.SplitDecision{wrong}); !errors.Is(err, ErrSplitList) {
			t.Errorf("wrong split count: %v", err)
		}
	}
}

func TestStrategyNil(t *testing.T) {
	_, c := realStrategy(t)
	if err := Strategy(nil, c, Options{}); !errors.Is(err, ErrPlacementShape) {
		t.Errorf("nil strategy: %v", err)
	}
}
