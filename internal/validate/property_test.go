package validate

import (
	"fmt"
	"math/rand"
	"testing"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
)

// randomModelGraph builds a random layered DAG with realistic op kinds and
// occasionally a parameterized op + gradient pair, so colocation and sync
// structures appear.
func randomModelGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	n := rng.Intn(20) + 4
	kinds := []graph.OpKind{
		graph.KindConv2D, graph.KindMatMul, graph.KindRelu,
		graph.KindMaxPool, graph.KindSoftmax, graph.KindIdentity,
	}
	for i := 0; i < n; i++ {
		op := &graph.Op{
			Name:        fmt.Sprintf("op%d", i),
			Kind:        kinds[rng.Intn(len(kinds))],
			FLOPs:       rng.Int63n(1e9) + 1e5,
			OutputBytes: rng.Int63n(1<<20) + 1,
			Batch:       8,
			Channels:    16,
		}
		if rng.Intn(4) == 0 {
			op.ParamBytes = rng.Int63n(8 << 20)
		}
		g.MustAddOp(op)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				g.MustConnect(i, j, rng.Int63n(1<<19)+1)
			}
		}
	}
	return g
}

// TestDPOSAlwaysProducesValidSchedules is the cross-package property test:
// for random graphs, clusters and both strategy entry points, the result
// must pass every structural validation.
func TestDPOSAlwaysProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		g := randomModelGraph(rng)
		servers := rng.Intn(2) + 1
		perServer := rng.Intn(3) + 1
		cluster, err := device.NewCluster(servers, perServer)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		oracle := kernels.NewDefaultOracle(cluster)
		opts := core.Options{MaxSplitOps: 2, MaxSyncGroups: 2}

		full, err := core.ComputeStrategy(g, cluster, oracle, opts)
		if err != nil {
			t.Fatalf("trial %d: ComputeStrategy: %v", trial, err)
		}
		if err := Strategy(full, cluster, Options{SkipMemory: true}); err != nil {
			t.Errorf("trial %d: full strategy invalid: %v", trial, err)
		}

		placeOnly, err := core.ComputePlacementOnly(g, cluster, oracle, opts)
		if err != nil {
			t.Fatalf("trial %d: ComputePlacementOnly: %v", trial, err)
		}
		if err := Strategy(placeOnly, cluster, Options{SkipMemory: true}); err != nil {
			t.Errorf("trial %d: placement-only strategy invalid: %v", trial, err)
		}
	}
}

// TestUnrolledGraphsScheduleValidly chains the loop-unrolling substrate
// into the property: cyclic graphs unrolled to DAGs must schedule and
// validate.
func TestUnrolledGraphsScheduleValidly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		g := graph.New()
		in := g.MustAddOp(&graph.Op{Name: "in", Kind: graph.KindInput, OutputBytes: 1 << 10, Batch: 4})
		cell := g.MustAddOp(&graph.Op{
			Name: "cell", Kind: graph.KindLSTMCell, FLOPs: rng.Int63n(1e8) + 1e5,
			OutputBytes: 1 << 12, Batch: 4, Channels: 32,
		})
		st := g.MustAddOp(&graph.Op{Name: "st", Kind: graph.KindIdentity, OutputBytes: 1 << 12, Batch: 4})
		out := g.MustAddOp(&graph.Op{Name: "out", Kind: graph.KindLoss, OutputBytes: 4, Batch: 4})
		g.MustConnect(in, cell, 1<<10)
		g.MustConnect(cell, st, 1<<12)
		g.MustConnect(st, cell, 1<<12)
		g.MustConnect(st, out, 1<<12)

		trips := rng.Intn(10) + 1
		dag, err := graph.Unroll(g, trips)
		if err != nil {
			t.Fatalf("trial %d: Unroll: %v", trial, err)
		}
		cluster, err := device.SingleServer(2)
		if err != nil {
			t.Fatalf("SingleServer: %v", err)
		}
		strategy, err := core.ComputeStrategy(dag, cluster,
			kernels.NewDefaultOracle(cluster), core.Options{MaxSplitOps: 1})
		if err != nil {
			t.Fatalf("trial %d: ComputeStrategy: %v", trial, err)
		}
		if err := Strategy(strategy, cluster, Options{SkipMemory: true}); err != nil {
			t.Errorf("trial %d (trips=%d): %v", trial, trips, err)
		}
	}
}
