// Package validate checks deployment strategies for structural soundness
// before they are activated: complete placements, honored colocation
// constraints, precedence-consistent execution orders, static memory within
// device capacity, and split lists consistent with the rewritten graph.
// The session and the CLI run these checks on every strategy they activate;
// tests use them as a one-call invariant suite.
package validate

import (
	"errors"
	"fmt"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// Sentinel errors; Strategy wraps them with context.
var (
	ErrPlacementShape  = errors.New("placement shape invalid")
	ErrDeviceRange     = errors.New("device out of range")
	ErrColocation      = errors.New("colocation constraint violated")
	ErrOrderShape      = errors.New("order is not a permutation")
	ErrOrderPrecedence = errors.New("order violates precedence")
	ErrMemory          = errors.New("static memory exceeds device capacity")
	ErrSplitList       = errors.New("split list inconsistent with graph")
)

// Options tunes validation.
type Options struct {
	// Memory converts ops to resident bytes; zero value uses the default
	// model. Set SkipMemory to bypass capacity checks (e.g. for graphs
	// validated at runtime by the simulator).
	Memory     graph.MemoryModel
	SkipMemory bool
}

// Strategy validates a full strategy against its cluster. It returns the
// first violation found, or nil.
func Strategy(st *core.Strategy, cluster *device.Cluster, opts Options) error {
	if st == nil || st.Graph == nil {
		return fmt.Errorf("%w: nil strategy", ErrPlacementShape)
	}
	if err := Placement(st.Graph, st.Placement, cluster, opts); err != nil {
		return err
	}
	if len(st.Order) > 0 {
		if err := Order(st.Graph, st.Order); err != nil {
			return err
		}
		if len(st.Priorities) != st.Graph.NumOps() {
			return fmt.Errorf("%w: priorities have %d entries for %d ops",
				ErrOrderShape, len(st.Priorities), st.Graph.NumOps())
		}
		for i, id := range st.Order {
			if st.Priorities[id] != i {
				return fmt.Errorf("%w: priority of op %d is %d, order position %d",
					ErrOrderShape, id, st.Priorities[id], i)
			}
		}
	}
	return Splits(st.Graph, st.Splits)
}

// Placement validates that every op has a device within the cluster,
// colocation constraints hold, and (unless skipped) the static per-device
// memory fits capacity.
func Placement(g *graph.Graph, place []int, cluster *device.Cluster, opts Options) error {
	if len(place) != g.NumOps() {
		return fmt.Errorf("%w: %d entries for %d ops", ErrPlacementShape, len(place), g.NumOps())
	}
	for id, d := range place {
		if d < 0 || d >= cluster.NumDevices() {
			return fmt.Errorf("%w: op %q on device %d", ErrDeviceRange, g.Op(id).Name, d)
		}
	}
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		target, ok := g.OpByName(op.ColocateWith)
		if !ok {
			continue // dangling constraint: placer treats as unconstrained
		}
		if place[op.ID] != place[target.ID] {
			return fmt.Errorf("%w: %q on device %d, %q on device %d",
				ErrColocation, op.Name, place[op.ID], target.Name, place[target.ID])
		}
	}
	if opts.SkipMemory {
		return nil
	}
	mm := opts.Memory
	if mm == (graph.MemoryModel{}) {
		mm = graph.DefaultMemoryModel()
	}
	used := make([]int64, cluster.NumDevices())
	for _, op := range g.Ops() {
		used[place[op.ID]] += mm.OpBytes(op)
	}
	for d, u := range used {
		if cap := cluster.Device(d).MemoryBytes; u > cap {
			return fmt.Errorf("%w: device %d needs %d of %d bytes", ErrMemory, d, u, cap)
		}
	}
	return nil
}

// Order validates that order is a permutation of the ops consistent with
// the graph's precedence: every producer precedes its consumers.
func Order(g *graph.Graph, order []int) error {
	if len(order) != g.NumOps() {
		return fmt.Errorf("%w: %d entries for %d ops", ErrOrderShape, len(order), g.NumOps())
	}
	pos := make([]int, g.NumOps())
	seen := make([]bool, g.NumOps())
	for i, id := range order {
		if id < 0 || id >= g.NumOps() || seen[id] {
			return fmt.Errorf("%w: entry %d", ErrOrderShape, id)
		}
		seen[id] = true
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			return fmt.Errorf("%w: %q ordered after its consumer %q",
				ErrOrderPrecedence, g.Op(e.From).Name, g.Op(e.To).Name)
		}
	}
	return nil
}

// Splits validates a split list against the rewritten graph: each split
// operation must be gone, and its sub-operations present with the declared
// partition count.
func Splits(g *graph.Graph, splits []graph.SplitDecision) error {
	for _, s := range splits {
		if s.N < 2 {
			return fmt.Errorf("%w: %s has n=%d", ErrSplitList, s.OpName, s.N)
		}
		if _, ok := g.OpByName(s.OpName); ok {
			return fmt.Errorf("%w: split op %q still present", ErrSplitList, s.OpName)
		}
		subs := 0
		for _, op := range g.Ops() {
			if op.SplitOf != s.OpName {
				continue
			}
			if op.Kind == graph.KindSplit || op.Kind == graph.KindConcat {
				continue
			}
			if op.SplitN != s.N {
				return fmt.Errorf("%w: sub-op %q has SplitN %d, want %d",
					ErrSplitList, op.Name, op.SplitN, s.N)
			}
			subs++
		}
		if subs != s.N {
			return fmt.Errorf("%w: %q has %d sub-ops, want %d", ErrSplitList, s.OpName, subs, s.N)
		}
	}
	return nil
}
