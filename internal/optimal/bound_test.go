package optimal_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/optimal"
)

// hetEst makes device 0..h-1 "fast" (exec = FLOPs ns) and the rest 3x
// slower, exercising the classed capacity terms of the bound.
type hetEst struct {
	unitEst
	fast int
}

func (h *hetEst) Exec(op *graph.Op, d *device.Device) time.Duration {
	t := time.Duration(op.FLOPs)
	if d.ID >= h.fast {
		t *= 3
	}
	return t
}

func TestBoundPicksExactOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cluster := twoDev(t)
	est := &unitEst{perByte: 20 * time.Nanosecond, latency: 500 * time.Nanosecond}
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, rng.Intn(8)+3)
		res, err := optimal.Bound(g, cluster, est, optimal.BoundOptions{})
		if err != nil {
			t.Fatalf("trial %d: Bound: %v", trial, err)
		}
		if !res.Exact {
			t.Fatalf("trial %d: Bound not exact on %d-op graph (method %s)",
				trial, g.NumOps(), res.Method)
		}
		opt, err := optimal.Schedule(g, cluster, est, optimal.Options{IgnoreComm: true})
		if err != nil {
			t.Fatalf("trial %d: Schedule: %v", trial, err)
		}
		if res.LowerBound != opt.Makespan {
			t.Errorf("trial %d: exact Bound = %v, Schedule ideal = %v",
				trial, res.LowerBound, opt.Makespan)
		}
	}
}

// TestBoundRelaxationNeverExceedsExact is the oracle cross-check of the
// issue: on every graph small enough for the exact search, the DP/relaxed
// bound (exact path disabled) must stay at or below the true ideal optimum.
func TestBoundRelaxationNeverExceedsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cluster := twoDev(t)
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, rng.Intn(10)+3)
		est := &hetEst{fast: 1 + rng.Intn(2)}
		opt, err := optimal.Schedule(g, cluster, est,
			optimal.Options{IgnoreComm: true, MaxNodes: 2_000_000})
		if errors.Is(err, optimal.ErrAborted) {
			continue // oracle too slow on this instance; nothing to compare
		}
		if err != nil {
			t.Fatalf("trial %d: Schedule: %v", trial, err)
		}
		res, err := optimal.Bound(g, cluster, est, optimal.BoundOptions{SkipExact: true})
		if err != nil {
			t.Fatalf("trial %d: Bound: %v", trial, err)
		}
		if res.LowerBound > opt.Makespan {
			t.Errorf("trial %d: relaxed bound %v (method %s/%s) exceeds exact ideal optimum %v",
				trial, res.LowerBound, res.Method, res.Detail, opt.Makespan)
		}
		if res.LowerBound <= 0 {
			t.Errorf("trial %d: bound is %v, want > 0", trial, res.LowerBound)
		}
	}
}

// layeredDAG builds a contractible graph: a chain of complete-bipartite
// layers with widths[i] independent ops each.
func layeredDAG(rng *rand.Rand, widths []int) *graph.Graph {
	g := graph.New()
	var prev []int
	for li, w := range widths {
		var cur []int
		for i := 0; i < w; i++ {
			id := g.MustAddOp(&graph.Op{
				Name:  fmt.Sprintf("l%d_%d", li, i),
				Kind:  graph.KindMatMul,
				FLOPs: int64(rng.Intn(30)+1) * int64(time.Microsecond),
			})
			cur = append(cur, id)
		}
		for _, p := range prev {
			for _, c := range cur {
				g.MustConnect(p, c, 1)
			}
		}
		prev = cur
	}
	return g
}

func TestBoundExactOnContractibleGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cluster := twoDev(t)
	for trial := 0; trial < 20; trial++ {
		nLayers := rng.Intn(4) + 2
		widths := make([]int, nLayers)
		total := 0
		for i := range widths {
			widths[i] = rng.Intn(4) + 1
			total += widths[i]
		}
		if total > optimal.MaxOps {
			continue // keep the exact oracle runnable
		}
		g := layeredDAG(rng, widths)
		est := &hetEst{fast: 1}
		res, err := optimal.Bound(g, cluster, est, optimal.BoundOptions{SkipExact: true})
		if err != nil {
			t.Fatalf("trial %d: Bound: %v", trial, err)
		}
		if !res.Exact || res.Method != optimal.MethodContracted {
			t.Fatalf("trial %d: layered graph not solved exactly by contraction (exact=%v method=%s)",
				trial, res.Exact, res.Method)
		}
		if res.Blocks != nLayers {
			t.Errorf("trial %d: Blocks = %d, want %d", trial, res.Blocks, nLayers)
		}
		opt, err := optimal.Schedule(g, cluster, est, optimal.Options{IgnoreComm: true})
		if err != nil {
			t.Fatalf("trial %d: Schedule: %v", trial, err)
		}
		if res.LowerBound != opt.Makespan {
			t.Errorf("trial %d: contracted bound %v != exact ideal optimum %v (widths %v)",
				trial, res.LowerBound, opt.Makespan, widths)
		}
	}
}

func TestBoundChainIsExact(t *testing.T) {
	// A pure chain is contractible with 1-op blocks: bound = sum of minima.
	g := graph.New()
	prev := -1
	var want time.Duration
	for i := 0; i < 30; i++ {
		f := int64(i+1) * int64(time.Microsecond)
		id := g.MustAddOp(&graph.Op{Name: fmt.Sprintf("c%d", i), Kind: graph.KindMatMul, FLOPs: f})
		if prev >= 0 {
			g.MustConnect(prev, id, 1)
		}
		prev = id
		want += time.Duration(f)
	}
	res, err := optimal.Bound(g, twoDev(t), &unitEst{}, optimal.BoundOptions{})
	if err != nil {
		t.Fatalf("Bound: %v", err)
	}
	if !res.Exact || res.LowerBound != want {
		t.Errorf("chain bound = %v exact=%v (method %s), want exact %v",
			res.LowerBound, res.Exact, res.Method, want)
	}
}

func TestBoundSingleDeviceIsSerialSum(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomDAG(rng, 12)
	c, err := device.SingleServer(1)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	var want time.Duration
	for _, op := range g.Ops() {
		want += time.Duration(op.FLOPs)
	}
	res, err := optimal.Bound(g, c, &unitEst{}, optimal.BoundOptions{})
	if err != nil {
		t.Fatalf("Bound: %v", err)
	}
	if !res.Exact || res.LowerBound != want {
		t.Errorf("single-device bound = %v exact=%v, want exact %v", res.LowerBound, res.Exact, want)
	}
}

func TestBoundDegradesGracefullyOnTinyBudget(t *testing.T) {
	// With a 1-node budget every exact component aborts; the bound must
	// still come back valid (relaxed) rather than erroring.
	rng := rand.New(rand.NewSource(43))
	g := randomDAG(rng, 14)
	cluster := twoDev(t)
	est := &unitEst{}
	res, err := optimal.Bound(g, cluster, est, optimal.BoundOptions{MaxNodes: 1})
	if err != nil {
		t.Fatalf("Bound: %v", err)
	}
	if res.Exact {
		t.Fatalf("bound claims exactness with a 1-node search budget (method %s)", res.Method)
	}
	if res.LowerBound <= 0 {
		t.Errorf("bound = %v, want > 0", res.LowerBound)
	}
	opt, err := optimal.Schedule(g, cluster, est, optimal.Options{IgnoreComm: true})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.LowerBound > opt.Makespan {
		t.Errorf("degraded bound %v exceeds exact ideal optimum %v", res.LowerBound, opt.Makespan)
	}
}

func TestBoundEmptyAndCyclicGraphs(t *testing.T) {
	cluster := twoDev(t)
	res, err := optimal.Bound(graph.New(), cluster, &unitEst{}, optimal.BoundOptions{})
	if err != nil {
		t.Fatalf("Bound(empty): %v", err)
	}
	if res.LowerBound != 0 || !res.Exact {
		t.Errorf("empty graph bound = %+v, want exact 0", res)
	}

	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindMatMul, FLOPs: 1})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindMatMul, FLOPs: 1})
	g.MustConnect(a, b, 1)
	g.MustConnect(b, a, 1)
	if _, err := optimal.Bound(g, cluster, &unitEst{}, optimal.BoundOptions{}); err == nil {
		t.Error("Bound accepted a cyclic graph")
	}
}

// TestScheduleAbortReturnsErrorNotPartialResult pins the MaxNodes abort
// contract: an exhausted budget is an ErrAborted error, never a Result.
func TestScheduleAbortReturnsErrorNotPartialResult(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := randomDAG(rng, 14)
	res, err := optimal.Schedule(g, twoDev(t), &unitEst{}, optimal.Options{MaxNodes: 5})
	if err == nil {
		t.Fatalf("Schedule returned %+v, want abort error", res)
	}
	if res != nil {
		t.Errorf("aborted Schedule returned a partial Result: %+v", res)
	}
	if !errors.Is(err, optimal.ErrAborted) {
		t.Errorf("err = %v, want ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "nodes") {
		t.Errorf("abort error %q does not report the node count", err)
	}
}
