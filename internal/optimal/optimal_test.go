package optimal_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/optimal"
)

// unitEst gives homogeneous execution times encoded in FLOPs (ns) and
// affine comm.
type unitEst struct {
	perByte time.Duration
	latency time.Duration
}

func (u *unitEst) Exec(op *graph.Op, _ *device.Device) time.Duration {
	return time.Duration(op.FLOPs)
}

func (u *unitEst) Comm(bytes int64, from, to *device.Device) time.Duration {
	if from.ID == to.ID {
		return 0
	}
	return u.latency + time.Duration(bytes)*u.perByte
}

var _ cost.Estimator = (*unitEst)(nil)

func twoDev(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

func TestScheduleIndependentOpsPacksPerfectly(t *testing.T) {
	// Four independent 10us ops on two devices: optimum is 20us.
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.MustAddOp(&graph.Op{
			Name: fmt.Sprintf("op%d", i), Kind: graph.KindMatMul,
			FLOPs: int64(10 * time.Microsecond),
		})
	}
	res, err := optimal.Schedule(g, twoDev(t), &unitEst{}, optimal.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Makespan != 20*time.Microsecond {
		t.Errorf("Makespan = %v, want 20us", res.Makespan)
	}
}

func TestScheduleChainCannotParallelize(t *testing.T) {
	g := graph.New()
	prev := -1
	for i := 0; i < 4; i++ {
		id := g.MustAddOp(&graph.Op{
			Name: fmt.Sprintf("op%d", i), Kind: graph.KindMatMul,
			FLOPs: int64(5 * time.Microsecond), OutputBytes: 10,
		})
		if prev >= 0 {
			g.MustConnect(prev, id, 10)
		}
		prev = id
	}
	res, err := optimal.Schedule(g, twoDev(t), &unitEst{perByte: time.Microsecond}, optimal.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Makespan != 20*time.Microsecond {
		t.Errorf("chain Makespan = %v, want 20us (stay on one device)", res.Makespan)
	}
	// With expensive comm, everything stays on one device.
	dev := res.Placement[0]
	for id, d := range res.Placement {
		if d != dev {
			t.Errorf("op %d moved to device %d despite expensive comm", id, d)
		}
	}
}

func TestScheduleCommTradeoff(t *testing.T) {
	// Diamond a -> {b, c} -> d with cheap comm: parallelizing b and c wins
	// despite one transfer each way.
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindMatMul, FLOPs: int64(2 * time.Microsecond), OutputBytes: 10})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindMatMul, FLOPs: int64(10 * time.Microsecond), OutputBytes: 10})
	c := g.MustAddOp(&graph.Op{Name: "c", Kind: graph.KindMatMul, FLOPs: int64(10 * time.Microsecond), OutputBytes: 10})
	d := g.MustAddOp(&graph.Op{Name: "d", Kind: graph.KindMatMul, FLOPs: int64(2 * time.Microsecond)})
	g.MustConnect(a, b, 10)
	g.MustConnect(a, c, 10)
	g.MustConnect(b, d, 10)
	g.MustConnect(c, d, 10)

	cheap := &unitEst{perByte: 100 * time.Nanosecond} // 10B -> 1us
	res, err := optimal.Schedule(g, twoDev(t), cheap, optimal.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	// Best: a,b on one device (a:0-2, b:2-12), c remote (3-13), d joins c
	// on the remote device (b arrives 13): 13 + 2 = 15us. Serial is 24us.
	if res.Makespan != 15*time.Microsecond {
		t.Errorf("diamond Makespan = %v, want 15us", res.Makespan)
	}
}

func TestScheduleRejectsLargeGraphs(t *testing.T) {
	g := graph.New()
	for i := 0; i < optimal.MaxOps+1; i++ {
		g.MustAddOp(&graph.Op{Name: fmt.Sprintf("op%d", i), Kind: graph.KindRelu, FLOPs: 1})
	}
	if _, err := optimal.Schedule(g, twoDev(t), &unitEst{}, optimal.Options{}); !errors.Is(err, optimal.ErrTooLarge) {
		t.Errorf("err = %v, want optimal.ErrTooLarge", err)
	}
}

// TestDPOSNeverBeatsOptimal is the sanity direction: the heuristic can never
// be faster than the exact optimum under the same cost model.
func TestDPOSNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cluster := twoDev(t)
	est := &unitEst{perByte: 50 * time.Nanosecond, latency: time.Microsecond}
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, rng.Intn(6)+3)
		opt, err := optimal.Schedule(g, cluster, est, optimal.Options{})
		if err != nil {
			t.Fatalf("trial %d: Schedule: %v", trial, err)
		}
		sched, err := core.DPOS(g, cluster, est, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: DPOS: %v", trial, err)
		}
		var heuristic time.Duration
		for i := 0; i < g.NumOps(); i++ {
			if sched.Finish[i] > heuristic {
				heuristic = sched.Finish[i]
			}
		}
		if heuristic < opt.Makespan {
			t.Errorf("trial %d: DPOS %v beat the exact optimum %v",
				trial, heuristic, opt.Makespan)
		}
	}
}

// TestTheorem1AgainstExactOptimum verifies the bound of Theorem 1 with the
// exact optimum of the ideal (zero-comm) system, as the theorem states it.
func TestTheorem1AgainstExactOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cluster := twoDev(t)
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, rng.Intn(6)+3)
		est := &unitEst{
			perByte: time.Duration(rng.Intn(100)) * time.Nanosecond,
			latency: time.Duration(rng.Intn(3)) * time.Microsecond,
		}
		opt, err := optimal.Schedule(g, cluster, est, optimal.Options{IgnoreComm: true})
		if err != nil {
			t.Fatalf("trial %d: Schedule: %v", trial, err)
		}
		sched, err := core.DPOS(g, cluster, est, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: DPOS: %v", trial, err)
		}
		ranks, err := core.ComputeRanks(g, cluster, est)
		if err != nil {
			t.Fatalf("trial %d: ranks: %v", trial, err)
		}
		cmax := core.MaxChainComm(g, ranks)
		var heuristic time.Duration
		for i := 0; i < g.NumOps(); i++ {
			if sched.Finish[i] > heuristic {
				heuristic = sched.Finish[i]
			}
		}
		if heuristic > 2*opt.Makespan+cmax {
			t.Errorf("trial %d: bound violated: DPOS=%v opt=%v Cmax=%v",
				trial, heuristic, opt.Makespan, cmax)
		}
	}
}

// randomDAG builds a small random DAG with durations in FLOPs-nanoseconds.
func randomDAG(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.MustAddOp(&graph.Op{
			Name:        fmt.Sprintf("op%d", i),
			Kind:        graph.KindMatMul,
			FLOPs:       int64(rng.Intn(40)+1) * int64(time.Microsecond),
			OutputBytes: rng.Int63n(100) + 1,
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				g.MustConnect(i, j, rng.Int63n(100)+1)
			}
		}
	}
	return g
}
