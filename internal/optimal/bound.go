package optimal

import (
	"math/bits"
	"sort"
	"strconv"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// Bound method labels (BoundResult.Method).
const (
	// MethodExact marks a bound equal to the exact ideal-system optimum,
	// found by the whole-graph branch-and-bound (graphs within MaxOps) or
	// the trivial single-device sum.
	MethodExact = "exact"
	// MethodContracted marks the linearized-DAG path: the graph contracted
	// to a chain of independent-op blocks (its comparability relation is a
	// weak order) and the bound is the sum of per-block makespans — exact
	// when every block was solved exactly by the independent-task search.
	MethodContracted = "contracted"
	// MethodRelaxed marks the general case: the best of the relaxation
	// bounds (ancestor/descendant DP, classed compute volume, critical
	// path). Valid on every DAG, exact only by coincidence.
	MethodRelaxed = "relaxed"
)

// BoundOptions tunes the lower-bound solver. The zero value is the
// production configuration.
type BoundOptions struct {
	// MaxNodes bounds every exact branch-and-bound component (the
	// whole-graph search and each contracted block) in expanded nodes;
	// 0 means 2M. An exhausted budget degrades to the relaxation bounds
	// instead of failing, so Bound never errors on large searches.
	MaxNodes int64
	// BlockMaxOps bounds the per-block exact independent-task solver of
	// the contracted path; larger blocks fall back to a relaxed block
	// bound (and clear BoundResult.Exact). 0 means MaxOps.
	BlockMaxOps int
	// DPMaxOps bounds the ancestor/descendant reachability pass of the
	// relaxation DP, which costs O(V^2/64) time and O(width*V/64) memory;
	// graphs above it use only the volume and critical-path bounds.
	// 0 means 16384.
	DPMaxOps int
	// SkipExact disables the exact whole-graph search even on graphs
	// within MaxOps, forcing the contracted/relaxed paths — the hook the
	// oracle cross-check tests use to compare both solvers on graphs
	// where both can run.
	SkipExact bool
}

func (o BoundOptions) withDefaults() BoundOptions {
	if o.MaxNodes == 0 {
		o.MaxNodes = 2_000_000
	}
	if o.BlockMaxOps == 0 {
		o.BlockMaxOps = MaxOps
	}
	if o.DPMaxOps == 0 {
		o.DPMaxOps = 16384
	}
	return o
}

// BoundResult is the solver's verdict on a graph/cluster pair.
type BoundResult struct {
	// LowerBound is a valid lower bound on the makespan of ANY placement
	// and execution order of the graph in the ideal system of Theorem 1
	// (zero transfer times). Communication only adds time, so it also
	// lower-bounds the communication-aware optimum, and Theorem 1's
	// omega_DPOS <= 2*omega_opt + C_max can be checked against it.
	LowerBound time.Duration
	// Exact reports that LowerBound equals the exact ideal-system optimum
	// omega_opt, not merely a value below it.
	Exact bool
	// Method names the solver path that produced LowerBound.
	Method string
	// Detail qualifies Method: the winning component for MethodRelaxed
	// ("dp", "volume", "critical-path"), the chain length for
	// MethodContracted ("N blocks"), the search size for MethodExact.
	Detail string
	// Nodes counts branch-and-bound expansions across exact components.
	Nodes int64
	// Component values for reporting; zero when a component did not run.
	// Volume is the classed compute-volume bound, CritPath the min-exec
	// critical path, DP the ancestor/descendant relaxation, Contracted
	// the block-sum of the contracted chain.
	Volume     time.Duration
	CritPath   time.Duration
	DP         time.Duration
	Contracted time.Duration
	// Blocks is the contracted chain length; 0 when the graph is not
	// contractible.
	Blocks int
}

// Bound computes a lower bound on the ideal-system (zero-communication)
// optimal makespan of g over the cluster, picking the strongest applicable
// solver automatically:
//
//   - graphs within MaxOps ops: the exact branch-and-bound (Exact);
//   - contractible graphs — the comparability relation is a weak order, so
//     the DAG contracts to a chain of independent-op blocks: the sum of
//     per-block optimal makespans, exact when every block fits the
//     independent-task search (the linearized-DAG DP of Tarnawski et al.
//     repurposed as a reference bound);
//   - everything else: the maximum of three relaxations — an
//     ancestor/descendant DP (every op's earliest start is bounded by both
//     its longest min-exec chain and its ancestors' compute volume over the
//     cluster's class-weighted capacity, symmetrically for its tail), the
//     classed compute-volume bound, and the min-exec critical path.
//
// Heterogeneous device classes enter through the estimator: per-op minima
// take the fastest class, and volume terms divide by the cluster's total
// capacity in min-exec units (a T4 absorbs less than one unit per unit
// time), so mixed fleets get honest, class-aware bounds.
//
// The bound is deterministic for fixed inputs and never fails on large or
// irregular graphs — exhausted search budgets degrade to the relaxations.
// The only error is a cyclic graph.
func Bound(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts BoundOptions) (*BoundResult, error) {
	opts = opts.withDefaults()
	n := g.NumOps()
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	if n == 0 {
		return &BoundResult{Exact: true, Method: MethodExact, Detail: "empty"}, nil
	}
	est = cost.ReadSnapshot(est)
	devs := cluster.Devices()
	m := len(devs)

	// Exec matrix and per-op minima feed every component.
	exec := make([][]time.Duration, n)
	eMin := make([]time.Duration, n)
	for _, op := range g.Ops() {
		row := make([]time.Duration, m)
		for di, d := range devs {
			row[di] = est.Exec(op, d)
		}
		exec[op.ID] = row
		eMin[op.ID] = minExecOf(row)
	}

	res := &BoundResult{}

	// One device: every schedule is the serial sum on that device — exact
	// even with communication (nothing ever crosses a link).
	if m == 1 {
		var sum time.Duration
		for id := 0; id < n; id++ {
			sum += exec[id][0]
		}
		res.LowerBound, res.Exact = sum, true
		res.Method, res.Detail = MethodExact, "single device"
		res.Volume, res.CritPath = sum, sum
		return res, nil
	}

	// capSum is the cluster's capacity in min-exec work units per unit
	// time: device d can absorb at most cap_d = max_i eMin_i/exec_{i,d}
	// units per unit time (<= 1, with equality only when d is the fastest
	// class for some op), so any schedule satisfies
	// sum_i eMin_i <= makespan * capSum.
	capSum := capacitySum(exec, eMin)

	// Volume bound: total min-exec work over total capacity.
	var totalWork int64
	for id := 0; id < n; id++ {
		totalWork += int64(eMin[id])
	}
	res.Volume = divWorkFloor(totalWork, capSum)

	// Relaxation DP (with the plain critical path as a byproduct).
	if n <= opts.DPMaxOps {
		res.DP, res.CritPath = relaxationDP(g, eMin, capSum)
	} else {
		res.CritPath = criticalPathMin(g, eMin)
	}

	// Exact whole-graph search on small inputs.
	if !opts.SkipExact && n <= MaxOps {
		r, err := Schedule(g, cluster, est, Options{IgnoreComm: true, MaxNodes: opts.MaxNodes})
		if err == nil {
			res.Nodes = r.Nodes
			res.LowerBound, res.Exact = r.Makespan, true
			res.Method = MethodExact
			res.Detail = strconv.Itoa(n) + " ops"
			return res, nil
		}
		// Budget exhausted (or any other search failure): fall through to
		// the always-terminating relaxations.
	}

	// Contracted chain of independent blocks, when the DAG linearizes.
	budget := opts.MaxNodes
	if levels, ok := contractLevels(g); ok {
		sum, exact, nodes := contractedBound(levels, exec, eMin, capSum, opts.BlockMaxOps, budget)
		res.Contracted = sum
		res.Blocks = len(levels)
		res.Nodes += nodes
		if exact {
			res.LowerBound, res.Exact = sum, true
			res.Method = MethodContracted
			res.Detail = strconv.Itoa(len(levels)) + " blocks"
			return res, nil
		}
	}

	// Take the strongest valid component.
	res.LowerBound, res.Method, res.Detail = maxComponent(res)
	return res, nil
}

// maxComponent picks the largest computed bound and names it.
func maxComponent(res *BoundResult) (time.Duration, string, string) {
	best, method, detail := res.DP, MethodRelaxed, "dp"
	if res.Contracted > best {
		best, method, detail = res.Contracted, MethodContracted, strconv.Itoa(res.Blocks)+" blocks"
	}
	if res.Volume > best {
		best, method, detail = res.Volume, MethodRelaxed, "volume"
	}
	if res.CritPath > best {
		best, method, detail = res.CritPath, MethodRelaxed, "critical-path"
	}
	return best, method, detail
}

// capacitySum returns sum_d max_i eMin_i/exec_{i,d} over ops with nonzero
// minimum cost. Always >= 1 on non-degenerate inputs (the device achieving
// some op's minimum has ratio 1); 0 only when every op is free.
func capacitySum(exec [][]time.Duration, eMin []time.Duration) float64 {
	if len(exec) == 0 {
		return 0
	}
	m := len(exec[0])
	var sum float64
	for d := 0; d < m; d++ {
		var capD float64
		for i := range exec {
			if eMin[i] <= 0 || exec[i][d] <= 0 {
				continue
			}
			if r := float64(eMin[i]) / float64(exec[i][d]); r > capD {
				capD = r
			}
		}
		sum += capD
	}
	return sum
}

// divWorkFloor converts a min-exec work total into a makespan lower bound,
// rounding down so the result stays a valid bound.
func divWorkFloor(workNs int64, capSum float64) time.Duration {
	if capSum <= 0 || workNs <= 0 {
		return 0
	}
	return time.Duration(float64(workNs) / capSum)
}

// relaxationDP computes the ancestor/descendant relaxation bound: for every
// op v, any ideal schedule satisfies
//
//	start(v) >= est(v) = max(max_p est(p)+eMin_p, work(Anc(v))/capSum)
//	omega - finish(v) >= tail(v) = max(max_s tail(s)+eMin_s, work(Desc(v))/capSum)
//
// so omega >= max_v est(v) + eMin_v + tail(v). Ancestor/descendant compute
// volumes come from bitset reachability with out-degree refcounted reuse,
// so peak memory is O(antichain width * V/64) rather than O(V^2/64).
// The second return value is the plain min-exec critical path (the chain
// terms alone), reported as its own component.
func relaxationDP(g *graph.Graph, eMin []time.Duration, capSum float64) (dp, cp time.Duration) {
	n := g.NumOps()
	order, err := g.TopoOrder()
	if err != nil {
		return 0, 0
	}
	words := (n + 63) / 64
	var free [][]uint64
	alloc := func() []uint64 {
		if len(free) > 0 {
			bs := free[len(free)-1]
			free = free[:len(free)-1]
			for i := range bs {
				bs[i] = 0
			}
			return bs
		}
		return make([]uint64, words)
	}

	// Forward pass: earliest-start bounds and ancestor volumes.
	estLB := make([]time.Duration, n)
	cpIn := make([]time.Duration, n)
	reach := make([][]uint64, n)
	remaining := make([]int, n)
	for id := 0; id < n; id++ {
		remaining[id] = g.OutDegree(id)
	}
	for _, id := range order {
		bs := alloc()
		var chainEst, chainCP time.Duration
		preds := g.Predecessors(id)
		for _, p := range preds {
			orInto(bs, reach[p])
			bs[p>>6] |= 1 << (uint(p) & 63)
			if v := estLB[p] + eMin[p]; v > chainEst {
				chainEst = v
			}
			if v := cpIn[p] + eMin[p]; v > chainCP {
				chainCP = v
			}
		}
		reach[id] = bs
		estLB[id] = chainEst
		if vol := divWorkFloor(weightedBits(bs, eMin), capSum); vol > estLB[id] {
			estLB[id] = vol
		}
		cpIn[id] = chainCP
		for _, p := range preds {
			if remaining[p]--; remaining[p] == 0 {
				free = append(free, reach[p])
				reach[p] = nil
			}
		}
	}
	for id := 0; id < n; id++ {
		if reach[id] != nil {
			free = append(free, reach[id])
			reach[id] = nil
		}
	}

	// Backward pass: tail bounds and descendant volumes.
	tail := make([]time.Duration, n)
	cpOut := make([]time.Duration, n)
	for id := 0; id < n; id++ {
		remaining[id] = g.InDegree(id)
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		bs := alloc()
		var chainTail, chainCP time.Duration
		succs := g.Successors(id)
		for _, s := range succs {
			orInto(bs, reach[s])
			bs[s>>6] |= 1 << (uint(s) & 63)
			if v := tail[s] + eMin[s]; v > chainTail {
				chainTail = v
			}
			if v := cpOut[s] + eMin[s]; v > chainCP {
				chainCP = v
			}
		}
		reach[id] = bs
		tail[id] = chainTail
		if vol := divWorkFloor(weightedBits(bs, eMin), capSum); vol > tail[id] {
			tail[id] = vol
		}
		cpOut[id] = chainCP
		for _, s := range succs {
			if remaining[s]--; remaining[s] == 0 {
				free = append(free, reach[s])
				reach[s] = nil
			}
		}
	}

	for id := 0; id < n; id++ {
		if v := estLB[id] + eMin[id] + tail[id]; v > dp {
			dp = v
		}
		if v := cpIn[id] + eMin[id] + cpOut[id]; v > cp {
			cp = v
		}
	}
	return dp, cp
}

// criticalPathMin is the chain-only bound for graphs too large for the
// reachability pass: the longest path weighted by per-op minimum exec.
func criticalPathMin(g *graph.Graph, eMin []time.Duration) time.Duration {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	n := g.NumOps()
	down := make([]time.Duration, n)
	var best time.Duration
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var t time.Duration
		for _, s := range g.Successors(id) {
			if down[s] > t {
				t = down[s]
			}
		}
		down[id] = t + eMin[id]
		if down[id] > best {
			best = down[id]
		}
	}
	return best
}

// orInto ORs src into dst (same length).
func orInto(dst, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

// weightedBits sums eMin over the set bits of bs, in nanoseconds.
func weightedBits(bs []uint64, eMin []time.Duration) int64 {
	var sum int64
	for wi, w := range bs {
		base := wi << 6
		for w != 0 {
			sum += int64(eMin[base+bits.TrailingZeros64(w)])
			w &= w - 1
		}
	}
	return sum
}

// contractLevels tests whether the DAG's comparability relation is a weak
// order — ops layer into antichains L_0 < L_1 < ... where every pair in
// different layers is comparable — and returns the layers when it is.
// With layers by longest hop distance, comparability between consecutive
// layers can have no intermediary, so the weak-order property holds exactly
// when every op has ALL of the previous layer as direct predecessors;
// within a layer, an edge would push its head a layer down, so layers are
// antichains by construction. O(V+E).
func contractLevels(g *graph.Graph) ([][]int, bool) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, false
	}
	n := g.NumOps()
	level := make([]int, n)
	maxLevel := 0
	for _, id := range order {
		lv := 0
		for _, p := range g.Predecessors(id) {
			if level[p]+1 > lv {
				lv = level[p] + 1
			}
		}
		level[id] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	levels := make([][]int, maxLevel+1)
	for id := 0; id < n; id++ {
		levels[level[id]] = append(levels[level[id]], id)
	}
	for id := 0; id < n; id++ {
		lv := level[id]
		if lv == 0 {
			continue
		}
		direct := 0
		for _, p := range g.Predecessors(id) {
			if level[p] == lv-1 {
				direct++
			}
		}
		if direct != len(levels[lv-1]) {
			return nil, false
		}
	}
	return levels, true
}

// contractedBound sums per-block makespans along the contracted chain:
// every op of block k+1 succeeds every op of block k, so blocks execute
// back to back and the ideal optimum is the sum of per-block optima over
// independent ops. Blocks within blockMax ops are solved exactly by
// branch-and-bound (sharing the node budget); larger blocks — or an
// exhausted budget — contribute a relaxed block bound and clear exact.
func contractedBound(levels [][]int, exec [][]time.Duration, eMin []time.Duration,
	capSum float64, blockMax int, budget int64) (sum time.Duration, exact bool, nodes int64) {
	exact = true
	for _, block := range levels {
		if len(block) == 1 {
			sum += eMin[block[0]]
			continue
		}
		if len(block) <= blockMax && budget > nodes {
			rows := make([][]time.Duration, len(block))
			for i, id := range block {
				rows[i] = exec[id]
			}
			left := budget - nodes
			ms, used, ok := independentMakespan(rows, left)
			nodes += used
			if ok {
				sum += ms
				continue
			}
		}
		exact = false
		sum += relaxedBlock(block, eMin, capSum)
	}
	return sum, exact, nodes
}

// relaxedBlock lower-bounds a block of independent ops: its largest
// single-op minimum, or its volume over the cluster capacity.
func relaxedBlock(block []int, eMin []time.Duration, capSum float64) time.Duration {
	var work int64
	var widest time.Duration
	for _, id := range block {
		work += int64(eMin[id])
		if eMin[id] > widest {
			widest = eMin[id]
		}
	}
	if vol := divWorkFloor(work, capSum); vol > widest {
		return vol
	}
	return widest
}

// independentMakespan finds the exact minimum makespan of independent tasks
// on unrelated devices (rows[i][d] = task i's exec time on device d) by
// branch-and-bound: tasks in decreasing min-exec order, device symmetry
// broken over identical exec columns at equal load, an LPT-style greedy
// incumbent, and a load/volume pruning bound. Returns ok=false when the
// node budget runs out before the search completes.
func independentMakespan(rows [][]time.Duration, maxNodes int64) (time.Duration, int64, bool) {
	k := len(rows)
	m := len(rows[0])

	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return minExecOf(rows[order[a]]) > minExecOf(rows[order[b]])
	})

	// dup[d] is the first device with an identical exec column: two such
	// devices are interchangeable, so at equal load only the first is
	// tried.
	dup := make([]int, m)
	for d := 0; d < m; d++ {
		dup[d] = d
		for e := 0; e < d; e++ {
			same := true
			for i := 0; i < k; i++ {
				if rows[i][e] != rows[i][d] {
					same = false
					break
				}
			}
			if same {
				dup[d] = e
				break
			}
		}
	}

	// remMin[i] is the min-exec work of tasks order[i:].
	remMin := make([]int64, k+1)
	for i := k - 1; i >= 0; i-- {
		remMin[i] = remMin[i+1] + int64(minExecOf(rows[order[i]]))
	}

	// Greedy incumbent: each task (largest first) onto the device
	// minimizing its completion.
	load := make([]time.Duration, m)
	var best time.Duration
	for _, i := range order {
		bd, bt := 0, load[0]+rows[i][0]
		for d := 1; d < m; d++ {
			if t := load[d] + rows[i][d]; t < bt {
				bd, bt = d, t
			}
		}
		load[bd] = bt
		if bt > best {
			best = bt
		}
	}
	for d := range load {
		load[d] = 0
	}

	var nodes int64
	exhausted := false
	var dfs func(idx int, maxLoad time.Duration, sumLoad int64)
	dfs = func(idx int, maxLoad time.Duration, sumLoad int64) {
		if exhausted {
			return
		}
		nodes++
		if nodes >= maxNodes {
			exhausted = true
			return
		}
		if idx == k {
			if maxLoad < best {
				best = maxLoad
			}
			return
		}
		// Even spreading all remaining min-exec work cannot beat the
		// incumbent from here.
		if lb := time.Duration((sumLoad + remMin[idx]) / int64(m)); lb >= best && maxLoad >= best {
			return
		}
		i := order[idx]
		for d := 0; d < m; d++ {
			skip := false
			for e := 0; e < d; e++ {
				if dup[e] == dup[d] && load[e] == load[d] {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			nl := load[d] + rows[i][d]
			if nl >= best {
				continue
			}
			ml := maxLoad
			if nl > ml {
				ml = nl
			}
			old := load[d]
			load[d] = nl
			dfs(idx+1, ml, sumLoad+int64(rows[i][d]))
			load[d] = old
			if exhausted {
				return
			}
		}
	}
	dfs(0, 0, 0)
	if exhausted {
		return 0, nodes, false
	}
	return best, nodes, true
}
