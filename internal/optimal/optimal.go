// Package optimal is the reference solver for the scheduling problem the
// heuristics approximate. The paper proves DPOS is within 2*w_opt + C_max
// of the optimum (Theorem 1) but cannot measure the actual gap — the
// problem is NP-complete (Ullman 1975, cited as [42]). This package closes
// the loop in two modes:
//
//   - Schedule: exact minimum-makespan search by branch-and-bound, for
//     graphs of up to MaxOps operations. The search enumerates active
//     schedules: at each step one ready operation is started on one device
//     at the earliest time its inputs (including cross-device transfer
//     times) and the device allow. Communication follows the same
//     estimator interface the heuristics use. Pruning: a running best
//     bound, and a critical-path + load lower bound per node.
//
//   - Bound: a lower bound on the ideal-system optimum that scales to
//     full catalog graphs (thousands of ops). It picks the exact search
//     when the graph fits, a contracted-chain decomposition with exact
//     per-block solves when the DAG linearizes (a weak order), and
//     otherwise the max of relaxation bounds (ancestor/descendant DP,
//     classed compute volume, critical path) — all valid on any DAG and
//     on heterogeneous clusters.
//
// Together they power the optimality-gap tables (benchtab -what gap) and
// the catalog-wide Theorem-1 verification suite.
package optimal

import (
	"errors"
	"fmt"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// ErrTooLarge guards against accidentally launching an exponential search
// on a big graph.
var ErrTooLarge = errors.New("graph too large for exact search")

// ErrAborted reports that Schedule ran out of its MaxNodes budget before
// proving optimality. An aborted search never returns a partial Result.
var ErrAborted = errors.New("exact search aborted")

// MaxOps is the largest graph Schedule accepts.
const MaxOps = 18

// Result is an optimal schedule.
type Result struct {
	// Makespan is the minimum end-to-end execution time found.
	Makespan time.Duration
	// Placement and Start describe one schedule achieving it.
	Placement []int
	Start     []time.Duration
	// Nodes is the number of search nodes expanded (for reporting).
	Nodes int64
}

// Options tunes the search.
type Options struct {
	// IgnoreComm searches the ideal system of Theorem 1 (zero transfer
	// time) instead of using the estimator's communication costs.
	IgnoreComm bool
	// MaxNodes aborts the search after this many expansions (0 = 50M).
	MaxNodes int64
}

type searcher struct {
	g        *graph.Graph
	devs     []*device.Device
	exec     [][]time.Duration // [op][dev]
	comm     func(bytes int64, from, to int) time.Duration
	succ     [][]int
	pred     [][]graph.Edge
	restRank []time.Duration // compute-only critical path from each op

	best      time.Duration
	bestPlace []int
	bestStart []time.Duration
	place     []int
	start     []time.Duration
	finish    []time.Duration
	indeg     []int
	avail     []time.Duration
	nodes     int64
	maxNodes  int64
}

// Schedule finds the optimal makespan of g over the cluster with the given
// estimator.
func Schedule(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Result, error) {
	n := g.NumOps()
	if n > MaxOps {
		return nil, fmt.Errorf("%w: %d ops (max %d)", ErrTooLarge, n, MaxOps)
	}
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	devs := cluster.Devices()
	s := &searcher{
		g:         g,
		devs:      devs,
		exec:      make([][]time.Duration, n),
		succ:      make([][]int, n),
		pred:      make([][]graph.Edge, n),
		restRank:  make([]time.Duration, n),
		best:      1<<62 - 1,
		bestPlace: make([]int, n),
		bestStart: make([]time.Duration, n),
		place:     make([]int, n),
		start:     make([]time.Duration, n),
		finish:    make([]time.Duration, n),
		indeg:     make([]int, n),
		avail:     make([]time.Duration, len(devs)),
		maxNodes:  opts.MaxNodes,
	}
	if s.maxNodes == 0 {
		s.maxNodes = 50_000_000
	}
	if opts.IgnoreComm {
		s.comm = func(int64, int, int) time.Duration { return 0 }
	} else {
		s.comm = func(bytes int64, from, to int) time.Duration {
			return est.Comm(bytes, devs[from], devs[to])
		}
	}
	for _, op := range g.Ops() {
		s.exec[op.ID] = make([]time.Duration, len(devs))
		for di, d := range devs {
			s.exec[op.ID][di] = est.Exec(op, d)
		}
		s.succ[op.ID] = g.Successors(op.ID)
		s.pred[op.ID] = g.InEdges(op.ID)
		s.indeg[op.ID] = g.InDegree(op.ID)
	}
	// Compute-only downward rank (minimum exec per op) for lower bounds.
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		minExec := s.exec[id][0]
		for _, t := range s.exec[id][1:] {
			if t < minExec {
				minExec = t
			}
		}
		var tail time.Duration
		for _, sc := range s.succ[id] {
			if s.restRank[sc] > tail {
				tail = s.restRank[sc]
			}
		}
		s.restRank[id] = minExec + tail
	}

	if !s.search(0, 0) && s.nodes >= s.maxNodes {
		return nil, fmt.Errorf("%w after %d nodes", ErrAborted, s.nodes)
	}
	return &Result{
		Makespan:  s.best,
		Placement: s.bestPlace,
		Start:     s.bestStart,
		Nodes:     s.nodes,
	}, nil
}

// search expands one level: pick any ready op and device. done counts
// scheduled ops; span is the current partial makespan. Returns false when
// the node budget is exhausted.
func (s *searcher) search(done int, span time.Duration) bool {
	s.nodes++
	if s.nodes >= s.maxNodes {
		return false
	}
	n := s.g.NumOps()
	if done == n {
		if span < s.best {
			s.best = span
			copy(s.bestPlace, s.place)
			copy(s.bestStart, s.start)
		}
		return true
	}
	for id := 0; id < n; id++ {
		if s.indeg[id] != 0 {
			continue
		}
		// Lower bound: the op's remaining critical path must fit under
		// the current best even if started immediately.
		var ready time.Duration
		for _, e := range s.pred[id] {
			if s.finish[e.From] > ready {
				ready = s.finish[e.From]
			}
		}
		if ready+s.restRank[id] >= s.best {
			continue
		}
		s.indeg[id] = -1
		for di := range s.devs {
			st := s.readyOn(id, di)
			ft := st + s.exec[id][di]
			if ft+s.restRank[id]-minExecOf(s.exec[id]) >= s.best {
				continue // even this op's tail cannot beat the best
			}
			oldAvail := s.avail[di]
			s.place[id] = di
			s.start[id] = st
			s.finish[id] = ft
			s.avail[di] = ft
			for _, sc := range s.succ[id] {
				s.indeg[sc]--
			}
			newSpan := span
			if ft > newSpan {
				newSpan = ft
			}
			ok := s.search(done+1, newSpan)
			for _, sc := range s.succ[id] {
				s.indeg[sc]++
			}
			s.avail[di] = oldAvail
			if !ok {
				s.indeg[id] = 0
				return false
			}
		}
		s.indeg[id] = 0
	}
	return true
}

// readyOn returns the earliest start of op id on device di given current
// placements: device availability and input arrivals with transfers.
func (s *searcher) readyOn(id, di int) time.Duration {
	st := s.avail[di]
	for _, e := range s.pred[id] {
		arr := s.finish[e.From]
		if from := s.place[e.From]; from != di {
			arr += s.comm(e.Bytes, from, di)
		}
		if arr > st {
			st = arr
		}
	}
	return st
}

func minExecOf(ts []time.Duration) time.Duration {
	m := ts[0]
	for _, t := range ts[1:] {
		if t < m {
			m = t
		}
	}
	return m
}
