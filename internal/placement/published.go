package placement

// Published baseline results for Fig. 3. The paper compares FastT against
// REINFORCE, GDP, Post and FlexFlow using numbers *extracted from those
// papers* (their code or clusters were unavailable); this file records the
// same reference points, digitized approximately from Fig. 3, normalized to
// the strong-scaling data-parallel baseline (DP = 1.0). A zero entry means
// the method reported no result for that model/GPU count.

// Method identifies a published comparison system.
type Method int

// Comparison systems of Fig. 3.
const (
	MethodREINFORCE Method = iota + 1
	MethodGDP
	MethodPost
	MethodFlexFlow
)

// String returns the method name used in the figure.
func (m Method) String() string {
	switch m {
	case MethodREINFORCE:
		return "REINFORCE"
	case MethodGDP:
		return "GDP"
	case MethodPost:
		return "Post"
	case MethodFlexFlow:
		return "FlexFlow"
	default:
		return "unknown"
	}
}

// PublishedEntry is one bar of Fig. 3.
type PublishedEntry struct {
	Model  string
	Method Method
	GPUs   int
	// Normalized is processing speed divided by the data-parallel
	// strategy's speed (DP = 1.0).
	Normalized float64
}

// PublishedSpeedups returns the Fig. 3 reference bars. Models follow the
// figure's four panels: Inception V3, ResNet, GNMT, RNNLM.
func PublishedSpeedups() []PublishedEntry {
	return []PublishedEntry{
		// Inception V3: REINFORCE, GDP, Post, FlexFlow.
		{Model: "Inception_v3", Method: MethodREINFORCE, GPUs: 2, Normalized: 0.98},
		{Model: "Inception_v3", Method: MethodREINFORCE, GPUs: 4, Normalized: 1.02},
		{Model: "Inception_v3", Method: MethodGDP, GPUs: 2, Normalized: 1.00},
		{Model: "Inception_v3", Method: MethodGDP, GPUs: 4, Normalized: 1.04},
		{Model: "Inception_v3", Method: MethodPost, GPUs: 2, Normalized: 1.01},
		{Model: "Inception_v3", Method: MethodPost, GPUs: 4, Normalized: 1.06},
		{Model: "Inception_v3", Method: MethodFlexFlow, GPUs: 2, Normalized: 1.08},
		{Model: "Inception_v3", Method: MethodFlexFlow, GPUs: 4, Normalized: 1.15},

		// ResNet: Post and FlexFlow.
		{Model: "ResNet200", Method: MethodPost, GPUs: 2, Normalized: 0.97},
		{Model: "ResNet200", Method: MethodPost, GPUs: 4, Normalized: 1.00},
		{Model: "ResNet200", Method: MethodFlexFlow, GPUs: 2, Normalized: 1.05},
		{Model: "ResNet200", Method: MethodFlexFlow, GPUs: 4, Normalized: 1.08},

		// GNMT: GDP, Post, FlexFlow (FastT's bars read 1.06/1.18/1.25).
		{Model: "GNMT", Method: MethodGDP, GPUs: 2, Normalized: 1.00},
		{Model: "GNMT", Method: MethodGDP, GPUs: 4, Normalized: 1.08},
		{Model: "GNMT", Method: MethodGDP, GPUs: 8, Normalized: 1.10},
		{Model: "GNMT", Method: MethodPost, GPUs: 2, Normalized: 1.02},
		{Model: "GNMT", Method: MethodPost, GPUs: 4, Normalized: 1.10},
		{Model: "GNMT", Method: MethodPost, GPUs: 8, Normalized: 1.14},
		{Model: "GNMT", Method: MethodFlexFlow, GPUs: 2, Normalized: 1.07},
		{Model: "GNMT", Method: MethodFlexFlow, GPUs: 4, Normalized: 1.20},
		{Model: "GNMT", Method: MethodFlexFlow, GPUs: 8, Normalized: 1.28},

		// RNNLM: GDP, Post, FlexFlow (FastT's bars read 1.08/1.21/1.22).
		{Model: "RNNLM", Method: MethodGDP, GPUs: 2, Normalized: 1.01},
		{Model: "RNNLM", Method: MethodGDP, GPUs: 4, Normalized: 1.09},
		{Model: "RNNLM", Method: MethodGDP, GPUs: 8, Normalized: 1.12},
		{Model: "RNNLM", Method: MethodPost, GPUs: 2, Normalized: 1.03},
		{Model: "RNNLM", Method: MethodPost, GPUs: 4, Normalized: 1.12},
		{Model: "RNNLM", Method: MethodPost, GPUs: 8, Normalized: 1.15},
		{Model: "RNNLM", Method: MethodFlexFlow, GPUs: 2, Normalized: 1.09},
		{Model: "RNNLM", Method: MethodFlexFlow, GPUs: 4, Normalized: 1.23},
		{Model: "RNNLM", Method: MethodFlexFlow, GPUs: 8, Normalized: 1.25},
	}
}

// FastTPaperBars returns the FastT bars of Fig. 3 as reported in the paper,
// for paper-vs-measured comparison in EXPERIMENTS.md.
func FastTPaperBars() []PublishedEntry {
	return []PublishedEntry{
		{Model: "GNMT", GPUs: 2, Normalized: 1.06},
		{Model: "GNMT", GPUs: 4, Normalized: 1.18},
		{Model: "GNMT", GPUs: 8, Normalized: 1.25},
		{Model: "RNNLM", GPUs: 2, Normalized: 1.08},
		{Model: "RNNLM", GPUs: 4, Normalized: 1.21},
		{Model: "RNNLM", GPUs: 8, Normalized: 1.22},
	}
}
