package placement

import (
	"errors"
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// dpFixture builds a 2-replica data-parallel graph of a one-layer model.
func dpFixture(t *testing.T, replicas int) *graph.Graph {
	t.Helper()
	m := graph.New()
	in := m.MustAddOp(&graph.Op{Name: "input", Kind: graph.KindInput, OutputBytes: 64, Batch: 4})
	fc := m.MustAddOp(&graph.Op{
		Name: "fc", Kind: graph.KindMatMul, FLOPs: 1e6,
		ParamBytes: 1024, OutputBytes: 32, Batch: 4, Channels: 8,
	})
	bp := m.MustAddOp(&graph.Op{
		Name: "fc_bp", Kind: graph.KindMatMulBackprop, FLOPs: 2e6,
		OutputBytes: 1024, Batch: 4, GradFor: "fc",
	})
	m.MustConnect(in, fc, 64)
	m.MustConnect(fc, bp, 32)
	g, err := graph.BuildDataParallel(m, replicas)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	return g
}

func TestDataParallelPinsReplicas(t *testing.T) {
	g := dpFixture(t, 2)
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	place, err := DataParallel(g, c)
	if err != nil {
		t.Fatalf("DataParallel: %v", err)
	}
	for _, op := range g.Ops() {
		want := op.Replica
		if op.Replica < 0 {
			want = 0
		}
		if op.ColocateWith != "" {
			target, _ := g.OpByName(op.ColocateWith)
			want = place[target.ID]
		}
		if place[op.ID] != want {
			t.Errorf("op %s on device %d, want %d", op.Name, place[op.ID], want)
		}
	}
}

func TestDataParallelTooManyReplicas(t *testing.T) {
	g := dpFixture(t, 4)
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if _, err := DataParallel(g, c); !errors.Is(err, ErrTooManyReplicas) {
		t.Errorf("err = %v, want ErrTooManyReplicas", err)
	}
}

func TestModelParallelBalancesMemory(t *testing.T) {
	g := graph.New()
	prev := -1
	// Chain of 8 equal-footprint stages.
	for i := 0; i < 8; i++ {
		id := g.MustAddOp(&graph.Op{
			Name: "layer" + string(rune('a'+i)), Kind: graph.KindMatMul,
			FLOPs: 1e6, ParamBytes: 1 << 20, OutputBytes: 1 << 10, Batch: 4, Channels: 8,
		})
		if prev >= 0 {
			g.MustConnect(prev, id, 1<<10)
		}
		prev = id
	}
	c, err := device.SingleServer(4)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	mm := graph.DefaultMemoryModel()
	place, err := ModelParallel(g, c, mm)
	if err != nil {
		t.Fatalf("ModelParallel: %v", err)
	}
	counts := make([]int, 4)
	for _, d := range place {
		counts[d]++
	}
	for dev, n := range counts {
		if n == 0 {
			t.Errorf("device %d received no stage", dev)
		}
	}
	// Stages must be contiguous in topological order.
	order, _ := g.TopoOrder()
	for i := 1; i < len(order); i++ {
		if place[order[i]] < place[order[i-1]] {
			t.Error("model-parallel stages not monotone along the chain")
		}
	}
}

func TestModelParallelDoesNotFit(t *testing.T) {
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "big", Kind: graph.KindMatMul, ParamBytes: 10 * device.GiB})
	c, err := device.SingleServer(2, device.WithMemory(1*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	_, err = ModelParallel(g, c, graph.DefaultMemoryModel())
	if !errors.Is(err, ErrDoesNotFit) {
		t.Errorf("err = %v, want ErrDoesNotFit", err)
	}
}

func TestSingleDevice(t *testing.T) {
	g := dpFixture(t, 1)
	place := SingleDevice(g)
	for _, d := range place {
		if d != 0 {
			t.Fatal("SingleDevice placed an op off device 0")
		}
	}
}

func TestFitsSingleDevice(t *testing.T) {
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "w", Kind: graph.KindMatMul, ParamBytes: 1 * device.GiB})
	c, err := device.SingleServer(1, device.WithMemory(16*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	mm := graph.DefaultMemoryModel()
	if !FitsSingleDevice(g, c.Device(0), mm) {
		t.Error("4 GiB footprint reported as not fitting 16 GiB")
	}
	small, err := device.SingleServer(1, device.WithMemory(2*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if FitsSingleDevice(g, small.Device(0), mm) {
		t.Error("4 GiB footprint reported as fitting 2 GiB")
	}
}

func TestPublishedSpeedupsSane(t *testing.T) {
	for _, e := range PublishedSpeedups() {
		if e.Normalized <= 0 || e.Normalized > 3 {
			t.Errorf("implausible published speedup %+v", e)
		}
		if e.GPUs != 2 && e.GPUs != 4 && e.GPUs != 8 {
			t.Errorf("unexpected GPU count %+v", e)
		}
		if e.Method.String() == "unknown" {
			t.Errorf("unknown method in %+v", e)
		}
	}
	if len(FastTPaperBars()) == 0 {
		t.Error("no FastT paper bars recorded")
	}
}
