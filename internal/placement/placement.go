// Package placement provides the baseline deployment strategies FastT is
// compared against: TensorFlow-style data parallelism (each replica pinned
// to one GPU, gradient aggregation on GPU 0), memory-balanced model
// parallelism for models that do not fit a single device, and the published
// normalized speeds of the RL-based systems from Fig. 3 of the paper.
package placement

import (
	"errors"
	"fmt"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// Errors returned by the baseline builders.
var (
	// ErrTooManyReplicas is returned when a data-parallel graph references
	// replica indices outside the cluster.
	ErrTooManyReplicas = errors.New("replica index exceeds device count")
	// ErrDoesNotFit is returned when a graph cannot be model-parallel
	// partitioned within the cluster's total memory.
	ErrDoesNotFit = errors.New("graph exceeds cluster memory")
)

// DataParallel places a graph produced by graph.BuildDataParallel the way
// TensorFlow slim's replicated training does: replica r's ops on device r,
// shared gradient-aggregation ops on device 0, and colocation-constrained
// ops with their targets.
func DataParallel(g *graph.Graph, cluster *device.Cluster) ([]int, error) {
	place := make([]int, g.NumOps())
	for _, op := range g.Ops() {
		switch {
		case op.Replica >= 0:
			if op.Replica >= cluster.NumDevices() {
				return nil, fmt.Errorf("%w: replica %d on %d devices",
					ErrTooManyReplicas, op.Replica, cluster.NumDevices())
			}
			place[op.ID] = op.Replica
		default:
			place[op.ID] = 0 // shared sync ops aggregate on GPU 0
		}
	}
	// Apply colocation constraints (e.g. ApplyGradient with its variable).
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		if target, ok := g.OpByName(op.ColocateWith); ok {
			place[op.ID] = place[target.ID]
		}
	}
	return place, nil
}

// ModelParallel partitions a graph over the cluster layer-wise: forward
// operations are cut in topological order into contiguous memory-balanced
// stages (one per device); each backward operation follows the stage of the
// forward op whose activation it consumes, as real layer-wise model
// parallelism does; shared variables land with their first consumer, and
// colocation constraints (AddN/ApplyGradient with their variable) are then
// applied. This is the paper's start strategy for models too large for one
// GPU.
func ModelParallel(g *graph.Graph, cluster *device.Cluster, mm graph.MemoryModel) ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	isStaged := func(op *graph.Op) bool {
		return !graph.IsBackwardKind(op.Kind) && op.Kind != graph.KindVariable
	}
	var total int64
	for _, op := range g.Ops() {
		total += mm.OpBytes(op)
	}
	if total > cluster.TotalMemory() {
		return nil, fmt.Errorf("%w: need %d bytes, have %d",
			ErrDoesNotFit, total, cluster.TotalMemory())
	}
	var stagedTotal int64
	for _, op := range g.Ops() {
		if isStaged(op) {
			stagedTotal += mm.OpBytes(op)
		}
	}

	n := cluster.NumDevices()
	// Front-load earlier stages slightly: the last stage additionally
	// carries the loss/projection outputs and the first backward ops'
	// transients, so an even cut leaves it the peak-memory hotspot.
	budget := int64(1.05 * float64(stagedTotal) / float64(n))
	place := make([]int, g.NumOps())
	for i := range place {
		place[i] = -1
	}
	dev := 0
	var used int64
	for _, id := range order {
		op := g.Op(id)
		if !isStaged(op) {
			continue
		}
		need := mm.OpBytes(op)
		if dev < n-1 && used > 0 && used+need > budget {
			dev++
			used = 0
		}
		place[id] = dev
		used += need
	}
	// Backward ops follow the stage of the forward op they mirror (the
	// producer of the activation they consume); variables land with their
	// first staged consumer.
	for _, id := range order {
		if place[id] >= 0 {
			continue
		}
		place[id] = followStage(g, place, id)
	}
	// Colocation constraints override.
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		if target, ok := g.OpByName(op.ColocateWith); ok && place[target.ID] >= 0 {
			place[op.ID] = place[target.ID]
		}
	}
	return place, nil
}

// followStage picks a device for a non-staged op: the stage of a forward
// predecessor if any, else any placed predecessor, else the stage of its
// first placed successor (variables), else device 0.
func followStage(g *graph.Graph, place []int, id int) int {
	var fallback = -1
	for _, p := range g.Predecessors(id) {
		if place[p] < 0 {
			continue
		}
		if !graph.IsBackwardKind(g.Op(p).Kind) {
			return place[p]
		}
		if fallback < 0 {
			fallback = place[p]
		}
	}
	if fallback >= 0 {
		return fallback
	}
	for _, s := range g.Successors(id) {
		if place[s] >= 0 {
			return place[s]
		}
	}
	return 0
}

// SingleDevice places every op on device 0 (the 1-GPU baseline columns of
// Tables 1 and 2).
func SingleDevice(g *graph.Graph) []int {
	return make([]int, g.NumOps())
}

// FitsSingleDevice reports whether the graph's static footprint fits one
// device — the paper's test for choosing data vs model parallelism as the
// start strategy.
func FitsSingleDevice(g *graph.Graph, d *device.Device, mm graph.MemoryModel) bool {
	var total int64
	for _, op := range g.Ops() {
		total += mm.OpBytes(op)
	}
	return total <= d.MemoryBytes
}
