package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// seedRecordingStrategist is a stub that records the Options.Seed of every
// call and reports the warm start back the way a real search would.
type seedRecordingStrategist struct {
	mu    sync.Mutex
	seeds []*strategy.Artifact
	// won makes each seeded call report that nothing beat the seed.
	won bool
}

func (r *seedRecordingStrategist) strategist() core.Strategist {
	return func(ctx context.Context, g *graph.Graph, cluster *device.Cluster,
		est cost.Estimator, opts core.Options) (*core.Strategy, error) {
		r.mu.Lock()
		r.seeds = append(r.seeds, opts.Seed)
		r.mu.Unlock()
		st := &core.Strategy{
			Artifact: strategy.Artifact{
				SchemaVersion: strategy.SchemaVersion,
				Fingerprint:   strategy.Fingerprint(g),
				Placement:     make([]int, g.NumOps()),
			},
			Graph: g,
		}
		if opts.Seed != nil {
			st.Seeded = true
			st.SeedWon = r.won
		}
		return st, nil
	}
}

func (r *seedRecordingStrategist) seedOf(t *testing.T, call int) *strategy.Artifact {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if call >= len(r.seeds) {
		t.Fatalf("strategist saw %d calls, want at least %d", len(r.seeds), call+1)
	}
	return r.seeds[call]
}

// TestSeedFingerprintMismatchRejected is the satellite validation gate: a
// seed artifact for a different base graph must be rejected up front — a
// related-key lookup or a confused client can never materialize a split
// list against the wrong graph.
func TestSeedFingerprintMismatchRejected(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil)})
	g := tinyGraph(t)
	bad := &strategy.Artifact{
		SchemaVersion: strategy.SchemaVersion,
		Fingerprint:   "not-this-graph",
	}
	_, err := svc.Compute(context.Background(), &Request{
		Graph:   g,
		Cluster: testCluster(t, 2),
		Seed:    bad,
	})
	var br *BadRequestError
	if !errors.As(err, &br) {
		t.Fatalf("mismatched seed: err = %v, want BadRequestError", err)
	}

	// Same gate over HTTP: 400, not a search.
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	seedJSON, _ := json.Marshal(bad)
	resp, body := postCompute(t, srv.URL,
		`{"cluster":{"servers":1,"gpusPerServer":2},"graph":`+graphJSON(t, g)+
			`,"seed":`+string(seedJSON)+`}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP mismatched seed: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestSeedExplicitThreadedToSearch checks that a client-supplied seed for
// the right graph reaches the strategist, is annotated on the response
// (X-Fastt-Seed), and is counted in /v1/stats.
func TestSeedExplicitThreadedToSearch(t *testing.T) {
	rec := &seedRecordingStrategist{won: true}
	svc := New(Config{Strategist: rec.strategist()})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	g := tinyGraph(t)
	seed := &strategy.Artifact{
		SchemaVersion: strategy.SchemaVersion,
		Fingerprint:   strategy.Fingerprint(g),
		Placement:     make([]int, g.NumOps()),
	}
	seedJSON, _ := json.Marshal(seed)
	resp, body := postCompute(t, srv.URL,
		`{"cluster":{"servers":1,"gpusPerServer":2},"graph":`+graphJSON(t, g)+
			`,"seed":`+string(seedJSON)+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeded compute: status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(SeedHeader); got != SeedWon {
		t.Errorf("%s = %q, want %q", SeedHeader, got, SeedWon)
	}
	if got := rec.seedOf(t, 0); got == nil || got.Fingerprint != seed.Fingerprint {
		t.Errorf("strategist saw seed %+v, want the client's", got)
	}

	st := svc.Stats()
	if st.Seeded != 1 || st.SeedWon != 1 {
		t.Errorf("stats seeded/seedWon = %d/%d, want 1/1", st.Seeded, st.SeedWon)
	}

	// A cache hit for the same key reports no seed annotation.
	resp, _ = postCompute(t, srv.URL,
		`{"cluster":{"servers":1,"gpusPerServer":2},"graphFingerprint":"`+seed.Fingerprint+`"}`)
	if got := resp.Header.Get(SeedHeader); got != "" {
		t.Errorf("cache hit %s = %q, want absent", SeedHeader, got)
	}
}

// TestSeedRelatedKeyLookup checks the best-effort cache scan: a cold miss
// for a cluster shape the service has never seen is warm-started from the
// cached artifact with the same graph fingerprint and the nearest device
// count, without the client sending a seed.
func TestSeedRelatedKeyLookup(t *testing.T) {
	rec := &seedRecordingStrategist{}
	svc := New(Config{Strategist: rec.strategist()})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	g := tinyGraph(t)
	// Cold search at 2 GPUs populates the cache; no seed exists yet.
	resp, body := postCompute(t, srv.URL,
		`{"cluster":{"servers":1,"gpusPerServer":2},"graph":`+graphJSON(t, g)+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold compute: status = %d, body %s", resp.StatusCode, body)
	}
	if got := rec.seedOf(t, 0); got != nil {
		t.Errorf("first search saw seed %+v, want none", got)
	}
	if got := resp.Header.Get(SeedHeader); got != "" {
		t.Errorf("cold %s = %q, want absent", SeedHeader, got)
	}

	// Same graph, different shape: a miss, but the 2-GPU artifact seeds it.
	resp, body = postCompute(t, srv.URL,
		`{"cluster":{"servers":1,"gpusPerServer":3},"graph":`+graphJSON(t, g)+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("related compute: status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(SeedHeader); got != SeedUsed {
		t.Errorf("related %s = %q, want %q", SeedHeader, got, SeedUsed)
	}
	got := rec.seedOf(t, 1)
	if got == nil {
		t.Fatal("related-key search saw no seed")
	}
	if fp := strategy.Fingerprint(g); got.Fingerprint != fp {
		t.Errorf("related seed fingerprint = %s, want %s", got.Fingerprint, fp)
	}
	st := svc.Stats()
	if st.Seeded != 1 || st.SeedWon != 0 {
		t.Errorf("stats seeded/seedWon = %d/%d, want 1/0", st.Seeded, st.SeedWon)
	}
}
