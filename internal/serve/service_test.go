package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/strategy"
)

// tinyGraph is a minimal valid DAG for tests that never run a real search.
func tinyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	in := g.MustAddOp(&graph.Op{Name: "in", Kind: graph.KindInput, FLOPs: 100, OutputBytes: 8})
	mid := g.MustAddOp(&graph.Op{Name: "mid", Kind: graph.KindRelu, FLOPs: 100, OutputBytes: 8})
	out := g.MustAddOp(&graph.Op{Name: "out", Kind: graph.KindLoss, FLOPs: 100, OutputBytes: 4})
	g.MustConnect(in, mid, 8)
	g.MustConnect(mid, out, 4)
	return g
}

// stubStrategist returns a trivially valid strategy, optionally blocking on
// gate first (close the gate to release every pending call).
func stubStrategist(gate <-chan struct{}) core.Strategist {
	return func(ctx context.Context, g *graph.Graph, cluster *device.Cluster,
		est cost.Estimator, opts core.Options) (*core.Strategy, error) {
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return &core.Strategy{
			Artifact: strategy.Artifact{
				SchemaVersion: strategy.SchemaVersion,
				Fingerprint:   strategy.Fingerprint(g),
				Placement:     make([]int, g.NumOps()),
			},
			Graph: g,
		}, nil
	}
}

func testCluster(t *testing.T, gpus int) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestThunderingHerdCoalesces is the ISSUE 7 acceptance check: 64
// concurrent identical cold requests perform exactly one search, counted by
// the stats, and every request receives the identical bytes.
func TestThunderingHerdCoalesces(t *testing.T) {
	const herd = 64
	gate := make(chan struct{})
	svc := New(Config{Strategist: stubStrategist(gate), MaxQueue: herd + 1})
	g := tinyGraph(t)
	cluster := testCluster(t, 2)

	results := make([][]byte, herd)
	errs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Compute(context.Background(), &Request{Graph: g, Cluster: cluster})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res.ArtifactJSON
		}(i)
	}
	// All 64 must register as misses on the one blocked flight before it is
	// released — proving they coalesced rather than racing past each other.
	waitFor(t, "herd to assemble", func() bool { return svc.Stats().Cache.Misses == herd })
	if got := svc.Stats().Searches; got != 1 {
		t.Fatalf("searches while herd blocked = %d, want exactly 1", got)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
	st := svc.Stats()
	if st.Searches != 1 {
		t.Errorf("searches = %d, want 1", st.Searches)
	}
	if st.Coalesced != herd-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, herd-1)
	}
	if st.Cache.Misses != herd {
		t.Errorf("misses = %d, want %d", st.Cache.Misses, herd)
	}

	// The herd's artifact is committed: one more request is a pure hit.
	res, err := svc.Compute(context.Background(), &Request{Graph: g, Cluster: cluster})
	if err != nil {
		t.Fatalf("warm request: %v", err)
	}
	if res.Source != SourceHit {
		t.Errorf("warm source = %q, want %q", res.Source, SourceHit)
	}
	if !bytes.Equal(res.ArtifactJSON, results[0]) {
		t.Error("warm bytes differ from the herd's")
	}
}

func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil), MaxSearches: 4, MaxQueue: 64})
	cluster := testCluster(t, 2)
	g1, g2 := tinyGraph(t), func() *graph.Graph {
		g := graph.New()
		a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindInput, FLOPs: 7, OutputBytes: 8})
		b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindLoss, FLOPs: 7, OutputBytes: 4})
		g.MustConnect(a, b, 8)
		return g
	}()
	r1, err := svc.Compute(context.Background(), &Request{Graph: g1, Cluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Compute(context.Background(), &Request{Graph: g2, Cluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key == r2.Key {
		t.Fatal("distinct graphs produced the same cache key")
	}
	if got := svc.Stats().Searches; got != 2 {
		t.Errorf("searches = %d, want 2", got)
	}
	// Same graph, different cluster shape: a third key, a third search.
	if _, err := svc.Compute(context.Background(), &Request{Graph: g1, Cluster: testCluster(t, 4)}); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Searches; got != 3 {
		t.Errorf("searches = %d, want 3", got)
	}
}

func TestQueueOverflowRejects(t *testing.T) {
	gate := make(chan struct{})
	svc := New(Config{Strategist: stubStrategist(gate), MaxSearches: 1, MaxQueue: 1})
	cluster := testCluster(t, 2)
	gs := make([]*graph.Graph, 3)
	for i := range gs {
		g := graph.New()
		a := g.MustAddOp(&graph.Op{Name: fmt.Sprintf("a%d", i), Kind: graph.KindInput, FLOPs: int64(i + 1), OutputBytes: 8})
		b := g.MustAddOp(&graph.Op{Name: fmt.Sprintf("b%d", i), Kind: graph.KindLoss, FLOPs: 1, OutputBytes: 4})
		g.MustConnect(a, b, 8)
		gs[i] = g
	}

	errCh := make(chan error, 2)
	// First search occupies the only slot; second queues (depth 1 = limit).
	go func() {
		_, err := svc.Compute(context.Background(), &Request{Graph: gs[0], Cluster: cluster})
		errCh <- err
	}()
	waitFor(t, "first search to start", func() bool { return svc.Stats().Searches == 1 })
	go func() {
		_, err := svc.Compute(context.Background(), &Request{Graph: gs[1], Cluster: cluster})
		errCh <- err
	}()
	waitFor(t, "second search to queue", func() bool { return svc.Stats().QueueDepth == 1 })

	// Third request overflows the queue and must fail fast.
	_, err := svc.Compute(context.Background(), &Request{Graph: gs[2], Cluster: cluster})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if got := svc.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Errorf("queued request failed: %v", err)
		}
	}
}

func TestSearchTimeout(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(make(chan struct{})), SearchTimeout: 20 * time.Millisecond})
	_, err := svc.Compute(context.Background(), &Request{Graph: tinyGraph(t), Cluster: testCluster(t, 2)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := svc.Stats().SearchErrors; got != 1 {
		t.Errorf("searchErrors = %d, want 1", got)
	}
}

// TestAbandonedFlightCancelsSearch: when every waiter gives up, the flight
// context is cancelled and the search stops; a search with waiters left
// survives one waiter leaving.
func TestAbandonedFlightCancelsSearch(t *testing.T) {
	sawCancel := make(chan struct{})
	strategist := func(ctx context.Context, g *graph.Graph, cluster *device.Cluster,
		est cost.Estimator, opts core.Options) (*core.Strategy, error) {
		<-ctx.Done()
		close(sawCancel)
		return nil, ctx.Err()
	}
	svc := New(Config{Strategist: strategist})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := svc.Compute(ctx, &Request{Graph: tinyGraph(t), Cluster: testCluster(t, 2)})
		errCh <- err
	}()
	waitFor(t, "search to start", func() bool { return svc.Stats().Searches == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("search context never cancelled after the last waiter left")
	}
}

func TestFingerprintOnlyRequests(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil)})
	g := tinyGraph(t)
	cluster := testCluster(t, 2)
	shape := strategy.ClusterShapeOf(cluster)
	fp := strategy.Fingerprint(g)

	// Cold fingerprint-only: nothing cached, nothing to search over.
	_, err := svc.Compute(context.Background(), &Request{Fingerprint: fp, Shape: shape})
	if !errors.Is(err, ErrNotCached) {
		t.Fatalf("cold fingerprint-only err = %v, want ErrNotCached", err)
	}

	if _, err := svc.Compute(context.Background(), &Request{Graph: g, Cluster: cluster}); err != nil {
		t.Fatalf("populate: %v", err)
	}
	res, err := svc.Compute(context.Background(), &Request{Fingerprint: fp, Shape: shape})
	if err != nil {
		t.Fatalf("warm fingerprint-only: %v", err)
	}
	if res.Source != SourceHit {
		t.Errorf("source = %q, want hit", res.Source)
	}
}

// TestCatalogByteEquality runs the real strategist: for catalog models, the
// cold service answer, the warm cached answer, and a direct core
// computation must be byte-identical artifacts.
func TestCatalogByteEquality(t *testing.T) {
	names := []string{"MLP", "LeNet", "VGG-19"}
	if testing.Short() {
		names = names[:1]
	}
	svc := New(Config{})
	const gpus = 2
	cluster := testCluster(t, gpus)
	shape := strategy.ClusterShapeOf(cluster)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec, err := models.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := spec.Build(spec.GlobalBatch / gpus)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.BuildDataParallel(m, gpus)
			if err != nil {
				t.Fatal(err)
			}

			cold, err := svc.Compute(context.Background(), &Request{Model: name, Graph: g, Cluster: cluster})
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if cold.Source != SourceComputed {
				t.Errorf("cold source = %q, want miss", cold.Source)
			}
			warm, err := svc.Compute(context.Background(), &Request{Model: name, Graph: g, Cluster: cluster})
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			if warm.Source != SourceHit {
				t.Errorf("warm source = %q, want hit", warm.Source)
			}
			if !bytes.Equal(cold.ArtifactJSON, warm.ArtifactJSON) {
				t.Fatal("warm artifact differs from cold")
			}

			// Reproduce the service's computation directly through core
			// under the same fixed options and provenance stamp.
			st, err := core.ComputeStrategyCtx(context.Background(), g, cluster, kernels.NewDefaultOracle(cluster), svc.cfg.Sched)
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			art := st.Artifact
			art.Provenance = strategy.Provenance{Model: name, Origin: "fastt-serve", Cluster: shape}
			direct, err := json.Marshal(&art)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cold.ArtifactJSON, direct) {
				t.Fatal("service artifact differs from a direct core computation")
			}

			// The cached artifact round-trips and validates against the
			// graph it was computed for.
			a, err := warm.Artifact()
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(g, cluster); err != nil {
				t.Fatalf("cached artifact invalid: %v", err)
			}
		})
	}
}

func TestServiceStrategistSeam(t *testing.T) {
	svc := New(Config{})
	g := tinyGraph(t)
	cluster := testCluster(t, 2)
	strategist := svc.Strategist()
	st1, err := strategist(context.Background(), g, cluster, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := strategist(context.Background(), g, cluster, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Stats().Searches != 1 {
		t.Errorf("searches = %d, want 1 (second call served from cache)", svc.Stats().Searches)
	}
	if st1.Graph.NumOps() != st2.Graph.NumOps() || len(st1.Placement) != len(st2.Placement) {
		t.Error("strategist seam returned inconsistent strategies")
	}
	for i := range st1.Placement {
		if st1.Placement[i] != st2.Placement[i] {
			t.Fatalf("placement diverges at op %d", i)
		}
	}
}

func TestBadRequests(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil)})
	var br *BadRequestError
	if _, err := svc.Compute(context.Background(), &Request{}); !errors.As(err, &br) {
		t.Errorf("empty request err = %v, want BadRequestError", err)
	}
	if _, err := svc.Compute(context.Background(), &Request{Graph: tinyGraph(t)}); !errors.As(err, &br) {
		t.Errorf("clusterless request err = %v, want BadRequestError", err)
	}
}
