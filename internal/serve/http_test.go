package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// computeResponse mirrors the hand-built envelope for decoding in tests.
type computeResponse struct {
	Cached   bool            `json:"cached"`
	Key      string          `json:"key"`
	Artifact json.RawMessage `json:"artifact"`
}

func postCompute(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/compute", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/compute: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func graphJSON(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.String()
}

func TestHTTPColdWarmByteIdentical(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil)})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	g := tinyGraph(t)
	body := `{"cluster":{"servers":1,"gpusPerServer":2},"graph":` + graphJSON(t, g) + `}`

	resp, cold := postCompute(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d, body %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Errorf("cold %s = %q, want miss", CacheHeader, got)
	}
	var cr computeResponse
	if err := json.Unmarshal(cold, &cr); err != nil {
		t.Fatalf("decode cold response: %v", err)
	}
	if cr.Cached {
		t.Error("cold response claims cached=true")
	}

	resp, warm := postCompute(t, srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(CacheHeader); got != "hit" {
		t.Errorf("warm %s = %q, want hit", CacheHeader, got)
	}
	var wr computeResponse
	if err := json.Unmarshal(warm, &wr); err != nil {
		t.Fatalf("decode warm response: %v", err)
	}
	if !wr.Cached {
		t.Error("warm response claims cached=false")
	}
	if !bytes.Equal(cr.Artifact, wr.Artifact) {
		t.Fatal("warm artifact bytes differ from cold")
	}

	// Fingerprint-only warm request takes the fast path to the same bytes.
	fp := strategy.Fingerprint(g)
	resp, fast := postCompute(t, srv.URL,
		`{"cluster":{"servers":1,"gpusPerServer":2},"graphFingerprint":"`+fp+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint status = %d, body %s", resp.StatusCode, fast)
	}
	var fr computeResponse
	if err := json.Unmarshal(fast, &fr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Artifact, cr.Artifact) {
		t.Fatal("fingerprint-path artifact differs")
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil)})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %v)", err, resp)
	}
	resp.Body.Close()

	body := `{"cluster":{"servers":1,"gpusPerServer":2},"graph":` + graphJSON(t, tinyGraph(t)) + `}`
	postCompute(t, srv.URL, body)
	postCompute(t, srv.URL, body)

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Searches != 1 {
		t.Errorf("stats = hits %d misses %d searches %d, want 1/1/1",
			st.Cache.Hits, st.Cache.Misses, st.Searches)
	}
	if len(st.LatencyCounts) != len(st.LatencyBoundsNs)+1 {
		t.Errorf("latency histogram shape: %d counts for %d bounds",
			len(st.LatencyCounts), len(st.LatencyBoundsNs))
	}
	var total int64
	for _, c := range st.LatencyCounts {
		total += c
	}
	if total != st.Searches {
		t.Errorf("latency histogram total = %d, want %d", total, st.Searches)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	svc := New(Config{Strategist: stubStrategist(nil)})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"clutser":{}}`, http.StatusBadRequest},
		{"no cluster", `{"graphFingerprint":"ab"}`, http.StatusBadRequest},
		{"irregular shape", `{"cluster":{"servers":1,"gpusPerServer":1,"devices":3},"graphFingerprint":"ab"}`, http.StatusBadRequest},
		{"uncached fingerprint", `{"cluster":{"servers":1,"gpusPerServer":2},"graphFingerprint":"ffff"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postCompute(t, srv.URL, tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Errorf("error body not of the form {\"error\": ...}: %s", body)
			}
		})
	}

	resp, err := http.Get(srv.URL + "/v1/compute")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compute status = %d, want 405", resp.StatusCode)
	}
}
