package serve

import (
	"context"
	"sync"

	"fastt/internal/strategy"
)

// flight is one in-progress search shared by every concurrent request for
// its key. The leader writes bytes/err and closes done exactly once; refs
// counts the waiting requests so the search is cancelled only when ALL of
// them have abandoned it — one impatient client must not kill a search
// others are still waiting on.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	refs   int // guarded by flightGroup.mu

	// Written by the leader before close(done); read after <-done. seed is
	// the warm-start annotation ("", SeedUsed or SeedWon) shared by every
	// waiter, since all of them receive the one led search's artifact.
	bytes []byte
	seed  string
	err   error
}

// flightGroup is the singleflight table: at most one flight per cache key.
type flightGroup struct {
	mu      sync.Mutex
	flights map[strategy.CacheKey]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[strategy.CacheKey]*flight)}
}

// join attaches the caller to the key's flight. Three outcomes: join a
// running flight (leader=false), start a new one (leader=true), or — the
// race the locked cache re-probe closes — return the bytes a just-retired
// flight committed between the caller's lock-free cache miss and this call.
// The commit ordering (cache put BEFORE retire) makes the re-probe
// sufficient: if no flight covers the key, a completed search's bytes are
// already visible in the cache.
func (g *flightGroup) join(key strategy.CacheKey, c *cache) (f *flight, leader bool, cached []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.flights[key]; f != nil {
		f.refs++
		return f, false, nil
	}
	if b := c.get(key); b != nil {
		return nil, false, b
	}
	ctx, cancel := context.WithCancel(context.Background())
	f = &flight{ctx: ctx, cancel: cancel, done: make(chan struct{}), refs: 1}
	g.flights[key] = f
	return f, true, nil
}

// abandon detaches one waiter; the last one out cancels the search.
func (g *flightGroup) abandon(f *flight) {
	g.mu.Lock()
	f.refs--
	last := f.refs == 0
	g.mu.Unlock()
	if last {
		f.cancel()
	}
}

// retire publishes the flight's outcome: remove it from the table (new
// requests for the key now see the cache, which the leader populated before
// calling retire) and wake the waiters.
func (g *flightGroup) retire(key strategy.CacheKey, f *flight) {
	g.mu.Lock()
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	close(f.done)
	f.cancel()
}
