package serve

import (
	"fmt"
	"testing"

	"fastt/internal/strategy"
)

func testKey(i int) strategy.CacheKey {
	return strategy.CacheKey{
		Fingerprint: fmt.Sprintf("fp-%04d", i),
		Cluster:     strategy.ClusterShape{Servers: 1, GPUsPerServer: 2},
		CostHash:    "h",
	}
}

func TestCacheDistinctKeysNeverCollide(t *testing.T) {
	var m metrics
	c := newCache(1<<20, 4, &m)
	const n = 200
	for i := 0; i < n; i++ {
		c.put(testKey(i), []byte(fmt.Sprintf("artifact-%d", i)), 32)
	}
	for i := 0; i < n; i++ {
		got := c.get(testKey(i))
		if want := fmt.Sprintf("artifact-%d", i); string(got) != want {
			t.Fatalf("key %d returned %q, want %q", i, got, want)
		}
	}
	if ev := m.evictions.Load(); ev != 0 {
		t.Errorf("evictions = %d under an ample budget, want 0", ev)
	}
}

func TestCacheLRUEvictionRespectsByteBudget(t *testing.T) {
	var m metrics
	c := newCache(1000, 1, &m) // one shard: budget exactly 1000 bytes
	for i := 0; i < 20; i++ {
		c.put(testKey(i), []byte("x"), 100) // accounted size 100 each
	}
	_, bytes := c.usage()
	if bytes > 1000 {
		t.Fatalf("cache holds %d bytes, budget 1000", bytes)
	}
	if ev := m.evictions.Load(); ev != 10 {
		t.Errorf("evictions = %d, want 10", ev)
	}
	// The cold half is gone, the warm half retained in LRU order.
	for i := 0; i < 10; i++ {
		if c.get(testKey(i)) != nil {
			t.Errorf("key %d survived eviction, want evicted", i)
		}
	}
	for i := 10; i < 20; i++ {
		if c.get(testKey(i)) == nil {
			t.Errorf("key %d evicted, want retained", i)
		}
	}
}

func TestCacheGetPromotes(t *testing.T) {
	var m metrics
	c := newCache(300, 1, &m)
	c.put(testKey(0), []byte("a"), 100)
	c.put(testKey(1), []byte("b"), 100)
	c.put(testKey(2), []byte("c"), 100)
	c.get(testKey(0)) // 0 becomes most recently used; 1 is now coldest
	c.put(testKey(3), []byte("d"), 100)
	if c.get(testKey(1)) != nil {
		t.Error("coldest key 1 survived, want evicted")
	}
	if c.get(testKey(0)) == nil {
		t.Error("promoted key 0 evicted, want retained")
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	var m metrics
	c := newCache(100, 1, &m)
	c.put(testKey(0), []byte("small"), 50)
	c.put(testKey(1), []byte("huge"), 500) // over the whole shard budget
	if c.get(testKey(1)) != nil {
		t.Error("oversized entry was cached")
	}
	if c.get(testKey(0)) == nil {
		t.Error("existing entry evicted by an entry that was never admitted")
	}
}

func TestCacheReplaceAdjustsAccounting(t *testing.T) {
	var m metrics
	c := newCache(1000, 1, &m)
	c.put(testKey(0), []byte("v1"), 100)
	c.put(testKey(0), []byte("v2"), 300)
	entries, bytes := c.usage()
	if entries != 1 || bytes != 300 {
		t.Errorf("usage = (%d entries, %d bytes), want (1, 300)", entries, bytes)
	}
	if got := c.get(testKey(0)); string(got) != "v2" {
		t.Errorf("get = %q, want v2", got)
	}
}
