// Package serve is the strategy-as-a-service daemon behind `fastt serve`: a
// long-running process that answers "place this graph on this cluster under
// these costs" requests from a sharded in-memory artifact cache, coalescing
// concurrent identical requests onto one OS-DPOS search. Baechi's argument
// (PAPERS.md) is that device placement is operationally useful only when it
// is fast and repeatable at serving time; PR 3 made strategies cacheable
// deployment units with exact provenance keys, and this package amortizes
// the (already ~30ms) cold search across every client that asks the same
// question.
//
// The cache key is the PR 3 provenance triple — base-graph fingerprint ×
// cluster shape × cost-model hash (strategy.CacheKey). Scheduling options
// are deliberately not part of the key: the service computes every strategy
// under one fixed option set chosen at startup, so equal keys imply equal
// artifacts. (Warm-start seeding is the one best-effort exception — see
// Request.Seed.) See DESIGN.md "Strategy service".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/strategy"
	"fastt/internal/validate"
)

// Service errors mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull reports that the bounded admission queue is at capacity;
	// clients should back off and retry (HTTP 429).
	ErrQueueFull = errors.New("serve: search queue full")
	// ErrNotCached reports a fingerprint-only request whose artifact is
	// neither cached nor being computed; the client must resend with the
	// full graph (HTTP 404).
	ErrNotCached = errors.New("serve: artifact not cached and no graph provided")
)

// BadRequestError reports a malformed or unsatisfiable request (HTTP 400).
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return "serve: bad request: " + e.Msg }

func badRequest(format string, args ...any) error {
	return &BadRequestError{Msg: fmt.Sprintf(format, args...)}
}

// Config tunes the service. The zero value is usable: every field has a
// production default.
type Config struct {
	// CacheBytes is the total artifact-cache budget across shards.
	// Default 256 MiB.
	CacheBytes int64
	// Shards is the cache shard count. Default 16.
	Shards int
	// Sched is the scheduling option set every search runs under; zero
	// MaxSplitOps/MaxSyncGroups default to the CLI's production values (8
	// each). Sched.Workers sizes one search's worker pool and feeds the
	// MaxSearches default.
	Sched core.Options
	// MaxSearches bounds concurrently running searches. Default
	// max(1, GOMAXPROCS / max(1, Sched.Workers)): enough searches to fill
	// the machine without oversubscribing each search's own pool.
	MaxSearches int
	// MaxQueue bounds searches waiting for an admission slot; beyond it,
	// requests fail fast with ErrQueueFull. Default 64.
	MaxQueue int
	// SearchTimeout caps one search's wall time (a request may additionally
	// carry its own, tighter deadline). Default 60s; negative disables.
	SearchTimeout time.Duration
	// SearchDelay injects extra latency at the start of every search while
	// it holds its admission slot. A load-testing aid: it widens the window
	// in which concurrent identical requests coalesce and lets harnesses
	// exercise queueing and 429s without giant graphs. Zero (the default)
	// disables it.
	SearchDelay time.Duration
	// Strategist computes strategies; nil means core.ComputeStrategyCtx.
	// Tests substitute stubs to make coalescing and admission observable.
	Strategist core.Strategist
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.CacheBytes <= 0 {
		out.CacheBytes = 256 << 20
	}
	if out.Shards <= 0 {
		out.Shards = 16
	}
	if out.Sched.MaxSplitOps == 0 {
		out.Sched.MaxSplitOps = 8
	}
	if out.Sched.MaxSyncGroups == 0 {
		out.Sched.MaxSyncGroups = 8
	}
	if out.MaxSearches <= 0 {
		workers := out.Sched.Workers
		if workers < 1 {
			workers = 1
		}
		out.MaxSearches = runtime.GOMAXPROCS(0) / workers
		if out.MaxSearches < 1 {
			out.MaxSearches = 1
		}
	}
	if out.MaxQueue <= 0 {
		out.MaxQueue = 64
	}
	if out.SearchTimeout == 0 {
		out.SearchTimeout = 60 * time.Second
	}
	if out.Strategist == nil {
		out.Strategist = core.ComputeStrategyCtx
	}
	return out
}

// Service answers strategy requests from the cache, coalescing concurrent
// identical misses onto one search and bounding search concurrency.
type Service struct {
	cfg      Config
	cache    *cache
	metrics  metrics
	flights  *flightGroup
	sem      chan struct{} // admission slots for running searches
	maxQueue int
}

// New builds a service from cfg (zero value = defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxSearches),
		maxQueue: cfg.MaxQueue,
	}
	s.cache = newCache(cfg.CacheBytes, cfg.Shards, &s.metrics)
	s.flights = newFlightGroup()
	return s
}

// Request is one strategy question. The in-process form (the session, the
// tests) fills Graph/Cluster/Est directly; the HTTP handler builds it from
// the wire encoding. Fingerprint, Shape and CostHash may be provided
// explicitly — a fingerprint-carrying request whose artifact is cached is
// answered without touching the graph at all, the warm fast path loadgen
// measures.
type Request struct {
	// Model optionally names the catalog model, for provenance only.
	Model string
	// Graph is the base computation graph. May be nil on fingerprint-only
	// requests (answerable from cache or a running flight).
	Graph *graph.Graph
	// Fingerprint identifies the base graph; computed from Graph when
	// empty.
	Fingerprint string
	// Cluster is the target cluster. When nil it is built from Shape,
	// which must then be a regular Servers × GPUsPerServer shape.
	Cluster *device.Cluster
	// Shape is the cluster shape; derived from Cluster when zero.
	Shape strategy.ClusterShape
	// Est is the cost estimator; nil means the default kernel oracle for
	// the cluster.
	Est cost.Estimator
	// CostHash fingerprints the learned cost model; derived from Est when
	// empty and Est serializes itself (the stateless oracle hashes to "").
	CostHash string
	// Seed optionally warm-starts a cache-miss search from a prior artifact
	// for the same base graph (core.Options.Seed): the search prunes against
	// the seed's re-evaluated makespan and falls back to it when nothing
	// beats it. A seed whose fingerprint does not match the request's graph
	// is rejected up front as a bad request. When nil, the service looks for
	// a related cached artifact itself — same fingerprint, different cluster
	// shape or cost hash — so a client recomputing after an elastic resize
	// gets the warm start for free.
	//
	// Seeding is best-effort and does not enter the cache key: in the rare
	// case where the seed wins outright, the cached artifact can differ from
	// what a cold search would have produced (it is never worse by predicted
	// makespan for that search's estimator).
	Seed *strategy.Artifact
}

// Source says how a result was obtained.
type Source string

const (
	// SourceHit: answered from the cache.
	SourceHit Source = "hit"
	// SourceComputed: this request led the search.
	SourceComputed Source = "miss"
	// SourceCoalesced: this request joined another request's search.
	SourceCoalesced Source = "coalesced"
)

// Seed annotations on a Result: how the search that produced it used a
// warm-start seed, if at all. Empty means a cache hit or a cold search.
const (
	// SeedUsed: the search was warm-started and a candidate beat the seed.
	SeedUsed = "seeded"
	// SeedWon: nothing beat the seed; the response IS the re-materialized
	// seed strategy.
	SeedWon = "won"
)

// Result is a strategy answer: the artifact's compact JSON (shared,
// read-only — byte-identical across hit, computed, and coalesced responses
// for one key) plus how it was obtained.
type Result struct {
	Key          strategy.CacheKey
	ArtifactJSON []byte
	Source       Source
	// Seed is "" (cold or cache hit), SeedUsed, or SeedWon.
	Seed string
}

// Artifact decodes the result's artifact.
func (r *Result) Artifact() (*strategy.Artifact, error) {
	var a strategy.Artifact
	if err := json.Unmarshal(r.ArtifactJSON, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// resolveKey derives the request's cache key without building anything
// expensive: fingerprint from the graph only when not given, shape from the
// cluster only when not given, cost hash from the estimator only when it is
// a self-serializing learned model.
func resolveKey(req *Request) (strategy.CacheKey, error) {
	key := strategy.CacheKey{Fingerprint: req.Fingerprint, Cluster: req.Shape, CostHash: req.CostHash}
	if key.Fingerprint == "" {
		if req.Graph == nil {
			return key, badRequest("neither graph nor graphFingerprint given")
		}
		key.Fingerprint = strategy.Fingerprint(req.Graph)
	}
	if key.Cluster == (strategy.ClusterShape{}) {
		if req.Cluster == nil {
			return key, badRequest("neither cluster nor cluster shape given")
		}
		key.Cluster = strategy.ClusterShapeOf(req.Cluster)
	}
	if key.Cluster.NumDevices() < 1 {
		return key, badRequest("cluster shape %+v has no devices", key.Cluster)
	}
	if key.CostHash == "" && req.Est != nil {
		key.CostHash = CostHashOf(req.Est)
	}
	return key, nil
}

// CostHashOf fingerprints an estimator for the cache key: a learned model
// that can serialize itself (cost.Model) hashes its snapshot; a stateless
// oracle hashes to "" — its predictions are a pure function of the cluster
// shape already in the key.
func CostHashOf(est cost.Estimator) string {
	w, ok := est.(interface{ WriteJSON(io.Writer) error })
	if !ok {
		return ""
	}
	h, err := strategy.HashJSON(w.WriteJSON)
	if err != nil {
		return ""
	}
	return h
}

// Compute answers one request: cache hit, joining a running flight, or
// leading a new search, in that order. ctx cancels only this caller's wait;
// a led search keeps running for other waiters until the last one abandons
// it (see flightGroup).
func (s *Service) Compute(ctx context.Context, req *Request) (*Result, error) {
	key, err := resolveKey(req)
	if err != nil {
		return nil, err
	}
	if req.Seed != nil && req.Seed.Fingerprint != key.Fingerprint {
		// Checked before the cache probe: a request carrying a seed for a
		// different model is malformed whether or not the answer is cached.
		return nil, badRequest("seed strategy is for graph %s, request is for %s",
			req.Seed.Fingerprint, key.Fingerprint)
	}
	if b := s.cache.get(key); b != nil {
		s.metrics.hits.Add(1)
		return &Result{Key: key, ArtifactJSON: b, Source: SourceHit}, nil
	}
	f, leader, cached := s.flights.join(key, s.cache)
	if cached != nil {
		// The flight that was covering this key committed between our cache
		// probe and the flight lookup; the locked re-probe caught it.
		s.metrics.hits.Add(1)
		return &Result{Key: key, ArtifactJSON: cached, Source: SourceHit}, nil
	}
	s.metrics.misses.Add(1)
	if leader {
		go s.lead(f, key, req)
	} else {
		s.metrics.coalesced.Add(1)
	}
	select {
	case <-f.done:
		if f.err != nil {
			return nil, f.err
		}
		src := SourceCoalesced
		if leader {
			src = SourceComputed
		}
		return &Result{Key: key, ArtifactJSON: f.bytes, Source: src, Seed: f.seed}, nil
	case <-ctx.Done():
		s.flights.abandon(f)
		return nil, ctx.Err()
	}
}

// lead runs one search on behalf of every waiter of f: admission control,
// the strategist, validation, provenance stamping, and the cache commit.
// Commit ordering is the coalescing correctness invariant — put the bytes
// in the cache BEFORE retiring the flight, so no request can miss the cache
// and then find no flight covering the key.
func (s *Service) lead(f *flight, key strategy.CacheKey, req *Request) {
	f.bytes, f.seed, f.err = s.search(f.ctx, key, req)
	if f.err == nil {
		s.cache.put(key, f.bytes, int64(len(f.bytes)))
	}
	s.flights.retire(key, f)
}

// search runs the admission-controlled strategy computation and returns the
// artifact's compact JSON plus the seed annotation ("", SeedUsed or SeedWon).
func (s *Service) search(ctx context.Context, key strategy.CacheKey, req *Request) ([]byte, string, error) {
	if req.Graph == nil {
		// Fingerprint-only miss with no running flight to join: the service
		// has no graph to search over. Checked before admission so the
		// rejection consumes no queue slot.
		return nil, "", ErrNotCached
	}
	if depth := s.metrics.queueDepth.Add(1); depth > int64(s.maxQueue) {
		s.metrics.queueDepth.Add(-1)
		s.metrics.rejected.Add(1)
		return nil, "", ErrQueueFull
	}
	select {
	case s.sem <- struct{}{}:
		s.metrics.queueDepth.Add(-1)
	case <-ctx.Done():
		s.metrics.queueDepth.Add(-1)
		return nil, "", ctx.Err()
	}
	defer func() { <-s.sem }()

	if s.cfg.SearchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SearchTimeout)
		defer cancel()
	}
	if s.cfg.SearchDelay > 0 {
		t := time.NewTimer(s.cfg.SearchDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, "", ctx.Err()
		}
	}

	cluster := req.Cluster
	if cluster == nil {
		shape := key.Cluster
		if shape.Devices > 0 || shape.Classes != "" {
			// Count-only regular shapes are the only ones the service can
			// materialize itself; irregular or classed mixes carry topology
			// the shape encoding alone cannot reconstruct.
			return nil, "", badRequest("irregular or classed cluster shape %+v needs an explicit cluster", shape)
		}
		var err error
		if cluster, err = device.NewCluster(shape.Servers, shape.GPUsPerServer); err != nil {
			return nil, "", badRequest("cluster shape %+v: %v", shape, err)
		}
	}
	est := req.Est
	if est == nil {
		est = kernels.NewDefaultOracle(cluster)
	}

	// Warm-start the search: an explicit client seed wins; otherwise scan the
	// cache for a related artifact — same graph fingerprint under a different
	// cluster shape or cost model, the signature of an elastic resize or a
	// cost-model refresh. Fingerprint mismatch on the explicit seed was
	// rejected in Compute; the related pick is re-checked defensively here.
	opts := s.cfg.Sched
	if req.Seed != nil {
		opts.Seed = req.Seed
	} else if b := s.cache.related(key, key.Cluster.NumDevices()); b != nil {
		var prior strategy.Artifact
		if err := json.Unmarshal(b, &prior); err == nil && prior.Fingerprint == key.Fingerprint {
			opts.Seed = &prior
		}
	}

	s.metrics.searches.Add(1)
	start := time.Now()
	st, err := s.cfg.Strategist(ctx, req.Graph, cluster, est, opts)
	if err != nil {
		s.metrics.searchErrors.Add(1)
		return nil, "", err
	}
	s.metrics.observeSearch(time.Since(start))
	seed := ""
	if st.Seeded {
		s.metrics.seeded.Add(1)
		seed = SeedUsed
		if st.SeedWon {
			s.metrics.seedWon.Add(1)
			seed = SeedWon
		}
	}
	if err := validate.Strategy(st, cluster, validate.Options{SkipMemory: true}); err != nil {
		s.metrics.searchErrors.Add(1)
		return nil, "", fmt.Errorf("serve: computed strategy invalid: %w", err)
	}
	art := st.Artifact
	art.Provenance = strategy.Provenance{
		Model:    req.Model,
		Origin:   "fastt-serve",
		Cluster:  key.Cluster,
		CostHash: key.CostHash,
	}
	b, err := json.Marshal(&art)
	return b, seed, err
}

// Strategist adapts the service to the core.Strategist seam, making a
// session (or any in-process caller) one more client of the cached service
// path: its answers come from the same cache, coalesce with HTTP requests
// for the same key, and carry service provenance. The caller's warm-start
// seed (a session recomputing after a resize passes its pre-resize artifact)
// rides along; other scheduling options stay the service's own, since they
// are fixed per deployment and excluded from the cache key.
func (s *Service) Strategist() core.Strategist {
	return func(ctx context.Context, g *graph.Graph, cluster *device.Cluster,
		est cost.Estimator, opts core.Options) (*core.Strategy, error) {
		res, err := s.Compute(ctx, &Request{Graph: g, Cluster: cluster, Est: est, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		art, err := res.Artifact()
		if err != nil {
			return nil, fmt.Errorf("serve: decode cached artifact: %w", err)
		}
		mg, err := art.Materialize(g)
		if err != nil {
			return nil, fmt.Errorf("serve: materialize cached artifact: %w", err)
		}
		return &core.Strategy{
			Artifact:   *art,
			Graph:      mg,
			Priorities: art.PriorityIndex(),
		}, nil
	}
}
