package serve

import (
	"testing"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

// TestSessionAsServiceClient wires two identically-seeded sessions through
// one shared service via the Strategist seam. The second session's training
// trajectory replays the first's exactly — same profiles, same cost-model
// snapshots, same provenance keys — so every one of its strategy
// computations must be answered from the cache: zero new searches.
func TestSessionAsServiceClient(t *testing.T) {
	spec, err := models.ByName("MLP")
	if err != nil {
		t.Fatal(err)
	}
	const gpus = 2
	m, err := spec.Build(spec.GlobalBatch / gpus)
	if err != nil {
		t.Fatal(err)
	}
	train, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		t.Fatal(err)
	}
	sched := core.Options{MaxSplitOps: 8, MaxSyncGroups: 8, Workers: 1}
	svc := New(Config{Sched: sched})

	bootstrap := func() *session.Session {
		t.Helper()
		cluster, err := device.SingleServer(gpus)
		if err != nil {
			t.Fatal(err)
		}
		s, err := session.New(cluster, sim.DefaultExecutor(cluster), train, session.Config{
			Seed:       1,
			Sched:      sched,
			Strategist: svc.Strategist(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Bootstrap(); err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
		return s
	}

	s1 := bootstrap()
	st := svc.Stats()
	if st.Searches == 0 {
		t.Fatal("first session never reached the service")
	}
	searchesAfterFirst, hitsAfterFirst := st.Searches, st.Cache.Hits

	s2 := bootstrap()
	st = svc.Stats()
	if st.Searches != searchesAfterFirst {
		t.Errorf("second session triggered %d new searches, want 0 (all cache hits)",
			st.Searches-searchesAfterFirst)
	}
	if st.Cache.Hits <= hitsAfterFirst {
		t.Errorf("second session produced no cache hits (hits %d -> %d)",
			hitsAfterFirst, st.Cache.Hits)
	}

	// Served from the same cache entries, both sessions converge on the
	// same deployment.
	a1, a2 := s1.ActiveArtifact(), s2.ActiveArtifact()
	if a1 == nil || a2 == nil {
		t.Fatal("missing active artifact")
	}
	if a1.Fingerprint != a2.Fingerprint || len(a1.Placement) != len(a2.Placement) {
		t.Fatal("sessions diverged on artifact shape")
	}
	for i := range a1.Placement {
		if a1.Placement[i] != a2.Placement[i] {
			t.Fatalf("placement diverges at op %d", i)
		}
	}
}
