package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// CacheHeader reports how a /v1/compute response was obtained: "hit",
// "miss" (this request led the search) or "coalesced" (it joined one).
const CacheHeader = "X-Fastt-Cache"

// SeedHeader reports how the search behind a /v1/compute response used a
// warm-start seed: "seeded" (the seed bounded the search), "won" (nothing
// beat the seed; the artifact is the re-materialized seed strategy). Absent
// on cold searches and cache hits.
const SeedHeader = "X-Fastt-Seed"

// computeRequest is the wire form of a strategy question.
type computeRequest struct {
	// Model optionally names the catalog model (provenance only).
	Model string `json:"model,omitempty"`
	// Graph is the base graph in graph.WriteJSON form. Optional when
	// GraphFingerprint identifies an artifact the service already has.
	Graph json.RawMessage `json:"graph,omitempty"`
	// GraphFingerprint is strategy.Fingerprint of the base graph — the warm
	// fast path: a cached answer skips graph parsing entirely.
	GraphFingerprint string `json:"graphFingerprint,omitempty"`
	// Cluster is the target topology. The HTTP API accepts regular
	// Servers × GPUsPerServer shapes only.
	Cluster strategy.ClusterShape `json:"cluster"`
	// Costs is an optional learned cost-model snapshot (cost.Model JSON).
	// Absent, the service prices ops with its deterministic kernel oracle.
	Costs json.RawMessage `json:"costs,omitempty"`
	// CostHash overrides the cost-model hash in the cache key; computed
	// from Costs when empty. Clients that already hashed their model (the
	// session does) pass it so both sides agree on the key exactly.
	CostHash string `json:"costHash,omitempty"`
	// Seed is an optional strategy artifact (strategy.Artifact JSON) that
	// warm-starts a cache-miss search for the same base graph — typically
	// the artifact a client computed before its cluster changed shape. A
	// seed for a different graph fingerprint is rejected with 400. Absent,
	// the service still tries its own cache for a related artifact.
	Seed json.RawMessage `json:"seed,omitempty"`
	// TimeoutMs optionally caps this request's wall time.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/compute  strategy question -> artifact answer
//	GET  /v1/stats    counters snapshot (see Stats)
//	GET  /healthz     liveness
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compute", s.handleCompute)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Service) handleCompute(w http.ResponseWriter, r *http.Request) {
	var wire computeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	req, err := s.buildRequest(&wire)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	ctx := r.Context()
	if wire.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(wire.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Compute(ctx, req)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheHeader, string(res.Source))
	if res.Seed != "" {
		w.Header().Set(SeedHeader, res.Seed)
	}
	// The envelope is assembled by hand so the artifact bytes — shared with
	// the cache entry — reach every client verbatim: a warm response is
	// byte-identical to the cold one that populated it.
	w.Write([]byte(`{"cached":`))
	if res.Source == SourceHit {
		w.Write([]byte(`true`))
	} else {
		w.Write([]byte(`false`))
	}
	w.Write([]byte(`,"key":`))
	keyJSON, _ := json.Marshal(res.Key.String())
	w.Write(keyJSON)
	w.Write([]byte(`,"artifact":`))
	w.Write(res.ArtifactJSON)
	w.Write([]byte("}\n"))
}

// buildRequest converts the wire form into a service request, parsing the
// graph and costs only when present — a fingerprint-carrying warm request
// allocates next to nothing before the cache answers it.
func (s *Service) buildRequest(wire *computeRequest) (*Request, error) {
	shape := wire.Cluster
	if shape.Devices > 0 {
		return nil, badRequest("irregular cluster shapes are not accepted over HTTP")
	}
	if shape.Servers < 1 || shape.GPUsPerServer < 1 {
		return nil, badRequest("cluster must give servers >= 1 and gpusPerServer >= 1, got %+v", shape)
	}
	req := &Request{
		Model:       wire.Model,
		Fingerprint: wire.GraphFingerprint,
		Shape:       shape,
		CostHash:    wire.CostHash,
	}
	if len(wire.Graph) > 0 {
		g, err := graph.ReadJSON(bytes.NewReader(wire.Graph))
		if err != nil {
			return nil, badRequest("parse graph: %v", err)
		}
		if g.HasCycles() {
			return nil, badRequest("graph has cycles; unroll it first")
		}
		req.Graph = g
	}
	if len(wire.Seed) > 0 {
		var prior strategy.Artifact
		if err := json.Unmarshal(wire.Seed, &prior); err != nil {
			return nil, badRequest("parse seed strategy: %v", err)
		}
		req.Seed = &prior
	}
	if len(wire.Costs) > 0 {
		cluster, err := device.NewCluster(shape.Servers, shape.GPUsPerServer)
		if err != nil {
			return nil, badRequest("cluster shape %+v: %v", shape, err)
		}
		model := cost.NewModel(cluster)
		if err := model.ReadJSON(bytes.NewReader(wire.Costs)); err != nil {
			return nil, badRequest("parse costs: %v", err)
		}
		req.Cluster = cluster
		req.Est = model
	}
	return req, nil
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// writeComputeError maps service errors onto HTTP statuses: malformed
// requests 400, unknown fingerprints 404, a full admission queue 429, an
// abandoned or timed-out search 504, anything else 500.
func writeComputeError(w http.ResponseWriter, err error) {
	var br *BadRequestError
	switch {
	case errors.As(err, &br):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrNotCached):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		httpError(w, http.StatusGatewayTimeout, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(body)
	w.Write([]byte("\n"))
}
