package serve

import (
	"sync/atomic"
	"time"
)

// numLatencyBounds is the bucket-bound count; the histogram carries one
// extra overflow bucket.
const numLatencyBounds = 13

// latencyBounds are the fixed upper bounds of the search-latency histogram
// buckets. A cold catalog search lands around 30ms and a trivial graph under
// 1ms, so the range spans 500µs to 5s with a final overflow bucket.
var latencyBounds = [numLatencyBounds]time.Duration{
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	5 * time.Second,
}

// metrics is the service's single source of truth for observability: every
// counter the HTTP stats endpoint, the tests, and loadgen consume lives
// here, updated with atomics on the hot path (no locks, no allocation).
type metrics struct {
	hits      atomic.Int64 // requests answered from the cache
	misses    atomic.Int64 // requests that found no cached artifact (leaders and joiners both)
	coalesced atomic.Int64 // misses that joined an already-running search

	searches     atomic.Int64 // OS-DPOS searches started
	searchErrors atomic.Int64 // searches that returned an error (incl. timeout)
	evictions    atomic.Int64 // cache entries evicted by the byte budget
	rejected     atomic.Int64 // requests bounced with ErrQueueFull

	seeded  atomic.Int64 // searches warm-started from a seed artifact
	seedWon atomic.Int64 // seeded searches where nothing beat the seed

	queueDepth atomic.Int64 // searches currently waiting for an admission slot

	latency [numLatencyBounds + 1]atomic.Int64
}

// observeSearch records one completed search's wall time.
func (m *metrics) observeSearch(d time.Duration) {
	for i, b := range latencyBounds {
		if d <= b {
			m.latency[i].Add(1)
			return
		}
	}
	m.latency[len(latencyBounds)].Add(1)
}

// CacheStats is the cache section of a stats snapshot.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budgetBytes"`
	Shards      int   `json:"shards"`
}

// Stats is a point-in-time snapshot of the service counters, served as JSON
// by GET /v1/stats.
type Stats struct {
	Cache        CacheStats `json:"cache"`
	Coalesced    int64      `json:"coalesced"`
	Searches     int64      `json:"searches"`
	SearchErrors int64      `json:"searchErrors"`
	// Seeded counts searches warm-started from a prior artifact (explicit
	// client seed or the service's own related-key cache scan); SeedWon
	// counts the subset where no candidate beat the seed and the response is
	// the re-materialized seed strategy.
	Seeded      int64 `json:"seeded"`
	SeedWon     int64 `json:"seedWon"`
	Rejected    int64 `json:"rejected"`
	QueueDepth  int64 `json:"queueDepth"`
	MaxQueue    int   `json:"maxQueue"`
	MaxSearches int   `json:"maxSearches"`
	// LatencyBoundsNs[i] is the inclusive upper bound of LatencyCounts[i];
	// the final count is the overflow bucket and has no bound.
	LatencyBoundsNs []int64 `json:"searchLatencyBoundsNs"`
	LatencyCounts   []int64 `json:"searchLatencyCounts"`
}

// Stats snapshots the service counters. Counters are read individually
// without a global lock, so a snapshot taken mid-request may be off by a
// request on any one axis; each counter is itself exact.
func (s *Service) Stats() Stats {
	entries, bytes := s.cache.usage()
	st := Stats{
		Cache: CacheStats{
			Hits:        s.metrics.hits.Load(),
			Misses:      s.metrics.misses.Load(),
			Evictions:   s.metrics.evictions.Load(),
			Entries:     entries,
			Bytes:       bytes,
			BudgetBytes: s.cache.budget(),
			Shards:      len(s.cache.shards),
		},
		Coalesced:       s.metrics.coalesced.Load(),
		Searches:        s.metrics.searches.Load(),
		SearchErrors:    s.metrics.searchErrors.Load(),
		Seeded:          s.metrics.seeded.Load(),
		SeedWon:         s.metrics.seedWon.Load(),
		Rejected:        s.metrics.rejected.Load(),
		QueueDepth:      s.metrics.queueDepth.Load(),
		MaxQueue:        s.maxQueue,
		MaxSearches:     cap(s.sem),
		LatencyBoundsNs: make([]int64, len(latencyBounds)),
		LatencyCounts:   make([]int64, len(latencyBounds)+1),
	}
	for i, b := range latencyBounds {
		st.LatencyBoundsNs[i] = int64(b)
	}
	for i := range s.metrics.latency {
		st.LatencyCounts[i] = s.metrics.latency[i].Load()
	}
	return st
}
