package serve

import (
	"container/list"
	"sync"

	"fastt/internal/strategy"
)

// entry is one cached artifact: its compact JSON encoding (the bytes every
// response carries verbatim, so hits are byte-identical to the cold
// response) and its accounted size.
type entry struct {
	key   strategy.CacheKey
	bytes []byte
	size  int64
}

// shard is one lock domain of the cache: an LRU list with a byte budget.
// Entries are strategy artifacts — a few KB each — so per-shard state is a
// plain mutex-guarded map + intrusive list; at 16 shards the lock is
// uncontended even under loadgen's full concurrency.
type shard struct {
	mu     sync.Mutex
	budget int64
	used   int64
	items  map[strategy.CacheKey]*list.Element
	lru    *list.List // front = most recently used; values are *entry
}

// cache is the sharded artifact store. The shard index is the key's FNV-1a
// hash modulo the shard count, so the three key coordinates (fingerprint,
// cluster shape, cost hash) all contribute to spreading.
type cache struct {
	shards  []*shard
	metrics *metrics
}

func newCache(totalBytes int64, shards int, m *metrics) *cache {
	c := &cache{shards: make([]*shard, shards), metrics: m}
	per := totalBytes / int64(shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			budget: per,
			items:  make(map[strategy.CacheKey]*list.Element),
			lru:    list.New(),
		}
	}
	return c
}

func (c *cache) shardFor(key strategy.CacheKey) *shard {
	return c.shards[key.Hash64()%uint64(len(c.shards))]
}

// get returns the cached bytes for key, promoting the entry to most
// recently used, or nil on a miss. Callers must not mutate the returned
// slice; it is shared by every response for the key.
func (c *cache) get(key strategy.CacheKey) []byte {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).bytes
}

// put inserts (or replaces) the artifact bytes for key and evicts from the
// cold end until the shard is back under budget. An artifact larger than a
// whole shard's budget is not cached at all: admitting it would evict
// everything and still overrun.
func (c *cache) put(key strategy.CacheKey, bytes []byte, size int64) {
	s := c.shardFor(key)
	if size > s.budget {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		old := el.Value.(*entry)
		s.used += size - old.size
		old.bytes, old.size = bytes, size
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&entry{key: key, bytes: bytes, size: size})
		s.used += size
	}
	for s.used > s.budget {
		el := s.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.items, e.key)
		s.used -= e.size
		c.metrics.evictions.Add(1)
	}
}

// related returns a cached artifact that can warm-start a search for key:
// same base-graph fingerprint, different key — a strategy computed for the
// same model before the cluster or cost model changed. Among candidates it
// prefers the one whose cluster size is closest to want (a shrink-by-one
// seed prunes tighter than one from a very different cluster), breaking ties
// on the smaller key string so the pick is deterministic. The scan walks
// every shard; at artifact-cache sizes (thousands of entries, misses only)
// this is far cheaper than the search it accelerates.
func (c *cache) related(key strategy.CacheKey, want int) []byte {
	var bestBytes []byte
	var bestKey string
	bestDist := -1
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if e.key == key || e.key.Fingerprint != key.Fingerprint {
				continue
			}
			dist := e.key.Cluster.NumDevices() - want
			if dist < 0 {
				dist = -dist
			}
			ks := e.key.String()
			if bestBytes == nil || dist < bestDist || (dist == bestDist && ks < bestKey) {
				bestBytes, bestKey, bestDist = e.bytes, ks, dist
			}
		}
		s.mu.Unlock()
	}
	return bestBytes
}

// usage totals entry and byte counts across shards.
func (c *cache) usage() (entries, bytes int64) {
	for _, s := range c.shards {
		s.mu.Lock()
		entries += int64(s.lru.Len())
		bytes += s.used
		s.mu.Unlock()
	}
	return entries, bytes
}

// budget is the total byte budget across shards.
func (c *cache) budget() int64 {
	var total int64
	for _, s := range c.shards {
		total += s.budget
	}
	return total
}
