package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

// ScalingSetting is one column group of Tables 1 and 2.
type ScalingSetting struct {
	GPUs    int
	Servers int
}

// Label renders the setting as the paper's column headers do.
func (s ScalingSetting) Label() string {
	if s.Servers > 1 {
		return fmt.Sprintf("%dGPUs (%dservers)", s.GPUs, s.Servers)
	}
	if s.GPUs == 1 {
		return "1 GPU"
	}
	return fmt.Sprintf("%dGPUs", s.GPUs)
}

// Table1Settings are the strong-scaling columns of Table 1.
func Table1Settings() []ScalingSetting {
	return []ScalingSetting{
		{GPUs: 1, Servers: 1},
		{GPUs: 2, Servers: 1},
		{GPUs: 4, Servers: 1},
		{GPUs: 8, Servers: 1},
		{GPUs: 8, Servers: 2},
	}
}

// Table2Settings are the weak-scaling columns of Table 2.
func Table2Settings() []ScalingSetting {
	return []ScalingSetting{
		{GPUs: 1, Servers: 1},
		{GPUs: 2, Servers: 1},
		{GPUs: 4, Servers: 1},
		{GPUs: 8, Servers: 1},
		{GPUs: 16, Servers: 2},
	}
}

// ScalingRow is one model's row of Table 1 or 2.
type ScalingRow struct {
	Model string
	Batch int
	Cells []*Cell // one per setting, aligned with the settings slice
	// BestSpeedup is the maximal FastT-over-DP gain over the settings, in
	// percent (the tables' last column).
	BestSpeedup float64
}

// ScalingTable runs a full scaling table.
func ScalingTable(r *Runner, scaling Scaling, settings []ScalingSetting, modelNames []string) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(modelNames))
	for _, name := range modelNames {
		spec, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Model: name, Batch: spec.GlobalBatch}
		if scaling == Weak {
			row.Batch = spec.PerGPUBatch
		}
		for _, set := range settings {
			cell, err := r.Cell(name, scaling, set.GPUs, set.Servers)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, set.Label(), err)
			}
			row.Cells = append(row.Cells, cell)
			if sp := cell.Speedup(); sp > row.BestSpeedup {
				row.BestSpeedup = sp
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 reproduces Table 1 (strong scaling) over all nine models.
func Table1(r *Runner) ([]ScalingRow, error) {
	return ScalingTable(r, Strong, Table1Settings(), catalogNames())
}

// Table2 reproduces Table 2 (weak scaling) over all nine models.
func Table2(r *Runner) ([]ScalingRow, error) {
	return ScalingTable(r, Weak, Table2Settings(), catalogNames())
}

func catalogNames() []string {
	cat := models.Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	return names
}

// WriteScalingTable prints a scaling table in the paper's layout
// (samples/s; "OOM" where a configuration exceeds memory).
func WriteScalingTable(w io.Writer, title string, settings []ScalingSetting, rows []ScalingRow) error {
	if _, err := fmt.Fprintf(w, "%s\n%-24s", title, "Model(batch)"); err != nil {
		return err
	}
	fmt.Fprintf(w, " %10s", settings[0].Label())
	for _, s := range settings[1:] {
		fmt.Fprintf(w, " %10s-DP %7s-FastT", s.Label(), "")
	}
	fmt.Fprintf(w, " %9s\n", "Speedup")
	for _, row := range rows {
		fmt.Fprintf(w, "%-24s", fmt.Sprintf("%s(%d)", row.Model, row.Batch))
		fmt.Fprintf(w, " %10s", speedStr(row.Cells[0].DPSpeed, row.Cells[0].DPOOM))
		for _, c := range row.Cells[1:] {
			fmt.Fprintf(w, " %13s %13s",
				speedStr(c.DPSpeed, c.DPOOM), speedStr(c.FastTSpeed, c.FastTOOM))
		}
		fmt.Fprintf(w, " %8.1f%%\n", row.BestSpeedup)
	}
	return nil
}

func speedStr(v float64, oom bool) string {
	if oom {
		return "OOM"
	}
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// Table3Row is one row of Table 3 (BERT-large batch sweep on 2 GPUs).
type Table3Row struct {
	GlobalBatch int
	SingleIter  time.Duration // 1 GPU (OOM when zero and SingleOOM)
	SingleOOM   bool
	DPIter      time.Duration
	DPOOM       bool
	FastTIter   time.Duration
	FastTOOM    bool
}

// Table3 reproduces Table 3: per-iteration time of BERT-large at global
// batch 16/32/40/48 on one and two GPUs.
func Table3(r *Runner) ([]Table3Row, error) {
	rows := make([]Table3Row, 0, 4)
	for _, batch := range []int{16, 32, 40, 48} {
		row := Table3Row{GlobalBatch: batch}
		single, err := r.CellWithBatch("Bert-large", 1, 1, batch)
		if err != nil {
			return nil, fmt.Errorf("bert single batch %d: %w", batch, err)
		}
		row.SingleIter, row.SingleOOM = single.DPIter, single.DPOOM
		dual, err := r.CellWithBatch("Bert-large", 2, 1, batch)
		if err != nil {
			return nil, fmt.Errorf("bert dual batch %d: %w", batch, err)
		}
		row.DPIter, row.DPOOM = dual.DPIter, dual.DPOOM
		row.FastTIter, row.FastTOOM = dual.FastTIter, dual.FastTOOM
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteTable3 prints Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) error {
	fmt.Fprintf(w, "Table 3: Bert-large per-iteration time (s)\n")
	fmt.Fprintf(w, "%-24s %12s %12s %12s\n", "Model(global batch)", "Single GPU", "2GPUs DP", "2GPUs FastT")
	for _, row := range rows {
		fmt.Fprintf(w, "%-24s %12s %12s %12s\n",
			fmt.Sprintf("Bert-large(%d)", row.GlobalBatch),
			iterStr(row.SingleIter, row.SingleOOM),
			iterStr(row.DPIter, row.DPOOM),
			iterStr(row.FastTIter, row.FastTOOM))
	}
	return nil
}

func iterStr(d time.Duration, oom bool) string {
	if oom {
		return "OOM"
	}
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Table4Row reports the strategy-computation time for one model and GPU
// count.
type Table4Row struct {
	Model string
	Batch int
	// CalcWall per GPU count, aligned with Table4GPUs.
	CalcWall []time.Duration
	// ParSpeedup is the one-shot strategy-computation speedup of the
	// parallel candidate search over the sequential calculator (Workers: 1)
	// at the largest GPU count; 0 when not measured.
	ParSpeedup float64
	// ParWorkers is the worker count behind ParSpeedup; ParSpeedup /
	// ParWorkers is the parallel efficiency column.
	ParWorkers int
	// Evaluated/Pruned count the OS-DPOS candidate evaluations completed
	// and aborted by bound-based pruning at the largest GPU count, across
	// all pre-training rounds — the work the incremental calculator did and
	// the work it proved unnecessary.
	Evaluated int
	Pruned    int
	// Speculated/Mispredicted count the pipelined search's ahead-of-commit
	// evaluations and the discarded subset at the largest GPU count.
	Speculated   int
	Mispredicted int
}

// Efficiency is ParSpeedup normalized by the worker count (1.0 = perfect
// linear scaling of the candidate search), 0 when not measured.
func (r Table4Row) Efficiency() float64 {
	if r.ParWorkers <= 0 {
		return 0
	}
	return r.ParSpeedup / float64(r.ParWorkers)
}

// Table4GPUs are the GPU counts of Table 4.
func Table4GPUs() []int { return []int{2, 4, 8} }

// Table4 reproduces Table 4: wall time to compute FastT's strategy (Alg. 2
// plus the colocation pass, over all pre-training rounds) per model and GPU
// count, measured on this machine. The last column compares the parallel
// candidate search against the sequential calculator on one strategy
// computation at the largest GPU count.
func Table4(r *Runner, modelNames []string) ([]Table4Row, error) {
	rows := make([]Table4Row, 0, len(modelNames))
	gpusMax := Table4GPUs()[len(Table4GPUs())-1]
	for _, name := range modelNames {
		spec, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Model: name, Batch: spec.GlobalBatch}
		for _, gpus := range Table4GPUs() {
			cell, err := r.Cell(name, Strong, gpus, 1)
			if err != nil {
				return nil, fmt.Errorf("%s %d GPUs: %w", name, gpus, err)
			}
			row.CalcWall = append(row.CalcWall, cell.CalcWall)
			if gpus == gpusMax {
				row.Evaluated = cell.Evaluated
				row.Pruned = cell.Pruned
				row.Speculated = cell.Speculated
				row.Mispredicted = cell.Mispredicted
			}
		}
		sp, err := parSpeedup(r.cfg, spec, gpusMax)
		if err != nil {
			return nil, fmt.Errorf("%s parallel speedup: %w", name, err)
		}
		row.ParSpeedup = sp
		row.ParWorkers = r.cfg.Workers
		if row.ParWorkers <= 0 {
			row.ParWorkers = runtime.GOMAXPROCS(0) // core.Options default
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// parSpeedup times one full strategy computation sequentially (Workers: 1)
// and with the configured worker pool, returning sequential/parallel wall
// time. Both runs produce byte-identical strategies by construction, so
// only the clock differs.
func parSpeedup(cfg Config, spec models.Spec, gpus int) (float64, error) {
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		return 0, err
	}
	perGPU := spec.GlobalBatch / gpus
	if perGPU < 1 {
		perGPU = 1
	}
	m, err := spec.Build(perGPU)
	if err != nil {
		return 0, err
	}
	g, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return 0, err
	}
	oracle := kernels.NewDefaultOracle(cluster)
	opts := core.Options{
		MaxSplitOps:   cfg.MaxSplitOps,
		MaxSyncGroups: cfg.MaxSyncGroups,
	}
	walls := make([]time.Duration, 2)
	for i, workers := range []int{1, cfg.Workers} {
		opts.Workers = workers
		start := time.Now()
		if _, err := core.ComputeStrategy(g, cluster, oracle, opts); err != nil {
			return 0, err
		}
		walls[i] = time.Since(start)
	}
	if walls[1] <= 0 {
		return 0, nil
	}
	return walls[0].Seconds() / walls[1].Seconds(), nil
}

// WriteTable4 prints Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) error {
	fmt.Fprintf(w, "Table 4: time (s) to compute the strategy\n")
	fmt.Fprintf(w, "%-24s", "Model(global batch)")
	for _, g := range Table4GPUs() {
		fmt.Fprintf(w, " %10dGPUs", g)
	}
	fmt.Fprintf(w, " %14s %10s %12s %12s\n", "Par speedup", "Eff", "Eval/Pruned", "Spec/Mispred")
	for _, row := range rows {
		fmt.Fprintf(w, "%-24s", fmt.Sprintf("%s(%d)", row.Model, row.Batch))
		for _, d := range row.CalcWall {
			fmt.Fprintf(w, " %14.3f", d.Seconds())
		}
		if row.ParSpeedup > 0 {
			fmt.Fprintf(w, " %13.2fx %10.3f", row.ParSpeedup, row.Efficiency())
		} else {
			fmt.Fprintf(w, " %14s %10s", "-", "-")
		}
		fmt.Fprintf(w, " %12s %12s",
			fmt.Sprintf("%d/%d", row.Evaluated, row.Pruned),
			fmt.Sprintf("%d/%d", row.Speculated, row.Mispredicted))
		fmt.Fprintln(w)
	}
	return nil
}

// WorkerScalingRow reports one model's strategy-computation wall time
// across worker counts at a fixed GPU count (the `benchtab -what scaling`
// sweep): the worker-scaling picture Table 4's single Par-speedup column
// summarizes.
type WorkerScalingRow struct {
	Model string
	GPUs  int
	// Walls are the best-observed wall times, aligned with
	// WorkerScalingWorkers.
	Walls []time.Duration
	// Speculated/Mispredicted are the speculation counters of the run at
	// the highest worker count.
	Speculated   int
	Mispredicted int
}

// Efficiency is the parallel efficiency at the highest worker count:
// (sequential wall / parallel wall) / workers.
func (r WorkerScalingRow) Efficiency() float64 {
	n := len(r.Walls)
	if n < 2 || r.Walls[n-1] <= 0 {
		return 0
	}
	w := WorkerScalingWorkers()
	return (r.Walls[0].Seconds() / r.Walls[n-1].Seconds()) / float64(w[n-1])
}

// WorkerScalingWorkers are the worker counts of the scaling sweep.
func WorkerScalingWorkers() []int { return []int{1, 2, 4, 8} }

// WorkerScalingSweep times one full strategy computation per (model,
// workers) cell, best of `reps` runs (wall-clock minima are the
// least-noise estimator; scripts/bench.sh uses the same discipline). All
// cells of a row compute byte-identical strategies — only the clock and
// the speculation counters vary.
func WorkerScalingSweep(cfg Config, modelNames []string, gpus, reps int) ([]WorkerScalingRow, error) {
	if reps < 1 {
		reps = 1
	}
	cfg = cfg.withDefaults()
	rows := make([]WorkerScalingRow, 0, len(modelNames))
	for _, name := range modelNames {
		spec, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		cluster, err := device.SingleServer(gpus)
		if err != nil {
			return nil, err
		}
		perGPU := spec.GlobalBatch / gpus
		if perGPU < 1 {
			perGPU = 1
		}
		m, err := spec.Build(perGPU)
		if err != nil {
			return nil, err
		}
		g, err := graph.BuildDataParallel(m, gpus)
		if err != nil {
			return nil, err
		}
		oracle := kernels.NewDefaultOracle(cluster)
		opts := core.Options{
			MaxSplitOps:   cfg.MaxSplitOps,
			MaxSyncGroups: cfg.MaxSyncGroups,
		}
		row := WorkerScalingRow{Model: name, GPUs: gpus}
		for _, workers := range WorkerScalingWorkers() {
			opts.Workers = workers
			best := time.Duration(0)
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				s, err := core.ComputeStrategy(g, cluster, oracle, opts)
				if err != nil {
					return nil, fmt.Errorf("%s workers=%d: %w", name, workers, err)
				}
				if wall := time.Since(start); best == 0 || wall < best {
					best = wall
				}
				row.Speculated = s.Speculated
				row.Mispredicted = s.Mispredicted
			}
			row.Walls = append(row.Walls, best)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteWorkerScaling prints the worker-sweep table.
func WriteWorkerScaling(w io.Writer, rows []WorkerScalingRow) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "Worker scaling: strategy computation wall time (ms), %d GPUs\n", rows[0].GPUs)
	fmt.Fprintf(w, "%-24s", "Model")
	for _, workers := range WorkerScalingWorkers() {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("w=%d", workers))
	}
	fmt.Fprintf(w, " %9s %12s\n", "eff", "Spec/Mispred")
	for _, row := range rows {
		fmt.Fprintf(w, "%-24s", row.Model)
		for _, d := range row.Walls {
			fmt.Fprintf(w, " %9.2f", float64(d.Microseconds())/1000)
		}
		fmt.Fprintf(w, " %9.3f %12s\n", row.Efficiency(),
			fmt.Sprintf("%d/%d", row.Speculated, row.Mispredicted))
	}
	return nil
}

// Table5Row is one representative VGG-19 operation of Table 5.
type Table5Row struct {
	Op       string
	Time     time.Duration
	WeightKB float64
	Split    bool
}

// Table5 reproduces Table 5: the split decisions OS-DPOS (Alg. 2) makes
// for VGG-19 operations under VGG's best-speedup setting of Table 1
// (8 GPUs on 2 servers), with each op's execution time and weight size.
// The strategy is computed deterministically against ground-truth costs;
// the fixed representative rows of the paper are listed alongside every
// operation the algorithm actually split (an operation counts as split
// when any replica's instance of it was split).
func Table5(r *Runner) ([]Table5Row, error) {
	const gpus, servers = 8, 2
	cluster, err := device.NewCluster(servers, gpus/servers)
	if err != nil {
		return nil, err
	}
	oracle := kernels.NewDefaultOracle(cluster)
	spec, err := models.ByName("VGG-19")
	if err != nil {
		return nil, err
	}
	m, err := spec.Build(spec.GlobalBatch / gpus)
	if err != nil {
		return nil, err
	}
	g, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, err
	}
	st, err := core.ComputeStrategy(g, cluster, oracle, core.Options{
		MaxSplitOps:   r.cfg.MaxSplitOps,
		MaxSyncGroups: r.cfg.MaxSyncGroups,
	})
	if err != nil {
		return nil, err
	}
	split := make(map[string]bool, len(st.Splits))
	for _, s := range st.Splits {
		split[baseOpName(s.OpName)] = true
	}

	reps := []string{
		"conv1_1", "conv1_2", "conv1_2_bp",
		"relu_conv1_2", "pool1", "fc6",
	}
	seen := make(map[string]bool, len(reps))
	for _, b := range reps {
		seen[b] = true
	}
	for base := range split {
		if !seen[base] {
			reps = append(reps, base)
			seen[base] = true
		}
	}
	rows := make([]Table5Row, 0, len(reps))
	for _, base := range reps {
		op, ok := g.OpByName("rep0/" + base)
		if !ok {
			return nil, fmt.Errorf("representative op %q missing", base)
		}
		weight := op.ParamBytes
		if weight == 0 {
			// Weights moved to the shared variable; backward ops consume
			// the same weights as their forward twin.
			varBase := strings.TrimSuffix(base, "_bp")
			if v, ok := g.OpByName(graph.VariableName(varBase)); ok {
				weight = v.ParamBytes
			}
		}
		rows = append(rows, Table5Row{
			Op:       base,
			Time:     oracle.Exec(op, cluster.Device(0)),
			WeightKB: float64(weight) / 1024,
			Split:    split[base],
		})
	}
	return rows, nil
}

// baseOpName strips a data-parallel replica prefix ("rep3/conv1_2" ->
// "conv1_2").
func baseOpName(name string) string {
	if i := strings.Index(name, "/"); i >= 0 && strings.HasPrefix(name, "rep") {
		return name[i+1:]
	}
	return name
}

// WriteTable5 prints Table 5.
func WriteTable5(w io.Writer, rows []Table5Row) error {
	fmt.Fprintf(w, "Table 5: split decisions for representative VGG-19 operations\n")
	fmt.Fprintf(w, "%-18s %12s %14s %6s\n", "Operation", "Time(ms)", "Weight(KB)", "Split")
	for _, row := range rows {
		fmt.Fprintf(w, "%-18s %12.3f %14.3f %6v\n",
			row.Op, float64(row.Time)/float64(time.Millisecond), row.WeightKB, row.Split)
	}
	return nil
}

// Table6Row compares training with and without operation splitting.
type Table6Row struct {
	Model       string
	NoSplitIter time.Duration
	SplitIter   time.Duration
	SpeedupPct  float64
	KeySplitOps string // kinds of the split operations, "None" if none
}

// Table6 reproduces Table 6: per-iteration time with and without operation
// splitting, each model at its best-speedup setting of Table 1 (as the
// paper does), plus the key split operation kinds.
func Table6(r *Runner, modelNames []string) ([]Table6Row, error) {
	rows := make([]Table6Row, 0, len(modelNames))
	for _, name := range modelNames {
		cell, err := bestCell(r, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		noSplit, err := runWithoutSplitting(r.cfg, name, cell.GPUs, cell.Servers)
		if err != nil {
			return nil, fmt.Errorf("%s no-split: %w", name, err)
		}
		row := Table6Row{
			Model:       name,
			NoSplitIter: noSplit,
			SplitIter:   cell.FastTIter,
			KeySplitOps: keySplitOps(cell),
		}
		if row.SplitIter > 0 && row.NoSplitIter > row.SplitIter {
			row.SpeedupPct = (noSplit.Seconds()/row.SplitIter.Seconds() - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// bestCell returns the model's best-speedup multi-GPU cell of Table 1.
func bestCell(r *Runner, model string) (*Cell, error) {
	var best *Cell
	for _, set := range Table1Settings() {
		if set.GPUs == 1 {
			continue
		}
		cell, err := r.Cell(model, Strong, set.GPUs, set.Servers)
		if err != nil {
			return nil, err
		}
		if cell.FastTOOM {
			continue
		}
		if best == nil || cell.Speedup() > best.Speedup() {
			best = cell
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no feasible setting for %s", model)
	}
	return best, nil
}

// runWithoutSplitting runs the FastT session with splitting disabled.
func runWithoutSplitting(cfg Config, model string, gpus, servers int) (time.Duration, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return 0, err
	}
	cluster, err := device.NewCluster(servers, gpus/servers)
	if err != nil {
		return 0, err
	}
	perGPU := spec.GlobalBatch / gpus
	if perGPU < 1 {
		perGPU = 1
	}
	m, err := spec.Build(perGPU)
	if err != nil {
		return 0, err
	}
	g, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return 0, err
	}
	s, err := session.New(cluster, sim.DefaultExecutor(cluster), g, session.Config{
		Seed:             cfg.Seed,
		MaxRounds:        cfg.MaxRounds,
		Jitter:           cfg.Jitter,
		DisableSplitting: true,
		Sched: core.Options{
			MaxSyncGroups: cfg.MaxSyncGroups,
			Workers:       cfg.Workers,
		},
	})
	if err != nil {
		return 0, err
	}
	if _, err := s.Bootstrap(); err != nil {
		return 0, err
	}
	stats, err := s.Run(cfg.MeasureIters)
	if err != nil {
		return 0, err
	}
	return stats.AvgIter, nil
}

// keySplitOps summarizes the kinds of a cell's split operations.
func keySplitOps(cell *Cell) string {
	if len(cell.Splits) == 0 || cell.FastTGraph == nil {
		return "None"
	}
	kinds := make(map[string]bool)
	for _, s := range cell.Splits {
		// The split op no longer exists; find a sub-op carrying its name.
		for _, op := range cell.FastTGraph.Ops() {
			if op.SplitOf == s.OpName && op.Kind != graph.KindSplit && op.Kind != graph.KindConcat {
				kinds[op.Kind.String()] = true
				break
			}
		}
	}
	if len(kinds) == 0 {
		return "None"
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	strings.Join(names, ",")
	return strings.Join(names, ",")
}

// WriteTable6 prints Table 6.
func WriteTable6(w io.Writer, rows []Table6Row) error {
	fmt.Fprintf(w, "Table 6: per-iteration time with/without operation split (4 GPUs)\n")
	fmt.Fprintf(w, "%-16s %10s %10s %9s  %s\n", "Model", "No split", "Split", "Speedup", "Key split op")
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %8.2f%%  %s\n",
			row.Model, row.NoSplitIter.Seconds(), row.SplitIter.Seconds(),
			row.SpeedupPct, row.KeySplitOps)
	}
	return nil
}
