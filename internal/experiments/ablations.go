package experiments

import (
	"fmt"
	"io"
	"time"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/sim"
)

// AblationRow compares the full strategy calculator against one with a
// design choice disabled (DESIGN.md §5).
type AblationRow struct {
	Model    string
	FullIter time.Duration
	Ablated  time.Duration
	// DeltaPct is the slowdown of the ablated variant in percent (negative
	// means the ablation was faster on this model).
	DeltaPct float64
}

// ablate computes FastT strategies with and without a design choice and
// simulates both, using ground-truth costs to isolate the algorithmic
// effect from cost-model learning.
func ablate(cfg Config, modelNames []string, gpus int, mutate func(*core.Options),
	estOverride func(*device.Cluster) cost.Estimator) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]AblationRow, 0, len(modelNames))
	for _, name := range modelNames {
		spec, err := models.ByName(name)
		if err != nil {
			return nil, err
		}
		cluster, err := device.SingleServer(gpus)
		if err != nil {
			return nil, err
		}
		perGPU := spec.GlobalBatch / gpus
		if perGPU < 1 {
			perGPU = 1
		}
		m, err := spec.Build(perGPU)
		if err != nil {
			return nil, err
		}
		g, err := graph.BuildDataParallel(m, gpus)
		if err != nil {
			return nil, err
		}
		oracle := kernels.NewDefaultOracle(cluster)
		engine := sim.NewEngine(cluster, oracle)
		opts := core.Options{MaxSplitOps: cfg.MaxSplitOps, MaxSyncGroups: cfg.MaxSyncGroups}

		full, err := strategyIter(engine, cluster, g, oracle, opts)
		if err != nil {
			return nil, fmt.Errorf("%s full: %w", name, err)
		}
		ablOpts := opts
		if mutate != nil {
			mutate(&ablOpts)
		}
		ablEst := cost.Estimator(oracle)
		if estOverride != nil {
			ablEst = estOverride(cluster)
		}
		ablated, err := strategyIter(engine, cluster, g, ablEst, ablOpts)
		if err != nil {
			return nil, fmt.Errorf("%s ablated: %w", name, err)
		}
		row := AblationRow{Model: name, FullIter: full, Ablated: ablated}
		if full > 0 {
			row.DeltaPct = (ablated.Seconds()/full.Seconds() - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// strategyIter computes a strategy with the given estimator/options and
// returns its simulated iteration time.
func strategyIter(engine *sim.Engine, cluster *device.Cluster, g *graph.Graph,
	est cost.Estimator, opts core.Options) (time.Duration, error) {
	st, err := core.ComputeStrategy(g, cluster, est, opts)
	if err != nil {
		return 0, err
	}
	res, err := engine.Run(st.Graph, st.Placement, sim.Config{
		Discipline: sim.Priority,
		Priorities: st.Priorities,
	})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// ablationModels keeps ablation runs quick but covers CNN and NMT shapes.
func ablationModels() []string {
	return []string{"VGG-19", "Inception_v3", "GNMT", "Transformer"}
}

// AblationInsertion disables idle-slot insertion.
func AblationInsertion(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, ablationModels(), 4, func(o *core.Options) { o.DisableInsertion = true }, nil)
}

// AblationCPDevice disables dedicated critical-path device selection.
func AblationCPDevice(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, ablationModels(), 4, func(o *core.Options) { o.DisableCPDevice = true }, nil)
}

// naiveComm estimates transfers as bytes over the slowest link's bandwidth,
// with no per-pair distinction and no latency term — the straw-man the
// paper's per-pair linear regression replaces.
type naiveComm struct {
	oracle  *kernels.Oracle
	perByte float64 // seconds per byte
}

var _ cost.Estimator = (*naiveComm)(nil)

func (n *naiveComm) Exec(op *graph.Op, d *device.Device) time.Duration {
	return n.oracle.Exec(op, d)
}

func (n *naiveComm) Comm(bytes int64, from, to *device.Device) time.Duration {
	if from.ID == to.ID {
		return 0
	}
	return time.Duration(n.perByte * float64(bytes) * float64(time.Second))
}

// AblationCommModel replaces the communication cost model with a flat
// bytes-over-bandwidth estimate.
func AblationCommModel(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, ablationModels(), 4, nil, func(c *device.Cluster) cost.Estimator {
		slowest := c.SlowestLink()
		perByte := 0.0
		if slowest.Bandwidth > 0 {
			perByte = 1 / slowest.Bandwidth
		}
		return &naiveComm{oracle: kernels.NewDefaultOracle(c), perByte: perByte}
	})
}

// WriteAblation prints one ablation's rows.
func WriteAblation(w io.Writer, title string, rows []AblationRow) error {
	fmt.Fprintf(w, "Ablation: %s (4 GPUs, strong scaling)\n", title)
	fmt.Fprintf(w, "%-16s %10s %10s %8s\n", "Model", "Full(s)", "Ablated(s)", "Delta")
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s %10.4f %10.4f %+7.1f%%\n",
			row.Model, row.FullIter.Seconds(), row.Ablated.Seconds(), row.DeltaPct)
	}
	return nil
}
