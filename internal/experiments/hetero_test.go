package experiments

import (
	"bytes"
	"testing"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// heteroTestGraph builds a small 4-replica training graph for the model —
// deployable both on the 8-device mix and on the 4-device T4 subcluster, so
// the two searches schedule the identical workload.
func heteroTestGraph(t *testing.T, model string) *graph.Graph {
	t.Helper()
	spec, err := models.ByName(model)
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	perGPU, _ := batches(spec, Strong, 8, 0)
	m, err := spec.Build(perGPU)
	if err != nil {
		t.Fatalf("%s build: %v", model, err)
	}
	train, err := graph.BuildDataParallel(m, 4)
	if err != nil {
		t.Fatalf("%s replicate: %v", model, err)
	}
	return train
}

func heteroTestOpts(workers int) core.Options {
	return core.Options{MaxSplitOps: 2, MaxSyncGroups: 4, Workers: workers}
}

// TestHeteroMixBeatsT4Bound is the catalog-wide heterogeneity property: for
// every model, the predicted makespan of OS-DPOS on the 4xV100+4xT4 mix must
// not exceed the same search confined to the T4-only subcluster. The T4
// subcluster's schedules are a subset of the mix's, so a class-aware search
// that loses to its own weak half has mispriced the fast devices. The
// FLOPs-share check pins the mechanism: the win must come from placing the
// bulk of the compute on V100-class silicon.
func TestHeteroMixBeatsT4Bound(t *testing.T) {
	mixed, err := device.NewHeterogeneous(heteroMixSpec())
	if err != nil {
		t.Fatal(err)
	}
	t4only, err := device.NewHeterogeneous(t4OnlySpec())
	if err != nil {
		t.Fatal(err)
	}
	catalog := allCatalogModels()
	if testing.Short() {
		catalog = []string{"LeNet", "AlexNet", "VGG-19", "Transformer"}
	}
	for _, model := range catalog {
		model := model
		t.Run(model, func(t *testing.T) {
			train := heteroTestGraph(t, model)
			mixStrat, err := core.ComputeStrategy(train, mixed,
				kernels.NewDefaultOracle(mixed), heteroTestOpts(0))
			if err != nil {
				t.Fatalf("mix strategy: %v", err)
			}
			t4Strat, err := core.ComputeStrategy(train, t4only,
				kernels.NewDefaultOracle(t4only), heteroTestOpts(0))
			if err != nil {
				t.Fatalf("t4 strategy: %v", err)
			}
			if mixStrat.Predicted > t4Strat.Predicted {
				t.Errorf("mix predicted %v exceeds T4-only bound %v",
					mixStrat.Predicted, t4Strat.Predicted)
			}
			if share := flopsShareOnV100(mixStrat.Graph, mixStrat.Placement, mixed); share < 0.5 {
				t.Errorf("only %.0f%% of FLOPs placed on V100-class devices; critical work left on T4s",
					100*share)
			}
		})
	}
}

// TestHeteroStrategyDeterministicAcrossWorkers asserts the mixed-class search
// stays byte-for-byte reproducible under the parallel calculator: the
// asymmetric link matrix and classed costs must not introduce
// iteration-order or floating-point divergence between worker counts.
func TestHeteroStrategyDeterministicAcrossWorkers(t *testing.T) {
	mixed, err := device.NewHeterogeneous(heteroMixSpec())
	if err != nil {
		t.Fatal(err)
	}
	train := heteroTestGraph(t, "Inception_v3")
	runWith := func(workers int) []byte {
		s, err := core.ComputeStrategy(train, mixed,
			kernels.NewDefaultOracle(mixed), heteroTestOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d marshal: %v", workers, err)
		}
		return buf.Bytes()
	}
	ref := runWith(1)
	for _, workers := range []int{4, 8} {
		if got := runWith(workers); !bytes.Equal(got, ref) {
			t.Errorf("workers=%d strategy differs from workers=1", workers)
		}
	}
}

// allCatalogModels mirrors cmd/benchtab's allModels; kept here so the
// property test sweeps the whole catalog without importing the command.
func allCatalogModels() []string {
	return []string{
		"Inception_v3", "VGG-19", "ResNet200", "LeNet", "AlexNet",
		"GNMT", "RNNLM", "Transformer", "Bert-large",
	}
}
