package experiments

import (
	"fmt"
	"io"
	"time"

	"fastt/internal/device"
	"fastt/internal/kernels"
	"fastt/internal/placement"
	"fastt/internal/sim"
)

// Figure2Row compares TensorFlow's default FIFO execution order with
// FastT's enforced order under the same FastT placement (Fig. 2).
type Figure2Row struct {
	Model        string
	DefaultIter  time.Duration // FIFO ready queue
	EnforcedIter time.Duration // priority order
	ReductionPct float64
}

// Figure2Models are the four CNNs of Fig. 2.
func Figure2Models() []string {
	return []string{"AlexNet", "VGG-19", "LeNet", "ResNet200"}
}

// Figure2 reproduces Fig. 2: per-iteration time under the default executor
// order vs FastT's order enforcement, each model on 2 GPUs, with the FastT
// placement held fixed. The "default" arm uses the Unordered discipline —
// TensorFlow's executor dispatches concurrently-ready nodes through a
// thread pool in effectively arbitrary order, which is the execution-order
// variance the paper's order enforcement removes.
func Figure2(r *Runner) ([]Figure2Row, error) {
	rows := make([]Figure2Row, 0, 4)
	for _, name := range Figure2Models() {
		cell, err := r.Cell(name, Strong, 2, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if cell.FastTGraph == nil {
			return nil, fmt.Errorf("%s: no FastT strategy", name)
		}
		cluster, err := device.NewCluster(cell.Servers, cell.GPUs/cell.Servers)
		if err != nil {
			return nil, err
		}
		engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
		deflt, err := avgRun(engine, cell, r.cfg, sim.Unordered)
		if err != nil {
			return nil, fmt.Errorf("%s default: %w", name, err)
		}
		enforced, err := avgRun(engine, cell, r.cfg, sim.Priority)
		if err != nil {
			return nil, fmt.Errorf("%s enforced: %w", name, err)
		}
		row := Figure2Row{Model: name, DefaultIter: deflt, EnforcedIter: enforced}
		if deflt > 0 {
			row.ReductionPct = (1 - enforced.Seconds()/deflt.Seconds()) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// avgRun executes the cell's FastT strategy under the given queue
// discipline, averaging over MeasureIters seeds.
func avgRun(engine *sim.Engine, cell *Cell, cfg Config, disc sim.QueueDiscipline) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < cfg.MeasureIters; i++ {
		c := sim.Config{
			Discipline: disc,
			Jitter:     cfg.Jitter,
			Seed:       cfg.Seed + int64(i)*7919,
		}
		if disc == sim.Priority {
			if cell.FastTPriorities == nil {
				// The session fell back to FIFO; enforcement is a no-op.
				c.Discipline = sim.FIFO
			} else {
				c.Priorities = cell.FastTPriorities
			}
		}
		res, err := engine.Run(cell.FastTGraph, cell.FastTPlacement, c)
		if err != nil {
			return 0, err
		}
		total += res.Makespan
	}
	return total / time.Duration(cfg.MeasureIters), nil
}

// WriteFigure2 prints Fig. 2's data.
func WriteFigure2(w io.Writer, rows []Figure2Row) error {
	fmt.Fprintf(w, "Figure 2: performance gain of order enforcement (2 GPUs)\n")
	fmt.Fprintf(w, "%-12s %12s %14s %10s\n", "Model", "Default(s)", "OrderEnforce(s)", "Reduction")
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %12.4f %14.4f %9.1f%%\n",
			row.Model, row.DefaultIter.Seconds(), row.EnforcedIter.Seconds(), row.ReductionPct)
	}
	return nil
}

// Figure3Bar is one bar of Fig. 3: a method's speed normalized to the DP
// baseline.
type Figure3Bar struct {
	Model      string
	Method     string
	GPUs       int
	Normalized float64
	// Measured marks bars produced by this harness; the others are the
	// published reference points the paper compares against.
	Measured bool
}

// Figure3Models are the four panels of Fig. 3.
func Figure3Models() []string {
	return []string{"Inception_v3", "ResNet200", "GNMT", "RNNLM"}
}

// Figure3 reproduces Fig. 3: FastT's normalized speed (measured here)
// alongside REINFORCE/GDP/Post/FlexFlow (from their papers, as in the
// original evaluation).
func Figure3(r *Runner) ([]Figure3Bar, error) {
	var bars []Figure3Bar
	for _, e := range placement.PublishedSpeedups() {
		bars = append(bars, Figure3Bar{
			Model:      e.Model,
			Method:     e.Method.String(),
			GPUs:       e.GPUs,
			Normalized: e.Normalized,
		})
	}
	for _, name := range Figure3Models() {
		for _, gpus := range []int{2, 4, 8} {
			cell, err := r.Cell(name, Strong, gpus, 1)
			if err != nil {
				return nil, fmt.Errorf("%s %d GPUs: %w", name, gpus, err)
			}
			norm := 0.0
			if cell.DPSpeed > 0 && cell.FastTSpeed > 0 {
				norm = cell.FastTSpeed / cell.DPSpeed
			}
			bars = append(bars, Figure3Bar{
				Model:      name,
				Method:     "FastT",
				GPUs:       gpus,
				Normalized: norm,
				Measured:   true,
			})
		}
	}
	return bars, nil
}

// WriteFigure3 prints Fig. 3's data grouped by model panel.
func WriteFigure3(w io.Writer, bars []Figure3Bar) error {
	fmt.Fprintf(w, "Figure 3: normalized processing speed (DP = 1.0)\n")
	for _, model := range Figure3Models() {
		fmt.Fprintf(w, "%s:\n", model)
		for _, b := range bars {
			if b.Model != model {
				continue
			}
			src := "published"
			if b.Measured {
				src = "measured"
			}
			fmt.Fprintf(w, "  %-10s %d GPUs: %.2f (%s)\n", b.Method, b.GPUs, b.Normalized, src)
		}
	}
	return nil
}

// Figure4Row reports FastT's per-GPU operation counts (Fig. 4).
type Figure4Row struct {
	Model  string
	GPUs   int
	Counts []int
}

// Figure4Models are the three CNNs of Fig. 4.
func Figure4Models() []string { return []string{"AlexNet", "VGG-19", "LeNet"} }

// Figure4 reproduces Fig. 4: the number of operations FastT assigns to each
// GPU, on 2 and 4 GPUs.
func Figure4(r *Runner) ([]Figure4Row, error) {
	var rows []Figure4Row
	for _, gpus := range []int{2, 4} {
		for _, name := range Figure4Models() {
			cell, err := r.Cell(name, Strong, gpus, 1)
			if err != nil {
				return nil, fmt.Errorf("%s %d GPUs: %w", name, gpus, err)
			}
			rows = append(rows, Figure4Row{Model: name, GPUs: gpus, Counts: cell.OpsPerDevice})
		}
	}
	return rows, nil
}

// WriteFigure4 prints Fig. 4's data.
func WriteFigure4(w io.Writer, rows []Figure4Row) error {
	fmt.Fprintf(w, "Figure 4: number of operations per GPU under FastT\n")
	for _, row := range rows {
		fmt.Fprintf(w, "%-10s %d GPUs: %v\n", row.Model, row.GPUs, row.Counts)
	}
	return nil
}

// Figure5Row is one model's compute/memcpy/iteration breakdown for DP and
// FastT (Fig. 5).
type Figure5Row struct {
	Model string
	DP    BreakdownMS
	FastT BreakdownMS
}

// BreakdownMS is a breakdown in milliseconds for reporting.
type BreakdownMS struct {
	Computation  float64
	Memcpy       float64
	PerIteration float64
}

// Figure5Models are the four CNNs of Fig. 5.
func Figure5Models() []string {
	return []string{"VGG-19", "ResNet200", "AlexNet", "LeNet"}
}

// Figure5 reproduces Fig. 5: average computation and memcpy time per
// iteration under DP and FastT on 2 GPUs.
func Figure5(r *Runner) ([]Figure5Row, error) {
	rows := make([]Figure5Row, 0, 4)
	for _, name := range Figure5Models() {
		cell, err := r.Cell(name, Strong, 2, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, Figure5Row{
			Model: name,
			DP: BreakdownMS{
				Computation:  ms(cell.DPBreakdown.Computation),
				Memcpy:       ms(cell.DPBreakdown.Memcpy),
				PerIteration: ms(cell.DPBreakdown.PerIteration),
			},
			FastT: BreakdownMS{
				Computation:  ms(cell.FastTBreakdown.Computation),
				Memcpy:       ms(cell.FastTBreakdown.Memcpy),
				PerIteration: ms(cell.FastTBreakdown.PerIteration),
			},
		})
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteFigure5 prints Fig. 5's data.
func WriteFigure5(w io.Writer, rows []Figure5Row) error {
	fmt.Fprintf(w, "Figure 5: average computation and memcpy time per iteration (ms, 2 GPUs)\n")
	fmt.Fprintf(w, "%-12s %28s %28s\n", "", "Data parallel", "FastT")
	fmt.Fprintf(w, "%-12s %9s %9s %8s %9s %9s %8s\n",
		"Model", "compute", "memcpy", "iter", "compute", "memcpy", "iter")
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %9.2f %9.2f %8.2f %9.2f %9.2f %8.2f\n",
			row.Model,
			row.DP.Computation, row.DP.Memcpy, row.DP.PerIteration,
			row.FastT.Computation, row.FastT.Memcpy, row.FastT.PerIteration)
	}
	return nil
}
