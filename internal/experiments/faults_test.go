package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFaultRecoveryTableSmoke(t *testing.T) {
	cfg := fastCfg()
	rows, err := FaultRecoveryTable(cfg, []string{"LeNet"}, 4, 12, []float64{0, 0.3})
	if err != nil {
		t.Fatalf("FaultRecoveryTable: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	clean, faulty := rows[0], rows[1]
	if clean.Injected != 0 || clean.DeviceLosses != 0 || clean.RecoveryTime != 0 {
		t.Errorf("rate-0 row not clean: %+v", clean)
	}
	if clean.Survivors != 4 {
		t.Errorf("rate-0 row lost devices: %d survivors", clean.Survivors)
	}
	if faulty.Injected == 0 {
		t.Fatalf("rate-0.3 plan injected no faults")
	}
	if faulty.DeviceLosses > 0 {
		if faulty.RecoveryTime <= 0 {
			t.Error("device losses with no recovery time charged")
		}
		if faulty.Survivors != 4-faulty.DeviceLosses {
			t.Errorf("survivors = %d after %d losses", faulty.Survivors, faulty.DeviceLosses)
		}
	}
	if faulty.AvgIter <= 0 {
		t.Error("faulty run reported no iteration time")
	}

	var buf bytes.Buffer
	if err := WriteFaultTable(&buf, rows); err != nil {
		t.Fatalf("WriteFaultTable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Model", "LostIters", "LeNet"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "LeNet") != 2 {
		t.Errorf("table does not have one line per row:\n%s", out)
	}
}

func TestFaultRecoveryTableDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate sweep is slow")
	}
	cfg := fastCfg()
	a, err := FaultRecoveryTable(cfg, []string{"LeNet"}, 4, 12, []float64{0.3})
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	b, err := FaultRecoveryTable(cfg, []string{"LeNet"}, 4, 12, []float64{0.3})
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	ar, br := a[0], b[0]
	// RecomputeWall is real wall-clock; everything else must reproduce.
	ar.RecomputeWall, br.RecomputeWall = 0, 0
	if ar != br {
		t.Errorf("fault sweep not deterministic:\n%+v\nvs\n%+v", ar, br)
	}
}
