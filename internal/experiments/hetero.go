package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

// Hetero mix labels — the four rows of the cluster-mix table per model.
const (
	MixUniform       = "8xV100"          // homogeneous reference: 2 servers x 4 V100
	MixHetero        = "4xV100+4xT4"     // FastT on the real mixed cluster
	MixUniformAssume = "mix(as-uniform)" // strategy learned on all-V100, deployed on the mix
	MixT4Only        = "4xT4"            // the weak subcluster alone — the bound a mix must beat
)

// HeteroRow is one (model, cluster mix) configuration of the cluster-mix
// table: the same training graph scheduled onto different device
// populations.
type HeteroRow struct {
	Model   string
	Mix     string
	Devices int
	// Predicted is the activated strategy's own makespan estimate; Iter is
	// the measured per-iteration time (0 when OOM / no feasible start).
	Predicted time.Duration
	Iter      time.Duration
	Speed     float64 // samples/s (0 when OOM)
	OOM       bool
	// V100Share is the FLOPs-weighted fraction of ops placed on V100-class
	// devices; -1 when the cluster has no class split to report (uniform and
	// T4-only rows).
	V100Share float64
	CalcWall  time.Duration
}

// heteroMixSpec builds the 4xV100 + 4xT4 two-server cluster the table
// revolves around: the V100 server and the T4 server NVLink-internal, same
// rack.
func heteroMixSpec() *device.Spec {
	return &device.Spec{Servers: []device.SpecServer{
		{Rack: 0, Interconnect: device.InterconnectNVLink, GPUs: []string{"V100", "V100", "V100", "V100"}},
		{Rack: 0, Interconnect: device.InterconnectNVLink, GPUs: []string{"T4", "T4", "T4", "T4"}},
	}}
}

// t4OnlySpec is the mix's weak half alone.
func t4OnlySpec() *device.Spec {
	return &device.Spec{Servers: []device.SpecServer{
		{Rack: 0, Interconnect: device.InterconnectNVLink, GPUs: []string{"T4", "T4", "T4", "T4"}},
	}}
}

// deployed is a strategy lifted out of the session that produced it, in the
// form a simulator on another cluster can execute: the materialized graph,
// its placement, and the enforced order.
type deployed struct {
	graph      *graph.Graph
	placement  []int
	priorities []int
	predicted  time.Duration
}

// HeteroMixTable schedules each model's 8-replica training graph onto four
// device populations: the homogeneous 8xV100 reference, the 4xV100+4xT4 mix
// with FastT aware of the classes (full pre-training bootstrap with learned
// cost models), the same mix running the strategy learned under the old
// all-V100 assumption, and the T4-only subcluster. The same graph and batch
// are used throughout, so rows differ only in what the scheduler knew and
// what hardware ran it.
func HeteroMixTable(cfg Config, modelNames []string) ([]HeteroRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]HeteroRow, 0, 4*len(modelNames))
	for _, name := range modelNames {
		r, err := heteroCells(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

func heteroCells(cfg Config, model string) ([]HeteroRow, error) {
	const gpus = 8
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	perGPU, global := batches(spec, Strong, gpus, 0)
	m, err := spec.Build(perGPU)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	train, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}

	uniform, err := device.NewCluster(2, 4)
	if err != nil {
		return nil, err
	}
	mixed, err := device.NewHeterogeneous(heteroMixSpec())
	if err != nil {
		return nil, err
	}
	t4only, err := device.NewHeterogeneous(t4OnlySpec())
	if err != nil {
		return nil, err
	}

	uniformDep, uniformRow, err := heteroTrain(cfg, model, MixUniform, train, uniform, global)
	if err != nil {
		return nil, err
	}
	_, heteroRow, err := heteroTrain(cfg, model, MixHetero, train, mixed, global)
	if err != nil {
		return nil, err
	}
	// The uniform-assumption row deploys the all-V100 strategy on the real
	// mix: same placement indices, different silicon underneath — exactly
	// what the pre-class scheduler would have done.
	assumeRow := HeteroRow{
		Model: model, Mix: MixUniformAssume, Devices: mixed.NumDevices(),
		V100Share: -1,
	}
	if uniformDep != nil {
		assumeRow.Predicted = uniformDep.predicted
		assumeRow.V100Share = flopsShareOnV100(uniformDep.graph, uniformDep.placement, mixed)
		if err := measureDeployed(cfg, &assumeRow, uniformDep, mixed, global); err != nil {
			return nil, err
		}
	} else {
		assumeRow.OOM = true
	}
	_, t4Row, err := heteroTrain(cfg, model, MixT4Only, train, t4only, global)
	if err != nil {
		return nil, err
	}
	return []HeteroRow{*uniformRow, *heteroRow, assumeRow, *t4Row}, nil
}

// heteroTrain runs the full FastT pipeline — bootstrap with learned cost
// models, strategy activation, measured training — for the graph on the
// cluster, and lifts the activated strategy out for cross-cluster deploys.
// A configuration with no feasible start yields an OOM row and a nil deploy.
func heteroTrain(cfg Config, model, mix string, train *graph.Graph, cluster *device.Cluster, global int) (*deployed, *HeteroRow, error) {
	row := &HeteroRow{
		Model: model, Mix: mix, Devices: cluster.NumDevices(),
		V100Share: -1,
	}
	s, err := session.New(cluster, sim.DefaultExecutor(cluster), train, session.Config{
		Seed:      cfg.Seed,
		MaxRounds: cfg.MaxRounds,
		Jitter:    cfg.Jitter,
		Sched: core.Options{
			MaxSplitOps:   cfg.MaxSplitOps,
			MaxSyncGroups: cfg.MaxSyncGroups,
			Workers:       cfg.Workers,
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s session: %w", mix, err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		if errors.Is(err, session.ErrNoFeasibleStart) {
			row.OOM = true
			return nil, row, nil
		}
		return nil, nil, fmt.Errorf("%s bootstrap: %w", mix, err)
	}
	stats, err := s.Run(cfg.MeasureIters)
	if err != nil {
		return nil, nil, fmt.Errorf("%s run: %w", mix, err)
	}
	row.Predicted = s.ActiveArtifact().Predicted
	row.Iter = stats.AvgIter
	row.Speed = float64(global) / stats.AvgIter.Seconds()
	row.CalcWall = rep.CalcWallTotal
	if mixedClasses(cluster) {
		row.V100Share = flopsShareOnV100(s.ActiveGraph(), s.ActivePlacement(), cluster)
	}
	dep := &deployed{
		graph:      s.ActiveGraph(),
		placement:  s.ActivePlacement(),
		priorities: s.ActivePriorities(),
		predicted:  s.ActiveArtifact().Predicted,
	}
	return dep, row, nil
}

// measureDeployed runs a lifted strategy on another cluster's simulator and
// fills the row's measured columns. An OOM marks the row instead of failing
// the table.
func measureDeployed(cfg Config, row *HeteroRow, dep *deployed, cluster *device.Cluster, global int) error {
	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	var total time.Duration
	for i := 0; i < cfg.MeasureIters; i++ {
		res, err := engine.Run(dep.graph, dep.placement, sim.Config{
			Discipline: sim.Priority,
			Priorities: dep.priorities,
			Jitter:     cfg.Jitter,
			Seed:       cfg.Seed + int64(i),
		})
		if err != nil {
			var oom *sim.OOMError
			if errors.As(err, &oom) {
				row.OOM = true
				return nil
			}
			return fmt.Errorf("%s measure: %w", row.Mix, err)
		}
		total += res.Makespan
	}
	row.Iter = total / time.Duration(cfg.MeasureIters)
	row.Speed = float64(global) / row.Iter.Seconds()
	return nil
}

// mixedClasses reports whether the cluster carries more than one device
// class.
func mixedClasses(cluster *device.Cluster) bool {
	first := cluster.Device(0).ClassName()
	for _, d := range cluster.Devices() {
		if d.ClassName() != first {
			return true
		}
	}
	return false
}

// flopsShareOnV100 returns the FLOPs-weighted fraction of the placed graph
// that runs on V100-class devices — the "did the critical work land on the
// fast silicon" metric of the cluster-mix table.
func flopsShareOnV100(g *graph.Graph, place []int, cluster *device.Cluster) float64 {
	var fast, total int64
	for _, op := range g.Ops() {
		if op.FLOPs <= 0 || op.ID >= len(place) {
			continue
		}
		total += op.FLOPs
		if cluster.Device(place[op.ID]).ClassName() == device.ClassV100 {
			fast += op.FLOPs
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}

// WriteHeteroTable prints the cluster-mix table.
func WriteHeteroTable(w io.Writer, rows []HeteroRow) error {
	if _, err := fmt.Fprintf(w, "%-16s %-16s %4s %12s %12s %12s %10s %9s\n",
		"Model", "Mix", "Dev", "Predicted", "AvgIter", "Samples/s", "V100FLOPs", "CalcWall"); err != nil {
		return err
	}
	for _, r := range rows {
		iter, speed := "OOM", "-"
		if !r.OOM {
			iter = r.Iter.Round(time.Microsecond).String()
			speed = fmt.Sprintf("%.1f", r.Speed)
		}
		share := "-"
		if r.V100Share >= 0 {
			share = fmt.Sprintf("%.0f%%", 100*r.V100Share)
		}
		fmt.Fprintf(w, "%-16s %-16s %4d %12v %12s %12s %10s %9v\n",
			r.Model, r.Mix, r.Devices, r.Predicted.Round(time.Microsecond),
			iter, speed, share, r.CalcWall.Round(time.Millisecond))
	}
	return nil
}
