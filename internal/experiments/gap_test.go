package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func gapTestConfig() Config {
	return Config{MaxSplitOps: 2, MaxSyncGroups: 4, Workers: 0, Seed: 1}
}

// TestOptimalityGapTableSanity asserts the row invariants the acceptance
// criteria name: a valid (positive) lower bound on every row, a bound never
// above the prediction, and the Theorem-1 check holding.
func TestOptimalityGapTableSanity(t *testing.T) {
	models := []string{"LeNet", "AlexNet"}
	gpus := []int{2, 4}
	if testing.Short() {
		models, gpus = []string{"LeNet"}, []int{2}
	}
	rows, err := OptimalityGapTable(gapTestConfig(), models, gpus)
	if err != nil {
		t.Fatalf("OptimalityGapTable: %v", err)
	}
	if want := len(models) * len(gpus); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.LowerBound <= 0 {
			t.Errorf("%s @ %d: lower bound %v, want > 0", r.Model, r.GPUs, r.LowerBound)
		}
		if r.LowerBound > r.Predicted {
			t.Errorf("%s @ %d: lower bound %v above prediction %v",
				r.Model, r.GPUs, r.LowerBound, r.Predicted)
		}
		if r.GapPct < 0 {
			t.Errorf("%s @ %d: negative gap %.2f%%", r.Model, r.GPUs, r.GapPct)
		}
		if !r.Thm1OK {
			t.Errorf("%s @ %d: Theorem 1 violated: predicted %v > 2*%v + %v",
				r.Model, r.GPUs, r.Predicted, r.LowerBound, r.CMax)
		}
		if r.Ops <= 0 || r.Method == "" {
			t.Errorf("%s @ %d: incomplete row %+v", r.Model, r.GPUs, r)
		}
	}
}

// TestOptimalityGapTableDeterministic is the gap-table half of the repo's
// determinism convention: two runs with the same config must render byte
// for byte the same table (the table carries no wall-clock columns by
// design).
func TestOptimalityGapTableDeterministic(t *testing.T) {
	models := []string{"LeNet", "AlexNet"}
	if testing.Short() {
		models = []string{"LeNet"}
	}
	render := func() []byte {
		rows, err := OptimalityGapTable(gapTestConfig(), models, []int{2, 4})
		if err != nil {
			t.Fatalf("OptimalityGapTable: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteGapTable(&buf, rows); err != nil {
			t.Fatalf("WriteGapTable: %v", err)
		}
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Errorf("gap table not byte-identical across reruns:\n--- first\n%s--- second\n%s",
			first, second)
	}
	if !strings.Contains(string(first), " ok") {
		t.Errorf("rendered table has no Theorem-1 'ok' marker:\n%s", first)
	}
}

// TestOptimalityGapTableUnknownModel pins the error path: a bad model name
// fails with context instead of a silent empty table.
func TestOptimalityGapTableUnknownModel(t *testing.T) {
	if _, err := OptimalityGapTable(gapTestConfig(), []string{"NoSuchNet"}, []int{2}); err == nil {
		t.Error("OptimalityGapTable accepted an unknown model")
	}
}
