// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 6): strong/weak scaling speed tables, the BERT-large
// memory table, strategy-calculation times, split decisions, order
// enforcement, baseline comparisons, placement analysis, and the
// compute/memcpy breakdown — plus ablations of FastT's design choices.
package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/session"
	"fastt/internal/sim"
	"fastt/internal/trace"
)

// Scaling selects the batch-size policy of a scaling experiment.
type Scaling int

// Scaling policies.
const (
	// Strong keeps the global batch fixed as GPUs are added (Table 1).
	Strong Scaling = iota + 1
	// Weak keeps the per-GPU batch fixed (Table 2).
	Weak
)

// String names the policy.
func (s Scaling) String() string {
	if s == Strong {
		return "strong"
	}
	return "weak"
}

// Config tunes experiment fidelity against runtime.
type Config struct {
	// MeasureIters is the number of measured iterations per configuration
	// (the paper averages 500; the simulator is deterministic up to
	// jitter, so a handful suffices).
	MeasureIters int
	// MaxRounds bounds the FastT pre-training rounds.
	MaxRounds int
	// MaxSplitOps / MaxSyncGroups bound the strategy calculator per round.
	MaxSplitOps   int
	MaxSyncGroups int
	// Workers bounds the strategy calculator's concurrent candidate
	// evaluations; 0 uses all CPUs (core.Options.Workers semantics).
	Workers int
	// Jitter is the measurement noise.
	Jitter float64
	// Seed makes runs reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MeasureIters == 0 {
		c.MeasureIters = 5
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 3
	}
	if c.MaxSplitOps == 0 {
		c.MaxSplitOps = 6
	}
	if c.MaxSyncGroups == 0 {
		c.MaxSyncGroups = 8
	}
	if c.Jitter == 0 {
		c.Jitter = 0.02
	}
	return c
}

// Cell is the outcome of one (model, scaling, GPUs, servers) configuration.
type Cell struct {
	Model       string
	Scaling     Scaling
	GPUs        int
	Servers     int
	GlobalBatch int

	// Data-parallel baseline.
	DPIter      time.Duration
	DPSpeed     float64 // samples/s (0 when OOM)
	DPOOM       bool
	DPBreakdown trace.Breakdown

	// FastT.
	FastTIter      time.Duration
	FastTSpeed     float64
	FastTOOM       bool
	FastTStart     string // bootstrap strategy label
	FastTBreakdown trace.Breakdown
	Splits         []graph.SplitDecision
	CalcWall       time.Duration
	OpsPerDevice   []int
	// Evaluated/Pruned count the OS-DPOS candidate evaluations completed
	// and pruned across all pre-training rounds (Table 4).
	Evaluated int
	Pruned    int
	// Speculated/Mispredicted count the pipelined search's ahead-of-commit
	// evaluations and the discarded subset across all rounds (Table 4).
	Speculated   int
	Mispredicted int

	// FastT's activated strategy, for order-enforcement re-runs (Fig. 2).
	FastTGraph      *graph.Graph
	FastTPlacement  []int
	FastTPriorities []int
}

// Speedup returns FastT's relative gain over the DP baseline in percent
// (0 when either side is unavailable).
func (c *Cell) Speedup() float64 {
	if c.DPSpeed <= 0 || c.FastTSpeed <= 0 {
		return 0
	}
	return (c.FastTSpeed/c.DPSpeed - 1) * 100
}

// Runner executes and memoizes cells.
type Runner struct {
	cfg   Config
	mu    sync.Mutex
	cache map[cellKey]*Cell
}

type cellKey struct {
	model    string
	scaling  Scaling
	gpus     int
	servers  int
	batchOvr int
}

// NewRunner returns a runner with the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg.withDefaults(), cache: make(map[cellKey]*Cell)}
}

// Cell runs (or returns the cached) configuration.
func (r *Runner) Cell(model string, scaling Scaling, gpus, servers int) (*Cell, error) {
	return r.cellWithBatch(model, scaling, gpus, servers, 0)
}

// CellWithBatch overrides the global batch (Table 3's batch sweep).
func (r *Runner) CellWithBatch(model string, gpus, servers, globalBatch int) (*Cell, error) {
	return r.cellWithBatch(model, Strong, gpus, servers, globalBatch)
}

func (r *Runner) cellWithBatch(model string, scaling Scaling, gpus, servers, batchOvr int) (*Cell, error) {
	key := cellKey{model: model, scaling: scaling, gpus: gpus, servers: servers, batchOvr: batchOvr}
	r.mu.Lock()
	if c, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	c, err := r.run(model, scaling, gpus, servers, batchOvr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[key] = c
	r.mu.Unlock()
	return c, nil
}

func (r *Runner) run(model string, scaling Scaling, gpus, servers, batchOvr int) (*Cell, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	if gpus < 1 || servers < 1 || gpus%servers != 0 {
		return nil, fmt.Errorf("bad topology: %d GPUs on %d servers", gpus, servers)
	}
	cluster, err := device.NewCluster(servers, gpus/servers)
	if err != nil {
		return nil, err
	}

	perGPU, global := batches(spec, scaling, gpus, batchOvr)
	cell := &Cell{
		Model:       model,
		Scaling:     scaling,
		GPUs:        gpus,
		Servers:     servers,
		GlobalBatch: global,
	}

	engine := sim.NewEngine(cluster, kernels.NewDefaultOracle(cluster))
	dpGraph, dpPlace, err := dpBaseline(spec, perGPU, gpus, cluster)
	if err != nil {
		return nil, err
	}
	if err := r.measureDP(cell, engine, dpGraph, dpPlace, global); err != nil {
		return nil, err
	}
	if err := r.measureFastT(cell, cluster, spec, dpGraph, global); err != nil {
		return nil, err
	}
	return cell, nil
}

// batches resolves the per-GPU and global batch for a configuration.
func batches(spec models.Spec, scaling Scaling, gpus, batchOvr int) (perGPU, global int) {
	switch scaling {
	case Weak:
		perGPU = spec.PerGPUBatch
		return perGPU, perGPU * gpus
	default:
		global = spec.GlobalBatch
		if batchOvr > 0 {
			global = batchOvr
		}
		perGPU = global / gpus
		if perGPU < 1 {
			perGPU = 1
		}
		return perGPU, global
	}
}

// dpBaseline builds the data-parallel training graph and its pinned
// placement.
func dpBaseline(spec models.Spec, perGPU, gpus int, cluster *device.Cluster) (*graph.Graph, []int, error) {
	m, err := spec.Build(perGPU)
	if err != nil {
		return nil, nil, fmt.Errorf("build %s: %w", spec.Name, err)
	}
	g, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, nil, fmt.Errorf("replicate %s: %w", spec.Name, err)
	}
	place, err := placement.DataParallel(g, cluster)
	if err != nil {
		return nil, nil, fmt.Errorf("place %s: %w", spec.Name, err)
	}
	return g, place, nil
}

func (r *Runner) measureDP(cell *Cell, engine *sim.Engine, g *graph.Graph, place []int, global int) error {
	var total time.Duration
	var last *sim.Result
	for i := 0; i < r.cfg.MeasureIters; i++ {
		res, err := engine.Run(g, place, sim.Config{
			Jitter: r.cfg.Jitter,
			Seed:   r.cfg.Seed + int64(i),
		})
		if err != nil {
			var oom *sim.OOMError
			if errors.As(err, &oom) {
				cell.DPOOM = true
				return nil
			}
			return fmt.Errorf("DP baseline: %w", err)
		}
		total += res.Makespan
		last = res
	}
	cell.DPIter = total / time.Duration(r.cfg.MeasureIters)
	cell.DPSpeed = float64(global) / cell.DPIter.Seconds()
	cell.DPBreakdown = trace.BreakdownOf(last)
	return nil
}

func (r *Runner) measureFastT(cell *Cell, cluster *device.Cluster, spec models.Spec,
	dpGraph *graph.Graph, global int) error {
	// The paper's input-graph rule (Sec. 5.2): the data-parallel graph
	// when it fits, otherwise the plain model DAG at the full batch.
	train := dpGraph
	if cell.DPOOM {
		full, err := spec.Build(global)
		if err != nil {
			return fmt.Errorf("build full-batch %s: %w", spec.Name, err)
		}
		train, err = graph.BuildDataParallel(full, 1)
		if err != nil {
			return fmt.Errorf("wrap full-batch %s: %w", spec.Name, err)
		}
	}
	s, err := session.New(cluster, sim.DefaultExecutor(cluster), train, session.Config{
		Seed:      r.cfg.Seed,
		MaxRounds: r.cfg.MaxRounds,
		Jitter:    r.cfg.Jitter,
		Sched: core.Options{
			MaxSplitOps:   r.cfg.MaxSplitOps,
			MaxSyncGroups: r.cfg.MaxSyncGroups,
			Workers:       r.cfg.Workers,
		},
	})
	if err != nil {
		return fmt.Errorf("session: %w", err)
	}
	rep, err := s.Bootstrap()
	if err != nil {
		if errors.Is(err, session.ErrNoFeasibleStart) {
			cell.FastTOOM = true
			return nil
		}
		return fmt.Errorf("bootstrap: %w", err)
	}
	stats, err := s.Run(r.cfg.MeasureIters)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	cell.FastTIter = stats.AvgIter
	cell.FastTSpeed = float64(global) / stats.AvgIter.Seconds()
	cell.FastTStart = rep.Start
	cell.FastTBreakdown = trace.BreakdownOf(stats.Last)
	cell.Splits = s.ActiveSplits()
	cell.CalcWall = rep.CalcWallTotal
	cell.Evaluated = rep.EvaluatedTotal
	cell.Pruned = rep.PrunedTotal
	cell.Speculated = rep.SpeculatedTotal
	cell.Mispredicted = rep.MispredictedTotal
	cell.FastTGraph = s.ActiveGraph()
	cell.FastTPlacement = s.ActivePlacement()
	cell.FastTPriorities = s.ActivePriorities()
	cell.OpsPerDevice = opsPerDevice(cell.FastTPlacement, cluster.NumDevices())
	return nil
}

func opsPerDevice(place []int, n int) []int {
	counts := make([]int, n)
	for _, d := range place {
		if d >= 0 && d < n {
			counts[d]++
		}
	}
	return counts
}
