package experiments

import (
	"fmt"
	"io"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// GapRow is one (model, GPU count) optimality-gap measurement: the OS-DPOS
// strategy's predicted makespan against the reference lower bound on the
// ideal-system optimum (optimal.Bound), plus the Theorem-1 check that
// Predicted <= 2*LowerBound + CMax.
type GapRow struct {
	Model string
	GPUs  int
	// Ops is the size of the final materialized graph the bound and the
	// prediction both refer to (after operation splits).
	Ops int
	// Predicted is the strategy's predicted iteration makespan, including
	// communication.
	Predicted time.Duration
	// LowerBound is the reference lower bound on the ideal-system
	// (zero-communication) optimum; Exact marks rows where it equals that
	// optimum, Method names the solver path ("exact", "contracted (N
	// blocks)", "relaxed (dp)", ...).
	LowerBound time.Duration
	Exact      bool
	Method     string
	// GapPct is 100*(Predicted-LowerBound)/LowerBound. Predicted includes
	// communication while the bound does not, so this is an upper bound on
	// the strategy's true distance from the communication-aware optimum.
	GapPct float64
	// CMax is the maximum chain communication of the final graph and
	// Thm1RHS = 2*LowerBound + CMax; Thm1OK asserts Predicted <= Thm1RHS,
	// the catalog-wide instantiation of Theorem 1 (conservative: the
	// theorem's omega_opt is >= LowerBound).
	CMax    time.Duration
	Thm1RHS time.Duration
	Thm1OK  bool
}

// OptimalityGapTable computes, for every named model and GPU count, an
// OS-DPOS strategy with the reference lower bound attached and the
// Theorem-1 check evaluated. Strategies and bounds are deterministic for a
// fixed config, and rows carry no wall-clock measurements, so two runs with
// the same inputs produce byte-identical tables.
func OptimalityGapTable(cfg Config, modelNames []string, gpuCounts []int) ([]GapRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]GapRow, 0, len(modelNames)*len(gpuCounts))
	for _, name := range modelNames {
		for _, gpus := range gpuCounts {
			row, err := gapCell(cfg, name, gpus)
			if err != nil {
				return nil, fmt.Errorf("%s @ %d GPUs: %w", name, gpus, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func gapCell(cfg Config, model string, gpus int) (*GapRow, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	perGPU, _ := batches(spec, Strong, gpus, 0)
	m, err := spec.Build(perGPU)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	train, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		return nil, err
	}
	est := kernels.NewDefaultOracle(cluster)
	st, err := core.ComputeStrategy(train, cluster, est, core.Options{
		MaxSplitOps:   cfg.MaxSplitOps,
		MaxSyncGroups: cfg.MaxSyncGroups,
		Workers:       cfg.Workers,
		ComputeBound:  true,
	})
	if err != nil {
		return nil, err
	}
	if st.LowerBound <= 0 {
		return nil, fmt.Errorf("no lower bound computed (method %q)", st.BoundMethod)
	}
	ranks, err := core.ComputeRanks(st.Graph, cluster, est)
	if err != nil {
		return nil, fmt.Errorf("ranks: %w", err)
	}
	cmax := core.MaxChainComm(st.Graph, ranks)
	row := &GapRow{
		Model:      model,
		GPUs:       gpus,
		Ops:        st.Graph.NumOps(),
		Predicted:  st.Predicted,
		LowerBound: st.LowerBound,
		Exact:      st.BoundExact,
		Method:     st.BoundMethod,
		GapPct:     st.GapPct,
		CMax:       cmax,
	}
	row.Thm1RHS = 2*row.LowerBound + cmax
	row.Thm1OK = row.Predicted <= row.Thm1RHS
	return row, nil
}

// WriteGapTable prints the optimality-gap table. Rows end in "ok" when the
// Theorem-1 check holds (and "VIOLATED" otherwise) so shell smokes can grep
// for them; no column carries wall-clock timings, keeping reruns
// byte-identical.
func WriteGapTable(w io.Writer, rows []GapRow) error {
	if _, err := fmt.Fprintf(w, "%-16s %4s %6s %12s %12s %7s %6s %-18s %12s %12s %9s\n",
		"Model", "GPUs", "Ops", "Predicted", "LowerBound", "Gap%", "Exact",
		"Method", "CMax", "2LB+CMax", "Thm1"); err != nil {
		return err
	}
	for _, r := range rows {
		exact := "-"
		if r.Exact {
			exact = "yes"
		}
		thm1 := "ok"
		if !r.Thm1OK {
			thm1 = "VIOLATED"
		}
		if _, err := fmt.Fprintf(w, "%-16s %4d %6d %12v %12v %6.1f%% %6s %-18s %12v %12v %9s\n",
			r.Model, r.GPUs, r.Ops,
			r.Predicted.Round(time.Microsecond), r.LowerBound.Round(time.Microsecond),
			r.GapPct, exact, r.Method,
			r.CMax.Round(time.Microsecond), r.Thm1RHS.Round(time.Microsecond), thm1); err != nil {
			return err
		}
	}
	return nil
}
