package experiments

import (
	"fmt"
	"io"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/models"
	"fastt/internal/session"
	"fastt/internal/sim"
)

// FaultRow is one (model, fault rate) configuration of the fault-recovery
// table: how much a seeded fault storm costs a FastT session in lost
// iterations and recovery time, and whether the session had to degrade.
type FaultRow struct {
	Model string
	GPUs  int
	// Rate is the fault arrival rate in expected faults per training
	// iteration (scale-free across models with very different iteration
	// times).
	Rate float64
	// Injected counts fault events in the generated plan.
	Injected int

	// DeviceLosses / LostIterations / RecoveryTime / RecomputeWall mirror
	// the session's RunStats after the faulty run.
	DeviceLosses   int
	LostIterations int
	RecoveryTime   time.Duration
	RecomputeWall  time.Duration
	// Degraded names the fallback strategy when the retry budget ran out
	// ("" when every loss was recovered by a full recompute).
	Degraded string
	// Survivors is the cluster size after the run.
	Survivors int
	// AvgIter is the measured per-iteration time over the faulty run.
	AvgIter time.Duration
}

// FaultRates is the default fault-rate sweep (expected faults per training
// iteration), spanning "at most one loss per run" to "storm that can
// exhaust the retry budget".
func FaultRates() []float64 { return []float64{0.05, 0.2, 0.5} }

// FaultRecoveryTable measures recovery cost versus fault rate across the
// given models on a single server of gpus devices. Each cell bootstraps
// fault-free, then arms a plan drawn from GeneratePlan at the row's rate
// over a horizon of iters post-bootstrap iterations and runs through it.
func FaultRecoveryTable(cfg Config, modelNames []string, gpus, iters int, rates []float64) ([]FaultRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]FaultRow, 0, len(modelNames)*len(rates))
	for _, name := range modelNames {
		for _, rate := range rates {
			row, err := faultCell(cfg, name, gpus, iters, rate)
			if err != nil {
				return nil, fmt.Errorf("%s at rate %g: %w", name, rate, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func faultCell(cfg Config, model string, gpus, iters int, rate float64) (*FaultRow, error) {
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		return nil, err
	}
	perGPU, _ := batches(spec, Strong, gpus, 0)
	m, err := spec.Build(perGPU)
	if err != nil {
		return nil, err
	}
	train, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, err
	}
	exec, err := sim.DefaultFaultyExecutor(cluster, nil)
	if err != nil {
		return nil, err
	}
	s, err := session.New(cluster, exec, train, session.Config{
		Seed:            cfg.Seed,
		MaxRounds:       cfg.MaxRounds,
		Jitter:          cfg.Jitter,
		CheckpointEvery: 5,
		Sched: core.Options{
			MaxSplitOps:   cfg.MaxSplitOps,
			MaxSyncGroups: cfg.MaxSyncGroups,
			Workers:       cfg.Workers,
		},
	})
	if err != nil {
		return nil, err
	}
	rep, err := s.Bootstrap()
	if err != nil {
		return nil, err
	}
	// Draw the fault storm over the horizon the run will actually cover,
	// starting at the post-bootstrap epoch so bootstrap stays fault-free.
	// The per-iteration rate converts to GeneratePlan's per-second rate via
	// the measured iteration time.
	horizon := time.Duration(iters) * rep.FinalMeasured
	perSecond := 0.0
	if rep.FinalMeasured > 0 {
		perSecond = rate / rep.FinalMeasured.Seconds()
	}
	plan := sim.GeneratePlan(cfg.Seed+int64(rate*1000), gpus, perSecond, horizon, exec.Epoch())
	if err := exec.SetPlan(plan); err != nil {
		return nil, err
	}
	stats, err := s.Run(iters)
	if err != nil {
		return nil, err
	}
	return &FaultRow{
		Model:          model,
		GPUs:           gpus,
		Rate:           rate,
		Injected:       len(plan.Faults),
		DeviceLosses:   stats.DeviceLosses,
		LostIterations: stats.LostIterations,
		RecoveryTime:   stats.RecoveryTime,
		RecomputeWall:  stats.RecomputeWall,
		Degraded:       stats.Degraded,
		Survivors:      s.Cluster().NumDevices(),
		AvgIter:        stats.AvgIter,
	}, nil
}

// WriteFaultTable prints the fault-recovery table.
func WriteFaultTable(w io.Writer, rows []FaultRow) error {
	if _, err := fmt.Fprintf(w, "%-16s %5s %6s %8s %7s %9s %12s %10s %-14s\n",
		"Model", "GPUs", "Rate", "Injected", "Losses", "LostIters", "RecoveryT", "AvgIter", "Degraded"); err != nil {
		return err
	}
	for _, r := range rows {
		degraded := r.Degraded
		if degraded == "" {
			degraded = "-"
		}
		fmt.Fprintf(w, "%-16s %5d %6.2f %8d %7d %9d %12v %10v %-14s\n",
			r.Model, r.GPUs, r.Rate, r.Injected, r.DeviceLosses, r.LostIterations,
			r.RecoveryTime.Round(time.Millisecond), r.AvgIter.Round(time.Microsecond), degraded)
	}
	return nil
}
