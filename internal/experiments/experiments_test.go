package experiments

import (
	"strings"
	"testing"
)

// fastCfg keeps test runtime low while exercising the full pipeline.
func fastCfg() Config {
	return Config{MeasureIters: 2, MaxRounds: 2, MaxSplitOps: 3, MaxSyncGroups: 4, Seed: 1}
}

func TestRunCellLeNetShape(t *testing.T) {
	r := NewRunner(fastCfg())
	cell, err := r.Cell("LeNet", Strong, 2, 1)
	if err != nil {
		t.Fatalf("Cell: %v", err)
	}
	if cell.DPOOM || cell.FastTOOM {
		t.Fatal("unexpected OOM")
	}
	if cell.DPSpeed <= 0 || cell.FastTSpeed <= 0 {
		t.Fatalf("speeds: DP=%v FastT=%v", cell.DPSpeed, cell.FastTSpeed)
	}
	// The session rolls back losing strategies, so FastT never ends more
	// than jitter-noise slower than the DP start strategy.
	if cell.FastTSpeed < cell.DPSpeed*0.93 {
		t.Errorf("FastT (%.1f) much slower than DP (%.1f)", cell.FastTSpeed, cell.DPSpeed)
	}
	if cell.GlobalBatch != 256 {
		t.Errorf("GlobalBatch = %d, want 256", cell.GlobalBatch)
	}
	if len(cell.OpsPerDevice) != 2 {
		t.Errorf("OpsPerDevice = %v", cell.OpsPerDevice)
	}
}

func TestRunCellWeakScalingBatch(t *testing.T) {
	r := NewRunner(fastCfg())
	cell, err := r.Cell("LeNet", Weak, 2, 1)
	if err != nil {
		t.Fatalf("Cell: %v", err)
	}
	if cell.GlobalBatch != 512 {
		t.Errorf("weak-scaling GlobalBatch = %d, want 512", cell.GlobalBatch)
	}
}

func TestCellCaching(t *testing.T) {
	r := NewRunner(fastCfg())
	a, err := r.Cell("LeNet", Strong, 2, 1)
	if err != nil {
		t.Fatalf("Cell: %v", err)
	}
	b, err := r.Cell("LeNet", Strong, 2, 1)
	if err != nil {
		t.Fatalf("Cell: %v", err)
	}
	if a != b {
		t.Error("cell not cached")
	}
}

func TestRunCellBadTopology(t *testing.T) {
	r := NewRunner(fastCfg())
	if _, err := r.Cell("LeNet", Strong, 3, 2); err == nil {
		t.Error("accepted 3 GPUs on 2 servers")
	}
	if _, err := r.Cell("NoSuchModel", Strong, 2, 1); err == nil {
		t.Error("accepted unknown model")
	}
}

func TestTable3BERTBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("BERT sweep is slow")
	}
	r := NewRunner(fastCfg())
	rows, err := Table3(r)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Paper's Table 3 pattern.
	checks := []struct {
		batch                      int
		singleOOM, dpOOM, fastTOOM bool
	}{
		{16, false, false, false},
		{32, true, false, false},
		{40, true, true, false},
		{48, true, true, false},
	}
	for i, c := range checks {
		row := rows[i]
		if row.GlobalBatch != c.batch {
			t.Fatalf("row %d batch = %d, want %d", i, row.GlobalBatch, c.batch)
		}
		if row.SingleOOM != c.singleOOM {
			t.Errorf("batch %d single-GPU OOM = %v, want %v", c.batch, row.SingleOOM, c.singleOOM)
		}
		if row.DPOOM != c.dpOOM {
			t.Errorf("batch %d DP OOM = %v, want %v", c.batch, row.DPOOM, c.dpOOM)
		}
		if row.FastTOOM != c.fastTOOM {
			t.Errorf("batch %d FastT OOM = %v, want %v", c.batch, row.FastTOOM, c.fastTOOM)
		}
	}
	// Per-iteration time grows with batch under FastT.
	for i := 1; i < len(rows); i++ {
		if rows[i].FastTIter < rows[i-1].FastTIter {
			t.Errorf("FastT iteration time not monotone: %v then %v",
				rows[i-1].FastTIter, rows[i].FastTIter)
		}
	}
}

func TestFigure2OrderEnforcementNotHarmful(t *testing.T) {
	if testing.Short() {
		t.Skip("four-model sweep is slow")
	}
	r := NewRunner(fastCfg())
	rows, err := Figure2(r)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		// Order enforcement must not lose more than noise.
		if row.ReductionPct < -6 {
			t.Errorf("%s: order enforcement hurt by %.1f%%", row.Model, row.ReductionPct)
		}
	}
}

func TestFigure3IncludesMeasuredAndPublished(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	r := NewRunner(fastCfg())
	bars, err := Figure3(r)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	var measured, published int
	for _, b := range bars {
		if b.Measured {
			measured++
			if b.Method != "FastT" {
				t.Errorf("measured bar for method %q", b.Method)
			}
			if b.Normalized < 0.9 {
				t.Errorf("%s %d GPUs: FastT normalized %.2f < 0.9", b.Model, b.GPUs, b.Normalized)
			}
		} else {
			published++
		}
	}
	if measured != 12 { // 4 models x 3 GPU counts
		t.Errorf("measured bars = %d, want 12", measured)
	}
	if published == 0 {
		t.Error("no published reference bars")
	}
}

func TestFigure4CountsSumToGraphSize(t *testing.T) {
	r := NewRunner(fastCfg())
	rows, err := Figure4(r)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	for _, row := range rows {
		total := 0
		for _, n := range row.Counts {
			total += n
		}
		if total == 0 {
			t.Errorf("%s %d GPUs: empty placement", row.Model, row.GPUs)
		}
		if len(row.Counts) != row.GPUs {
			t.Errorf("%s: %d count entries for %d GPUs", row.Model, len(row.Counts), row.GPUs)
		}
	}
}

func TestTable5RepresentativeOps(t *testing.T) {
	r := NewRunner(fastCfg())
	rows, err := Table5(r)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	byOp := make(map[string]Table5Row, len(rows))
	for _, row := range rows {
		byOp[row.Op] = row
	}
	fc6, ok := byOp["fc6"]
	if !ok {
		t.Fatal("fc6 row missing")
	}
	// fc6 holds ~100M parameters; per Table 5 it must never be split.
	if fc6.WeightKB < 100_000 {
		t.Errorf("fc6 weight = %.0f KB, want > 100000", fc6.WeightKB)
	}
	if fc6.Split {
		t.Error("fc6 was split despite its huge weights")
	}
	if conv12 := byOp["conv1_2"]; conv12.Time <= byOp["conv1_1"].Time {
		t.Error("conv1_2 should be slower than conv1_1 (64 input channels vs 3)")
	}
	if byOp["pool1"].WeightKB != 0 {
		t.Error("pool1 has weights")
	}
}

func TestWriteFormattersProduceTables(t *testing.T) {
	r := NewRunner(fastCfg())
	rows, err := ScalingTable(r, Strong,
		[]ScalingSetting{{GPUs: 1, Servers: 1}, {GPUs: 2, Servers: 1}},
		[]string{"LeNet"})
	if err != nil {
		t.Fatalf("ScalingTable: %v", err)
	}
	var sb strings.Builder
	if err := WriteScalingTable(&sb, "test", []ScalingSetting{{GPUs: 1, Servers: 1}, {GPUs: 2, Servers: 1}}, rows); err != nil {
		t.Fatalf("WriteScalingTable: %v", err)
	}
	if !strings.Contains(sb.String(), "LeNet(256)") {
		t.Errorf("table output missing model row:\n%s", sb.String())
	}
}

func TestAblationInsertionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	rows, err := AblationInsertion(Config{MeasureIters: 1, MaxSplitOps: 2, MaxSyncGroups: 2, Seed: 1})
	if err != nil {
		t.Fatalf("AblationInsertion: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	for _, row := range rows {
		if row.FullIter <= 0 || row.Ablated <= 0 {
			t.Errorf("%s: non-positive iteration times %+v", row.Model, row)
		}
	}
}

// TestStrongScalingShapeClaims asserts the headline Table 1 claims on a
// representative subset: FastT never loses to DP beyond noise, and the
// models with structural headroom (ResNet200's deep small-kernel graph,
// GNMT's recurrent serialization) show real wins at 4 GPUs.
func TestStrongScalingShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model scaling subset is slow")
	}
	r := NewRunner(fastCfg())
	for _, tc := range []struct {
		model      string
		minSpeedup float64 // percent
	}{
		{"ResNet200", 8},
		{"GNMT", 8},
		{"Transformer", 5},
		{"LeNet", 5},
		{"VGG-19", -3}, // no single-server headroom; must not regress
	} {
		cell, err := r.Cell(tc.model, Strong, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if sp := cell.Speedup(); sp < tc.minSpeedup {
			t.Errorf("%s speedup = %.1f%%, want >= %.1f%%", tc.model, sp, tc.minSpeedup)
		}
	}
}

// TestMultiServerBeatsSingleServerHeadroom asserts the paper's observation
// that FastT's improvement is larger in the distributed setting, using VGG
// (the model where the contrast is sharpest).
func TestMultiServerBeatsSingleServerHeadroom(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-server cells are slow")
	}
	r := NewRunner(fastCfg())
	single, err := r.Cell("VGG-19", Strong, 8, 1)
	if err != nil {
		t.Fatalf("single server: %v", err)
	}
	multi, err := r.Cell("VGG-19", Strong, 8, 2)
	if err != nil {
		t.Fatalf("two servers: %v", err)
	}
	if multi.Speedup() <= single.Speedup() {
		t.Errorf("multi-server speedup %.1f%% not above single-server %.1f%%",
			multi.Speedup(), single.Speedup())
	}
	if multi.Speedup() < 15 {
		t.Errorf("multi-server VGG speedup = %.1f%%, want a substantial win", multi.Speedup())
	}
}
