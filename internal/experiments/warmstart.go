package experiments

import (
	"fmt"
	"io"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/strategy"
)

// Warmstart case labels — how the target cluster relates to the one the seed
// strategy was computed on.
const (
	CaseSameCluster = "same-cluster" // unchanged cluster: pure recompute
	CaseShrinkByOne = "shrink-by-1"  // one device failed (the recovery path)
	CaseGrowByOne   = "grow-by-1"    // one device joined (the elastic path)
)

// WarmstartRow compares a cold OS-DPOS search against the same search
// warm-started from a prior artifact — the recompute a session pays after a
// device failure, an elastic join, or cost-model drift.
type WarmstartRow struct {
	Model   string
	Case    string
	Devices int
	// ColdWall / SeedWall are the search wall times without and with the
	// seed; Speedup is their ratio.
	ColdWall time.Duration
	SeedWall time.Duration
	Speedup  float64
	// ColdEval / SeedEval and ColdPruned / SeedPruned are the candidate
	// evaluations completed and aborted by the bound — the mechanism column:
	// the seed's exact makespan turns completions into prunes.
	ColdEval   int
	SeedEval   int
	ColdPruned int
	SeedPruned int
	// SeedBound is the seed strategy's re-evaluated makespan on the target
	// cluster (the initial incumbent); SeedWon reports that no candidate
	// beat it and the seeded search returned the re-materialized seed.
	SeedBound     time.Duration
	ColdPredicted time.Duration
	SeedPredicted time.Duration
	SeedWon       bool
}

// WarmstartTable measures warm-started recomputes across the catalog. For
// each model it computes a cold 8-GPU strategy once (the seed), then runs
// cold and seeded searches for three cluster cases: the same 8 GPUs (a pure
// recompute, e.g. after cost drift), a shrink to 7 survivors (the fault
// path), and a growth to 9 (the elastic path). Search time and candidate
// accounting come from the searches themselves; the simulator is not
// involved, so rows measure exactly the strategy-calculation cost a session
// pays mid-run.
func WarmstartTable(cfg Config, modelNames []string) ([]WarmstartRow, error) {
	cfg = cfg.withDefaults()
	rows := make([]WarmstartRow, 0, 3*len(modelNames))
	for _, name := range modelNames {
		r, err := warmstartCells(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

func warmstartCells(cfg Config, model string) ([]WarmstartRow, error) {
	const gpus = 8
	spec, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	perGPU, _ := batches(spec, Strong, gpus, 0)
	m, err := spec.Build(perGPU)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	train, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		return nil, fmt.Errorf("replicate: %w", err)
	}

	base, err := device.SingleServer(gpus)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		MaxSplitOps:   cfg.MaxSplitOps,
		MaxSyncGroups: cfg.MaxSyncGroups,
		Workers:       cfg.Workers,
	}
	seedSt, err := core.ComputeStrategy(train, base, kernels.NewDefaultOracle(base), opts)
	if err != nil {
		return nil, fmt.Errorf("seed search: %w", err)
	}
	seed := &seedSt.Artifact

	shrunk, _, err := base.Without(gpus - 1)
	if err != nil {
		return nil, err
	}
	grown, err := device.SingleServer(gpus + 1)
	if err != nil {
		return nil, err
	}
	targets := []struct {
		label   string
		cluster *device.Cluster
	}{
		{CaseSameCluster, base},
		{CaseShrinkByOne, shrunk},
		{CaseGrowByOne, grown},
	}

	rows := make([]WarmstartRow, 0, len(targets))
	for _, t := range targets {
		row, err := warmstartCompare(model, t.label, train, t.cluster, opts, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.label, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// warmstartCompare runs the cold and the seeded search for one target
// cluster and fills a row. Cold runs first so a shared page-cache or pool
// warm-up, if anything, biases against the seeded side.
func warmstartCompare(model, label string, train *graph.Graph, cluster *device.Cluster,
	opts core.Options, seed *strategy.Artifact) (*WarmstartRow, error) {
	est := kernels.NewDefaultOracle(cluster)
	t0 := time.Now()
	cold, err := core.ComputeStrategy(train, cluster, est, opts)
	if err != nil {
		return nil, fmt.Errorf("cold: %w", err)
	}
	coldWall := time.Since(t0)

	opts.Seed = seed
	t0 = time.Now()
	seeded, err := core.ComputeStrategy(train, cluster, est, opts)
	if err != nil {
		return nil, fmt.Errorf("seeded: %w", err)
	}
	seedWall := time.Since(t0)

	row := &WarmstartRow{
		Model:         model,
		Case:          label,
		Devices:       cluster.NumDevices(),
		ColdWall:      coldWall,
		SeedWall:      seedWall,
		ColdEval:      cold.Evaluated,
		SeedEval:      seeded.Evaluated,
		ColdPruned:    cold.Pruned,
		SeedPruned:    seeded.Pruned,
		SeedBound:     seeded.SeedBound,
		ColdPredicted: cold.Predicted,
		SeedPredicted: seeded.Predicted,
		SeedWon:       seeded.SeedWon,
	}
	if seedWall > 0 {
		row.Speedup = float64(coldWall) / float64(seedWall)
	}
	return row, nil
}

// WriteWarmstartTable prints the warm-started recompute table.
func WriteWarmstartTable(w io.Writer, rows []WarmstartRow) error {
	if _, err := fmt.Fprintf(w, "%-16s %-13s %4s %11s %11s %8s %7s %7s %12s %12s %5s\n",
		"Model", "Case", "Dev", "ColdWall", "SeedWall", "Speedup",
		"EvalC/S", "PruneC/S", "SeedBound", "Predicted", "Won"); err != nil {
		return err
	}
	for _, r := range rows {
		won := "-"
		if r.SeedWon {
			won = "yes"
		}
		fmt.Fprintf(w, "%-16s %-13s %4d %11v %11v %7.2fx %7s %7s %12v %12v %5s\n",
			r.Model, r.Case, r.Devices,
			r.ColdWall.Round(time.Microsecond), r.SeedWall.Round(time.Microsecond),
			r.Speedup,
			fmt.Sprintf("%d/%d", r.ColdEval, r.SeedEval),
			fmt.Sprintf("%d/%d", r.ColdPruned, r.SeedPruned),
			r.SeedBound.Round(time.Microsecond), r.SeedPredicted.Round(time.Microsecond), won)
	}
	return nil
}
