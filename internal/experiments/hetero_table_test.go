package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestHeteroMixTableSmoke runs the full cluster-mix pipeline — four trained
// populations per model — on the cheapest model and checks the structural
// invariants of the table: row identity and order, the mix-beats-its-weak-
// half bound, class shares only where a class split exists, and the
// as-uniform row reusing the uniform strategy (zero calc wall, identical
// prediction).
func TestHeteroMixTableSmoke(t *testing.T) {
	cfg := Config{MeasureIters: 2, MaxRounds: 2, MaxSplitOps: 2, MaxSyncGroups: 4, Workers: 1, Seed: 7}
	rows, err := HeteroMixTable(cfg, []string{"LeNet"})
	if err != nil {
		t.Fatalf("HeteroMixTable: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byMix := make(map[string]HeteroRow, 4)
	for i, want := range []string{MixUniform, MixHetero, MixUniformAssume, MixT4Only} {
		if rows[i].Mix != want {
			t.Fatalf("row %d mix = %q, want %q", i, rows[i].Mix, want)
		}
		if rows[i].Model != "LeNet" {
			t.Fatalf("row %d model = %q", i, rows[i].Model)
		}
		byMix[rows[i].Mix] = rows[i]
	}
	for mix, r := range byMix {
		if r.OOM {
			t.Fatalf("%s: unexpected OOM on LeNet", mix)
		}
		if r.Predicted <= 0 || r.Iter <= 0 || r.Speed <= 0 {
			t.Errorf("%s: non-positive columns %+v", mix, r)
		}
	}
	if u, m := byMix[MixUniform], byMix[MixHetero]; m.Devices != u.Devices {
		t.Errorf("mix has %d devices, uniform %d — same population size expected", m.Devices, u.Devices)
	}
	// The structural bound the search now enforces: the mix never predicts
	// worse than its T4-only half.
	if m, t4 := byMix[MixHetero], byMix[MixT4Only]; m.Predicted > t4.Predicted {
		t.Errorf("mix predicts %v, worse than its T4-only half's %v", m.Predicted, t4.Predicted)
	}
	// Class shares: reported only where the cluster actually mixes classes.
	for _, mix := range []string{MixUniform, MixT4Only} {
		if s := byMix[mix].V100Share; s != -1 {
			t.Errorf("%s: V100Share = %v, want -1 on a single-class cluster", mix, s)
		}
	}
	for _, mix := range []string{MixHetero, MixUniformAssume} {
		if s := byMix[mix].V100Share; s < 0 || s > 1 {
			t.Errorf("%s: V100Share = %v outside [0,1]", mix, s)
		}
	}
	// The as-uniform row deploys the uniform strategy verbatim: same
	// prediction, no strategy calculation of its own.
	if a, u := byMix[MixUniformAssume], byMix[MixUniform]; a.Predicted != u.Predicted || a.CalcWall != 0 {
		t.Errorf("as-uniform row = pred %v wall %v, want the uniform row's pred %v and zero wall",
			a.Predicted, a.CalcWall, u.Predicted)
	}

	var buf strings.Builder
	if err := WriteHeteroTable(&buf, rows); err != nil {
		t.Fatalf("WriteHeteroTable: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Model", "V100FLOPs", "LeNet", MixHetero, MixUniformAssume} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "OOM") {
		t.Errorf("table reports OOM for LeNet:\n%s", out)
	}
}

// TestWriteHeteroTableOOMRow pins the rendering of an infeasible cell: OOM
// in the measured column, dashes where there is nothing to report.
func TestWriteHeteroTableOOMRow(t *testing.T) {
	rows := []HeteroRow{{
		Model: "Bert-large", Mix: MixT4Only, Devices: 4,
		Predicted: 250 * time.Millisecond, OOM: true, V100Share: -1,
	}}
	var buf strings.Builder
	if err := WriteHeteroTable(&buf, rows); err != nil {
		t.Fatalf("WriteHeteroTable: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "OOM") {
		t.Errorf("OOM row not marked:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("empty columns not dashed:\n%s", out)
	}
}
