package experiments

import (
	"fmt"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/optimal"
)

// theorem1Check asserts the paper's Theorem 1 on a finished strategy:
// omega_OSDPOS <= 2*omega_opt + C_max, instantiated with the reference
// lower bound LB <= omega_opt of the strategy's final materialized graph.
// The instantiation is conservative twice over — LB is at most omega_opt,
// and Predicted includes communication the ideal system does not — so a
// failure is a genuine violation, never a loose oracle.
func theorem1Check(t *testing.T, label string, st *core.Strategy,
	cluster *device.Cluster, est cost.Estimator) (lb, cmax time.Duration) {
	t.Helper()
	res, err := optimal.Bound(st.Graph, cluster, est, optimal.BoundOptions{})
	if err != nil {
		t.Fatalf("%s: Bound: %v", label, err)
	}
	if res.LowerBound <= 0 {
		t.Fatalf("%s: no valid lower bound (method %s)", label, res.Method)
	}
	ranks, err := core.ComputeRanks(st.Graph, cluster, est)
	if err != nil {
		t.Fatalf("%s: ranks: %v", label, err)
	}
	cmax = core.MaxChainComm(st.Graph, ranks)
	if rhs := 2*res.LowerBound + cmax; st.Predicted > rhs {
		t.Errorf("%s: Theorem 1 violated: predicted %v > 2*%v + %v = %v",
			label, st.Predicted, res.LowerBound, cmax, rhs)
	}
	return res.LowerBound, cmax
}

// TestTheorem1CatalogWide is the catalog-wide Theorem-1 property test: for
// every catalog model × {2,4,8} GPUs the OS-DPOS strategy must respect
// omega_OSDPOS <= 2*LB_ideal + C_max against the scalable reference bound.
func TestTheorem1CatalogWide(t *testing.T) {
	catalog := allCatalogModels()
	gpuCounts := []int{2, 4, 8}
	if testing.Short() {
		catalog = []string{"LeNet", "AlexNet", "VGG-19", "Transformer"}
		gpuCounts = []int{2, 8}
	}
	for _, model := range catalog {
		model := model
		t.Run(model, func(t *testing.T) {
			for _, gpus := range gpuCounts {
				train := catalogTrainGraph(t, model, gpus)
				cluster, err := device.SingleServer(gpus)
				if err != nil {
					t.Fatal(err)
				}
				est := kernels.NewDefaultOracle(cluster)
				st, err := core.ComputeStrategy(train, cluster, est, heteroTestOpts(0))
				if err != nil {
					t.Fatalf("%d GPUs: ComputeStrategy: %v", gpus, err)
				}
				theorem1Check(t, fmt.Sprintf("%s @ %d GPUs", model, gpus), st, cluster, est)
			}
		})
	}
}

// TestTheorem1AcrossWorkersAndSpeculation sweeps the Workers {1,4,8} ×
// speculation on/off matrix on a small-model subset. Strategies are
// byte-identical across the matrix (the determinism suite pins that), so
// the bound and C_max are computed once per model from the Workers=1
// strategy and every configuration is checked against them — the matrix
// exercises the parallel search paths under the theorem, not six redundant
// bound computations.
func TestTheorem1AcrossWorkersAndSpeculation(t *testing.T) {
	catalog := []string{"LeNet", "AlexNet", "VGG-19"}
	workerCounts := []int{1, 4, 8}
	if testing.Short() {
		catalog = []string{"LeNet", "AlexNet"}
		workerCounts = []int{1, 4}
	}
	const gpus = 4
	for _, model := range catalog {
		model := model
		t.Run(model, func(t *testing.T) {
			train := catalogTrainGraph(t, model, gpus)
			cluster, err := device.SingleServer(gpus)
			if err != nil {
				t.Fatal(err)
			}
			est := kernels.NewDefaultOracle(cluster)

			var lb, cmax time.Duration
			for _, workers := range workerCounts {
				for _, spec := range []bool{false, true} {
					opts := heteroTestOpts(workers)
					opts.DisableSpeculation = spec
					st, err := core.ComputeStrategy(train, cluster, est, opts)
					if err != nil {
						t.Fatalf("workers=%d spec=%v: %v", workers, !spec, err)
					}
					if lb == 0 {
						lb, cmax = theorem1Check(t,
							fmt.Sprintf("%s workers=%d", model, workers), st, cluster, est)
						continue
					}
					if rhs := 2*lb + cmax; st.Predicted > rhs {
						t.Errorf("workers=%d spec=%v: Theorem 1 violated: %v > %v",
							workers, !spec, st.Predicted, rhs)
					}
				}
			}
		})
	}
}

// TestTheorem1MixedCluster checks the theorem on the heterogeneous
// 4xV100+4xT4 mix: the classed capacity terms of the bound must stay valid
// when the fleet's device classes differ.
func TestTheorem1MixedCluster(t *testing.T) {
	mixed, err := device.NewHeterogeneous(heteroMixSpec())
	if err != nil {
		t.Fatal(err)
	}
	catalog := []string{"LeNet", "AlexNet", "Transformer", "Bert-large"}
	if testing.Short() {
		catalog = []string{"LeNet", "Transformer"}
	}
	for _, model := range catalog {
		model := model
		t.Run(model, func(t *testing.T) {
			train := heteroTestGraph(t, model)
			est := kernels.NewDefaultOracle(mixed)
			st, err := core.ComputeStrategy(train, mixed, est, heteroTestOpts(0))
			if err != nil {
				t.Fatalf("ComputeStrategy: %v", err)
			}
			theorem1Check(t, model+" on V100+T4 mix", st, mixed, est)
		})
	}
}

// catalogTrainGraph builds the model's data-parallel training graph at the
// strong-scaling per-GPU batch for the given device count — the same shape
// the gap table measures.
func catalogTrainGraph(t *testing.T, model string, gpus int) *graph.Graph {
	t.Helper()
	spec, err := models.ByName(model)
	if err != nil {
		t.Fatalf("%s: %v", model, err)
	}
	perGPU, _ := batches(spec, Strong, gpus, 0)
	m, err := spec.Build(perGPU)
	if err != nil {
		t.Fatalf("%s build: %v", model, err)
	}
	train, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		t.Fatalf("%s replicate: %v", model, err)
	}
	return train
}
