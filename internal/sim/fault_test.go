package sim

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/runtime"
	"fastt/internal/strategy"
)

func faultTestGraph(t *testing.T, rng *rand.Rand, devices int) (*graph.Graph, []int) {
	t.Helper()
	g, place := randomPlacedGraph(rng, devices)
	return g, place
}

func TestFaultPlanValidate(t *testing.T) {
	good := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindDeviceFailure, AtNs: 10, Device: 1},
		{Kind: kindStraggler, AtNs: 5, Device: 0, Factor: 2},
		{Kind: kindLinkDegrade, AtNs: 7, From: 0, To: 1, Factor: 4},
	}}
	if err := good.Validate(2); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []FaultPlan{
		{Faults: []FaultSpec{{Kind: "meltdown", AtNs: 1}}},
		{Faults: []FaultSpec{{Kind: kindDeviceFailure, AtNs: -1}}},
		{Faults: []FaultSpec{{Kind: kindDeviceFailure, AtNs: 1, Device: 2}}},
		{Faults: []FaultSpec{{Kind: kindStraggler, AtNs: 1, Device: 0, Factor: 0.5}}},
		{Faults: []FaultSpec{{Kind: kindLinkDegrade, AtNs: 1, From: 0, To: 0, Factor: 2}}},
		{Faults: []FaultSpec{{Kind: kindLinkDegrade, AtNs: 1, From: 0, To: 7, Factor: 2}}},
	}
	for i, p := range bad {
		if err := p.Validate(2); !errors.Is(err, ErrBadFaultPlan) {
			t.Errorf("bad plan %d: got %v, want ErrBadFaultPlan", i, err)
		}
	}
}

func TestFaultPlanRoundTrip(t *testing.T) {
	p := GeneratePlan(42, 8, 5, 10*time.Second, 3*time.Second)
	if len(p.Faults) == 0 {
		t.Fatal("generated plan is empty")
	}
	if err := p.Validate(8); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadPlan(&buf)
	if err != nil {
		t.Fatalf("ReadPlan: %v", err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	var first bytes.Buffer
	_ = p.WriteJSON(&first)
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("fault plan round trip not byte-identical")
	}
}

func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(7, 4, 10, 5*time.Second, 0)
	b := GeneratePlan(7, 4, 10, 5*time.Second, 0)
	var ab, bb bytes.Buffer
	_ = a.WriteJSON(&ab)
	_ = b.WriteJSON(&bb)
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("equal seeds produced different plans")
	}
	c := GeneratePlan(8, 4, 10, 5*time.Second, 0)
	var cb bytes.Buffer
	_ = c.WriteJSON(&cb)
	if bytes.Equal(ab.Bytes(), cb.Bytes()) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestDeviceFailureAbortsRun(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	rng := rand.New(rand.NewSource(3))
	g, place := faultTestGraph(t, rng, 2)

	clean, err := e.Run(g, place, Config{DisableMemoryCheck: true})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	failAt := clean.Makespan / 2
	plan := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindDeviceFailure, AtNs: int64(failAt), Device: 1},
	}}
	_, err = e.Run(g, place, Config{DisableMemoryCheck: true, Faults: plan})
	var lost *runtime.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("got %v, want DeviceLostError", err)
	}
	if lost.Device != 1 || lost.At != failAt {
		t.Fatalf("lost device %d at %v, want device 1 at %v", lost.Device, lost.At, failAt)
	}

	// A failure scheduled after the iteration window does not fire.
	late := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindDeviceFailure, AtNs: int64(clean.Makespan) * 10, Device: 1},
	}}
	if _, err := e.Run(g, place, Config{DisableMemoryCheck: true, Faults: late}); err != nil {
		t.Fatalf("future failure aborted the run: %v", err)
	}

	// A failure in the past (relative to the epoch) aborts immediately.
	past := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindDeviceFailure, AtNs: 5, Device: 0},
	}}
	_, err = e.Run(g, place, Config{
		DisableMemoryCheck: true, Faults: past, FaultEpoch: time.Second,
	})
	if !errors.As(err, &lost) {
		t.Fatalf("past failure: got %v, want DeviceLostError", err)
	}
}

func TestStragglerSlowsOnlyItsDevice(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	rng := rand.New(rand.NewSource(11))
	g, place := faultTestGraph(t, rng, 2)

	clean, err := e.Run(g, place, Config{DisableMemoryCheck: true})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	plan := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindStraggler, AtNs: 0, Device: 1, Factor: 4},
	}}
	slow, err := e.Run(g, place, Config{DisableMemoryCheck: true, Faults: plan})
	if err != nil {
		t.Fatalf("straggler run: %v", err)
	}
	checkResultInvariants(t, g, place, slow)
	if slow.ComputeBusy[1] <= clean.ComputeBusy[1] {
		t.Fatalf("straggler device busy %v, clean %v: no slowdown",
			slow.ComputeBusy[1], clean.ComputeBusy[1])
	}
	if slow.ComputeBusy[1] < 3*clean.ComputeBusy[1] {
		t.Fatalf("straggler device busy %v, clean %v: slowdown below factor",
			slow.ComputeBusy[1], clean.ComputeBusy[1])
	}
	if slow.ComputeBusy[0] != clean.ComputeBusy[0] {
		t.Fatalf("healthy device changed: %v vs %v", slow.ComputeBusy[0], clean.ComputeBusy[0])
	}
	if len(slow.Faults) != 1 || slow.Faults[0].Kind != runtime.FaultStraggler {
		t.Fatalf("faults reported: %+v, want one straggler", slow.Faults)
	}
}

func TestLinkDegradeSlowsTransfers(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	// Two ops on device 0 feeding one on device 1: all traffic rides 0->1.
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindMatMul, FLOPs: 1e8, OutputBytes: 8 << 20, Batch: 4})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindMatMul, FLOPs: 1e8, OutputBytes: 8 << 20, Batch: 4})
	sink := g.MustAddOp(&graph.Op{Name: "s", Kind: graph.KindAddN, FLOPs: 1e6, OutputBytes: 1 << 10, Batch: 4})
	g.MustConnect(a, sink, 8<<20)
	g.MustConnect(b, sink, 8<<20)
	place := []int{0, 0, 1}

	clean, err := e.Run(g, place, Config{DisableMemoryCheck: true})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	plan := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindLinkDegrade, AtNs: 0, From: 0, To: 1, Factor: 8},
	}}
	slow, err := e.Run(g, place, Config{DisableMemoryCheck: true, Faults: plan})
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if slow.MemcpyBusy[1] < 7*clean.MemcpyBusy[1] {
		t.Fatalf("memcpy busy %v vs clean %v: link degradation not applied",
			slow.MemcpyBusy[1], clean.MemcpyBusy[1])
	}
}

func TestFaultyExecutorReportsFaultsOnce(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	rng := rand.New(rand.NewSource(21))
	g, place := faultTestGraph(t, rng, 2)
	art := strategy.New(g, place, nil, nil, 0, strategy.Provenance{})

	plan := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindStraggler, AtNs: 1, Device: 0, Factor: 2},
	}}
	x, err := DefaultFaultyExecutor(c, plan)
	if err != nil {
		t.Fatalf("DefaultFaultyExecutor: %v", err)
	}
	cfg := runtime.Config{}
	cfg.Memory.ParamStateFactor = 0 // keep test graph memory-trivial
	first, err := x.Run(g, art, cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if len(first.Faults) != 1 {
		t.Fatalf("run 1 surfaced %d faults, want 1", len(first.Faults))
	}
	second, err := x.Run(g, art, cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if len(second.Faults) != 0 {
		t.Fatalf("run 2 re-surfaced %d faults, want 0", len(second.Faults))
	}
	if x.Epoch() != first.Makespan+second.Makespan {
		t.Fatalf("epoch %v, want %v", x.Epoch(), first.Makespan+second.Makespan)
	}
}

func TestFaultyExecutorShrinkCarriesSchedule(t *testing.T) {
	c, err := device.SingleServer(4)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	plan := &FaultPlan{Faults: []FaultSpec{
		{Kind: kindDeviceFailure, AtNs: 1, Device: 1},
		{Kind: kindStraggler, AtNs: 2, Device: 3, Factor: 2},
		{Kind: kindLinkDegrade, AtNs: 3, From: 1, To: 2, Factor: 2},
		{Kind: kindLinkDegrade, AtNs: 4, From: 2, To: 3, Factor: 2},
	}}
	x, err := DefaultFaultyExecutor(c, plan)
	if err != nil {
		t.Fatalf("DefaultFaultyExecutor: %v", err)
	}
	x.Advance(10 * time.Second)

	shrunkExec, shrunk, err := x.Shrink(1)
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if shrunk.NumDevices() != 3 {
		t.Fatalf("shrunk cluster has %d devices, want 3", shrunk.NumDevices())
	}
	nx, ok := shrunkExec.(*FaultyExecutor)
	if !ok {
		t.Fatalf("shrunk executor is %T", shrunkExec)
	}
	if nx.Epoch() != 10*time.Second {
		t.Fatalf("epoch lost in shrink: %v", nx.Epoch())
	}
	// The dead device's failure and its link fault are gone; the straggler
	// on old device 3 and the 2->3 link fault remain, renumbered down.
	faults := nx.Plan().Faults
	if len(faults) != 2 {
		t.Fatalf("surviving faults: %+v, want 2", faults)
	}
	if faults[0].Kind != kindStraggler || faults[0].Device != 2 {
		t.Fatalf("straggler not renumbered: %+v", faults[0])
	}
	if faults[1].Kind != kindLinkDegrade || faults[1].From != 1 || faults[1].To != 2 {
		t.Fatalf("link fault not renumbered: %+v", faults[1])
	}
	// Survivors keep their names.
	if shrunk.Device(1).Name != c.Device(2).Name {
		t.Fatalf("survivor renumbering broke names: %q vs %q",
			shrunk.Device(1).Name, c.Device(2).Name)
	}
}

func TestClusterWithout(t *testing.T) {
	c, err := device.NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	next, mapping, err := c.Without(1)
	if err != nil {
		t.Fatalf("Without: %v", err)
	}
	if next.NumDevices() != 3 {
		t.Fatalf("%d devices, want 3", next.NumDevices())
	}
	wantMap := []int{0, -1, 1, 2}
	for i, m := range mapping {
		if m != wantMap[i] {
			t.Fatalf("mapping %v, want %v", mapping, wantMap)
		}
	}
	// Links between survivors are preserved: old 2->3 (same server) is new
	// 1->2 and must stay the intra-server link.
	if got, want := next.Link(1, 2), c.Link(2, 3); got != want {
		t.Fatalf("link 1->2 = %+v, want %+v", got, want)
	}
	if got, want := next.Link(0, 1), c.Link(0, 2); got != want {
		t.Fatalf("link 0->1 = %+v, want %+v", got, want)
	}
	if _, _, err := c.Without(9); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	single, _ := device.SingleServer(1)
	if _, _, err := single.Without(0); !errors.Is(err, device.ErrNoDevices) {
		t.Fatalf("emptying removal: got %v, want ErrNoDevices", err)
	}
}
