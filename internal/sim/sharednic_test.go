package sim

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
)

// crossServerFanIn builds two producers on server 0 feeding two consumers
// on server 1 over distinct device pairs.
func crossServerFanIn(t *testing.T) (*Engine, *graph.Graph, []int) {
	t.Helper()
	c, err := device.NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	g := graph.New()
	const bytes = 30_000_000 // 10ms on the 3 GB/s inter-server link
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindIdentity, OutputBytes: bytes})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindIdentity, OutputBytes: bytes})
	ca := g.MustAddOp(&graph.Op{Name: "ca", Kind: graph.KindIdentity})
	cb := g.MustAddOp(&graph.Op{Name: "cb", Kind: graph.KindIdentity})
	g.MustConnect(a, ca, bytes)
	g.MustConnect(b, cb, bytes)
	// a,b on server 0 (devices 0,1); consumers on server 1 (devices 2,3).
	return e, g, []int{0, 1, 2, 3}
}

func TestSharedNICSerializesCrossServerTransfers(t *testing.T) {
	e, g, place := crossServerFanIn(t)

	parallel, err := e.Run(g, place, Config{})
	if err != nil {
		t.Fatalf("default run: %v", err)
	}
	shared, err := e.Run(g, place, Config{SharedNIC: true})
	if err != nil {
		t.Fatalf("shared-NIC run: %v", err)
	}
	// Default: the 0->2 and 1->3 transfers ride independent channels and
	// overlap; SharedNIC: they serialize on the server0->server1 NIC, so
	// the makespan grows by roughly one transfer time (~10ms).
	if shared.Makespan < parallel.Makespan+8*time.Millisecond {
		t.Errorf("shared NIC did not serialize: shared=%v parallel=%v",
			shared.Makespan, parallel.Makespan)
	}
}

func TestSharedNICLeavesIntraServerAlone(t *testing.T) {
	c, err := device.NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	g := graph.New()
	const bytes = 22_000_000 // 1ms on NVLink
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindIdentity, OutputBytes: bytes})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindIdentity, OutputBytes: bytes})
	ca := g.MustAddOp(&graph.Op{Name: "ca", Kind: graph.KindIdentity})
	cb := g.MustAddOp(&graph.Op{Name: "cb", Kind: graph.KindIdentity})
	g.MustConnect(a, ca, bytes)
	g.MustConnect(b, cb, bytes)
	// Everything within server 0: 0->1 and 1->0 transfers.
	place := []int{0, 1, 1, 0}

	plain, err := e.Run(g, place, Config{})
	if err != nil {
		t.Fatalf("default run: %v", err)
	}
	shared, err := e.Run(g, place, Config{SharedNIC: true})
	if err != nil {
		t.Fatalf("shared-NIC run: %v", err)
	}
	if plain.Makespan != shared.Makespan {
		t.Errorf("SharedNIC changed intra-server behaviour: %v vs %v",
			plain.Makespan, shared.Makespan)
	}
}

func TestSharedNICTransfersKeepTrueEndpoints(t *testing.T) {
	e, g, place := crossServerFanIn(t)
	res, err := e.Run(g, place, Config{SharedNIC: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Transfers) != 2 {
		t.Fatalf("transfers = %d, want 2", len(res.Transfers))
	}
	seen := map[[2]int]bool{}
	for _, tr := range res.Transfers {
		seen[[2]int{tr.From, tr.To}] = true
	}
	if !seen[[2]int{0, 2}] || !seen[[2]int{1, 3}] {
		t.Errorf("transfer endpoints lost on shared channel: %v", seen)
	}
}
