package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"fastt/internal/runtime"
)

// Fault-plan errors.
var (
	// ErrBadFaultPlan is returned when a fault plan is malformed or does
	// not fit the cluster it is applied to.
	ErrBadFaultPlan = errors.New("bad fault plan")
)

// FaultSpec is one scheduled fault. AtNs is absolute time on the training
// timeline — cumulative simulated nanoseconds across every iteration the
// executor has run (pre-training profiling included) — not an offset within
// a single iteration.
type FaultSpec struct {
	// Kind is one of "device-failure", "straggler", "link-degrade".
	Kind string `json:"kind"`
	// AtNs is when the fault takes effect, in training-timeline ns.
	AtNs int64 `json:"atNs"`
	// Device is the failing or straggling device (device-failure,
	// straggler).
	Device int `json:"device,omitempty"`
	// From and To are the degraded link's endpoints (link-degrade).
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Factor multiplies execution time on a straggler or transfer time on
	// a degraded link; it must be >= 1 and is ignored by device-failure.
	Factor float64 `json:"factor,omitempty"`
}

// Fault kind names used in the JSON surface.
const (
	kindDeviceFailure = "device-failure"
	kindStraggler     = "straggler"
	kindLinkDegrade   = "link-degrade"
)

// runtimeKind maps the JSON name to the typed kind.
func (s FaultSpec) runtimeKind() runtime.FaultKind {
	switch s.Kind {
	case kindDeviceFailure:
		return runtime.FaultDeviceFailure
	case kindStraggler:
		return runtime.FaultStraggler
	case kindLinkDegrade:
		return runtime.FaultLinkDegrade
	default:
		return 0
	}
}

// Event renders the spec as the typed fault event surfaced in results.
func (s FaultSpec) Event() runtime.FaultEvent {
	ev := runtime.FaultEvent{
		Kind:   s.runtimeKind(),
		At:     time.Duration(s.AtNs),
		Factor: s.Factor,
	}
	switch ev.Kind {
	case runtime.FaultLinkDegrade:
		ev.From, ev.To = s.From, s.To
		ev.Factor = s.Factor
	default:
		ev.Device = s.Device
		if ev.Kind == runtime.FaultDeviceFailure {
			ev.Factor = 0
		}
	}
	return ev
}

// FaultPlan is a deterministic fault schedule the simulator injects
// mid-run: the same plan always produces the same fault event sequence and
// the same device-loss points, regardless of strategy-calculator worker
// counts. Seed records the generator seed when the plan was synthesized
// (GeneratePlan); it is carried for provenance and does not perturb replay.
type FaultPlan struct {
	Seed   int64       `json:"seed,omitempty"`
	Faults []FaultSpec `json:"faults"`
}

// Validate checks the plan against a cluster size: known kinds, in-range
// devices, sane factors.
func (p *FaultPlan) Validate(devices int) error {
	for i, f := range p.Faults {
		if f.runtimeKind() == 0 {
			return fmt.Errorf("%w: fault %d has unknown kind %q", ErrBadFaultPlan, i, f.Kind)
		}
		if f.AtNs < 0 {
			return fmt.Errorf("%w: fault %d at negative time %d", ErrBadFaultPlan, i, f.AtNs)
		}
		switch f.runtimeKind() {
		case runtime.FaultDeviceFailure:
			if f.Device < 0 || f.Device >= devices {
				return fmt.Errorf("%w: fault %d fails device %d of %d", ErrBadFaultPlan, i, f.Device, devices)
			}
		case runtime.FaultStraggler:
			if f.Device < 0 || f.Device >= devices {
				return fmt.Errorf("%w: fault %d straggles device %d of %d", ErrBadFaultPlan, i, f.Device, devices)
			}
			if f.Factor < 1 {
				return fmt.Errorf("%w: fault %d has straggler factor %v < 1", ErrBadFaultPlan, i, f.Factor)
			}
		case runtime.FaultLinkDegrade:
			if f.From < 0 || f.From >= devices || f.To < 0 || f.To >= devices || f.From == f.To {
				return fmt.Errorf("%w: fault %d degrades link %d->%d of %d devices",
					ErrBadFaultPlan, i, f.From, f.To, devices)
			}
			if f.Factor < 1 {
				return fmt.Errorf("%w: fault %d has link factor %v < 1", ErrBadFaultPlan, i, f.Factor)
			}
		}
	}
	return nil
}

// WriteJSON serializes the plan.
func (p *FaultPlan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPlan parses a fault plan, rejecting unknown fields.
func ReadPlan(r io.Reader) (*FaultPlan, error) {
	var p FaultPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("decode fault plan: %w", err)
	}
	return &p, nil
}

// ReadPlanFile loads a fault plan from path.
func ReadPlanFile(path string) (*FaultPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPlan(f)
}

// GeneratePlan synthesizes a deterministic fault storm: Poisson-ish fault
// arrivals at the given mean rate (faults per simulated second) over the
// horizon, with kinds, targets and factors drawn from the seeded generator.
// Equal seeds produce byte-identical plans. Offset shifts every fault time,
// so a storm can be armed to start after pre-training.
func GeneratePlan(seed int64, devices int, rate float64, horizon, offset time.Duration) *FaultPlan {
	p := &FaultPlan{Seed: seed}
	if rate <= 0 || horizon <= 0 || devices < 1 {
		return p
	}
	rng := rand.New(rand.NewSource(seed))
	at := float64(0)
	for {
		at += rng.ExpFloat64() / rate * float64(time.Second)
		if at >= float64(horizon) {
			break
		}
		f := FaultSpec{AtNs: int64(offset) + int64(at)}
		kinds := 3
		if devices < 2 {
			kinds = 2 // no links to degrade on a single device
		}
		switch rng.Intn(kinds) {
		case 0:
			f.Kind = kindDeviceFailure
			f.Device = rng.Intn(devices)
		case 1:
			f.Kind = kindStraggler
			f.Device = rng.Intn(devices)
			f.Factor = 1.5 + 2*rng.Float64()
		default:
			f.Kind = kindLinkDegrade
			f.From = rng.Intn(devices)
			f.To = (f.From + 1 + rng.Intn(devices-1)) % devices
			f.Factor = 2 + 6*rng.Float64()
		}
		p.Faults = append(p.Faults, f)
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].AtNs < p.Faults[j].AtNs })
	return p
}

// shrink returns the plan rewritten for a cluster that lost `failed`:
// faults targeting the dead device (or its links) are dropped and surviving
// device IDs are renumbered through mapping (old -> new, -1 = removed). The
// kept slice reports, for each retained fault, its index in the original
// plan, so once-only reporting state can follow the rewrite.
func (p *FaultPlan) shrink(mapping []int) (*FaultPlan, []int) {
	next := &FaultPlan{Seed: p.Seed}
	var kept []int
	for i, f := range p.Faults {
		switch f.runtimeKind() {
		case runtime.FaultLinkDegrade:
			if mapping[f.From] < 0 || mapping[f.To] < 0 {
				continue
			}
			f.From, f.To = mapping[f.From], mapping[f.To]
		default:
			if mapping[f.Device] < 0 {
				continue
			}
			f.Device = mapping[f.Device]
		}
		next.Faults = append(next.Faults, f)
		kept = append(kept, i)
	}
	return next, kept
}
