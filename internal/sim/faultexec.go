package sim

import (
	"errors"
	"fmt"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/runtime"
	"fastt/internal/strategy"
)

// FaultyExecutor is a simulator-backed executor that injects a deterministic
// fault schedule across iterations. It keeps a cumulative training-timeline
// clock (the epoch): each Run starts at the current epoch, so faults anchored
// to absolute times fire in the right iteration no matter how the caller
// slices the run. Device failures abort the offending Run with a
// runtime.DeviceLostError; Shrink then yields the degraded executor with the
// surviving schedule, which is how it implements runtime.DegradableExecutor.
type FaultyExecutor struct {
	engine   *Engine
	oracle   *kernels.Oracle
	plan     *FaultPlan
	epoch    time.Duration
	reported []bool // per plan-fault index: already surfaced in a Result
}

var (
	_ runtime.DegradableExecutor = (*FaultyExecutor)(nil)
	_ runtime.GrowableExecutor   = (*FaultyExecutor)(nil)
)

// NewFaultyExecutor returns a fault-injecting executor for the cluster. A nil
// plan behaves exactly like the plain Executor. The plan is validated against
// the cluster size.
func NewFaultyExecutor(cluster *device.Cluster, oracle *kernels.Oracle, plan *FaultPlan) (*FaultyExecutor, error) {
	x := &FaultyExecutor{engine: NewEngine(cluster, oracle), oracle: oracle}
	if err := x.SetPlan(plan); err != nil {
		return nil, err
	}
	return x, nil
}

// DefaultFaultyExecutor returns a fault-injecting executor with the default
// kernel oracle.
func DefaultFaultyExecutor(cluster *device.Cluster, plan *FaultPlan) (*FaultyExecutor, error) {
	return NewFaultyExecutor(cluster, kernels.NewDefaultOracle(cluster), plan)
}

// SetPlan installs (or clears, with nil) the fault schedule. Reporting state
// resets: every fault in the new plan is eligible to surface once. Arming a
// plan after bootstrap lets callers anchor fault times to the post-bootstrap
// epoch — see Epoch.
func (x *FaultyExecutor) SetPlan(plan *FaultPlan) error {
	if plan != nil {
		if err := plan.Validate(x.engine.cluster.NumDevices()); err != nil {
			return err
		}
	}
	x.plan = plan
	x.reported = nil
	if plan != nil {
		x.reported = make([]bool, len(plan.Faults))
	}
	return nil
}

// Plan returns the installed fault schedule (nil when faults are disabled).
func (x *FaultyExecutor) Plan() *FaultPlan { return x.plan }

// Epoch returns the executor's position on the training timeline: the
// cumulative simulated time of every iteration run so far plus any Advance
// charges. Fault times are absolute against this clock.
func (x *FaultyExecutor) Epoch() time.Duration { return x.epoch }

// Engine exposes the underlying simulator engine.
func (x *FaultyExecutor) Engine() *Engine { return x.engine }

// Advance implements runtime.DegradableExecutor: it charges simulated
// off-iteration time (checkpoint restores, retry backoff) to the timeline.
func (x *FaultyExecutor) Advance(d time.Duration) {
	if d > 0 {
		x.epoch += d
	}
}

// Run implements runtime.Executor. On success the epoch advances by the
// iteration's makespan and the result carries the non-fatal faults that
// became active during it (each surfaced exactly once across Runs). A device
// failure inside the iteration's window returns a runtime.DeviceLostError
// and advances the epoch to the failure time.
func (x *FaultyExecutor) Run(g *graph.Graph, art *strategy.Artifact, cfg runtime.Config) (*runtime.Result, error) {
	sc := Config{
		Memory:     cfg.Memory,
		Jitter:     cfg.Jitter,
		Seed:       cfg.Seed,
		Faults:     x.plan,
		FaultEpoch: x.epoch,
	}
	if cfg.EnforceOrder && len(art.Order) > 0 {
		sc.Discipline = Priority
		sc.Priorities = art.PriorityIndex()
	}
	res, err := x.engine.Run(g, art.Placement, sc)
	if err != nil {
		var lost *runtime.DeviceLostError
		if errors.As(err, &lost) && lost.At > x.epoch {
			x.epoch = lost.At
		}
		return nil, err
	}
	x.epoch += res.Makespan
	x.filterFaults(res)
	return res, nil
}

// filterFaults rewrites res.Faults to only the faults that have not been
// surfaced by an earlier Run, and marks them reported. The engine emits every
// active fault each iteration; the executor owns the once-only contract.
func (x *FaultyExecutor) filterFaults(res *runtime.Result) {
	if x.plan == nil {
		res.Faults = nil
		return
	}
	fresh := res.Faults[:0]
	for i, f := range x.plan.Faults {
		if x.reported[i] || f.runtimeKind() == runtime.FaultDeviceFailure {
			continue
		}
		if f.AtNs < int64(x.epoch) {
			x.reported[i] = true
			fresh = append(fresh, f.Event())
		}
	}
	res.Faults = fresh
}

// Shrink implements runtime.DegradableExecutor: it returns the executor for
// the cluster without failedDevice. The timeline clock, the surviving fault
// schedule (renumbered to the new device IDs) and its reporting state carry
// over, so a straggler already surfaced before the failure does not surface
// again after recovery.
func (x *FaultyExecutor) Shrink(failedDevice int) (runtime.Executor, *device.Cluster, error) {
	next, mapping, err := x.engine.cluster.Without(failedDevice)
	if err != nil {
		return nil, nil, fmt.Errorf("shrink executor: %w", err)
	}
	oracle := x.oracle.WithCluster(next)
	nx := &FaultyExecutor{
		engine: NewEngine(next, oracle),
		oracle: oracle,
		epoch:  x.epoch,
	}
	if x.plan != nil {
		shrunk, kept := x.plan.shrink(mapping)
		nx.plan = shrunk
		nx.reported = make([]bool, len(shrunk.Faults))
		for newIdx, oldIdx := range kept {
			nx.reported[newIdx] = x.reported[oldIdx]
		}
	}
	return nx, next, nil
}

// Grow implements runtime.GrowableExecutor: it returns the executor for the
// cluster with the joining device appended. Existing device IDs are
// unchanged, so the installed fault schedule and its reporting state carry
// over verbatim — pending faults keep targeting the devices they were
// drawn for, and the joiner starts fault-free. The timeline clock carries
// over too, keeping time-anchored faults aligned across the join.
func (x *FaultyExecutor) Grow(join device.JoinSpec) (runtime.Executor, *device.Cluster, *device.Device, error) {
	next, joined, err := x.engine.cluster.Grow(join)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("grow executor: %w", err)
	}
	oracle := x.oracle.WithCluster(next)
	nx := &FaultyExecutor{
		engine: NewEngine(next, oracle),
		oracle: oracle,
		plan:   x.plan,
		epoch:  x.epoch,
	}
	if x.reported != nil {
		nx.reported = make([]bool, len(x.reported))
		copy(nx.reported, x.reported)
	}
	return nx, next, joined, nil
}
