package sim

import (
	"errors"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
)

const launch = 8 * time.Microsecond // kernels.DefaultConfig().LaunchOverhead

func newTestEngine(t *testing.T, gpus int) *Engine {
	t.Helper()
	c, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return NewEngine(c, kernels.NewDefaultOracle(c))
}

// trivialOp returns an op whose exec time is exactly the launch overhead.
func trivialOp(name string) *graph.Op {
	return &graph.Op{Name: name, Kind: graph.KindIdentity}
}

func TestRunSerialChainOneDevice(t *testing.T) {
	e := newTestEngine(t, 1)
	g := graph.New()
	a := g.MustAddOp(trivialOp("a"))
	b := g.MustAddOp(trivialOp("b"))
	c := g.MustAddOp(trivialOp("c"))
	g.MustConnect(a, b, 0)
	g.MustConnect(b, c, 0)

	res, err := e.Run(g, []int{0, 0, 0}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Makespan != 3*launch {
		t.Errorf("Makespan = %v, want %v", res.Makespan, 3*launch)
	}
	if len(res.Transfers) != 0 {
		t.Errorf("same-device run produced %d transfers", len(res.Transfers))
	}
	if res.ComputeBusy[0] != 3*launch {
		t.Errorf("ComputeBusy = %v, want %v", res.ComputeBusy[0], 3*launch)
	}
}

func TestRunIndependentOpsParallelAcrossDevices(t *testing.T) {
	e := newTestEngine(t, 2)
	g := graph.New()
	g.MustAddOp(trivialOp("a"))
	g.MustAddOp(trivialOp("b"))

	res, err := e.Run(g, []int{0, 1}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Makespan != launch {
		t.Errorf("parallel Makespan = %v, want %v", res.Makespan, launch)
	}
}

func TestRunSerializesOnOneDevice(t *testing.T) {
	e := newTestEngine(t, 1)
	g := graph.New()
	g.MustAddOp(trivialOp("a"))
	g.MustAddOp(trivialOp("b"))

	res, err := e.Run(g, []int{0, 0}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Makespan != 2*launch {
		t.Errorf("serialized Makespan = %v, want %v", res.Makespan, 2*launch)
	}
}

func TestRunCrossDeviceTransferCost(t *testing.T) {
	e := newTestEngine(t, 2)
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindIdentity, OutputBytes: 22_000_000})
	b := g.MustAddOp(trivialOp("b"))
	g.MustConnect(a, b, 22_000_000)

	res, err := e.Run(g, []int{0, 1}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Transfers) != 1 {
		t.Fatalf("Transfers = %d, want 1", len(res.Transfers))
	}
	// 22 MB over 22 GB/s NVLink = 1 ms + 10us latency.
	xfer := res.Transfers[0]
	want := time.Millisecond + 10*time.Microsecond
	got := xfer.End - xfer.Start
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Errorf("transfer duration = %v, want ~%v", got, want)
	}
	// Makespan includes the transfer between the two launches.
	if res.Makespan < 2*launch+want-time.Microsecond {
		t.Errorf("Makespan = %v, want at least %v", res.Makespan, 2*launch+want)
	}
	if res.MemcpyBusy[1] == 0 {
		t.Error("MemcpyBusy not charged to receiving device")
	}
}

func TestRunDedupesTransfersPerDestinationDevice(t *testing.T) {
	e := newTestEngine(t, 2)
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindIdentity, OutputBytes: 1 << 20})
	b := g.MustAddOp(trivialOp("b"))
	c := g.MustAddOp(trivialOp("c"))
	g.MustConnect(a, b, 1<<20)
	g.MustConnect(a, c, 1<<20)

	res, err := e.Run(g, []int{0, 1, 1}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// One physical copy serving two consumers: two Transfer records with
	// identical Start/End (bookkeeping per consumer), but memcpy time
	// charged once.
	if len(res.Transfers) != 2 {
		t.Fatalf("Transfers = %d, want 2 records", len(res.Transfers))
	}
	if res.Transfers[0].Start != res.Transfers[1].Start ||
		res.Transfers[0].End != res.Transfers[1].End {
		t.Error("consumers on one device did not share a physical copy")
	}
	single := res.Transfers[0].End - res.Transfers[0].Start
	if res.MemcpyBusy[1] != single {
		t.Errorf("MemcpyBusy = %v, want one copy %v", res.MemcpyBusy[1], single)
	}
}

func TestRunPriorityOrderEnforced(t *testing.T) {
	// Device 0 has two ready ops: "slowpath" feeds a remote consumer, and
	// "local" is independent busywork. Running "slowpath" first overlaps
	// the transfer with "local"; FIFO (both ready at t=0, lower ID first)
	// would run "local" first and stall the remote device longer.
	e := newTestEngine(t, 2)
	g := graph.New()
	local := g.MustAddOp(&graph.Op{Name: "local", Kind: graph.KindConv2D, FLOPs: 5e9, OutputBytes: 4096})
	slow := g.MustAddOp(&graph.Op{Name: "slowpath", Kind: graph.KindIdentity, OutputBytes: 22_000_000})
	sink := g.MustAddOp(trivialOp("sink"))
	g.MustConnect(slow, sink, 22_000_000)

	place := []int{0, 0, 1}
	fifo, err := e.Run(g, place, Config{Discipline: FIFO})
	if err != nil {
		t.Fatalf("FIFO Run: %v", err)
	}
	// Priorities: slowpath first, then local, then sink.
	prio := make([]int, g.NumOps())
	prio[slow] = 0
	prio[local] = 1
	prio[sink] = 2
	enforced, err := e.Run(g, place, Config{Discipline: Priority, Priorities: prio})
	if err != nil {
		t.Fatalf("Priority Run: %v", err)
	}
	if enforced.Makespan >= fifo.Makespan {
		t.Errorf("order enforcement did not help: enforced=%v fifo=%v",
			enforced.Makespan, fifo.Makespan)
	}
}

func TestRunPriorityRequiresPriorities(t *testing.T) {
	e := newTestEngine(t, 1)
	g := graph.New()
	g.MustAddOp(trivialOp("a"))
	_, err := e.Run(g, []int{0}, Config{Discipline: Priority})
	if !errors.Is(err, ErrBadPlacement) {
		t.Errorf("err = %v, want ErrBadPlacement", err)
	}
}

func TestRunBadPlacement(t *testing.T) {
	e := newTestEngine(t, 1)
	g := graph.New()
	g.MustAddOp(trivialOp("a"))
	tests := []struct {
		name  string
		place []int
	}{
		{"wrong length", []int{}},
		{"negative device", []int{-1}},
		{"device out of range", []int{7}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := e.Run(g, tt.place, Config{}); !errors.Is(err, ErrBadPlacement) {
				t.Errorf("err = %v, want ErrBadPlacement", err)
			}
		})
	}
}

func TestRunOOMOnParameters(t *testing.T) {
	c, err := device.SingleServer(1, device.WithMemory(1<<20))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "big", Kind: graph.KindMatMul, ParamBytes: 1 << 20})

	_, err = e.Run(g, []int{0}, Config{})
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want OOMError", err)
	}
	if oom.Device != 0 || oom.Capacity != 1<<20 {
		t.Errorf("OOM details = %+v", oom)
	}
}

func TestRunOOMOnActivations(t *testing.T) {
	c, err := device.SingleServer(1, device.WithMemory(1<<20))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	g := graph.New()
	// Two live activations of 600 KB cannot coexist in 1 MB.
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindIdentity, OutputBytes: 600 << 10})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindIdentity, OutputBytes: 600 << 10})
	z := g.MustAddOp(trivialOp("z"))
	g.MustConnect(a, b, 600<<10)
	g.MustConnect(b, z, 600<<10)

	_, err = e.Run(g, []int{0, 0, 0}, Config{})
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want OOMError", err)
	}
	// The same graph passes with memory checking disabled.
	if _, err := e.Run(g, []int{0, 0, 0}, Config{DisableMemoryCheck: true}); err != nil {
		t.Errorf("DisableMemoryCheck run failed: %v", err)
	}
}

func TestRunActivationFreedAfterConsumers(t *testing.T) {
	e := newTestEngine(t, 1)
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindIdentity, OutputBytes: 100})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindIdentity, OutputBytes: 100})
	c := g.MustAddOp(&graph.Op{Name: "c", Kind: graph.KindIdentity, OutputBytes: 100})
	g.MustConnect(a, b, 100)
	g.MustConnect(b, c, 100)

	res, err := e.Run(g, []int{0, 0, 0}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// At most two activations live at once (producer + consumer).
	if res.PeakMemory[0] > 200 {
		t.Errorf("PeakMemory = %d, want <= 200", res.PeakMemory[0])
	}
}

func TestRunJitterReproducible(t *testing.T) {
	e := newTestEngine(t, 2)
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindConv2D, FLOPs: 1e9, OutputBytes: 1 << 20})
	b := g.MustAddOp(trivialOp("b"))
	g.MustConnect(a, b, 1<<20)
	place := []int{0, 1}

	r1, err := e.Run(g, place, Config{Jitter: 0.1, Seed: 42})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := e.Run(g, place, Config{Jitter: 0.1, Seed: 42})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("same seed gave different makespans: %v vs %v", r1.Makespan, r2.Makespan)
	}
	r3, err := e.Run(g, place, Config{Jitter: 0.1, Seed: 43})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Makespan == r3.Makespan {
		t.Error("different seeds gave identical makespans; jitter inert")
	}
}

func TestRunSpansSortedAndComplete(t *testing.T) {
	e := newTestEngine(t, 2)
	g := graph.New()
	a := g.MustAddOp(trivialOp("a"))
	b := g.MustAddOp(trivialOp("b"))
	c := g.MustAddOp(trivialOp("c"))
	g.MustConnect(a, b, 0)
	g.MustConnect(a, c, 0)

	res, err := e.Run(g, []int{0, 1, 0}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Spans) != 3 {
		t.Fatalf("Spans = %d, want 3", len(res.Spans))
	}
	for i := 1; i < len(res.Spans); i++ {
		if res.Spans[i].Start < res.Spans[i-1].Start {
			t.Error("spans not sorted by start time")
		}
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{
		ComputeBusy: []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 0},
		MemcpyBusy:  []time.Duration{time.Millisecond, 2 * time.Millisecond, 0},
	}
	if got := r.AvgComputeBusy(); got != 15*time.Millisecond {
		t.Errorf("AvgComputeBusy = %v, want 15ms", got)
	}
	if got := r.TotalMemcpy(); got != 3*time.Millisecond {
		t.Errorf("TotalMemcpy = %v, want 3ms", got)
	}
}

func TestRunDataParallelGraphEndToEnd(t *testing.T) {
	// Smoke test: a replicated model with gradient sync executes cleanly
	// and produces cross-device gradient traffic.
	m := graph.New()
	in := m.MustAddOp(&graph.Op{Name: "input", Kind: graph.KindInput, OutputBytes: 1 << 16, Batch: 8})
	fc := m.MustAddOp(&graph.Op{
		Name: "fc", Kind: graph.KindMatMul, FLOPs: 1e8,
		ParamBytes: 1 << 20, OutputBytes: 1 << 12, Batch: 8, Channels: 64,
	})
	loss := m.MustAddOp(&graph.Op{Name: "loss", Kind: graph.KindLoss, FLOPs: 1e4, OutputBytes: 4, Batch: 8})
	bp := m.MustAddOp(&graph.Op{
		Name: "fc_bp", Kind: graph.KindMatMulBackprop, FLOPs: 2e8,
		OutputBytes: 1 << 20, Batch: 8, GradFor: "fc",
	})
	m.MustConnect(in, fc, 1<<16)
	m.MustConnect(fc, loss, 1<<12)
	m.MustConnect(loss, bp, 4)
	m.MustConnect(fc, bp, 1<<12)

	dp, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	e := newTestEngine(t, 2)
	place := make([]int, dp.NumOps())
	for _, op := range dp.Ops() {
		if op.Replica >= 0 {
			place[op.ID] = op.Replica
		}
	}
	res, err := e.Run(dp, place, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Transfers) == 0 {
		t.Error("data-parallel run produced no gradient traffic")
	}
	if res.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
}
