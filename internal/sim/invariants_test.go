package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"fastt/internal/core"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// randomPlacedGraph builds a random DAG with mixed op kinds and a random
// placement over the cluster.
func randomPlacedGraph(rng *rand.Rand, devices int) (*graph.Graph, []int) {
	g := graph.New()
	n := rng.Intn(25) + 5
	kinds := []graph.OpKind{
		graph.KindConv2D, graph.KindMatMul, graph.KindRelu,
		graph.KindIdentity, graph.KindAddN, graph.KindSoftmax,
	}
	for i := 0; i < n; i++ {
		g.MustAddOp(&graph.Op{
			Name:        fmt.Sprintf("op%d", i),
			Kind:        kinds[rng.Intn(len(kinds))],
			FLOPs:       rng.Int63n(2e9),
			OutputBytes: rng.Int63n(4 << 20),
			Batch:       8,
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(4) == 0 {
				g.MustConnect(i, j, rng.Int63n(2<<20)+1)
			}
		}
	}
	place := make([]int, n)
	for i := range place {
		place[i] = rng.Intn(devices)
	}
	return g, place
}

// checkResultInvariants asserts the structural soundness of any simulation
// result: every op ran exactly once, no device ran two ops at once, every
// transfer respects causality (starts after its producer finishes, ends
// before its consumer starts), and the makespan is the last span's end.
func checkResultInvariants(t *testing.T, g *graph.Graph, place []int, res *Result) {
	t.Helper()
	if len(res.Spans) != g.NumOps() {
		t.Fatalf("%d spans for %d ops", len(res.Spans), g.NumOps())
	}
	spanOf := make(map[int]Span, len(res.Spans))
	for _, s := range res.Spans {
		if _, dup := spanOf[s.Op]; dup {
			t.Fatalf("op %d executed twice", s.Op)
		}
		if s.Device != place[s.Op] {
			t.Fatalf("op %d ran on device %d, placed on %d", s.Op, s.Device, place[s.Op])
		}
		if s.End < s.Start {
			t.Fatalf("op %d has negative duration", s.Op)
		}
		spanOf[s.Op] = s
	}
	// Per-device non-overlap.
	byDev := make(map[int][]Span)
	for _, s := range res.Spans {
		byDev[s.Device] = append(byDev[s.Device], s)
	}
	for dev, spans := range byDev {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.Start < b.End && b.Start < a.End &&
					a.End > a.Start && b.End > b.Start {
					t.Fatalf("device %d ran ops %d and %d concurrently", dev, a.Op, b.Op)
				}
			}
		}
	}
	// Transfer causality.
	for _, tr := range res.Transfers {
		p, c := spanOf[tr.Producer], spanOf[tr.Consumer]
		if tr.Enqueued < p.End {
			t.Fatalf("transfer %d->%d enqueued before producer finished", tr.Producer, tr.Consumer)
		}
		if tr.Start < tr.Enqueued || tr.End < tr.Start {
			t.Fatalf("transfer %d->%d time-travels", tr.Producer, tr.Consumer)
		}
		if c.Start < tr.End {
			t.Fatalf("consumer %d started before its input arrived", tr.Consumer)
		}
	}
	// Precedence through same-device edges.
	for _, e := range g.Edges() {
		if place[e.From] != place[e.To] {
			continue
		}
		if spanOf[e.To].Start < spanOf[e.From].End {
			t.Fatalf("op %d started before same-device producer %d finished", e.To, e.From)
		}
	}
	// Makespan is the latest span end.
	var last time.Duration
	for _, s := range res.Spans {
		if s.End > last {
			last = s.End
		}
	}
	if res.Makespan != last {
		t.Fatalf("makespan %v, last span ends %v", res.Makespan, last)
	}
	// Busy time per device equals the sum of its span durations.
	for dev, spans := range byDev {
		var busy time.Duration
		for _, s := range spans {
			busy += s.End - s.Start
		}
		if res.ComputeBusy[dev] != busy {
			t.Fatalf("device %d busy %v, spans sum %v", dev, res.ComputeBusy[dev], busy)
		}
	}
}

func TestRunInvariantsRandomGraphs(t *testing.T) {
	c, err := device.NewCluster(2, 2)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		g, place := randomPlacedGraph(rng, c.NumDevices())
		for _, disc := range []QueueDiscipline{FIFO, Unordered} {
			res, err := e.Run(g, place, Config{
				Discipline:         disc,
				DisableMemoryCheck: true,
				Jitter:             0.05,
				Seed:               int64(trial),
			})
			if err != nil {
				t.Fatalf("trial %d disc %d: %v", trial, disc, err)
			}
			checkResultInvariants(t, g, place, res)
		}
	}
}

func TestRunInvariantsUnderPriorities(t *testing.T) {
	c, err := device.SingleServer(3)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g, place := randomPlacedGraph(rng, 3)
		// Random priority permutation: any priority order must still
		// yield a causally valid execution.
		prio := rng.Perm(g.NumOps())
		res, err := e.Run(g, place, Config{
			Discipline:         Priority,
			Priorities:         prio,
			DisableMemoryCheck: true,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkResultInvariants(t, g, place, res)
	}
}

func TestRunMemoryReturnsToStatic(t *testing.T) {
	// After an iteration, every transient allocation must have been freed:
	// re-running on the same engine state is impossible to observe
	// directly (runs are independent), so assert peak >= static and that
	// sink outputs do not leak into the peak unnecessarily: a chain's peak
	// is bounded by static + the two largest adjacent activations.
	c, err := device.SingleServer(1)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	g := graph.New()
	prev := -1
	const act = 1 << 20
	for i := 0; i < 6; i++ {
		id := g.MustAddOp(&graph.Op{
			Name: fmt.Sprintf("n%d", i), Kind: graph.KindRelu,
			FLOPs: 1e6, OutputBytes: act, Batch: 4,
		})
		if prev >= 0 {
			g.MustConnect(prev, id, act)
		}
		prev = id
	}
	res, err := e.Run(g, make([]int, g.NumOps()), Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.PeakMemory[0] > 2*act {
		t.Errorf("chain peak %d, want <= %d (two live activations)", res.PeakMemory[0], 2*act)
	}
}

// TestRecomputeOnSurvivorsInvariants is the recovery property: for every
// catalog model and cluster size in {2, 4, 8}, killing any single device and
// recomputing the strategy on the survivors yields a placement that uses
// only surviving devices and executes with all simulation invariants intact.
// Short mode trims the sweep (fewer cluster sizes and kill positions) but
// keeps every model.
func TestRecomputeOnSurvivorsInvariants(t *testing.T) {
	sizes := []int{2, 4, 8}
	if testing.Short() {
		sizes = []int{2, 4}
	}
	for _, spec := range models.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, gpus := range sizes {
				perGPU := spec.GlobalBatch / gpus
				if perGPU < 1 {
					perGPU = 1
				}
				m, err := spec.Build(perGPU)
				if err != nil {
					t.Fatalf("%d GPUs: build: %v", gpus, err)
				}
				g, err := graph.BuildDataParallel(m, gpus)
				if err != nil {
					t.Fatalf("%d GPUs: replicate: %v", gpus, err)
				}
				cluster, err := device.SingleServer(gpus)
				if err != nil {
					t.Fatalf("SingleServer(%d): %v", gpus, err)
				}
				for failed := 0; failed < gpus; failed++ {
					if testing.Short() && failed != 0 && failed != gpus-1 {
						continue
					}
					shrunk, mapping, err := cluster.Without(failed)
					if err != nil {
						t.Fatalf("%d GPUs: Without(%d): %v", gpus, failed, err)
					}
					if want := gpus - 1; shrunk.NumDevices() != want {
						t.Fatalf("%d survivors, want %d", shrunk.NumDevices(), want)
					}
					for old, nw := range mapping {
						switch {
						case old == failed && nw != -1:
							t.Fatalf("failed device %d mapped to %d", failed, nw)
						case old < failed && old != nw,
							old > failed && nw != old-1:
							t.Fatalf("mapping %v violates the renumber contract", mapping)
						}
					}
					oracle := kernels.NewDefaultOracle(shrunk)
					st, err := core.ComputeStrategy(g, shrunk, oracle, core.Options{
						MaxSplitOps:   1,
						MaxSyncGroups: 2,
					})
					if err != nil {
						t.Fatalf("%d GPUs, kill %d: recompute: %v", gpus, failed, err)
					}
					for op, dev := range st.Placement {
						if dev < 0 || dev >= shrunk.NumDevices() {
							t.Fatalf("%d GPUs, kill %d: op %d placed on dead or unknown device %d",
								gpus, failed, op, dev)
						}
					}
					res, err := NewEngine(shrunk, oracle).Run(st.Graph, st.Placement, Config{})
					if err != nil {
						t.Fatalf("%d GPUs, kill %d: run on survivors: %v", gpus, failed, err)
					}
					checkResultInvariants(t, st.Graph, st.Placement, res)
				}
			}
		})
	}
}

func TestUnorderedDisciplineDiffersButValid(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	e := NewEngine(c, kernels.NewDefaultOracle(c))
	rng := rand.New(rand.NewSource(31))
	g, place := randomPlacedGraph(rng, 2)
	fifo, err := e.Run(g, place, Config{Discipline: FIFO, DisableMemoryCheck: true})
	if err != nil {
		t.Fatalf("FIFO: %v", err)
	}
	diff := false
	for seed := int64(0); seed < 8; seed++ {
		res, err := e.Run(g, place, Config{
			Discipline: Unordered, Seed: seed, DisableMemoryCheck: true,
		})
		if err != nil {
			t.Fatalf("Unordered: %v", err)
		}
		checkResultInvariants(t, g, place, res)
		if res.Makespan != fifo.Makespan {
			diff = true
		}
	}
	if !diff {
		t.Log("unordered never differed from FIFO on this graph (acceptable but unusual)")
	}
}
