package sim

import (
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/runtime"
	"fastt/internal/strategy"
)

// Executor adapts the simulator to the runtime.Executor seam: it runs a
// materialized graph under a strategy artifact's placement and — when order
// enforcement is on and the artifact carries one — its execution order.
type Executor struct {
	engine *Engine
}

var _ runtime.Executor = (*Executor)(nil)

// NewExecutor returns a simulator-backed executor for the cluster.
func NewExecutor(cluster *device.Cluster, oracle *kernels.Oracle) *Executor {
	return &Executor{engine: NewEngine(cluster, oracle)}
}

// DefaultExecutor returns a simulator-backed executor with the default
// kernel oracle — the standard backend for sessions and the CLI.
func DefaultExecutor(cluster *device.Cluster) *Executor {
	return NewExecutor(cluster, kernels.NewDefaultOracle(cluster))
}

// WrapEngine adapts an existing engine.
func WrapEngine(e *Engine) *Executor { return &Executor{engine: e} }

// Engine exposes the underlying simulator engine for callers that need
// simulator-specific configuration (disciplines, SharedNIC).
func (x *Executor) Engine() *Engine { return x.engine }

// Run implements runtime.Executor.
func (x *Executor) Run(g *graph.Graph, art *strategy.Artifact, cfg runtime.Config) (*runtime.Result, error) {
	sc := Config{
		Memory: cfg.Memory,
		Jitter: cfg.Jitter,
		Seed:   cfg.Seed,
	}
	if cfg.EnforceOrder && len(art.Order) > 0 {
		sc.Discipline = Priority
		sc.Priorities = art.PriorityIndex()
	}
	return x.engine.Run(g, art.Placement, sc)
}
