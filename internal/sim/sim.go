// Package sim is the discrete-event execution engine that stands in for the
// TensorFlow dataflow executor running on a multi-GPU testbed. It executes
// a placed computation graph with:
//
//   - one compute stream per GPU (one kernel at a time, like a single CUDA
//     stream);
//   - one copy channel per ordered device pair, so transfers overlap with
//     computation and with transfers on other pairs, but serialize on the
//     same pair;
//   - a ready queue per device drained either FIFO (TensorFlow's default
//     executor policy) or by scheduler-assigned priorities (FastT's order
//     enforcement);
//   - memory accounting: resident parameter/optimizer state plus live
//     activations with consumer-driven lifetimes, producing OOM errors
//     exactly where a 16 GB V100 would produce them.
//
// The engine reports per-op spans and per-transfer records — the
// RunMetadata equivalent FastT's profiler feeds into the cost models — plus
// the compute/memcpy/iteration breakdown of Fig. 5.
package sim

import (
	"errors"
	"fmt"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
)

// QueueDiscipline selects how a device drains its ready queue.
type QueueDiscipline int

const (
	// FIFO runs ops in ready order (arrival time, then op ID) — an
	// idealized default executor and the conservative baseline for the
	// speed tables.
	FIFO QueueDiscipline = iota + 1
	// Priority runs the ready op with the smallest assigned priority
	// index — FastT's order enforcement.
	Priority
	// Unordered picks among ready ops in a deterministic but arbitrary
	// (hashed) order, modelling TensorFlow's default executor, whose
	// inter-op thread pool dispatches concurrently-ready nodes in
	// effectively arbitrary order — the execution-order variance the
	// paper's order enforcement eliminates (Fig. 2).
	Unordered
)

// Errors returned by Run.
var (
	// ErrBadPlacement is returned when the placement vector is malformed.
	ErrBadPlacement = errors.New("bad placement")
	// ErrStalled is returned when execution cannot make progress (a bug
	// guard; a valid DAG with a full placement never stalls).
	ErrStalled = errors.New("execution stalled")
)

// OOMError reports a device exceeding its memory capacity.
type OOMError struct {
	Device   int
	Needed   int64
	Capacity int64
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("OOM on device %d: need %d bytes, capacity %d",
		e.Device, e.Needed, e.Capacity)
}

// Config controls one simulated iteration.
type Config struct {
	// Discipline selects FIFO or Priority ready queues. Zero value means
	// FIFO.
	Discipline QueueDiscipline
	// Priorities maps op ID -> priority index (lower runs first). Required
	// when Discipline is Priority.
	Priorities []int
	// Memory converts parameter bytes into resident bytes. Zero value
	// falls back to graph.DefaultMemoryModel.
	Memory graph.MemoryModel
	// Jitter adds multiplicative uniform noise of ±Jitter to kernel and
	// transfer times, emulating real measurement variance for the cost
	// models to average over. Zero disables noise.
	Jitter float64
	// Seed seeds the jitter generator; runs with equal seeds are
	// reproducible.
	Seed int64
	// DisableMemoryCheck runs without OOM enforcement (used by tests and
	// by what-if analysis).
	DisableMemoryCheck bool
	// SharedNIC models one network interface per server: all transfers
	// between a given pair of servers serialize on one channel instead of
	// one channel per device pair. Off by default (the paper-era testbeds
	// had multiple rails, and the conservative default keeps the DP
	// baseline strong); turn on for congested-network what-if analysis.
	SharedNIC bool
}

// Span records one op execution — the computation half of RunMetadata.
type Span struct {
	Op     int
	Device int
	Start  time.Duration
	End    time.Duration
}

// Transfer records one tensor movement — the memcpy half of RunMetadata.
// Start is when the channel began moving the tensor (queueing excluded) so
// the communication cost model learns the link law, not queue contention.
type Transfer struct {
	From, To int // device IDs
	Producer int // op that produced the tensor
	Consumer int // op awaiting it
	Bytes    int64
	Enqueued time.Duration
	Start    time.Duration
	End      time.Duration
}

// Result is the outcome of one simulated iteration.
type Result struct {
	// Makespan is the per-iteration time.
	Makespan time.Duration
	// Spans are per-op executions ordered by start time.
	Spans []Span
	// Transfers are all cross-device tensor movements.
	Transfers []Transfer
	// ComputeBusy is per-device total kernel time.
	ComputeBusy []time.Duration
	// MemcpyBusy is per-device total transfer time (counted on the
	// receiving device, where TensorFlow's memcpy shows up).
	MemcpyBusy []time.Duration
	// PeakMemory is the per-device peak resident bytes.
	PeakMemory []int64
}

// AvgComputeBusy returns the mean per-device compute time over devices that
// executed at least one op, matching Fig. 5's "computation time".
func (r *Result) AvgComputeBusy() time.Duration {
	var sum time.Duration
	n := 0
	for _, d := range r.ComputeBusy {
		if d > 0 {
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// TotalMemcpy returns the total transfer time across devices, matching
// Fig. 5's "memcpy time".
func (r *Result) TotalMemcpy() time.Duration {
	var sum time.Duration
	for _, d := range r.MemcpyBusy {
		sum += d
	}
	return sum
}

// Engine executes placed graphs on a cluster with ground-truth latencies
// from the kernel oracle.
type Engine struct {
	cluster *device.Cluster
	oracle  *kernels.Oracle
}

// NewEngine returns an engine for the cluster.
func NewEngine(cluster *device.Cluster, oracle *kernels.Oracle) *Engine {
	return &Engine{cluster: cluster, oracle: oracle}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *device.Cluster { return e.cluster }

// Run simulates one training iteration of g under the given placement
// (op ID -> device ID) and configuration.
func (e *Engine) Run(g *graph.Graph, placement []int, cfg Config) (*Result, error) {
	if len(placement) != g.NumOps() {
		return nil, fmt.Errorf("%w: have %d entries for %d ops",
			ErrBadPlacement, len(placement), g.NumOps())
	}
	for id, d := range placement {
		if d < 0 || d >= e.cluster.NumDevices() {
			return nil, fmt.Errorf("%w: op %d on device %d", ErrBadPlacement, id, d)
		}
	}
	if cfg.Discipline == 0 {
		cfg.Discipline = FIFO
	}
	if cfg.Discipline == Priority && len(cfg.Priorities) != g.NumOps() {
		return nil, fmt.Errorf("%w: priority list has %d entries for %d ops",
			ErrBadPlacement, len(cfg.Priorities), g.NumOps())
	}
	if cfg.Memory == (graph.MemoryModel{}) {
		cfg.Memory = graph.DefaultMemoryModel()
	}
	run := newRunState(e, g, placement, cfg)
	return run.execute()
}
