// Package sim is the discrete-event execution engine that stands in for the
// TensorFlow dataflow executor running on a multi-GPU testbed. It executes
// a placed computation graph with:
//
//   - one compute stream per GPU (one kernel at a time, like a single CUDA
//     stream);
//   - one copy channel per ordered device pair, so transfers overlap with
//     computation and with transfers on other pairs, but serialize on the
//     same pair;
//   - a ready queue per device drained either FIFO (TensorFlow's default
//     executor policy) or by scheduler-assigned priorities (FastT's order
//     enforcement);
//   - memory accounting: resident parameter/optimizer state plus live
//     activations with consumer-driven lifetimes, producing OOM errors
//     exactly where a 16 GB V100 would produce them.
//
// The engine reports per-op spans and per-transfer records — the
// RunMetadata equivalent FastT's profiler feeds into the cost models — plus
// the compute/memcpy/iteration breakdown of Fig. 5.
package sim

import (
	"errors"
	"fmt"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/runtime"
)

// QueueDiscipline selects how a device drains its ready queue.
type QueueDiscipline int

const (
	// FIFO runs ops in ready order (arrival time, then op ID) — an
	// idealized default executor and the conservative baseline for the
	// speed tables.
	FIFO QueueDiscipline = iota + 1
	// Priority runs the ready op with the smallest assigned priority
	// index — FastT's order enforcement.
	Priority
	// Unordered picks among ready ops in a deterministic but arbitrary
	// (hashed) order, modelling TensorFlow's default executor, whose
	// inter-op thread pool dispatches concurrently-ready nodes in
	// effectively arbitrary order — the execution-order variance the
	// paper's order enforcement eliminates (Fig. 2).
	Unordered
)

// Errors returned by Run.
var (
	// ErrBadPlacement is returned when the placement vector is malformed.
	ErrBadPlacement = errors.New("bad placement")
	// ErrStalled is returned when execution cannot make progress (a bug
	// guard; a valid DAG with a full placement never stalls).
	ErrStalled = errors.New("execution stalled")
)

// The execution result vocabulary (spans, transfers, results, OOM errors)
// lives in internal/runtime, the backend-agnostic home shared by every
// runtime.Executor implementation; the aliases below keep sim's historical
// names working and make sim results directly usable behind the seam.
type (
	// OOMError reports a device exceeding its memory capacity.
	OOMError = runtime.OOMError
	// Span records one op execution — the computation half of RunMetadata.
	Span = runtime.Span
	// Transfer records one tensor movement — the memcpy half of
	// RunMetadata.
	Transfer = runtime.Transfer
	// Result is the outcome of one simulated iteration.
	Result = runtime.Result
)

// Config controls one simulated iteration.
type Config struct {
	// Discipline selects FIFO or Priority ready queues. Zero value means
	// FIFO.
	Discipline QueueDiscipline
	// Priorities maps op ID -> priority index (lower runs first). Required
	// when Discipline is Priority.
	Priorities []int
	// Memory converts parameter bytes into resident bytes. Zero value
	// falls back to graph.DefaultMemoryModel.
	Memory graph.MemoryModel
	// Jitter adds multiplicative uniform noise of ±Jitter to kernel and
	// transfer times, emulating real measurement variance for the cost
	// models to average over. Zero disables noise.
	Jitter float64
	// Seed seeds the jitter generator; runs with equal seeds are
	// reproducible.
	Seed int64
	// DisableMemoryCheck runs without OOM enforcement (used by tests and
	// by what-if analysis).
	DisableMemoryCheck bool
	// SharedNIC models one network interface per server: all transfers
	// between a given pair of servers serialize on one channel instead of
	// one channel per device pair. Off by default (the paper-era testbeds
	// had multiple rails, and the conservative default keeps the DP
	// baseline strong); turn on for congested-network what-if analysis.
	SharedNIC bool
	// Faults injects deterministic mid-run faults: stragglers and link
	// degradations slow the affected work from their activation time on;
	// a device failure aborts the run with a runtime.DeviceLostError at
	// the first event on or after its time. Fault times are absolute on
	// the training timeline; FaultEpoch is this iteration's start on that
	// timeline. Nil disables injection.
	Faults *FaultPlan
	// FaultEpoch is the training-timeline time at which this iteration
	// starts (cumulative makespan of every earlier iteration plus any
	// recovery time the caller charged).
	FaultEpoch time.Duration
}

// Engine executes placed graphs on a cluster with ground-truth latencies
// from the kernel oracle.
type Engine struct {
	cluster *device.Cluster
	oracle  *kernels.Oracle
}

// NewEngine returns an engine for the cluster.
func NewEngine(cluster *device.Cluster, oracle *kernels.Oracle) *Engine {
	return &Engine{cluster: cluster, oracle: oracle}
}

// Cluster returns the engine's cluster.
func (e *Engine) Cluster() *device.Cluster { return e.cluster }

// Run simulates one training iteration of g under the given placement
// (op ID -> device ID) and configuration.
func (e *Engine) Run(g *graph.Graph, placement []int, cfg Config) (*Result, error) {
	if len(placement) != g.NumOps() {
		return nil, fmt.Errorf("%w: have %d entries for %d ops",
			ErrBadPlacement, len(placement), g.NumOps())
	}
	for id, d := range placement {
		if d < 0 || d >= e.cluster.NumDevices() {
			return nil, fmt.Errorf("%w: op %d on device %d", ErrBadPlacement, id, d)
		}
	}
	if cfg.Discipline == 0 {
		cfg.Discipline = FIFO
	}
	if cfg.Discipline == Priority && len(cfg.Priorities) != g.NumOps() {
		return nil, fmt.Errorf("%w: priority list has %d entries for %d ops",
			ErrBadPlacement, len(cfg.Priorities), g.NumOps())
	}
	if cfg.Memory == (graph.MemoryModel{}) {
		cfg.Memory = graph.DefaultMemoryModel()
	}
	run := newRunState(e, g, placement, cfg)
	return run.execute()
}
