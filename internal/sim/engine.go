package sim

import (
	"math/rand"
	"sort"
	"time"

	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/runtime"
)

// eventKind discriminates heap events.
type eventKind int

const (
	evOpDone eventKind = iota + 1
	evXferDone
)

type event struct {
	at   int64 // nanoseconds
	seq  int   // tie-break for determinism
	kind eventKind
	op   int      // evOpDone: the op; evXferDone: unused
	dev  int      // evOpDone: the device
	ch   *channel // evXferDone: the channel that completed its head
}

// eventHeap is a binary min-heap on (at, seq).
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && eventLess((*h)[l], (*h)[small]) {
			small = l
		}
		if r < len(*h) && eventLess((*h)[r], (*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// readyNode is one entry of a device ready queue.
type readyNode struct {
	k1, k2 int64 // FIFO: (readyTime, opID); Priority: (priority, opID)
	op     int
}

// readyQueue is a binary min-heap of readyNodes.
type readyQueue []readyNode

func (q *readyQueue) push(n readyNode) {
	*q = append(*q, n)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !nodeLess((*q)[i], (*q)[p]) {
			break
		}
		(*q)[i], (*q)[p] = (*q)[p], (*q)[i]
		i = p
	}
}

func (q *readyQueue) pop() readyNode {
	old := *q
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*q = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*q) && nodeLess((*q)[l], (*q)[small]) {
			small = l
		}
		if r < len(*q) && nodeLess((*q)[r], (*q)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*q)[i], (*q)[small] = (*q)[small], (*q)[i]
		i = small
	}
	return top
}

func nodeLess(a, b readyNode) bool {
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	if a.k2 != b.k2 {
		return a.k2 < b.k2
	}
	return a.op < b.op
}

// xfer is one pending or in-flight tensor copy. One xfer serves every
// consumer of the producer's output on the destination device (TensorFlow
// sends one copy per device, not per edge).
type xfer struct {
	producer  int
	consumers []int
	src, dest int // device endpoints (channels may be shared across pairs)
	bytes     int64
	enqueued  int64
	started   int64
}

// channel is the copy engine for one ordered device pair: transfers on the
// same pair serialize; different pairs proceed in parallel.
type channel struct {
	from, to int
	queue    []xfer
	busy     bool
}

type copyKey struct {
	producer int
	dev      int
}

type runState struct {
	e     *Engine
	g     *graph.Graph
	place []int
	cfg   Config

	now    int64
	events eventHeap
	seq    int

	pendingInputs []int
	finished      []bool
	finishedCount int

	deviceBusy []bool
	queues     []readyQueue
	channels   map[[2]int]*channel

	memUsed  []int64
	memPeak  []int64
	outRefs  []int // remaining releases before an op's output is freed
	copyRefs map[copyKey]int

	spans      []Span
	transfers  []Transfer
	computeNS  []int64
	memcpyNS   []int64
	rng        *rand.Rand
	priorities []int

	// Fault injection (see Config.Faults). Times are iteration-relative
	// nanoseconds: fault AtNs minus the epoch.
	epoch      int64       // Config.FaultEpoch in ns
	hasFail    bool        // a device failure is scheduled
	failRel    int64       // failure time relative to iteration start
	failDev    int         // failing device
	failAbs    int64       // failure time on the training timeline
	stragglers []FaultSpec // straggler faults, plan order
	linkFaults []FaultSpec // link-degrade faults, plan order
}

func newRunState(e *Engine, g *graph.Graph, placement []int, cfg Config) *runState {
	n := g.NumOps()
	d := e.cluster.NumDevices()
	r := &runState{
		e:             e,
		g:             g,
		place:         placement,
		cfg:           cfg,
		pendingInputs: make([]int, n),
		finished:      make([]bool, n),
		deviceBusy:    make([]bool, d),
		queues:        make([]readyQueue, d),
		channels:      make(map[[2]int]*channel),
		memUsed:       make([]int64, d),
		memPeak:       make([]int64, d),
		outRefs:       make([]int, n),
		copyRefs:      make(map[copyKey]int),
		computeNS:     make([]int64, d),
		memcpyNS:      make([]int64, d),
		rng:           rand.New(rand.NewSource(cfg.Seed)),
		priorities:    cfg.Priorities,
	}
	for i := range r.outRefs {
		r.outRefs[i] = -1 // unset until the op finishes
	}
	r.prepareFaults()
	return r
}

// prepareFaults indexes the configured fault plan for the event loop: the
// earliest scheduled device failure (ties broken by lowest device ID, so
// injection is deterministic) plus the straggler and link-degradation lists.
func (r *runState) prepareFaults() {
	if r.cfg.Faults == nil {
		return
	}
	r.epoch = int64(r.cfg.FaultEpoch)
	for _, f := range r.cfg.Faults.Faults {
		switch f.runtimeKind() {
		case runtime.FaultDeviceFailure:
			if !r.hasFail || f.AtNs < r.failAbs ||
				(f.AtNs == r.failAbs && f.Device < r.failDev) {
				r.hasFail = true
				r.failAbs = f.AtNs
				r.failRel = f.AtNs - r.epoch
				r.failDev = f.Device
			}
		case runtime.FaultStraggler:
			r.stragglers = append(r.stragglers, f)
		case runtime.FaultLinkDegrade:
			r.linkFaults = append(r.linkFaults, f)
		}
	}
}

// stragglerFactor returns the combined slowdown of ops starting now on dev:
// the product of every straggler fault active on the device at the absolute
// start time.
func (r *runState) stragglerFactor(dev int) float64 {
	factor := 1.0
	for _, f := range r.stragglers {
		if f.Device == dev && f.AtNs <= r.epoch+r.now {
			factor *= f.Factor
		}
	}
	return factor
}

// linkFactor returns the combined slowdown of transfers starting now from
// src to dest.
func (r *runState) linkFactor(src, dest int) float64 {
	factor := 1.0
	for _, f := range r.linkFaults {
		if f.From == src && f.To == dest && f.AtNs <= r.epoch+r.now {
			factor *= f.Factor
		}
	}
	return factor
}

// deviceLost builds the typed abort for the scheduled failure.
func (r *runState) deviceLost() *runtime.DeviceLostError {
	return &runtime.DeviceLostError{Device: r.failDev, At: time.Duration(r.failAbs)}
}

// jitter perturbs d by ±cfg.Jitter multiplicatively.
func (r *runState) jitter(d time.Duration) int64 {
	ns := int64(d)
	if r.cfg.Jitter <= 0 || ns == 0 {
		return ns
	}
	f := 1 + r.cfg.Jitter*(2*r.rng.Float64()-1)
	return int64(float64(ns) * f)
}

// alloc charges bytes to device dev, returning an OOM error when enabled
// and the capacity would be exceeded.
func (r *runState) alloc(dev int, bytes int64) error {
	r.memUsed[dev] += bytes
	if r.memUsed[dev] > r.memPeak[dev] {
		r.memPeak[dev] = r.memUsed[dev]
	}
	if !r.cfg.DisableMemoryCheck && r.memUsed[dev] > r.e.cluster.Device(dev).MemoryBytes {
		return &OOMError{
			Device:   dev,
			Needed:   r.memUsed[dev],
			Capacity: r.e.cluster.Device(dev).MemoryBytes,
		}
	}
	return nil
}

func (r *runState) free(dev int, bytes int64) {
	r.memUsed[dev] -= bytes
}

func (r *runState) execute() (*Result, error) {
	// Charge resident parameter/optimizer state up front.
	for _, op := range r.g.Ops() {
		static := int64(r.cfg.Memory.ParamStateFactor * float64(op.ParamBytes))
		if static > 0 {
			if err := r.alloc(r.place[op.ID], static); err != nil {
				return nil, err
			}
		}
	}

	// Seed the ready queues with entry ops.
	for _, op := range r.g.Ops() {
		r.pendingInputs[op.ID] = r.g.InDegree(op.ID)
		if r.pendingInputs[op.ID] == 0 {
			r.enqueueReady(op.ID)
		}
	}
	for dev := range r.queues {
		if err := r.kick(dev); err != nil {
			return nil, err
		}
	}

	// A failure scheduled at or before the iteration start kills the run
	// before any work happens.
	if r.hasFail && r.failRel <= 0 {
		return nil, r.deviceLost()
	}

	for len(r.events) > 0 {
		ev := r.events.pop()
		if r.hasFail && ev.at >= r.failRel {
			// The device dies before this event completes; the iteration's
			// work is lost and the caller must recover from checkpoint.
			return nil, r.deviceLost()
		}
		r.now = ev.at
		var err error
		switch ev.kind {
		case evOpDone:
			err = r.onOpDone(ev.op, ev.dev)
		case evXferDone:
			err = r.onXferDone(ev.ch)
		}
		if err != nil {
			return nil, err
		}
	}

	if r.finishedCount != r.g.NumOps() {
		return nil, ErrStalled
	}
	return r.buildResult(), nil
}

func (r *runState) enqueueReady(op int) {
	dev := r.place[op]
	var n readyNode
	switch r.cfg.Discipline {
	case Priority:
		n = readyNode{k1: int64(r.priorities[op]), k2: int64(op), op: op}
	case Unordered:
		n = readyNode{k1: int64(splitmix(uint64(op) + uint64(r.cfg.Seed))), k2: int64(op), op: op}
	default:
		n = readyNode{k1: r.now, k2: int64(op), op: op}
	}
	r.queues[dev].push(n)
}

// splitmix is SplitMix64, giving a deterministic but arbitrary ordering key
// for the Unordered discipline. The result is masked positive so heap keys
// compare sanely.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return (x ^ (x >> 31)) & (1<<62 - 1)
}

// kick starts the next ready op on dev if the device is idle.
func (r *runState) kick(dev int) error {
	if r.deviceBusy[dev] || len(r.queues[dev]) == 0 {
		return nil
	}
	n := r.queues[dev].pop()
	op := r.g.Op(n.op)
	if err := r.alloc(dev, op.OutputBytes+op.WorkspaceBytes); err != nil {
		return err
	}
	dur := r.jitter(r.e.oracle.Exec(op, r.e.cluster.Device(dev)))
	if f := r.stragglerFactor(dev); f != 1 {
		dur = int64(float64(dur) * f)
	}
	r.deviceBusy[dev] = true
	r.spans = append(r.spans, Span{
		Op:     n.op,
		Device: dev,
		Start:  time.Duration(r.now),
		End:    time.Duration(r.now + dur),
	})
	r.computeNS[dev] += dur
	r.seq++
	r.events.push(event{at: r.now + dur, seq: r.seq, kind: evOpDone, op: n.op, dev: dev})
	return nil
}

func (r *runState) onOpDone(opID, dev int) error {
	op := r.g.Op(opID)
	r.finished[opID] = true
	r.finishedCount++
	r.free(dev, op.WorkspaceBytes)

	// Release inputs this op was holding.
	for _, e := range r.g.InEdges(opID) {
		pdev := r.place[e.From]
		if pdev == dev {
			r.releaseRef(e.From)
		} else {
			k := copyKey{producer: e.From, dev: dev}
			r.copyRefs[k]--
			if r.copyRefs[k] == 0 {
				r.free(dev, e.Bytes)
				delete(r.copyRefs, k)
			}
		}
	}

	// Route the output: group consumers by destination device.
	sameDev := 0
	remote := make(map[int][]int) // dest device -> consumers
	var remoteBytes int64
	for _, e := range r.g.OutEdges(opID) {
		cdev := r.place[e.To]
		if cdev == dev {
			sameDev++
			if err := r.notifyInput(e.To); err != nil {
				return err
			}
		} else {
			remote[cdev] = append(remote[cdev], e.To)
			if e.Bytes > remoteBytes {
				remoteBytes = e.Bytes
			}
		}
	}
	r.outRefs[opID] = sameDev + len(remote)
	if r.outRefs[opID] == 0 {
		r.free(dev, op.OutputBytes)
	}
	// Deterministic channel order.
	dests := make([]int, 0, len(remote))
	for d := range remote {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		r.enqueueTransfer(dev, d, xfer{
			producer:  opID,
			consumers: remote[d],
			src:       dev,
			dest:      d,
			bytes:     remoteBytes,
			enqueued:  r.now,
		})
	}

	r.deviceBusy[dev] = false
	return r.kick(dev)
}

// releaseRef releases one hold on op's output, freeing it at zero.
func (r *runState) releaseRef(op int) {
	r.outRefs[op]--
	if r.outRefs[op] == 0 {
		r.free(r.place[op], r.g.Op(op).OutputBytes)
	}
}

// notifyInput marks one input of op as available; when the last input
// arrives the op is enqueued and its device kicked. The only possible error
// is an OOM raised while starting the op.
func (r *runState) notifyInput(op int) error {
	r.pendingInputs[op]--
	if r.pendingInputs[op] == 0 {
		r.enqueueReady(op)
		return r.kick(r.place[op])
	}
	return nil
}

func (r *runState) enqueueTransfer(from, to int, x xfer) {
	key := r.channelKey(from, to)
	ch, ok := r.channels[key]
	if !ok {
		ch = &channel{from: from, to: to}
		r.channels[key] = ch
	}
	ch.queue = append(ch.queue, x)
	r.pump(ch)
}

// channelKey picks the serialization domain of a transfer: per ordered
// device pair by default; per ordered server pair when SharedNIC models a
// single network interface per machine. Shared channels are keyed with
// negative values so they can never collide with device-pair keys.
func (r *runState) channelKey(from, to int) [2]int {
	if r.cfg.SharedNIC {
		fs := r.e.cluster.Device(from).Server
		ts := r.e.cluster.Device(to).Server
		if fs != ts {
			return [2]int{-1 - fs, -1 - ts}
		}
	}
	return [2]int{from, to}
}

// pump starts the channel's next transfer if the channel is idle. Under
// FIFO the queue order (enqueue order) is kept; under Priority the pending
// transfer whose most urgent consumer has the smallest priority index goes
// first — FastT's order enforcement covers send/recv scheduling too.
func (r *runState) pump(ch *channel) {
	if ch.busy || len(ch.queue) == 0 {
		return
	}
	if r.cfg.Discipline == Priority && len(ch.queue) > 1 {
		best := 0
		bestKey := r.xferPriority(ch.queue[0])
		for i := 1; i < len(ch.queue); i++ {
			if k := r.xferPriority(ch.queue[i]); k < bestKey {
				best, bestKey = i, k
			}
		}
		if best != 0 {
			ch.queue[0], ch.queue[best] = ch.queue[best], ch.queue[0]
		}
	}
	ch.busy = true
	head := &ch.queue[0]
	head.started = r.now
	link := r.e.cluster.Link(head.src, head.dest)
	dur := r.jitter(kernels.TransferTime(head.bytes, link))
	if f := r.linkFactor(head.src, head.dest); f != 1 {
		dur = int64(float64(dur) * f)
	}
	r.seq++
	r.events.push(event{at: r.now + dur, seq: r.seq, kind: evXferDone, ch: ch})
}

// xferPriority returns the urgency of a pending transfer: the smallest
// priority index among its consumers.
func (r *runState) xferPriority(x xfer) int {
	best := int(^uint(0) >> 1)
	for _, c := range x.consumers {
		if p := r.priorities[c]; p < best {
			best = p
		}
	}
	return best
}

func (r *runState) onXferDone(ch *channel) error {
	head := ch.queue[0]
	ch.queue = ch.queue[1:]
	ch.busy = false

	// Allocate the received copy on the destination.
	if err := r.alloc(head.dest, head.bytes); err != nil {
		return err
	}
	r.copyRefs[copyKey{producer: head.producer, dev: head.dest}] = len(head.consumers)
	r.releaseRef(head.producer)

	end := time.Duration(r.now)
	start := time.Duration(head.started)
	for _, c := range head.consumers {
		r.transfers = append(r.transfers, Transfer{
			From:     head.src,
			To:       head.dest,
			Producer: head.producer,
			Consumer: c,
			Bytes:    head.bytes,
			Enqueued: time.Duration(head.enqueued),
			Start:    start,
			End:      end,
		})
	}
	r.memcpyNS[head.dest] += int64(end - start)

	for _, c := range head.consumers {
		if err := r.notifyInput(c); err != nil {
			return err
		}
	}
	r.pump(ch)
	return nil
}

func (r *runState) buildResult() *Result {
	res := &Result{
		Spans:       r.spans,
		Transfers:   r.transfers,
		ComputeBusy: make([]time.Duration, len(r.computeNS)),
		MemcpyBusy:  make([]time.Duration, len(r.memcpyNS)),
		PeakMemory:  append([]int64(nil), r.memPeak...),
	}
	for i, ns := range r.computeNS {
		res.ComputeBusy[i] = time.Duration(ns)
	}
	for i, ns := range r.memcpyNS {
		res.MemcpyBusy[i] = time.Duration(ns)
	}
	var makespan time.Duration
	for _, s := range r.spans {
		if s.End > makespan {
			makespan = s.End
		}
	}
	res.Makespan = makespan
	// Report the non-fatal faults that were active during this iteration's
	// window, in schedule order. The executor filters them to once-only
	// across iterations.
	for _, f := range r.stragglers {
		if f.AtNs < r.epoch+int64(makespan) {
			res.Faults = append(res.Faults, f.Event())
		}
	}
	for _, f := range r.linkFaults {
		if f.AtNs < r.epoch+int64(makespan) {
			res.Faults = append(res.Faults, f.Event())
		}
	}
	sort.SliceStable(res.Faults, func(i, j int) bool {
		return res.Faults[i].At < res.Faults[j].At
	})
	sort.Slice(res.Spans, func(i, j int) bool {
		if res.Spans[i].Start != res.Spans[j].Start {
			return res.Spans[i].Start < res.Spans[j].Start
		}
		return res.Spans[i].Op < res.Spans[j].Op
	})
	return res
}
