// Package pipeline implements GPipe-style pipeline parallelism as a
// complement to FastT, as the paper's related-work discussion proposes:
// "After FastT obtains operation placement and execution order, it can
// further split a mini-batch into micro-batches and allow pipelined
// training in the similar fashion as proposed in GPipe."
//
// A pipelined deployment is a model-parallel staging of the layers plus a
// micro-batched execution: the mini-batch is divided into m micro-batches,
// each flowing through the stages independently, so stage s can process
// micro-batch k while stage s+1 processes micro-batch k-1. Structurally a
// micro-batch is a data-parallel replica at batch/m that shares the staged
// placement instead of owning a device — which is exactly how this package
// builds it: graph.BuildDataParallel provides the replication and the
// gradient accumulation across micro-batches (GPipe's synchronous update
// semantics), and the placement maps every micro-batch copy of an
// operation onto its layer's stage.
package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// ErrBadMicroBatches is returned for non-positive micro-batch counts.
var ErrBadMicroBatches = errors.New("micro-batch count must be >= 1")

// Plan is a pipelined deployment: the micro-batched training graph, the
// stage-wise placement, and the pipeline schedule as executor priorities.
type Plan struct {
	// Graph is the micro-batched training graph (micro-batch k's copies
	// are named "repk/...").
	Graph *graph.Graph
	// Placement maps op ID -> device (stage).
	Placement []int
	// Priorities encode the pipeline schedule (op ID -> priority index):
	// earlier micro-batches run first whenever ready, so micro-batch 0
	// drains into stage 1 while stage 0 starts micro-batch 1. Without this
	// a FIFO executor round-robins the micro-batches within a stage and no
	// pipelining happens at all.
	Priorities []int
	// MicroBatches and Stages describe the pipeline shape.
	MicroBatches int
	Stages       int
}

// BuildOption customizes a pipeline plan.
type BuildOption func(*buildCfg)

type buildCfg struct {
	recompute bool
}

// WithRecomputation enables GPipe-style activation rematerialization: each
// stage retains only its input tensors and re-runs its forward operations
// when the backward pass arrives, trading ~one extra forward pass of
// compute for a large reduction in resident activation memory.
func WithRecomputation() BuildOption {
	return func(c *buildCfg) { c.recompute = true }
}

// Build constructs a pipelined deployment of a model over the cluster. The
// model graph must be built at the *micro-batch* size (mini-batch divided
// by microBatches); Build replicates it per micro-batch and assigns every
// copy of a layer to that layer's stage.
func Build(model *graph.Graph, cluster *device.Cluster, mm graph.MemoryModel, microBatches int, opts ...BuildOption) (*Plan, error) {
	if microBatches < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadMicroBatches, microBatches)
	}
	var cfg buildCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	if mm == (graph.MemoryModel{}) {
		mm = graph.DefaultMemoryModel()
	}
	// Stage the single-micro-batch model layer-wise. Unlike the
	// memory-balanced model parallelism FastT bootstraps from (whose goal
	// is fitting, not throughput), a pipeline's stages must be
	// compute-balanced — the slowest stage sets the pipeline's rate.
	stageByName, err := stageByCompute(model, cluster.NumDevices())
	if err != nil {
		return nil, fmt.Errorf("stage model: %w", err)
	}

	g, err := graph.BuildDataParallel(model, microBatches)
	if err != nil {
		return nil, fmt.Errorf("micro-batch model: %w", err)
	}
	place := make([]int, g.NumOps())
	for i := range place {
		place[i] = -1
	}
	for _, op := range g.Ops() {
		if base, ok := baseModelName(op.Name); ok {
			if s, ok := stageByName[base]; ok {
				place[op.ID] = s
			}
		}
	}
	// Shared variables sit on their consumers' stage; sync ops follow
	// their colocation targets; anything left follows a placed neighbour.
	for _, op := range g.Ops() {
		if place[op.ID] >= 0 {
			continue
		}
		if op.ColocateWith != "" {
			if tgt, ok := g.OpByName(op.ColocateWith); ok && place[tgt.ID] >= 0 {
				place[op.ID] = place[tgt.ID]
				continue
			}
		}
		place[op.ID] = neighbourStage(g, place, op.ID)
	}
	// Second pass for colocation chains resolved out of order.
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		if tgt, ok := g.OpByName(op.ColocateWith); ok && place[tgt.ID] >= 0 {
			place[op.ID] = place[tgt.ID]
		}
	}
	if cfg.recompute {
		g, place, err = applyRecompute(g, place)
		if err != nil {
			return nil, fmt.Errorf("recomputation: %w", err)
		}
	}
	prio, err := scheduleOrder(g)
	if err != nil {
		return nil, fmt.Errorf("pipeline schedule: %w", err)
	}
	return &Plan{
		Graph:        g,
		Placement:    place,
		Priorities:   prio,
		MicroBatches: microBatches,
		Stages:       cluster.NumDevices(),
	}, nil
}

// scheduleOrder derives the pipeline's execution priorities: ops sort by
// (micro-batch, topological position), so whenever a stage has a choice it
// advances the oldest in-flight micro-batch — the GPipe fill/drain order,
// which also lets backward passes of early micro-batches preempt forward
// passes of late ones (1F1B-style memory behaviour).
func scheduleOrder(g *graph.Graph) ([]int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	pos := make([]int, g.NumOps())
	for i, id := range topo {
		pos[id] = i
	}
	order := make([]int, g.NumOps())
	for i := range order {
		order[i] = i
	}
	mb := func(id int) int {
		r := g.Op(id).Replica
		if r < 0 {
			return int(^uint(0) >> 1) // shared sync ops run last
		}
		return r
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ma, mbt := mb(a), mb(b)
		if ma != mbt {
			return ma < mbt
		}
		return pos[a] < pos[b]
	})
	prio := make([]int, g.NumOps())
	for i, id := range order {
		prio[id] = i
	}
	return prio, nil
}

// stageByCompute cuts the model's forward operations into contiguous
// stages of roughly equal compute (forward plus the mirrored backward
// work), then lets every backward op follow the stage of the forward op
// whose activation it consumes. Returns op name -> stage.
func stageByCompute(model *graph.Graph, stages int) (map[string]int, error) {
	order, err := model.TopoOrder()
	if err != nil {
		return nil, err
	}
	isStaged := func(op *graph.Op) bool {
		return !graph.IsBackwardKind(op.Kind) && op.Kind != graph.KindVariable
	}
	// Weight of a forward op: its FLOPs plus its backward mirror's (the
	// builders name mirrors "<name>_bp"); without a mirror, backward work
	// is approximated as twice the forward.
	weight := func(op *graph.Op) int64 {
		w := op.FLOPs
		if bp, ok := model.OpByName(op.Name + "_bp"); ok {
			w += bp.FLOPs
		} else {
			w += 2 * op.FLOPs
		}
		return w
	}
	var total int64
	for _, op := range model.Ops() {
		if isStaged(op) {
			total += weight(op)
		}
	}
	budget := total / int64(stages)
	stage := make(map[string]int, model.NumOps())
	dev := 0
	var used int64
	for _, id := range order {
		op := model.Op(id)
		if !isStaged(op) {
			continue
		}
		w := weight(op)
		if dev < stages-1 && used > 0 && used+w > budget {
			dev++
			used = 0
		}
		stage[op.Name] = dev
		used += w
	}
	// Backward ops and variables follow their forward neighbours.
	for _, id := range order {
		op := model.Op(id)
		if _, done := stage[op.Name]; done {
			continue
		}
		s, found := -1, false
		for _, p := range model.Predecessors(id) {
			if v, ok := stage[model.Op(p).Name]; ok {
				if !graph.IsBackwardKind(model.Op(p).Kind) {
					s, found = v, true
					break
				}
				if !found {
					s, found = v, true
				}
			}
		}
		if !found {
			for _, sc := range model.Successors(id) {
				if v, ok := stage[model.Op(sc).Name]; ok {
					s, found = v, true
					break
				}
			}
		}
		if !found {
			s = 0
		}
		stage[op.Name] = s
	}
	return stage, nil
}

// baseModelName strips the micro-batch prefix ("rep3/conv1" -> "conv1");
// variable and sync ops return false.
func baseModelName(name string) (string, bool) {
	if !strings.HasPrefix(name, "rep") {
		return "", false
	}
	i := strings.Index(name, "/")
	if i < 0 {
		return "", false
	}
	return name[i+1:], true
}

// neighbourStage picks the stage of the first placed neighbour (successor
// preferred: variables should sit where they are consumed), defaulting to
// stage 0.
func neighbourStage(g *graph.Graph, place []int, id int) int {
	for _, s := range g.Successors(id) {
		if place[s] >= 0 {
			return place[s]
		}
	}
	for _, p := range g.Predecessors(id) {
		if place[p] >= 0 {
			return place[p]
		}
	}
	return 0
}

// BubbleFraction estimates the pipeline bubble of a balanced s-stage,
// m-micro-batch pipeline: (s-1)/(m+s-1), GPipe's idle fraction. Useful for
// choosing micro-batch counts.
func BubbleFraction(stages, microBatches int) float64 {
	if stages <= 1 || microBatches < 1 {
		return 0
	}
	return float64(stages-1) / float64(microBatches+stages-1)
}
