package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"fastt/internal/graph"
)

// Activation recomputation (GPipe's rematerialization): instead of keeping
// every forward activation resident until its backward consumer runs, a
// stage retains only its input tensors and re-executes its forward
// operations when the backward pass reaches it. Memory per stage drops from
// O(activations of the whole micro-batch set) to O(stage inputs), at the
// cost of roughly one extra forward pass of compute.
//
// Graph mechanics: every forward op f with a backward mirror f_bp gets a
// recompute clone f_rc; the activation edge f -> f_bp is rewired to
// f_rc -> f_bp (so f's own output is freed as soon as its forward consumers
// are done), f_rc reads the same inputs as f (from the rc clones of its
// producers where they exist), and the stage-entry rc ops are gated on the
// gradient arriving at the stage so recomputation starts exactly when the
// backward pass needs it.

// applyRecompute rewrites the micro-batched graph for rematerialization and
// returns the new graph with an extended placement.
func applyRecompute(g *graph.Graph, place []int) (*graph.Graph, []int, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	topoPos := make([]int, g.NumOps())
	for i, id := range topo {
		topoPos[id] = i
	}

	// Activation edges: f -> f_bp by the builders' naming convention.
	isActivationEdge := func(e graph.Edge) bool {
		from, to := g.Op(e.From), g.Op(e.To)
		return graph.IsBackwardKind(to.Kind) && to.Name == from.Name+"_bp"
	}
	needsRC := make(map[int]bool) // forward op -> has a mirror
	for _, e := range g.Edges() {
		if isActivationEdge(e) {
			needsRC[e.From] = true
		}
	}

	out := graph.New()
	newID := make([]int, g.NumOps())
	rcID := make(map[int]int, len(needsRC))
	newPlace := make([]int, 0, g.NumOps()+len(needsRC))
	for _, op := range g.Ops() {
		c := *op
		id, err := out.AddOp(&c)
		if err != nil {
			return nil, nil, fmt.Errorf("copy op: %w", err)
		}
		newID[op.ID] = id
		newPlace = append(newPlace, place[op.ID])
	}
	for fid := range needsRC {
		f := g.Op(fid)
		rc := *f
		rc.Name = f.Name + "_rc"
		rc.GradFor = "" // the original's gradient bookkeeping stays put
		id, err := out.AddOp(&rc)
		if err != nil {
			return nil, nil, fmt.Errorf("add recompute op: %w", err)
		}
		rcID[fid] = id
		newPlace = append(newPlace, place[fid])
	}

	// Copy edges, rerouting activation edges through the rc clones.
	for _, e := range g.Edges() {
		if isActivationEdge(e) {
			if err := out.Connect(rcID[e.From], newID[e.To], e.Bytes); err != nil {
				return nil, nil, fmt.Errorf("reroute activation: %w", err)
			}
			continue
		}
		if err := out.Connect(newID[e.From], newID[e.To], e.Bytes); err != nil {
			return nil, nil, fmt.Errorf("copy edge: %w", err)
		}
	}
	// Recompute clones read the same inputs as their originals: the rc
	// clone of a same-stage producer (chaining the recomputation within
	// the stage), or the retained original tensor when the producer lives
	// on another stage — GPipe's "retain only the stage inputs" rule. A
	// previous stage's rc clone must never be used: it is gated on a
	// gradient this stage's backward produces, which would deadlock.
	for fid, rid := range rcID {
		for _, e := range g.InEdges(fid) {
			src := newID[e.From]
			if prc, ok := rcID[e.From]; ok && place[e.From] == place[fid] {
				src = prc
			}
			if err := out.Connect(src, rid, e.Bytes); err != nil {
				return nil, nil, fmt.Errorf("recompute input: %w", err)
			}
		}
	}

	// Gate stage-entry recompute ops on the gradient reaching the stage:
	// group rc ops by (replica, stage), find the stage's last forward op L,
	// and use the backward producer feeding L_bp as the gate.
	type groupKey struct{ replica, stage int }
	groups := make(map[groupKey][]int) // original forward IDs
	for fid := range needsRC {
		k := groupKey{replica: g.Op(fid).Replica, stage: place[fid]}
		groups[k] = append(groups[k], fid)
	}
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool {
			return topoPos[members[i]] < topoPos[members[j]]
		})
		last := members[len(members)-1]
		gate := gradientInto(g, last)
		if gate < 0 {
			continue // no incoming gradient (e.g. the loss stage): no gate
		}
		for _, fid := range members {
			if hasSameStageRCPred(g, rcID, place, fid) {
				continue // chained off another rc op; already deferred
			}
			if err := out.Connect(newID[gate], rcID[fid], 0); err != nil {
				// The gate may already feed the op through a data edge.
				if !errors.Is(err, graph.ErrDuplicateEdge) {
					return nil, nil, fmt.Errorf("gate recompute: %w", err)
				}
			}
		}
	}

	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("recompute graph: %w", err)
	}
	return out, newPlace, nil
}

// gradientInto returns the backward op feeding f's mirror with the incoming
// gradient (any backward-kind predecessor of f_bp other than f's own
// activation), or -1.
func gradientInto(g *graph.Graph, fid int) int {
	bp, ok := g.OpByName(g.Op(fid).Name + "_bp")
	if !ok {
		return -1
	}
	for _, p := range g.Predecessors(bp.ID) {
		if p == fid {
			continue
		}
		if graph.IsBackwardKind(g.Op(p).Kind) {
			return p
		}
	}
	return -1
}

// hasSameStageRCPred reports whether any same-stage producer of f also has
// a recompute clone (so f's clone is already deferred through the chain).
func hasSameStageRCPred(g *graph.Graph, rcID map[int]int, place []int, fid int) bool {
	for _, p := range g.Predecessors(fid) {
		if _, ok := rcID[p]; ok && place[p] == place[fid] {
			return true
		}
	}
	return false
}
