package pipeline

import (
	"errors"
	"strings"
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
	"fastt/internal/placement"
	"fastt/internal/sim"
)

// stagedModel builds a deep sequential model whose layers dominate compute,
// the shape pipelining targets.
func stagedModel(t *testing.T, batch int) *graph.Graph {
	t.Helper()
	g, err := models.VGG19(batch)
	if err != nil {
		t.Fatalf("VGG19: %v", err)
	}
	return g
}

func cluster2(t *testing.T) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

func TestBuildShape(t *testing.T) {
	c := cluster2(t)
	m := stagedModel(t, 8) // micro-batch size 8
	plan, err := Build(m, c, graph.MemoryModel{}, 4)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := plan.Graph.Validate(); err != nil {
		t.Fatalf("pipelined graph invalid: %v", err)
	}
	if plan.MicroBatches != 4 || plan.Stages != 2 {
		t.Errorf("shape = %d micro, %d stages", plan.MicroBatches, plan.Stages)
	}
	if len(plan.Placement) != plan.Graph.NumOps() {
		t.Fatal("placement length mismatch")
	}
	for id, d := range plan.Placement {
		if d < 0 || d >= 2 {
			t.Fatalf("op %d on invalid stage %d", id, d)
		}
	}
}

func TestMicroBatchCopiesShareStage(t *testing.T) {
	c := cluster2(t)
	m := stagedModel(t, 8)
	plan, err := Build(m, c, graph.MemoryModel{}, 3)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// All micro-batch copies of the same layer live on the same stage.
	stage := make(map[string]int)
	for _, op := range plan.Graph.Ops() {
		base, ok := baseModelName(op.Name)
		if !ok {
			continue
		}
		if s, seen := stage[base]; seen {
			if plan.Placement[op.ID] != s {
				t.Fatalf("layer %q split across stages %d and %d",
					base, s, plan.Placement[op.ID])
			}
		} else {
			stage[base] = plan.Placement[op.ID]
		}
	}
	// Both stages are used.
	used := map[int]bool{}
	for _, d := range plan.Placement {
		used[d] = true
	}
	if len(used) != 2 {
		t.Errorf("stages used = %d, want 2", len(used))
	}
}

func TestPipelineBeatsNaiveModelParallel(t *testing.T) {
	// The whole point of pipelining (GPipe): naive model parallelism keeps
	// one stage active at a time; micro-batching overlaps the stages.
	c := cluster2(t)
	const miniBatch = 32
	engine := sim.NewEngine(c, kernels.NewDefaultOracle(c))

	full := stagedModel(t, miniBatch)
	train, err := graph.BuildDataParallel(full, 1)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	mpPlace, err := placement.ModelParallel(train, c, graph.DefaultMemoryModel())
	if err != nil {
		t.Fatalf("ModelParallel: %v", err)
	}
	naive, err := engine.Run(train, mpPlace, sim.Config{})
	if err != nil {
		t.Fatalf("naive MP run: %v", err)
	}

	const micro = 4
	microModel := stagedModel(t, miniBatch/micro)
	plan, err := Build(microModel, c, graph.MemoryModel{}, micro)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	piped, err := engine.Run(plan.Graph, plan.Placement, sim.Config{
		Discipline: sim.Priority,
		Priorities: plan.Priorities,
	})
	if err != nil {
		t.Fatalf("pipelined run: %v", err)
	}
	if piped.Makespan >= naive.Makespan {
		t.Errorf("pipelining did not help: piped=%v naive=%v",
			piped.Makespan, naive.Makespan)
	}
	t.Logf("naive MP %v, pipelined (m=%d) %v (%.1f%% faster)",
		naive.Makespan, micro, piped.Makespan,
		(1-piped.Makespan.Seconds()/naive.Makespan.Seconds())*100)
}

func TestBuildRejectsBadMicroBatches(t *testing.T) {
	c := cluster2(t)
	m := stagedModel(t, 8)
	if _, err := Build(m, c, graph.MemoryModel{}, 0); !errors.Is(err, ErrBadMicroBatches) {
		t.Errorf("err = %v, want ErrBadMicroBatches", err)
	}
}

func TestBubbleFraction(t *testing.T) {
	tests := []struct {
		stages, micro int
		want          float64
	}{
		{1, 4, 0},
		{2, 1, 0.5},
		{4, 1, 0.75},
		{4, 13, 0.1875},
	}
	for _, tt := range tests {
		if got := BubbleFraction(tt.stages, tt.micro); got != tt.want {
			t.Errorf("BubbleFraction(%d,%d) = %v, want %v", tt.stages, tt.micro, got, tt.want)
		}
	}
}

func TestBaseModelName(t *testing.T) {
	tests := []struct {
		in   string
		base string
		ok   bool
	}{
		{"rep0/conv1", "conv1", true},
		{"rep12/fc6/apply", "fc6/apply", true},
		{"var/conv1", "", false},
		{"sync/conv1/addn", "", false},
		{"replica", "", false},
	}
	for _, tt := range tests {
		base, ok := baseModelName(tt.in)
		if base != tt.base || ok != tt.ok {
			t.Errorf("baseModelName(%q) = %q,%v want %q,%v", tt.in, base, ok, tt.base, tt.ok)
		}
	}
}

func TestRecomputationReducesPeakMemory(t *testing.T) {
	// GPipe's rematerialization trades compute for memory: the recompute
	// plan must peak substantially lower and run somewhat longer.
	c := cluster2(t)
	const miniBatch, micro = 32, 4
	engine := sim.NewEngine(c, kernels.NewDefaultOracle(c))

	build := func(opts ...BuildOption) (*Plan, *sim.Result) {
		m := stagedModel(t, miniBatch/micro)
		plan, err := Build(m, c, graph.MemoryModel{}, micro, opts...)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		res, err := engine.Run(plan.Graph, plan.Placement, sim.Config{
			Discipline:         sim.Priority,
			Priorities:         plan.Priorities,
			DisableMemoryCheck: true,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return plan, res
	}

	_, plain := build()
	rcPlan, rc := build(WithRecomputation())

	peak := func(r *sim.Result) int64 {
		var m int64
		for _, p := range r.PeakMemory {
			if p > m {
				m = p
			}
		}
		return m
	}
	plainPeak, rcPeak := peak(plain), peak(rc)
	// The hot device's peak includes fc6's immovable optimizer state
	// (~1.6 GB), so the achievable total reduction on VGG is bounded;
	// require a clear activation saving beyond noise.
	if rcPeak >= plainPeak*9/10 {
		t.Errorf("recomputation saved too little memory: %d -> %d bytes", plainPeak, rcPeak)
	}
	if rc.Makespan <= plain.Makespan {
		t.Errorf("recomputation should cost time: %v vs %v", rc.Makespan, plain.Makespan)
	}
	// The extra compute is bounded by roughly one forward pass (<50%).
	if rc.Makespan > plain.Makespan*3/2 {
		t.Errorf("recomputation cost too much: %v vs %v", rc.Makespan, plain.Makespan)
	}
	t.Logf("peak %d -> %d MB (-%.0f%%), time %v -> %v (+%.0f%%)",
		plainPeak>>20, rcPeak>>20, 100*(1-float64(rcPeak)/float64(plainPeak)),
		plain.Makespan, rc.Makespan,
		100*(rc.Makespan.Seconds()/plain.Makespan.Seconds()-1))
	if rcPlan.Graph.NumOps() <= plain.Spans[0].Op+1 {
		t.Log("") // keep rcPlan used
	}
}

func TestRecomputationGraphStructure(t *testing.T) {
	c := cluster2(t)
	m := stagedModel(t, 4)
	plan, err := Build(m, c, graph.MemoryModel{}, 2, WithRecomputation())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := plan.Graph.Validate(); err != nil {
		t.Fatalf("recompute graph invalid: %v", err)
	}
	// Every forward op with a mirror has an _rc clone, and the mirror's
	// activation comes from the clone.
	rcCount := 0
	for _, op := range plan.Graph.Ops() {
		if strings.HasSuffix(op.Name, "_rc") {
			rcCount++
			base := strings.TrimSuffix(op.Name, "_rc")
			bp, ok := plan.Graph.OpByName(base + "_bp")
			if !ok {
				t.Fatalf("%s has no backward mirror", base)
			}
			feeds := false
			for _, s := range plan.Graph.Successors(op.ID) {
				if s == bp.ID {
					feeds = true
				}
			}
			if !feeds {
				t.Errorf("%s does not feed %s", op.Name, bp.Name)
			}
			// Original must no longer feed the mirror directly.
			orig, ok := plan.Graph.OpByName(base)
			if !ok {
				t.Fatalf("original %s missing", base)
			}
			for _, s := range plan.Graph.Successors(orig.ID) {
				if s == bp.ID {
					t.Errorf("%s still feeds %s directly", base, bp.Name)
				}
			}
		}
	}
	if rcCount == 0 {
		t.Fatal("no recompute clones created")
	}
}
