package core

import (
	"sync"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// costLattice is the dense, fully resolved numeric view of one
// (scheduleContext, cluster, estimator) triple: every cost the scheduling
// inner loops need, laid out flat so rank computation, CP device selection,
// EFT probing and channel booking never cross the cost.Estimator interface
// per probe.
//
//   - exec[id*nDevs+d] is op id's execution time on device d; maxW/minW are
//     its per-op row extrema (the w_i and RestMin terms of the ranks).
//   - Edges are deduplicated into *comm classes* by tensor size —
//     transfer time is a pure function of (bytes, from, to) — so the
//     per-class grids comm[class*nDevs²+from*nDevs+to] and per-class maxima
//     maxComm[class] are resolved once per distinct size, not per edge.
//     classOf maps a global edge index to its class.
//
// A lattice is immutable after construction and safe for any number of
// concurrent readers. An overlay candidate extends its base lattice in
// O(Δ): the base arrays are shared (copied slice headers), and only the
// delta ops' exec rows and the delta edges' classes are resolved fresh into
// the ext* arrays (op IDs >= baseOps, edge indexes >= baseEdges, classes >=
// baseClasses).
//
// With dedup=false a lattice is built as the *direct-estimator reference*:
// no class sharing (one class per edge) and no caching, so every entry is
// an independent direct estimator resolution. The property tests compare
// the two paths byte for byte.
type costLattice struct {
	nDevs       int
	baseOps     int
	baseEdges   int
	baseClasses int

	exec    []time.Duration // baseOps × nDevs
	maxW    []time.Duration // baseOps
	minW    []time.Duration // baseOps
	classOf []int32         // baseEdges
	comm    []time.Duration // baseClasses × nDevs × nDevs
	maxComm []time.Duration // baseClasses

	// classes maps tensor bytes -> class index; frozen after the base
	// build, so extensions may read it without locking.
	classes map[int64]int32

	// Overlay extension (empty on base lattices).
	extExec    []time.Duration
	extMaxW    []time.Duration
	extMinW    []time.Duration
	extClassOf []int32
	extComm    []time.Duration
	extMaxComm []time.Duration
	extBytes   []int64 // bytes of each ext class, linear-scanned (few entries)
}

// execAt returns op id's execution time on device dev.
func (l *costLattice) execAt(id, dev int) time.Duration {
	if id < l.baseOps {
		return l.exec[id*l.nDevs+dev]
	}
	return l.extExec[(id-l.baseOps)*l.nDevs+dev]
}

// wAt and minWAt return the per-op execution-time extrema over all devices.
func (l *costLattice) wAt(id int) time.Duration {
	if id < l.baseOps {
		return l.maxW[id]
	}
	return l.extMaxW[id-l.baseOps]
}

func (l *costLattice) minWAt(id int) time.Duration {
	if id < l.baseOps {
		return l.minW[id]
	}
	return l.extMinW[id-l.baseOps]
}

// classAt resolves a global edge index to its comm class.
func (l *costLattice) classAt(ei int) int {
	if ei < l.baseEdges {
		return int(l.classOf[ei])
	}
	return int(l.extClassOf[ei-l.baseEdges])
}

// commAt returns the transfer time of edge ei between two devices.
func (l *costLattice) commAt(ei, from, to int) time.Duration {
	c := l.classAt(ei)
	cell := from*l.nDevs + to
	if c < l.baseClasses {
		return l.comm[c*l.nDevs*l.nDevs+cell]
	}
	return l.extComm[(c-l.baseClasses)*l.nDevs*l.nDevs+cell]
}

// maxCommAt returns the maximal transfer time of edge ei over all ordered
// device pairs (the c_{i,j} of the rank computation).
func (l *costLattice) maxCommAt(ei int) time.Duration {
	c := l.classAt(ei)
	if c < l.baseClasses {
		return l.maxComm[c]
	}
	return l.extMaxComm[c-l.baseClasses]
}

// fillExecStats resolves one op row and its extrema.
func fillExecStats(row []time.Duration, est cost.Estimator, op *graph.Op,
	devs []*device.Device) (maxW, minW time.Duration) {
	cost.FillExecRow(row, est, op, devs)
	for d, t := range row {
		if t > maxW {
			maxW = t
		}
		if d == 0 || t < minW {
			minW = t
		}
	}
	return maxW, minW
}

// gridMax returns the maximal entry of one comm grid.
func gridMax(grid []time.Duration) time.Duration {
	var m time.Duration
	for _, t := range grid {
		if t > m {
			m = t
		}
	}
	return m
}

// buildLattice resolves the full lattice for a context. It accepts both
// graph and overlay contexts (the direct reference path builds candidate
// lattices from overlay views); a tombstoned op keeps a zero row, which is
// never read because the dead op is never scheduled or ranked. dedup
// controls comm-class sharing (see costLattice).
func buildLattice(ctx *scheduleContext, devs []*device.Device,
	est cost.Estimator, dedup bool) *costLattice {
	nd := len(devs)
	nOps := ctx.nOps
	nEdges := ctx.numEdges()
	l := &costLattice{
		nDevs:     nd,
		baseOps:   nOps,
		baseEdges: nEdges,
		exec:      make([]time.Duration, nOps*nd),
		maxW:      make([]time.Duration, nOps),
		minW:      make([]time.Duration, nOps),
		classOf:   make([]int32, nEdges),
	}
	for id := 0; id < nOps; id++ {
		if id == ctx.dead {
			continue
		}
		l.maxW[id], l.minW[id] = fillExecStats(
			l.exec[id*nd:(id+1)*nd], est, ctx.op(id), devs)
	}
	if dedup {
		l.classes = make(map[int64]int32)
		for ei := 0; ei < nEdges; ei++ {
			b := ctx.edgeAt(ei).Bytes
			c, ok := l.classes[b]
			if !ok {
				c = int32(len(l.maxComm))
				l.classes[b] = c
				l.comm = append(l.comm, make([]time.Duration, nd*nd)...)
				grid := l.comm[int(c)*nd*nd:]
				cost.FillCommGrid(grid, est, b, devs)
				l.maxComm = append(l.maxComm, gridMax(grid))
			}
			l.classOf[ei] = c
		}
	} else {
		// Direct reference: one class per edge, each grid resolved
		// independently from the estimator.
		l.comm = make([]time.Duration, nEdges*nd*nd)
		l.maxComm = make([]time.Duration, nEdges)
		for ei := 0; ei < nEdges; ei++ {
			grid := l.comm[ei*nd*nd : (ei+1)*nd*nd]
			cost.FillCommGrid(grid, est, ctx.edgeAt(ei).Bytes, devs)
			l.classOf[ei] = int32(ei)
			l.maxComm[ei] = gridMax(grid)
		}
	}
	l.baseClasses = len(l.maxComm)
	return l
}

// latExtPool recycles extension lattices: OS-DPOS builds one per overlay
// candidate, and the ext backing arrays dominate the allocation.
var latExtPool = sync.Pool{New: func() any { return &costLattice{} }}

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// extendLattice derives a candidate lattice from the base graph's lattice
// in O(Δ · nDevs²): base arrays are shared via copied slice headers, the
// overlay's delta ops get fresh exec rows, and delta edges resolve against
// the frozen base class map first, then against the (tiny) extension class
// list, with new sizes resolved from the estimator. octx must come from
// overlayContext over the context base was built for. Release with
// releaseLattice.
func extendLattice(base *costLattice, octx *scheduleContext,
	devs []*device.Device, est cost.Estimator) *costLattice {
	nd := base.nDevs
	deltaOps := octx.nOps - base.baseOps
	deltaEdges := octx.numEdges() - base.baseEdges

	l := latExtPool.Get().(*costLattice)
	// Keep the pooled ext backing arrays across the base-header copy.
	extExec, extMaxW, extMinW := l.extExec, l.extMaxW, l.extMinW
	extClassOf, extComm, extMaxComm, extBytes := l.extClassOf, l.extComm, l.extMaxComm, l.extBytes
	*l = *base
	l.extExec = resizeDurations(extExec, deltaOps*nd)
	l.extMaxW = resizeDurations(extMaxW, deltaOps)
	l.extMinW = resizeDurations(extMinW, deltaOps)
	l.extClassOf = resizeInt32s(extClassOf, deltaEdges)
	l.extComm = extComm[:0]
	l.extMaxComm = extMaxComm[:0]
	l.extBytes = extBytes[:0]

	for _, op := range octx.ov.NewOps() {
		i := op.ID - base.baseOps
		l.extMaxW[i], l.extMinW[i] = fillExecStats(
			l.extExec[i*nd:(i+1)*nd], est, op, devs)
	}
	for j := 0; j < deltaEdges; j++ {
		b := octx.extraEdges[j].Bytes
		if c, ok := l.classes[b]; ok {
			l.extClassOf[j] = c
			continue
		}
		found := false
		for k, eb := range l.extBytes {
			if eb == b {
				l.extClassOf[j] = int32(base.baseClasses + k)
				found = true
				break
			}
		}
		if found {
			continue
		}
		l.extClassOf[j] = int32(base.baseClasses + len(l.extBytes))
		l.extBytes = append(l.extBytes, b)
		l.extComm = append(l.extComm, make([]time.Duration, nd*nd)...)
		grid := l.extComm[len(l.extComm)-nd*nd:]
		cost.FillCommGrid(grid, est, b, devs)
		l.extMaxComm = append(l.extMaxComm, gridMax(grid))
	}
	return l
}

// releaseLattice recycles an extension lattice produced by extendLattice.
// Base lattices (buildLattice) are never pooled: cached ones stay live in
// the ring below, uncached ones are rare enough to leave to the GC.
func releaseLattice(l *costLattice) {
	if l != nil {
		latExtPool.Put(l)
	}
}

// latCacheSize bounds the global lattice cache; sized like the context ring
// so the handful of live (graph, estimator) pairs of a calculation hit.
const latCacheSize = 8

var latCache struct {
	sync.Mutex
	entries [latCacheSize]latEntry
	next    int
}

type latEntry struct {
	ctx     *scheduleContext
	cluster *device.Cluster
	est     cost.Estimator
	lat     *costLattice
}

// latticeFor returns the dense cost lattice for (ctx, cluster, est),
// honoring opts.DisableLattice (direct reference build, never cached).
// Results are cached only for estimators that guarantee immutable
// predictions (cost.Frozen): snapshots and oracles hit across repeated
// schedules of one graph; a mutable learned model is resolved fresh every
// call so later observations are never masked by a stale table.
func latticeFor(ctx *scheduleContext, cluster *device.Cluster,
	est cost.Estimator, opts Options) *costLattice {
	if opts.DisableLattice {
		return buildLattice(ctx, cluster.Devices(), est, false)
	}
	if !cost.IsFrozen(est) {
		return buildLattice(ctx, cluster.Devices(), est, true)
	}
	latCache.Lock()
	for i := range latCache.entries {
		e := &latCache.entries[i]
		if e.ctx == ctx && e.cluster == cluster && e.est == est && !ctx.stale() {
			l := e.lat
			latCache.Unlock()
			return l
		}
	}
	latCache.Unlock()

	l := buildLattice(ctx, cluster.Devices(), est, true)

	latCache.Lock()
	slot := -1
	for i := range latCache.entries {
		e := &latCache.entries[i]
		if e.ctx == ctx && e.cluster == cluster && e.est == est {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = latCache.next
		latCache.next = (latCache.next + 1) % latCacheSize
	}
	latCache.entries[slot] = latEntry{ctx: ctx, cluster: cluster, est: est, lat: l}
	latCache.Unlock()
	return l
}
