package core

import (
	"fmt"
	"sort"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// SplitResult is the output of OS-DPOS: the rewritten graph (with accepted
// splits applied), its schedule, and the split list SP[].
type SplitResult struct {
	// Graph is the final computation graph after all accepted splits.
	Graph *graph.Graph
	// Schedule is the DPOS schedule of Graph.
	Schedule *Schedule
	// Splits is the accepted operation split list SP[] of Alg. 2.
	Splits []graph.SplitDecision
	// Evaluated counts candidate (dimension, split count) DPOS evaluations
	// performed, for strategy-computation-time analysis (Table 4).
	Evaluated int
}

// splitCand is one (dimension, split count) candidate for a CP op.
type splitCand struct {
	dim graph.SplitDim
	n   int
}

// candResult is the outcome of one candidate evaluation; s == nil marks a
// candidate that could not be built or scheduled.
type candResult struct {
	g *graph.Graph
	s *Schedule
}

// OSDPOS implements Alg. 2 (Operation Splitting DPOS): run DPOS, compute
// the placement-aware critical path, then walk its operations in descending
// computation time, trying every parallelizable dimension and split count;
// a split is kept only if it strictly reduces the finish time of the exit
// operation, and the walk stops at the first operation whose best split
// does not improve it.
//
// The candidate (dimension, split count) evaluations for one operation are
// independent — each clones the graph and runs a full DPOS — so they fan
// out across opts.Workers goroutines. The winner is reduced from the
// position-indexed results in enumeration order with a strictly-less
// comparison, which reproduces the sequential first-minimum choice exactly:
// any worker count returns byte-identical strategies.
func OSDPOS(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*SplitResult, error) {
	est = cost.ReadSnapshot(est)
	ctx, err := contextFor(g)
	if err != nil {
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	mc := newMaxCommCache(cluster, est)
	ranks := computeRanksCtx(ctx, cluster, est, mc)
	sched, err := dposCtx(ctx, cluster, est, opts, ranks)
	releaseRanks(ranks)
	if err != nil {
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	res := &SplitResult{Graph: g, Schedule: sched}
	ftOld := sched.Makespan

	// Critical path based on S_new and G (Alg. 2 line 4): ranks evaluated
	// at the placed devices rather than worst-case maxima.
	cp, execOnPlaced := placedCriticalPath(ctx, cluster, est, sched)
	// Sort CP by descending computation time (line 5).
	sort.SliceStable(cp, func(a, b int) bool {
		return execOnPlaced[cp[a]] > execOnPlaced[cp[b]]
	})

	numDev := cluster.NumDevices()
	workers := opts.workers()
	attempted := 0
	for _, cpID := range cp {
		opName := g.Op(cpID).Name // names survive rewrites; IDs do not
		cur, ok := res.Graph.OpByName(opName)
		if !ok {
			continue // replaced by an earlier accepted split
		}
		dims := cur.SplittableDims()
		if len(dims) == 0 || numDev < 2 {
			continue
		}
		if opts.MaxSplitOps > 0 && attempted >= opts.MaxSplitOps {
			break
		}
		attempted++

		// Enumerate candidates in the canonical (dim order, ascending n)
		// order the reduce below depends on.
		cands := make([]splitCand, 0, len(dims)*(numDev-1))
		for _, dim := range dims {
			for n := 2; n <= numDev; n++ {
				cands = append(cands, splitCand{dim: dim, n: n})
			}
		}
		results := make([]candResult, len(cands))
		base, curID := res.Graph, cur.ID
		runParallel(len(cands), workers, func(i int) {
			c := cands[i]
			candidate, err := graph.SplitOperation(base, curID, c.dim, c.n)
			if err != nil {
				return // extent too small for this n, etc.
			}
			s, err := dposFresh(candidate, cluster, est, opts, mc)
			if err != nil {
				return // infeasible under memory constraints
			}
			results[i] = candResult{g: candidate, s: s}
		})

		var (
			bestFT    time.Duration
			bestGraph *graph.Graph
			bestSched *Schedule
			bestDec   graph.SplitDecision
			found     bool
		)
		for i := range results {
			r := results[i]
			if r.s == nil {
				continue
			}
			res.Evaluated++
			if !found || r.s.Makespan < bestFT {
				releaseSchedule(bestSched)
				found = true
				bestFT = r.s.Makespan
				bestGraph = r.g
				bestSched = r.s
				bestDec = graph.SplitDecision{OpName: opName, Dim: cands[i].dim, N: cands[i].n}
			} else {
				releaseSchedule(r.s)
			}
		}
		if !found {
			continue
		}
		if bestFT < ftOld {
			ftOld = bestFT
			releaseSchedule(res.Schedule)
			res.Graph = bestGraph
			res.Schedule = bestSched
			res.Splits = append(res.Splits, bestDec)
		} else {
			// First non-improving operation ends the exploration
			// (Alg. 2 lines 11-13).
			releaseSchedule(bestSched)
			break
		}
	}
	return res, nil
}

// placedCriticalPath recomputes the critical path using the actual
// placement: w_i is the execution time on the op's assigned device, and
// edge costs are the transfer times between the assigned devices. It
// returns the path and the per-op placed execution times.
func placedCriticalPath(ctx *scheduleContext, cluster *device.Cluster,
	est cost.Estimator, sched *Schedule) ([]int, []time.Duration) {
	g := ctx.g
	n := g.NumOps()
	exec := make([]time.Duration, n)
	for _, op := range g.Ops() {
		exec[op.ID] = est.Exec(op, cluster.Device(sched.Placement[op.ID]))
	}
	rank := make([]time.Duration, n)
	edges := g.Edges()
	for i := len(ctx.topo) - 1; i >= 0; i-- {
		id := ctx.topo[i]
		var best time.Duration
		for _, ei := range ctx.outIdx[id] {
			e := edges[ei]
			comm := est.Comm(e.Bytes,
				cluster.Device(sched.Placement[e.From]),
				cluster.Device(sched.Placement[e.To]))
			if v := comm + rank[e.To]; v > best {
				best = v
			}
		}
		rank[id] = exec[id] + best
	}
	r := &Ranks{W: exec, Rank: rank}
	return criticalPathCtx(ctx, r), exec
}
