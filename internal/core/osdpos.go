package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// SplitResult is the output of OS-DPOS: the rewritten graph (with accepted
// splits applied), its schedule, and the split list SP[].
type SplitResult struct {
	// Graph is the final computation graph after all accepted splits.
	Graph *graph.Graph
	// Schedule is the DPOS schedule of Graph.
	Schedule *Schedule
	// Splits is the accepted operation split list SP[] of Alg. 2.
	Splits []graph.SplitDecision
	// Evaluated counts candidate (dimension, split count) DPOS evaluations
	// run to completion, for strategy-computation-time analysis (Table 4).
	// With concurrent workers the live shared bound can abort a candidate
	// the sequential pass would have finished, so the Evaluated/Pruned
	// split (never the strategy) may vary with worker count and timing;
	// Evaluated never exceeds the sequential pass's count.
	Evaluated int
	// Pruned counts candidate evaluations aborted early because a lower
	// bound on their makespan proved they could not beat the incumbent
	// (Table 4). Always 0 with Options.DisablePruning.
	Pruned int
	// Speculated counts candidate evaluations enqueued ahead of their
	// round's commit point — work started against a predicted (not yet
	// committed) winner of the previous round. Like Evaluated/Pruned at
	// Workers > 1, the count is timing-dependent (the committed strategy
	// never is). Always 0 at Workers <= 1 or with DisableSpeculation.
	Speculated int
	// Mispredicted counts speculative evaluations discarded because the
	// predicted winner they were evaluated against lost the deterministic
	// reduce; the affected round re-runs against the actual winner.
	Mispredicted int
	// Seeded reports that Options.Seed was evaluated on the target cluster
	// and its exact makespan (SeedBound) tightened the initial incumbent
	// bound of every round. False when no seed was given or when the seed
	// failed to materialize or schedule (the search then ran cold).
	Seeded bool
	// SeedBound is the seed strategy's DPOS-evaluated makespan on the
	// target cluster — the warm incumbent the search had to beat.
	SeedBound time.Duration
	// SeedWon reports that no candidate beat the seed bound: the result is
	// the re-materialized seed strategy itself rather than a searched one.
	SeedWon bool
}

// splitCand is one (dimension, split count) candidate for a CP op.
type splitCand struct {
	dim graph.SplitDim
	n   int
}

// candOutcome is the result of one candidate evaluation. Completed
// candidates retain their pooled schedule until the round's reduce: the
// winner's is adopted as the schedule of the materialized graph (a completed
// bounded run is exact, and the overlay and clone paths produce schedules
// byte-identical to a fresh pass over the materialized clone — the
// equivalence the incremental tests pin down), and the losers' are released.
type candOutcome struct {
	makespan time.Duration
	sched    *Schedule     // retained on ok; released by the reduce
	ok       bool          // scheduled to completion
	pruned   bool          // aborted by the makespan bound
	bound    time.Duration // the bound in effect at the abort (pruned only)
}

// releaseOutcomes returns every retained candidate schedule to the pool.
func releaseOutcomes(results []candOutcome) {
	for i := range results {
		if results[i].sched != nil {
			releaseSchedule(results[i].sched)
			results[i].sched = nil
		}
	}
}

// compactWinner rewrites a winner schedule produced in an overlay's ID space
// (dead target slot in place, delta ops appended) into the compact ID space
// of the materialized SplitOperation graph, following the overlay's strictly
// monotone CloneID map: IDs below the dead slot are unchanged, IDs above it
// shift down by one. O(nOps), replacing the full DPOS pass the materialized
// winner would otherwise pay to recompute a schedule already in hand.
func compactWinner(s *Schedule, dead int) *Schedule {
	n := len(s.Placement) - 1
	out := scheduleFromPool(n)
	out.Makespan = s.Makespan
	for id := 0; id <= n; id++ {
		if id == dead {
			continue
		}
		c := id
		if id > dead {
			c = id - 1
		}
		out.Placement[c] = s.Placement[id]
		out.Start[c] = s.Start[id]
		out.Finish[c] = s.Finish[id]
	}
	k := 0
	for _, id := range s.Order {
		if id == dead {
			continue
		}
		if id > dead {
			id--
		}
		out.Order[k] = id
		k++
	}
	for i, id := range out.Order {
		out.Priorities[id] = i
	}
	if len(s.CriticalPath) > 0 {
		cp := make([]int, 0, len(s.CriticalPath))
		for _, id := range s.CriticalPath {
			if id == dead {
				continue
			}
			if id > dead {
				id--
			}
			cp = append(cp, id)
		}
		out.CriticalPath = cp
	}
	releaseSchedule(s)
	return out
}

// publishIncumbent lowers the shared live bound to m if m is smaller,
// racing CAS-free against other workers doing the same.
func publishIncumbent(live *atomic.Int64, m time.Duration) {
	for {
		cur := live.Load()
		if int64(m) >= cur || live.CompareAndSwap(cur, int64(m)) {
			return
		}
	}
}

// roundPlan is one statically planned round of the OS-DPOS walk: the
// critical-path operation (by name — names survive graph rewrites, IDs do
// not) and its full candidate grid in the canonical (dimension order,
// ascending split count) enumeration order the deterministic reduce
// depends on.
type roundPlan struct {
	opName string
	cands  []splitCand
}

// buildPlan enumerates the whole (critical-path op × dimension × split
// count) candidate grid up front. The plan is valid for every future round
// regardless of which splits get accepted: op names are unique and the
// sub-ops a split introduces take "/partN_of_M"-style suffixed names, so a
// planned target can never collide with or be removed by an earlier
// round's rewrite, and SplittableDims depends only on the op's own fields,
// which rewrites copy verbatim. This is what lets the concurrent search
// queue later rounds' candidates before earlier rounds commit.
//
// Eligibility and the MaxSplitOps cap mirror the sequential walk exactly:
// ops with no splittable dimension are skipped without consuming budget.
func buildPlan(g *graph.Graph, cp []int, numDev, maxSplitOps int) []roundPlan {
	var plan []roundPlan
	if numDev < 2 {
		return nil
	}
	for _, cpID := range cp {
		op := g.Op(cpID)
		dims := op.SplittableDims()
		if len(dims) == 0 {
			continue
		}
		if maxSplitOps > 0 && len(plan) >= maxSplitOps {
			break
		}
		cands := make([]splitCand, 0, len(dims)*(numDev-1))
		for _, dim := range dims {
			for n := 2; n <= numDev; n++ {
				cands = append(cands, splitCand{dim: dim, n: n})
			}
		}
		plan = append(plan, roundPlan{opName: op.Name, cands: cands})
	}
	return plan
}

// roundBase is the immutable-during-fan-out state one round's candidates
// are evaluated against: the current graph, its cached scheduling context,
// dense cost lattice and ranks, the split target resolved in that graph,
// and the incumbent makespan the round must strictly beat.
type roundBase struct {
	g     *graph.Graph
	ctx   *scheduleContext
	lat   *costLattice
	ranks *Ranks
	anc   []bool // ancestors of curID (incremental path only)
	curID int    // split target op ID in g; -1 when unresolved
	ftOld time.Duration
}

// osdposRun carries one OSDPOS call's invariants across its rounds.
type osdposRun struct {
	ctx     context.Context
	cluster *device.Cluster
	devs    []*device.Device
	est     cost.Estimator
	opts    Options
	pool    *workPool
	plan    []roundPlan
	specOn  bool
	res     *SplitResult
}

// ctxErr reports the run's cancellation state. It is checked between
// candidate evaluations and at every round boundary, so cancellation latency
// is bounded by one DPOS candidate pass (milliseconds), never a whole
// search.
func (o *osdposRun) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

// retarget resolves plan[planIdx]'s operation in b.g and refreshes the
// ancestor mask. The lookup cannot fail (see buildPlan); the -1 guard only
// makes a violated invariant fail closed as an all-infeasible round.
func (o *osdposRun) retarget(b *roundBase, planIdx int) {
	b.curID, b.anc = -1, nil
	if planIdx >= len(o.plan) {
		return
	}
	if cur, ok := b.g.OpByName(o.plan[planIdx].opName); ok {
		b.curID = cur.ID
		if !o.opts.DisableIncremental {
			b.anc = ancestorsOf(b.ctx, b.curID)
		}
	}
}

// makeBase materializes graph g into the evaluation base for round planIdx
// with incumbent ftOld. The returned base's ranks come from the pool; the
// committer (or cancelChain) releases them.
func (o *osdposRun) makeBase(g *graph.Graph, planIdx int, ftOld time.Duration) (*roundBase, error) {
	ctx, err := contextFor(g)
	if err != nil {
		return nil, err
	}
	lat := latticeFor(ctx, o.cluster, o.est, o.opts)
	b := &roundBase{g: g, ctx: ctx, lat: lat, ranks: computeRanksCtx(ctx, lat), ftOld: ftOld}
	o.retarget(b, planIdx)
	return b, nil
}

// evalCand runs one candidate against base b under the static bound and
// (optionally) a live shared incumbent. All base state is read-only during
// a fan-out, so any number of evalCand calls — across workers AND across
// concurrently speculating rounds — may run at once.
func (o *osdposRun) evalCand(b *roundBase, c splitCand, bound time.Duration, live *atomic.Int64) candOutcome {
	var s *Schedule
	var err error
	if o.opts.DisableIncremental {
		var candidate *graph.Graph
		candidate, err = graph.SplitOperation(b.g, b.curID, c.dim, c.n)
		if err != nil {
			return candOutcome{} // extent too small for this n, etc.
		}
		s, err = dposFresh(candidate, o.cluster, o.est, o.opts, bound, live)
	} else {
		var ov *graph.SplitOverlay
		ov, err = graph.NewSplitOverlay(b.g, b.curID, c.dim, c.n)
		if err != nil {
			return candOutcome{}
		}
		octx := overlayContext(b.ctx, ov)
		var clat *costLattice
		if o.opts.DisableLattice {
			clat = buildLattice(octx, o.devs, o.est, false)
		} else {
			clat = extendLattice(b.lat, octx, o.devs, o.est)
		}
		ranks := deltaRanksOverlay(b.ctx, b.ranks, octx, b.anc, clat)
		s, err = dposCtx(octx, o.cluster, clat, o.opts, ranks, bound, live)
		releaseRanks(ranks)
		if !o.opts.DisableLattice {
			releaseLattice(clat)
		}
		releaseOverlayContext(octx)
	}
	if err != nil {
		var pe *prunedError
		if errors.As(err, &pe) {
			return candOutcome{pruned: true, bound: pe.bound}
		}
		return candOutcome{} // infeasible under memory constraints
	}
	if live != nil {
		publishIncumbent(live, s.Makespan)
	}
	return candOutcome{makespan: s.Makespan, sched: s, ok: true}
}

// reduceRound is the deterministic commit point shared by the sequential
// reference and every concurrent mode: reduce position-indexed results in
// enumeration order with a strictly-less comparison, resolve live-bound
// ties back to the sequential first-minimum winner, and decide the round's
// fate. Returns the winning index (-1 when no candidate completed) and
// whether the exploration stops after this round (Alg. 2's first
// non-improving operation). When bestIdx < 0, no outcome retains a
// schedule on return.
func (o *osdposRun) reduceRound(b *roundBase, cands []splitCand, results []candOutcome, liveUsed bool) (bestIdx int, stop bool) {
	bestIdx = -1
	var bestFT time.Duration
	evaluated, pruned := 0, 0
	for i, r := range results {
		if r.pruned {
			pruned++
			continue
		}
		if !r.ok {
			continue
		}
		evaluated++
		if bestIdx < 0 || r.makespan < bestFT {
			bestIdx = i
			bestFT = r.makespan
		}
	}

	// Deterministic tie resolution for the live bound: a pruned
	// candidate's makespan is >= its abort bound, and abort bounds
	// never drop below the round's final minimum (only completed
	// makespans are published), so exactly the candidates aborted at
	// bound == bestFT could have tied it. The sequential reference
	// prefers the earliest tie, so re-run those before the provisional
	// winner under bestFT+1: completion proves makespan == bestFT.
	if liveUsed && bestIdx > 0 {
		for i := 0; i < bestIdx; i++ {
			if !results[i].pruned || results[i].bound != bestFT {
				continue
			}
			full := o.evalCand(b, cands[i], bestFT+1, nil)
			if full.ok {
				results[i] = full
				evaluated++
				pruned--
				bestIdx = i
				break
			}
		}
	}

	if bestIdx < 0 && pruned > 0 {
		// Every candidate was pruned or infeasible. Whether Alg. 2
		// continues to the next CP op (all infeasible) or stops (some
		// candidate completes, necessarily at >= ftOld) depends on
		// information pruning discarded, so re-evaluate the pruned
		// candidates without a bound, in canonical order, until one
		// completes. This path is rare — it needs every completing
		// candidate of an op to be non-improving AND pruning to fire
		// before each one finishes. (No candidate completed, so the
		// live incumbent never moved off ftOld and the pruned set
		// matches the sequential pass's exactly.)
		completed := false
		for i, r := range results {
			if !r.pruned {
				continue
			}
			full := o.evalCand(b, cands[i], 0, nil)
			pruned--
			if full.ok {
				releaseSchedule(full.sched)
				evaluated++
				completed = true
				break
			}
			// Pruned earlier but infeasible when run to completion:
			// the clone path would have counted it nowhere either.
		}
		o.res.Evaluated += evaluated
		o.res.Pruned += pruned
		return -1, completed
	}
	o.res.Evaluated += evaluated
	o.res.Pruned += pruned
	if bestIdx < 0 {
		return -1, false // every candidate infeasible: try the next CP op
	}
	if bestFT >= b.ftOld {
		// First non-improving operation ends the exploration (Alg. 2
		// lines 11-13). Unreachable with pruning active: a completed
		// candidate beat the bound by construction.
		releaseOutcomes(results)
		return -1, true
	}
	return bestIdx, false
}

// commitWinner materializes the accepted winner of round planIdx as a real
// graph, adopts the schedule its evaluation already produced (a completed
// bounded run is exact, and overlay and clone candidate schedules are
// byte-identical to a fresh pass over the materialized clone, so
// rescheduling would recompute the same bytes), records the split, and
// returns the base for round planIdx+1.
func (o *osdposRun) commitWinner(b *roundBase, cands []splitCand, results []candOutcome,
	bestIdx, planIdx int) (*roundBase, error) {
	wsched := results[bestIdx].sched
	results[bestIdx].sched = nil
	releaseOutcomes(results)
	if !o.opts.DisableIncremental {
		// Overlay schedules live in the overlay's ID space; the clone
		// reference path already produces the compact layout.
		wsched = compactWinner(wsched, b.curID)
	}
	winner, err := graph.SplitOperation(b.g, b.curID, cands[bestIdx].dim, cands[bestIdx].n)
	if err != nil {
		releaseSchedule(wsched)
		return nil, fmt.Errorf("materialize split: %w", err)
	}
	nb, err := o.makeBase(winner, planIdx+1, wsched.Makespan)
	if err != nil {
		releaseSchedule(wsched)
		return nil, fmt.Errorf("materialize split: %w", err)
	}
	o.adopt(b, nb, wsched, cands[bestIdx], planIdx)
	return nb, nil
}

// adopt installs a committed winner: the new graph and schedule become the
// result, the split is recorded, and the previous base's pooled ranks are
// released.
func (o *osdposRun) adopt(old, nb *roundBase, wsched *Schedule, c splitCand, planIdx int) {
	releaseSchedule(o.res.Schedule)
	o.res.Graph = nb.g
	o.res.Schedule = wsched
	o.res.Splits = append(o.res.Splits, graph.SplitDecision{
		OpName: o.plan[planIdx].opName, Dim: c.dim, N: c.n,
	})
	releaseRanks(old.ranks)
}

// runSequential is the literal sequential reference (Workers <= 1): rounds
// run one after another on the calling goroutine, candidates in
// enumeration order under the static incumbent bound only. Every
// concurrent mode must reproduce its committed strategy byte for byte.
func (o *osdposRun) runSequential(base *roundBase) (*roundBase, error) {
	for k := 0; k < len(o.plan); k++ {
		cands := o.plan[k].cands
		bound := base.ftOld
		if o.opts.DisablePruning {
			bound = 0
		}
		results := make([]candOutcome, len(cands))
		for i := range cands {
			if o.ctxErr() != nil {
				break
			}
			results[i] = o.evalCand(base, cands[i], bound, nil)
		}
		if err := o.ctxErr(); err != nil {
			releaseOutcomes(results)
			return base, err
		}
		bestIdx, stop := o.reduceRound(base, cands, results, false)
		if stop {
			break
		}
		if bestIdx < 0 {
			o.retarget(base, k+1)
			continue
		}
		nb, err := o.commitWinner(base, cands, results, bestIdx, k)
		if err != nil {
			return base, err
		}
		base = nb
	}
	return base, nil
}

// OSDPOS implements Alg. 2 (Operation Splitting DPOS): run DPOS, compute
// the placement-aware critical path, then walk its operations in descending
// computation time, trying every parallelizable dimension and split count;
// a split is kept only if it strictly reduces the finish time of the exit
// operation, and the walk stops at the first operation whose best split
// does not improve it.
//
// The walk's rounds are planned statically up front (buildPlan) as a flat
// (critical-path op × dimension × split count) candidate grid. With
// Workers > 1 the grid drains through a work-stealing pool of per-worker
// deques, and rounds pipeline speculatively (see spec.go): as soon as some
// round-k candidate completes below the incumbent, round k+1's candidates
// are enqueued against that predicted winner, so workers never idle on a
// small round's barrier. Each candidate is evaluated incrementally: a
// copy-on-write graph.SplitOverlay records the rewrite as a delta,
// overlayContext patches the cached edge indexes in O(Δ), extendLattice
// patches the dense cost lattice in O(Δ), deltaRanksOverlay reuses the
// base ranks everywhere outside the rewritten region and the target's
// ancestors, and dposCtx runs under the incumbent-makespan bound so
// hopeless candidates abort early. With workers > 1 the bound is *live*:
// every completed candidate publishes its makespan to a shared per-round
// atomic and in-flight candidates prune against the tightest value, so one
// cheap improving candidate aborts its round-mates mid-run.
//
// Rounds commit strictly in plan order through the deterministic reduce
// (reduceRound): position-indexed results in enumeration order, a
// strictly-less comparison, live-bound ties resolved back to the
// first-minimum winner, and a speculative round's results are only ever
// adopted when its predicted base equals the committed winner — otherwise
// they are discarded and re-evaluated. Any worker count, with speculation
// on or off, overlays or clones, pruning on or off, lattice or direct
// estimator, returns byte-identical strategies.
func OSDPOS(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*SplitResult, error) {
	return OSDPOSCtx(context.Background(), g, cluster, est, opts)
}

// OSDPOSCtx is OSDPOS under a context: cancelling ctx aborts the candidate
// search at the next candidate or round boundary and returns ctx.Err(). The
// per-request timeouts of the strategy service and Ctrl-C on `fastt compute`
// both arrive here. A nil ctx means context.Background().
func OSDPOSCtx(ctx context.Context, g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*SplitResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	est = cost.ReadSnapshot(est)
	baseCtx, err := contextFor(g)
	if err != nil {
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	baseLat := latticeFor(baseCtx, cluster, est, opts)
	baseRanks := computeRanksCtx(baseCtx, baseLat)
	sched, err := dposCtx(baseCtx, cluster, baseLat, opts, baseRanks, 0, nil)
	if err != nil {
		releaseRanks(baseRanks)
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	res := &SplitResult{Graph: g, Schedule: sched}

	// Warm start (Theorem 1's pruning argument applied across searches):
	// a caller-supplied prior strategy is evaluated once for an exact
	// feasible makespan, and the walk's incumbent starts at
	// min(initial DPOS, seed). Every commit strictly beats the incumbent,
	// so the first commit already beats the seed and from then on the
	// seeded and cold walks carry identical incumbents — the committed
	// strategy is byte-identical to the cold search's. When nothing beats
	// the seed, the re-materialized seed itself is the result (SeedWon).
	var seedGraph *graph.Graph
	var seedSched *Schedule
	if opts.Seed != nil {
		seedGraph, seedSched, err = evalSeed(g, cluster, est, opts)
		if err != nil {
			releaseRanks(baseRanks)
			releaseSchedule(sched)
			return nil, err
		}
		if seedSched != nil {
			res.Seeded = true
			res.SeedBound = seedSched.Makespan
		}
	}
	ftOld := sched.Makespan
	if seedSched != nil && seedSched.Makespan < ftOld {
		ftOld = seedSched.Makespan
	}

	// Critical path based on S_new and G (Alg. 2 line 4): ranks evaluated
	// at the placed devices rather than worst-case maxima.
	cp, placedRanks := placedCriticalPath(baseCtx, baseLat, sched)
	// Sort CP by descending computation time (line 5).
	execOnPlaced := placedRanks.W
	sort.SliceStable(cp, func(a, b int) bool {
		return execOnPlaced[cp[a]] > execOnPlaced[cp[b]]
	})
	releaseRanks(placedRanks)

	pool := newWorkPool(opts.workers())
	defer pool.close()
	o := &osdposRun{
		ctx:     ctx,
		cluster: cluster,
		devs:    cluster.Devices(),
		est:     est,
		opts:    opts,
		pool:    pool,
		plan:    buildPlan(g, cp, cluster.NumDevices(), opts.MaxSplitOps),
		specOn:  pool != nil && !opts.DisableSpeculation,
		res:     res,
	}
	base := &roundBase{g: g, ctx: baseCtx, lat: baseLat, ranks: baseRanks, ftOld: ftOld}
	o.retarget(base, 0)

	var final *roundBase
	if pool == nil {
		final, err = o.runSequential(base)
	} else {
		final, err = o.runPooled(base)
	}
	if final != nil {
		releaseRanks(final.ranks)
	}
	if err != nil {
		if seedSched != nil {
			releaseSchedule(seedSched)
		}
		return nil, err
	}
	if seedSched != nil {
		if seedSched.Makespan < res.Schedule.Makespan {
			// No candidate beat the seed (a commit would have): fall back
			// to the re-materialized seed strategy.
			releaseSchedule(res.Schedule)
			res.Graph = seedGraph
			res.Schedule = seedSched
			res.Splits = append([]graph.SplitDecision(nil), opts.Seed.Splits...)
			res.SeedWon = true
		} else {
			releaseSchedule(seedSched)
		}
	}
	return res, nil
}

// evalSeed validates and evaluates Options.Seed for OSDPOSCtx: the split
// list is re-applied to the base graph and the result scheduled with one
// unbounded DPOS pass on the target cluster — a fresh placement, so a seed
// computed for a differently-sized cluster (elastic grow, fault-recovery
// shrink) needs no device remapping to stay feasible. A fingerprint
// mismatch is the caller's bug and errors out; a seed that no longer
// materializes or schedules (memory infeasible on the shrunken cluster)
// returns nils and the search runs cold.
func evalSeed(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*graph.Graph, *Schedule, error) {
	seed := opts.Seed
	fp := opts.fingerprint
	if fp == "" {
		fp = strategy.Fingerprint(g)
	}
	if seed.Fingerprint != fp {
		return nil, nil, fmt.Errorf("seed strategy: %w: seed %s, graph %s",
			strategy.ErrFingerprint, seed.Fingerprint, fp)
	}
	sg, err := seed.Materialize(g)
	if err != nil {
		return nil, nil, nil
	}
	opts.Seed = nil
	sched, err := dposFresh(sg, cluster, est, opts, 0, nil)
	if err != nil {
		return nil, nil, nil
	}
	return sg, sched, nil
}

// placedCriticalPath recomputes the critical path using the actual
// placement: w_i is the execution time on the op's assigned device, and
// edge costs are the transfer times between the assigned devices, all read
// from the dense lattice. It returns the path and a pooled Ranks whose W
// holds the per-op placed execution times; the caller releases it.
func placedCriticalPath(ctx *scheduleContext, lat *costLattice, sched *Schedule) ([]int, *Ranks) {
	n := ctx.nOps
	r := ranksFromPool(n, 0)
	exec, rank := r.W, r.Rank
	for id := 0; id < n; id++ {
		exec[id] = lat.execAt(id, sched.Placement[id])
	}
	for i := len(ctx.topo) - 1; i >= 0; i-- {
		id := ctx.topo[i]
		var best time.Duration
		for _, ei := range ctx.outIdx[id] {
			e := ctx.edgeAt(ei)
			comm := lat.commAt(ei, sched.Placement[e.From], sched.Placement[e.To])
			if v := comm + rank[e.To]; v > best {
				best = v
			}
		}
		rank[id] = exec[id] + best
	}
	return criticalPathCtx(ctx, r), r
}
