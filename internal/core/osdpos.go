package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// SplitResult is the output of OS-DPOS: the rewritten graph (with accepted
// splits applied), its schedule, and the split list SP[].
type SplitResult struct {
	// Graph is the final computation graph after all accepted splits.
	Graph *graph.Graph
	// Schedule is the DPOS schedule of Graph.
	Schedule *Schedule
	// Splits is the accepted operation split list SP[] of Alg. 2.
	Splits []graph.SplitDecision
	// Evaluated counts candidate (dimension, split count) DPOS evaluations
	// run to completion, for strategy-computation-time analysis (Table 4).
	Evaluated int
	// Pruned counts candidate evaluations aborted early because a lower
	// bound on their makespan proved they could not beat the incumbent
	// (Table 4). Always 0 with Options.DisablePruning.
	Pruned int
}

// splitCand is one (dimension, split count) candidate for a CP op.
type splitCand struct {
	dim graph.SplitDim
	n   int
}

// candOutcome is the result of one candidate evaluation. Only the makespan
// survives — candidate schedules are discarded and the single accepted
// winner is re-materialized, which keeps the overlay fast path and the
// clone reference path behaviorally interchangeable.
type candOutcome struct {
	makespan time.Duration
	ok       bool // scheduled to completion
	pruned   bool // aborted by the makespan bound
}

// OSDPOS implements Alg. 2 (Operation Splitting DPOS): run DPOS, compute
// the placement-aware critical path, then walk its operations in descending
// computation time, trying every parallelizable dimension and split count;
// a split is kept only if it strictly reduces the finish time of the exit
// operation, and the walk stops at the first operation whose best split
// does not improve it.
//
// The candidate (dimension, split count) evaluations for one operation are
// independent, so they fan out across opts.Workers goroutines. Each
// candidate is evaluated incrementally: a copy-on-write graph.SplitOverlay
// records the rewrite as a delta, overlayContext patches the cached edge
// indexes in O(Δ), deltaRanksOverlay reuses the base ranks everywhere
// outside the rewritten region and the target's ancestors, and dposCtx runs
// under the incumbent-makespan bound so hopeless candidates abort early.
// Only the accepted winner of a round is materialized into a real graph
// (and rescheduled without a bound, through exactly the code path a clone
// evaluation takes). The winner is reduced from the position-indexed
// results in enumeration order with a strictly-less comparison, which
// reproduces the sequential first-minimum choice exactly: any worker count,
// with overlays or clones, pruning on or off, returns byte-identical
// strategies.
func OSDPOS(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*SplitResult, error) {
	est = cost.ReadSnapshot(est)
	baseCtx, err := contextFor(g)
	if err != nil {
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	mc := newMaxCommCache(cluster, est)
	baseRanks := computeRanksCtx(baseCtx, cluster, est, mc)
	sched, err := dposCtx(baseCtx, cluster, est, opts, baseRanks, 0)
	if err != nil {
		releaseRanks(baseRanks)
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	defer func() { releaseRanks(baseRanks) }()
	res := &SplitResult{Graph: g, Schedule: sched}
	ftOld := sched.Makespan

	// Critical path based on S_new and G (Alg. 2 line 4): ranks evaluated
	// at the placed devices rather than worst-case maxima.
	cp, placedRanks := placedCriticalPath(baseCtx, cluster, est, sched)
	// Sort CP by descending computation time (line 5).
	execOnPlaced := placedRanks.W
	sort.SliceStable(cp, func(a, b int) bool {
		return execOnPlaced[cp[a]] > execOnPlaced[cp[b]]
	})
	releaseRanks(placedRanks)

	numDev := cluster.NumDevices()
	workers := opts.workers()
	attempted := 0
	for _, cpID := range cp {
		opName := g.Op(cpID).Name // names survive rewrites; IDs do not
		cur, ok := res.Graph.OpByName(opName)
		if !ok {
			continue // replaced by an earlier accepted split
		}
		dims := cur.SplittableDims()
		if len(dims) == 0 || numDev < 2 {
			continue
		}
		if opts.MaxSplitOps > 0 && attempted >= opts.MaxSplitOps {
			break
		}
		attempted++

		// Enumerate candidates in the canonical (dim order, ascending n)
		// order the reduce below depends on.
		cands := make([]splitCand, 0, len(dims)*(numDev-1))
		for _, dim := range dims {
			for n := 2; n <= numDev; n++ {
				cands = append(cands, splitCand{dim: dim, n: n})
			}
		}
		base, curID := res.Graph, cur.ID
		// The pruning bound is the incumbent makespan: only candidates
		// strictly below it can ever be accepted.
		bound := ftOld
		if opts.DisablePruning {
			bound = 0
		}
		var anc []bool
		if !opts.DisableIncremental {
			anc = ancestorsOf(baseCtx, curID)
		}
		// eval runs one candidate; shared state (baseCtx, baseRanks, anc,
		// mc, the estimator snapshot) is read-only during the fan-out.
		eval := func(c splitCand, bound time.Duration) candOutcome {
			var s *Schedule
			var err error
			if opts.DisableIncremental {
				var candidate *graph.Graph
				candidate, err = graph.SplitOperation(base, curID, c.dim, c.n)
				if err != nil {
					return candOutcome{} // extent too small for this n, etc.
				}
				s, err = dposFresh(candidate, cluster, est, opts, mc, bound)
			} else {
				var ov *graph.SplitOverlay
				ov, err = graph.NewSplitOverlay(base, curID, c.dim, c.n)
				if err != nil {
					return candOutcome{}
				}
				octx := overlayContext(baseCtx, ov)
				ranks := deltaRanksOverlay(baseCtx, baseRanks, octx, anc, cluster, est, mc)
				s, err = dposCtx(octx, cluster, est, opts, ranks, bound)
				releaseRanks(ranks)
				releaseOverlayContext(octx)
			}
			if err != nil {
				if errors.Is(err, errPruned) {
					return candOutcome{pruned: true}
				}
				return candOutcome{} // infeasible under memory constraints
			}
			out := candOutcome{makespan: s.Makespan, ok: true}
			releaseSchedule(s)
			return out
		}

		results := make([]candOutcome, len(cands))
		runParallel(len(cands), workers, func(i int) {
			results[i] = eval(cands[i], bound)
		})

		bestIdx := -1
		var bestFT time.Duration
		pruned := 0
		for i, r := range results {
			if r.pruned {
				pruned++
				continue
			}
			if !r.ok {
				continue
			}
			res.Evaluated++
			if bestIdx < 0 || r.makespan < bestFT {
				bestIdx = i
				bestFT = r.makespan
			}
		}

		if bestIdx < 0 && pruned > 0 {
			// Every candidate was pruned or infeasible. Whether Alg. 2
			// continues to the next CP op (all infeasible) or stops (some
			// candidate completes, necessarily at >= ftOld) depends on
			// information pruning discarded, so re-evaluate the pruned
			// candidates without a bound, in canonical order, until one
			// completes. This path is rare — it needs every completing
			// candidate of an op to be non-improving AND pruning to fire
			// before each one finishes.
			completed := false
			for i, r := range results {
				if !r.pruned {
					continue
				}
				full := eval(cands[i], 0)
				pruned--
				if full.ok {
					res.Evaluated++
					completed = true
					break
				}
				// Pruned earlier but infeasible when run to completion:
				// the clone path would have counted it nowhere either.
			}
			res.Pruned += pruned
			if completed {
				break // first non-improving operation ends the exploration
			}
			continue
		}
		res.Pruned += pruned
		if bestIdx < 0 {
			continue // every candidate infeasible: try the next CP op
		}
		if bestFT >= ftOld {
			// First non-improving operation ends the exploration (Alg. 2
			// lines 11-13). Unreachable with pruning active: a completed
			// candidate beat the bound by construction.
			break
		}

		// Materialize the single accepted winner as a real graph and
		// reschedule it unbounded — the same construction and scheduling
		// path a clone evaluation takes, so the retained strategy is
		// byte-identical to the clone-everything search's.
		winner, err := graph.SplitOperation(base, curID, cands[bestIdx].dim, cands[bestIdx].n)
		if err != nil {
			return nil, fmt.Errorf("materialize split: %w", err)
		}
		wctx, err := contextFor(winner)
		if err != nil {
			return nil, fmt.Errorf("materialize split: %w", err)
		}
		wranks := computeRanksCtx(wctx, cluster, est, mc)
		wsched, err := dposCtx(wctx, cluster, est, opts, wranks, 0)
		if err != nil {
			releaseRanks(wranks)
			return nil, fmt.Errorf("materialize split: %w", err)
		}
		ftOld = wsched.Makespan
		releaseSchedule(res.Schedule)
		res.Graph = winner
		res.Schedule = wsched
		res.Splits = append(res.Splits, graph.SplitDecision{
			OpName: opName, Dim: cands[bestIdx].dim, N: cands[bestIdx].n,
		})
		releaseRanks(baseRanks)
		baseCtx, baseRanks = wctx, wranks
	}
	return res, nil
}

// placedCriticalPath recomputes the critical path using the actual
// placement: w_i is the execution time on the op's assigned device, and
// edge costs are the transfer times between the assigned devices. It
// returns the path and a pooled Ranks whose W holds the per-op placed
// execution times; the caller releases it.
func placedCriticalPath(ctx *scheduleContext, cluster *device.Cluster,
	est cost.Estimator, sched *Schedule) ([]int, *Ranks) {
	g := ctx.g
	n := g.NumOps()
	r := ranksFromPool(n, 0)
	exec, rank := r.W, r.Rank
	for _, op := range g.Ops() {
		exec[op.ID] = est.Exec(op, cluster.Device(sched.Placement[op.ID]))
	}
	for i := len(ctx.topo) - 1; i >= 0; i-- {
		id := ctx.topo[i]
		var best time.Duration
		for _, ei := range ctx.outIdx[id] {
			e := ctx.edgeAt(ei)
			comm := est.Comm(e.Bytes,
				cluster.Device(sched.Placement[e.From]),
				cluster.Device(sched.Placement[e.To]))
			if v := comm + rank[e.To]; v > best {
				best = v
			}
		}
		rank[id] = exec[id] + best
	}
	return criticalPathCtx(ctx, r), r
}
