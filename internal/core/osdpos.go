package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// SplitResult is the output of OS-DPOS: the rewritten graph (with accepted
// splits applied), its schedule, and the split list SP[].
type SplitResult struct {
	// Graph is the final computation graph after all accepted splits.
	Graph *graph.Graph
	// Schedule is the DPOS schedule of Graph.
	Schedule *Schedule
	// Splits is the accepted operation split list SP[] of Alg. 2.
	Splits []graph.SplitDecision
	// Evaluated counts candidate (dimension, split count) DPOS evaluations
	// run to completion, for strategy-computation-time analysis (Table 4).
	// With concurrent workers the live shared bound can abort a candidate
	// the sequential pass would have finished, so the Evaluated/Pruned
	// split (never the strategy) may vary with worker count and timing;
	// Evaluated never exceeds the sequential pass's count.
	Evaluated int
	// Pruned counts candidate evaluations aborted early because a lower
	// bound on their makespan proved they could not beat the incumbent
	// (Table 4). Always 0 with Options.DisablePruning.
	Pruned int
}

// splitCand is one (dimension, split count) candidate for a CP op.
type splitCand struct {
	dim graph.SplitDim
	n   int
}

// candOutcome is the result of one candidate evaluation. Completed
// candidates retain their pooled schedule until the round's reduce: the
// winner's is adopted as the schedule of the materialized graph (a completed
// bounded run is exact, and the overlay and clone paths produce schedules
// byte-identical to a fresh pass over the materialized clone — the
// equivalence the incremental tests pin down), and the losers' are released.
type candOutcome struct {
	makespan time.Duration
	sched    *Schedule     // retained on ok; released by the reduce
	ok       bool          // scheduled to completion
	pruned   bool          // aborted by the makespan bound
	bound    time.Duration // the bound in effect at the abort (pruned only)
}

// releaseOutcomes returns every retained candidate schedule to the pool.
func releaseOutcomes(results []candOutcome) {
	for i := range results {
		if results[i].sched != nil {
			releaseSchedule(results[i].sched)
			results[i].sched = nil
		}
	}
}

// compactWinner rewrites a winner schedule produced in an overlay's ID space
// (dead target slot in place, delta ops appended) into the compact ID space
// of the materialized SplitOperation graph, following the overlay's strictly
// monotone CloneID map: IDs below the dead slot are unchanged, IDs above it
// shift down by one. O(nOps), replacing the full DPOS pass the materialized
// winner would otherwise pay to recompute a schedule already in hand.
func compactWinner(s *Schedule, dead int) *Schedule {
	n := len(s.Placement) - 1
	out := scheduleFromPool(n)
	out.Makespan = s.Makespan
	for id := 0; id <= n; id++ {
		if id == dead {
			continue
		}
		c := id
		if id > dead {
			c = id - 1
		}
		out.Placement[c] = s.Placement[id]
		out.Start[c] = s.Start[id]
		out.Finish[c] = s.Finish[id]
	}
	k := 0
	for _, id := range s.Order {
		if id == dead {
			continue
		}
		if id > dead {
			id--
		}
		out.Order[k] = id
		k++
	}
	for i, id := range out.Order {
		out.Priorities[id] = i
	}
	if len(s.CriticalPath) > 0 {
		cp := make([]int, 0, len(s.CriticalPath))
		for _, id := range s.CriticalPath {
			if id == dead {
				continue
			}
			if id > dead {
				id--
			}
			cp = append(cp, id)
		}
		out.CriticalPath = cp
	}
	releaseSchedule(s)
	return out
}

// publishIncumbent lowers the shared live bound to m if m is smaller,
// racing CAS-free against other workers doing the same.
func publishIncumbent(live *atomic.Int64, m time.Duration) {
	for {
		cur := live.Load()
		if int64(m) >= cur || live.CompareAndSwap(cur, int64(m)) {
			return
		}
	}
}

// OSDPOS implements Alg. 2 (Operation Splitting DPOS): run DPOS, compute
// the placement-aware critical path, then walk its operations in descending
// computation time, trying every parallelizable dimension and split count;
// a split is kept only if it strictly reduces the finish time of the exit
// operation, and the walk stops at the first operation whose best split
// does not improve it.
//
// The candidate (dimension, split count) evaluations for one operation are
// independent, so they fan out over a worker pool created once per call
// and fed every round. Each candidate is evaluated incrementally: a
// copy-on-write graph.SplitOverlay records the rewrite as a delta,
// overlayContext patches the cached edge indexes in O(Δ), extendLattice
// patches the dense cost lattice in O(Δ), deltaRanksOverlay reuses the
// base ranks everywhere outside the rewritten region and the target's
// ancestors, and dposCtx runs under the incumbent-makespan bound so
// hopeless candidates abort early. With workers > 1 the bound is *live*:
// every completed candidate publishes its makespan to a shared atomic and
// in-flight candidates prune against the tightest value, so one cheap
// improving candidate aborts its round-mates mid-run.
//
// Only the accepted winner of a round is materialized into a real graph,
// and the schedule its evaluation already produced is adopted as the
// round's new incumbent. The winner is reduced from the position-indexed
// results in enumeration order with a strictly-less comparison; because
// the live bound can abort an earlier-position candidate whose makespan
// *ties* the round minimum (the sequential pass would have completed and
// preferred it), any pruned candidate before the provisional winner whose
// abort bound equals the minimum is re-evaluated under bound minimum+1 —
// it completes iff its makespan equals the minimum, restoring the
// sequential first-minimum choice. Any worker count, with overlays or
// clones, pruning on or off, lattice or direct estimator, returns
// byte-identical strategies.
func OSDPOS(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*SplitResult, error) {
	est = cost.ReadSnapshot(est)
	baseCtx, err := contextFor(g)
	if err != nil {
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	devs := cluster.Devices()
	baseLat := latticeFor(baseCtx, cluster, est, opts)
	baseRanks := computeRanksCtx(baseCtx, baseLat)
	sched, err := dposCtx(baseCtx, cluster, baseLat, opts, baseRanks, 0, nil)
	if err != nil {
		releaseRanks(baseRanks)
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	defer func() { releaseRanks(baseRanks) }()
	res := &SplitResult{Graph: g, Schedule: sched}
	ftOld := sched.Makespan

	// Critical path based on S_new and G (Alg. 2 line 4): ranks evaluated
	// at the placed devices rather than worst-case maxima.
	cp, placedRanks := placedCriticalPath(baseCtx, baseLat, sched)
	// Sort CP by descending computation time (line 5).
	execOnPlaced := placedRanks.W
	sort.SliceStable(cp, func(a, b int) bool {
		return execOnPlaced[cp[a]] > execOnPlaced[cp[b]]
	})
	releaseRanks(placedRanks)

	numDev := cluster.NumDevices()
	// One pool serves every round of this call; rounds with fewer
	// candidates than workers leave the surplus workers parked instead of
	// respawning goroutines per round.
	pool := newEvalPool(opts.workers())
	defer pool.close()
	attempted := 0
	for _, cpID := range cp {
		opName := g.Op(cpID).Name // names survive rewrites; IDs do not
		cur, ok := res.Graph.OpByName(opName)
		if !ok {
			continue // replaced by an earlier accepted split
		}
		dims := cur.SplittableDims()
		if len(dims) == 0 || numDev < 2 {
			continue
		}
		if opts.MaxSplitOps > 0 && attempted >= opts.MaxSplitOps {
			break
		}
		attempted++

		// Enumerate candidates in the canonical (dim order, ascending n)
		// order the reduce below depends on.
		cands := make([]splitCand, 0, len(dims)*(numDev-1))
		for _, dim := range dims {
			for n := 2; n <= numDev; n++ {
				cands = append(cands, splitCand{dim: dim, n: n})
			}
		}
		base, curID := res.Graph, cur.ID
		// The pruning bound is the incumbent makespan: only candidates
		// strictly below it can ever be accepted. The concurrent path
		// additionally shares a live incumbent seeded with it.
		bound := ftOld
		var live *atomic.Int64
		if opts.DisablePruning {
			bound = 0
		} else if pool != nil {
			live = new(atomic.Int64)
			live.Store(int64(ftOld))
		}
		var anc []bool
		if !opts.DisableIncremental {
			anc = ancestorsOf(baseCtx, curID)
		}
		// eval runs one candidate; shared state (baseCtx, baseRanks,
		// baseLat, anc, the estimator snapshot) is read-only during the
		// fan-out.
		eval := func(c splitCand, bound time.Duration, live *atomic.Int64) candOutcome {
			var s *Schedule
			var err error
			if opts.DisableIncremental {
				var candidate *graph.Graph
				candidate, err = graph.SplitOperation(base, curID, c.dim, c.n)
				if err != nil {
					return candOutcome{} // extent too small for this n, etc.
				}
				s, err = dposFresh(candidate, cluster, est, opts, bound, live)
			} else {
				var ov *graph.SplitOverlay
				ov, err = graph.NewSplitOverlay(base, curID, c.dim, c.n)
				if err != nil {
					return candOutcome{}
				}
				octx := overlayContext(baseCtx, ov)
				var clat *costLattice
				if opts.DisableLattice {
					clat = buildLattice(octx, devs, est, false)
				} else {
					clat = extendLattice(baseLat, octx, devs, est)
				}
				ranks := deltaRanksOverlay(baseCtx, baseRanks, octx, anc, clat)
				s, err = dposCtx(octx, cluster, clat, opts, ranks, bound, live)
				releaseRanks(ranks)
				if !opts.DisableLattice {
					releaseLattice(clat)
				}
				releaseOverlayContext(octx)
			}
			if err != nil {
				var pe *prunedError
				if errors.As(err, &pe) {
					return candOutcome{pruned: true, bound: pe.bound}
				}
				return candOutcome{} // infeasible under memory constraints
			}
			if live != nil {
				publishIncumbent(live, s.Makespan)
			}
			return candOutcome{makespan: s.Makespan, sched: s, ok: true}
		}

		results := make([]candOutcome, len(cands))
		pool.run(len(cands), func(i int) {
			results[i] = eval(cands[i], bound, live)
		})

		bestIdx := -1
		var bestFT time.Duration
		evaluated, pruned := 0, 0
		for i, r := range results {
			if r.pruned {
				pruned++
				continue
			}
			if !r.ok {
				continue
			}
			evaluated++
			if bestIdx < 0 || r.makespan < bestFT {
				bestIdx = i
				bestFT = r.makespan
			}
		}

		// Deterministic tie resolution for the live bound: a pruned
		// candidate's makespan is >= its abort bound, and abort bounds
		// never drop below the round's final minimum (only completed
		// makespans are published), so exactly the candidates aborted at
		// bound == bestFT could have tied it. The sequential reference
		// prefers the earliest tie, so re-run those before the provisional
		// winner under bestFT+1: completion proves makespan == bestFT.
		if live != nil && bestIdx > 0 {
			for i := 0; i < bestIdx; i++ {
				if !results[i].pruned || results[i].bound != bestFT {
					continue
				}
				full := eval(cands[i], bestFT+1, nil)
				if full.ok {
					results[i] = full
					evaluated++
					pruned--
					bestIdx = i
					break
				}
			}
		}

		if bestIdx < 0 && pruned > 0 {
			// Every candidate was pruned or infeasible. Whether Alg. 2
			// continues to the next CP op (all infeasible) or stops (some
			// candidate completes, necessarily at >= ftOld) depends on
			// information pruning discarded, so re-evaluate the pruned
			// candidates without a bound, in canonical order, until one
			// completes. This path is rare — it needs every completing
			// candidate of an op to be non-improving AND pruning to fire
			// before each one finishes. (No candidate completed, so the
			// live incumbent never moved off ftOld and the pruned set
			// matches the sequential pass's exactly.)
			completed := false
			for i, r := range results {
				if !r.pruned {
					continue
				}
				full := eval(cands[i], 0, nil)
				pruned--
				if full.ok {
					releaseSchedule(full.sched)
					evaluated++
					completed = true
					break
				}
				// Pruned earlier but infeasible when run to completion:
				// the clone path would have counted it nowhere either.
			}
			res.Evaluated += evaluated
			res.Pruned += pruned
			if completed {
				break // first non-improving operation ends the exploration
			}
			continue
		}
		res.Evaluated += evaluated
		res.Pruned += pruned
		if bestIdx < 0 {
			continue // every candidate infeasible: try the next CP op
		}
		if bestFT >= ftOld {
			// First non-improving operation ends the exploration (Alg. 2
			// lines 11-13). Unreachable with pruning active: a completed
			// candidate beat the bound by construction.
			releaseOutcomes(results)
			break
		}

		// Materialize the single accepted winner as a real graph and adopt
		// the schedule its evaluation already produced: a completed bounded
		// run is exact, and overlay and clone candidate schedules are
		// byte-identical to a fresh pass over the materialized clone, so
		// rescheduling it would recompute the same bytes.
		wsched := results[bestIdx].sched
		results[bestIdx].sched = nil
		releaseOutcomes(results)
		if !opts.DisableIncremental {
			// Overlay schedules live in the overlay's ID space; the clone
			// reference path already produces the compact layout.
			wsched = compactWinner(wsched, curID)
		}
		winner, err := graph.SplitOperation(base, curID, cands[bestIdx].dim, cands[bestIdx].n)
		if err != nil {
			releaseSchedule(wsched)
			return nil, fmt.Errorf("materialize split: %w", err)
		}
		wctx, err := contextFor(winner)
		if err != nil {
			releaseSchedule(wsched)
			return nil, fmt.Errorf("materialize split: %w", err)
		}
		wlat := latticeFor(wctx, cluster, est, opts)
		wranks := computeRanksCtx(wctx, wlat)
		ftOld = wsched.Makespan
		releaseSchedule(res.Schedule)
		res.Graph = winner
		res.Schedule = wsched
		res.Splits = append(res.Splits, graph.SplitDecision{
			OpName: opName, Dim: cands[bestIdx].dim, N: cands[bestIdx].n,
		})
		releaseRanks(baseRanks)
		baseCtx, baseRanks, baseLat = wctx, wranks, wlat
	}
	return res, nil
}

// placedCriticalPath recomputes the critical path using the actual
// placement: w_i is the execution time on the op's assigned device, and
// edge costs are the transfer times between the assigned devices, all read
// from the dense lattice. It returns the path and a pooled Ranks whose W
// holds the per-op placed execution times; the caller releases it.
func placedCriticalPath(ctx *scheduleContext, lat *costLattice, sched *Schedule) ([]int, *Ranks) {
	n := ctx.nOps
	r := ranksFromPool(n, 0)
	exec, rank := r.W, r.Rank
	for id := 0; id < n; id++ {
		exec[id] = lat.execAt(id, sched.Placement[id])
	}
	for i := len(ctx.topo) - 1; i >= 0; i-- {
		id := ctx.topo[i]
		var best time.Duration
		for _, ei := range ctx.outIdx[id] {
			e := ctx.edgeAt(ei)
			comm := lat.commAt(ei, sched.Placement[e.From], sched.Placement[e.To])
			if v := comm + rank[e.To]; v > best {
				best = v
			}
		}
		rank[id] = exec[id] + best
	}
	return criticalPathCtx(ctx, r), r
}
