package core

import (
	"fmt"
	"sort"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// SplitResult is the output of OS-DPOS: the rewritten graph (with accepted
// splits applied), its schedule, and the split list SP[].
type SplitResult struct {
	// Graph is the final computation graph after all accepted splits.
	Graph *graph.Graph
	// Schedule is the DPOS schedule of Graph.
	Schedule *Schedule
	// Splits is the accepted operation split list SP[] of Alg. 2.
	Splits []graph.SplitDecision
	// Evaluated counts candidate (dimension, split count) DPOS evaluations
	// performed, for strategy-computation-time analysis (Table 4).
	Evaluated int
}

// OSDPOS implements Alg. 2 (Operation Splitting DPOS): run DPOS, compute
// the placement-aware critical path, then walk its operations in descending
// computation time, trying every parallelizable dimension and split count;
// a split is kept only if it strictly reduces the finish time of the exit
// operation, and the walk stops at the first operation whose best split
// does not improve it.
func OSDPOS(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*SplitResult, error) {
	sched, err := DPOS(g, cluster, est, opts)
	if err != nil {
		return nil, fmt.Errorf("initial DPOS: %w", err)
	}
	res := &SplitResult{Graph: g, Schedule: sched}
	ftOld := sched.Makespan

	// Critical path based on S_new and G (Alg. 2 line 4): ranks evaluated
	// at the placed devices rather than worst-case maxima.
	cp, execOnPlaced, err := placedCriticalPath(g, cluster, est, sched)
	if err != nil {
		return nil, fmt.Errorf("placed critical path: %w", err)
	}
	// Sort CP by descending computation time (line 5).
	sort.SliceStable(cp, func(a, b int) bool {
		return execOnPlaced[cp[a]] > execOnPlaced[cp[b]]
	})

	numDev := cluster.NumDevices()
	attempted := 0
	for _, cpID := range cp {
		opName := g.Op(cpID).Name // names survive rewrites; IDs do not
		cur, ok := res.Graph.OpByName(opName)
		if !ok {
			continue // replaced by an earlier accepted split
		}
		dims := cur.SplittableDims()
		if len(dims) == 0 || numDev < 2 {
			continue
		}
		if opts.MaxSplitOps > 0 && attempted >= opts.MaxSplitOps {
			break
		}
		attempted++

		var (
			bestFT    time.Duration
			bestGraph *graph.Graph
			bestSched *Schedule
			bestDec   graph.SplitDecision
			found     bool
		)
		for _, dim := range dims {
			for n := 2; n <= numDev; n++ {
				candidate, err := graph.SplitOperation(res.Graph, cur.ID, dim, n)
				if err != nil {
					continue // extent too small for this n, etc.
				}
				s, err := DPOS(candidate, cluster, est, opts)
				if err != nil {
					continue // infeasible under memory constraints
				}
				res.Evaluated++
				if !found || s.Makespan < bestFT {
					found = true
					bestFT = s.Makespan
					bestGraph = candidate
					bestSched = s
					bestDec = graph.SplitDecision{OpName: opName, Dim: dim, N: n}
				}
			}
		}
		if !found {
			continue
		}
		if bestFT < ftOld {
			ftOld = bestFT
			res.Graph = bestGraph
			res.Schedule = bestSched
			res.Splits = append(res.Splits, bestDec)
		} else {
			// First non-improving operation ends the exploration
			// (Alg. 2 lines 11-13).
			break
		}
	}
	return res, nil
}

// placedCriticalPath recomputes the critical path using the actual
// placement: w_i is the execution time on the op's assigned device, and
// edge costs are the transfer times between the assigned devices. It
// returns the path and the per-op placed execution times.
func placedCriticalPath(g *graph.Graph, cluster *device.Cluster, est cost.Estimator,
	sched *Schedule) ([]int, []time.Duration, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	n := g.NumOps()
	exec := make([]time.Duration, n)
	for _, op := range g.Ops() {
		exec[op.ID] = est.Exec(op, cluster.Device(sched.Placement[op.ID]))
	}
	rank := make([]time.Duration, n)
	idx := edgeIndex(g)
	edges := g.Edges()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		var best time.Duration
		for _, ei := range idx[id] {
			e := edges[ei]
			comm := est.Comm(e.Bytes,
				cluster.Device(sched.Placement[e.From]),
				cluster.Device(sched.Placement[e.To]))
			if v := comm + rank[e.To]; v > best {
				best = v
			}
		}
		rank[id] = exec[id] + best
	}
	r := &Ranks{W: exec, Rank: rank}
	return CriticalPath(g, r), exec, nil
}
