package core

import (
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// TestLatticeMatchesEstimator checks every dense lattice entry against a
// direct estimator resolution, catalog-wide: exec rows and their extrema per
// op, comm grids and their maxima per edge. Comm-class dedup must be
// invisible — an edge's grid is the same whether it shares a class or owns
// one.
func TestLatticeMatchesEstimator(t *testing.T) {
	cluster, err := device.SingleServer(3)
	if err != nil {
		t.Fatal(err)
	}
	est := kernels.NewDefaultOracle(cluster)
	devs := cluster.Devices()
	nd := len(devs)
	for _, spec := range models.Catalog() {
		g, err := spec.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := contextFor(g)
		if err != nil {
			t.Fatal(err)
		}
		lat := latticeFor(ctx, cluster, est, Options{})
		for id := 0; id < ctx.nOps; id++ {
			op := ctx.op(id)
			var maxW, minW int64
			for d := 0; d < nd; d++ {
				want := est.Exec(op, devs[d])
				if got := lat.execAt(id, d); got != want {
					t.Fatalf("%s: exec(%q, dev %d) = %v, want %v",
						spec.Name, op.Name, d, got, want)
				}
				if int64(want) > maxW {
					maxW = int64(want)
				}
				if d == 0 || int64(want) < minW {
					minW = int64(want)
				}
			}
			if int64(lat.wAt(id)) != maxW || int64(lat.minWAt(id)) != minW {
				t.Fatalf("%s: op %q extrema (%v,%v), want (%v,%v)",
					spec.Name, op.Name, lat.wAt(id), lat.minWAt(id), maxW, minW)
			}
		}
		for ei := 0; ei < ctx.numEdges(); ei++ {
			b := ctx.edgeAt(ei).Bytes
			var maxC int64
			for f := 0; f < nd; f++ {
				for to := 0; to < nd; to++ {
					want := est.Comm(b, devs[f], devs[to])
					if f == to {
						want = 0
					}
					if got := lat.commAt(ei, f, to); got != want {
						t.Fatalf("%s: comm(edge %d, %d->%d) = %v, want %v",
							spec.Name, ei, f, to, got, want)
					}
					if int64(want) > maxC {
						maxC = int64(want)
					}
				}
			}
			if int64(lat.maxCommAt(ei)) != maxC {
				t.Fatalf("%s: maxComm(edge %d) = %v, want %v",
					spec.Name, ei, lat.maxCommAt(ei), maxC)
			}
		}
	}
}

// TestExtendLatticeMatchesRebuild checks the O(Δ) overlay extension against
// a from-scratch direct build over the same overlay context: identical
// entries for every live op and every edge, old and new.
func TestExtendLatticeMatchesRebuild(t *testing.T) {
	cluster, err := device.SingleServer(3)
	if err != nil {
		t.Fatal(err)
	}
	est := kernels.NewDefaultOracle(cluster)
	devs := cluster.Devices()
	nd := len(devs)
	for _, spec := range models.Catalog() {
		g, err := spec.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := contextFor(g)
		if err != nil {
			t.Fatal(err)
		}
		base := latticeFor(ctx, cluster, est, Options{})
		tested := false
		for opID := 0; opID < g.NumOps() && !tested; opID++ {
			dims := g.Op(opID).SplittableDims()
			if len(dims) == 0 {
				continue
			}
			ov, err := graph.NewSplitOverlay(g, opID, dims[0], 2)
			if err != nil {
				continue
			}
			tested = true
			octx := overlayContext(ctx, ov)
			ext := extendLattice(base, octx, devs, est)
			ref := buildLattice(octx, devs, est, false)
			for id := 0; id < octx.nOps; id++ {
				if id == octx.dead {
					continue
				}
				for d := 0; d < nd; d++ {
					if ext.execAt(id, d) != ref.execAt(id, d) {
						t.Fatalf("%s: exec(%d, %d): ext %v, rebuild %v",
							spec.Name, id, d, ext.execAt(id, d), ref.execAt(id, d))
					}
				}
				if ext.wAt(id) != ref.wAt(id) || ext.minWAt(id) != ref.minWAt(id) {
					t.Fatalf("%s: op %d extrema ext (%v,%v), rebuild (%v,%v)",
						spec.Name, id, ext.wAt(id), ext.minWAt(id), ref.wAt(id), ref.minWAt(id))
				}
			}
			for ei := 0; ei < octx.numEdges(); ei++ {
				if ext.maxCommAt(ei) != ref.maxCommAt(ei) {
					t.Fatalf("%s: maxComm(edge %d): ext %v, rebuild %v",
						spec.Name, ei, ext.maxCommAt(ei), ref.maxCommAt(ei))
				}
				for f := 0; f < nd; f++ {
					for to := 0; to < nd; to++ {
						if ext.commAt(ei, f, to) != ref.commAt(ei, f, to) {
							t.Fatalf("%s: comm(edge %d, %d->%d): ext %v, rebuild %v",
								spec.Name, ei, f, to,
								ext.commAt(ei, f, to), ref.commAt(ei, f, to))
						}
					}
				}
			}
			releaseLattice(ext)
			releaseOverlayContext(octx)
		}
		if !tested {
			t.Fatalf("%s: no splittable op; extension untested", spec.Name)
		}
	}
}

// TestOSDPOSLatticeEquivalence is the catalog-wide flattening property: the
// dense-lattice fast path must return a strategy byte-identical — split
// list, makespan, placement, order, priorities — to the direct-estimator
// reference (DisableLattice, no pruning, sequential), crossed over
// workers in {1, 4, 8} and pruning on/off.
func TestOSDPOSLatticeEquivalence(t *testing.T) {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	catalog := models.Catalog()
	if testing.Short() {
		catalog = catalog[:3]
	}
	for _, spec := range catalog {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Build(4)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.BuildDataParallel(m, gpus)
			if err != nil {
				t.Fatal(err)
			}
			base := Options{MaxSplitOps: 2, MaxSyncGroups: 2}
			ref := base
			ref.DisableLattice = true
			ref.DisableIncremental = true
			ref.DisablePruning = true
			ref.Workers = 1
			want, err := OSDPOS(g, cluster, oracle, ref)
			if err != nil {
				t.Fatalf("direct-estimator reference: %v", err)
			}
			for _, workers := range []int{1, 4, 8} {
				for _, noprune := range []bool{true, false} {
					name := "prune"
					if noprune {
						name = "noprune"
					}
					opts := base
					opts.Workers = workers
					opts.DisablePruning = noprune
					got, err := OSDPOS(g, cluster, oracle, opts)
					if err != nil {
						t.Fatalf("w%d/%s: %v", workers, name, err)
					}
					if len(got.Splits) != len(want.Splits) {
						t.Fatalf("w%d/%s: split list %v, want %v",
							workers, name, got.Splits, want.Splits)
					}
					for i := range want.Splits {
						if got.Splits[i] != want.Splits[i] {
							t.Fatalf("w%d/%s: split %d is %v, want %v",
								workers, name, i, got.Splits[i], want.Splits[i])
						}
					}
					if got.Schedule.Makespan != want.Schedule.Makespan {
						t.Errorf("w%d/%s: makespan %v, want %v",
							workers, name, got.Schedule.Makespan, want.Schedule.Makespan)
					}
					if !equalInts(got.Schedule.Placement, want.Schedule.Placement) {
						t.Errorf("w%d/%s: placements differ", workers, name)
					}
					if !equalInts(got.Schedule.Order, want.Schedule.Order) {
						t.Errorf("w%d/%s: orders differ", workers, name)
					}
					if !equalInts(got.Schedule.Priorities, want.Schedule.Priorities) {
						t.Errorf("w%d/%s: priorities differ", workers, name)
					}
				}
			}
		})
	}
}
