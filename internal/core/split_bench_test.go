package core

import (
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// BenchmarkSplitCandidate isolates the per-candidate evaluation cost OS-DPOS
// pays in its inner loop — construct the split, derive priorities, run DPOS —
// comparing the reference clone path against the copy-on-write overlay path.
// Pruning is off in both so the two do the same scheduling work and the
// difference is pure construction/rank overhead.
func BenchmarkSplitCandidate(b *testing.B) {
	const gpus = 8
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		b.Fatal(err)
	}
	est := kernels.NewDefaultOracle(cluster)
	spec, err := models.ByName("Transformer")
	if err != nil {
		b.Fatal(err)
	}
	m, err := spec.Build(gpus)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.BuildDataParallel(m, gpus)
	if err != nil {
		b.Fatal(err)
	}
	baseCtx, err := contextFor(g)
	if err != nil {
		b.Fatal(err)
	}
	baseLat := latticeFor(baseCtx, cluster, est, Options{})
	baseRanks := computeRanksCtx(baseCtx, baseLat)
	defer releaseRanks(baseRanks)

	// Use the scheduler's own notion of a candidate: the top op on the
	// placed critical path, batch-split across all devices.
	base, err := dposCtx(baseCtx, cluster, baseLat, Options{}, baseRanks, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	cp, cpRanks := placedCriticalPath(baseCtx, baseLat, base)
	releaseRanks(cpRanks)
	releaseSchedule(base)
	target := -1
	for _, id := range cp {
		if len(g.Op(id).SplittableDims()) > 0 {
			target = id
			break
		}
	}
	if target < 0 {
		b.Fatal("no splittable op on the critical path")
	}
	dim := g.Op(target).SplittableDims()[0]

	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cand, err := graph.SplitOperation(g, target, dim, gpus)
			if err != nil {
				b.Fatal(err)
			}
			s, err := dposFresh(cand, cluster, est, Options{}, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			releaseSchedule(s)
		}
	})
	b.Run("overlay", func(b *testing.B) {
		anc := ancestorsOf(baseCtx, target)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ov, err := graph.NewSplitOverlay(g, target, dim, gpus)
			if err != nil {
				b.Fatal(err)
			}
			octx := overlayContext(baseCtx, ov)
			clat := extendLattice(baseLat, octx, cluster.Devices(), est)
			ranks := deltaRanksOverlay(baseCtx, baseRanks, octx, anc, clat)
			s, err := dposCtx(octx, cluster, clat, Options{}, ranks, 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			releaseSchedule(s)
			releaseRanks(ranks)
			releaseLattice(clat)
			releaseOverlayContext(octx)
		}
	})
}
