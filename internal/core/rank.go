// Package core implements FastT's white-box scheduling heuristics
// (Sec. 5 of the paper): critical-path ranks, the DPOS list-scheduling
// algorithm (Alg. 1) computing device placement and execution order, and
// the OS-DPOS algorithm (Alg. 2) that additionally splits critical-path
// operations for fine-grained mixed data/model parallelism.
package core

import (
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// Ranks holds the per-op upward ranks and the cost vectors they derive
// from.
type Ranks struct {
	// W is the maximal execution time of each op over all devices (w_i).
	W []time.Duration
	// MinW is the minimal execution time of each op over all devices, the
	// per-op term of the RestMin pruning bound.
	MinW []time.Duration
	// CMax is, per edge index, the maximal transfer time of the edge's
	// tensor over all device pairs (c_{i,j}).
	CMax []time.Duration
	// Rank is the upward rank: rank_u(o_i) = w_i + max over successors of
	// (c_{i,j} + rank_u(o_j)).
	Rank []time.Duration
	// RestMin is an exact lower bound on the time between op i's finish and
	// the exit op's finish under ANY schedule: the maximum over paths from
	// i to an exit of the sum of successor MinW values (communication
	// contributes >= 0 and is ignored). dposCtx prunes a candidate as soon
	// as Finish[i] + RestMin[i] reaches the incumbent makespan bound.
	RestMin []time.Duration
}

// ComputeRanks computes w_i, c_{i,j} and rank_u for every op of g using the
// estimator, per Sec. 5.1. The returned Ranks is owned by the caller.
func ComputeRanks(g *graph.Graph, cluster *device.Cluster, est cost.Estimator) (*Ranks, error) {
	ctx, err := contextFor(g)
	if err != nil {
		return nil, err
	}
	est = cost.ReadSnapshot(est)
	return computeRanksCtx(ctx, latticeFor(ctx, cluster, est, Options{})), nil
}

// computeRanksCtx is the context-based core of ComputeRanks: topological
// order and edge indexes come from ctx, every cost from the dense lattice
// resolved for (ctx, cluster, estimator). The result comes from the ranks
// pool; internal callers release it when done.
func computeRanksCtx(ctx *scheduleContext, lat *costLattice) *Ranks {
	n := ctx.nOps
	nEdges := ctx.numEdges()
	r := ranksFromPool(n, nEdges)
	for id := 0; id < n; id++ {
		r.W[id] = lat.wAt(id)
		r.MinW[id] = lat.minWAt(id)
	}
	for ei := 0; ei < nEdges; ei++ {
		r.CMax[ei] = lat.maxCommAt(ei)
	}
	// Reverse topological accumulation.
	for i := len(ctx.topo) - 1; i >= 0; i-- {
		id := ctx.topo[i]
		best := time.Duration(0)
		rest := time.Duration(0)
		for _, ei := range ctx.outIdx[id] {
			to := ctx.edgeAt(ei).To
			if v := r.CMax[ei] + r.Rank[to]; v > best {
				best = v
			}
			if v := r.MinW[to] + r.RestMin[to]; v > rest {
				rest = v
			}
		}
		r.Rank[id] = r.W[id] + best
		r.RestMin[id] = rest
	}
	return r
}

// ancestorsOf marks every op from which target is reachable (target itself
// excluded), by reverse BFS over ctx's incoming edge index. These are
// exactly the ops whose ranks a split of target can change: rank_u depends
// only on descendants, and target is a descendant of precisely its
// ancestors.
func ancestorsOf(ctx *scheduleContext, target int) []bool {
	anc := make([]bool, ctx.nOps)
	stack := make([]int, 0, 64)
	stack = append(stack, target)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range ctx.inIdx[id] {
			from := ctx.edgeAt(ei).From
			if !anc[from] {
				anc[from] = true
				stack = append(stack, from)
			}
		}
	}
	return anc
}

// deltaRanksOverlay produces the ranks of an overlay candidate from the
// base graph's ranks in O(ancestors + Δ) instead of a full O(V+E) pass:
// ranks depend only on descendants, so splitting op X leaves every
// non-ancestor's rank untouched. The delta ops are recomputed first in
// reverse dependency order — concat nodes (successors are base ops whose
// ranks are unchanged: they are descendants of X), then sub-ops, then split
// nodes — followed by X's ancestors in reverse base topological order,
// which restricted to ancestors is a valid reverse order of the overlay
// (the overlay adds no edges between base ops).
//
// bctx/baseRanks describe ov.Base(); octx must come from
// overlayContext(bctx, ov); anc from ancestorsOf(bctx, target); lat must be
// a lattice covering the overlay view (extendLattice of the base lattice,
// or a direct build over octx on the reference path). The result comes from
// the ranks pool; the caller releases it.
func deltaRanksOverlay(bctx *scheduleContext, baseRanks *Ranks, octx *scheduleContext,
	anc []bool, lat *costLattice) *Ranks {
	ov := octx.ov
	baseE := len(bctx.baseEdges)
	r := ranksFromPool(octx.nOps, octx.numEdges())
	copy(r.W, baseRanks.W)
	copy(r.MinW, baseRanks.MinW)
	copy(r.CMax, baseRanks.CMax)
	copy(r.Rank, baseRanks.Rank)
	copy(r.RestMin, baseRanks.RestMin)

	newOps := ov.NewOps()
	for _, op := range newOps {
		r.W[op.ID] = lat.wAt(op.ID)
		r.MinW[op.ID] = lat.minWAt(op.ID)
	}
	for j := range octx.extraEdges {
		r.CMax[baseE+j] = lat.maxCommAt(baseE + j)
	}

	recompute := func(id int) {
		best := time.Duration(0)
		rest := time.Duration(0)
		for _, ei := range octx.outIdx[id] {
			to := octx.edgeAt(ei).To
			if v := r.CMax[ei] + r.Rank[to]; v > best {
				best = v
			}
			if v := r.MinW[to] + r.RestMin[to]; v > rest {
				rest = v
			}
		}
		r.Rank[id] = r.W[id] + best
		r.RestMin[id] = rest
	}
	// newOps layout: n sub-ops, then split nodes, then concat nodes.
	numSubs := ov.N()
	splitEnd := numSubs
	for splitEnd < len(newOps) && newOps[splitEnd].Kind == graph.KindSplit {
		splitEnd++
	}
	for _, op := range newOps[splitEnd:] { // concat nodes
		recompute(op.ID)
	}
	for _, op := range newOps[:numSubs] { // sub-ops
		recompute(op.ID)
	}
	for _, op := range newOps[numSubs:splitEnd] { // split nodes
		recompute(op.ID)
	}
	for i := len(bctx.topo) - 1; i >= 0; i-- {
		if id := bctx.topo[i]; anc[id] {
			recompute(id)
		}
	}
	return r
}

// edgeIndex builds a per-op list of indices into g.Edges() for outgoing
// edges, so rank accumulation can address the per-edge CMax values.
func edgeIndex(g *graph.Graph) [][]int {
	idx := make([][]int, g.NumOps())
	for i, e := range g.Edges() {
		idx[e.From] = append(idx[e.From], i)
	}
	return idx
}

// CriticalPath returns the op IDs of the critical path per the paper: start
// from the entry operation with the largest rank, then repeatedly step to
// the successor with the largest rank until reaching an exit operation.
func CriticalPath(g *graph.Graph, r *Ranks) []int {
	ctx, err := contextFor(g)
	if err != nil {
		return nil
	}
	return criticalPathCtx(ctx, r)
}

// criticalPathCtx walks the path through ctx's edge index without the
// per-step Successors allocations of the naive walk. Ties break toward the
// earliest outgoing edge, matching successor order. It works on both graph
// and overlay contexts (the dead op of an overlay has no entry and no
// edges, so the walk can never reach it).
func criticalPathCtx(ctx *scheduleContext, r *Ranks) []int {
	entries := ctx.entries
	if len(entries) == 0 {
		return nil
	}
	cur := entries[0]
	for _, id := range entries[1:] {
		if r.Rank[id] > r.Rank[cur] {
			cur = id
		}
	}
	path := []int{cur}
	for {
		eis := ctx.outIdx[cur]
		if len(eis) == 0 {
			return path
		}
		next := ctx.edgeAt(eis[0]).To
		for _, ei := range eis[1:] {
			if to := ctx.edgeAt(ei).To; r.Rank[to] > r.Rank[next] {
				next = to
			}
		}
		path = append(path, next)
		cur = next
	}
}

// MaxChainComm returns C_max of Theorem 1: the maximal total data
// transmission time along any chain of the DAG, using the per-edge maximal
// transfer times of r.
func MaxChainComm(g *graph.Graph, r *Ranks) time.Duration {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	idx := edgeIndex(g)
	chain := make([]time.Duration, g.NumOps())
	var best time.Duration
	edges := g.Edges()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, ei := range idx[id] {
			e := edges[ei]
			if v := r.CMax[ei] + chain[e.To]; v > chain[id] {
				chain[id] = v
			}
		}
		if chain[id] > best {
			best = chain[id]
		}
	}
	return best
}
