// Package core implements FastT's white-box scheduling heuristics
// (Sec. 5 of the paper): critical-path ranks, the DPOS list-scheduling
// algorithm (Alg. 1) computing device placement and execution order, and
// the OS-DPOS algorithm (Alg. 2) that additionally splits critical-path
// operations for fine-grained mixed data/model parallelism.
package core

import (
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// Ranks holds the per-op upward ranks and the cost vectors they derive
// from.
type Ranks struct {
	// W is the maximal execution time of each op over all devices (w_i).
	W []time.Duration
	// CMax is, per edge index, the maximal transfer time of the edge's
	// tensor over all device pairs (c_{i,j}).
	CMax []time.Duration
	// Rank is the upward rank: rank_u(o_i) = w_i + max over successors of
	// (c_{i,j} + rank_u(o_j)).
	Rank []time.Duration
}

// ComputeRanks computes w_i, c_{i,j} and rank_u for every op of g using the
// estimator, per Sec. 5.1.
func ComputeRanks(g *graph.Graph, cluster *device.Cluster, est cost.Estimator) (*Ranks, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumOps()
	r := &Ranks{
		W:    make([]time.Duration, n),
		CMax: make([]time.Duration, len(g.Edges())),
		Rank: make([]time.Duration, n),
	}
	devs := cluster.Devices()
	for _, op := range g.Ops() {
		var w time.Duration
		for _, d := range devs {
			if t := est.Exec(op, d); t > w {
				w = t
			}
		}
		r.W[op.ID] = w
	}
	// Max comm per distinct tensor size, cached: est.Comm is monotone in
	// bytes for fixed pair but pair fits differ, so take the max over
	// ordered pairs once per distinct size.
	maxComm := makeMaxComm(cluster, est)
	for i, e := range g.Edges() {
		r.CMax[i] = maxComm(e.Bytes)
	}
	// Reverse topological accumulation.
	edges := g.Edges()
	idx := edgeIndex(g)
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := time.Duration(0)
		for _, ei := range idx[id] {
			e := edges[ei]
			if v := r.CMax[ei] + r.Rank[e.To]; v > best {
				best = v
			}
		}
		r.Rank[id] = r.W[id] + best
	}
	return r, nil
}

// makeMaxComm returns a memoized function computing the maximal transfer
// time of a tensor over all ordered device pairs.
func makeMaxComm(cluster *device.Cluster, est cost.Estimator) func(int64) time.Duration {
	cache := make(map[int64]time.Duration)
	devs := cluster.Devices()
	return func(bytes int64) time.Duration {
		if v, ok := cache[bytes]; ok {
			return v
		}
		var maxT time.Duration
		for _, a := range devs {
			for _, b := range devs {
				if a.ID == b.ID {
					continue
				}
				if t := est.Comm(bytes, a, b); t > maxT {
					maxT = t
				}
			}
		}
		cache[bytes] = maxT
		return maxT
	}
}

// edgeIndex builds a per-op list of indices into g.Edges() for outgoing
// edges, so rank accumulation can address the per-edge CMax values.
func edgeIndex(g *graph.Graph) [][]int {
	idx := make([][]int, g.NumOps())
	for i, e := range g.Edges() {
		idx[e.From] = append(idx[e.From], i)
	}
	return idx
}

// CriticalPath returns the op IDs of the critical path per the paper: start
// from the entry operation with the largest rank, then repeatedly step to
// the successor with the largest rank until reaching an exit operation.
func CriticalPath(g *graph.Graph, r *Ranks) []int {
	entries := g.EntryOps()
	if len(entries) == 0 {
		return nil
	}
	cur := entries[0]
	for _, id := range entries[1:] {
		if r.Rank[id] > r.Rank[cur] {
			cur = id
		}
	}
	path := []int{cur}
	for {
		succs := g.Successors(cur)
		if len(succs) == 0 {
			return path
		}
		next := succs[0]
		for _, s := range succs[1:] {
			if r.Rank[s] > r.Rank[next] {
				next = s
			}
		}
		path = append(path, next)
		cur = next
	}
}

// MaxChainComm returns C_max of Theorem 1: the maximal total data
// transmission time along any chain of the DAG, using the per-edge maximal
// transfer times of r.
func MaxChainComm(g *graph.Graph, r *Ranks) time.Duration {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	idx := edgeIndex(g)
	chain := make([]time.Duration, g.NumOps())
	var best time.Duration
	edges := g.Edges()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, ei := range idx[id] {
			e := edges[ei]
			if v := r.CMax[ei] + chain[e.To]; v > chain[id] {
				chain[id] = v
			}
		}
		if chain[id] > best {
			best = chain[id]
		}
	}
	return best
}
