// Package core implements FastT's white-box scheduling heuristics
// (Sec. 5 of the paper): critical-path ranks, the DPOS list-scheduling
// algorithm (Alg. 1) computing device placement and execution order, and
// the OS-DPOS algorithm (Alg. 2) that additionally splits critical-path
// operations for fine-grained mixed data/model parallelism.
package core

import (
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// Ranks holds the per-op upward ranks and the cost vectors they derive
// from.
type Ranks struct {
	// W is the maximal execution time of each op over all devices (w_i).
	W []time.Duration
	// CMax is, per edge index, the maximal transfer time of the edge's
	// tensor over all device pairs (c_{i,j}).
	CMax []time.Duration
	// Rank is the upward rank: rank_u(o_i) = w_i + max over successors of
	// (c_{i,j} + rank_u(o_j)).
	Rank []time.Duration
}

// ComputeRanks computes w_i, c_{i,j} and rank_u for every op of g using the
// estimator, per Sec. 5.1. The returned Ranks is owned by the caller.
func ComputeRanks(g *graph.Graph, cluster *device.Cluster, est cost.Estimator) (*Ranks, error) {
	ctx, err := contextFor(g)
	if err != nil {
		return nil, err
	}
	return computeRanksCtx(ctx, cluster, est, newMaxCommCache(cluster, est)), nil
}

// computeRanksCtx is the context-based core of ComputeRanks: topological
// order and edge indexes come from ctx, the per-size maximal transfer times
// from mc (shared across the candidate evaluations of one calculation). The
// result comes from the ranks pool; internal callers release it when done.
func computeRanksCtx(ctx *scheduleContext, cluster *device.Cluster,
	est cost.Estimator, mc *maxCommCache) *Ranks {
	g := ctx.g
	r := ranksFromPool(g.NumOps(), g.NumEdges())
	devs := cluster.Devices()
	for _, op := range g.Ops() {
		var w time.Duration
		for _, d := range devs {
			if t := est.Exec(op, d); t > w {
				w = t
			}
		}
		r.W[op.ID] = w
	}
	edges := g.Edges()
	for i := range edges {
		r.CMax[i] = mc.get(edges[i].Bytes)
	}
	// Reverse topological accumulation.
	for i := len(ctx.topo) - 1; i >= 0; i-- {
		id := ctx.topo[i]
		best := time.Duration(0)
		for _, ei := range ctx.outIdx[id] {
			e := edges[ei]
			if v := r.CMax[ei] + r.Rank[e.To]; v > best {
				best = v
			}
		}
		r.Rank[id] = r.W[id] + best
	}
	return r
}

// edgeIndex builds a per-op list of indices into g.Edges() for outgoing
// edges, so rank accumulation can address the per-edge CMax values.
func edgeIndex(g *graph.Graph) [][]int {
	idx := make([][]int, g.NumOps())
	for i, e := range g.Edges() {
		idx[e.From] = append(idx[e.From], i)
	}
	return idx
}

// CriticalPath returns the op IDs of the critical path per the paper: start
// from the entry operation with the largest rank, then repeatedly step to
// the successor with the largest rank until reaching an exit operation.
func CriticalPath(g *graph.Graph, r *Ranks) []int {
	ctx, err := contextFor(g)
	if err != nil {
		return nil
	}
	return criticalPathCtx(ctx, r)
}

// criticalPathCtx walks the path through ctx's edge index without the
// per-step Successors allocations of the naive walk. Ties break toward the
// earliest outgoing edge, matching successor order.
func criticalPathCtx(ctx *scheduleContext, r *Ranks) []int {
	g := ctx.g
	entries := g.EntryOps()
	if len(entries) == 0 {
		return nil
	}
	cur := entries[0]
	for _, id := range entries[1:] {
		if r.Rank[id] > r.Rank[cur] {
			cur = id
		}
	}
	edges := g.Edges()
	path := []int{cur}
	for {
		eis := ctx.outIdx[cur]
		if len(eis) == 0 {
			return path
		}
		next := edges[eis[0]].To
		for _, ei := range eis[1:] {
			if to := edges[ei].To; r.Rank[to] > r.Rank[next] {
				next = to
			}
		}
		path = append(path, next)
		cur = next
	}
}

// MaxChainComm returns C_max of Theorem 1: the maximal total data
// transmission time along any chain of the DAG, using the per-edge maximal
// transfer times of r.
func MaxChainComm(g *graph.Graph, r *Ranks) time.Duration {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	idx := edgeIndex(g)
	chain := make([]time.Duration, g.NumOps())
	var best time.Duration
	edges := g.Edges()
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, ei := range idx[id] {
			e := edges[ei]
			if v := r.CMax[ei] + chain[e.To]; v > chain[id] {
				chain[id] = v
			}
		}
		if chain[id] > best {
			best = chain[id]
		}
	}
	return best
}
