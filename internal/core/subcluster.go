package core

import (
	"context"
	"errors"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// This file implements class-restricted candidate populations for
// heterogeneous clusters. The paper observes that FastT "may not use all the
// input devices, and can choose a subset which achieves better performance
// than using all" (Sec. 5.2); on a mixed-class cluster the greedy EFT device
// selection can spread work onto a slow class — and across the link tier
// separating it — then lose to a schedule that simply leaves the slow class
// idle. So on a mixed cluster the search also computes each single-class
// restriction of the cluster as an independent candidate population, and the
// strategy with the lowest predicted makespan wins. Homogeneous clusters
// have no restrictions to try and are bit-for-bit unaffected.

// remappedEstimator answers a renumbered subcluster's cost queries with the
// original cluster's devices, so learned per-device and per-link statistics
// follow each device through the renumbering instead of being misattributed.
type remappedEstimator struct {
	est  cost.Estimator
	orig []*device.Device // subcluster device ID -> original device
}

func (r *remappedEstimator) Exec(op *graph.Op, dev *device.Device) time.Duration {
	return r.est.Exec(op, r.orig[dev.ID])
}

func (r *remappedEstimator) Comm(bytes int64, from, to *device.Device) time.Duration {
	return r.est.Comm(bytes, r.orig[from.ID], r.orig[to.ID])
}

// classSubcluster is one single-class restriction of a mixed cluster.
type classSubcluster struct {
	cluster *device.Cluster
	ids     []int // subcluster device ID -> original device ID
}

// classSubclusters returns one single-class restriction per device class of
// a mixed cluster, in the cluster's device order (so the fastest class is
// not privileged by construction — only by its predicted makespan). A
// homogeneous cluster yields none.
func classSubclusters(c *device.Cluster) []classSubcluster {
	byClass := make(map[string][]int)
	var order []string
	for _, d := range c.Devices() {
		name := d.ClassName()
		if _, ok := byClass[name]; !ok {
			order = append(order, name)
		}
		byClass[name] = append(byClass[name], d.ID)
	}
	if len(order) < 2 {
		return nil
	}
	subs := make([]classSubcluster, 0, len(order))
	for _, name := range order {
		keep := byClass[name]
		sub, err := restrictTo(c, keep)
		if err != nil {
			continue // a restriction that cannot be built is just not a candidate
		}
		subs = append(subs, classSubcluster{cluster: sub, ids: keep})
	}
	return subs
}

// restrictTo removes every device outside keep (ascending original IDs),
// chaining Without so the surviving devices renumber exactly as a sequence
// of failures would — subcluster ID j is original device keep[j].
func restrictTo(c *device.Cluster, keep []int) (*device.Cluster, error) {
	inKeep := make(map[int]bool, len(keep))
	for _, id := range keep {
		inKeep[id] = true
	}
	sub := c
	// Remove in descending original-ID order: no earlier removal shifts the
	// index of a later one, so the original ID is always the current ID.
	for id := c.NumDevices() - 1; id >= 0; id-- {
		if inKeep[id] {
			continue
		}
		next, _, err := sub.Without(id)
		if err != nil {
			return nil, err
		}
		sub = next
	}
	return sub, nil
}

// refineWithClassSubclusters runs the search once per single-class
// restriction of a mixed cluster and returns the best strategy by predicted
// makespan, remapped back to the full cluster's device numbering. Ties keep
// the full-cluster strategy; among restrictions, the first in device order
// wins, so the result is deterministic. Candidate-evaluation counters are
// summed into the winner so strategy-computation accounting stays honest.
func refineWithClassSubclusters(ctx context.Context, g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options, full *Strategy) (*Strategy, error) {
	best := full
	for _, sub := range classSubclusters(cluster) {
		subEst := &remappedEstimator{est: est, orig: originalDevices(cluster, sub.ids)}
		cand, err := ComputeStrategyCtx(ctx, g, sub.cluster, subEst, opts)
		if err != nil {
			if errors.Is(err, ErrNoFeasiblePlacement) {
				continue // the restriction can't hold the graph; not a candidate
			}
			return nil, err
		}
		best.Evaluated += cand.Evaluated
		best.Pruned += cand.Pruned
		best.Speculated += cand.Speculated
		best.Mispredicted += cand.Mispredicted
		if cand.Predicted < best.Predicted {
			for op, dev := range cand.Placement {
				cand.Placement[op] = sub.ids[dev]
			}
			cand.Evaluated, cand.Pruned = best.Evaluated, best.Pruned
			cand.Speculated, cand.Mispredicted = best.Speculated, best.Mispredicted
			// The seed evaluates independently per population (it may be
			// feasible on the full cluster but not on a restriction); keep
			// the winner's own SeedWon but report the warm start if any
			// population used it.
			cand.Seeded = cand.Seeded || best.Seeded
			if cand.SeedBound == 0 {
				cand.SeedBound = best.SeedBound
			}
			best = cand
		}
	}
	return best, nil
}

// originalDevices resolves subcluster ID -> original *Device for ids.
func originalDevices(c *device.Cluster, ids []int) []*device.Device {
	orig := make([]*device.Device, len(ids))
	for j, id := range ids {
		orig[j] = c.Device(id)
	}
	return orig
}
