package core

import (
	"sync"
	"time"

	"fastt/internal/graph"
)

// scheduleContext caches the graph-derived structures every scheduling pass
// would otherwise re-derive per call: the topological order, the per-op
// incoming/outgoing edge indexes, and the entry list. All fields are
// immutable after construction, so one context may serve any number of
// concurrent readers. Validity is keyed on (graph pointer, version): a
// structural mutation of the graph bumps its version counter and makes the
// context stale.
//
// A context views either a real graph (ov == nil) or a graph.SplitOverlay
// over one (ov != nil, built by overlayContext). Overlay contexts have no
// topo order — delta rank updates never need one — and carry a dead op ID
// (the tombstoned split target) that schedulers must skip. Consumers must
// address ops and edges through the accessors below rather than through
// c.g, which for an overlay context is only the base graph.
type scheduleContext struct {
	g       *graph.Graph
	ov      *graph.SplitOverlay // non-nil for overlay views
	version uint64
	topo    []int   // nil for overlay contexts
	outIdx  [][]int // op ID -> global edge indexes (outgoing)
	inIdx   [][]int // op ID -> global edge indexes (incoming)
	entries []int   // entry op IDs, ascending
	nOps    int
	dead    int // tombstoned op ID, or -1
	// Edge storage: global index ei < len(baseEdges) addresses
	// baseEdges[ei], anything beyond addresses extraEdges[ei-len].
	baseEdges  []graph.Edge
	extraEdges []graph.Edge
}

// newScheduleContext derives a fresh context; it fails only on cyclic
// graphs.
func newScheduleContext(g *graph.Graph) (*scheduleContext, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := &scheduleContext{
		g:         g,
		version:   g.Version(),
		topo:      topo,
		outIdx:    make([][]int, g.NumOps()),
		inIdx:     make([][]int, g.NumOps()),
		entries:   g.EntryOps(),
		nOps:      g.NumOps(),
		dead:      -1,
		baseEdges: g.Edges(),
	}
	for i, e := range g.Edges() {
		c.outIdx[e.From] = append(c.outIdx[e.From], i)
		c.inIdx[e.To] = append(c.inIdx[e.To], i)
	}
	return c, nil
}

// stale reports whether the graph was structurally mutated (AddOp, Connect)
// after the context was built.
func (c *scheduleContext) stale() bool { return c.version != c.g.Version() }

// edgeAt resolves a global edge index.
func (c *scheduleContext) edgeAt(ei int) graph.Edge {
	if ei < len(c.baseEdges) {
		return c.baseEdges[ei]
	}
	return c.extraEdges[ei-len(c.baseEdges)]
}

// numEdges returns the size of the global edge index space (dead base edges
// included for overlay contexts; they are never referenced by outIdx/inIdx).
func (c *scheduleContext) numEdges() int {
	return len(c.baseEdges) + len(c.extraEdges)
}

// op resolves an op ID in the context's view.
func (c *scheduleContext) op(id int) *graph.Op {
	if c.ov != nil {
		return c.ov.Op(id)
	}
	return c.g.Op(id)
}

// opByName resolves a name in the context's view.
func (c *scheduleContext) opByName(name string) (*graph.Op, bool) {
	if c.ov != nil {
		return c.ov.OpByName(name)
	}
	return c.g.OpByName(name)
}

// overlayCtxPool recycles overlay contexts: OS-DPOS builds one per split
// candidate, and the outIdx/inIdx headers are the dominant allocation.
var overlayCtxPool = sync.Pool{New: func() any { return &scheduleContext{} }}

func resizeRows(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	return s[:n]
}

// dropEdge returns a copy of an edge-index row without ei, with spare
// capacity for the single replacement edge the overlay appends.
func dropEdge(row []int, ei int) []int {
	out := make([]int, 0, len(row))
	for _, e := range row {
		if e != ei {
			out = append(out, e)
		}
	}
	return out
}

// overlayContext derives the scheduling view of a split overlay from the
// base graph's context in O(V + Δ): row headers are copied (rows of
// untouched ops share the base backing arrays), only the rows of the
// target's predecessors/successors are patched, and rows for the delta ops
// are built from the delta edges. The per-op relative edge order matches
// the graph SplitOperation would build — base-order edges first, the
// replacement edge appended last — so channel-booking and tie-break
// decisions downstream are identical to the clone path's.
//
// base must be the context of ov.Base(). The returned context goes back to
// the pool via releaseOverlayContext.
func overlayContext(base *scheduleContext, ov *graph.SplitOverlay) *scheduleContext {
	baseN := base.nOps
	nOps := ov.NumOps()
	baseE := len(base.baseEdges)
	tgt := ov.Target().ID

	c := overlayCtxPool.Get().(*scheduleContext)
	c.g = base.g
	c.ov = ov
	c.version = base.version
	c.topo = nil
	c.nOps = nOps
	c.dead = tgt
	c.baseEdges = base.baseEdges
	c.extraEdges = ov.NewEdges()
	c.outIdx = resizeRows(c.outIdx, nOps)
	c.inIdx = resizeRows(c.inIdx, nOps)
	copy(c.outIdx, base.outIdx)
	copy(c.inIdx, base.inIdx)
	for i := baseN; i < nOps; i++ {
		c.outIdx[i], c.inIdx[i] = nil, nil
	}
	c.outIdx[tgt], c.inIdx[tgt] = nil, nil
	// Patch the rows that referenced the target: predecessors lose their
	// out-edge to it, successors their in-edge from it.
	for _, ei := range base.inIdx[tgt] {
		from := base.baseEdges[ei].From
		c.outIdx[from] = dropEdge(base.outIdx[from], ei)
	}
	for _, ei := range base.outIdx[tgt] {
		to := base.baseEdges[ei].To
		c.inIdx[to] = dropEdge(base.inIdx[to], ei)
	}
	// Thread the delta edges in. Rows touched here are either the freshly
	// patched pred/succ rows or the nil rows of delta ops — never a shared
	// base backing array.
	for j := range c.extraEdges {
		e := &c.extraEdges[j]
		gi := baseE + j
		c.outIdx[e.From] = append(c.outIdx[e.From], gi)
		c.inIdx[e.To] = append(c.inIdx[e.To], gi)
	}
	// Entry list: splitting an entry op turns its sub-ops into entries
	// (their IDs exceed every base ID, so ascending order is preserved).
	c.entries = c.entries[:0]
	if len(base.inIdx[tgt]) == 0 {
		for _, id := range base.entries {
			if id != tgt {
				c.entries = append(c.entries, id)
			}
		}
		c.entries = append(c.entries, ov.SubOpIDs()...)
	} else {
		c.entries = append(c.entries, base.entries...)
	}
	return c
}

// releaseOverlayContext recycles a context produced by overlayContext.
func releaseOverlayContext(c *scheduleContext) {
	if c != nil {
		overlayCtxPool.Put(c)
	}
}

// ctxCacheSize bounds the global context cache. Each cached entry keeps its
// graph reachable, so the cache is a small fixed ring rather than an
// unbounded map: repeated calculator invocations over the handful of live
// graphs (the session's model graph, the gsc/OS-DPOS working graph) hit,
// and throwaway candidate graphs cycle out.
const ctxCacheSize = 8

var ctxCache struct {
	sync.Mutex
	entries [ctxCacheSize]*scheduleContext
	next    int
}

// contextFor returns a scheduleContext for g, reusing a cached one when g
// was seen before and has not been mutated since. A stale entry for the
// same graph is replaced in place.
func contextFor(g *graph.Graph) (*scheduleContext, error) {
	ctxCache.Lock()
	for _, c := range ctxCache.entries {
		if c != nil && c.g == g && !c.stale() {
			ctxCache.Unlock()
			return c, nil
		}
	}
	ctxCache.Unlock()

	c, err := newScheduleContext(g)
	if err != nil {
		return nil, err
	}

	ctxCache.Lock()
	slot := -1
	for i, old := range ctxCache.entries {
		if old != nil && old.g == g {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = ctxCache.next
		ctxCache.next = (ctxCache.next + 1) % ctxCacheSize
	}
	ctxCache.entries[slot] = c
	ctxCache.Unlock()
	return c, nil
}

// Scratch recycling. OS-DPOS runs one full DPOS per candidate split, and a
// session recomputes strategies every profiling round; without reuse each
// run re-allocates O(ops + edges + devices) working state. sync.Pool keeps
// the recycling safe for the concurrent candidate workers.

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
		return s
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func resizeDurations(s []time.Duration, n int) []time.Duration {
	if cap(s) < n {
		return make([]time.Duration, n)
	}
	return s[:n]
}

var ranksPool = sync.Pool{New: func() any { return &Ranks{} }}

// ranksFromPool returns a Ranks sized for nOps/nEdges; every element is
// overwritten by computeRanksCtx, so no zeroing is needed.
func ranksFromPool(nOps, nEdges int) *Ranks {
	r := ranksPool.Get().(*Ranks)
	r.W = resizeDurations(r.W, nOps)
	r.MinW = resizeDurations(r.MinW, nOps)
	r.CMax = resizeDurations(r.CMax, nEdges)
	r.Rank = resizeDurations(r.Rank, nOps)
	r.RestMin = resizeDurations(r.RestMin, nOps)
	return r
}

// releaseRanks recycles a Ranks the caller no longer references. Never
// release ranks returned to package clients (ComputeRanks).
func releaseRanks(r *Ranks) {
	if r != nil {
		ranksPool.Put(r)
	}
}

var schedulePool = sync.Pool{New: func() any { return &Schedule{} }}

// scheduleFromPool returns a Schedule with all per-op slices sized to n.
// Start/Finish/Placement/Order/Priorities are fully written by dposCtx.
func scheduleFromPool(n int) *Schedule {
	s := schedulePool.Get().(*Schedule)
	s.Placement = resizeInts(s.Placement, n)
	s.Order = resizeInts(s.Order, n)
	s.Priorities = resizeInts(s.Priorities, n)
	s.Start = resizeDurations(s.Start, n)
	s.Finish = resizeDurations(s.Finish, n)
	s.Makespan = 0
	s.CriticalPath = nil
	return s
}

// releaseSchedule recycles a schedule that lost a candidate comparison or
// was superseded. Never release a schedule that escapes to a caller.
func releaseSchedule(s *Schedule) {
	if s != nil {
		schedulePool.Put(s)
	}
}

func resizeUint64s(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// dposScratch is the per-run working state of one DPOS list-scheduling
// pass.
//
// The channel books are epoch-stamped flat arrays instead of maps: an entry
// is valid only when its stamp matches the current epoch, so invalidating a
// whole book costs one counter increment — no clearing, no map hashing.
// chanAvail (the committed per-(src dev, dst dev) copy-engine frontier) is
// small (nDevs²) and is zeroed per run instead of stamped. copyDone — the
// committed arrival time per (producer op, dest device), deduplicating
// transfers of one tensor to several consumers on a device — is O(ops ×
// devs) and validated against the per-run epoch. probeChan/probeCopy are
// the non-committing EFT-probe overlays, validated against a fresh epoch
// per probe; stamps never repeat across runs because the counter only
// grows for the lifetime of the pooled scratch, and freshly grown arrays
// hold zero stamps the counter has already passed.
type dposScratch struct {
	onCP   []bool
	placed []bool
	queue  []int
	states []deviceState

	epoch     uint64          // last issued stamp; 0 is never issued
	chanAvail []time.Duration // nDevs²: committed channel frontier
	copyDone  []time.Duration // nOps × nDevs: committed arrivals
	copyEpoch []uint64
	probeChan []time.Duration // nDevs²: per-probe channel overlay
	probeCEp  []uint64
	probeCopy []time.Duration // nOps × nDevs: per-probe arrival overlay
	probeDEp  []uint64
}

var scratchPool = sync.Pool{New: func() any { return &dposScratch{} }}

// reset prepares the scratch for one run and returns the run epoch that
// validates copyDone entries.
func (s *dposScratch) reset(nOps, nDevs int) uint64 {
	s.onCP = resizeBools(s.onCP, nOps)
	s.placed = resizeBools(s.placed, nOps)
	s.queue = resizeInts(s.queue, nOps)
	if cap(s.states) >= nDevs {
		s.states = s.states[:nDevs]
	} else {
		s.states = make([]deviceState, nDevs)
	}
	for i := range s.states {
		s.states[i].intervals = s.states[i].intervals[:0]
		s.states[i].memFree = 0
		s.states[i].lastEnd = 0
	}
	s.chanAvail = resizeDurations(s.chanAvail, nDevs*nDevs)
	for i := range s.chanAvail {
		s.chanAvail[i] = 0
	}
	s.probeChan = resizeDurations(s.probeChan, nDevs*nDevs)
	s.probeCEp = resizeUint64s(s.probeCEp, nDevs*nDevs)
	s.copyDone = resizeDurations(s.copyDone, nOps*nDevs)
	s.copyEpoch = resizeUint64s(s.copyEpoch, nOps*nDevs)
	s.probeCopy = resizeDurations(s.probeCopy, nOps*nDevs)
	s.probeDEp = resizeUint64s(s.probeDEp, nOps*nDevs)
	s.epoch++
	return s.epoch
}

// nextEpoch issues a fresh probe epoch.
func (s *dposScratch) nextEpoch() uint64 {
	s.epoch++
	return s.epoch
}
