package core

import (
	"fmt"
	"sort"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// SyncGroup is the subgraph synchronizing one shared variable in a
// data-parallel graph: the Variable, the per-replica consumers reading its
// weights (forward and backward ops), the AddN aggregation, and the
// ApplyGradient update.
type SyncGroup struct {
	Variable  int
	Consumers []int // replica ops reading the weight tensor
	Grads     []int // gradient producers feeding the aggregation
	SubAggs   []int // intermediate AddN nodes of a hierarchical aggregation
	AddN      int
	Apply     int
	// ParamBytes is the parameter size being synchronized.
	ParamBytes int64
}

// ops returns all member op IDs (deduplicated: backward ops appear both as
// consumers and gradient producers).
func (s SyncGroup) ops() []int {
	seen := make(map[int]bool, 3+len(s.Consumers)+len(s.Grads))
	out := make([]int, 0, 3+len(s.Consumers)+len(s.Grads))
	add := func(id int) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	add(s.Variable)
	for _, id := range s.Consumers {
		add(id)
	}
	for _, id := range s.Grads {
		add(id)
	}
	for _, id := range s.SubAggs {
		add(id)
	}
	add(s.AddN)
	add(s.Apply)
	return out
}

// GradientSyncGroups discovers the gradient synchronization groups of a
// data-parallel training graph structurally: each Variable op anchors one
// group; its successors are the weight readers, and the AddN/Apply pair is
// found through the colocation constraints pointing back at the Variable.
func GradientSyncGroups(g *graph.Graph) []SyncGroup {
	// Variable ID -> pending group under construction.
	byVar := make(map[int]*SyncGroup)
	var order []int
	for _, op := range g.Ops() {
		if op.Kind != graph.KindVariable {
			continue
		}
		byVar[op.ID] = &SyncGroup{
			Variable:   op.ID,
			Consumers:  g.Successors(op.ID),
			AddN:       -1,
			Apply:      -1,
			ParamBytes: op.ParamBytes,
		}
		order = append(order, op.ID)
	}
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		v, ok := g.OpByName(op.ColocateWith)
		if !ok || v.Kind != graph.KindVariable {
			continue
		}
		grp, ok := byVar[v.ID]
		if !ok {
			continue
		}
		switch op.Kind {
		case graph.KindAddN:
			grp.AddN = op.ID
			grp.Grads, grp.SubAggs = collectGradients(g, op.ID)
		case graph.KindApplyGradient:
			grp.Apply = op.ID
		}
	}
	groups := make([]SyncGroup, 0, len(order))
	for _, id := range order {
		grp := byVar[id]
		if grp.AddN < 0 || grp.Apply < 0 {
			continue // not a full sync group (e.g. frozen variable)
		}
		groups = append(groups, *grp)
	}
	// Largest parameters first: they carry the heaviest sync traffic.
	sort.SliceStable(groups, func(a, b int) bool {
		return groups[a].ParamBytes > groups[b].ParamBytes
	})
	return groups
}

// ColocateSync is the gradient-sync colocation pass. The paper's analysis
// (Sec. 6.5, Fig. 4) shows FastT placing "replicas of operations with large
// parameters in one GPU rather than 4 GPUs, to avoid inter-GPU aggregation
// of gradients of these parameters"; the listing heuristic of Alg. 1 is
// myopic per-op EFT and cannot discover that pattern on its own, so this
// pass realizes the reported outcome explicitly (see DESIGN.md §2): walk
// sync groups in descending parameter size and pin a whole group (forward
// replicas, gradient producers, aggregation, updates) onto one device
// whenever the DPOS estimate of the full graph improves; stop at the first
// group that does not improve, mirroring Alg. 2's termination rule.
//
// It returns the accepted pins (possibly empty) and the schedule under
// them.
// Unlike the OS-DPOS candidate search, the per-group probes cannot fan out:
// each trial pins the group at sched.Placement[grp.Variable] of the
// previously accepted schedule, and the pass ends at the first
// non-improving probe — so the first probe of any speculative batch always
// decides before the rest could matter. Instead the pass reuses one
// scheduling context and one rank computation across the initial DPOS and
// every probe (pins alter placement, never ranks, which depend only on the
// graph and the estimator).
func ColocateSync(g *graph.Graph, cluster *device.Cluster, est cost.Estimator,
	opts Options) (map[string]int, *Schedule, error) {
	est = cost.ReadSnapshot(est)
	ctx, err := contextFor(g)
	if err != nil {
		return nil, nil, fmt.Errorf("colocate sync: %w", err)
	}
	lat := latticeFor(ctx, cluster, est, opts)
	ranks := computeRanksCtx(ctx, lat)
	defer releaseRanks(ranks)
	sched, err := dposCtx(ctx, cluster, lat, opts, ranks, 0, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("colocate sync: %w", err)
	}
	groups := GradientSyncGroups(g)
	if len(groups) == 0 || cluster.NumDevices() < 2 {
		return nil, sched, nil
	}
	best := sched.Makespan
	pins := make(map[string]int)
	examined := 0
	for _, grp := range groups {
		if len(grp.Grads) < 2 {
			continue // single replica: nothing to co-locate
		}
		if alreadyColocated(grp, sched.Placement) {
			continue
		}
		if opts.MaxSyncGroups > 0 && examined >= opts.MaxSyncGroups {
			break
		}
		examined++

		// Pin the group where the scheduler put the variable.
		target := sched.Placement[grp.Variable]
		trial := make(map[string]int, len(pins)+8)
		for k, v := range pins {
			trial[k] = v
		}
		for _, id := range grp.ops() {
			trial[g.Op(id).Name] = target
		}
		trialOpts := opts
		trialOpts.Pinned = mergePins(opts.Pinned, trial)
		cand, err := dposCtx(ctx, cluster, lat, trialOpts, ranks, 0, nil)
		if err != nil {
			continue // infeasible under pins; try the next group
		}
		if cand.Makespan < best {
			best = cand.Makespan
			pins = trial
			releaseSchedule(sched)
			sched = cand
		} else {
			releaseSchedule(cand)
			break // first non-improving group ends the pass
		}
	}
	return pins, sched, nil
}

// collectGradients walks the aggregation tree rooted at the final AddN and
// returns the true gradient producers (leaves) plus any intermediate AddN
// nodes of a hierarchical aggregation.
func collectGradients(g *graph.Graph, root int) (grads, subAggs []int) {
	for _, p := range g.Predecessors(root) {
		if g.Op(p).Kind == graph.KindAddN {
			subAggs = append(subAggs, p)
			gs, sa := collectGradients(g, p)
			grads = append(grads, gs...)
			subAggs = append(subAggs, sa...)
			continue
		}
		grads = append(grads, p)
	}
	return grads, subAggs
}

func alreadyColocated(grp SyncGroup, placement []int) bool {
	dev := placement[grp.AddN]
	for _, id := range grp.ops() {
		if placement[id] != dev {
			return false
		}
	}
	return true
}

// mergePins overlays b on a without mutating either.
func mergePins(a, b map[string]int) map[string]int {
	if len(a) == 0 {
		return b
	}
	out := make(map[string]int, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
