package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// SyncGroup is the subgraph synchronizing one shared variable in a
// data-parallel graph: the Variable, the per-replica consumers reading its
// weights (forward and backward ops), the AddN aggregation, and the
// ApplyGradient update.
type SyncGroup struct {
	Variable  int
	Consumers []int // replica ops reading the weight tensor
	Grads     []int // gradient producers feeding the aggregation
	SubAggs   []int // intermediate AddN nodes of a hierarchical aggregation
	AddN      int
	Apply     int
	// ParamBytes is the parameter size being synchronized.
	ParamBytes int64
}

// ops returns all member op IDs (deduplicated: backward ops appear both as
// consumers and gradient producers).
func (s SyncGroup) ops() []int {
	seen := make(map[int]bool, 3+len(s.Consumers)+len(s.Grads))
	out := make([]int, 0, 3+len(s.Consumers)+len(s.Grads))
	add := func(id int) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	add(s.Variable)
	for _, id := range s.Consumers {
		add(id)
	}
	for _, id := range s.Grads {
		add(id)
	}
	for _, id := range s.SubAggs {
		add(id)
	}
	add(s.AddN)
	add(s.Apply)
	return out
}

// GradientSyncGroups discovers the gradient synchronization groups of a
// data-parallel training graph structurally: each Variable op anchors one
// group; its successors are the weight readers, and the AddN/Apply pair is
// found through the colocation constraints pointing back at the Variable.
func GradientSyncGroups(g *graph.Graph) []SyncGroup {
	// Variable ID -> pending group under construction.
	byVar := make(map[int]*SyncGroup)
	var order []int
	for _, op := range g.Ops() {
		if op.Kind != graph.KindVariable {
			continue
		}
		byVar[op.ID] = &SyncGroup{
			Variable:   op.ID,
			Consumers:  g.Successors(op.ID),
			AddN:       -1,
			Apply:      -1,
			ParamBytes: op.ParamBytes,
		}
		order = append(order, op.ID)
	}
	for _, op := range g.Ops() {
		if op.ColocateWith == "" {
			continue
		}
		v, ok := g.OpByName(op.ColocateWith)
		if !ok || v.Kind != graph.KindVariable {
			continue
		}
		grp, ok := byVar[v.ID]
		if !ok {
			continue
		}
		switch op.Kind {
		case graph.KindAddN:
			grp.AddN = op.ID
			grp.Grads, grp.SubAggs = collectGradients(g, op.ID)
		case graph.KindApplyGradient:
			grp.Apply = op.ID
		}
	}
	groups := make([]SyncGroup, 0, len(order))
	for _, id := range order {
		grp := byVar[id]
		if grp.AddN < 0 || grp.Apply < 0 {
			continue // not a full sync group (e.g. frozen variable)
		}
		groups = append(groups, *grp)
	}
	// Largest parameters first: they carry the heaviest sync traffic.
	sort.SliceStable(groups, func(a, b int) bool {
		return groups[a].ParamBytes > groups[b].ParamBytes
	})
	return groups
}

// ColocateSync is the gradient-sync colocation pass. The paper's analysis
// (Sec. 6.5, Fig. 4) shows FastT placing "replicas of operations with large
// parameters in one GPU rather than 4 GPUs, to avoid inter-GPU aggregation
// of gradients of these parameters"; the listing heuristic of Alg. 1 is
// myopic per-op EFT and cannot discover that pattern on its own, so this
// pass realizes the reported outcome explicitly (see DESIGN.md §2): walk
// sync groups in descending parameter size and pin a whole group (forward
// replicas, gradient producers, aggregation, updates) onto one device
// whenever the DPOS estimate of the full graph improves; stop at the first
// group that does not improve, mirroring Alg. 2's termination rule.
//
// It returns the accepted pins (possibly empty) and the schedule under
// them.
//
// Each group's candidate devices are probed concurrently on the shared
// work-stealing pool (Workers > 1): every probe pins the whole group at one
// device and runs a bounded DPOS trial against the incumbent makespan, with
// the live shared bound letting one improving probe abort its siblings
// mid-run. The probe order is deterministic — the variable's current device
// first (the old single-probe heuristic and the preferred tiebreak), then
// the remaining devices ascending — and a first-minimum reduce over
// position-indexed results, with the same live-bound tie re-resolution as
// the OS-DPOS rounds, restores the sequential answer at any worker count.
// A group is accepted at the best strictly-improving device; the pass ends
// at the first group no device improves (pruned probes prove
// non-improvement without finishing), and moves on only past groups whose
// every probe is infeasible under the accumulated pins. All probes reuse
// one scheduling context and one rank computation (pins alter placement,
// never ranks, which depend only on the graph and the estimator).
func ColocateSync(g *graph.Graph, cluster *device.Cluster, est cost.Estimator,
	opts Options) (map[string]int, *Schedule, error) {
	return ColocateSyncCtx(context.Background(), g, cluster, est, opts)
}

// ColocateSyncCtx is ColocateSync under a context: cancelling ctx ends the
// pass at the next group or probe boundary and returns ctx.Err(). A nil ctx
// means context.Background().
func ColocateSyncCtx(ctx context.Context, g *graph.Graph, cluster *device.Cluster, est cost.Estimator,
	opts Options) (map[string]int, *Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	est = cost.ReadSnapshot(est)
	sctx, err := contextFor(g)
	if err != nil {
		return nil, nil, fmt.Errorf("colocate sync: %w", err)
	}
	lat := latticeFor(sctx, cluster, est, opts)
	ranks := computeRanksCtx(sctx, lat)
	defer releaseRanks(ranks)
	sched, err := dposCtx(sctx, cluster, lat, opts, ranks, 0, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("colocate sync: %w", err)
	}
	groups := GradientSyncGroups(g)
	numDev := cluster.NumDevices()
	if len(groups) == 0 || numDev < 2 {
		return nil, sched, nil
	}
	pool := newWorkPool(opts.workers())
	defer pool.close()
	best := sched.Makespan
	pins := make(map[string]int)
	examined := 0
	for _, grp := range groups {
		if err := ctx.Err(); err != nil {
			releaseSchedule(sched)
			return nil, nil, err
		}
		if len(grp.Grads) < 2 {
			continue // single replica: nothing to co-locate
		}
		if alreadyColocated(grp, sched.Placement) {
			continue
		}
		if opts.MaxSyncGroups > 0 && examined >= opts.MaxSyncGroups {
			break
		}
		examined++

		names := make([]string, 0, 8)
		for _, id := range grp.ops() {
			names = append(names, g.Op(id).Name)
		}
		// Probe order: the device the scheduler gave the variable first,
		// then the rest ascending. First-minimum over this order decides.
		order := make([]int, 0, numDev)
		order = append(order, sched.Placement[grp.Variable])
		for d := 0; d < numDev; d++ {
			if d != order[0] {
				order = append(order, d)
			}
		}
		bound := best
		var live *atomic.Int64
		if opts.DisablePruning {
			bound = 0
		} else if pool != nil {
			live = new(atomic.Int64)
			live.Store(int64(best))
		}
		probe := func(i int, b time.Duration, lv *atomic.Int64) candOutcome {
			if ctx.Err() != nil {
				return candOutcome{} // cancelled: drop the probe
			}
			trial := make(map[string]int, len(pins)+len(names))
			for k, v := range pins {
				trial[k] = v
			}
			for _, nm := range names {
				trial[nm] = order[i]
			}
			trialOpts := opts
			trialOpts.Pinned = mergePins(opts.Pinned, trial)
			cand, err := dposCtx(sctx, cluster, lat, trialOpts, ranks, b, lv)
			if err != nil {
				var pe *prunedError
				if errors.As(err, &pe) {
					return candOutcome{pruned: true, bound: pe.bound}
				}
				return candOutcome{} // infeasible under pins
			}
			if lv != nil {
				publishIncumbent(lv, cand.Makespan)
			}
			return candOutcome{makespan: cand.Makespan, sched: cand, ok: true}
		}
		results := make([]candOutcome, len(order))
		pool.run(len(order), func(i int) { results[i] = probe(i, bound, live) })
		if err := ctx.Err(); err != nil {
			releaseOutcomes(results)
			releaseSchedule(sched)
			return nil, nil, err
		}

		bestIdx, pruned := -1, 0
		var bestFT time.Duration
		for i, r := range results {
			if r.pruned {
				pruned++
				continue
			}
			if !r.ok {
				continue
			}
			if bestIdx < 0 || r.makespan < bestFT {
				bestIdx, bestFT = i, r.makespan
			}
		}
		// Live-bound tie re-resolution, as in the OS-DPOS reduce: only
		// probes aborted exactly at bound == bestFT could have tied the
		// minimum, and the sequential pass prefers the earliest.
		if live != nil && bestIdx > 0 {
			for i := 0; i < bestIdx; i++ {
				if !results[i].pruned || results[i].bound != bestFT {
					continue
				}
				if full := probe(i, bestFT+1, nil); full.ok {
					results[i] = full
					bestIdx = i
					break
				}
			}
		}
		if bestIdx < 0 {
			if pruned > 0 {
				break // every completing probe would be non-improving
			}
			continue // all infeasible under pins: try the next group
		}
		if bestFT >= best {
			// Reachable only with DisablePruning (a bounded completion
			// beats the bound by construction): first non-improving
			// group ends the pass.
			releaseOutcomes(results)
			break
		}
		wsched := results[bestIdx].sched
		results[bestIdx].sched = nil
		releaseOutcomes(results)
		trial := make(map[string]int, len(pins)+len(names))
		for k, v := range pins {
			trial[k] = v
		}
		for _, nm := range names {
			trial[nm] = order[bestIdx]
		}
		best = wsched.Makespan
		pins = trial
		releaseSchedule(sched)
		sched = wsched
	}
	return pins, sched, nil
}

// collectGradients walks the aggregation tree rooted at the final AddN and
// returns the true gradient producers (leaves) plus any intermediate AddN
// nodes of a hierarchical aggregation.
func collectGradients(g *graph.Graph, root int) (grads, subAggs []int) {
	for _, p := range g.Predecessors(root) {
		if g.Op(p).Kind == graph.KindAddN {
			subAggs = append(subAggs, p)
			gs, sa := collectGradients(g, p)
			grads = append(grads, gs...)
			subAggs = append(subAggs, sa...)
			continue
		}
		grads = append(grads, p)
	}
	return grads, subAggs
}

func alreadyColocated(grp SyncGroup, placement []int) bool {
	dev := placement[grp.AddN]
	for _, id := range grp.ops() {
		if placement[id] != dev {
			return false
		}
	}
	return true
}

// mergePins overlays b on a without mutating either.
func mergePins(a, b map[string]int) map[string]int {
	if len(a) == 0 {
		return b
	}
	out := make(map[string]int, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
