package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/strategy"
)

// ErrNoFeasiblePlacement is returned when some operation fits on no device
// (every device would exceed its memory capacity).
var ErrNoFeasiblePlacement = errors.New("no device can hold operation")

// errPruned reports that a candidate evaluation was aborted because a valid
// lower bound on its final makespan reached the caller's bound: the
// candidate cannot strictly beat the incumbent, so finishing the schedule
// would be wasted work. Internal to the OS-DPOS candidate search.
var errPruned = errors.New("candidate pruned by makespan bound")

// prunedError carries the bound that was in effect at the abort (the live
// shared incumbent may have tightened it below the caller's static bound).
// A pruned candidate's true makespan is >= that bound, which is exactly the
// fact the deterministic tie-resolution pass in OS-DPOS needs. It matches
// errPruned under errors.Is.
type prunedError struct {
	bound time.Duration
}

func (e *prunedError) Error() string { return errPruned.Error() }

func (e *prunedError) Is(target error) bool { return target == errPruned }

// Options tunes DPOS and OS-DPOS.
type Options struct {
	// Memory converts op footprints into resident bytes for capacity
	// checks. Zero value falls back to graph.DefaultMemoryModel.
	Memory graph.MemoryModel
	// MaxSplitOps bounds how many critical-path operations OS-DPOS
	// considers for splitting; 0 means unlimited (the paper's behaviour:
	// stop only at the first non-improving op).
	MaxSplitOps int
	// Pinned forces named operations onto specific devices (used by the
	// gradient-sync colocation pass). Pins are soft: when the target
	// device lacks memory the op falls back to normal selection. Keyed by
	// name so pins survive graph rewrites.
	Pinned map[string]int
	// MaxSyncGroups bounds how many gradient-sync groups the colocation
	// pass examines; 0 means unlimited.
	MaxSyncGroups int
	// Workers bounds the goroutines evaluating OS-DPOS split candidates
	// concurrently. 0 (the default) uses runtime.GOMAXPROCS(0); 1 forces
	// the sequential path. Any value yields byte-identical strategies:
	// candidates are reduced in deterministic (makespan, dim, n) order
	// regardless of evaluation order, and the live shared pruning bound of
	// the concurrent path resolves ties back to the sequential
	// first-minimum winner.
	Workers int
	// DisableInsertion turns off idle-slot insertion (ablation): operations
	// are appended after the device's last scheduled interval instead of
	// filling earlier gaps.
	DisableInsertion bool
	// DisableCPDevice turns off dedicated critical-path device selection
	// (ablation): critical-path operations use plain min-EFT like all
	// others.
	DisableCPDevice bool
	// DisableIncremental makes OS-DPOS evaluate split candidates on full
	// SplitOperation clones instead of copy-on-write overlays with delta
	// rank updates. Both paths produce byte-identical strategies; the clone
	// path exists as the reference for equivalence tests and benchmarks.
	DisableIncremental bool
	// DisablePruning turns off bound-based candidate pruning in OS-DPOS:
	// every candidate is scheduled to completion even after a lower bound
	// proves it cannot beat the incumbent makespan. Pruning never changes
	// the accepted split list; disabling it only costs time.
	DisablePruning bool
	// DisableSpeculation turns off speculative round pipelining in OS-DPOS:
	// with Workers > 1 the search normally starts evaluating round k+1's
	// candidates against the predicted round-k winner while round k is
	// still reducing, discarding and re-evaluating on a mispredict.
	// Speculation never changes the committed strategy (the deterministic
	// in-order reduce is the commit point); disabling it only serializes
	// the rounds again. No effect at Workers <= 1.
	DisableSpeculation bool
	// DisableLattice makes every scheduling pass resolve costs through
	// direct per-entry cost.Estimator calls instead of the cached dense
	// cost lattice (no comm-class dedup, no cross-call reuse, no O(Δ)
	// overlay extension). Both paths produce byte-identical strategies;
	// the direct path exists as the reference for equivalence tests.
	DisableLattice bool
	// Seed warm-starts OS-DPOS from a prior strategy artifact for the same
	// base graph: the seed is re-materialized, evaluated once with DPOS on
	// the target cluster for an exact feasible makespan, and that value
	// tightens the initial incumbent bound of every round (pruning is
	// exact, so candidates that cannot beat the seed abort early). The
	// result is never worse than the seed's re-evaluated makespan, and is
	// byte-identical to the cold search whenever any candidate beats the
	// seed; otherwise the re-materialized seed itself is returned
	// (SplitResult.SeedWon). A seed whose Fingerprint does not match the
	// graph is an error (strategy.ErrFingerprint); a seed that fails to
	// materialize or schedule on the target cluster is ignored and the
	// search runs cold. Elastic Grow, fault recovery, `fastt compute
	// -seed-strategy` and the serve related-key lookup all thread the
	// strategy they already hold through this field.
	Seed *strategy.Artifact
	// ComputeBound annotates the finished strategy with the reference
	// lower bound on the ideal-system optimum of its materialized graph
	// (Strategy.LowerBound/GapPct via optimal.Bound). Reporting-only and
	// opt-in: the bound never influences the search, and on catalog-size
	// graphs it adds one relaxation-DP pass over the final graph.
	ComputeBound bool

	// fingerprint carries strategy.Fingerprint(g) when a caller inside this
	// package already computed it, so the seed validation in OSDPOSCtx does
	// not hash the graph a second time. Empty means "compute on demand".
	fingerprint string
}

func (o Options) memory() graph.MemoryModel {
	if o.Memory == (graph.MemoryModel{}) {
		return graph.DefaultMemoryModel()
	}
	return o.Memory
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Schedule is the output of DPOS: device placement, execution order, and
// the predicted timing of every operation.
type Schedule struct {
	// Placement maps op ID -> device ID (S_new of Alg. 1).
	Placement []int
	// Order lists op IDs in ascending scheduled start time (A of Alg. 1).
	Order []int
	// Priorities maps op ID -> its index in Order, ready to hand to the
	// simulator's priority queue discipline (FastT's order enforcement).
	Priorities []int
	// Start and Finish are the predicted ST/FT per op.
	Start, Finish []time.Duration
	// Makespan is the predicted finish time of the last exit operation
	// (FT(o_exit)).
	Makespan time.Duration
	// CriticalPath is the rank-derived critical path used for device
	// selection.
	CriticalPath []int
}

// interval is one scheduled occupation of a device's compute stream.
type interval struct {
	start, end time.Duration
	op         int
}

// deviceState tracks one device during list scheduling.
type deviceState struct {
	intervals []interval // sorted by (start, end)
	memFree   int64
	lastEnd   time.Duration // max interval end, the append-only frontier
}

// insertionSlot finds the earliest start >= ready on the device that fits
// an op of duration dur, allowing insertion into idle gaps between
// already-scheduled intervals (the paper's avail[j] semantics). With
// appendOnly it degrades to scheduling after the last interval (ablation).
//
// Intervals are kept sorted by (start, end); committed intervals never
// properly overlap, so their end times are monotone too (a zero-duration
// interval sharing its start with a longer one sorts first). That makes
// the list its own gap index: every interval ending at or before `ready`
// is irrelevant, and a binary search jumps straight past them instead of
// linearly rescanning the whole prefix on every EFT probe.
func (d *deviceState) insertionSlot(ready, dur time.Duration, appendOnly bool) time.Duration {
	cand := ready
	if appendOnly {
		if d.lastEnd > cand {
			cand = d.lastEnd
		}
		return cand
	}
	if cand >= d.lastEnd {
		// Every interval ends at or before lastEnd, so nothing constrains
		// a start at cand; skip the scan.
		return cand
	}
	ivs := d.intervals
	// First interval that can still constrain cand: ends strictly after it.
	lo, hi := 0, len(ivs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ivs[mid].end > cand {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	for _, iv := range ivs[lo:] {
		if cand+dur <= iv.start {
			return cand
		}
		if iv.end > cand {
			cand = iv.end
		}
	}
	return cand
}

// commit inserts the interval, keeping the list sorted by (start, end) —
// the lexicographic order insertionSlot's binary search relies on.
func (d *deviceState) commit(iv interval) {
	// Append-at-end fast path: an interval starting at or past the current
	// frontier sorts after every existing interval (each starts no later
	// than its own end <= lastEnd), so the binary search and memmove can be
	// skipped. This is the common case — list scheduling mostly extends
	// device frontiers.
	if len(d.intervals) == 0 || iv.start >= d.lastEnd {
		d.intervals = append(d.intervals, iv)
		if iv.end > d.lastEnd {
			d.lastEnd = iv.end
		}
		return
	}
	i := sort.Search(len(d.intervals), func(i int) bool {
		if d.intervals[i].start != iv.start {
			return d.intervals[i].start > iv.start
		}
		return d.intervals[i].end >= iv.end
	})
	d.intervals = append(d.intervals, interval{})
	copy(d.intervals[i+1:], d.intervals[i:])
	d.intervals[i] = iv
	if iv.end > d.lastEnd {
		d.lastEnd = iv.end
	}
}

// DPOS implements Alg. 1 (Device Placement and Operation Sequencing):
// list scheduling with critical-path-aware device selection and
// insertion-based earliest-finish-time placement for off-path operations.
func DPOS(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Schedule, error) {
	est = cost.ReadSnapshot(est)
	ctx, err := contextFor(g)
	if err != nil {
		return nil, fmt.Errorf("compute ranks: %w", err)
	}
	lat := latticeFor(ctx, cluster, est, opts)
	ranks := computeRanksCtx(ctx, lat)
	defer releaseRanks(ranks)
	return dposCtx(ctx, cluster, lat, opts, ranks, 0, nil)
}

// dposFresh schedules a throwaway graph (an OS-DPOS clone candidate): the
// context and lattice are derived locally and never enter the global
// caches, exactly like the clone graph itself.
func dposFresh(g *graph.Graph, cluster *device.Cluster, est cost.Estimator,
	opts Options, bound time.Duration, live *atomic.Int64) (*Schedule, error) {
	ctx, err := newScheduleContext(g)
	if err != nil {
		return nil, err
	}
	lat := buildLattice(ctx, cluster.Devices(), est, !opts.DisableLattice)
	ranks := computeRanksCtx(ctx, lat)
	defer releaseRanks(ranks)
	return dposCtx(ctx, cluster, lat, opts, ranks, bound, live)
}

// dposCtx is the core list scheduler. Every cost it consumes comes
// pre-resolved from the dense lattice; the estimator interface is never
// crossed in here. All per-run working state comes from the scratch pool;
// the returned Schedule comes from the schedule pool and belongs to the
// caller.
//
// A positive bound makes the run a candidate evaluation against an
// incumbent makespan: the moment an op is placed whose finish time plus
// ranks.RestMin (a lower bound on the remaining time to the exit's finish
// under any schedule) reaches the bound, the run aborts with a prunedError
// — the final makespan could only have been >= bound, so the candidate can
// never strictly improve on the incumbent. Zero disables pruning.
//
// live, when non-nil, is the shared incumbent of a concurrent candidate
// round: it holds the smallest makespan any worker has completed so far
// (never above the static bound), and each placement checks against its
// current value, so one worker's finished candidate aborts the others
// mid-run. The prunedError records the live value that triggered the
// abort.
func dposCtx(ctx *scheduleContext, cluster *device.Cluster, lat *costLattice,
	opts Options, ranks *Ranks, bound time.Duration, live *atomic.Int64) (*Schedule, error) {
	n := ctx.nOps
	mm := opts.memory()
	devs := cluster.Devices()
	nd := len(devs)

	scratch := scratchPool.Get().(*dposScratch)
	runEpoch := scratch.reset(n, nd)
	defer scratchPool.Put(scratch)

	cp := criticalPathCtx(ctx, ranks)
	onCP := scratch.onCP
	if !opts.DisableCPDevice {
		for _, id := range cp {
			onCP[id] = true
		}
	}

	states := scratch.states
	for i, d := range devs {
		states[i].memFree = d.MemoryBytes
	}

	// Priority queue: ops in decreasing rank_u order (ancestors first,
	// since rank strictly decreases along edges).
	queue := scratch.queue
	for i := range queue {
		queue[i] = i
	}
	slices.SortFunc(queue, func(a, b int) int {
		ra, rb := ranks.Rank[a], ranks.Rank[b]
		if ra != rb {
			if ra > rb {
				return -1
			}
			return 1
		}
		return a - b
	})

	sched := scheduleFromPool(n)
	sched.CriticalPath = cp
	for i := range sched.Placement {
		sched.Placement[i] = -1
	}
	if dead := ctx.dead; dead >= 0 {
		// The tombstoned op is never scheduled; clear its pooled slots so
		// stale values cannot leak into order sorting or makespan scans.
		sched.Start[dead], sched.Finish[dead] = 0, 0
	}

	// Critical-path device selection (Sec. 5.1): pick the device that can
	// hold the most remaining CP ops with the smallest average execution
	// time. cpCursor tracks how far down the path ops have been assigned;
	// when the current CP device fills up, re-select for the remainder.
	cpDevice := -1
	cpCursor := 0
	selectCPDevice := func() int {
		bestDev, bestAvg := -1, math.MaxFloat64
		for di := range devs {
			free := states[di].memFree
			var total time.Duration
			count := 0
			for _, id := range cp[cpCursor:] {
				need := mm.OpBytes(ctx.op(id))
				if need > free {
					break
				}
				free -= need
				total += lat.execAt(id, di)
				count++
			}
			if count == 0 {
				continue
			}
			avg := float64(total) / float64(count)
			if avg < bestAvg {
				bestAvg = avg
				bestDev = di
			}
		}
		return bestDev
	}

	placed := scratch.placed

	// Channel booking: the schedule estimate accounts for transfer
	// serialization on each ordered device pair (one copy engine per pair,
	// matching the executor), and dedupes transfers per (producer,
	// destination device) — a tensor consumed by several ops on one device
	// is sent once. Without this, the estimate hides exactly the
	// congestion that gradient-sync colocation removes, and the strategy
	// calculator cannot see colocation's benefit.
	//
	// The books are the scratch's epoch-stamped flat arrays: committed
	// state is validated against runEpoch, probe overlays against a fresh
	// epoch per probe, so a probe costs zero setup instead of clearing
	// maps.
	chanAvail := scratch.chanAvail
	copyDone, copyEpoch := scratch.copyDone, scratch.copyEpoch
	probeChan, probeCEp := scratch.probeChan, scratch.probeCEp
	probeCopy, probeDEp := scratch.probeCopy, scratch.probeDEp

	// arrivals returns when op's inputs are all present on dev; when
	// commit is true the implied transfers are booked on their channels,
	// otherwise they land in the probe overlay of epoch pe.
	arrivals := func(op *graph.Op, dev int, commit bool, pe uint64) time.Duration {
		var t time.Duration
		for _, ei := range ctx.inIdx[op.ID] {
			e := ctx.edgeAt(ei)
			if !placed[e.From] {
				continue // unplaced preds cannot happen in rank order, but be safe
			}
			from := sched.Placement[e.From]
			if from == dev {
				if ft := sched.Finish[e.From]; ft > t {
					t = ft
				}
				continue
			}
			ck := e.From*nd + dev
			if copyEpoch[ck] == runEpoch {
				if v := copyDone[ck]; v > t {
					t = v
				}
				continue
			}
			if !commit && probeDEp[ck] == pe {
				if v := probeCopy[ck]; v > t {
					t = v
				}
				continue
			}
			pair := from*nd + dev
			start := sched.Finish[e.From]
			if !commit && probeCEp[pair] == pe {
				if avail := probeChan[pair]; avail > start {
					start = avail
				}
			} else if avail := chanAvail[pair]; avail > start {
				start = avail
			}
			arr := start + lat.commAt(ei, from, dev)
			if commit {
				chanAvail[pair] = arr
				copyDone[ck] = arr
				copyEpoch[ck] = runEpoch
			} else {
				probeChan[pair] = arr
				probeCEp[pair] = pe
				probeCopy[ck] = arr
				probeDEp[ck] = pe
			}
			if arr > t {
				t = arr
			}
		}
		return t
	}

	aborted := false
	var abortBound time.Duration
	place := func(op *graph.Op, dev int) {
		dur := lat.execAt(op.ID, dev)
		st := states[dev].insertionSlot(arrivals(op, dev, true, 0), dur, opts.DisableInsertion)
		states[dev].commit(interval{start: st, end: st + dur, op: op.ID})
		states[dev].memFree -= mm.OpBytes(op)
		sched.Placement[op.ID] = dev
		sched.Start[op.ID] = st
		sched.Finish[op.ID] = st + dur
		placed[op.ID] = true
		// Candidate pruning: the exit op finishes no earlier than this op's
		// finish plus the minimal remaining work along some path to it. The
		// bound is checked on commit only, so every completed run is exact.
		b := bound
		if live != nil {
			if lv := time.Duration(live.Load()); b == 0 || lv < b {
				b = lv
			}
		}
		if b > 0 && st+dur+ranks.RestMin[op.ID] >= b {
			aborted = true
			abortBound = b
		}
	}

	// bestEFT returns the device minimizing the op's EFT among devices
	// with sufficient memory; EFT is +inf (skipped) otherwise.
	bestEFT := func(op *graph.Op) (int, error) {
		need := mm.OpBytes(op)
		bestDev := -1
		var bestFinish time.Duration
		for di := range devs {
			if states[di].memFree < need {
				continue // EFT = +inf (Alg. 1 line 14)
			}
			dur := lat.execAt(op.ID, di)
			ready := arrivals(op, di, false, scratch.nextEpoch())
			st := states[di].insertionSlot(ready, dur, opts.DisableInsertion)
			if ft := st + dur; bestDev == -1 || ft < bestFinish {
				bestDev = di
				bestFinish = ft
			}
		}
		if bestDev == -1 {
			return 0, fmt.Errorf("%w: %q needs %d bytes", ErrNoFeasiblePlacement, op.Name, need)
		}
		return bestDev, nil
	}

	for _, id := range queue {
		if aborted {
			releaseSchedule(sched)
			return nil, &prunedError{bound: abortBound}
		}
		if id == ctx.dead {
			continue
		}
		op := ctx.op(id)

		// Honor colocation constraints first (device placer contract).
		if op.ColocateWith != "" {
			if target, ok := ctx.opByName(op.ColocateWith); ok && placed[target.ID] {
				place(op, sched.Placement[target.ID])
				continue
			}
		}

		// Honor soft pins (gradient-sync colocation) when memory allows.
		if dev, ok := opts.Pinned[op.Name]; ok && dev >= 0 && dev < len(devs) {
			if states[dev].memFree >= mm.OpBytes(op) {
				place(op, dev)
				if onCP[id] {
					advanceCursor(cp, &cpCursor, id)
				}
				continue
			}
		}

		if onCP[id] {
			need := mm.OpBytes(op)
			if cpDevice < 0 || states[cpDevice].memFree < need {
				cpDevice = selectCPDevice()
			}
			if cpDevice >= 0 && states[cpDevice].memFree >= need {
				place(op, cpDevice)
				advanceCursor(cp, &cpCursor, id)
				continue
			}
			// No CP device can take it: fall through to min-EFT.
			advanceCursor(cp, &cpCursor, id)
		}

		dev, err := bestEFT(op)
		if err != nil {
			releaseSchedule(sched)
			return nil, err
		}
		place(op, dev)
	}
	if aborted {
		releaseSchedule(sched)
		return nil, &prunedError{bound: abortBound}
	}

	// Execution list A: ops by ascending ST (Alg. 1 line 23).
	order := sched.Order
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		sa, sb := sched.Start[a], sched.Start[b]
		if sa != sb {
			if sa < sb {
				return -1
			}
			return 1
		}
		ra, rb := ranks.Rank[a], ranks.Rank[b]
		if ra != rb {
			if ra > rb {
				return -1
			}
			return 1
		}
		return a - b
	})
	for i, id := range order {
		sched.Priorities[id] = i
	}
	for id := 0; id < n; id++ {
		if id == ctx.dead {
			continue // a tombstoned op has no edges but is not an exit
		}
		if len(ctx.outIdx[id]) == 0 && sched.Finish[id] > sched.Makespan {
			sched.Makespan = sched.Finish[id]
		}
	}
	return sched, nil
}

// advanceCursor moves the CP cursor past id if id is the next CP entry, so
// CP device re-selection only considers genuinely remaining path ops.
func advanceCursor(cp []int, cursor *int, id int) {
	for *cursor < len(cp) && cp[*cursor] != id {
		*cursor++
	}
	if *cursor < len(cp) {
		*cursor++
	}
}
