package core

import (
	"bytes"
	"testing"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

// assertSameStrategy fails unless the two OS-DPOS results carry identical
// committed strategies: split list, makespan, placement, order, priorities.
func assertSameStrategy(t *testing.T, label string, ref, got *SplitResult) {
	t.Helper()
	if len(ref.Splits) != len(got.Splits) {
		t.Fatalf("%s: split lists differ: %v vs %v", label, ref.Splits, got.Splits)
	}
	for i := range ref.Splits {
		if ref.Splits[i] != got.Splits[i] {
			t.Fatalf("%s: split %d differs: %v vs %v", label, i, ref.Splits[i], got.Splits[i])
		}
	}
	if ref.Schedule.Makespan != got.Schedule.Makespan {
		t.Errorf("%s: makespan %v, want %v", label, got.Schedule.Makespan, ref.Schedule.Makespan)
	}
	if !equalInts(ref.Schedule.Placement, got.Schedule.Placement) {
		t.Errorf("%s: placements differ", label)
	}
	if !equalInts(ref.Schedule.Order, got.Schedule.Order) {
		t.Errorf("%s: orders differ", label)
	}
	if !equalInts(ref.Schedule.Priorities, got.Schedule.Priorities) {
		t.Errorf("%s: priorities differ", label)
	}
}

// TestOSDPOSDeterminismMatrix is the catalog-wide determinism property of
// the restructured search: byte-identical committed strategies across
// Workers ∈ {1, 2, 4, 8} × speculation {on, off} × pruning {on, off}. The
// Workers=1 pruning-on configuration is the sequential reference; every
// other cell must reproduce it exactly (pruning changes which candidates
// finish, never which one wins — TestOSDPOSIncrementalEquivalence pins the
// pruning-off reference itself to the unpruned clone path).
func TestOSDPOSDeterminismMatrix(t *testing.T) {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	catalog := models.Catalog()
	workerSet := []int{1, 2, 4, 8}
	if testing.Short() {
		catalog = catalog[:3]
		workerSet = []int{1, 8}
	}
	for _, spec := range catalog {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Build(4)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.BuildDataParallel(m, gpus)
			if err != nil {
				t.Fatal(err)
			}
			base := Options{MaxSplitOps: 2}
			ref, err := OSDPOS(g, cluster, oracle, base)
			if err != nil {
				t.Fatalf("reference OSDPOS: %v", err)
			}
			for _, w := range workerSet {
				for _, spec := range []bool{false, true} {
					for _, prune := range []bool{false, true} {
						opts := base
						opts.Workers = w
						opts.DisableSpeculation = !spec
						opts.DisablePruning = !prune
						got, err := OSDPOS(g, cluster, oracle, opts)
						if err != nil {
							t.Fatalf("w=%d spec=%v prune=%v: %v", w, spec, prune, err)
						}
						label := ""
						switch {
						case spec && prune:
							label = "spec+prune"
						case spec:
							label = "spec"
						case prune:
							label = "prune"
						default:
							label = "plain"
						}
						assertSameStrategy(t, label, ref, got)
						if w <= 1 && got.Speculated != 0 {
							t.Errorf("w=%d: Speculated = %d, want 0", w, got.Speculated)
						}
						if !spec && got.Speculated != 0 {
							t.Errorf("spec off: Speculated = %d, want 0", got.Speculated)
						}
						if got.Mispredicted > got.Speculated {
							t.Errorf("Mispredicted %d > Speculated %d", got.Mispredicted, got.Speculated)
						}
					}
				}
			}
		})
	}
}

// TestOSDPOSMispredictRecovery forces wrong predicted winners through the
// test hook and asserts (a) the discard/re-evaluate path reproduces the
// sequential strategy exactly and (b) the Mispredicted counter observes at
// least one discarded speculative round somewhere across the catalog.
func TestOSDPOSMispredictRecovery(t *testing.T) {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	// Predict a candidate other than the one that completed: whenever the
	// completion would have been the true winner, the prediction is wrong
	// and the launched round must be discarded.
	specPredictHook = func(_ string, cands []splitCand, improvingIdx int) int {
		return (improvingIdx + 1) % len(cands)
	}
	defer func() { specPredictHook = nil }()

	catalog := models.Catalog()
	if testing.Short() {
		catalog = catalog[:3]
	}
	mispredicted := 0
	for _, spec := range catalog {
		m, err := spec.Build(4)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.BuildDataParallel(m, gpus)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{MaxSplitOps: 4, Workers: 1}
		ref, err := OSDPOS(g, cluster, oracle, opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", spec.Name, err)
		}
		opts.Workers = 8
		got, err := OSDPOS(g, cluster, oracle, opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", spec.Name, err)
		}
		assertSameStrategy(t, spec.Name, ref, got)
		mispredicted += got.Mispredicted
	}
	if mispredicted == 0 {
		t.Error("forced-wrong predictions produced no Mispredicted count anywhere in the catalog")
	}
}

// TestComputeStrategyWorkerDeterminism covers the whole pipeline — the
// concurrent ColocateSync pass plus the pipelined OS-DPOS search — at the
// artifact level: the serialized strategy must be byte-identical across
// worker counts, with and without speculation.
func TestComputeStrategyWorkerDeterminism(t *testing.T) {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	catalog := models.Catalog()
	if testing.Short() {
		catalog = catalog[:2]
	}
	for _, spec := range catalog {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Build(4)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.BuildDataParallel(m, gpus)
			if err != nil {
				t.Fatal(err)
			}
			base := Options{MaxSplitOps: 2, MaxSyncGroups: 2, Workers: 1}
			ref, err := ComputeStrategy(g, cluster, oracle, base)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := ref.Artifact.WriteJSON(&want); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 8} {
				for _, specOff := range []bool{false, true} {
					opts := base
					opts.Workers = w
					opts.DisableSpeculation = specOff
					got, err := ComputeStrategy(g, cluster, oracle, opts)
					if err != nil {
						t.Fatalf("w=%d specOff=%v: %v", w, specOff, err)
					}
					var buf bytes.Buffer
					if err := got.Artifact.WriteJSON(&buf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want.Bytes(), buf.Bytes()) {
						t.Errorf("w=%d specOff=%v: artifact bytes differ from sequential", w, specOff)
					}
				}
			}
		})
	}
}
