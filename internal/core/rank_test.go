package core

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// fakeEst is a deterministic estimator for algorithm tests: execution time
// per op name (homogeneous across devices, falling back to FLOPs as
// nanoseconds), and affine communication on every cross-device pair.
type fakeEst struct {
	exec        map[string]time.Duration
	commPerByte time.Duration
	commLatency time.Duration
}

func (f *fakeEst) Exec(op *graph.Op, _ *device.Device) time.Duration {
	if v, ok := f.exec[op.Name]; ok {
		return v
	}
	// Plumbing ops (variables, aggregations, updates) are cheap fixed-cost
	// kernels; test fixtures encode durations of compute ops directly in
	// FLOPs (nanoseconds).
	switch op.Kind {
	case graph.KindVariable, graph.KindAddN, graph.KindApplyGradient,
		graph.KindInput, graph.KindIdentity:
		return 10 * time.Microsecond
	}
	return time.Duration(op.FLOPs)
}

func (f *fakeEst) Comm(bytes int64, from, to *device.Device) time.Duration {
	if from.ID == to.ID {
		return 0
	}
	return f.commLatency + time.Duration(bytes)*f.commPerByte
}

func clusterN(t *testing.T, n int) *device.Cluster {
	t.Helper()
	c, err := device.SingleServer(n)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	return c
}

// diamond builds a -> {b, c} -> d with the given per-op exec times and
// 10-byte tensors.
func diamond(t *testing.T) (*graph.Graph, *fakeEst) {
	t.Helper()
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindInput, OutputBytes: 10})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindRelu, OutputBytes: 10})
	c := g.MustAddOp(&graph.Op{Name: "c", Kind: graph.KindRelu, OutputBytes: 10})
	d := g.MustAddOp(&graph.Op{Name: "d", Kind: graph.KindAddN})
	g.MustConnect(a, b, 10)
	g.MustConnect(a, c, 10)
	g.MustConnect(b, d, 10)
	g.MustConnect(c, d, 10)
	est := &fakeEst{
		exec: map[string]time.Duration{
			"a": 2 * time.Microsecond,
			"b": 5 * time.Microsecond,
			"c": 3 * time.Microsecond,
			"d": 1 * time.Microsecond,
		},
		commPerByte: 100 * time.Nanosecond, // 10 bytes -> 1us
	}
	return g, est
}

func TestComputeRanksHandComputed(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	r, err := ComputeRanks(g, c, est)
	if err != nil {
		t.Fatalf("ComputeRanks: %v", err)
	}
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	// rank(d) = 1; rank(b) = 5 + (1 + 1) = 7; rank(c) = 3 + 2 = 5;
	// rank(a) = 2 + max(1+7, 1+5) = 10.
	want := []time.Duration{us(10), us(7), us(5), us(1)}
	for i, w := range want {
		if r.Rank[i] != w {
			t.Errorf("rank[%d] = %v, want %v", i, r.Rank[i], w)
		}
	}
}

func TestComputeRanksSingleDeviceNoComm(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 1)
	r, err := ComputeRanks(g, c, est)
	if err != nil {
		t.Fatalf("ComputeRanks: %v", err)
	}
	// With one device there is no cross-device pair: ranks are pure
	// compute chains. rank(a) = 2 + 5 + 1 = 8us.
	if r.Rank[0] != 8*time.Microsecond {
		t.Errorf("rank[a] = %v, want 8us", r.Rank[0])
	}
	for _, cm := range r.CMax {
		if cm != 0 {
			t.Errorf("single-device CMax = %v, want 0", cm)
		}
	}
}

func TestCriticalPathFollowsLargestRank(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	r, err := ComputeRanks(g, c, est)
	if err != nil {
		t.Fatalf("ComputeRanks: %v", err)
	}
	cp := CriticalPath(g, r)
	want := []int{0, 1, 3} // a -> b -> d (b outranks c)
	if len(cp) != len(want) {
		t.Fatalf("CriticalPath = %v, want %v", cp, want)
	}
	for i := range want {
		if cp[i] != want[i] {
			t.Errorf("CriticalPath = %v, want %v", cp, want)
			break
		}
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := graph.New()
	r := &Ranks{}
	if cp := CriticalPath(g, r); cp != nil {
		t.Errorf("CriticalPath of empty graph = %v, want nil", cp)
	}
}

func TestMaxChainComm(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	r, err := ComputeRanks(g, c, est)
	if err != nil {
		t.Fatalf("ComputeRanks: %v", err)
	}
	// Longest comm chain: a->b->d or a->c->d, both 2 edges of 1us.
	if got := MaxChainComm(g, r); got != 2*time.Microsecond {
		t.Errorf("MaxChainComm = %v, want 2us", got)
	}
}

func TestRanksStrictlyDecreaseAlongEdges(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	r, err := ComputeRanks(g, c, est)
	if err != nil {
		t.Fatalf("ComputeRanks: %v", err)
	}
	for _, e := range g.Edges() {
		if r.Rank[e.From] <= r.Rank[e.To] {
			t.Errorf("rank did not decrease along edge %d->%d: %v <= %v",
				e.From, e.To, r.Rank[e.From], r.Rank[e.To])
		}
	}
}
