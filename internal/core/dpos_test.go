package core

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
)

// checkScheduleValid asserts structural invariants of any DPOS output:
// complete placement, topologically consistent start times including
// communication delays, no device executing two ops at once.
func checkScheduleValid(t *testing.T, g *graph.Graph, c *device.Cluster, est *fakeEst, s *Schedule) {
	t.Helper()
	if len(s.Placement) != g.NumOps() {
		t.Fatalf("placement has %d entries for %d ops", len(s.Placement), g.NumOps())
	}
	for id, d := range s.Placement {
		if d < 0 || d >= c.NumDevices() {
			t.Errorf("op %d on invalid device %d", id, d)
		}
	}
	for _, e := range g.Edges() {
		arrive := s.Finish[e.From]
		if s.Placement[e.From] != s.Placement[e.To] {
			arrive += est.Comm(e.Bytes, c.Device(s.Placement[e.From]), c.Device(s.Placement[e.To]))
		}
		if s.Start[e.To] < arrive {
			t.Errorf("op %d starts at %v before input from %d arrives at %v",
				e.To, s.Start[e.To], e.From, arrive)
		}
	}
	// Per-device non-overlap.
	byDev := make(map[int][]int)
	for id := range s.Placement {
		byDev[s.Placement[id]] = append(byDev[s.Placement[id]], id)
	}
	for dev, ids := range byDev {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if s.Start[a] < s.Finish[b] && s.Start[b] < s.Finish[a] &&
					s.Finish[a] != s.Start[a] && s.Finish[b] != s.Start[b] {
					t.Errorf("ops %d and %d overlap on device %d", a, b, dev)
				}
			}
		}
	}
	// Order is a permutation sorted by start time.
	seen := make([]bool, g.NumOps())
	for i, id := range s.Order {
		if seen[id] {
			t.Errorf("op %d appears twice in order", id)
		}
		seen[id] = true
		if i > 0 && s.Start[s.Order[i-1]] > s.Start[id] {
			t.Error("order not sorted by start time")
		}
		if s.Priorities[id] != i {
			t.Errorf("priority of op %d = %d, want %d", id, s.Priorities[id], i)
		}
	}
}

func TestDPOSDiamondUsesBothDevices(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	s, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	checkScheduleValid(t, g, c, est, s)
	// b and c are independent; with cheap comm (1us) relative to c's 3us
	// exec, running them on different devices shortens the makespan below
	// the serial 11us.
	serial := 11 * time.Microsecond
	if s.Makespan >= serial {
		t.Errorf("Makespan = %v, want < serial %v", s.Makespan, serial)
	}
	if s.Placement[1] == s.Placement[2] {
		t.Error("independent ops b and c placed on the same device")
	}
}

func TestDPOSSingleDeviceSerializes(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 1)
	s, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	checkScheduleValid(t, g, c, est, s)
	if s.Makespan != 11*time.Microsecond {
		t.Errorf("single-device Makespan = %v, want 11us", s.Makespan)
	}
}

func TestDPOSExpensiveCommKeepsColocated(t *testing.T) {
	g, est := diamond(t)
	est.commPerByte = 10 * time.Microsecond // 10B tensor -> 100us
	c := clusterN(t, 2)
	s, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	checkScheduleValid(t, g, c, est, s)
	// With comm far exceeding compute, everything should land on one
	// device and match the serial makespan.
	if s.DevicesUsedCount() != 1 {
		t.Errorf("used %d devices, want 1 under expensive comm", s.DevicesUsedCount())
	}
	if s.Makespan != 11*time.Microsecond {
		t.Errorf("Makespan = %v, want serial 11us", s.Makespan)
	}
}

func TestDPOSMemoryForcesSpread(t *testing.T) {
	// Two independent 3 GiB ops cannot share a 4 GiB device.
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "m1", Kind: graph.KindMatMul, FLOPs: 1000, ParamBytes: 3 * device.GiB / 4})
	g.MustAddOp(&graph.Op{Name: "m2", Kind: graph.KindMatMul, FLOPs: 1000, ParamBytes: 3 * device.GiB / 4})
	c, err := device.SingleServer(2, device.WithMemory(4*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	est := &fakeEst{}
	s, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	if s.Placement[0] == s.Placement[1] {
		t.Error("memory-capacity constraint ignored: both 3GiB ops on one device")
	}
}

func TestDPOSInfeasibleMemory(t *testing.T) {
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "huge", Kind: graph.KindMatMul, FLOPs: 1000, ParamBytes: 10 * device.GiB})
	c, err := device.SingleServer(2, device.WithMemory(4*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	_, err = DPOS(g, c, &fakeEst{}, Options{})
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Errorf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

func TestDPOSColocationHonored(t *testing.T) {
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindMatMul, FLOPs: 1000, OutputBytes: 10})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindMatMul, FLOPs: 1000, OutputBytes: 10})
	ap := g.MustAddOp(&graph.Op{Name: "a/apply", Kind: graph.KindApplyGradient, FLOPs: 10, ColocateWith: "a"})
	g.MustConnect(a, b, 10)
	g.MustConnect(b, ap, 10)
	c := clusterN(t, 2)
	s, err := DPOS(g, c, &fakeEst{}, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	if s.Placement[ap] != s.Placement[a] {
		t.Errorf("colocation violated: apply on %d, target on %d",
			s.Placement[ap], s.Placement[a])
	}
	_ = b
}

func TestDPOSInsertionFillsIdleGap(t *testing.T) {
	// Chain a -> b where b waits for a remote input, leaving an idle gap
	// on b's device that a small independent op should slot into without
	// delaying b.
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindMatMul, FLOPs: int64(10 * time.Microsecond), OutputBytes: 100})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindMatMul, FLOPs: int64(10 * time.Microsecond)})
	tiny := g.MustAddOp(&graph.Op{Name: "tiny", Kind: graph.KindRelu, FLOPs: int64(1 * time.Microsecond)})
	g.MustConnect(a, b, 100)
	c := clusterN(t, 2)
	est := &fakeEst{commLatency: 5 * time.Microsecond}
	s, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	checkScheduleValid(t, g, c, est, s)
	// The tiny op must not extend the makespan beyond the a->b chain.
	chain := s.Finish[b]
	if s.Makespan != chain {
		t.Errorf("Makespan = %v, want chain finish %v (tiny op should fill a gap)",
			s.Makespan, chain)
	}
	_ = a
	_ = tiny
}

// DevicesUsedCount is a test helper on Schedule.
func (s *Schedule) DevicesUsedCount() int {
	seen := make(map[int]bool)
	for _, d := range s.Placement {
		seen[d] = true
	}
	return len(seen)
}

// bruteForceOpt computes the optimal makespan of g on ndev devices with
// zero communication cost (the ideal system of Theorem 1), by enumerating
// all topological sequences and device assignments of semi-active
// schedules.
func bruteForceOpt(g *graph.Graph, exec []time.Duration, ndev int) time.Duration {
	n := g.NumOps()
	best := time.Duration(1<<62 - 1)
	finish := make([]time.Duration, n)
	avail := make([]time.Duration, ndev)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.InDegree(i)
	}
	var rec func(done int)
	rec = func(done int) {
		if done == n {
			var mk time.Duration
			for _, f := range finish {
				if f > mk {
					mk = f
				}
			}
			if mk < best {
				best = mk
			}
			return
		}
		for id := 0; id < n; id++ {
			if indeg[id] != 0 {
				continue
			}
			indeg[id] = -1 // claim
			var ready time.Duration
			for _, p := range g.Predecessors(id) {
				if finish[p] > ready {
					ready = finish[p]
				}
			}
			for d := 0; d < ndev; d++ {
				st := ready
				if avail[d] > st {
					st = avail[d]
				}
				if st+exec[id] >= best {
					continue // prune
				}
				oldAvail := avail[d]
				avail[d] = st + exec[id]
				finish[id] = st + exec[id]
				for _, sc := range g.Successors(id) {
					indeg[sc]--
				}
				rec(done + 1)
				for _, sc := range g.Successors(id) {
					indeg[sc]++
				}
				avail[d] = oldAvail
			}
			finish[id] = 0
			indeg[id] = 0
		}
	}
	rec(0)
	return best
}

// TestTheorem1Bound checks the paper's performance guarantee
// w_DPOS <= 2*w_opt + C_max on random small DAGs with homogeneous devices.
func TestTheorem1Bound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(5) + 2 // 2..6 ops
		ndev := rng.Intn(2) + 2
		g := graph.New()
		exec := make([]time.Duration, n)
		est := &fakeEst{exec: make(map[string]time.Duration)}
		for i := 0; i < n; i++ {
			name := "op" + strconv.Itoa(i)
			g.MustAddOp(&graph.Op{Name: name, Kind: graph.KindMatMul, OutputBytes: rng.Int63n(100) + 1})
			exec[i] = time.Duration(rng.Intn(50)+1) * time.Microsecond
			est.exec[name] = exec[i]
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.MustConnect(i, j, rng.Int63n(100)+1)
				}
			}
		}
		est.commPerByte = time.Duration(rng.Intn(200)) * time.Nanosecond
		est.commLatency = time.Duration(rng.Intn(5)) * time.Microsecond

		c, err := device.SingleServer(ndev)
		if err != nil {
			t.Fatalf("SingleServer: %v", err)
		}
		s, err := DPOS(g, c, est, Options{})
		if err != nil {
			t.Fatalf("trial %d: DPOS: %v", trial, err)
		}
		ranks, err := ComputeRanks(g, c, est)
		if err != nil {
			t.Fatalf("trial %d: ranks: %v", trial, err)
		}
		cmax := MaxChainComm(g, ranks)
		opt := bruteForceOpt(g, exec, ndev)

		var makespan time.Duration
		for i := 0; i < n; i++ {
			if s.Finish[i] > makespan {
				makespan = s.Finish[i]
			}
		}
		if makespan > 2*opt+cmax {
			t.Errorf("trial %d: bound violated: DPOS=%v opt=%v Cmax=%v (bound %v)",
				trial, makespan, opt, cmax, 2*opt+cmax)
		}
	}
}

func TestDPOSDeterministic(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	s1, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	s2, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	for i := range s1.Placement {
		if s1.Placement[i] != s2.Placement[i] {
			t.Fatal("DPOS not deterministic")
		}
	}
	if s1.Makespan != s2.Makespan {
		t.Error("DPOS makespan not deterministic")
	}
}

// TestDPOSAdaptsToHeterogeneousDevices checks generality beyond the paper's
// homogeneous testbed: with one device three times faster, the schedule
// should assign it the bulk of the work.
func TestDPOSAdaptsToHeterogeneousDevices(t *testing.T) {
	c, err := device.SingleServer(2)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	c.Device(1).PeakFLOPS /= 3
	c.Device(1).MemBandwidth /= 3
	oracle := kernels.NewDefaultOracle(c)

	// Eight independent heavy ops: a load-balancing schedule should give
	// the fast device roughly 3x the work of the slow one.
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.MustAddOp(&graph.Op{
			Name: "op" + strconv.Itoa(i), Kind: graph.KindConv2D,
			FLOPs: 20e9, OutputBytes: 1 << 20, Batch: 8,
		})
	}
	sched, err := DPOS(g, c, oracle, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	fast := 0
	for _, d := range sched.Placement {
		if d == 0 {
			fast++
		}
	}
	if fast < 5 {
		t.Errorf("fast device got %d of 8 ops, want the majority", fast)
	}
}
