package core

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/strategy"
)

// mixedSubclusterSpec is a 2xV100 + 3xT4 two-server fleet — small enough for
// unit tests, irregular enough to exercise the renumbering.
func mixedSubclusterSpec() *device.Spec {
	return &device.Spec{Servers: []device.SpecServer{
		{Rack: 0, Interconnect: device.InterconnectNVLink, GPUs: []string{"V100", "V100"}},
		{Rack: 1, Interconnect: device.InterconnectPCIe, GPUs: []string{"T4", "T4", "T4"}},
	}}
}

// TestClassSubclustersPartition: a mixed cluster yields one single-class
// restriction per class, in device order, each renumbered so subcluster ID j
// is original device ids[j]; a homogeneous cluster yields none.
func TestClassSubclustersPartition(t *testing.T) {
	c, err := device.NewHeterogeneous(mixedSubclusterSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	subs := classSubclusters(c)
	if len(subs) != 2 {
		t.Fatalf("got %d restrictions, want 2", len(subs))
	}
	wantIDs := [][]int{{0, 1}, {2, 3, 4}} // V100s first: device order, not speed order
	wantClass := []string{device.ClassV100, device.ClassT4}
	for i, sub := range subs {
		if got, want := len(sub.ids), len(wantIDs[i]); got != want {
			t.Fatalf("restriction %d keeps %d devices, want %d", i, got, want)
		}
		for j, id := range sub.ids {
			if id != wantIDs[i][j] {
				t.Errorf("restriction %d ids[%d] = %d, want %d", i, j, id, wantIDs[i][j])
			}
			d := sub.cluster.Device(j)
			od := c.Device(id)
			if d.ClassName() != wantClass[i] {
				t.Errorf("restriction %d device %d class = %s, want %s", i, j, d.ClassName(), wantClass[i])
			}
			if d.Name != od.Name {
				t.Errorf("restriction %d device %d name = %q, want original %q", i, j, d.Name, od.Name)
			}
		}
		// Links survive the renumbering: every surviving pair carries the
		// original cluster's link for the corresponding original pair.
		for a := range sub.ids {
			for b := range sub.ids {
				if a == b {
					continue
				}
				if got, want := sub.cluster.Link(a, b), c.Link(sub.ids[a], sub.ids[b]); got != want {
					t.Errorf("restriction %d link %d->%d = %+v, want %+v", i, a, b, got, want)
				}
			}
		}
	}

	homog, err := device.SingleServer(4)
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	if subs := classSubclusters(homog); subs != nil {
		t.Errorf("homogeneous cluster produced %d restrictions, want none", len(subs))
	}
}

// TestRemappedEstimatorFollowsDevices: cost queries against a renumbered
// subcluster must be answered with the original devices, so per-device and
// per-pair statistics are not misattributed after the renumbering.
func TestRemappedEstimatorFollowsDevices(t *testing.T) {
	c, err := device.NewHeterogeneous(mixedSubclusterSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	oracle := kernels.NewDefaultOracle(c)
	sub := classSubclusters(c)[1] // the T4 triple, original IDs 2..4
	re := &remappedEstimator{est: oracle, orig: originalDevices(c, sub.ids)}
	op := &graph.Op{Name: "m", Kind: graph.KindMatMul, FLOPs: 1e9, OutputBytes: 1 << 20}
	for j, id := range sub.ids {
		if got, want := re.Exec(op, sub.cluster.Device(j)), oracle.Exec(op, c.Device(id)); got != want {
			t.Errorf("Exec via subcluster device %d = %v, want original device %d's %v", j, got, id, want)
		}
	}
	got := re.Comm(1<<20, sub.cluster.Device(0), sub.cluster.Device(1))
	want := oracle.Comm(1<<20, c.Device(sub.ids[0]), c.Device(sub.ids[1]))
	if got != want {
		t.Errorf("Comm via subcluster = %v, want original pair's %v", got, want)
	}
}

// TestRefineAdoptsBetterRestriction: when a restriction predicts faster than
// the full-cluster strategy, refineWithClassSubclusters must adopt it with
// its placement remapped to full-cluster device IDs and the evaluation
// counters summed across every candidate population.
func TestRefineAdoptsBetterRestriction(t *testing.T) {
	c, err := device.NewHeterogeneous(mixedSubclusterSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	oracle := kernels.NewDefaultOracle(c)
	g := graph.New()
	a := g.MustAddOp(&graph.Op{Name: "a", Kind: graph.KindMatMul, FLOPs: 2e9, OutputBytes: 1 << 20})
	b := g.MustAddOp(&graph.Op{Name: "b", Kind: graph.KindMatMul, FLOPs: 2e9, OutputBytes: 1 << 20})
	if err := g.Connect(a, b, 1<<20); err != nil {
		t.Fatal(err)
	}
	// A deliberately terrible incumbent: any feasible restriction beats it.
	full := &Strategy{
		Artifact:  strategy.Artifact{Predicted: time.Hour},
		Evaluated: 7, Pruned: 3,
	}
	best, err := refineWithClassSubclusters(nil, g, c, oracle, Options{}, full)
	if err != nil {
		t.Fatalf("refineWithClassSubclusters: %v", err)
	}
	if best == full {
		t.Fatal("kept the hour-long incumbent over a real restriction strategy")
	}
	if best.Predicted >= time.Hour {
		t.Fatalf("Predicted = %v, want a real makespan", best.Predicted)
	}
	// The winner is the V100 restriction (first in device order, faster
	// silicon); its placement must come back in full-cluster numbering.
	for op, dev := range best.Placement {
		if dev < 0 || dev >= c.NumDevices() {
			t.Fatalf("op %d placed on device %d outside the full cluster", op, dev)
		}
		if class := c.Device(dev).ClassName(); class != device.ClassV100 {
			t.Errorf("op %d landed on %s device %d, want the V100 restriction", op, class, dev)
		}
	}
	if best.Evaluated < full.Evaluated || best.Pruned < full.Pruned {
		t.Errorf("counters not summed: Evaluated=%d Pruned=%d, want at least the incumbent's %d/%d",
			best.Evaluated, best.Pruned, full.Evaluated, full.Pruned)
	}
}

// TestComputeStrategyMixedNeverWorseThanRestrictions: the end-to-end
// property behind the cluster-mix table, at unit scale — on a mixed cluster
// ComputeStrategy's prediction is never worse than the same search run on
// either single-class restriction alone.
func TestComputeStrategyMixedNeverWorseThanRestrictions(t *testing.T) {
	c, err := device.NewHeterogeneous(mixedSubclusterSpec())
	if err != nil {
		t.Fatalf("NewHeterogeneous: %v", err)
	}
	oracle := kernels.NewDefaultOracle(c)
	g := graph.New()
	prev := -1
	for i := 0; i < 6; i++ {
		id := g.MustAddOp(&graph.Op{Name: "op" + string(rune('a'+i)), Kind: graph.KindMatMul,
			FLOPs: 5e8, OutputBytes: 1 << 18})
		if prev >= 0 {
			if err := g.Connect(prev, id, 1<<18); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	opts := Options{MaxSplitOps: 1}
	mixed, err := ComputeStrategy(g, c, oracle, opts)
	if err != nil {
		t.Fatalf("ComputeStrategy(mixed): %v", err)
	}
	for _, sub := range classSubclusters(c) {
		re := &remappedEstimator{est: oracle, orig: originalDevices(c, sub.ids)}
		restricted, err := ComputeStrategy(g, sub.cluster, re, opts)
		if err != nil {
			t.Fatalf("ComputeStrategy(restriction): %v", err)
		}
		if mixed.Predicted > restricted.Predicted {
			t.Errorf("mixed cluster predicts %v, worse than its %s restriction's %v",
				mixed.Predicted, sub.cluster.Device(0).ClassName(), restricted.Predicted)
		}
	}
}
