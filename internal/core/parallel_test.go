package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/kernels"
	"fastt/internal/models"
)

func TestWorkPoolRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		pool := newWorkPool(workers)
		hits := make([]int32, 100)
		pool.run(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
		pool.run(0, func(int) { t.Error("fn called for n=0") })
		pool.close()
	}
}

// TestWorkPoolSubmitDrains exercises the barrier-free path the speculation
// pipeline relies on: tasks submitted from other tasks (the launch pattern)
// all run exactly once, across enough tasks that stealing must kick in, and
// close() only returns after the deques drain.
func TestWorkPoolSubmitDrains(t *testing.T) {
	pool := newWorkPool(4)
	const fanout = 64
	var ran atomic.Int32
	var wg sync.WaitGroup
	wg.Add(fanout * 2)
	for i := 0; i < fanout; i++ {
		pool.submit(func() {
			ran.Add(1)
			pool.submit(func() { // task-submitted task, as launchTask does
				ran.Add(1)
				wg.Done()
			})
			wg.Done()
		})
	}
	wg.Wait()
	pool.close()
	if got := ran.Load(); got != fanout*2 {
		t.Fatalf("ran %d tasks, want %d", got, fanout*2)
	}
}

// TestWorkPoolSequentialReference pins down that a nil pool (Workers <= 1)
// runs run() bodies on the caller, in index order — the sequential
// reference semantics every concurrent mode is measured against.
func TestWorkPoolSequentialReference(t *testing.T) {
	var pool *workPool
	var order []int
	pool.run(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	pool.close() // must be a no-op, not a panic
}

// TestOSDPOSWorkerDeterminism is the determinism property of the parallel
// candidate search: any worker count must return the identical strategy —
// same split list, placement, order, and makespan — as the sequential
// calculator, across the whole model catalog.
func TestOSDPOSWorkerDeterminism(t *testing.T) {
	const gpus = 4
	cluster, err := device.SingleServer(gpus)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	for _, spec := range models.Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m, err := spec.Build(4)
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.BuildDataParallel(m, gpus)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{MaxSplitOps: 2, MaxSyncGroups: 2}

			opts.Workers = 1
			seq, err := OSDPOS(g, cluster, oracle, opts)
			if err != nil {
				t.Fatalf("sequential OSDPOS: %v", err)
			}
			opts.Workers = 8
			par, err := OSDPOS(g, cluster, oracle, opts)
			if err != nil {
				t.Fatalf("parallel OSDPOS: %v", err)
			}

			// The live shared bound lets the concurrent pass abort
			// candidates the sequential pass finishes, so only an upper
			// bound on Evaluated is deterministic (a candidate completing
			// under the tighter live bound completes under the static one
			// too). The strategy equality below stays exact.
			if par.Evaluated > seq.Evaluated {
				t.Errorf("Evaluated: parallel %d exceeds sequential %d", par.Evaluated, seq.Evaluated)
			}
			if len(seq.Splits) != len(par.Splits) {
				t.Fatalf("split lists differ: %v vs %v", seq.Splits, par.Splits)
			}
			for i := range seq.Splits {
				if seq.Splits[i] != par.Splits[i] {
					t.Fatalf("split %d differs: %v vs %v", i, seq.Splits[i], par.Splits[i])
				}
			}
			if seq.Schedule.Makespan != par.Schedule.Makespan {
				t.Errorf("makespan: sequential %v, parallel %v",
					seq.Schedule.Makespan, par.Schedule.Makespan)
			}
			if !equalInts(seq.Schedule.Placement, par.Schedule.Placement) {
				t.Error("placements differ")
			}
			if !equalInts(seq.Schedule.Order, par.Schedule.Order) {
				t.Error("orders differ")
			}
		})
	}
}

// TestColocateSyncWorkerIndependence pins down that the colocation pass
// returns identical pins and schedule at any worker setting, now that the
// per-group device probes fan out concurrently under the live bound.
func TestColocateSyncWorkerIndependence(t *testing.T) {
	cluster, err := device.SingleServer(4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := kernels.NewDefaultOracle(cluster)
	m, err := models.AlexNet(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildDataParallel(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	pins1, s1, err := ColocateSync(g, cluster, oracle, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pins8, s8, err := ColocateSync(g, cluster, oracle, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan != s8.Makespan {
		t.Errorf("makespan differs: %v vs %v", s1.Makespan, s8.Makespan)
	}
	if len(pins1) != len(pins8) {
		t.Fatalf("pin sets differ: %v vs %v", pins1, pins8)
	}
	for k, v := range pins1 {
		if pins8[k] != v {
			t.Errorf("pin %q differs: %d vs %d", k, v, pins8[k])
		}
	}
}

func TestScheduleContextStaleness(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)

	ctx, err := contextFor(g)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.stale() {
		t.Fatal("fresh context reports stale")
	}
	if cached, err := contextFor(g); err != nil || cached != ctx {
		t.Fatalf("unmutated graph must hit the cache (err=%v, same=%v)", err, cached == ctx)
	}

	// Structural rewrite after the context was cached.
	id := g.MustAddOp(&graph.Op{Name: "late", FLOPs: 1, Batch: 1})
	g.MustConnect(0, id, 64)
	if !ctx.stale() {
		t.Fatal("context not stale after AddOp+Connect")
	}
	fresh, err := contextFor(g)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == ctx {
		t.Fatal("stale context returned from cache")
	}
	if len(fresh.topo) != g.NumOps() {
		t.Fatalf("rebuilt topo has %d ops, graph has %d", len(fresh.topo), g.NumOps())
	}

	// The calculator must see the mutated graph, not the cached shape.
	sched, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Placement) != g.NumOps() {
		t.Fatalf("schedule covers %d ops, graph has %d", len(sched.Placement), g.NumOps())
	}
	if sched.Placement[id] < 0 {
		t.Fatal("late op left unplaced")
	}
}

// TestDPOSRepeatedCallsStable guards the context cache + scratch recycling:
// repeated DPOS calls over one unchanged graph must keep returning the same
// schedule (the seed behaviour before caching existed).
func TestDPOSRepeatedCallsStable(t *testing.T) {
	g, est := diamond(t)
	c := clusterN(t, 2)
	first, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want time.Duration = first.Makespan
	placement := append([]int(nil), first.Placement...)
	for i := 0; i < 5; i++ {
		s, err := DPOS(g, c, est, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan != want {
			t.Fatalf("call %d: makespan %v, want %v", i, s.Makespan, want)
		}
		if !equalInts(s.Placement, placement) {
			t.Fatalf("call %d: placement drifted", i)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
