package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// cancellingEst wraps an estimator and fires cancel after n Exec calls,
// modelling a caller abandoning a search mid-flight (a serve request
// timeout, a Ctrl-C). Exec keeps answering after the trigger: cancellation
// must come from the search's own ctx checks, not from the estimator
// failing.
type cancellingEst struct {
	inner  *fakeEst
	calls  atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c *cancellingEst) Exec(op *graph.Op, d *device.Device) time.Duration {
	if c.calls.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Exec(op, d)
}

func (c *cancellingEst) Comm(bytes int64, from, to *device.Device) time.Duration {
	return c.inner.Comm(bytes, from, to)
}

func TestComputeStrategyCtxPreCancelled(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := ComputeStrategyCtx(ctx, g, c, est, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ComputeStrategyCtx: err = %v, want context.Canceled", err)
	}
	if _, err := ComputePlacementOnlyCtx(ctx, g, c, est, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ComputePlacementOnlyCtx: err = %v, want context.Canceled", err)
	}
	if _, err := OSDPOSCtx(ctx, g, c, est, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("OSDPOSCtx: err = %v, want context.Canceled", err)
	}
	if _, _, err := ColocateSyncCtx(ctx, g, c, est, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ColocateSyncCtx: err = %v, want context.Canceled", err)
	}
}

func TestComputeStrategyCtxNilContext(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	//lint:ignore SA1012 nil ctx is part of the documented contract
	st, err := ComputeStrategyCtx(nil, g, c, est, Options{})
	if err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if len(st.Splits) == 0 {
		t.Error("nil-ctx search found no splits")
	}
}

// TestComputeStrategyCtxMidSearchCancel counts the estimator calls of a full
// search, then reruns it with the context cancelled halfway through that
// count, at every worker configuration. The search must surface
// context.Canceled, and a fresh search afterwards must still succeed — a
// cancelled run may not corrupt the shared pools or caches.
func TestComputeStrategyCtxMidSearchCancel(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)

	probe := &cancellingEst{inner: &fakeEst{commPerByte: time.Nanosecond}, after: -1, cancel: func() {}}
	if _, err := ComputeStrategy(g, c, probe, Options{}); err != nil {
		t.Fatalf("baseline search: %v", err)
	}
	total := probe.calls.Load()
	if total < 4 {
		t.Fatalf("fixture too small to cancel mid-search: %d estimator calls", total)
	}

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		est := &cancellingEst{
			inner:  &fakeEst{commPerByte: time.Nanosecond},
			after:  total / 2,
			cancel: cancel,
		}
		_, err := ComputeStrategyCtx(ctx, g, c, est, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		cancel()

		st, err := ComputeStrategy(g, c, &fakeEst{commPerByte: time.Nanosecond}, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: search after cancel: %v", workers, err)
		}
		if len(st.Splits) == 0 {
			t.Errorf("workers=%d: search after cancel found no splits", workers)
		}
	}
}

// TestOSDPOSCtxDeadline drives cancellation through a real timer deadline
// rather than a hand-rolled trigger.
func TestOSDPOSCtxDeadline(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := OSDPOSCtx(ctx, g, c, &fakeEst{commPerByte: time.Nanosecond}, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
}
