package core

import (
	"testing"
	"time"

	"fastt/internal/device"
	"fastt/internal/graph"
)

// syncFixture builds a 2-replica data-parallel graph shaped like the
// VGG-style workloads the colocation pass targets: a heavy convolution
// backbone with negligible weights (worth running in parallel per replica)
// followed by a light dense layer carrying `paramBytes` of weights (whose
// per-iteration fetch and gradient sync dominate when placed remotely).
func syncFixture(t *testing.T, paramBytes int64) *graph.Graph {
	t.Helper()
	m := graph.New()
	in := m.MustAddOp(&graph.Op{Name: "input", Kind: graph.KindInput, OutputBytes: 1 << 10, Batch: 8})
	conv := m.MustAddOp(&graph.Op{
		Name: "conv", Kind: graph.KindConv2D, FLOPs: int64(100 * time.Millisecond),
		ParamBytes: 1 << 10, OutputBytes: 1 << 10, Batch: 8, Channels: 64,
	})
	fc := m.MustAddOp(&graph.Op{
		Name: "fc", Kind: graph.KindMatMul, FLOPs: int64(2 * time.Millisecond),
		ParamBytes: paramBytes, OutputBytes: 1 << 10, Batch: 8, Channels: 64,
	})
	fcBP := m.MustAddOp(&graph.Op{
		Name: "fc_bp", Kind: graph.KindMatMulBackprop, FLOPs: int64(4 * time.Millisecond),
		OutputBytes: 1 << 10, Batch: 8, GradFor: "fc",
	})
	convBP := m.MustAddOp(&graph.Op{
		Name: "conv_bp", Kind: graph.KindConv2DBackprop, FLOPs: int64(200 * time.Millisecond),
		OutputBytes: 1 << 10, Batch: 8, GradFor: "conv",
	})
	m.MustConnect(in, conv, 1<<10)
	m.MustConnect(conv, fc, 1<<10)
	m.MustConnect(fc, fcBP, 1<<10)
	m.MustConnect(fcBP, convBP, 1<<10)
	m.MustConnect(conv, convBP, 1<<10)
	g, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	return g
}

func TestGradientSyncGroupsStructure(t *testing.T) {
	g := syncFixture(t, 1<<20)
	groups := GradientSyncGroups(g)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (conv and fc)", len(groups))
	}
	grp := groups[0] // sorted by descending params: fc first
	if g.Op(grp.Variable).Kind != graph.KindVariable {
		t.Error("group anchor is not a variable")
	}
	if len(grp.Grads) != 2 {
		t.Errorf("grads = %d, want 2", len(grp.Grads))
	}
	// Variable feeds forward and backward of both replicas.
	if len(grp.Consumers) != 4 {
		t.Errorf("consumers = %d, want 4", len(grp.Consumers))
	}
	if grp.ParamBytes != 1<<20 {
		t.Errorf("ParamBytes = %d", grp.ParamBytes)
	}
	if g.Op(grp.Apply).Kind != graph.KindApplyGradient {
		t.Error("apply member wrong kind")
	}
}

func TestGradientSyncGroupsHierarchical(t *testing.T) {
	m := graph.New()
	fc := m.MustAddOp(&graph.Op{
		Name: "fc", Kind: graph.KindMatMul, FLOPs: 1e6,
		ParamBytes: 1 << 20, OutputBytes: 1 << 10, Batch: 8, Channels: 64,
	})
	bp := m.MustAddOp(&graph.Op{
		Name: "fc_bp", Kind: graph.KindMatMulBackprop, FLOPs: 2e6,
		OutputBytes: 1 << 10, Batch: 8, GradFor: "fc",
	})
	m.MustConnect(fc, bp, 1<<10)
	// 8 replicas exceed the flat-aggregation fanout: a two-level tree.
	g, err := graph.BuildDataParallel(m, 8)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	groups := GradientSyncGroups(g)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	grp := groups[0]
	if len(grp.Grads) != 8 {
		t.Errorf("leaf gradients = %d, want 8", len(grp.Grads))
	}
	if len(grp.SubAggs) != 2 {
		t.Errorf("intermediate AddNs = %d, want 2", len(grp.SubAggs))
	}
	for _, id := range grp.Grads {
		if g.Op(id).Kind == graph.KindAddN {
			t.Error("intermediate AddN leaked into leaf gradients")
		}
	}
}

func TestGradientSyncGroupsSortedByParamSize(t *testing.T) {
	m := graph.New()
	prev := -1
	sizes := []int64{1 << 10, 1 << 24, 1 << 16}
	for i, sz := range sizes {
		name := "fc" + string(rune('a'+i))
		id := m.MustAddOp(&graph.Op{
			Name: name, Kind: graph.KindMatMul, FLOPs: 1e6,
			ParamBytes: sz, OutputBytes: 1 << 10, Batch: 8, Channels: 64,
		})
		bp := m.MustAddOp(&graph.Op{
			Name: name + "_bp", Kind: graph.KindMatMulBackprop, FLOPs: 2e6,
			OutputBytes: 1 << 10, Batch: 8, GradFor: name,
		})
		m.MustConnect(id, bp, 1<<10)
		if prev >= 0 {
			m.MustConnect(prev, id, 1<<10)
		}
		prev = id
	}
	g, err := graph.BuildDataParallel(m, 2)
	if err != nil {
		t.Fatalf("BuildDataParallel: %v", err)
	}
	groups := GradientSyncGroups(g)
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].ParamBytes > groups[i-1].ParamBytes {
			t.Error("groups not sorted by descending parameter size")
		}
	}
}

func TestColocateSyncHeavyGroupEndsColocated(t *testing.T) {
	// The paper's signature behaviour (Sec. 6.5): all replicas of a
	// large-parameter operation end up on one GPU, avoiding the weight
	// fetch and gradient aggregation traffic. With the channel-aware
	// schedule estimate DPOS often discovers this on its own (the sync
	// chain dominates the ranks); the colocation pass is the safety net.
	// Either way, the resulting schedule must have the heavy group on a
	// single device, and it must beat a deliberately spread placement.
	g := syncFixture(t, 256<<20) // 256 MiB of weights
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	_, sched, err := ColocateSync(g, c, est, Options{})
	if err != nil {
		t.Fatalf("ColocateSync: %v", err)
	}
	groups := GradientSyncGroups(g)
	grp := groups[0] // fc group, largest parameters
	if !alreadyColocated(grp, sched.Placement) {
		t.Fatal("heavy sync group not colocated in the final schedule")
	}

	// A forced spread of the fc replicas must estimate worse.
	spreadPins := map[string]int{
		"var/fc": 0, "rep0/fc": 0, "rep0/fc_bp": 0,
		"rep1/fc": 1, "rep1/fc_bp": 1,
	}
	spread, err := DPOS(g, c, est, Options{Pinned: spreadPins})
	if err != nil {
		t.Fatalf("spread DPOS: %v", err)
	}
	if sched.Makespan >= spread.Makespan {
		t.Errorf("colocated makespan %v not better than spread %v",
			sched.Makespan, spread.Makespan)
	}
}

func TestColocateSyncPinsFireWhenGreedySpreads(t *testing.T) {
	// Force the base schedule to spread the fc group by pinning the
	// replicas apart is not possible (pins persist); instead make the
	// greedy prefer spreading: cheap comm makes the fc chain off the
	// critical path, then raise the observable benefit by checking that
	// ColocateSync never leaves the group split across devices while
	// claiming an improvement.
	g := syncFixture(t, 32<<20)
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	pins, sched, err := ColocateSync(g, c, est, Options{})
	if err != nil {
		t.Fatalf("ColocateSync: %v", err)
	}
	grp := GradientSyncGroups(g)[0]
	if len(pins) > 0 && !alreadyColocated(grp, sched.Placement) {
		t.Error("pins accepted but group still spread")
	}
}

func TestColocateSyncNoGroupsSingleDevice(t *testing.T) {
	g := syncFixture(t, 1<<20)
	c := clusterN(t, 1)
	pins, sched, err := ColocateSync(g, c, &fakeEst{}, Options{})
	if err != nil {
		t.Fatalf("ColocateSync: %v", err)
	}
	if len(pins) != 0 {
		t.Errorf("pins on a single device: %v", pins)
	}
	if sched == nil {
		t.Fatal("no schedule returned")
	}
}

func TestColocateSyncCheapTrafficDeclined(t *testing.T) {
	// Tiny parameters: colocating saves nothing, so the pass should accept
	// no pins (the first trial fails to improve and the loop breaks).
	g := syncFixture(t, 64)
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	pins, _, err := ColocateSync(g, c, est, Options{})
	if err != nil {
		t.Fatalf("ColocateSync: %v", err)
	}
	if len(pins) != 0 {
		t.Errorf("pins accepted for negligible traffic: %v", pins)
	}
}

func TestDPOSHonorsPins(t *testing.T) {
	g := syncFixture(t, 1<<20)
	c := clusterN(t, 2)
	fc, ok := g.OpByName("rep0/fc")
	if !ok {
		t.Fatal("rep0/fc missing")
	}
	sched, err := DPOS(g, c, &fakeEst{}, Options{Pinned: map[string]int{"rep0/fc": 1}})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	if sched.Placement[fc.ID] != 1 {
		t.Errorf("pinned op on device %d, want 1", sched.Placement[fc.ID])
	}
}

func TestDPOSPinFallsBackWhenMemoryFull(t *testing.T) {
	g := graph.New()
	g.MustAddOp(&graph.Op{Name: "big", Kind: graph.KindMatMul, FLOPs: 1e6, ParamBytes: 3 * device.GiB})
	g.MustAddOp(&graph.Op{Name: "big2", Kind: graph.KindMatMul, FLOPs: 1e6, ParamBytes: 3 * device.GiB})
	c, err := device.SingleServer(2, device.WithMemory(13*device.GiB))
	if err != nil {
		t.Fatalf("SingleServer: %v", err)
	}
	// Both pinned to device 0: only one fits (3 GiB x4 optimizer state).
	sched, err := DPOS(g, c, &fakeEst{}, Options{Pinned: map[string]int{"big": 0, "big2": 0}})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	if sched.Placement[0] == 0 && sched.Placement[1] == 0 {
		t.Error("soft pin overcommitted device memory")
	}
}
