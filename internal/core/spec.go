package core

import (
	"sync/atomic"
	"time"

	"fastt/internal/graph"
)

// specPredictHook, when non-nil, overrides which candidate index a round
// predicts as its winner when launching the next round speculatively. Test
// hook only: it forces mispredictions to exercise the discard/re-evaluate
// path deterministically. The commit protocol stays safe under arbitrary
// hook behavior because confirmation also requires the launch seed to match
// the committed winner's makespan.
var specPredictHook func(opName string, cands []splitCand, improvingIdx int) int

// specRound is one in-flight round of the pipelined OS-DPOS search: a
// planned (op × dim × n) candidate set fanning out on the work pool against
// an immutable base, plus the speculation state linking it to the round it
// launched. The coordinator (runPooled) owns rounds; workers only write
// their own results slot and the launch fields guarded by the predIdx CAS.
//
// Field synchronization: results[i] is written by candTask i and read by
// the coordinator only after <-done (close(done) happens after every
// outstanding decrement). launchSeed is written by the single CAS-winning
// candTask before its decrement, so it is visible after <-done too. next
// and launchOK are written by launchTask before close(nextReady) and read
// only after <-nextReady.
type specRound struct {
	planIdx int
	base    *roundBase
	cands   []splitCand
	results []candOutcome

	// live is the shared incumbent-makespan bound (nil with pruning
	// disabled), seeded with base.ftOld; completed candidates publish
	// into it so round-mates abort against the tightest value.
	live *atomic.Int64

	outstanding atomic.Int64
	done        chan struct{}
	cancelled   atomic.Bool

	// Speculation: the first improving completion CASes predIdx from -1
	// and submits a launchTask that materializes the predicted winner and
	// starts the next round against it.
	predIdx    atomic.Int64
	launched   atomic.Bool
	launchSeed time.Duration
	nextReady  chan struct{}
	next       *specRound
	launchOK   bool

	// speculative marks rounds whose candidates were enqueued before
	// their base was committed — they count into Speculated (and into
	// Mispredicted when discarded).
	speculative bool
}

func (o *osdposRun) newSpecRound(base *roundBase, planIdx int, speculative bool) *specRound {
	r := &specRound{
		planIdx:     planIdx,
		base:        base,
		cands:       o.plan[planIdx].cands,
		done:        make(chan struct{}),
		nextReady:   make(chan struct{}),
		speculative: speculative,
	}
	r.results = make([]candOutcome, len(r.cands))
	r.predIdx.Store(-1)
	r.outstanding.Store(int64(len(r.cands)))
	if !o.opts.DisablePruning {
		r.live = new(atomic.Int64)
		r.live.Store(int64(base.ftOld))
	}
	if len(r.cands) == 0 {
		close(r.done) // buildPlan never emits empty rounds; fail closed
	}
	return r
}

// startRound enqueues the round's candidate evaluations on the pool.
func (o *osdposRun) startRound(r *specRound) {
	for i := range r.cands {
		i := i
		o.pool.submit(func() { o.candTask(r, i) })
	}
}

// candTask evaluates candidate i of round r. The last task to finish
// closes r.done; the first improving completion may launch the next round
// speculatively.
func (o *osdposRun) candTask(r *specRound, i int) {
	defer func() {
		if r.outstanding.Add(-1) == 0 {
			close(r.done)
		}
	}()
	if r.cancelled.Load() || o.ctxErr() != nil {
		return // round doomed or search cancelled; leave the zero outcome
	}
	bound := r.base.ftOld
	if o.opts.DisablePruning {
		bound = 0
	}
	out := o.evalCand(r.base, r.cands[i], bound, r.live)
	r.results[i] = out
	if !o.specOn || !out.ok || out.makespan >= r.base.ftOld ||
		r.planIdx+1 >= len(o.plan) || r.cancelled.Load() {
		return
	}
	pred := i
	if specPredictHook != nil {
		pred = specPredictHook(o.plan[r.planIdx].opName, r.cands, i)
		if pred < 0 || pred >= len(r.cands) {
			return
		}
	}
	if r.predIdx.CompareAndSwap(-1, int64(pred)) {
		r.launchSeed = out.makespan
		r.launched.Store(true)
		c := r.cands[pred]
		o.pool.submit(func() { o.launchTask(r, c, out.makespan) })
	}
}

// launchTask materializes round r's predicted winner as a real graph and
// starts the next planned round against it, seeded with the triggering
// completion's makespan. When the prediction is confirmed (predIdx wins the
// reduce AND the seed equals the winner's makespan — always true without
// the test hook, since the launcher is the improving completion itself),
// the child round's base and bound are byte-identical to what the
// sequential pass would have built, so its results commit as-is.
func (o *osdposRun) launchTask(r *specRound, pred splitCand, seed time.Duration) {
	defer close(r.nextReady)
	if r.cancelled.Load() {
		return
	}
	ng, err := graph.SplitOperation(r.base.g, r.base.curID, pred.dim, pred.n)
	if err != nil {
		return // hook-forced infeasible prediction; nothing launched
	}
	nb, err := o.makeBase(ng, r.planIdx+1, seed)
	if err != nil {
		return
	}
	child := o.newSpecRound(nb, r.planIdx+1, true)
	o.startRound(child)
	r.next = child
	r.launchOK = true
}

// takeNext returns the round r launched, waiting for the launch task to
// settle; nil when nothing was launched (or the launch failed).
func (o *osdposRun) takeNext(r *specRound) *specRound {
	if !r.launched.Load() {
		return nil
	}
	<-r.nextReady
	if !r.launchOK {
		return nil
	}
	return r.next
}

// cancelChain discards a chain of speculative rounds starting at r: marks
// each cancelled (unstarted tasks return immediately), slams the live bound
// to 1ns so in-flight evaluations abort at their next prune check, waits
// for the fan-out to drain, and releases every pooled resource the chain
// holds. Each discarded round's candidates count as Speculated and
// Mispredicted. Synchronous by design: the coordinator blocks briefly, and
// in exchange no task ever outlives its round's resources.
func (o *osdposRun) cancelChain(r *specRound) {
	for r != nil {
		r.cancelled.Store(true)
		if r.live != nil {
			publishIncumbent(r.live, 1)
		}
		<-r.done
		next := o.takeNext(r)
		releaseOutcomes(r.results)
		releaseRanks(r.base.ranks)
		o.res.Speculated += len(r.cands)
		o.res.Mispredicted += len(r.cands)
		r = next
	}
}

// runPooled drives the search at Workers > 1: rounds fan out on the
// work-stealing pool under the live shared bound, and (unless
// DisableSpeculation) pipeline ahead of the commit point. The deterministic
// reduce remains the sole commit authority — a speculative round's results
// are adopted only when its predicted base is exactly the committed winner;
// otherwise the chain is discarded and the round re-runs non-speculatively.
func (o *osdposRun) runPooled(base *roundBase) (*roundBase, error) {
	if len(o.plan) == 0 {
		return base, nil
	}
	cur := o.newSpecRound(base, 0, false)
	o.startRound(cur)
	for {
		<-cur.done
		if err := o.ctxErr(); err != nil {
			// Cancelled: unwind any speculative chain (its queued tasks
			// return immediately under the same ctx check) and surface the
			// context error; the committed result is abandoned.
			o.cancelChain(o.takeNext(cur))
			releaseOutcomes(cur.results)
			return cur.base, err
		}
		bestIdx, stop := o.reduceRound(cur.base, cur.cands, cur.results, cur.live != nil)
		if cur.speculative {
			o.res.Speculated += len(cur.cands)
		}
		nr := o.takeNext(cur)
		if stop {
			o.cancelChain(nr)
			return cur.base, nil
		}
		if bestIdx < 0 {
			// Every candidate infeasible: same graph, next planned op.
			// Anything launched predicted a split that did not happen.
			o.cancelChain(nr)
			if cur.planIdx+1 >= len(o.plan) {
				return cur.base, nil
			}
			b := cur.base
			o.retarget(b, cur.planIdx+1)
			nxt := o.newSpecRound(b, cur.planIdx+1, false)
			o.startRound(nxt)
			cur = nxt
			continue
		}
		if nr != nil && cur.predIdx.Load() == int64(bestIdx) &&
			cur.launchSeed == cur.results[bestIdx].makespan {
			// Confirmed speculation: the next round is already running
			// against exactly the base commitWinner would build. Adopt
			// the winner's schedule and step into the running round.
			wsched := cur.results[bestIdx].sched
			cur.results[bestIdx].sched = nil
			releaseOutcomes(cur.results)
			if !o.opts.DisableIncremental {
				wsched = compactWinner(wsched, cur.base.curID)
			}
			o.adopt(cur.base, nr.base, wsched, cur.cands[bestIdx], cur.planIdx)
			cur = nr
			continue
		}
		// Mispredicted (or nothing launched): discard the chain and
		// commit synchronously, exactly as the sequential pass would.
		o.cancelChain(nr)
		nb, err := o.commitWinner(cur.base, cur.cands, cur.results, bestIdx, cur.planIdx)
		if err != nil {
			return cur.base, err
		}
		if cur.planIdx+1 >= len(o.plan) {
			return nb, nil
		}
		nxt := o.newSpecRound(nb, cur.planIdx+1, false)
		o.startRound(nxt)
		cur = nxt
	}
}
