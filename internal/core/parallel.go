package core

import (
	"sync"
	"sync/atomic"
)

// runParallel invokes fn(0..n-1) across at most `workers` goroutines and
// returns when all calls have finished. Indices are handed out by an atomic
// counter, so call order is unspecified — callers that need deterministic
// results write into an index-addressed slice and reduce in order
// afterwards. workers <= 1 (or n <= 1) degenerates to a plain sequential
// loop on the calling goroutine.
func runParallel(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// evalRound is one batch of indexed jobs dispatched to an evalPool.
type evalRound struct {
	n    int
	fn   func(int)
	next atomic.Int64
	wg   sync.WaitGroup
}

// evalPool is a fixed set of worker goroutines reused across the candidate
// rounds of one OS-DPOS call. Unlike runParallel it spawns its goroutines
// once: a round with fewer candidates than workers wakes only as many
// workers as it has candidates, and the rest stay parked on the channel
// instead of being respawned and immediately retired every round.
type evalPool struct {
	workers int
	rounds  chan *evalRound
}

// newEvalPool starts a pool of `workers` goroutines, or returns nil (a
// valid, sequential pool) when workers <= 1. Callers must close a non-nil
// pool to release the goroutines.
func newEvalPool(workers int) *evalPool {
	if workers <= 1 {
		return nil
	}
	p := &evalPool{workers: workers, rounds: make(chan *evalRound, workers)}
	for w := 0; w < workers; w++ {
		go func() {
			for r := range p.rounds {
				for {
					i := int(r.next.Add(1)) - 1
					if i >= r.n {
						break
					}
					r.fn(i)
				}
				r.wg.Done()
			}
		}()
	}
	return p
}

// run invokes fn(0..n-1) on the pool's workers and returns when all calls
// have finished; indices are handed out by an atomic counter, so order is
// unspecified. A nil pool (or n <= 1) runs sequentially on the caller.
func (p *evalPool) run(n int, fn func(int)) {
	if p == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	r := &evalRound{n: n, fn: fn}
	r.wg.Add(w)
	for i := 0; i < w; i++ {
		p.rounds <- r
	}
	r.wg.Wait()
}

// close retires the pool's goroutines. No run may be in flight or follow.
func (p *evalPool) close() {
	if p != nil {
		close(p.rounds)
	}
}
