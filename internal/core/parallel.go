package core

import (
	"sync"
	"sync/atomic"
)

// runParallel invokes fn(0..n-1) across at most `workers` goroutines and
// returns when all calls have finished. Indices are handed out by an atomic
// counter, so call order is unspecified — callers that need deterministic
// results write into an index-addressed slice and reduce in order
// afterwards. workers <= 1 (or n <= 1) degenerates to a plain sequential
// loop on the calling goroutine.
func runParallel(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
