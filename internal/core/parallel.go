package core

import (
	"sync"
)

// workPool is the fan-out engine of the candidate search: a fixed set of
// worker goroutines draining per-worker deques of submitted tasks with
// work-stealing. It replaces the two earlier overlapping mechanisms (an
// atomic-counter runParallel and a channel-fed round pool), and adds the
// one capability neither had: tasks can be submitted without a barrier, so
// speculative round-(k+1) evaluations queue up behind round k instead of
// waiting for its reduce.
//
// Discipline: tasks carry a monotone submission sequence number and are
// distributed round-robin across the deques. A worker pops the FRONT
// (oldest) task of its own deque first; an idle worker steals the front
// HALF of the victim whose front task is oldest. Oldest-first is
// deliberately inverted from the classic newest-first stealing of
// fork/join schedulers: here the oldest tasks belong to the round closest
// to its commit point, which is exactly the work the coordinator is
// blocked on, while the newest tasks are the most speculative and the
// cheapest to discard on a mispredict. Steal-half keeps thieves from
// ping-ponging single tasks.
//
// Tasks are millisecond-scale DPOS evaluations, so a single mutex over the
// deques costs nothing measurable; the deque structure exists for drain
// order, not for lock avoidance. Tasks must never block on other tasks
// (the OS-DPOS coordinator waits on rounds, but it is not a pool worker),
// which keeps the pool trivially deadlock-free.
type workPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]poolTask
	seq    uint64
	rr     int // round-robin submit cursor
	closed bool
	wg     sync.WaitGroup
}

type poolTask struct {
	seq uint64
	fn  func()
}

// newWorkPool starts a pool of `workers` goroutines, or returns nil (a
// valid, sequential pool) when workers <= 1 — the nil pool is the literal
// sequential reference path: run() executes indices in order on the
// caller. Callers must close a non-nil pool to release the goroutines.
func newWorkPool(workers int) *workPool {
	if workers <= 1 {
		return nil
	}
	p := &workPool{deques: make([][]poolTask, workers)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *workPool) worker(id int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if t, ok := p.takeLocked(id); ok {
			p.mu.Unlock()
			t.fn()
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}

// takeLocked pops the front of the worker's own deque, or steals the front
// half of the victim whose front task is oldest. Called with p.mu held.
func (p *workPool) takeLocked(id int) (poolTask, bool) {
	if q := p.deques[id]; len(q) > 0 {
		t := q[0]
		q[0].fn = nil
		p.deques[id] = q[1:]
		return t, true
	}
	victim := -1
	for i, q := range p.deques {
		if i == id || len(q) == 0 {
			continue
		}
		if victim < 0 || q[0].seq < p.deques[victim][0].seq {
			victim = i
		}
	}
	if victim < 0 {
		return poolTask{}, false
	}
	q := p.deques[victim]
	take := (len(q) + 1) / 2
	t := q[0]
	if take > 1 {
		p.deques[id] = append(p.deques[id], q[1:take]...)
	}
	for i := 0; i < take; i++ {
		q[i].fn = nil
	}
	p.deques[victim] = q[take:]
	return t, true
}

// submit enqueues one task; it runs as soon as a worker is free. Must not
// be called on a closed pool.
func (p *workPool) submit(fn func()) {
	p.mu.Lock()
	p.pushLocked(fn)
	p.mu.Unlock()
	p.cond.Signal()
}

func (p *workPool) pushLocked(fn func()) {
	p.deques[p.rr] = append(p.deques[p.rr], poolTask{seq: p.seq, fn: fn})
	p.seq++
	p.rr = (p.rr + 1) % len(p.deques)
}

// run invokes fn(0..n-1) on the pool and returns when all calls have
// finished; execution order is unspecified, so callers needing
// deterministic results write into an index-addressed slice and reduce in
// order afterwards. A nil pool (or n <= 1) runs sequentially on the
// caller, in index order — the Workers <= 1 reference semantics.
func (p *workPool) run(n int, fn func(int)) {
	if p == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	p.mu.Lock()
	for i := 0; i < n; i++ {
		i := i
		p.pushLocked(func() {
			fn(i)
			wg.Done()
		})
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	wg.Wait()
}

// close retires the pool's goroutines after the deques drain. Every
// submitted task must be complete or self-cancelling; no submit or run may
// follow.
func (p *workPool) close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
