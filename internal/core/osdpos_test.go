package core

import (
	"testing"
	"time"

	"fastt/internal/graph"
)

// bottleneckGraph builds in -> big -> out where big dominates the critical
// path and is batch/channel-splittable.
func bottleneckGraph(t *testing.T, bigFLOPs int64) *graph.Graph {
	t.Helper()
	g := graph.New()
	in := g.MustAddOp(&graph.Op{Name: "in", Kind: graph.KindInput, FLOPs: 1000, OutputBytes: 64, Batch: 16})
	big := g.MustAddOp(&graph.Op{
		Name: "big", Kind: graph.KindConv2D, FLOPs: bigFLOPs,
		OutputBytes: 64, Batch: 16, Channels: 16,
	})
	out := g.MustAddOp(&graph.Op{Name: "out", Kind: graph.KindLoss, FLOPs: 1000, OutputBytes: 4, Batch: 16})
	g.MustConnect(in, big, 64)
	g.MustConnect(big, out, 64)
	return g
}

func TestOSDPOSSplitsDominantOp(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond} // comm ~64ns, negligible
	res, err := OSDPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("OSDPOS: %v", err)
	}
	if len(res.Splits) == 0 {
		t.Fatal("dominant op not split")
	}
	dec := res.Splits[0]
	if dec.OpName != "big" {
		t.Errorf("split op = %q, want big", dec.OpName)
	}
	if dec.N != 2 {
		t.Errorf("split count = %d, want 2", dec.N)
	}
	if _, ok := res.Graph.OpByName("big"); ok {
		t.Error("original op still present in rewritten graph")
	}
	// The split halves the dominant 100us op (~50us each in parallel), so
	// the makespan must drop well below the unsplit one.
	unsplit, err := DPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("DPOS: %v", err)
	}
	if res.Schedule.Makespan >= unsplit.Makespan {
		t.Errorf("split makespan %v not better than unsplit %v",
			res.Schedule.Makespan, unsplit.Makespan)
	}
}

func TestOSDPOSDoesNotSplitWhenCommDominates(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	// Comm so expensive that moving any partition off-device loses.
	est := &fakeEst{commPerByte: 100 * time.Microsecond, commLatency: time.Millisecond}
	res, err := OSDPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("OSDPOS: %v", err)
	}
	if len(res.Splits) != 0 {
		t.Errorf("split under dominating comm: %v", res.Splits)
	}
	if res.Graph != g {
		t.Error("graph rewritten although no split accepted")
	}
}

func TestOSDPOSSingleDeviceNoSplit(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 1)
	res, err := OSDPOS(g, c, &fakeEst{}, Options{})
	if err != nil {
		t.Fatalf("OSDPOS: %v", err)
	}
	if len(res.Splits) != 0 {
		t.Errorf("split with one device: %v", res.Splits)
	}
}

func TestOSDPOSMaxSplitOpsLimit(t *testing.T) {
	// Two sequential big ops; with MaxSplitOps=1 only one may be examined.
	g := graph.New()
	a := g.MustAddOp(&graph.Op{
		Name: "big1", Kind: graph.KindConv2D, FLOPs: int64(100 * time.Microsecond),
		OutputBytes: 64, Batch: 16, Channels: 16,
	})
	b := g.MustAddOp(&graph.Op{
		Name: "big2", Kind: graph.KindConv2D, FLOPs: int64(90 * time.Microsecond),
		OutputBytes: 64, Batch: 16, Channels: 16,
	})
	g.MustConnect(a, b, 64)
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	res, err := OSDPOS(g, c, est, Options{MaxSplitOps: 1})
	if err != nil {
		t.Fatalf("OSDPOS: %v", err)
	}
	if len(res.Splits) > 1 {
		t.Errorf("MaxSplitOps=1 but %d splits accepted", len(res.Splits))
	}
}

func TestOSDPOSEvaluatedCounts(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	res, err := OSDPOS(g, c, est, Options{})
	if err != nil {
		t.Fatalf("OSDPOS: %v", err)
	}
	if res.Evaluated == 0 {
		t.Error("Evaluated = 0 although candidates exist")
	}
}

func TestComputeStrategyBundles(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	est := &fakeEst{commPerByte: time.Nanosecond}
	st, err := ComputeStrategy(g, c, est, Options{})
	if err != nil {
		t.Fatalf("ComputeStrategy: %v", err)
	}
	if st.Graph == nil || len(st.Placement) != st.Graph.NumOps() {
		t.Fatal("strategy placement malformed")
	}
	if len(st.Order) != st.Graph.NumOps() {
		t.Fatal("strategy order malformed")
	}
	if st.Predicted <= 0 {
		t.Error("non-positive predicted makespan")
	}
	if used := st.DevicesUsed(); used < 1 || used > 2 {
		t.Errorf("DevicesUsed = %d", used)
	}
	counts := st.OpsPerDevice(2)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != st.Graph.NumOps() {
		t.Errorf("OpsPerDevice total = %d, want %d", total, st.Graph.NumOps())
	}
}

func TestComputePlacementOnlyNoSplits(t *testing.T) {
	g := bottleneckGraph(t, int64(100*time.Microsecond))
	c := clusterN(t, 2)
	st, err := ComputePlacementOnly(g, c, &fakeEst{commPerByte: time.Nanosecond}, Options{})
	if err != nil {
		t.Fatalf("ComputePlacementOnly: %v", err)
	}
	if len(st.Splits) != 0 {
		t.Error("placement-only strategy contains splits")
	}
	if st.Graph != g {
		t.Error("placement-only strategy rewrote the graph")
	}
}
