package core

import (
	"context"
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
	"fastt/internal/optimal"
	"fastt/internal/strategy"
)

// Strategist computes a deployment strategy for a graph on a cluster under a
// cost estimator — the seam through which a session (or any other client)
// reaches the calculator. ComputeStrategyCtx is the direct, in-process
// implementation; the strategy service (internal/serve) provides a cached,
// request-coalescing one, making the session just one client of the service
// path.
type Strategist func(ctx context.Context, g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error)

// Strategy is the full output FastT activates on the executor (Sec. 3):
// the (possibly rewritten) graph, the operation split list, the device
// placement of every (sub-)operation, and the execution order. The
// serializable part — placement, order, splits, predicted makespan, and the
// base-graph fingerprint — is the embedded strategy.Artifact, so every
// computed strategy is a deployment unit; Graph and Priorities are the
// materialized in-memory forms the executor consumes directly.
type Strategy struct {
	// Artifact is the canonical, serializable strategy: Placement, Order,
	// Splits, Predicted, and the fingerprint of the input graph. Callers
	// deploying the strategy fill Artifact.Provenance and persist it.
	strategy.Artifact
	// Graph is the computation graph the placement refers to; it differs
	// from the input model graph when splits were applied. It equals
	// Artifact.Materialize(input graph).
	Graph *graph.Graph
	// Priorities is Order's inverse (op ID -> order index), the form the
	// executor consumes.
	Priorities []int
	// Evaluated and Pruned count the OS-DPOS candidate evaluations run to
	// completion and aborted by the makespan bound, respectively — the
	// work/avoided-work pair behind Table 4's strategy-computation times.
	Evaluated int
	Pruned    int
	// Speculated and Mispredicted count the candidate evaluations the
	// pipelined search enqueued ahead of a round's commit point and the
	// subset discarded when the predicted winner lost the deterministic
	// reduce (see SplitResult). Both are 0 at Workers <= 1 or with
	// DisableSpeculation.
	Speculated   int
	Mispredicted int
	// Seeded, SeedBound and SeedWon report the warm start (Options.Seed):
	// whether a prior strategy's exact makespan tightened the search's
	// initial incumbent, what that bound was, and whether the search fell
	// back to the re-materialized seed because no candidate beat it (see
	// SplitResult).
	Seeded    bool
	SeedBound time.Duration
	SeedWon   bool
	// LowerBound, BoundExact, BoundMethod and GapPct report the reference
	// lower bound on the ideal-system optimal makespan of the final
	// materialized graph (optimal.Bound), filled only when
	// Options.ComputeBound is set. BoundExact marks a bound equal to the
	// ideal optimum; GapPct is 100*(Predicted-LowerBound)/LowerBound.
	// Predicted includes communication while the bound does not, so GapPct
	// overstates the true distance from optimal — it is an upper bound on
	// the gap, which is the honest direction for a self-report.
	LowerBound  time.Duration
	BoundExact  bool
	BoundMethod string
	GapPct      float64
}

// ComputeStrategy runs the full FastT pipeline — DPOS placement, the
// gradient-sync colocation pass, then OS-DPOS operation splitting — and
// packages the result as an activatable strategy.
func ComputeStrategy(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error) {
	return ComputeStrategyCtx(context.Background(), g, cluster, est, opts)
}

// ComputeStrategyCtx is ComputeStrategy under a context: cancelling ctx (a
// serve request timeout, a Ctrl-C) aborts the search between candidate
// evaluations — within a few milliseconds on any graph — and returns
// ctx.Err(). A nil ctx means context.Background().
func ComputeStrategyCtx(ctx context.Context, g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// One immutable estimator snapshot serves the whole calculation: both
	// passes and every concurrent candidate worker read a consistent,
	// lock-free view even while the profiler keeps observing.
	est = cost.ReadSnapshot(est)
	// The graph fingerprint names the artifact and validates any seed; hash
	// once here and share it with the search (and the class-restricted
	// populations) instead of re-hashing per pass.
	opts.fingerprint = strategy.Fingerprint(g)
	// Caller pins carry full-cluster device IDs, which a renumbered
	// class-restricted subcluster cannot honor — so their presence disables
	// the restriction candidates (see subcluster.go).
	subOpts, tryRestrictions := opts, len(opts.Pinned) == 0
	// The class-restricted refinement recurses into ComputeStrategyCtx on
	// subclusters; the bound is a property of the final strategy on the full
	// cluster, so compute it once at the end, not per candidate subcluster.
	subOpts.ComputeBound = false
	pins, colSched, err := ColocateSyncCtx(ctx, g, cluster, est, opts)
	if err != nil {
		return nil, err
	}
	releaseSchedule(colSched)
	opts.Pinned = mergePins(opts.Pinned, pins)
	res, err := OSDPOSCtx(ctx, g, cluster, est, opts)
	if err != nil {
		return nil, err
	}
	full := &Strategy{
		Artifact: strategy.Artifact{
			SchemaVersion: strategy.SchemaVersion,
			Fingerprint:   opts.fingerprint,
			Placement:     res.Schedule.Placement,
			Order:         res.Schedule.Order,
			Splits:        res.Splits,
			Predicted:     res.Schedule.Makespan,
		},
		Graph:        res.Graph,
		Priorities:   res.Schedule.Priorities,
		Evaluated:    res.Evaluated,
		Pruned:       res.Pruned,
		Speculated:   res.Speculated,
		Mispredicted: res.Mispredicted,
		Seeded:       res.Seeded,
		SeedBound:    res.SeedBound,
		SeedWon:      res.SeedWon,
	}
	if tryRestrictions {
		full, err = refineWithClassSubclusters(ctx, g, cluster, est, subOpts, full)
		if err != nil {
			return nil, err
		}
	}
	if opts.ComputeBound {
		attachBound(full, cluster, est)
	}
	return full, nil
}

// attachBound annotates a finished strategy with the reference lower bound
// on its materialized graph. Best effort: the bound is reporting-only, so a
// solver error (a malformed graph) leaves the fields zero rather than
// failing a strategy the search already proved out.
func attachBound(s *Strategy, cluster *device.Cluster, est cost.Estimator) {
	res, err := optimal.Bound(s.Graph, cluster, est, optimal.BoundOptions{})
	if err != nil || res.LowerBound <= 0 {
		return
	}
	s.LowerBound = res.LowerBound
	s.BoundExact = res.Exact
	s.BoundMethod = res.Method
	if res.Detail != "" {
		s.BoundMethod = res.Method + " (" + res.Detail + ")"
	}
	s.GapPct = 100 * float64(s.Predicted-res.LowerBound) / float64(res.LowerBound)
}

// ComputePlacementOnly runs DPOS and the gradient-sync colocation pass but
// no operation splitting, for the ablation benchmarks (Table 6 compares
// split on/off).
func ComputePlacementOnly(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error) {
	return ComputePlacementOnlyCtx(context.Background(), g, cluster, est, opts)
}

// ComputePlacementOnlyCtx is ComputePlacementOnly under a context; see
// ComputeStrategyCtx for the cancellation contract.
func ComputePlacementOnlyCtx(ctx context.Context, g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	est = cost.ReadSnapshot(est)
	_, s, err := ColocateSyncCtx(ctx, g, cluster, est, opts)
	if err != nil {
		return nil, err
	}
	return &Strategy{
		Artifact: strategy.Artifact{
			SchemaVersion: strategy.SchemaVersion,
			Fingerprint:   strategy.Fingerprint(g),
			Placement:     s.Placement,
			Order:         s.Order,
			Predicted:     s.Makespan,
		},
		Graph:      g,
		Priorities: s.Priorities,
	}, nil
}

// DevicesUsed returns how many distinct devices the strategy places ops on.
// FastT "may not use all the input devices, and can choose a subset which
// achieves better performance than using all" (Sec. 5.2).
func (s *Strategy) DevicesUsed() int {
	seen := make(map[int]bool)
	for _, d := range s.Placement {
		if d >= 0 {
			seen[d] = true
		}
	}
	return len(seen)
}

// OpsPerDevice returns the number of ops assigned to each device ID, the
// quantity reported in Fig. 4.
func (s *Strategy) OpsPerDevice(numDevices int) []int {
	counts := make([]int, numDevices)
	for _, d := range s.Placement {
		if d >= 0 && d < numDevices {
			counts[d]++
		}
	}
	return counts
}
