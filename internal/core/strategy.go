package core

import (
	"time"

	"fastt/internal/cost"
	"fastt/internal/device"
	"fastt/internal/graph"
)

// Strategy is the full output FastT activates on the executor (Sec. 3):
// the (possibly rewritten) graph, the operation split list, the device
// placement of every (sub-)operation, and the execution order.
type Strategy struct {
	// Graph is the computation graph the placement refers to; it differs
	// from the input model graph when splits were applied.
	Graph *graph.Graph
	// Placement maps op ID -> device ID.
	Placement []int
	// Order lists op IDs in execution order; Priorities is its inverse
	// (op ID -> order index), the form the executor consumes.
	Order      []int
	Priorities []int
	// Splits is the accepted operation split list.
	Splits []graph.SplitDecision
	// Predicted is the finish time of the exit operation estimated by the
	// scheduler (not a measurement).
	Predicted time.Duration
	// Evaluated and Pruned count the OS-DPOS candidate evaluations run to
	// completion and aborted by the makespan bound, respectively — the
	// work/avoided-work pair behind Table 4's strategy-computation times.
	Evaluated int
	Pruned    int
}

// ComputeStrategy runs the full FastT pipeline — DPOS placement, the
// gradient-sync colocation pass, then OS-DPOS operation splitting — and
// packages the result as an activatable strategy.
func ComputeStrategy(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error) {
	// One immutable estimator snapshot serves the whole calculation: both
	// passes and every concurrent candidate worker read a consistent,
	// lock-free view even while the profiler keeps observing.
	est = cost.ReadSnapshot(est)
	pins, colSched, err := ColocateSync(g, cluster, est, opts)
	if err != nil {
		return nil, err
	}
	releaseSchedule(colSched)
	opts.Pinned = mergePins(opts.Pinned, pins)
	res, err := OSDPOS(g, cluster, est, opts)
	if err != nil {
		return nil, err
	}
	return &Strategy{
		Graph:      res.Graph,
		Placement:  res.Schedule.Placement,
		Order:      res.Schedule.Order,
		Priorities: res.Schedule.Priorities,
		Splits:     res.Splits,
		Predicted:  res.Schedule.Makespan,
		Evaluated:  res.Evaluated,
		Pruned:     res.Pruned,
	}, nil
}

// ComputePlacementOnly runs DPOS and the gradient-sync colocation pass but
// no operation splitting, for the ablation benchmarks (Table 6 compares
// split on/off).
func ComputePlacementOnly(g *graph.Graph, cluster *device.Cluster, est cost.Estimator, opts Options) (*Strategy, error) {
	est = cost.ReadSnapshot(est)
	_, s, err := ColocateSync(g, cluster, est, opts)
	if err != nil {
		return nil, err
	}
	return &Strategy{
		Graph:      g,
		Placement:  s.Placement,
		Order:      s.Order,
		Priorities: s.Priorities,
		Predicted:  s.Makespan,
	}, nil
}

// DevicesUsed returns how many distinct devices the strategy places ops on.
// FastT "may not use all the input devices, and can choose a subset which
// achieves better performance than using all" (Sec. 5.2).
func (s *Strategy) DevicesUsed() int {
	seen := make(map[int]bool)
	for _, d := range s.Placement {
		if d >= 0 {
			seen[d] = true
		}
	}
	return len(seen)
}

// OpsPerDevice returns the number of ops assigned to each device ID, the
// quantity reported in Fig. 4.
func (s *Strategy) OpsPerDevice(numDevices int) []int {
	counts := make([]int, numDevices)
	for _, d := range s.Placement {
		if d >= 0 && d < numDevices {
			counts[d]++
		}
	}
	return counts
}
